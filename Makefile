GO ?= go
GOFMT ?= gofmt

# bench knobs: BENCH_N sizes the relation (smaller is faster; CI uses
# 200000), BENCH_STAMP names the output document, BENCH_BASELINE is the
# committed run benchgate compares against.
BENCH_N ?= 2000000
BENCH_STAMP ?= $(shell date -u +%Y%m%d)
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: check build fmt vet lint lintjson test race refitsoak loadsmoke coopsmoke fuzz-seeds diffalloc bench benchgate

# check is the tier-1 gate CI runs: static checks (formatting, go vet,
# the repo's own fclint invariant suite), build, plain and race-enabled
# tests, the differential+allocation guards, and the fuzz seed corpora
# as unit tests.
check: fmt vet lint build test race diffalloc fuzz-seeds

build:
	$(GO) build ./...

# fmt fails (and lists the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs cmd/fclint, the stdlib-only static-analysis suite that
# enforces the repo's concurrency and cost-model contracts: the ten
# analyzers nopanic, ctxflow, atomicfield, floatcmp, errdrop, gospawn,
# atomicswap, poolsafe, lockhold, and arenaescape. fclint analyzes the
# whole module — internal/lint included, so the analyzers dogfood their
# own implementation (the CFG builder and solver are checked by the very
# dataflow they power). Zero findings required.
lint:
	$(GO) run ./cmd/fclint ./...

# lintjson writes the same findings as a machine-readable artifact for
# CI upload; the exit code contract is identical to lint.
lintjson:
	$(GO) run ./cmd/fclint -json ./... > fclint.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# refitsoak runs the drift-loop acceptance tests under the race
# detector: the refit controller's unit and chaos suite, plus the
# end-to-end soak that hot-swaps a validated re-fit while concurrent
# queries run. They are part of `race` too; this target names them so
# CI reports the drift loop as its own gate.
refitsoak:
	$(GO) test -race -run 'Refit|RobustMode|EstimateError' . ./internal/refit

# loadsmoke runs the load-harness acceptance suite under the race
# detector: the deterministic loadgen unit tests plus the integration
# and chaos-under-faults tests that drive a live server and assert
# reply conservation and zero leaked goroutines.
loadsmoke:
	$(GO) test -race -run 'LoadHarness|LoadChaos' .
	$(GO) test -race ./internal/loadgen

# coopsmoke runs the cooperative-scan acceptance suite under the race
# detector: the pass manager's exactly-once differential tests (attach
# at first/middle/last block, during wrap-around, simultaneous
# multi-attach), eager cancel release, the coop.attach fault-injection
# degradation tests, the scheduler attach-hook contract, the
# attach-vs-wait cost-term unit tests, and the end-to-end
# attach/cancel/chaos integration tests that assert reply conservation
# and zero leaked goroutines.
coopsmoke:
	$(GO) test -race -run 'Coop' .
	$(GO) test -race ./internal/coop
	$(GO) test -race -run 'Attach' ./internal/scheduler ./internal/model

# diffalloc runs the differential scan-kernel suite (every kernel must
# select the same rowIDs as the naive reference) and the zero-allocation
# guards on the scan and observability hot paths. Both run inside `test`
# too; this target names them so CI reports them as their own gate and
# developers can run just these quickly.
diffalloc:
	$(GO) test -run 'Differential|ZeroAlloc' ./internal/scan ./internal/obs ./internal/runtime

# Runs each fuzz target's seed corpus as regular tests (no fuzzing engine).
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/dsl ./internal/persist ./internal/scan ./internal/coop

# bench runs the Go micro-benchmarks with allocation reporting, then the
# Figure 18 + skewed-batch experiment driver, writing the machine-readable
# document BENCH_$(BENCH_STAMP).json at the repo root (schema
# fastcolumns/bench_aps/v6, documented in EXPERIMENTS.md). -hw1 skips
# host calibration so the target is fast and deterministic enough for CI;
# drop it (run cmd/bench by hand) for a calibrated run.
bench:
	$(GO) test -run XXX -bench 'SkewedBatch|Fig13|AblationSharing' -benchmem -benchtime 20x .
	$(GO) run ./cmd/bench -hw1 -n $(BENCH_N) -trials 3 -json BENCH_$(BENCH_STAMP).json

# benchgate re-runs the shared-scan experiments (morsel skew + packed
# SWAR kernels) and fails when any speedup ratio fell below tolerance
# against the committed baseline document (each baseline ratio capped
# at its experiment's noise ceiling, so a lucky baseline draw cannot
# ratchet the bar above what the experiment reliably reproduces), when
# robust-mode decisions
# stop beating fixed-APS by 1.15x on model regret under 4x selectivity
# underestimates (the schema-v4 regret grid), or when the schema-v5
# load sweep misbehaves: the rate ladder must bracket the saturation
# knee, no rung may pin p99 at the per-query deadline with zero
# shedding (unbounded queueing), and worst below-knee p99 may not
# regress more than 10% over the baseline (above a deadline-fraction
# noise floor). The schema-v6 coop experiment gates within its own run:
# at the straggler rung queries must have attached mid-pass, the
# baseline p99 must clear a two-window noise floor, the cooperative
# server must answer at least 85% as many ops as the baseline (no
# shedding shortcut), and cooperative p99 must beat next-window-only
# p99 by at least 10%. Speedup gates compare ratios, not absolute
# times, so they hold across machines.
benchgate:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline committed"; exit 1; }
	$(GO) run ./cmd/bench -hw1 -n $(BENCH_N) -trials 3 -compare $(BENCH_BASELINE)

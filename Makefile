GO ?= go

.PHONY: check build vet test race fuzz-seeds

# check is the tier-1 gate CI runs: static checks, build, plain and
# race-enabled tests, and the fuzz seed corpora as unit tests.
check: vet build test race fuzz-seeds

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs each fuzz target's seed corpus as regular tests (no fuzzing engine).
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/dsl ./internal/persist

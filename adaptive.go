package fastcolumns

import (
	"time"

	"fastcolumns/internal/adaptive"
	"fastcolumns/internal/model"
)

// AdaptiveResult is the outcome of a Smooth-Scan-style select.
type AdaptiveResult struct {
	RowIDs []RowID
	// Morphed is true when the probe outgrew its budget and restarted as
	// a sequential scan.
	Morphed bool
	// Wasted counts index entries streamed before morphing.
	Wasted  int
	Elapsed time.Duration
}

// SelectAdaptive answers one range query with the adaptive access path
// (Section 6's "delaying optimization decisions" family): it probes the
// secondary index and morphs into a scan if the result outgrows the
// machine's break-even cardinality. Use it when selectivity estimates
// are untrustworthy; SelectBatch with APS is cheaper when they hold.
//
//fclint:owns — adaptive results are handed to the caller with the batch.
func (t *Table) SelectAdaptive(attr string, lo, hi Value) (AdaptiveResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, err := t.relation(attr)
	if err != nil {
		return AdaptiveResult{}, err
	}
	// One snapshot read keeps hardware and design from the same fit: a
	// refit hot-swap between two separate accessor calls could otherwise
	// hand the budget mismatched halves.
	snap := t.engine.opt.Snapshot()
	budget := adaptive.BudgetFromModel(rel.Column.Len(), float64(rel.Column.TupleSize()),
		snap.HW, snap.Design)
	res, err := adaptive.Select(rel, Predicate{Lo: lo, Hi: hi}, budget)
	if err != nil {
		return AdaptiveResult{}, err
	}
	return AdaptiveResult{
		RowIDs:  res.RowIDs,
		Morphed: res.Outcome == adaptive.MorphedToScan,
		Wasted:  res.Wasted,
		Elapsed: res.Elapsed,
	}, nil
}

// Robustness quantifies how trustworthy a decision is (the Section 3
// error-propagation analysis).
type Robustness struct {
	// ErrorMargin is the multiplicative selectivity-error factor that
	// would flip the decision; +Inf when unflippable.
	ErrorMargin float64
	// WrongChoicePenalty is the slowdown if the other path had been
	// picked: near 1 at the break-even point (mistakes are cheap there).
	WrongChoicePenalty float64
}

// ExplainRobustness runs access path selection for the batch and reports
// how sensitive the decision is to selectivity estimation error.
func (t *Table) ExplainRobustness(attr string, preds []Predicate) (Decision, Robustness, error) {
	d, err := t.Explain(attr, preds)
	if err != nil {
		return Decision{}, Robustness{}, err
	}
	t.mu.RLock()
	rel, err := t.relation(attr)
	t.mu.RUnlock()
	if err != nil {
		return Decision{}, Robustness{}, err
	}
	snap := t.engine.opt.Snapshot()
	p := model.Params{
		Workload: model.Workload{Selectivities: d.Selectivities},
		Dataset: model.Dataset{
			N:         float64(rel.Column.Len()),
			TupleSize: float64(rel.Column.TupleSize()),
		},
		Hardware: snap.HW,
		Design:   snap.Design,
	}
	return d, Robustness{
		ErrorMargin:        model.ErrorMargin(p),
		WrongChoicePenalty: model.WrongChoicePenalty(p),
	}, nil
}

package fastcolumns

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. The CLI
// tools under cmd/ print the actual rows/series of each figure; these
// benches time the underlying operations so regressions surface in
// `go test -bench`.

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"fastcolumns/internal/adaptive"
	"fastcolumns/internal/baseline"
	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/dsl"
	"fastcolumns/internal/exec"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/imprints"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/ops"
	"fastcolumns/internal/optimizer"
	"fastcolumns/internal/persist"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/simexec"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/tpch"
	"fastcolumns/internal/workload"
)

const (
	benchN      = 1 << 20
	benchDomain = int32(1 << 22)
	// compDomain keeps the value domain within 16-bit dictionary codes.
	compDomain = int32(1 << 15)
)

// fixture shares the expensive data/index builds across benchmarks.
type fixture struct {
	data []storage.Value
	col  *storage.Column
	rel  *exec.Relation
	hist *stats.Histogram
	zone *storage.Zonemap
	sim  *simexec.Engine
	// Dictionary compression needs a 16-bit-codeable domain; the
	// compressed twin gets its own narrower-domain column.
	compData []storage.Value
	compCol  *storage.Column
	comp     *storage.CompressedColumn
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		fix.data = workload.Uniform(1, benchN, benchDomain)
		fix.col = storage.NewColumn("v", fix.data)
		fix.rel = &exec.Relation{
			Column: fix.col,
			Index:  index.Build(fix.col, index.DefaultFanout),
		}
		var err error
		fix.hist, err = stats.BuildHistogram(fix.col, 128)
		if err != nil {
			panic(err)
		}
		fix.compData = workload.Uniform(2, benchN, compDomain)
		fix.compCol = storage.NewColumn("c", fix.compData)
		fix.comp, err = storage.Compress(fix.compCol)
		if err != nil {
			panic(err)
		}
		fix.zone = storage.BuildZonemap(fix.col, 4096)
		fix.sim = simexec.New(model.HW1(), model.FittedDesign(), fix.data, 4)
	})
	return &fix
}

func predsFor(q int, sel float64) []scan.Predicate {
	return workload.Batch(99, q, sel, benchDomain)
}

// --- Figures 4-10 and 21: the model surfaces -------------------------------

func BenchmarkFig4To7ModelGrid(b *testing.B) {
	configs := []struct {
		name string
		d    model.Dataset
		hw   model.Hardware
		dg   model.Design
	}{
		{"fig4_ts4_hw1", model.Dataset{N: 1e8, TupleSize: 4}, model.HW1(), model.DefaultDesign()},
		{"fig5_ts2_compressed", model.Dataset{N: 1e8, TupleSize: 2}, model.HW1(), model.DefaultDesign()},
		{"fig6_ts40_group", model.Dataset{N: 1e8, TupleSize: 40}, model.HW1(), model.DefaultDesign()},
		{"fig7_hw2", model.Dataset{N: 1e8, TupleSize: 4}, model.HW2(), model.DefaultDesign()},
		{"fig21_simd_sort", model.Dataset{N: 1e8, TupleSize: 4}, model.HW1(),
			func() model.Design { d := model.DefaultDesign(); d.SIMDSortWidth = 4; return d }()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := model.ConcurrencyGrid(c.d, c.hw, c.dg, 512, 1e-5, 0.1, 24, 24)
				_ = g.ContourCrossings(1)
			}
		})
	}
}

func BenchmarkFig8To10DataSizeGrid(b *testing.B) {
	for _, q := range []int{1, 8, 128} {
		b.Run(map[int]string{1: "fig8_q1", 8: "fig9_q8", 128: "fig10_q128"}[q], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := model.DataSizeGrid(q, 4, model.HW1(), model.DefaultDesign(),
					1e4, 1e15, 1e-5, 0.1, 24, 24)
				_ = g.ContourCrossings(1)
			}
		})
	}
}

// --- Figure 12: single-query latency by access path ------------------------

func BenchmarkFig12(b *testing.B) {
	f := getFixture(b)
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		preds := predsFor(1, sel)
		b.Run("index/sel="+pctName(sel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunIndex(context.Background(), f.rel, preds, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("scan/sel="+pctName(sel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunScan(context.Background(), f.rel, preds, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 13: shared execution vs concurrency ----------------------------

func BenchmarkFig13SharedScan(b *testing.B) {
	f := getFixture(b)
	for _, q := range []int{1, 8, 64, 256} {
		preds := predsFor(q, 0.002)
		b.Run(qName(q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunScan(context.Background(), f.rel, preds, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig13SharedIndex(b *testing.B) {
	f := getFixture(b)
	for _, q := range []int{1, 8, 64, 256} {
		preds := predsFor(q, 0.002)
		b.Run(qName(q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunIndex(context.Background(), f.rel, preds, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 14: crossover search vs data size (simulated) ------------------

func BenchmarkFig14SimCrossover(b *testing.B) {
	f := getFixture(b)
	b.Run("q8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := f.sim.Crossover(8, benchDomain); !ok {
				b.Fatal("no crossover")
			}
		}
	})
}

// --- Figure 15: strided column-group scans ---------------------------------

func BenchmarkFig15GroupScan(b *testing.B) {
	for _, width := range []int{1, 4, 16} {
		names := make([]string, width)
		cols := make([][]storage.Value, width)
		for j := 0; j < width; j++ {
			names[j] = string(rune('a' + j))
			cols[j] = workload.Uniform(int64(j+1), benchN/4, benchDomain)
		}
		var col *storage.Column
		if width == 1 {
			col = storage.NewColumn("a", cols[0])
		} else {
			g, err := storage.NewColumnGroup(names, cols)
			if err != nil {
				b.Fatal(err)
			}
			col = g.Column("a")
		}
		p := scan.Predicate{Lo: 0, Hi: benchDomain / 100}
		b.Run("width="+qName(width)[1:], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = scan.ScanColumn(col, p, 0, nil)
			}
		})
	}
}

// --- Figure 16: simulated machines vs model --------------------------------

func BenchmarkFig16MachineCrossover(b *testing.B) {
	data := workload.Uniform(1, benchN/4, benchDomain)
	for _, hw := range model.EC2Profiles() {
		eng := simexec.New(hw, model.DefaultDesign(), data, 4)
		b.Run(hw.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Crossover(1, benchDomain)
			}
		})
	}
}

// --- Figure 17: compressed vs raw shared scans -----------------------------

func BenchmarkFig17Compression(b *testing.B) {
	f := getFixture(b)
	preds := workload.Batch(99, 16, 0.002, compDomain)
	b.Run("raw32bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = scan.Shared(f.compData, preds, 0)
		}
	})
	b.Run("dict16bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = scan.SharedCompressed(f.comp, preds, 0)
		}
	})
}

// --- Figure 18: the nine workloads through APS -----------------------------

func BenchmarkFig18Workloads(b *testing.B) {
	f := getFixture(b)
	opt := optimizer.New(model.HW1())
	for _, sp := range workload.Nine() {
		if sp.Q > 64 {
			continue // the 640-query cells run via cmd/bench; too slow per op here
		}
		preds := workload.Batch(42, sp.Q, sp.Selectivity, benchDomain)
		b.Run(sp.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := opt.Decide(f.rel, f.hist, preds)
				if _, err := exec.Run(context.Background(), f.rel, d.Path, preds, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 19: TPC-H Q6 engines --------------------------------------------

func BenchmarkFig19TPCH(b *testing.B) {
	l := tpch.Generate(0.01, 1)
	rowStore, err := baseline.NewRowStore("l_shipdate", l.ShipDate, true)
	if err != nil {
		b.Fatal(err)
	}
	shipCol := storage.NewColumn("l_shipdate", l.ShipDate)
	fcRel := &exec.Relation{Column: shipCol, Index: index.Build(shipCol, index.DefaultFanout)}
	hist, err := stats.BuildHistogram(shipCol, 128)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimizer.New(model.HW1())
	for _, run := range []struct {
		name string
		q    tpch.Q6
	}{{"low", tpch.Q6Low()}, {"high", tpch.Q6High()}} {
		p := run.q.ShipPredicate()
		b.Run("postgres_like/"+run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids, _ := rowStore.Scan(p)
				run.q.Evaluate(l, ids)
			}
		})
		b.Run("pg_with_index/"+run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids, _ := rowStore.IndexSelect(p)
				run.q.Evaluate(l, ids)
			}
		})
		b.Run("monetdb_like/"+run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids := baseline.ColumnScan(l.ShipDate, p, 0)
				run.q.Evaluate(l, ids)
			}
		})
		b.Run("fastcolumns/"+run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := opt.Decide(fcRel, hist, []scan.Predicate{p})
				res, err := exec.Run(context.Background(), fcRel, d.Path, []scan.Predicate{p}, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				run.q.Evaluate(l, res.RowIDs[0])
			}
		})
	}
}

// --- Figure 20 / Appendix C: model fitting ---------------------------------

func BenchmarkFig20NelderMeadFit(b *testing.B) {
	f := getFixture(b)
	var obs []fit.Observation
	for _, q := range []int{1, 8, 64} {
		for _, s := range []float64{0, 0.001, 0.01} {
			preds := predsFor(q, s)
			obs = append(obs, fit.Observation{
				Q: q, Selectivity: s, N: benchN, TupleSize: 4,
				ScanSec:  f.sim.SharedScan(preds),
				IndexSec: f.sim.ConcIndex(preds),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.Fit(obs, model.HW1(), model.DefaultDesign()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: historical epochs ---------------------------------------------

func BenchmarkTable2History(b *testing.B) {
	epochs := model.HistoricalEpochs()
	for i := 0; i < b.N; i++ {
		for _, e := range epochs {
			model.Crossover(1, e.Dataset, e.Hardware, e.Design)
		}
	}
}

// --- The decision itself (Section 3's microseconds claim) ------------------

func BenchmarkAPSDecision(b *testing.B) {
	f := getFixture(b)
	opt := optimizer.New(model.HW1())
	preds := predsFor(64, 0.002)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = opt.Decide(f.rel, f.hist, preds)
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationPredication: branch-free predicated scan vs the naive
// branching loop, at an adversarial ~50% selectivity where branch
// mispredictions hurt most.
func BenchmarkAblationPredication(b *testing.B) {
	f := getFixture(b)
	p := scan.Predicate{Lo: 0, Hi: benchDomain / 2}
	b.Run("predicated", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.Scan(f.data, p, out[:0])
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.ScanUnrolled(f.data, p, out[:0])
		}
	})
	b.Run("branching", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.ScanBranching(f.data, p, out[:0])
		}
	})
}

// BenchmarkAblationSharing: one shared scan vs q independent scans.
func BenchmarkAblationSharing(b *testing.B) {
	f := getFixture(b)
	preds := predsFor(16, 0.001)
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = scan.Shared(f.data, preds, 0)
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				_ = scan.ScanUnrolled(f.data, p, nil)
			}
		}
	})
}

// skewedPreds builds the tentpole's skewed batch: one query selecting
// ~20% of the domain plus fifteen selecting ~0.1% each. Under a static
// query partition, whoever draws the heavy query straggles while its
// siblings idle.
func skewedPreds() []scan.Predicate {
	d := int64(benchDomain)
	preds := make([]scan.Predicate, 0, 16)
	preds = append(preds, scan.Predicate{Lo: 0, Hi: storage.Value(d/5 - 1)})
	w := d / 1000
	for i := 0; i < 15; i++ {
		lo := int64(i) * (d / 16)
		preds = append(preds, scan.Predicate{Lo: storage.Value(lo), Hi: storage.Value(lo + w - 1)})
	}
	return preds
}

// skewedHints mirrors what the optimizer hands the executor in
// production: expected result cardinality per query, sizing the arena's
// checkouts.
func skewedHints(preds []scan.Predicate, n int) []int {
	hints := make([]int, len(preds))
	for i, p := range preds {
		frac := float64(int64(p.Hi)-int64(p.Lo)+1) / float64(benchDomain)
		hints[i] = int(frac*float64(n)) + 1
	}
	return hints
}

// BenchmarkSkewedBatch is the tentpole's headline experiment: the same
// skewed batch through the pre-morsel static query partition
// (SharedStatic, spawning per call) and through morsel dispatch on a
// persistent pool with pooled result arenas. Run with -benchmem: the
// morsel side should also show (near-)zero steady-state allocations.
func BenchmarkSkewedBatch(b *testing.B) {
	f := getFixture(b)
	preds := skewedPreds()
	workers := rt.Default().Workers()
	b.Run("static", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = scan.SharedStatic(f.data, preds, 0, workers)
		}
	})
	b.Run("morsel", func(b *testing.B) {
		b.ReportAllocs()
		pool := rt.NewPool(workers, nil)
		defer pool.Close()
		arena := rt.NewArena(0, nil)
		hints := skewedHints(preds, benchN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := scan.SharedPool(pool, arena, f.data, preds, 0, hints)
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
	})
}

// BenchmarkAblationFanout: probe latency across branching factors; the
// paper picks b=21 for memory, b=250 was the disk-era default.
func BenchmarkAblationFanout(b *testing.B) {
	data := workload.Uniform(1, benchN/2, benchDomain)
	col := storage.NewColumn("v", data)
	for _, fan := range []int{8, 21, 64, 250, 1024} {
		tr := index.Build(col, fan)
		b.Run("b="+qName(fan)[1:], func(b *testing.B) {
			var out []storage.RowID
			for i := 0; i < b.N; i++ {
				out = tr.RangeRowIDs(1000, 1000+benchDomain/500, out[:0])
			}
		})
	}
}

// BenchmarkAblationSort: the cost of delivering index results in rowID
// order (the SC term) vs leaving them in key order.
func BenchmarkAblationSort(b *testing.B) {
	f := getFixture(b)
	lo, hi := storage.Value(0), benchDomain/100
	b.Run("unsorted", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = f.rel.Index.RangeRowIDs(lo, hi, out[:0])
		}
	})
	b.Run("sorted_by_rowid", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = f.rel.Index.Select(lo, hi, out[:0])
		}
	})
}

// BenchmarkAblationZonemap: data skipping on clustered data vs the plain
// scan, and its decay on a shared batch.
func BenchmarkAblationZonemap(b *testing.B) {
	sorted := workload.Sorted(3, benchN/2, benchDomain)
	col := storage.NewColumn("v", sorted)
	z := storage.BuildZonemap(col, 4096)
	p := scan.Predicate{Lo: benchDomain / 2, Hi: benchDomain/2 + benchDomain/200}
	b.Run("zonemap_clustered", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.WithZonemap(sorted, z, p, out[:0])
		}
	})
	b.Run("plain_scan", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.ScanUnrolled(sorted, p, out[:0])
		}
	})
	preds := predsFor(16, 0.002)
	b.Run("zonemap_shared_q16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = scan.SharedWithZonemap(sorted, z, preds)
		}
	})
}

// BenchmarkAblationDict: dictionary build cost amortized against the
// per-scan byte savings measured by BenchmarkFig17Compression.
func BenchmarkAblationDict(b *testing.B) {
	f := getFixture(b)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := storage.Compress(f.compCol); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probe_range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.comp.Dict().EncodeRange(100, 2000)
		}
	})
}

func pctName(s float64) string {
	switch s {
	case 0.001:
		return "0.1%"
	case 0.01:
		return "1%"
	case 0.1:
		return "10%"
	}
	return "x"
}

func qName(q int) string {
	switch q {
	case 1:
		return "q1"
	case 4:
		return "q4"
	case 8:
		return "q8"
	case 16:
		return "q16"
	case 21:
		return "q21"
	case 64:
		return "q64"
	case 250:
		return "q250"
	case 256:
		return "q256"
	case 1024:
		return "q1024"
	}
	return "q" + string(rune('0'+q%10))
}

// --- Extensions: Appendix D/E structures and the DSL front end -------------

// BenchmarkAblationMultiwaySort: the W-way merge sort of Appendix D vs
// the standard sort on an index-result-sized rowID set.
func BenchmarkAblationMultiwaySort(b *testing.B) {
	f := getFixture(b)
	src := f.rel.Index.RangeRowIDs(0, benchDomain/50, nil) // ~2% of the column
	work := make([]storage.RowID, len(src))
	b.Run("stdsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(work, src)
			index.SortRowIDs(work)
		}
	})
	for _, w := range []int{4, 8} {
		b.Run("multiway_w"+qName(w)[1:], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, src)
				index.SortRowIDsMultiway(work, w)
			}
		})
	}
}

// BenchmarkAltPathBitmap: the three access paths answering an equality
// query on a low-cardinality attribute (Appendix E's bitmap case).
func BenchmarkAltPathBitmap(b *testing.B) {
	data := workload.Uniform(7, benchN/2, 128)
	col := storage.NewColumn("status", data)
	bm, err := bitmap.Build(col)
	if err != nil {
		b.Fatal(err)
	}
	tree := index.Build(col, index.DefaultFanout)
	p := scan.Predicate{Lo: 42, Hi: 42}
	b.Run("bitmap", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = bm.Select(p.Lo, p.Hi, out[:0])
		}
	})
	b.Run("btree", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = tree.Select(p.Lo, p.Hi, out[:0])
		}
	})
	b.Run("scan", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.ScanUnrolled(data, p, out[:0])
		}
	})
}

// BenchmarkAblationImprints: imprint-skipping scans on clustered vs
// random data against the plain kernel.
func BenchmarkAblationImprints(b *testing.B) {
	sorted := workload.Sorted(3, benchN/2, benchDomain)
	imp, err := imprints.Build(storage.NewColumn("v", sorted))
	if err != nil {
		b.Fatal(err)
	}
	p := scan.Predicate{Lo: benchDomain / 2, Hi: benchDomain/2 + benchDomain/200}
	b.Run("imprints_clustered", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = imp.Select(sorted, p.Lo, p.Hi, out[:0])
		}
	})
	b.Run("plain_clustered", func(b *testing.B) {
		var out []storage.RowID
		for i := 0; i < b.N; i++ {
			out = scan.ScanUnrolled(sorted, p, out[:0])
		}
	})
}

// BenchmarkAblationFetchOrder: tuple reconstruction with rowID-sorted vs
// shuffled results — the Section 2.3 justification for the sort term.
func BenchmarkAblationFetchOrder(b *testing.B) {
	f := getFixture(b)
	second := workload.Uniform(8, benchN, benchDomain)
	col := storage.NewColumn("w", second)
	sorted := f.rel.Index.Select(0, benchDomain/50, nil)
	shuffled := append([]storage.RowID(nil), sorted...)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var out []storage.Value
	b.Run("sorted_rowids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out = ops.Fetch(col, sorted, out)
		}
	})
	b.Run("shuffled_rowids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out = ops.Fetch(col, shuffled, out)
		}
	})
}

// BenchmarkDSL: parse throughput and a full parse->optimize->execute
// round trip through the engine.
func BenchmarkDSL(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dsl.Parse("SELECT SUM(price) FROM sales WHERE day BETWEEN 100 AND 200"); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng := New(Config{})
	tbl, err := eng.CreateTable("sales")
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.AddColumn("day", workload.Uniform(1, benchN/4, 1000)); err != nil {
		b.Fatal(err)
	}
	if err := tbl.AddColumn("price", workload.Uniform(2, benchN/4, 100000)); err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("day"); err != nil {
		b.Fatal(err)
	}
	if err := tbl.Analyze("day", 64); err != nil {
		b.Fatal(err)
	}
	b.Run("query_sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query("SELECT SUM(price) FROM sales WHERE day = 5"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPersist: column save/load throughput.
func BenchmarkPersist(b *testing.B) {
	f := getFixture(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "v.col")
	b.Run("save", func(b *testing.B) {
		b.SetBytes(int64(len(f.data) * 4))
		for i := 0; i < b.N; i++ {
			if err := persist.SaveColumnFile(path, f.data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(len(f.data) * 4))
		for i := 0; i < b.N; i++ {
			if _, err := persist.LoadColumnFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptive: up-front APS vs the Smooth-Scan-style
// adaptive operator under good and bad selectivity estimates (the §6
// trade-off: adaptivity buys robustness, APS buys zero waste when the
// estimate holds).
func BenchmarkAblationAdaptive(b *testing.B) {
	f := getFixture(b)
	budget := adaptive.BudgetFromModel(benchN, 4, model.HW1(), model.FittedDesign())
	narrow := scan.Predicate{Lo: 0, Hi: benchDomain / 1000} // ~0.1%: estimate good
	wide := scan.Predicate{Lo: 0, Hi: benchDomain / 4}      // ~25%: estimate that said 0.1% was wrong
	b.Run("adaptive/good_estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adaptive.Select(f.rel, narrow, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive/bad_estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adaptive.Select(f.rel, wide, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forced_index/bad_estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.RunIndex(context.Background(), f.rel, []scan.Predicate{wide}, exec.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

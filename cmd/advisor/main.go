// Command advisor is the offline physical-design tool of Section 6:
// given a relation's shape and an expected workload mix, it uses the APS
// model to decide whether building a secondary B+-tree pays off, and
// shows the per-scenario access-path picture behind the verdict.
//
//	advisor -n 1e8 -mix "1:0.0001:50,64:0.001:30,256:0.05:20"
//
// Each mix element is q:selectivity:weight.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fastcolumns/internal/advisor"
	"fastcolumns/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("advisor: ")
	n := flag.Float64("n", 1e8, "relation size in tuples")
	ts := flag.Float64("ts", 4, "tuple size in bytes (4 column, 40 ten-wide group)")
	mixFlag := flag.String("mix", "1:0.0001:40,16:0.002:30,64:0.01:20,256:0.1:10",
		"workload mix as q:selectivity:weight[,...]")
	threshold := flag.Float64("threshold", 1.1, "minimum speedup to justify the index")
	flag.Parse()

	mix, err := advisor.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	d := model.Dataset{N: *n, TupleSize: *ts}
	hw := model.HW1()
	dg := model.FittedDesign()

	rec, err := advisor.Advise(d, hw, dg, mix, advisor.Config{Threshold: *threshold})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "scenario\tq\tselectivity\tweight\tAPS picks\t")
	for i, sc := range mix {
		p := model.Params{
			Workload: model.Uniform(sc.Q, sc.Selectivity),
			Dataset:  d, Hardware: hw, Design: dg,
		}
		fmt.Fprintf(w, "%d\t%d\t%.4f%%\t%.0f\t%v\t\n",
			i+1, sc.Q, sc.Selectivity*100, sc.Weight, model.Choose(p))
	}
	w.Flush()
	fmt.Printf("\nexpected cost per unit weight: scan-only %.6fs, with index %.6fs (%.2fx)\n",
		rec.ScanOnlyCost, rec.WithIndexCost, rec.Speedup)
	fmt.Printf("index would serve %.0f%% of the workload weight\n", rec.IndexShare*100)
	if rec.BuildIndex {
		fmt.Printf("=> BUILD the secondary index (speedup %.2fx >= threshold %.2fx)\n", rec.Speedup, *threshold)
	} else {
		fmt.Printf("=> SKIP the secondary index (speedup %.2fx < threshold %.2fx)\n", rec.Speedup, *threshold)
	}
}

// Command apsplot regenerates the model-analysis figures of Section 2.5:
// the APS-ratio surfaces of Figures 4-10 and 21 and the conceptual
// crossover curve of Figure 1. Output is CSV (one row per y sample, one
// column per x sample) followed by the APS=1 break-even contour, so any
// plotting tool can recreate the paper's heatmaps.
//
// Usage:
//
//	apsplot -fig 4            # q x selectivity surface on HW1, ts=4
//	apsplot -fig 8 -res 48    # N x selectivity surface at q=1
//	apsplot -fig 1            # crossover-vs-concurrency curve
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fastcolumns/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apsplot: ")
	fig := flag.Int("fig", 4, "figure to regenerate (1, 4-10, 21)")
	res := flag.Int("res", 40, "grid resolution per axis")
	n := flag.Float64("n", 1e8, "relation size for the concurrency figures")
	flag.BoolVar(&asciiArt, "ascii", false, "render the surface as an ASCII heatmap instead of CSV")
	flag.Parse()

	switch *fig {
	case 1:
		figure1(*n)
	case 4, 5, 6, 7, 21:
		concurrencyFigure(*fig, *n, *res)
	case 8, 9, 10:
		dataSizeFigure(*fig, *res)
	default:
		log.Fatalf("unknown figure %d", *fig)
	}
}

// figure1 prints the conceptual sloped divide: crossover selectivity per
// concurrency level.
func figure1(n float64) {
	d := model.Dataset{N: n, TupleSize: 4}
	fmt.Println("# Figure 1: break-even selectivity vs concurrency (HW1, fitted model)")
	fmt.Println("q,crossover_selectivity")
	for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		s, ok := model.Crossover(q, d, model.HW1(), model.FittedDesign())
		if !ok {
			fmt.Printf("%d,NA\n", q)
			continue
		}
		fmt.Printf("%d,%.6g\n", q, s)
	}
}

func concurrencyFigure(fig int, n float64, res int) {
	d := model.Dataset{N: n, TupleSize: 4}
	h := model.HW1()
	dg := model.DefaultDesign()
	title := ""
	switch fig {
	case 4:
		title = "Figure 4: APS(q, s), HW1, single column (ts=4)"
	case 5:
		title = "Figure 5: APS(q, s), HW1, compressed column (ts=2)"
		d.TupleSize = 2
	case 6:
		title = "Figure 6: APS(q, s), HW1, 10-column group (ts=40)"
		d.TupleSize = 40
	case 7:
		title = "Figure 7: APS(q, s), HW2 (100ns, 160GB/s)"
		h = model.HW2()
	case 21:
		title = "Figure 21: APS(q, s), HW1, SIMD-aware sorting (W=4)"
		dg.SIMDSortWidth = 4
	}
	g := model.ConcurrencyGrid(d, h, dg, 512, 1e-5, 0.1, res, res)
	emit(title, g)
}

func dataSizeFigure(fig int, res int) {
	q := map[int]int{8: 1, 9: 8, 10: 128}[fig]
	title := fmt.Sprintf("Figure %d: APS(N, s) at q=%d, HW1", fig, q)
	g := model.DataSizeGrid(q, 4, model.HW1(), model.DefaultDesign(), 1e4, 1e15, 1e-5, 0.1, res, res)
	emit(title, g)
}

var asciiArt bool

// emit prints the grid as CSV plus the break-even contour, or as an
// ASCII heatmap with -ascii.
func emit(title string, g model.Grid) {
	if asciiArt {
		emitASCII(title, g)
		return
	}
	w := os.Stdout
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "# rows: %s (log scale), cols: %s (log scale), cells: APS ratio\n", g.YLabel, g.XLabel)
	fmt.Fprintf(w, "%s\\%s", g.YLabel, g.XLabel)
	for _, x := range g.Xs {
		fmt.Fprintf(w, ",%.4g", x)
	}
	fmt.Fprintln(w)
	for i, y := range g.Ys {
		fmt.Fprintf(w, "%.4g", y)
		for j := range g.Xs {
			fmt.Fprintf(w, ",%.4g", g.Ratio[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "# APS=1 contour (the solid break-even line):")
	fmt.Fprintf(w, "%s,break_even_%s\n", g.XLabel, g.YLabel)
	for j, y := range g.ContourCrossings(1) {
		fmt.Fprintf(w, "%.4g,%.4g\n", g.Xs[j], y)
	}
}

// emitASCII renders the surface the way the paper's color maps read:
// '#' where the index wins big, '=' where it wins, '*' on the break-even
// band, '-' where the scan wins, '.' where it wins big. High selectivity
// is the top row, as in the figures.
func emitASCII(title string, g model.Grid) {
	fmt.Printf("%s\n", title)
	fmt.Printf("y: %s %.2g..%.2g (log, top=high) | x: %s %.4g..%.4g (log)\n",
		g.YLabel, g.Ys[0], g.Ys[len(g.Ys)-1], g.XLabel, g.Xs[0], g.Xs[len(g.Xs)-1])
	glyph := func(r float64) byte {
		switch {
		case r < 0.33:
			return '#'
		case r < 0.9:
			return '='
		case r <= 1.1:
			return '*'
		case r <= 3:
			return '-'
		default:
			return '.'
		}
	}
	for i := len(g.Ys) - 1; i >= 0; i-- {
		row := make([]byte, len(g.Xs))
		for j := range g.Xs {
			row[j] = glyph(g.Ratio[i][j])
		}
		fmt.Printf("%9.3g |%s|\n", g.Ys[i], row)
	}
	fmt.Println("legend: # index>>  = index>  * break-even  - scan>  . scan>>")
}

package main

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"time"

	"fastcolumns"
	"fastcolumns/internal/loadgen"
	"fastcolumns/internal/workload"
)

// coopResult is the schema-v6 `coop` section: the cooperative-scan
// experiment. A straggler-heavy mix (mostly point gets, a 20% share of
// 5% analytical scans) is offered open-loop to two otherwise identical
// scan-only servers: one that only batches at window boundaries, and
// one that also attaches late arrivals to the in-flight shared pass
// when the attach-vs-wait cost term says the cursor beats the next
// window. The rung sits at the measured congestion knee: the last rung
// of a dense ladder that the baseline server kept pace with (the next
// rung sheds or detaches from its schedule) — loaded enough that
// next-window batching queues behind straggler passes and attaching at
// the cursor pays. Rates are derived from a per-run capacity probe and
// the gate compares the two servers within the same run, so stored
// documents stay comparable across machines.
type coopResult struct {
	Rows      int   `json:"rows"`
	Domain    int32 `json:"domain"`
	TimeoutNs int64 `json:"timeout_ns"`
	WindowNs  int64 `json:"window_ns"`
	RungNs    int64 `json:"rung_ns"`
	MinOps    int64 `json:"min_ops"`
	// MaxAttach is the per-pass adoption cap the cooperative server ran
	// with (bounds pass extension under a continuous arrival stream).
	MaxAttach int     `json:"max_attach"`
	Capacity  float64 `json:"capacity_rate"`
	// KneeRate is the first baseline ladder rung that saturated; Rate is
	// the straggler rung: the last healthy rung, one ladder step below.
	KneeRate   float64  `json:"knee_rate"`
	Rate       float64  `json:"rate"`
	NextWindow coopSide `json:"next_window"`
	Coop       coopSide `json:"coop"`
}

// coopSide is one server's measurement at the straggler rung.
type coopSide struct {
	P50Ns    int64 `json:"p50_ns"`
	P99Ns    int64 `json:"p99_ns"`
	P999Ns   int64 `json:"p999_ns"`
	Replied  int64 `json:"replied"`
	Shed     int64 `json:"shed"`
	Attached int64 `json:"attached"`
}

// stragglerMix is the mix the cooperative experiment targets: enough
// point gets that window batching looks cheap, with a straggler share
// of 5% scans that stretch each pass — exactly when a late arrival
// gains the most from attaching at the cursor instead of queueing for
// the window after the straggler drains.
func stragglerMix() loadgen.Mix {
	return loadgen.NewMix("straggler",
		loadgen.MixEntry{Weight: 0.8, Selectivity: 0},
		loadgen.MixEntry{Weight: 0.2, Selectivity: 0.05},
	)
}

// coopLadder is the baseline saturation sweep, capacity-relative and
// dense (x1.25 steps): the knee must be located within one step, since
// the straggler rung is the last rung the baseline kept pace with.
var coopLadder = []float64{0.35, 0.44, 0.55, 0.68, 0.85, 1.07, 1.34}

// coopRows fixes the relation size for the cooperative experiment. The
// experiment's regime is set by the pass length relative to the
// batching window and inter-arrival gap — not by the grid's -n — so the
// table does not scale with it.
const coopRows = 200_000

// coopMaxAttach is the per-pass adoption cap the cooperative server
// runs with. Unbounded adoption lets a pass stay open indefinitely
// under a continuous arrival stream (every adopter extends it by a
// wrap-around continuation), trading the very tail the experiment
// measures; 16 bounds a pass to a few circles.
const coopMaxAttach = 16

// measureCoop runs the cooperative-vs-next-window experiment. The table
// is scan-only (no index), so APS answers every batch with the shared
// scan and each batch runs as an attachable pass on the cooperative
// server; both servers see the same rows, the same seed, and the same
// arrival schedule.
func measureCoop() coopResult {
	const domain = int32(1 << 20)
	const window = 2 * time.Millisecond
	const timeout = 250 * time.Millisecond
	const rung = 1500 * time.Millisecond
	const minOps = 1000

	// Scrub the heap the earlier experiment sections left behind (the -n
	// sized grid relations dwarf this experiment's 200k-row fixture).
	// The cooperative server sits at a congested operating point where
	// pass length sets the feedback loop — GC cycles over a multi-GB
	// dead heap stretch every pass, each longer pass adopts a full cap
	// of attachers, and the tail collapses in a way a fresh process
	// never shows.
	debug.FreeOSMemory()

	build := func(cooperative bool) (*fastcolumns.Engine, *fastcolumns.Server) {
		eng := fastcolumns.New(fastcolumns.Config{})
		tbl, err := eng.CreateTable("coop")
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.AddColumn("a", workload.Uniform(7, coopRows, domain)); err != nil {
			log.Fatal(err)
		}
		if err := tbl.Analyze("a", 128); err != nil {
			log.Fatal(err)
		}
		srv := eng.Serve(fastcolumns.ServeOptions{
			Window:        window,
			MaxPending:    512,
			MaxInFlight:   4,
			Cooperative:   cooperative,
			CoopMaxAttach: coopMaxAttach,
		})
		return eng, srv
	}

	ctx := context.Background()
	opt := loadgen.Options{
		Table: "coop", Attr: "a", Domain: domain,
		Mix: stragglerMix(), Timeout: timeout, Seed: 17,
	}
	cfg := loadgen.OpenLoop{Duration: rung, Dist: loadgen.Poisson, MinOps: minOps}

	// Locate the saturation rate of the next-window baseline.
	baseEng, baseSrv := build(false)
	capacity := loadgen.ProbeCapacity(ctx, baseSrv, opt, 16, 200*time.Millisecond)
	if capacity <= 0 {
		log.Fatal("coop experiment: capacity probe achieved no replies")
	}
	rates := make([]float64, len(coopLadder))
	for i, f := range coopLadder {
		rates[i] = f * capacity
	}
	sweep := loadgen.Sweep(ctx, baseSrv, opt, cfg, rates)
	for i, r := range sweep {
		if !r.Conserved() {
			log.Fatalf("coop knee sweep rung %d lost replies: %+v", i, r.Counts)
		}
	}
	k := loadgen.Knee(sweep)
	if k < 0 {
		log.Fatalf("coop experiment: baseline saturated at the ladder's bottom rung (%.0f ops/s)", rates[0])
	}
	if k >= len(sweep)-1 {
		log.Fatalf("coop experiment: baseline never saturated — the ladder's top rung (%.0f ops/s) is below the knee", rates[len(rates)-1])
	}
	knee := sweep[k+1].TargetRate // first saturated rung
	// The straggler rung is the knee itself: the last rung the baseline
	// demonstrably kept pace with. One ladder step higher the baseline
	// sheds or detaches from its schedule (and goes bimodal between
	// queueing and timeout collapse), which would let the cooperative
	// server win by answering more of the stream rather than by
	// answering it faster — the gate compares tails, so the rung must be
	// a rate both servers fully absorb.
	rate := sweep[k].TargetRate

	// The straggler rung, baseline side, measured fresh at the chosen
	// rate (the sweep's rungs only located the knee).
	next := loadgen.RunOpen(ctx, baseSrv, opt, loadgen.OpenLoop{
		Rate: rate, Duration: rung, Dist: loadgen.Poisson, MinOps: minOps})
	if !next.Conserved() {
		log.Fatalf("coop straggler rung (next-window) lost replies: %+v", next.Counts)
	}
	baseSrv.Close()
	baseEng.Close()

	// Same rung, cooperative side: same rows, same seed, same schedule.
	coopEng, coopSrv := build(true)
	coopRes := loadgen.RunOpen(ctx, coopSrv, opt, loadgen.OpenLoop{
		Rate: rate, Duration: rung, Dist: loadgen.Poisson, MinOps: minOps})
	if !coopRes.Conserved() {
		log.Fatalf("coop straggler rung (cooperative) lost replies: %+v", coopRes.Counts)
	}
	attached := coopSrv.ServerStats().Attached
	coopSrv.Close()
	coopEng.Close()

	side := func(r loadgen.Result, attached int64) coopSide {
		return coopSide{
			P50Ns: r.Latency.P50, P99Ns: r.Latency.P99, P999Ns: r.Latency.P999,
			Replied: r.Replied, Shed: r.Shed, Attached: attached,
		}
	}
	return coopResult{
		Rows: coopRows, Domain: domain,
		TimeoutNs: timeout.Nanoseconds(), WindowNs: window.Nanoseconds(),
		RungNs: rung.Nanoseconds(), MinOps: minOps, MaxAttach: coopMaxAttach,
		Capacity: capacity, KneeRate: knee, Rate: rate,
		NextWindow: side(next, 0),
		Coop:       side(coopRes, attached),
	}
}

// printCoop summarizes the coop section on stdout.
func printCoop(res coopResult) {
	win := 0.0
	if res.Coop.P99Ns > 0 {
		win = float64(res.NextWindow.P99Ns) / float64(res.Coop.P99Ns)
	}
	fmt.Printf("coop straggler rung %.0f ops/s (saturation at %.0f): next-window p99 %v p999 %v; cooperative p99 %v p999 %v (%.2fx, %d attached)\n",
		res.Rate, res.KneeRate,
		time.Duration(res.NextWindow.P99Ns).Round(time.Microsecond),
		time.Duration(res.NextWindow.P999Ns).Round(time.Microsecond),
		time.Duration(res.Coop.P99Ns).Round(time.Microsecond),
		time.Duration(res.Coop.P999Ns).Round(time.Microsecond),
		win, res.Coop.Attached)
}

// coopTol is the required tail win: cooperative p99 must be at least
// 10% below the next-window-only p99 at the straggler rung.
const coopTol = 1.10

// coopNoiseWindows is the measurement's noise floor in units of the
// batching window. The win mechanism is bypassing the window (plus the
// in-flight queueing behind straggler passes), so a baseline p99 below
// a couple of windows means the rung failed to exercise the regime the
// experiment measures — a broken operating point, not a pass.
const coopNoiseWindows = 2

// coopRepliedFrac guards against a shedding shortcut: the cooperative
// server may not buy its tail by refusing meaningfully more of the
// offered stream than the baseline answered.
const coopRepliedFrac = 0.85

// coopGate enforces the self-contained cooperative-scan rules on this
// run: the rung must actually have adopted queries mid-pass, the
// baseline tail must sit above the noise floor (the rung is meant to be
// window-and-queue bound), the cooperative server must answer nearly as
// much of the stream as the baseline, and the cooperative p99 must beat
// the next-window-only p99 by at least 10%.
func coopGate(res coopResult) error {
	if res.Coop.Attached == 0 {
		return fmt.Errorf("coop gate: no queries attached mid-pass at the straggler rung")
	}
	floor := coopNoiseWindows * res.WindowNs
	if res.NextWindow.P99Ns < floor {
		return fmt.Errorf("coop gate: next-window p99 %v is below the %v noise floor — the rung never became window-bound",
			time.Duration(res.NextWindow.P99Ns), time.Duration(floor))
	}
	if float64(res.Coop.Replied) < coopRepliedFrac*float64(res.NextWindow.Replied) {
		return fmt.Errorf("coop gate: cooperative server replied to %d ops vs baseline %d — tail win bought by shedding",
			res.Coop.Replied, res.NextWindow.Replied)
	}
	if float64(res.NextWindow.P99Ns) < coopTol*float64(res.Coop.P99Ns) {
		return fmt.Errorf("coop gate: cooperative p99 %v does not beat next-window p99 %v by 10%%",
			time.Duration(res.Coop.P99Ns), time.Duration(res.NextWindow.P99Ns))
	}
	return nil
}

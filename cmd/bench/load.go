package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastcolumns"
	"fastcolumns/internal/loadgen"
	"fastcolumns/internal/workload"
)

// loadResult is the schema-v5 `load` section: per-mix
// latency-vs-offered-load curves from an open-loop sweep over a rate
// ladder scaled to the host's probed closed-loop capacity. Rates are
// relative to capacity, and the gates compare shapes (knee position,
// shed engagement, below-knee p99 inflation), so stored runs stay
// comparable across machines.
type loadResult struct {
	Rows      int   `json:"rows"`
	Domain    int32 `json:"domain"`
	TimeoutNs int64 `json:"timeout_ns"`
	// RungNs is the minimum rung duration; low-rate rungs run longer
	// until they have intended at least MinOps arrivals, so every
	// rung's tail quantiles rest on a real sample count.
	RungNs int64           `json:"rung_ns"`
	MinOps int64           `json:"min_ops"`
	Ladder []float64       `json:"ladder"`
	Curves []loadgen.Curve `json:"curves"`
}

// loadLadder is the sweep's rate ladder as fractions of the probed
// closed-loop capacity, geometrically spaced across a wide range. The
// width matters: the knee's *fraction* of closed-loop capacity differs
// per mix, because the closed-loop probe forms wide batches that
// amortize per-batch overhead while an open loop near its knee forms
// narrow ones. Point-get mixes knee near 0.1x of the probed ceiling;
// heavy-scan mixes knee near 1x. The ladder spans both with clean
// rungs on each side, so the knee is bracketed for any mix.
var loadLadder = []float64{0.05, 0.12, 0.3, 0.75, 1.8, 4.5}

// measureLoad sweeps the serve path under open-loop traffic for the
// point and mixed query mixes. Every rung's conservation ledger is
// asserted — a bench run with lost or double replies is not a
// measurement worth storing.
func measureLoad(n int) loadResult {
	rows := n / 10
	if rows < 50_000 {
		rows = 50_000
	}
	if rows > 200_000 {
		rows = 200_000
	}
	const domain = int32(1 << 20)
	const rung = 300 * time.Millisecond
	const timeout = 250 * time.Millisecond
	const minOps = 400

	eng := fastcolumns.New(fastcolumns.Config{})
	defer eng.Close()
	tbl, err := eng.CreateTable("load")
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range []func() error{
		func() error { return tbl.AddColumn("a", workload.Uniform(7, rows, domain)) },
		func() error { return tbl.CreateIndex("a") },
		func() error { return tbl.Analyze("a", 128) },
	} {
		if err := step(); err != nil {
			log.Fatal(err)
		}
	}
	srv := eng.Serve(fastcolumns.ServeOptions{
		Window:      500 * time.Microsecond,
		MaxPending:  256,
		MaxInFlight: 2,
	})
	defer srv.Close()

	res := loadResult{
		Rows: rows, Domain: domain,
		TimeoutNs: timeout.Nanoseconds(), RungNs: rung.Nanoseconds(),
		MinOps: minOps,
		Ladder: loadLadder,
	}
	ctx := context.Background()
	for _, mix := range []loadgen.Mix{loadgen.PointMix(), loadgen.MixedMix()} {
		opt := loadgen.Options{
			Table: "load", Attr: "a", Domain: domain,
			Mix: mix, Timeout: timeout, Seed: 11,
		}
		capacity := loadgen.ProbeCapacity(ctx, srv, opt, 16, 200*time.Millisecond)
		if capacity <= 0 {
			log.Fatalf("load sweep (%s): capacity probe achieved no replies", mix.Name)
		}
		rates := make([]float64, len(loadLadder))
		for i, f := range loadLadder {
			rates[i] = f * capacity
		}
		cfg := loadgen.OpenLoop{Duration: rung, Dist: loadgen.Poisson, MinOps: minOps}
		results := loadgen.Sweep(ctx, srv, opt, cfg, rates)
		for i, r := range results {
			if !r.Conserved() {
				log.Fatalf("load sweep (%s) rung %d lost replies: %+v", mix.Name, i, r.Counts)
			}
		}
		res.Curves = append(res.Curves, loadgen.BuildCurve(opt, cfg, capacity, results))
	}
	return res
}

// printLoad summarizes the load section on stdout, one line per curve.
func printLoad(res loadResult) {
	for _, c := range res.Curves {
		knee := "none (saturated at first rung)"
		if c.KneeIndex >= 0 {
			p := c.Points[c.KneeIndex]
			knee = fmt.Sprintf("%.0f ops/s (p99 %v)", p.OfferedRate,
				time.Duration(p.P99Ns).Round(time.Microsecond))
		}
		last := c.Points[len(c.Points)-1]
		fmt.Printf("load %-6s capacity ~%.0f ops/s, knee at %s; at %.1fx capacity shed %.0f%%, p99 %v\n",
			c.Mix, c.CapacityRate, knee,
			last.TargetRate/c.CapacityRate, 100*last.ShedRate,
			time.Duration(last.P99Ns).Round(time.Microsecond))
	}
}

// Queueing-collapse guard: once a rung's p99 has climbed to this
// fraction of the per-query deadline, admission control must be
// shedding. Queueing bounded by MaxPending legitimately inflates p99
// well past an idle rung's (the queue is the product, that is what
// batching servers do), so the guard is deadline-relative, not
// idle-rung-relative: latency at the deadline with nothing shed means
// queries are dying of cancellation while the front door stays open —
// the failure mode admission control exists to prevent.
const collapseTimeoutFrac = 0.8

// loadGate enforces the self-contained shape rules on this run's load
// section: every curve must show a below-knee regime AND a saturated
// regime (otherwise the ladder failed to bracket the knee), and no
// rung may show deadline-level latency without shedding engaged.
func loadGate(res loadResult) error {
	collapse := int64(collapseTimeoutFrac * float64(res.TimeoutNs))
	for _, c := range res.Curves {
		if len(c.Points) == 0 {
			return fmt.Errorf("load gate: curve %s has no points", c.Mix)
		}
		if c.KneeIndex < 0 {
			return fmt.Errorf("load gate: curve %s saturated at the first rung — no below-knee regime measured", c.Mix)
		}
		if c.KneeIndex >= len(c.Points)-1 {
			return fmt.Errorf("load gate: curve %s never saturated — the ladder's top rung is below the knee", c.Mix)
		}
		for i, p := range c.Points {
			if collapse > 0 && p.P99Ns > collapse && p.Shed == 0 {
				return fmt.Errorf("load gate: curve %s rung %d p99 %v reached the %v deadline with zero shedding (unbounded queueing)",
					c.Mix, i, time.Duration(p.P99Ns), time.Duration(res.TimeoutNs))
			}
		}
	}
	return nil
}

// loadCompare gates below-knee latency against the committed baseline:
// each curve's worst below-knee p99 may not exceed the baseline's by
// more than 10%. The compared quantity is coarse by design. The rungs
// are placed relative to a capacity probe that itself varies run to
// run (a closed loop over a batching server is sensitive to how widely
// its batches happen to amortize), so the same rung index lands at
// different absolute rates in different runs, and knee-adjacent rungs
// queue deeply on some runs and not others — and at the lowest rungs a
// scan-heavy mix is legitimately bimodal: each query is its own batch
// (nothing to amortize against), so a Poisson burst of lone scans
// queues behind MaxInFlight and the tail jumps an order of magnitude
// on burst luck. The 10% tolerance is therefore backed by a noise
// floor at the collapse fraction of the per-query deadline — the same
// line the self-contained guard draws: below it, run-to-run
// differences are operating-point and burst noise; above it, queries
// are about to start dying of cancellation, which no healthy run
// reaches below the knee. Baselines predating schema v5 are skipped.
func loadCompare(base, cur loadResult) error {
	if len(base.Curves) == 0 {
		return nil // baseline predates the load section (schema <= v4)
	}
	baseByMix := make(map[string]loadgen.Curve, len(base.Curves))
	for _, c := range base.Curves {
		baseByMix[c.Mix] = c
	}
	const tol = 1.10
	floor := int64(collapseTimeoutFrac * float64(cur.TimeoutNs))
	for _, c := range cur.Curves {
		b, ok := baseByMix[c.Mix]
		if !ok {
			continue
		}
		cw, bw := worstBelowKneeP99(c), worstBelowKneeP99(b)
		if bw <= 0 {
			continue // baseline curve had no below-knee regime to compare
		}
		limit := int64(tol * float64(bw))
		if limit < floor {
			limit = floor
		}
		if cw > limit {
			return fmt.Errorf("load gate: curve %s worst below-knee p99 %v regressed beyond 10%% over baseline %v (noise floor %v)",
				c.Mix, time.Duration(cw), time.Duration(bw), time.Duration(floor))
		}
	}
	return nil
}

// worstBelowKneeP99 is the max p99 over the curve's below-knee rungs;
// 0 when the curve has no below-knee regime.
func worstBelowKneeP99(c loadgen.Curve) int64 {
	if c.KneeIndex < 0 || c.KneeIndex >= len(c.Points) {
		return 0
	}
	var worst int64
	for _, p := range c.Points[:c.KneeIndex+1] {
		if p.P99Ns > worst {
			worst = p.P99Ns
		}
	}
	return worst
}

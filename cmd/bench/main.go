// Command bench regenerates Figure 18: the nine workloads crossing
// {point get, 0.5%, 5%} selectivity with {1, 64, 640} concurrency,
// answered three ways — always the secondary index, always the shared
// scan, and FastColumns with run-time access path selection. No single
// access path wins everywhere; APS must match the best column of each
// workload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"testing"
	"text/tabwriter"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/index"
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/model"
	"fastcolumns/internal/optimizer"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	n := flag.Int("n", 2_000_000, "relation size")
	trials := flag.Int("trials", 3, "trials per cell (median)")
	hw1 := flag.Bool("hw1", false, "model the paper's HW1 instead of calibrating the host")
	hwfile := flag.String("hwfile", "", "load a saved host profile instead of calibrating")
	jsonOut := flag.String("json", "", "also write the grid to this file as JSON (see EXPERIMENTS.md)")
	flag.Parse()

	const domain = int32(1 << 24)
	data := workload.Uniform(1, *n, domain)
	col := storage.NewColumn("v", data)
	rel := &exec.Relation{Column: col, Index: index.Build(col, index.DefaultFanout)}
	hist, err := stats.BuildHistogram(col, 128)
	if err != nil {
		log.Fatal(err)
	}
	hw := model.HW1()
	design := model.FittedDesign()
	if *hwfile != "" {
		loaded, err := memsim.LoadProfile(*hwfile)
		if err != nil {
			log.Fatal(err)
		}
		hw = loaded
		fmt.Printf("loaded profile %s: %.1f GB/s scan, %.0f ns LLC miss, fp=%.3f\n",
			*hwfile, hw.ScanBandwidth/1e9, hw.MemAccess*1e9, hw.Pipelining)
	}
	if !*hw1 && *hwfile == "" {
		// The paper calibrates the optimizer to its machine and then fits
		// the model constants with a small number of experiments
		// (Section 3, Appendix C); do the same for this host.
		hw = memsim.Calibrate(0)
		fmt.Printf("calibrated host: %.1f GB/s scan, %.0f ns LLC miss, fp=%.3f\n",
			hw.ScanBandwidth/1e9, hw.MemAccess*1e9, hw.Pipelining)
		obs, err := fit.MeasureObservations(context.Background(), rel, 4, domain,
			[]int{1, 8, 64}, []float64{0.0002, 0.002, 0.02, 0.1}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fr, err := fit.Fit(obs, hw, model.DefaultDesign())
		if err != nil {
			log.Fatal(err)
		}
		hw.Pipelining = fr.Pipelining
		design = fr.Design(model.DefaultDesign())
		fmt.Printf("fitted: alpha=%.2f fp=%.4f fs=%.3g beta=%.3f (scan err %.3f, index err %.3f)\n",
			fr.Alpha, fr.Pipelining, fr.SortFitScale, fr.SortFitExp, fr.ScanErr, fr.IndexErr)
	}
	opt := optimizer.NewWithDesign(hw, design)

	measure := func(path model.Path, preds []scan.Predicate) time.Duration {
		times := make([]time.Duration, 0, *trials)
		for t := 0; t < *trials; t++ {
			res, err := exec.Run(context.Background(), rel, path, preds, exec.Options{})
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, res.Elapsed)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	fmt.Printf("Figure 18: nine workloads, N=%d (wall clock, median of %d)\n", *n, *trials)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tq\tindex scan\tshared scan\tFastColumns\tAPS chose\tmatched best\t")
	matched := 0
	specs := workload.Nine()
	cells := make([]benchCell, 0, len(specs))
	for _, sp := range specs {
		preds := workload.Batch(42, sp.Q, sp.Selectivity, domain)
		idx := measure(model.PathIndex, preds)
		scn := measure(model.PathScan, preds)

		d := opt.Decide(rel, hist, preds)
		aps := measure(d.Path, preds)

		best := "index"
		if scn < idx {
			best = "scan"
		}
		ok := d.Path.String() == best
		// Within noise of the best is also a match (the two paths can be
		// close around the break-even point).
		if !ok {
			worse := float64(aps) / float64(min(idx, scn))
			ok = worse < 1.4
		}
		if ok {
			matched++
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t\n",
			sp.Name, sp.Q,
			idx.Round(time.Microsecond), scn.Round(time.Microsecond),
			aps.Round(time.Microsecond), d.Path, ok)
		cells = append(cells, benchCell{
			Workload: sp.Name, Q: sp.Q, Selectivity: sp.Selectivity,
			IndexNs: idx.Nanoseconds(), ScanNs: scn.Nanoseconds(), APSNs: aps.Nanoseconds(),
			Chose: d.Path.String(), Ratio: d.Ratio, MatchedBest: ok,
		})
	}
	w.Flush()
	fmt.Printf("APS matched the best access path (or within 1.4x) in %d/%d workloads\n",
		matched, len(specs))

	skew := measureSkew(data, domain, *trials)
	fmt.Printf("skewed batch (1x20%% + 15x0.1%%): static partition %v, morsel dispatch %v (%.2fx), steady-state allocs/batch %.0f\n",
		time.Duration(skew.StaticNs).Round(time.Microsecond),
		time.Duration(skew.MorselNs).Round(time.Microsecond),
		skew.Speedup, skew.SteadyAllocs)

	if *jsonOut != "" {
		out := benchOutput{
			Schema: "fastcolumns/bench_aps/v2",
			N:      *n, Trials: *trials,
			Hardware: hw, Design: design,
			Cells: cells, MatchedBest: matched, TotalCells: len(specs),
			Skew: skew,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// measureSkew runs the morsel-runtime tentpole experiment: a batch of
// sixteen queries where one selects ~20% of the domain and fifteen
// select ~0.1% each. The static query partition (one worker straggles on
// the heavy query) is compared against morsel dispatch on a persistent
// pool with pooled result arenas, and the steady-state allocation count
// of the pooled path is measured with testing.AllocsPerRun — the
// tentpole's contract is that it reaches zero once the pools are warm.
func measureSkew(data []storage.Value, domain int32, trials int) skewResult {
	const heavySel, lightSel = 0.2, 0.001
	d := int64(domain)
	preds := make([]scan.Predicate, 0, 16)
	preds = append(preds, scan.Predicate{Lo: 0, Hi: storage.Value(int64(heavySel*float64(d)) - 1)})
	w := int64(lightSel * float64(d))
	for i := 0; i < 15; i++ {
		lo := int64(i) * (d / 16)
		preds = append(preds, scan.Predicate{Lo: storage.Value(lo), Hi: storage.Value(lo + w - 1)})
	}
	hints := make([]int, len(preds))
	for i, p := range preds {
		frac := float64(int64(p.Hi)-int64(p.Lo)+1) / float64(d)
		hints[i] = int(frac*float64(len(data))) + 1
	}

	workers := rt.Default().Workers()
	median := func(run func()) int64 {
		times := make([]time.Duration, 0, trials)
		for t := 0; t < trials; t++ {
			start := time.Now()
			run()
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2].Nanoseconds()
	}

	staticNs := median(func() {
		_ = scan.SharedStatic(data, preds, 0, workers)
	})

	pool := rt.NewPool(workers, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	batch := func() {
		res, err := scan.SharedPool(pool, arena, data, preds, 0, hints)
		if err != nil {
			log.Fatal(err)
		}
		res.Release()
	}
	// Warm until the arena's buffer rotation converges: every pooled
	// buffer must have grown to the batch's peak demand before the
	// steady state is allocation-free.
	for i := 0; i < 16; i++ {
		batch()
	}
	morselNs := median(batch)
	allocs := testing.AllocsPerRun(20, batch)

	return skewResult{
		Q: len(preds), HeavySel: heavySel, LightSel: lightSel, Workers: workers,
		StaticNs: staticNs, MorselNs: morselNs,
		Speedup:      float64(staticNs) / float64(morselNs),
		SteadyAllocs: allocs,
	}
}

// skewResult is the tentpole experiment in the JSON output: static
// query partition vs morsel dispatch on the skewed batch, plus the
// pooled path's steady-state allocation count.
type skewResult struct {
	Q            int     `json:"q"`
	HeavySel     float64 `json:"heavy_selectivity"`
	LightSel     float64 `json:"light_selectivity"`
	Workers      int     `json:"workers"`
	StaticNs     int64   `json:"static_ns"`
	MorselNs     int64   `json:"morsel_ns"`
	Speedup      float64 `json:"speedup"`
	SteadyAllocs float64 `json:"steady_state_allocs_per_batch"`
}

// benchCell is one workload cell of the Figure 18 grid in the JSON
// output (schema fastcolumns/bench_aps/v2; documented in EXPERIMENTS.md).
type benchCell struct {
	Workload    string  `json:"workload"`
	Q           int     `json:"q"`
	Selectivity float64 `json:"selectivity"`
	IndexNs     int64   `json:"index_ns"`
	ScanNs      int64   `json:"scan_ns"`
	APSNs       int64   `json:"aps_ns"`
	Chose       string  `json:"chose"`
	Ratio       float64 `json:"ratio"`
	MatchedBest bool    `json:"matched_best"`
}

// benchOutput is the -json document: the full grid plus the hardware
// profile and design constants the optimizer ran with, so a stored run
// is reproducible and comparable across machines.
type benchOutput struct {
	Schema      string         `json:"schema"`
	N           int            `json:"n"`
	Trials      int            `json:"trials"`
	Hardware    model.Hardware `json:"hardware"`
	Design      model.Design   `json:"design"`
	Cells       []benchCell    `json:"cells"`
	MatchedBest int            `json:"matched_best"`
	TotalCells  int            `json:"total_cells"`
	Skew        skewResult     `json:"skew"`
}

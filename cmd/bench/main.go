// Command bench regenerates Figure 18: the nine workloads crossing
// {point get, 0.5%, 5%} selectivity with {1, 64, 640} concurrency,
// answered three ways — always the secondary index, always the shared
// scan, and FastColumns with run-time access path selection. No single
// access path wins everywhere; APS must match the best column of each
// workload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"testing"
	"text/tabwriter"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/index"
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/optimizer"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	n := flag.Int("n", 2_000_000, "relation size")
	trials := flag.Int("trials", 3, "trials per cell (median)")
	hw1 := flag.Bool("hw1", false, "model the paper's HW1 instead of calibrating the host")
	hwfile := flag.String("hwfile", "", "load a saved host profile instead of calibrating")
	jsonOut := flag.String("json", "", "also write the grid to this file as JSON (see EXPERIMENTS.md)")
	compare := flag.String("compare", "", "compare this run's shared-scan experiments against a committed baseline JSON; exit nonzero on a >10% speedup regression")
	flag.Parse()

	const domain = int32(1 << 24)
	data := workload.Uniform(1, *n, domain)
	col := storage.NewColumn("v", data)
	rel := &exec.Relation{Column: col, Index: index.Build(col, index.DefaultFanout)}
	hist, err := stats.BuildHistogram(col, 128)
	if err != nil {
		log.Fatal(err)
	}
	hw := model.HW1()
	design := model.FittedDesign()
	if *hwfile != "" {
		loaded, err := memsim.LoadProfile(*hwfile)
		if err != nil {
			log.Fatal(err)
		}
		hw = loaded
		fmt.Printf("loaded profile %s: %.1f GB/s scan, %.0f ns LLC miss, fp=%.3f\n",
			*hwfile, hw.ScanBandwidth/1e9, hw.MemAccess*1e9, hw.Pipelining)
	}
	if !*hw1 && *hwfile == "" {
		// The paper calibrates the optimizer to its machine and then fits
		// the model constants with a small number of experiments
		// (Section 3, Appendix C); do the same for this host.
		hw = memsim.Calibrate(0)
		fmt.Printf("calibrated host: %.1f GB/s scan, %.0f ns LLC miss, fp=%.3f\n",
			hw.ScanBandwidth/1e9, hw.MemAccess*1e9, hw.Pipelining)
		obs, err := fit.MeasureObservations(context.Background(), rel, 4, domain,
			[]int{1, 8, 64}, []float64{0.0002, 0.002, 0.02, 0.1}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fr, err := fit.Fit(obs, hw, model.DefaultDesign())
		if err != nil {
			log.Fatal(err)
		}
		hw.Pipelining = fr.Pipelining
		design = fr.Design(model.DefaultDesign())
		fmt.Printf("fitted: alpha=%.2f fp=%.4f fs=%.3g beta=%.3f (scan err %.3f, index err %.3f)\n",
			fr.Alpha, fr.Pipelining, fr.SortFitScale, fr.SortFitExp, fr.ScanErr, fr.IndexErr)
	}
	opt := optimizer.NewWithDesign(hw, design)

	measure := func(path model.Path, preds []scan.Predicate) time.Duration {
		times := make([]time.Duration, 0, *trials)
		for t := 0; t < *trials; t++ {
			res, err := exec.Run(context.Background(), rel, path, preds, exec.Options{})
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, res.Elapsed)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	fmt.Printf("Figure 18: nine workloads, N=%d (wall clock, median of %d)\n", *n, *trials)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "workload\tq\tindex scan\tshared scan\tFastColumns\tAPS chose\tmatched best\t")
	matched := 0
	specs := workload.Nine()
	cells := make([]benchCell, 0, len(specs))
	for _, sp := range specs {
		preds := workload.Batch(42, sp.Q, sp.Selectivity, domain)
		idx := measure(model.PathIndex, preds)
		scn := measure(model.PathScan, preds)

		d := opt.Decide(rel, hist, preds)
		aps := measure(d.Path, preds)

		best := "index"
		if scn < idx {
			best = "scan"
		}
		ok := d.Path.String() == best
		// Within noise of the best is also a match (the two paths can be
		// close around the break-even point).
		if !ok {
			worse := float64(aps) / float64(min(idx, scn))
			ok = worse < 1.4
		}
		if ok {
			matched++
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t\n",
			sp.Name, sp.Q,
			idx.Round(time.Microsecond), scn.Round(time.Microsecond),
			aps.Round(time.Microsecond), d.Path, ok)
		cells = append(cells, benchCell{
			Workload: sp.Name, Q: sp.Q, Selectivity: sp.Selectivity,
			IndexNs: idx.Nanoseconds(), ScanNs: scn.Nanoseconds(), APSNs: aps.Nanoseconds(),
			Chose: d.Path.String(), Ratio: d.Ratio, MatchedBest: ok,
		})
	}
	w.Flush()
	fmt.Printf("APS matched the best access path (or within 1.4x) in %d/%d workloads\n",
		matched, len(specs))

	skew := measureSkew(data, domain, *trials)
	fmt.Printf("skewed batch (1x20%% + 15x0.1%%): static partition %v, morsel dispatch %v (%.2fx), steady-state allocs/batch %.0f\n",
		time.Duration(skew.StaticNs).Round(time.Microsecond),
		time.Duration(skew.MorselNs).Round(time.Microsecond),
		skew.Speedup, skew.SteadyAllocs)

	// The compressed fixture for the packed SWAR experiments: a dictionary-
	// friendly domain on the same relation size.
	const domainC = int32(1 << 15)
	dataC := workload.Uniform(3, *n, domainC)
	colC := storage.NewColumn("vc", dataC)
	ccC, err := storage.Compress(colC)
	if err != nil {
		log.Fatal(err)
	}
	if !*hw1 && *hwfile == "" {
		// Calibrate the packed-scan constants (Appendix D's W and the
		// packed alpha) on the host, the same way the scan and index
		// constants were fitted above.
		relC := &exec.Relation{Column: colC, Compressed: ccC, Index: index.Build(colC, index.DefaultFanout)}
		obsC, err := fit.MeasureObservations(context.Background(), relC, 4, domainC,
			[]int{1, 8, 64}, []float64{0.002, 0.02, 0.1}, 2)
		if err != nil {
			log.Fatal(err)
		}
		frC, err := fit.Fit(obsC, hw, model.DefaultDesign())
		if err != nil {
			log.Fatal(err)
		}
		if frC.ScanWidth > 0 {
			design.ScanSIMDWidth = frC.ScanWidth
			design.PackedAlpha = frC.PackedAlpha
			fmt.Printf("packed fit: W=%.2f packed alpha=%.2f (packed err %.3f)\n",
				frC.ScanWidth, frC.PackedAlpha, frC.PackedErr)
		}
	}
	comp := measureCompressed(ccC, domainC, *trials, hw, design)
	for _, e := range comp.Experiments {
		fmt.Printf("compressed %s (q=%d): scalar codes %v, SWAR packed %v (%.2fx), steady-state allocs/batch %.0f\n",
			e.Name, e.Q,
			time.Duration(e.ScalarNs).Round(time.Microsecond),
			time.Duration(e.SWARNs).Round(time.Microsecond),
			e.Speedup, e.SteadyAllocs)
	}
	fmt.Printf("packed-scan drift: global ratio %.2f, max drift %.3f (threshold %.3f), stale=%v\n",
		comp.Drift.GlobalRatio, comp.Drift.MaxDrift, comp.Drift.Threshold, comp.Drift.Stale)

	// The schema-v4 estimate-error ablation: score each decision mode's
	// choices under injected misestimation against the grid's measured
	// oracle.
	regret := measureRegretGrid(rel, hist, hw, design, cells, domain, *trials)
	for _, s := range regret.Summary {
		fmt.Printf("regret %-10s err=%-4g measured mean %.2fx max %.2fx, model mean %.2fx max %.2fx\n",
			s.Mode, s.ErrFactor, s.MeanRegret, s.MaxRegret, s.MeanModelRegret, s.MaxModelRegret)
	}

	// The schema-v5 load section: open-loop sweeps over the serve path,
	// locating the saturation knee per query mix.
	ld := measureLoad(*n)
	printLoad(ld)

	// The schema-v6 coop section: cooperative vs next-window-only tails
	// under the straggler mix at 0.9x of the baseline knee.
	cp := measureCoop()
	printCoop(cp)

	out := benchOutput{
		Schema: "fastcolumns/bench_aps/v6",
		N:      *n, Trials: *trials,
		Hardware: hw, Design: design,
		Cells: cells, MatchedBest: matched, TotalCells: len(specs),
		Skew:       skew,
		Compressed: comp,
		Regret:     regret,
		Load:       ld,
		Coop:       cp,
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *compare != "" {
		if err := compareBaseline(*compare, out); err != nil {
			log.Fatal(err)
		}
		if err := regretGate(out.Regret); err != nil {
			log.Fatal(err)
		}
		if err := loadGate(out.Load); err != nil {
			log.Fatal(err)
		}
		if err := coopGate(out.Coop); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no regression against %s; robust mode beats fixed-APS under 4x misestimates; load knee bracketed with shed engaged past it; cooperative p99 beats next-window by 10%% at the straggler rung\n", *compare)
	}
}

// measureCompressed runs the packed SWAR scan experiments over the
// dictionary-compressed column: a Figure 17-style uniform batch and the
// skewed batch, each answered by the scalar code kernel (the pre-SWAR
// baseline) and the pooled SWAR morsel path. Each measured SWAR batch
// also feeds the drift accumulator with the packed cost model's
// prediction, so the run's JSON carries a staleness verdict for the
// newly fitted Appendix D constants.
func measureCompressed(cc *storage.CompressedColumn, domain int32, trials int,
	hw model.Hardware, design model.Design) compressedResult {
	n := cc.Len()
	d := int64(domain)

	fig17 := workload.Batch(17, 16, 0.002, domain)
	const heavySel, lightSel = 0.2, 0.001
	skewPreds := make([]scan.Predicate, 0, 16)
	skewPreds = append(skewPreds, scan.Predicate{Lo: 0, Hi: storage.Value(int64(heavySel*float64(d)) - 1)})
	w := int64(lightSel * float64(d))
	for i := 0; i < 15; i++ {
		lo := int64(i) * (d / 16)
		skewPreds = append(skewPreds, scan.Predicate{Lo: storage.Value(lo), Hi: storage.Value(lo + w - 1)})
	}

	pool := rt.NewPool(rt.Default().Workers(), nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	drift := obs.NewDrift(0)

	res := compressedResult{Domain: domain}
	for _, ex := range []struct {
		name  string
		preds []scan.Predicate
	}{
		{"fig17_uniform", fig17},
		{"skewed", skewPreds},
	} {
		preds := ex.preds
		// Selectivity of each range under the uniform value distribution;
		// sized hints keep the pooled path from growing buffers mid-scan.
		sels := make([]float64, len(preds))
		hints := make([]int, len(preds))
		var meanSel float64
		for i, p := range preds {
			sels[i] = float64(int64(p.Hi)-int64(p.Lo)+1) / float64(d)
			hints[i] = int(sels[i]*float64(n)) + 1
			meanSel += sels[i]
		}
		meanSel /= float64(len(preds))
		predicted := model.SharedScanPacked(model.Params{
			Workload: model.Workload{Selectivities: sels},
			Dataset:  model.Dataset{N: float64(n), TupleSize: model.PackedTupleBytes},
			Hardware: hw,
			Design:   design,
		})

		median := func(run func()) int64 {
			times := make([]time.Duration, 0, trials)
			for t := 0; t < trials; t++ {
				start := time.Now()
				run()
				times = append(times, time.Since(start))
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			return times[len(times)/2].Nanoseconds()
		}

		scalarNs := median(func() {
			_ = scan.SharedCompressedScalar(cc, preds, 0)
		})
		batch := func() {
			start := time.Now()
			r, err := scan.SharedCompressedPool(pool, arena, cc, preds, 0, hints)
			if err != nil {
				log.Fatal(err)
			}
			r.Release()
			drift.Record("scan(swar)", meanSel, predicted, time.Since(start).Seconds())
		}
		for i := 0; i < 16; i++ {
			batch() // warm the pools to the batch's peak demand
		}
		swarNs := median(batch)
		allocs := testing.AllocsPerRun(20, batch)

		res.Experiments = append(res.Experiments, compressedExperiment{
			Name: ex.name, Q: len(preds),
			ScalarNs: scalarNs, SWARNs: swarNs,
			Speedup:      float64(scalarNs) / float64(swarNs),
			SteadyAllocs: allocs,
		})
	}
	res.Drift = drift.Report()
	return res
}

// Noise ceilings for the speedup gates. A committed baseline is one
// draw from a noisy distribution; comparing a fresh run against the
// raw draw lets a lucky baseline ratchet the bar above what the
// experiment reliably reproduces (and CI re-measures at a smaller N
// than the committed run, shifting the distribution again). Each
// baseline ratio is therefore capped at the experiment's ceiling
// before the tolerance is applied, so the gate pins the invariant the
// experiment exists to pin, not the baseline's luck:
//   - the skewed-batch experiment sits at parity by design (morsel
//     dispatch pulls ahead only on skews heavier than the committed
//     1x20%+15x0.1% batch), so its ceiling is 1.0 and its tolerance is
//     wider — it catches morsel dispatch becoming materially slower
//     than the static partition, which a scheduling regression does at
//     the 0.5-0.7x scale, not the +-15% scale of cross-N timing noise;
//   - the SWAR experiments reliably reproduce >=2.2x over the scalar
//     kernel across run sizes; losing the bit-parallel advantage
//     altogether lands near 1x, far below the capped bar.
const (
	tolSpeedup  = 0.9
	skewCeiling = 1.0
	skewTol     = 0.8
	swarCeiling = 2.2
)

// compareBaseline fails when any shared-scan experiment's speedup fell
// below tolerance against the committed baseline's (capped at its
// noise ceiling — see above). Speedup ratios — not absolute times —
// are compared, so the gate is portable across hosts.
func compareBaseline(path string, cur benchOutput) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchOutput
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if bar := minf(base.Skew.Speedup, skewCeiling); base.Skew.Speedup > 0 && cur.Skew.Speedup < skewTol*bar {
		return fmt.Errorf("skewed-batch morsel speedup regressed: %.2fx vs baseline %.2fx (bar %.2fx)",
			cur.Skew.Speedup, base.Skew.Speedup, skewTol*bar)
	}
	baseByName := make(map[string]compressedExperiment, len(base.Compressed.Experiments))
	for _, e := range base.Compressed.Experiments {
		baseByName[e.Name] = e
	}
	for _, e := range cur.Compressed.Experiments {
		b, ok := baseByName[e.Name]
		if !ok || b.Speedup <= 0 {
			continue // baseline predates the experiment (schema v2)
		}
		if bar := minf(b.Speedup, swarCeiling); e.Speedup < tolSpeedup*bar {
			return fmt.Errorf("compressed %s SWAR speedup regressed: %.2fx vs baseline %.2fx (bar %.2fx)",
				e.Name, e.Speedup, b.Speedup, tolSpeedup*bar)
		}
	}
	return loadCompare(base.Load, cur.Load)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// measureSkew runs the morsel-runtime tentpole experiment: a batch of
// sixteen queries where one selects ~20% of the domain and fifteen
// select ~0.1% each. The static query partition (one worker straggles on
// the heavy query) is compared against morsel dispatch on a persistent
// pool with pooled result arenas, and the steady-state allocation count
// of the pooled path is measured with testing.AllocsPerRun — the
// tentpole's contract is that it reaches zero once the pools are warm.
func measureSkew(data []storage.Value, domain int32, trials int) skewResult {
	const heavySel, lightSel = 0.2, 0.001
	d := int64(domain)
	preds := make([]scan.Predicate, 0, 16)
	preds = append(preds, scan.Predicate{Lo: 0, Hi: storage.Value(int64(heavySel*float64(d)) - 1)})
	w := int64(lightSel * float64(d))
	for i := 0; i < 15; i++ {
		lo := int64(i) * (d / 16)
		preds = append(preds, scan.Predicate{Lo: storage.Value(lo), Hi: storage.Value(lo + w - 1)})
	}
	hints := make([]int, len(preds))
	for i, p := range preds {
		frac := float64(int64(p.Hi)-int64(p.Lo)+1) / float64(d)
		hints[i] = int(frac*float64(len(data))) + 1
	}

	workers := rt.Default().Workers()
	median := func(run func()) int64 {
		times := make([]time.Duration, 0, trials)
		for t := 0; t < trials; t++ {
			start := time.Now()
			run()
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2].Nanoseconds()
	}

	staticNs := median(func() {
		_ = scan.SharedStatic(data, preds, 0, workers)
	})

	pool := rt.NewPool(workers, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	batch := func() {
		res, err := scan.SharedPool(pool, arena, data, preds, 0, hints)
		if err != nil {
			log.Fatal(err)
		}
		res.Release()
	}
	// Warm until the arena's buffer rotation converges: every pooled
	// buffer must have grown to the batch's peak demand before the
	// steady state is allocation-free.
	for i := 0; i < 16; i++ {
		batch()
	}
	morselNs := median(batch)
	allocs := testing.AllocsPerRun(20, batch)

	return skewResult{
		Q: len(preds), HeavySel: heavySel, LightSel: lightSel, Workers: workers,
		StaticNs: staticNs, MorselNs: morselNs,
		Speedup:      float64(staticNs) / float64(morselNs),
		SteadyAllocs: allocs,
	}
}

// skewResult is the tentpole experiment in the JSON output: static
// query partition vs morsel dispatch on the skewed batch, plus the
// pooled path's steady-state allocation count.
type skewResult struct {
	Q            int     `json:"q"`
	HeavySel     float64 `json:"heavy_selectivity"`
	LightSel     float64 `json:"light_selectivity"`
	Workers      int     `json:"workers"`
	StaticNs     int64   `json:"static_ns"`
	MorselNs     int64   `json:"morsel_ns"`
	Speedup      float64 `json:"speedup"`
	SteadyAllocs float64 `json:"steady_state_allocs_per_batch"`
}

// benchCell is one workload cell of the Figure 18 grid in the JSON
// output (schema fastcolumns/bench_aps/v2; documented in EXPERIMENTS.md).
type benchCell struct {
	Workload    string  `json:"workload"`
	Q           int     `json:"q"`
	Selectivity float64 `json:"selectivity"`
	IndexNs     int64   `json:"index_ns"`
	ScanNs      int64   `json:"scan_ns"`
	APSNs       int64   `json:"aps_ns"`
	Chose       string  `json:"chose"`
	Ratio       float64 `json:"ratio"`
	MatchedBest bool    `json:"matched_best"`
}

// compressedExperiment is one packed-scan comparison: the scalar code
// kernel vs the pooled SWAR path on the same batch.
type compressedExperiment struct {
	Name         string  `json:"name"`
	Q            int     `json:"q"`
	ScalarNs     int64   `json:"scalar_ns"`
	SWARNs       int64   `json:"swar_ns"`
	Speedup      float64 `json:"speedup"`
	SteadyAllocs float64 `json:"steady_state_allocs_per_batch"`
}

// compressedResult is the schema-v3 compressed section: the experiment
// rows plus the drift report the packed cost model accumulated over the
// measured batches.
type compressedResult struct {
	Domain      int32                  `json:"domain"`
	Experiments []compressedExperiment `json:"experiments"`
	Drift       obs.DriftReport        `json:"drift"`
}

// benchOutput is the -json document: the full grid plus the hardware
// profile and design constants the optimizer ran with, so a stored run
// is reproducible and comparable across machines.
type benchOutput struct {
	Schema      string           `json:"schema"`
	N           int              `json:"n"`
	Trials      int              `json:"trials"`
	Hardware    model.Hardware   `json:"hardware"`
	Design      model.Design     `json:"design"`
	Cells       []benchCell      `json:"cells"`
	MatchedBest int              `json:"matched_best"`
	TotalCells  int              `json:"total_cells"`
	Skew        skewResult       `json:"skew"`
	Compressed  compressedResult `json:"compressed"`
	// Regret is the schema-v4 addition: the estimate-error ablation grid
	// (aps-fixed vs aps-refit vs aps-robust vs adaptive against the
	// measured oracle).
	Regret regretResult `json:"regret"`
	// Load is the schema-v5 addition: open-loop latency-vs-offered-load
	// sweeps over the serve path, per query mix, with the saturation
	// knee located on a capacity-relative rate ladder.
	Load loadResult `json:"load"`
	// Coop is the schema-v6 addition: cooperative shared-scan tails
	// versus next-window-only batching under the straggler mix at 0.9x
	// of the baseline server's saturation knee.
	Coop coopResult `json:"coop"`
}

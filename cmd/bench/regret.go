package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"fastcolumns/internal/adaptive"
	"fastcolumns/internal/exec"
	"fastcolumns/internal/model"
	"fastcolumns/internal/optimizer"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/workload"
)

// The regret grid's robust-mode policy: a decision whose flip margin is
// below the assumed misestimation factor cannot be trusted, so it is
// re-decided by minimax regret over that factor. Threshold and bound
// match: the policy hedges exactly the decisions the injected error
// could flip.
const (
	regretMarginThreshold = 4
	regretErrorBound      = 4
)

// regretErrFactors are the injected selectivity misestimation factors:
// 4x underestimates (the expensive direction: a scan-best workload gets
// probed), honest estimates, and 4x overestimates.
var regretErrFactors = []float64{0.25, 1, 4}

// regretLadder adds near-crossover workloads to the regret grid beyond
// the Figure 18 nine: single-query cells in the selectivity band where a
// 4x misestimate genuinely flips the APS decision. The nine sit far from
// the boundary (that is Figure 18's point), so without the ladder the
// ablation would mostly compare modes on decisions error cannot move.
var regretLadder = []struct {
	name string
	q    int
	sel  float64
}{
	{"xover/1%", 1, 0.01},
	{"xover/3%", 1, 0.03},
	{"xover/4%", 1, 0.04},
}

// regretCell is one (workload, error factor, mode) row of the schema-v4
// regret grid: which path the mode chose under the injected
// misestimation, what that path measured, and the regret against the
// oracle (the faster of the two measured static paths).
type regretCell struct {
	Workload    string  `json:"workload"`
	Q           int     `json:"q"`
	Selectivity float64 `json:"selectivity"`
	// ErrFactor scales the optimizer's selectivity estimates; 0 marks the
	// adaptive rows, which never consult an estimate.
	ErrFactor float64 `json:"err_factor"`
	Mode      string  `json:"mode"`
	Chose     string  `json:"chose"`
	Hedged    bool    `json:"hedged,omitempty"`
	Ns        int64   `json:"ns"`
	OracleNs  int64   `json:"oracle_ns"`
	Regret    float64 `json:"regret"`
	// ModelRegret scores the same choice against the cost model's own
	// truth (costs at the unscaled selectivities): chosen-path model cost
	// over best-path model cost. It isolates decision quality from how
	// well the constants fit the bench host, so the benchgate compares it
	// portably; 0 for the adaptive rows, which the model does not cost.
	ModelRegret float64 `json:"model_regret,omitempty"`
}

// regretSummary aggregates one (mode, error factor) column of the grid.
type regretSummary struct {
	Mode            string  `json:"mode"`
	ErrFactor       float64 `json:"err_factor"`
	MeanRegret      float64 `json:"mean_regret"`
	MaxRegret       float64 `json:"max_regret"`
	MeanModelRegret float64 `json:"mean_model_regret,omitempty"`
	MaxModelRegret  float64 `json:"max_model_regret,omitempty"`
}

// regretResult is the schema-v4 estimate-error ablation: how much each
// decision mode loses to an oracle when selectivity estimates are wrong
// by a controlled factor.
//
//   - aps-fixed:  APS with the paper's committed constants.
//   - aps-refit:  APS with this run's (host-refitted when calibrated)
//     constants.
//   - aps-robust: aps-refit plus the minimax-regret hedge on thin-margin
//     decisions.
//   - adaptive:   the Smooth-Scan path, which ignores estimates
//     entirely.
type regretResult struct {
	ErrFactors      []float64       `json:"err_factors"`
	MarginThreshold float64         `json:"margin_threshold"`
	ErrorBound      float64         `json:"error_bound"`
	Cells           []regretCell    `json:"cells"`
	Summary         []regretSummary `json:"summary"`
}

// measureRegretGrid builds the schema-v4 ablation from the Figure 18
// grid's already-measured path times: each mode's decisions under each
// injected error factor select one of the measured numbers, so the grid
// isolates decision quality from measurement noise — every mode is
// scored against the same pair of medians.
func measureRegretGrid(rel *exec.Relation, hist *stats.Histogram, hw model.Hardware,
	design model.Design, gridCells []benchCell, domain int32, trials int) regretResult {
	res := regretResult{
		ErrFactors:      regretErrFactors,
		MarginThreshold: regretMarginThreshold,
		ErrorBound:      regretErrorBound,
	}

	// The ladder cells are regret-only; measure their two static paths
	// the same way the Figure 18 loop measured its cells.
	cells := gridCells
	for _, l := range regretLadder {
		preds := workload.Batch(42, l.q, l.sel, domain)
		idxNs := medianNs(trials, func() {
			if _, err := exec.Run(context.Background(), rel, model.PathIndex, preds, exec.Options{}); err != nil {
				log.Fatal(err)
			}
		})
		scanNs := medianNs(trials, func() {
			if _, err := exec.Run(context.Background(), rel, model.PathScan, preds, exec.Options{}); err != nil {
				log.Fatal(err)
			}
		})
		cells = append(cells, benchCell{
			Workload: l.name, Q: l.q, Selectivity: l.sel,
			IndexNs: idxNs, ScanNs: scanNs,
		})
	}

	fixed := optimizer.NewWithDesign(hw, model.FittedDesign())
	refit := optimizer.NewWithDesign(hw, design)
	robust := optimizer.NewWithDesign(hw, design)
	modes := []struct {
		name string
		opt  *optimizer.Optimizer
	}{
		{"aps-fixed", fixed},
		{"aps-refit", refit},
		{"aps-robust", robust},
	}

	for _, f := range regretErrFactors {
		fixed.SetRobust(optimizer.RobustPolicy{EstimateError: f})
		refit.SetRobust(optimizer.RobustPolicy{EstimateError: f})
		robust.SetRobust(optimizer.RobustPolicy{
			MarginThreshold: regretMarginThreshold,
			ErrorBound:      regretErrorBound,
			EstimateError:   f,
		})
		for _, c := range cells {
			preds := workload.Batch(42, c.Q, c.Selectivity, domain)
			oracle := min(c.IndexNs, c.ScanNs)
			scanTrue, idxTrue := modelTruth(rel, hist, hw, design, preds)
			for _, m := range modes {
				d := m.opt.Decide(rel, hist, preds)
				ns, mc := c.ScanNs, scanTrue
				if d.Path == model.PathIndex {
					ns, mc = c.IndexNs, idxTrue
				}
				res.Cells = append(res.Cells, regretCell{
					Workload: c.Workload, Q: c.Q, Selectivity: c.Selectivity,
					ErrFactor: f, Mode: m.name,
					Chose: d.Path.String(), Hedged: d.Hedged,
					Ns: ns, OracleNs: oracle,
					Regret:      float64(ns) / float64(oracle),
					ModelRegret: mc / min(scanTrue, idxTrue),
				})
			}
		}
	}

	// The adaptive path never consults an estimate, so it is measured
	// once per workload and recorded under err_factor 0.
	budget := adaptive.BudgetFromModel(rel.Column.Len(), float64(rel.Column.TupleSize()), hw, design)
	for _, c := range cells {
		preds := workload.Batch(42, c.Q, c.Selectivity, domain)
		oracle := min(c.IndexNs, c.ScanNs)
		ns := medianNs(trials, func() {
			for _, p := range preds {
				if _, err := adaptive.Select(rel, p, budget); err != nil {
					log.Fatal(err)
				}
			}
		})
		res.Cells = append(res.Cells, regretCell{
			Workload: c.Workload, Q: c.Q, Selectivity: c.Selectivity,
			ErrFactor: 0, Mode: "adaptive",
			Chose: "adaptive", Ns: ns, OracleNs: oracle,
			Regret: float64(ns) / float64(oracle),
		})
	}

	res.Summary = summarizeRegret(res.Cells)
	return res
}

// modelTruth returns the cost model's scan and index predictions for
// the batch at the histogram's unscaled selectivity estimates — the
// model's own ground truth, against which ModelRegret scores a decision
// made under injected estimate error.
func modelTruth(rel *exec.Relation, hist *stats.Histogram, hw model.Hardware,
	design model.Design, preds []scan.Predicate) (scanCost, idxCost float64) {
	sels := make([]float64, len(preds))
	for i, p := range preds {
		sels[i] = hist.EstimateRange(p.Lo, p.Hi)
	}
	p := model.Params{
		Workload: model.Workload{Selectivities: sels},
		Dataset:  model.Dataset{N: float64(rel.Column.Len()), TupleSize: float64(rel.Column.TupleSize())},
		Hardware: hw,
		Design:   design,
	}
	return model.SharedScan(p), model.ConcIndex(p)
}

// summarizeRegret folds the cells into per-(mode, factor) means.
func summarizeRegret(cells []regretCell) []regretSummary {
	type key struct {
		mode string
		f    float64
	}
	agg := make(map[key]*regretSummary)
	order := make([]key, 0, 8)
	counts := make(map[key]int)
	for _, c := range cells {
		k := key{c.Mode, c.ErrFactor}
		s, ok := agg[k]
		if !ok {
			s = &regretSummary{Mode: c.Mode, ErrFactor: c.ErrFactor}
			agg[k] = s
			order = append(order, k)
		}
		s.MeanRegret += c.Regret
		s.MaxRegret = max(s.MaxRegret, c.Regret)
		s.MeanModelRegret += c.ModelRegret
		s.MaxModelRegret = max(s.MaxModelRegret, c.ModelRegret)
		counts[k]++
	}
	out := make([]regretSummary, 0, len(order))
	for _, k := range order {
		s := agg[k]
		s.MeanRegret /= float64(counts[k])
		s.MeanModelRegret /= float64(counts[k])
		out = append(out, *s)
	}
	return out
}

// regretGate enforces the robustness contract the grid exists to prove:
// under injected selectivity underestimates (the catastrophic direction
// — a scan-best workload gets probed and the index path's cost explodes
// with the real result size), the robust mode's mean model regret must
// beat fixed-APS by the guard ratio. Model regret — decision quality
// against the cost model's own truth — drives the gate rather than wall
// clock, so it holds on any host regardless of how well the HW1
// constants happen to fit the bench machine; the committed grid carries
// the measured regret alongside for the calibrated story.
func regretGate(r regretResult) error {
	const guard = 1.15
	fixed := meanModelRegretUnderEst(r, "aps-fixed")
	robust := meanModelRegretUnderEst(r, "aps-robust")
	if fixed == 0 || robust == 0 {
		return fmt.Errorf("regret gate: grid has no underestimate cells (fixed %.3f, robust %.3f)", fixed, robust)
	}
	if robust*guard > fixed {
		return fmt.Errorf("regret gate: robust mode's underestimate regret %.3f does not beat fixed-APS %.3f by the %.2fx guard",
			robust, fixed, guard)
	}
	return nil
}

// meanModelRegretUnderEst averages a mode's model regret over every cell
// whose injected error factor is below 1 (selectivity underestimates).
func meanModelRegretUnderEst(r regretResult, mode string) float64 {
	var sum float64
	var n int
	for _, c := range r.Cells {
		if c.Mode != mode || c.ErrFactor <= 0 || c.ErrFactor >= 1 {
			continue
		}
		sum += c.ModelRegret
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// medianNs times run trials times and returns the median in nanoseconds.
func medianNs(trials int, run func()) int64 {
	times := make([]time.Duration, 0, trials)
	for t := 0; t < trials; t++ {
		start := time.Now()
		run()
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2].Nanoseconds()
}

// Command calibrate reproduces the model-verification machinery of
// Appendix C and Figure 20.
//
// With no flags it calibrates the host (the Intel Memory Latency Checker
// step of Section 3) and prints the machine profile.
//
// With -fit it generates access-path observations by running the
// simulated executors (real B+-tree walks charged on the memory-hierarchy
// simulator) across a (q, selectivity, N) sweep, fits the model's
// constants with Nelder-Mead, and reports them with the normalized
// least-square errors.
//
// With -fig20 it prints the eight panels of Figure 20: measured
// (simulated) vs model-predicted latency as concurrency, selectivity and
// data size vary, each annotated with the per-panel "S:… I:…" error sums.
//
// With -wall the observations come from wall-clock runs of the real
// engine on the host instead of the simulator.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/index"
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/model"
	"fastcolumns/internal/simexec"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/workload"
)

const domain = int32(1 << 24)

var (
	fitFlag  = flag.Bool("fit", false, "fit model constants to observations")
	fig20    = flag.Bool("fig20", false, "print the Figure 20 panels")
	wallFlag = flag.Bool("wall", false, "observe wall-clock runs instead of the simulator")
	nFlag    = flag.Int("n", 1_000_000, "relation size for observations")
	saveFlag = flag.String("save", "", "write the calibrated host profile to this JSON file")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	flag.Parse()

	if !*fitFlag && !*fig20 {
		hw := memsim.Calibrate(0)
		fmt.Println("host profile (Memory Latency Checker substitute):")
		fmt.Printf("  scan bandwidth   %.1f GB/s\n", hw.ScanBandwidth/1e9)
		fmt.Printf("  LLC miss         %.0f ns\n", hw.MemAccess*1e9)
		fmt.Printf("  pipelining fp    %.4f (measured shared predicate-eval rate)\n", hw.Pipelining)
		fmt.Printf("  result/leaf BW   %.1f GB/s (streaming/2)\n", hw.ResultBandwidth/1e9)
		if *saveFlag != "" {
			if err := memsim.SaveProfile(*saveFlag, hw); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("profile written to %s (reuse with cmd/bench -hwfile or cmd/fastcol -hwfile)\n", *saveFlag)
		}
		return
	}

	hw := model.HW1()
	observe := simObserver(hw, *nFlag)
	source := "simulated executors (HW1 profile)"
	if *wallFlag {
		hw = memsim.Calibrate(0)
		observe = wallObserver(*nFlag)
		source = "wall-clock engine runs (calibrated host profile)"
	}

	qs := []int{1, 4, 16, 64, 128}
	sels := []float64{0, 0.001, 0.002, 0.01}
	var obs []fit.Observation
	for _, q := range qs {
		for _, s := range sels {
			o := observe(q, s)
			obs = append(obs, o)
		}
	}
	fr, err := fit.Fit(obs, hw, model.DefaultDesign())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observations: %d from %s, N=%d\n", len(obs), source, *nFlag)
	fmt.Printf("fitted constants: alpha=%.3f fp=%.5f fs=%.4g beta=%.3f\n",
		fr.Alpha, fr.Pipelining, fr.SortFitScale, fr.SortFitExp)
	fmt.Printf("normalized least-square error: scan %.4f, index %.4f\n", fr.ScanErr, fr.IndexErr)
	fmt.Printf("(the paper reports alpha=8, beta=0.38, fs=6e-6 on its primary server)\n")

	if *fig20 {
		printPanels(hw, fr, observe, *nFlag)
	}
}

// observer returns one measured Observation at (q, s).
type observer func(q int, s float64) fit.Observation

func simObserver(hw model.Hardware, n int) observer {
	eng := simexec.New(hw, model.DefaultDesign(), workload.Uniform(1, n, domain), 4)
	return func(q int, s float64) fit.Observation {
		preds := workload.Batch(int64(q)*7919+int64(s*1e7), q, s, domain)
		rows := 0
		for _, p := range preds {
			rows += eng.Count(p)
		}
		realized := float64(rows) / float64(q) / float64(n)
		return fit.Observation{
			Q: q, Selectivity: realized, N: float64(n), TupleSize: 4,
			ScanSec:  eng.SharedScan(preds),
			IndexSec: eng.ConcIndex(preds),
		}
	}
}

func wallObserver(n int) observer {
	data := workload.Uniform(1, n, domain)
	col := storage.NewColumn("v", data)
	rel := &exec.Relation{Column: col, Index: index.Build(col, index.DefaultFanout)}
	return func(q int, s float64) fit.Observation {
		obs, err := fit.MeasureObservations(context.Background(), rel, 4, domain, []int{q}, []float64{s}, 3)
		if err != nil {
			log.Fatal(err)
		}
		return obs[0]
	}
}

// printPanels emits the Figure 20 panels: measured vs predicted latency
// along each swept axis.
func printPanels(hw model.Hardware, fr fit.FitResult, observe observer, n int) {
	fittedHW := hw
	fittedHW.Pipelining = fr.Pipelining
	design := fr.Design(model.DefaultDesign())
	predict := func(q int, s float64, nn float64) (scanSec, idxSec float64) {
		p := model.Params{
			Workload: model.Uniform(q, s),
			Dataset:  model.Dataset{N: nn, TupleSize: 4},
			Hardware: fittedHW,
			Design:   design,
		}
		return model.SharedScan(p), model.ConcIndex(p)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	// Panels 1-4: latency vs q at fixed selectivity.
	for _, s := range []float64{0, 0.001, 0.002, 0.01} {
		fmt.Fprintf(w, "\npanel: N=%d, sel=%.1f%%, latency vs q\t\t\t\t\t\n", n, s*100)
		fmt.Fprintln(w, "q\tscan(meas)\tscan(model)\tindex(meas)\tindex(model)\t")
		var se, ie float64
		for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			o := observe(q, s)
			ps, pi := predict(q, s, float64(n))
			se += sq((ps - o.ScanSec) / o.ScanSec)
			ie += sq((pi - o.IndexSec) / o.IndexSec)
			fmt.Fprintf(w, "%d\t%.5f\t%.5f\t%.5f\t%.5f\t\n", q, o.ScanSec, ps, o.IndexSec, pi)
		}
		fmt.Fprintf(w, "errors\tS:%.3f\t\tI:%.3f\t\t\n", se, ie)
	}
	// Panels 5-6: latency vs selectivity at q=32 and q=128.
	for _, q := range []int{32, 128} {
		fmt.Fprintf(w, "\npanel: N=%d, q=%d, latency vs selectivity\t\t\t\t\t\n", n, q)
		fmt.Fprintln(w, "sel%\tscan(meas)\tscan(model)\tindex(meas)\tindex(model)\t")
		for _, s := range []float64{0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02} {
			o := observe(q, s)
			ps, pi := predict(q, s, float64(n))
			fmt.Fprintf(w, "%.2f\t%.5f\t%.5f\t%.5f\t%.5f\t\n", s*100, o.ScanSec, ps, o.IndexSec, pi)
		}
	}
	w.Flush()
	fmt.Println("\npanels 7-8 (latency vs data size, q=64) require rebuilding the engine per size:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	for _, s := range []float64{0.001, 0.01} {
		fmt.Fprintf(w, "\npanel: q=64, sel=%.1f%%, latency vs N\t\t\t\t\t\n", s*100)
		fmt.Fprintln(w, "N\tscan(meas)\tscan(model)\tindex(meas)\tindex(model)\t")
		for _, nn := range []int{100_000, 300_000, 1_000_000} {
			eng := simexec.New(hw, model.DefaultDesign(), workload.Uniform(1, nn, domain), 4)
			preds := workload.Batch(64*7919+int64(s*1e7), 64, s, domain)
			var ms, mi float64
			ms = eng.SharedScan(preds)
			mi = eng.ConcIndex(preds)
			ps, pi := predict(64, s, float64(nn))
			fmt.Fprintf(w, "%d\t%.5f\t%.5f\t%.5f\t%.5f\t\n", nn, ms, ps, mi, pi)
		}
	}
	w.Flush()
}

func sq(x float64) float64 { return x * x }

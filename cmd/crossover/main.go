// Command crossover regenerates the experimental crossover figures of
// Section 4 (Figures 12-17). Wall-clock runs execute the real engine on
// the host (at a scaled-down relation size); simulated runs execute the
// real data structures under a hardware profile in the memory-hierarchy
// simulator, which is how the paper's alternate machines are reproduced.
//
// Usage:
//
//	crossover -fig 12             # latency vs selectivity, q=1 (wall clock)
//	crossover -fig 13             # crossover vs concurrency (sim + model)
//	crossover -fig 13 -wall       # add wall-clock measured points
//	crossover -fig 14             # crossover vs data size (sim + model)
//	crossover -fig 15             # crossover vs column-group width
//	crossover -fig 16             # measured(sim) vs predicted on 4 machines
//	crossover -fig 17             # 32-bit vs 16-bit (compressed) keys
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/simexec"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/workload"
)

var (
	figFlag    = flag.Int("fig", 12, "figure to regenerate (12-17)")
	nFlag      = flag.Int("n", 2_000_000, "wall-clock relation size")
	simNFlag   = flag.Int("simn", 1_000_000, "simulated relation size")
	trialsFlag = flag.Int("trials", 3, "wall-clock trials per point (median)")
	wallFlag   = flag.Bool("wall", false, "add wall-clock measurements to sim figures")
)

const domain = int32(1 << 24)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossover: ")
	flag.Parse()
	switch *figFlag {
	case 12:
		figure12()
	case 13:
		figure13()
	case 14:
		figure14()
	case 15:
		figure15()
	case 16:
		figure16()
	case 17:
		figure17()
	default:
		log.Fatalf("unknown figure %d", *figFlag)
	}
}

// wallRig is a relation prepared for wall-clock measurements.
type wallRig struct {
	rel  *exec.Relation
	data []storage.Value
}

func newWallRig(n int, groupWidth int) *wallRig {
	data := workload.Uniform(1, n, domain)
	var col *storage.Column
	if groupWidth <= 1 {
		col = storage.NewColumn("v", data)
	} else {
		names := make([]string, groupWidth)
		cols := make([][]storage.Value, groupWidth)
		names[0] = "v"
		cols[0] = data
		for j := 1; j < groupWidth; j++ {
			names[j] = fmt.Sprintf("pad%d", j)
			cols[j] = workload.Uniform(int64(j+10), n, domain)
		}
		g, err := storage.NewColumnGroup(names, cols)
		if err != nil {
			log.Fatal(err)
		}
		col = g.Column("v")
	}
	return &wallRig{
		rel:  &exec.Relation{Column: col, Index: index.Build(col, index.DefaultFanout)},
		data: data,
	}
}

// median wall-clock latency of running the batch via the given path.
func (r *wallRig) measure(path model.Path, preds []scan.Predicate, trials int) time.Duration {
	times := make([]time.Duration, 0, trials)
	for t := 0; t < trials; t++ {
		res, err := exec.Run(context.Background(), r.rel, path, preds, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, res.Elapsed)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// wallCrossover bisects the per-query selectivity where index latency
// meets scan latency for a batch of q queries.
func (r *wallRig) wallCrossover(q, trials int) float64 {
	diff := func(s float64) float64 {
		preds := workload.Batch(7, q, s, domain)
		idx := r.measure(model.PathIndex, preds, trials)
		scn := r.measure(model.PathScan, preds, trials)
		return float64(idx - scn)
	}
	lo, hi := 1e-6, 0.3
	if diff(lo) >= 0 {
		return 0
	}
	if diff(hi) <= 0 {
		return 1
	}
	for i := 0; i < 9; i++ {
		mid := math.Sqrt(lo * hi)
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

func figure12() {
	n := *nFlag
	rig := newWallRig(n, 1)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Printf("Figure 12: single-query latency vs selectivity, N=%d (wall clock)\n", n)
	fmt.Fprintln(w, "selectivity\tindex\tfast scan\twinner\t")
	sels := []float64{0.0001, 0.0003, 0.001, 0.002, 0.005, 0.01, 0.03, 0.1, 0.3, 1.0}
	var crossLo, crossHi float64 = -1, -1
	prevWinner := ""
	for _, s := range sels {
		preds := workload.Batch(3, 1, s, domain)
		idx := rig.measure(model.PathIndex, preds, *trialsFlag)
		scn := rig.measure(model.PathScan, preds, *trialsFlag)
		winner := "index"
		if scn < idx {
			winner = "scan"
		}
		if prevWinner == "index" && winner == "scan" {
			crossLo, crossHi = prevSel(sels, s), s
		}
		prevWinner = winner
		fmt.Fprintf(w, "%.4f%%\t%v\t%v\t%s\t\n", s*100, idx.Round(time.Microsecond), scn.Round(time.Microsecond), winner)
	}
	w.Flush()
	if crossLo > 0 {
		fmt.Printf("crossover between %.4f%% and %.4f%% (paper on its server: 0.59%%)\n",
			crossLo*100, crossHi*100)
	}
	s, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: 4}, model.HW1(), model.FittedDesign())
	if ok {
		fmt.Printf("fitted model (HW1 constants) predicts %.4f%% at this N\n", s*100)
	}
}

func prevSel(sels []float64, cur float64) float64 {
	for i, s := range sels {
		if s == cur && i > 0 {
			return sels[i-1]
		}
	}
	return cur
}

func figure13() {
	simN := *simNFlag
	eng := simexec.New(model.HW1(), model.FittedDesign(), workload.Uniform(1, simN, domain), 4)
	d := model.Dataset{N: float64(simN), TupleSize: 4}
	fmt.Printf("Figure 13: crossover selectivity vs concurrency, N=%d\n", simN)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	header := "q\tsimulated\tmodel\t"
	if *wallFlag {
		header += "wall\t"
	}
	fmt.Fprintln(w, header)
	var rig *wallRig
	if *wallFlag {
		rig = newWallRig(*nFlag, 1)
	}
	for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		sim, okSim := eng.Crossover(q, domain)
		mod, okMod := model.Crossover(q, d, model.HW1(), model.FittedDesign())
		row := fmt.Sprintf("%d\t%s\t%s\t", q, pct(sim, okSim), pct(mod, okMod))
		if *wallFlag {
			row += fmt.Sprintf("%.4f%%\t", rig.wallCrossover(q, *trialsFlag)*100)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	// The 512 vs 512-batched comparison (Lesson 5).
	preds := workload.Batch(5, 512, 0.002, domain)
	whole := eng.SharedScan(preds)
	batched := eng.SharedScanBatched(preds, 256)
	fmt.Printf("shared scan of 512 queries: %.4fs as one run, %.4fs as 2x256 batches (sim)\n",
		whole, batched)
}

func figure14() {
	fmt.Println("Figure 14: crossover selectivity vs data size (q=8)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "N\tsimulated\tmodel\t")
	for _, n := range []int{10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000} {
		eng := simexec.New(model.HW1(), model.FittedDesign(), workload.Uniform(1, n, domain), 4)
		sim, okSim := eng.Crossover(8, domain)
		mod, okMod := model.Crossover(8, model.Dataset{N: float64(n), TupleSize: 4},
			model.HW1(), model.FittedDesign())
		fmt.Fprintf(w, "%d\t%s\t%s\t\n", n, pct(sim, okSim), pct(mod, okMod))
	}
	// Model-only extension to the paper's 1e9..1e15 range.
	for _, n := range []float64{1e8, 1e9, 1e12, 1e15} {
		mod, ok := model.Crossover(8, model.Dataset{N: n, TupleSize: 4},
			model.HW1(), model.FittedDesign())
		fmt.Fprintf(w, "%.0e\t-\t%s\t\n", n, pct(mod, ok))
	}
	w.Flush()
}

func figure15() {
	n := *nFlag / 4
	fmt.Printf("Figure 15: crossover vs column-group width, N=%d (wall clock + model)\n", n)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "group width\twall\tmodel\t")
	for _, g := range []int{1, 2, 4, 8, 16, 32} {
		rig := newWallRig(n, g)
		wall := rig.wallCrossover(1, *trialsFlag)
		mod, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: float64(4 * g)},
			model.HW1(), model.FittedDesign())
		fmt.Fprintf(w, "%d\t%.4f%%\t%s\t\n", g, wall*100, pct(mod, ok))
	}
	w.Flush()
}

func figure16() {
	simN := *simNFlag
	data := workload.Uniform(1, simN, domain)
	fmt.Printf("Figure 16: measured (simulated machines) vs model-predicted crossover, q=1, N=%d\n", simN)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "machine\tmeasured(sim)\tpredicted(model)\t")
	for _, hw := range model.EC2Profiles() {
		eng := simexec.New(hw, model.DefaultDesign(), data, 4)
		sim, okSim := eng.Crossover(1, domain)
		mod, okMod := model.Crossover(1, model.Dataset{N: float64(simN), TupleSize: 4},
			hw, model.DefaultDesign())
		fmt.Fprintf(w, "%s\t%s\t%s\t\n", hw.Name, pct(sim, okSim), pct(mod, okMod))
	}
	w.Flush()
}

func figure17() {
	simN := *simNFlag
	data := workload.Uniform(1, simN, domain)
	raw := simexec.New(model.HW1(), model.FittedDesign(), data, 4)
	comp := simexec.New(model.HW1(), model.FittedDesign(), data, 2)
	fmt.Printf("Figure 17: crossover vs concurrency, 32-bit vs 16-bit keys, N=%d (sim)\n", simN)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "q\t32-bit\t16-bit\t")
	for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		s32, ok32 := raw.Crossover(q, domain)
		s16, ok16 := comp.Crossover(q, domain)
		fmt.Fprintf(w, "%d\t%s\t%s\t\n", q, pct(s32, ok32), pct(s16, ok16))
	}
	w.Flush()
}

func pct(s float64, ok bool) string {
	if !ok {
		if s == 0 {
			return "scan-always"
		}
		return "index-always"
	}
	return fmt.Sprintf("%.4f%%", s*100)
}

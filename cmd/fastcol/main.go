// Command fastcol is an interactive shell over the FastColumns engine:
// it loads a demo dataset (or TPC-H lineitem with -tpch), then reads DSL
// statements from stdin and prints results together with the access path
// the optimizer chose — a hands-on way to watch access path selection.
//
//	$ go run ./cmd/fastcol
//	fastcol> SELECT COUNT(*) FROM demo WHERE v BETWEEN 100 AND 200
//	count = 394  [index, APS ratio 0.08, decided in 3µs]
//	fastcol> EXPLAIN SELECT v FROM demo WHERE v < 2000000
//	would use scan (APS ratio 5.41)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fastcolumns"
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/tpch"
	"fastcolumns/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastcol: ")
	n := flag.Int("n", 2_000_000, "demo table size")
	useTPCH := flag.Bool("tpch", false, "load TPC-H lineitem (table `lineitem`) instead of the demo table")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor with -tpch")
	calibrate := flag.Bool("calibrate", false, "calibrate the optimizer to this host (slower startup)")
	timeout := flag.Duration("timeout", 0, "per-statement deadline (0 = none), e.g. -timeout 2s")
	hwfile := flag.String("hwfile", "", "load a saved host profile (see cmd/calibrate -save)")
	flag.Parse()

	cfg := fastcolumns.Config{}
	switch {
	case *hwfile != "":
		hw, err := memsim.LoadProfile(*hwfile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Hardware = hw
	case *calibrate:
		fmt.Fprintln(os.Stderr, "calibrating host ...")
		cfg.Hardware = fastcolumns.CalibrateHardware()
	}
	eng := fastcolumns.New(cfg)

	if *useTPCH {
		loadTPCH(eng, *sf)
		fmt.Fprintf(os.Stderr, "loaded lineitem at SF %g; attributes: shipdate, discount, quantity, price (indexed: shipdate)\n", *sf)
	} else {
		loadDemo(eng, *n)
		fmt.Fprintf(os.Stderr, "loaded table demo(v, w) with %d rows; v indexed\n", *n)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("fastcol> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.EqualFold(line, "quit"), strings.EqualFold(line, "exit"):
			return
		default:
			run(eng, line, *timeout)
		}
		fmt.Print("fastcol> ")
	}
}

func loadDemo(eng *fastcolumns.Engine, n int) {
	tbl, err := eng.CreateTable("demo")
	if err != nil {
		log.Fatal(err)
	}
	must(tbl.AddColumn("v", workload.Uniform(1, n, 1<<22)))
	must(tbl.AddColumn("w", workload.Uniform(2, n, 1<<16)))
	must(tbl.CreateIndex("v"))
	must(tbl.Analyze("v", 128))
	must(tbl.Analyze("w", 128))
}

func loadTPCH(eng *fastcolumns.Engine, sf float64) {
	l := tpch.Generate(sf, 1)
	tbl, err := eng.CreateTable("lineitem")
	if err != nil {
		log.Fatal(err)
	}
	must(tbl.AddColumn("shipdate", l.ShipDate))
	must(tbl.AddColumn("discount", l.Discount))
	must(tbl.AddColumn("quantity", l.Quantity))
	must(tbl.AddColumn("price", l.ExtendedPrice))
	must(tbl.CreateIndex("shipdate"))
	must(tbl.Analyze("shipdate", 128))
	must(tbl.CreateBitmapIndex("discount")) // 11 distinct values
	must(tbl.Analyze("discount", 16))
}

func run(eng *fastcolumns.Engine, stmt string, timeout time.Duration) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := eng.QueryContext(ctx, stmt)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Printf("error: statement exceeded the %v deadline\n", timeout)
			return
		}
		fmt.Println("error:", err)
		return
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	tag := fmt.Sprintf("[%v, APS ratio %.3f, %v]", res.Decision.Path, res.Decision.Ratio, elapsed)
	switch {
	case res.Agg != nil:
		a := res.Agg
		switch a.Kind {
		case "count":
			fmt.Printf("count = %d  %s\n", a.Count, tag)
		case "sum":
			fmt.Printf("sum = %d over %d rows  %s\n", a.Sum, a.Count, tag)
		case "min":
			fmt.Printf("min = %d over %d rows  %s\n", a.Min, a.Count, tag)
		case "max":
			fmt.Printf("max = %d over %d rows  %s\n", a.Max, a.Count, tag)
		case "avg":
			fmt.Printf("avg = %.3f over %d rows  %s\n", a.Avg, a.Count, tag)
		}
	case res.RowIDs != nil:
		const show = 8
		fmt.Printf("%d rows  %s\n", len(res.RowIDs), tag)
		for i, id := range res.RowIDs {
			if i == show {
				fmt.Printf("  ... %d more\n", len(res.RowIDs)-show)
				break
			}
			if res.Values != nil {
				fmt.Printf("  row %d -> %d\n", id, res.Values[i])
			} else {
				fmt.Printf("  row %d\n", id)
			}
		}
	default:
		fmt.Printf("would use %v (APS ratio %.3f)\n", res.Decision.Path, res.Decision.Ratio)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Command fclint runs the repo's static-analysis suite (internal/lint)
// over every package of the module and fails the build on any finding.
// It is stdlib-only and wired into `make lint`, `make check`, and CI.
//
// Usage:
//
//	fclint [-C dir] [-json] [packages]
//
// -json prints the findings as a JSON array on stdout (one object per
// finding: file, line, column, analyzer, message) for CI artifacts and
// tooling; the exit-code contract is unchanged (0 clean, 1 findings,
// 2 load error).
//
// The package arguments are accepted for `go vet ./...` muscle-memory
// compatibility but ignored: fclint always analyzes the whole module,
// because its invariants (atomic-field consistency in particular) are
// cross-package properties.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fastcolumns/internal/lint"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", "", "module directory (default: walk up from the working directory to go.mod)")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	root := *dir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fclint:", err)
			os.Exit(2)
		}
	}
	loader, pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fclint:", err)
		os.Exit(2)
	}
	diags := lint.Run(loader.Fset(), pkgs, lint.Analyzers())
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "fclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command history regenerates Table 2: how the access path selection
// crossover point evolved from 1980s disk systems through 2016
// main-memory systems to the projected F1/F2 configurations, computed by
// running the APS model with each epoch's hardware, dataset, and index
// design.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"fastcolumns/internal/model"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 2: access path selection crossover point evolution (q=1)")
	fmt.Fprintln(w, "Year\tMedium\tLatency\tBandwidth\t#tuples\tTupleB\tFanout\tModel\tPaper")
	for _, e := range model.HistoricalEpochs() {
		s, ok := model.Crossover(1, e.Dataset, e.Hardware, e.Design)
		cross := "always-scan"
		if ok {
			cross = fmt.Sprintf("%.2f%%", s*100)
		} else if s == 1 {
			cross = "always-index"
		}
		medium := "disk"
		lat := fmt.Sprintf("%.0fms", e.Hardware.MemAccess*1e3)
		bw := fmt.Sprintf("%.0fMB/s", e.Hardware.ScanBandwidth/1e6)
		if e.Hardware.MemAccess < 1e-4 {
			medium = "mem"
			lat = fmt.Sprintf("%.0fns", e.Hardware.MemAccess*1e9)
			bw = fmt.Sprintf("%.0fGB/s", e.Hardware.ScanBandwidth/1e9)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0e\t%.0f\t%.0f\t%s\t%.1f%%\n",
			e.Year, medium, lat, bw, e.Dataset.N, e.Dataset.TupleSize,
			e.Design.Fanout, cross, e.PaperCrossover*100)
	}
	w.Flush()
	fmt.Println("\nTrend check: bandwidth growth pushes the crossover down through the disk era;")
	fmt.Println("the move to main memory (2016) shifts the balance back towards indexes")
	fmt.Println("relative to the 2010 disk column-store, because random access got relatively")
	fmt.Println("cheaper (BW*CM fell from ~1e6 bytes per seek to ~7200 bytes per LLC miss).")
}

// Command load drives the FastColumns serve path with synthetic traffic
// and reports latency/throughput/shedding — the measurement harness for
// the paper's "many concurrent queries" regime (Figure 11 onwards).
//
// Three modes:
//
//   - closed: N workers submit, wait for the reply, think, repeat. The
//     offered load self-limits as the server slows; good for measuring
//     best-case service capacity.
//   - open: queries arrive on a fixed schedule (Poisson or deterministic
//     interarrivals) regardless of how many are still outstanding, each
//     on its own virtual client. Latency is measured from each op's
//     intended arrival time, so coordinated omission cannot hide a
//     stall. This is the mode that exposes queueing collapse.
//   - sweep: probe the closed-loop capacity C, then run an open-loop
//     rung at each fraction of C in the ladder, printing the
//     latency-vs-offered-load curve and the saturation knee.
//
// Examples:
//
//	$ go run ./cmd/load -mode closed -workers 16 -duration 2s
//	$ go run ./cmd/load -mode open -rate 50000 -dist poisson -duration 2s
//	$ go run ./cmd/load -mode sweep -mix mixed -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"fastcolumns"
	"fastcolumns/internal/loadgen"
	"fastcolumns/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("load: ")

	var (
		n      = flag.Int("n", 1_000_000, "table size (rows)")
		domain = flag.Int("domain", 1<<20, "value domain size")
		mode   = flag.String("mode", "sweep", "driver mode: closed, open, or sweep")
		mixSel = flag.String("mix", "point", "query mix: point, mixed, or range:<sel> (e.g. range:0.01)")
		seed   = flag.Int64("seed", 1, "seed for the predicate stream and arrival schedule")

		workers  = flag.Int("workers", 16, "closed-loop worker population")
		think    = flag.Duration("think", 0, "closed-loop per-worker think time")
		duration = flag.Duration("duration", 2*time.Second, "run (or per-rung) duration")

		rate   = flag.Float64("rate", 10_000, "open-loop offered rate (ops/s)")
		dist   = flag.String("dist", "poisson", "open-loop interarrivals: poisson or deterministic")
		ramp   = flag.Duration("ramp", 0, "open-loop rate ramp-up window")
		minOps = flag.Int64("minops", 0, "extend open-loop rungs until at least this many arrivals are intended (0 = duration only)")

		timeout = flag.Duration("timeout", 250*time.Millisecond, "per-query deadline from intended arrival (0 = none)")

		window      = flag.Duration("window", 500*time.Microsecond, "server batching window")
		maxBatch    = flag.Int("maxbatch", 0, "server max batch size (0 = default)")
		maxPending  = flag.Int("maxpending", 256, "server per-attribute pending bound")
		maxInFlight = flag.Int("maxinflight", 2, "server concurrent batch bound")

		ladder      = flag.String("ladder", "0.05,0.12,0.3,0.75,1.8,4.5", "sweep rate ladder as fractions of probed capacity")
		probeWork   = flag.Int("probe-workers", 16, "sweep capacity-probe worker population")
		probeDur    = flag.Duration("probe-duration", 500*time.Millisecond, "sweep capacity-probe duration")
		jsonOut     = flag.Bool("json", false, "emit JSON instead of a table")
		showMetrics = flag.Bool("metrics", false, "dump the engine's load.* instruments after the run")
	)
	flag.Parse()

	mix, err := parseMix(*mixSel)
	if err != nil {
		log.Fatal(err)
	}
	di, err := parseDist(*dist)
	if err != nil {
		log.Fatal(err)
	}

	eng := fastcolumns.New(fastcolumns.Config{})
	defer eng.Close()
	fmt.Fprintf(os.Stderr, "seeding table load(a) with %d rows over domain %d ...\n", *n, *domain)
	seedTable(eng, *n, int32(*domain))
	srv := eng.Serve(fastcolumns.ServeOptions{
		Window:      *window,
		MaxBatch:    *maxBatch,
		MaxPending:  *maxPending,
		MaxInFlight: *maxInFlight,
	})
	defer srv.Close()

	opt := loadgen.Options{
		Table:   "load",
		Attr:    "a",
		Domain:  int32(*domain),
		Mix:     mix,
		Timeout: *timeout,
		Metrics: eng.Observer().Metrics,
		Seed:    *seed,
	}
	ctx := context.Background()

	switch *mode {
	case "closed":
		res := loadgen.RunClosed(ctx, srv, opt, loadgen.ClosedLoop{
			Workers: *workers, Duration: *duration, Think: *think,
		})
		emitResults(*jsonOut, []loadgen.Result{res})
	case "open":
		res := loadgen.RunOpen(ctx, srv, opt, loadgen.OpenLoop{
			Rate: *rate, Duration: *duration, Dist: di, Ramp: *ramp, MinOps: *minOps,
		})
		emitResults(*jsonOut, []loadgen.Result{res})
	case "sweep":
		fracs, err := parseLadder(*ladder)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "probing closed-loop capacity (%d workers, %v) ...\n", *probeWork, *probeDur)
		capacity := loadgen.ProbeCapacity(ctx, srv, opt, *probeWork, *probeDur)
		if capacity <= 0 {
			log.Fatal("capacity probe achieved no replies; is the server healthy?")
		}
		fmt.Fprintf(os.Stderr, "capacity ~%.0f ops/s; sweeping %d rungs ...\n", capacity, len(fracs))
		rates := make([]float64, len(fracs))
		for i, f := range fracs {
			rates[i] = f * capacity
		}
		cfg := loadgen.OpenLoop{Duration: *duration, Dist: di, Ramp: *ramp, MinOps: *minOps}
		results := loadgen.Sweep(ctx, srv, opt, cfg, rates)
		curve := loadgen.BuildCurve(opt, cfg, capacity, results)
		emitCurve(*jsonOut, curve, results)
	default:
		log.Fatalf("unknown -mode %q (want closed, open, or sweep)", *mode)
	}

	if *showMetrics {
		snap := eng.Observe()
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap.Metrics); err != nil {
			log.Fatal(err)
		}
	}
}

func seedTable(eng *fastcolumns.Engine, n int, domain int32) {
	tbl, err := eng.CreateTable("load")
	if err != nil {
		log.Fatal(err)
	}
	must(tbl.AddColumn("a", workload.Uniform(1, n, domain)))
	must(tbl.CreateIndex("a"))
	must(tbl.Analyze("a", 128))
}

func parseMix(s string) (loadgen.Mix, error) {
	switch {
	case s == "point":
		return loadgen.PointMix(), nil
	case s == "mixed":
		return loadgen.MixedMix(), nil
	case strings.HasPrefix(s, "range:"):
		sel, err := strconv.ParseFloat(strings.TrimPrefix(s, "range:"), 64)
		if err != nil || sel <= 0 || sel > 1 {
			return loadgen.Mix{}, fmt.Errorf("bad -mix %q: want range:<sel> with sel in (0,1]", s)
		}
		return loadgen.RangeMix(s, sel), nil
	}
	return loadgen.Mix{}, fmt.Errorf("unknown -mix %q (want point, mixed, or range:<sel>)", s)
}

func parseDist(s string) (loadgen.Dist, error) {
	switch s {
	case "poisson":
		return loadgen.Poisson, nil
	case "deterministic":
		return loadgen.Deterministic, nil
	}
	return 0, fmt.Errorf("unknown -dist %q (want poisson or deterministic)", s)
}

func parseLadder(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -ladder entry %q: want positive fractions of capacity", p)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ladder")
	}
	return out, nil
}

func emitResults(asJSON bool, results []loadgen.Result) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\tmix\toffered/s\tachieved/s\tshed%\tp50\tp99\tp999\tledger")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.2f\t%v\t%v\t%v\t%s\n",
			r.Mode, r.MixName, r.OfferedRate, r.AchievedRate, 100*r.ShedRate,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.P999.Round(time.Microsecond), ledger(r))
	}
	w.Flush()
}

func emitCurve(asJSON bool, curve loadgen.Curve, results []loadgen.Result) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(curve); err != nil {
			log.Fatal(err)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mix %s, %s arrivals, capacity ~%.0f ops/s\n", curve.Mix, curve.Dist, curve.CapacityRate)
	fmt.Fprintln(w, "target/s\toffered/s\tachieved/s\tshed%\tp50\tp99\tp999\tledger\t")
	for i, p := range curve.Points {
		marker := ""
		if i == curve.KneeIndex {
			marker = "<- knee"
		}
		fmt.Fprintf(w, "%.0f\t%.0f\t%.0f\t%.2f\t%v\t%v\t%v\t%s\t%s\n",
			p.TargetRate, p.OfferedRate, p.AchievedRate, 100*p.ShedRate,
			time.Duration(p.P50Ns).Round(time.Microsecond),
			time.Duration(p.P99Ns).Round(time.Microsecond),
			time.Duration(p.P999Ns).Round(time.Microsecond),
			ledger(results[i]), marker)
	}
	w.Flush()
	if curve.KneeIndex < 0 {
		fmt.Println("saturated at the first rung: no below-knee regime observed")
	}
}

func ledger(r loadgen.Result) string {
	if r.Conserved() {
		return "balanced"
	}
	return fmt.Sprintf("IMBALANCED %+v", r.Counts)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

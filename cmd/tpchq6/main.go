// Command tpchq6 regenerates Figure 19: modified TPC-H Query 6 at low
// (~0.24%) and high (~15%) shipdate selectivity, compared across four
// engines — a Postgres-like row store, the same row store with a
// secondary index, a MonetDB-like columnar engine (tight scans, no
// secondary indexes), and FastColumns with access path selection.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"fastcolumns/internal/baseline"
	"fastcolumns/internal/exec"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/optimizer"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
	"fastcolumns/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpchq6: ")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor (paper: 10)")
	trials := flag.Int("trials", 3, "trials per cell (median)")
	flag.Parse()

	l := tpch.Generate(*sf, 1)
	fmt.Printf("Figure 19: TPC-H Q6 at SF %g (%d lineitems)\n", *sf, l.Rows())

	// Engines.
	rowStore, err := baseline.NewRowStore("l_shipdate", l.ShipDate, true)
	if err != nil {
		log.Fatal(err)
	}
	shipCol := storage.NewColumn("l_shipdate", l.ShipDate)
	fcRel := &exec.Relation{Column: shipCol, Index: index.Build(shipCol, index.DefaultFanout)}
	hist, err := stats.BuildHistogram(shipCol, 128)
	if err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(model.HW1())

	median := func(f func() int) time.Duration {
		times := make([]time.Duration, 0, *trials)
		var rows int
		for t := 0; t < *trials; t++ {
			start := time.Now()
			rows = f()
			times = append(times, time.Since(start))
		}
		_ = rows
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	type row struct {
		name string
		lo   time.Duration
		hi   time.Duration
		note string
	}
	var rows []row
	var fcNote [2]model.Path

	run := func(q tpch.Q6, idx int) [4]time.Duration {
		p := q.ShipPredicate()
		var out [4]time.Duration
		// Postgres-like full row scan.
		out[0] = median(func() int {
			ids, _ := rowStore.Scan(p)
			_, r := q.Evaluate(l, ids)
			return r
		})
		// Postgres-like with secondary index (tuple reconstruction per hit).
		out[1] = median(func() int {
			ids, _ := rowStore.IndexSelect(p)
			_, r := q.Evaluate(l, ids)
			return r
		})
		// MonetDB-like: tight columnar scan, no sharing, no index.
		out[2] = median(func() int {
			ids := baseline.ColumnScan(l.ShipDate, p, 0)
			_, r := q.Evaluate(l, ids)
			return r
		})
		// FastColumns: APS decides per query.
		d := opt.Decide(fcRel, hist, []scan.Predicate{p})
		fcNote[idx] = d.Path
		out[3] = median(func() int {
			res, err := exec.Run(context.Background(), fcRel, d.Path, []scan.Predicate{p}, exec.Options{})
			if err != nil {
				log.Fatal(err)
			}
			_, r := q.Evaluate(l, res.RowIDs[0])
			return r
		})
		return out
	}

	lo := run(tpch.Q6Low(), 0)
	hi := run(tpch.Q6High(), 1)
	names := []string{"Postgres-like", "PG w/ Index", "MonetDB-like", "FastColumns"}
	for i, name := range names {
		note := ""
		if name == "FastColumns" {
			note = fmt.Sprintf("chose %v (low) / %v (high)", fcNote[0], fcNote[1])
		}
		rows = append(rows, row{name: name, lo: lo[i], hi: hi[i], note: note})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "engine\tlow sel (~0.24%)\thigh sel (~15%)\t\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%s\t\n",
			r.name, r.lo.Round(time.Microsecond), r.hi.Round(time.Microsecond), r.note)
	}
	w.Flush()

	// Sanity: revenue identical across engines for each run.
	q := tpch.Q6Low()
	idsA, _ := rowStore.Scan(q.ShipPredicate())
	revA, _ := q.Evaluate(l, idsA)
	idsB := baseline.ColumnScan(l.ShipDate, q.ShipPredicate(), 0)
	revB, _ := q.Evaluate(l, idsB)
	if revA != revB {
		log.Fatalf("revenue mismatch across engines: %d vs %d", revA, revB)
	}
	fmt.Printf("revenue agreement across engines verified (low run: %d)\n", revA)
}

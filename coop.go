package fastcolumns

import (
	"context"
	"strings"
	"time"

	"fastcolumns/internal/coop"
	"fastcolumns/internal/exec"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/optimizer"
	"fastcolumns/internal/scheduler"
	"fastcolumns/internal/storage"
)

// This file wires the cooperative-scan pass manager (internal/coop) into
// the serve path: shared-scan batches run as attachable passes, and
// late-arriving submissions are offered to the in-flight pass when the
// model's attach-vs-wait term says attaching at the cursor beats waiting
// for the next batching window.

// tryAttach is the scheduler's Attach hook: price attaching the arriving
// query to the in-flight pass on key against waiting for the next
// window, and admit it mid-pass when attaching wins. Runs on the
// submitting goroutine; a false return falls back to normal batching.
func (s *Server) tryAttach(ctx context.Context, key string, pred Predicate, deliver func(scheduler.Reply)) bool {
	prog, ok := s.coop.Progress(key)
	if !ok || prog.Blocks == 0 {
		return false
	}
	table, attr, ok := strings.Cut(key, "\x00")
	if !ok {
		return false
	}
	t, err := s.engine.Table(table)
	if err != nil {
		return false
	}
	sel, tupleSize, ok := t.attachEstimate(attr, pred)
	if !ok {
		return false
	}
	snap := s.engine.opt.Snapshot()
	st := model.PassState{
		FracDone: float64(prog.Claimed) / float64(prog.Blocks),
		Live:     prog.Live,
		LiveSel:  prog.LiveSel,
		Pending:  s.sched.Pending(key),
		Window:   s.window.Seconds(),
	}
	p := model.Params{
		Workload: model.Workload{Selectivities: []float64{sel}},
		Dataset:  model.Dataset{N: float64(prog.Rows), TupleSize: tupleSize},
		Hardware: snap.HW,
		Design:   snap.Design,
	}
	var attach bool
	var attachCost, waitCost float64
	if snap.Robust.Enabled() && snap.Robust.ErrorBound > 1 {
		attach, attachCost, waitCost = model.ShouldAttachRobust(p, st, snap.Robust.ErrorBound)
	} else {
		attach, attachCost, waitCost = model.ShouldAttach(p, st)
	}
	if !attach {
		return false
	}
	savedNs := int64((waitCost - attachCost) * 1e9)
	hint := int(sel*float64(prog.Rows)) + 1
	return s.coop.Attach(ctx, key, pred, sel, hint, savedNs, func(ids []storage.RowID, err error) {
		deliver(scheduler.Reply{RowIDs: ids, Err: err})
	})
}

// attachEstimate returns the histogram selectivity estimate (a nominal
// 1% when the attribute was never analyzed) and tuple size the
// attach-vs-wait term prices with.
func (t *Table) attachEstimate(attr string, pred Predicate) (sel, tupleSize float64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, found := t.rels[attr]
	if !found {
		return 0, 0, false
	}
	sel = 0.01
	if h := t.hists[attr]; h != nil {
		sel = h.EstimateRange(pred.Lo, pred.Hi)
	}
	return sel, float64(rel.Column.TupleSize()), true
}

// selectBatchCoop answers a batch through the cooperative pass manager
// when APS picks the plain shared scan: the pass is published under key
// for the duration of execution so late submissions can attach at its
// cursor. routed reports whether the batch took the cooperative path at
// all; when false the caller must run the normal path (and err is nil).
// The table read lock is held across the pass, like every batch
// execution, so merges cannot swap the column out from under attached
// queries.
//
//fclint:owns — the caller receives pooled RowIDs and the Release obligation.
func (t *Table) selectBatchCoop(ctx context.Context, key, attr string, preds []Predicate, mgr *coop.Manager) (res BatchResult, routed bool, err error) {
	if len(preds) == 0 {
		return BatchResult{}, false, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, relErr := t.relation(attr)
	if relErr != nil {
		return BatchResult{}, false, nil // let the normal path report it
	}
	d := t.engine.opt.Decide(rel, t.hists[attr], preds)
	// Route only the uncompressed block-scannable shared scan: the
	// adaptive, index, bitmap, SWAR-packed, and imprint-skipping paths
	// keep their existing executors.
	if d.RouteAdaptive || d.Path != PathScan || d.ScanKernel != optimizer.KernelShared ||
		rel.Compressed != nil || rel.Imprints != nil {
		return BatchResult{}, false, nil
	}
	raw, rawErr := rel.Column.Raw()
	if rawErr != nil {
		return BatchResult{}, false, nil // column-group member: strided kernels only
	}
	src := coop.SliceSource{Data: raw, BlockTuples: t.engine.blockTuples, Zonemap: rel.Zonemap}
	start := time.Now()
	pooled, err := mgr.Run(ctx, key, src, preds, d.Selectivities, cardinalityHints(d.Selectivities, rel.Column.Len()))
	if err != nil {
		return BatchResult{}, true, err
	}
	elapsed := time.Since(start)
	t.observeCoopBatch(attr, rel, d, elapsed)
	return BatchResult{RowIDs: pooled.RowIDs, Decision: d, Elapsed: elapsed, pooled: pooled}, true, nil
}

// observeCoopBatch traces a cooperatively executed batch. Like the
// adaptive path, it stays out of the drift cells: the pass also served
// attachers and wrap-around blocks, so its wall time is not a clean
// measurement of the predicted shared-scan cost.
func (t *Table) observeCoopBatch(attr string, rel *exec.Relation, d Decision, elapsed time.Duration) {
	o := t.engine.observer
	e := obs.TraceEntry{
		At:             time.Now(),
		Table:          t.st.Name(),
		Attr:           attr,
		Q:              len(d.Selectivities),
		N:              rel.Column.Len(),
		TupleSize:      float64(rel.Column.TupleSize()),
		Path:           "coop(shared)",
		Kernel:         d.ScanKernel,
		Forced:         d.Forced,
		Ratio:          d.Ratio,
		PredScanCost:   d.ScanCost,
		PredIndexCost:  d.IndexCost,
		PredChosenCost: d.ChosenCost,
		Elapsed:        elapsed,
	}
	e.SetSelectivities(d.Selectivities)
	o.Trace.Append(e)
	o.Metrics.Counter("engine.coop_batches").Add(1)
	o.Metrics.Histogram("engine.batch_ns").Record(elapsed.Nanoseconds())
}

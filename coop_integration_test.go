package fastcolumns

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/loadgen"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/workload"
)

// coopEngine builds a scan-only table (no index, so APS always picks the
// shared scan and every batch is a cooperative pass) and returns the
// engine plus the raw column for reference answers.
func coopEngine(t *testing.T, n int) (*Engine, []Value) {
	t.Helper()
	eng := New(Config{})
	t.Cleanup(eng.Close)
	tbl, err := eng.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Uniform(1, n, 5000)
	if err := tbl.AddColumn("a", data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Analyze("a", 64); err != nil {
		t.Fatal(err)
	}
	return eng, data
}

func refRowIDs(data []Value, p Predicate) []RowID {
	var out []RowID
	for i, v := range data {
		if v >= p.Lo && v <= p.Hi {
			out = append(out, RowID(i))
		}
	}
	return out
}

// TestCoopServeAttachEndToEnd pins the serve-path attach flow: morsel
// scans are slowed by fault injection so the founding pass is reliably
// in flight when a second query arrives; the late query must be adopted
// mid-pass (Stats.Attached), skip the batch machinery, and still answer
// exactly.
func TestCoopServeAttachEndToEnd(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, data := coopEngine(t, 1<<18) // 16 blocks at the default block size
	srv := eng.Serve(ServeOptions{Window: time.Millisecond, Cooperative: true})

	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: rt.FaultSiteMorsel, Kind: faultinject.Delay, Delay: 2 * time.Millisecond,
	}))

	founderPred := Predicate{Lo: 0, Hi: 999}
	founderCh, err := srv.Submit("t", "a", founderPred)
	if err != nil {
		t.Fatal(err)
	}
	// Wait out the window plus a few delayed morsels so the pass is
	// mid-flight, then submit the late query.
	time.Sleep(8 * time.Millisecond)
	latePred := Predicate{Lo: 2000, Hi: 2499}
	lateCh, err := srv.Submit("t", "a", latePred)
	if err != nil {
		t.Fatal(err)
	}
	lateRep := <-lateCh
	founderRep := <-founderCh
	deactivate()

	if founderRep.Err != nil || lateRep.Err != nil {
		t.Fatalf("replies errored: founder=%v late=%v", founderRep.Err, lateRep.Err)
	}
	for name, got := range map[string][]RowID{"founder": founderRep.RowIDs, "late": lateRep.RowIDs} {
		want := refRowIDs(data, founderPred)
		if name == "late" {
			want = refRowIDs(data, latePred)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
	st := srv.ServerStats()
	if st.Attached == 0 {
		t.Fatal("late query was not adopted mid-pass (Attached == 0)")
	}
	if st.Submitted != 2 {
		t.Fatalf("Submitted = %d, want 2", st.Submitted)
	}
	if got := eng.Observer().Metrics.Counter("coop.attach").Load(); got == 0 {
		t.Fatal("coop.attach counter did not record the adoption")
	}
	srv.Close()
	eng.Close()
	waitGoroutines(t, base)
}

// TestCoopChaosUnderLoad extends the chaos-under-load contract to the
// cooperative path: open-loop traffic against a Cooperative server while
// attach faults (error, panic, delay) and morsel panics fire. Attach
// failures must degrade to next-window semantics — every op still
// answered exactly once, ledger balanced, counters reconciled, zero
// goroutine leaks.
func TestCoopChaosUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, _ := coopEngine(t, 20000)
	srv := eng.Serve(ServeOptions{
		Window: 200 * time.Microsecond, MaxPending: 64, MaxInFlight: 4, Cooperative: true,
	})

	deactivate := faultinject.Activate(faultinject.New(11,
		faultinject.Rule{Site: "coop.attach", Kind: faultinject.Error, Prob: 0.2},
		faultinject.Rule{Site: "coop.attach", Kind: faultinject.Panic, Prob: 0.1},
		faultinject.Rule{Site: "coop.attach", Kind: faultinject.Delay, Prob: 0.1, Delay: 200 * time.Microsecond},
		faultinject.Rule{Site: rt.FaultSiteMorsel, Kind: faultinject.Panic, Prob: 0.005},
	))
	defer deactivate()

	res := loadgen.RunOpen(context.Background(), srv,
		loadgen.Options{Table: "t", Attr: "a", Domain: 5000, Mix: loadgen.MixedMix(), Timeout: time.Second, Seed: 3},
		loadgen.OpenLoop{Rate: 1500, Duration: 400 * time.Millisecond, Dist: loadgen.Poisson})

	if !res.Conserved() {
		t.Fatalf("ledger does not balance under coop chaos: %+v", res.Counts)
	}
	if res.Replied == 0 {
		t.Fatal("coop chaos run produced no successful replies at all")
	}
	st := srv.ServerStats()
	if st.Submitted != res.Accepted {
		t.Fatalf("server admitted %d, driver accepted %d (lost or doubled replies)", st.Submitted, res.Accepted)
	}
	if st.Rejected != res.Shed {
		t.Fatalf("server shed %d, driver counted %d", st.Rejected, res.Shed)
	}
	if st.Cancelled != res.Cancelled {
		t.Fatalf("server cancelled %d, driver counted %d", st.Cancelled, res.Cancelled)
	}
	deactivate()
	srv.Close()
	eng.Close()
	waitGoroutines(t, base)
}

// TestCoopCancelledSubmitterAnsweredMidPass covers the serve-side of the
// eager-drop satellite: a submitter whose context dies while its adopted
// query rides a slowed pass is answered promptly with the context error,
// well before the pass finishes.
func TestCoopCancelledSubmitterAnsweredMidPass(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, _ := coopEngine(t, 1<<18)
	srv := eng.Serve(ServeOptions{Window: time.Millisecond, Cooperative: true})

	deactivate := faultinject.Activate(faultinject.New(2, faultinject.Rule{
		Site: rt.FaultSiteMorsel, Kind: faultinject.Delay, Delay: 2 * time.Millisecond,
	}))

	founderCh, err := srv.Submit("t", "a", Predicate{Lo: 0, Hi: 999})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(8 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	lateCh, err := srv.SubmitContext(ctx, "t", "a", Predicate{Lo: 0, Hi: 4999})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	lateRep := <-lateCh
	promptly := time.Since(start) < 5*time.Millisecond // pass has ~20ms of delayed morsels left
	if !errors.Is(lateRep.Err, context.Canceled) {
		t.Fatalf("cancelled submitter reply = %v, want context.Canceled", lateRep.Err)
	}
	if !promptly {
		t.Fatal("cancelled submitter waited for the pass instead of being answered promptly")
	}
	if rep := <-founderCh; rep.Err != nil {
		t.Fatalf("founder errored after sibling cancellation: %v", rep.Err)
	}
	deactivate()
	st := srv.ServerStats()
	if st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
	srv.Close()
	eng.Close()
	waitGoroutines(t, base)
}

package fastcolumns_test

import (
	"fmt"

	"fastcolumns"
)

// ExampleTable_Select shows the optimizer switching access paths with
// query shape: a point lookup probes the secondary index, a wide
// analytical range scans.
func ExampleTable_Select() {
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, _ := eng.CreateTable("events")
	data := make([]fastcolumns.Value, 1_000_000)
	for i := range data {
		data[i] = fastcolumns.Value(i % 100_000)
	}
	_ = tbl.AddColumn("id", data)
	_ = tbl.CreateIndex("id")
	_ = tbl.Analyze("id", 128)

	ids, d, _ := tbl.Select("id", 42, 42)
	fmt.Println(len(ids), "rows via", d.Path)

	ids, d, _ = tbl.Select("id", 0, 50_000)
	fmt.Println(len(ids), "rows via", d.Path)
	// Output:
	// 10 rows via index
	// 500010 rows via scan
}

// ExampleTable_SelectBatch shows the paper's headline behaviour: the
// same per-query selectivity flips from index to scan once enough
// queries share the batch.
func ExampleTable_SelectBatch() {
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, _ := eng.CreateTable("events")
	data := make([]fastcolumns.Value, 4_000_000)
	for i := range data {
		data[i] = fastcolumns.Value(i % 1_000_000)
	}
	_ = tbl.AddColumn("id", data)
	_ = tbl.CreateIndex("id")
	_ = tbl.Analyze("id", 128)

	one := []fastcolumns.Predicate{{Lo: 0, Hi: 500}} // ~0.05%
	res, _ := tbl.SelectBatch("id", one)
	fmt.Println("q=1:", res.Decision.Path)

	many := make([]fastcolumns.Predicate, 256)
	for i := range many {
		lo := fastcolumns.Value(i * 3000)
		many[i] = fastcolumns.Predicate{Lo: lo, Hi: lo + 500}
	}
	res, _ = tbl.SelectBatch("id", many)
	fmt.Println("q=256:", res.Decision.Path)
	// Output:
	// q=1: index
	// q=256: scan
}

// ExampleEngine_Query runs the DSL front end: conjunctions are planned
// (most selective conjunct drives the access path) and aggregates fold
// the survivors.
func ExampleEngine_Query() {
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, _ := eng.CreateTable("sales")
	day := make([]fastcolumns.Value, 100_000)
	price := make([]fastcolumns.Value, 100_000)
	for i := range day {
		day[i] = fastcolumns.Value(i % 365)
		price[i] = fastcolumns.Value(100 + i%900)
	}
	_ = tbl.AddColumn("day", day)
	_ = tbl.AddColumn("price", price)
	_ = tbl.CreateIndex("day")
	_ = tbl.Analyze("day", 64)

	res, _ := eng.Query("SELECT COUNT(*) FROM sales WHERE day = 100 AND price < 500")
	fmt.Println("count:", res.Agg.Count, "| driver:", res.DriverAttr)
	// Output:
	// count: 122 | driver: day
}

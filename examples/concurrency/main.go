// Concurrency: the paper's headline result, live. The same per-query
// selectivity that makes a lone query probe the secondary index makes a
// wide batch share a sequential scan — there is no fixed selectivity
// threshold, the break-even point slopes with concurrency (Figure 1).
//
// The example first asks the optimizer directly (Explain) across rising
// batch widths, then demonstrates the asynchronous Server front door
// where batches form naturally from concurrent submitters.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"fastcolumns"
)

const (
	n      = 4_000_000
	domain = 1 << 22
)

func main() {
	log.SetFlags(0)
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, err := eng.CreateTable("events")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]fastcolumns.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	if err := tbl.AddColumn("ts", data); err != nil {
		log.Fatal(err)
	}
	if err := tbl.CreateIndex("ts"); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Analyze("ts", 128); err != nil {
		log.Fatal(err)
	}

	// Part 1: the sloped divide. Per-query selectivity stays ~0.05%;
	// only the batch width changes.
	sel := 0.0005
	width := fastcolumns.Value(sel * float64(domain))
	fmt.Println("per-query selectivity fixed at 0.05%; only concurrency varies:")
	for _, q := range []int{1, 4, 16, 64, 256} {
		preds := make([]fastcolumns.Predicate, q)
		for i := range preds {
			lo := rng.Int31n(domain - int32(width))
			preds[i] = fastcolumns.Predicate{Lo: lo, Hi: lo + width}
		}
		d, err := tbl.Explain("ts", preds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q=%3d  -> %-5v (APS ratio %.3f)\n", q, d.Path, d.Ratio)
	}

	// Part 2: the Server batches whatever arrives inside the window, so
	// concurrency is discovered, not declared.
	srv := eng.Serve(fastcolumns.ServeOptions{Window: 2 * time.Millisecond})
	defer srv.Close()

	run := func(clients int) {
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lo := int32((c * 37) % (domain - int(width)))
				ch, err := srv.Submit("events", "ts", fastcolumns.Predicate{Lo: lo, Hi: lo + width})
				if err != nil {
					log.Print(err)
					return
				}
				if r := <-ch; r.Err != nil {
					log.Print(r.Err)
				}
			}(c)
		}
		wg.Wait()
		fmt.Printf("  %3d concurrent clients answered in %v total\n",
			clients, time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("serving concurrent clients through the batching scheduler:")
	for _, clients := range []int{1, 16, 128} {
		run(clients)
	}
}

// Hybrid layouts: the same attribute stored alone vs inside a 10-column
// group. Scans over a group member drag every neighbor attribute through
// the memory hierarchy, so the secondary index pays off over a much wider
// selectivity range (Observation 2.3, Figure 15) — and the optimizer
// reads that straight from the layout's tuple size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastcolumns"
)

const (
	n      = 1_000_000
	domain = 1 << 20
	groupW = 10
)

func main() {
	log.SetFlags(0)
	eng := fastcolumns.New(fastcolumns.Config{})

	rng := rand.New(rand.NewSource(1))
	values := make([]fastcolumns.Value, n)
	for i := range values {
		values[i] = rng.Int31n(domain)
	}

	// Narrow: pure columnar storage.
	narrow, err := eng.CreateTable("narrow")
	if err != nil {
		log.Fatal(err)
	}
	if err := narrow.AddColumn("price", values); err != nil {
		log.Fatal(err)
	}

	// Wide: the same attribute inside a 10-column group (think: an
	// operational row-group holding the other order attributes).
	wide, err := eng.CreateTable("wide")
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, groupW)
	cols := make([][]fastcolumns.Value, groupW)
	names[0] = "price"
	cols[0] = values
	for j := 1; j < groupW; j++ {
		names[j] = fmt.Sprintf("attr%d", j)
		col := make([]fastcolumns.Value, n)
		for i := range col {
			col[i] = rng.Int31()
		}
		cols[j] = col
	}
	if err := wide.AddColumnGroup(names, cols); err != nil {
		log.Fatal(err)
	}

	for _, tbl := range []*fastcolumns.Table{narrow, wide} {
		if err := tbl.CreateIndex("price"); err != nil {
			log.Fatal(err)
		}
		if err := tbl.Analyze("price", 128); err != nil {
			log.Fatal(err)
		}
	}

	// Sweep selectivity and compare decisions. In the band between the
	// two layouts' break-even points the narrow table scans while the
	// wide table probes.
	fmt.Printf("%-12s %-14s %-14s\n", "selectivity", "narrow (ts=4)", "wide (ts=40)")
	for _, sel := range []float64{0.0005, 0.002, 0.01, 0.05, 0.2} {
		w := fastcolumns.Value(sel * domain)
		pred := []fastcolumns.Predicate{{Lo: 1000, Hi: 1000 + w}}
		dn, err := narrow.Explain("price", pred)
		if err != nil {
			log.Fatal(err)
		}
		dw, err := wide.Explain("price", pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f%% %-14s %-14s\n", sel*100,
			fmt.Sprintf("%v (%.2f)", dn.Path, dn.Ratio),
			fmt.Sprintf("%v (%.2f)", dw.Path, dw.Ratio))
	}

	// Execute once on each to show identical answers despite different
	// layouts and (possibly) different access paths.
	pred := fastcolumns.Predicate{Lo: 5000, Hi: 5000 + domain/100}
	idsN, dn, err := narrow.Select("price", pred.Lo, pred.Hi)
	if err != nil {
		log.Fatal(err)
	}
	idsW, dw, err := wide.Select("price", pred.Lo, pred.Hi)
	if err != nil {
		log.Fatal(err)
	}
	same := len(idsN) == len(idsW)
	for i := 0; same && i < len(idsN); i++ {
		same = idsN[i] == idsW[i]
	}
	fmt.Printf("\n1%% query: narrow via %v, wide via %v, identical %d-row results: %v\n",
		dn.Path, dw.Path, len(idsN), same)
}

// Low cardinality: Appendix E's third access path in action. A status
// column with 64 distinct values carries a B+-tree, a bitmap index, and
// statistics; the optimizer arbitrates among scan, tree, and bitmap per
// query shape — and the DSL front end makes the decisions visible.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastcolumns"
)

func main() {
	log.SetFlags(0)
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, err := eng.CreateTable("orders")
	if err != nil {
		log.Fatal(err)
	}

	const n = 2_000_000
	rng := rand.New(rand.NewSource(1))
	status := make([]fastcolumns.Value, n) // 64 distinct values
	amount := make([]fastcolumns.Value, n)
	for i := range status {
		status[i] = rng.Int31n(64)
		amount[i] = rng.Int31n(100000)
	}
	must(tbl.AddColumn("status", status))
	must(tbl.AddColumn("amount", amount))
	must(tbl.CreateIndex("status"))       // memory-tuned B+-tree
	must(tbl.CreateBitmapIndex("status")) // 64 bitmaps of n bits
	must(tbl.Analyze("status", 64))

	queries := []string{
		"EXPLAIN SELECT status FROM orders WHERE status = 17",
		"EXPLAIN SELECT status FROM orders WHERE status BETWEEN 10 AND 20",
		"EXPLAIN SELECT status FROM orders WHERE status >= 32",
		"SELECT COUNT(*) FROM orders WHERE status = 17",
		"SELECT SUM(amount) FROM orders WHERE status BETWEEN 0 AND 3",
		"SELECT AVG(amount) FROM orders WHERE status = 63",
	}
	for _, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Agg != nil:
			a := res.Agg
			switch a.Kind {
			case "count":
				fmt.Printf("%-62s -> %d rows via %v\n", q, a.Count, res.Decision.Path)
			case "sum":
				fmt.Printf("%-62s -> sum %d (%d rows) via %v\n", q, a.Sum, a.Count, res.Decision.Path)
			case "avg":
				fmt.Printf("%-62s -> avg %.1f (%d rows) via %v\n", q, a.Avg, a.Count, res.Decision.Path)
			}
		default:
			fmt.Printf("%-62s -> would use %v (APS ratio %.3f)\n", q, res.Decision.Path, res.Decision.Ratio)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

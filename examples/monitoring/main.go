// Monitoring: a server living through three workload phases — an OLTP-ish
// burst of point lookups, a mixed phase, and an analytical burst of wide
// ranges. The engine re-decides the access path per batch from what the
// scheduler actually collected, so the chosen path follows the workload
// without any manual switch (Section 3's integration story).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"fastcolumns"
)

const (
	n      = 2_000_000
	domain = 1 << 21
)

func main() {
	log.SetFlags(0)
	eng := fastcolumns.New(fastcolumns.Config{})
	tbl, err := eng.CreateTable("metrics")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]fastcolumns.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	if err := tbl.AddColumn("v", data); err != nil {
		log.Fatal(err)
	}
	if err := tbl.CreateIndex("v"); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Analyze("v", 128); err != nil {
		log.Fatal(err)
	}

	type phase struct {
		name    string
		clients int
		// selectivity per query; 0 = point lookups
		sel float64
	}
	phases := []phase{
		{"lookup burst (64 clients, point gets)", 64, 0},
		{"mixed load (16 clients, 0.2% ranges)", 16, 0.002},
		{"analytics burst (8 clients, 10% ranges)", 8, 0.10},
	}

	srv := eng.Serve(fastcolumns.ServeOptions{Window: 3 * time.Millisecond})
	defer srv.Close()

	for _, ph := range phases {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var rows int
		start := time.Now()
		for c := 0; c < ph.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var p fastcolumns.Predicate
				if ph.sel == 0 {
					v := int32((c * 104729) % domain)
					p = fastcolumns.Predicate{Lo: v, Hi: v}
				} else {
					w := int32(ph.sel * domain)
					lo := int32((c * 7919) % (domain - int(w)))
					p = fastcolumns.Predicate{Lo: lo, Hi: lo + w}
				}
				ch, err := srv.Submit("metrics", "v", p)
				if err != nil {
					log.Print(err)
					return
				}
				r := <-ch
				if r.Err != nil {
					log.Print(r.Err)
					return
				}
				mu.Lock()
				rows += len(r.RowIDs)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)

		// Ask the optimizer what it would decide for this phase's shape —
		// the same computation the server just ran per batch.
		preds := make([]fastcolumns.Predicate, ph.clients)
		for i := range preds {
			if ph.sel == 0 {
				preds[i] = fastcolumns.Predicate{Lo: 1, Hi: 1}
			} else {
				w := int32(ph.sel * domain)
				preds[i] = fastcolumns.Predicate{Lo: 0, Hi: w}
			}
		}
		d, err := tbl.Explain("v", preds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s -> path %-5v (APS %.3f)  %8d rows in %v\n",
			ph.name, d.Path, d.Ratio, rows, elapsed.Round(time.Microsecond))
	}
}

// Monitoring: a server living through workload phases — an OLTP-ish
// burst of point lookups, a mixed phase, and an analytical burst of wide
// ranges — followed by two hostile phases: an overload flood that trips
// admission control and a wave of deadline-carrying clients that give up
// mid-flight. The engine re-decides the access path per batch from what
// the scheduler actually collected, so the chosen path follows the
// workload without any manual switch (Section 3's integration story), and
// the resilience counters show the front door shedding and cancelling
// instead of falling over.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastcolumns"
)

const (
	n      = 2_000_000
	domain = 1 << 21
)

func main() {
	log.SetFlags(0)
	// EnableRefit arms the background drift-loop controller: if the
	// observed/predicted cost ratios ever drift stale per band, it
	// re-fits the model constants from the decision trace and hot-swaps
	// them without pausing this serve path.
	eng := fastcolumns.New(fastcolumns.Config{
		EnableRefit:   true,
		RefitInterval: 250 * time.Millisecond,
	})
	defer eng.Close()
	tbl, err := eng.CreateTable("metrics")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]fastcolumns.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	if err := tbl.AddColumn("v", data); err != nil {
		log.Fatal(err)
	}
	if err := tbl.CreateIndex("v"); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Analyze("v", 128); err != nil {
		log.Fatal(err)
	}

	type phase struct {
		name    string
		clients int
		// selectivity per query; 0 = point lookups
		sel float64
		// cancelAfter > 0 arms a deadline on every client's context.
		cancelAfter time.Duration
	}
	phases := []phase{
		{name: "lookup burst (64 clients, point gets)", clients: 64},
		{name: "mixed load (16 clients, 0.2% ranges)", clients: 16, sel: 0.002},
		{name: "analytics burst (8 clients, 10% ranges)", clients: 8, sel: 0.10},
		{name: "overload flood (1024 clients, 0.05% ranges)", clients: 1024, sel: 0.0005},
		{name: "impatient clients (64, 100µs deadlines)", clients: 64, sel: 0.05, cancelAfter: 100 * time.Microsecond},
	}

	// Deliberately tight admission bounds so the flood phase visibly sheds
	// load instead of queueing it.
	srv := eng.Serve(fastcolumns.ServeOptions{
		Window:      3 * time.Millisecond,
		MaxBatch:    128,
		MaxPending:  256,
		MaxInFlight: 4,
	})
	defer srv.Close()

	// Serve the observability endpoint live while the phases run: GET
	// /metrics for the full JSON snapshot (metrics + drift report) and
	// /debug/decisions?n=K for the most recent APS decision traces.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	obsURL := "http://" + ln.Addr().String()
	go func() {
		if err := http.Serve(ln, eng.Observer().Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Print(err)
		}
	}()
	defer func() { _ = ln.Close() }()
	fmt.Printf("observability endpoint live at %s/metrics and %s/debug/decisions\n\n", obsURL, obsURL)

	for _, ph := range phases {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var rows int
		var shed, gaveUp atomic.Int64
		start := time.Now()
		for c := 0; c < ph.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				var p fastcolumns.Predicate
				if ph.sel == 0 {
					v := int32((c * 104729) % domain)
					p = fastcolumns.Predicate{Lo: v, Hi: v}
				} else {
					w := int32(ph.sel * domain)
					lo := int32((c * 7919) % (domain - int(w)))
					p = fastcolumns.Predicate{Lo: lo, Hi: lo + w}
				}
				ctx := context.Background()
				if ph.cancelAfter > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, ph.cancelAfter)
					defer cancel()
				}
				ch, err := srv.SubmitContext(ctx, "metrics", "v", p)
				if err != nil {
					if errors.Is(err, fastcolumns.ErrOverloaded) {
						shed.Add(1)
						return
					}
					log.Print(err)
					return
				}
				r := <-ch
				if r.Err != nil {
					if errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled) {
						gaveUp.Add(1)
						return
					}
					log.Print(r.Err)
					return
				}
				mu.Lock()
				rows += len(r.RowIDs)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)

		// Ask the optimizer what it would decide for this phase's shape —
		// the same computation the server just ran per batch.
		preds := make([]fastcolumns.Predicate, ph.clients)
		for i := range preds {
			if ph.sel == 0 {
				preds[i] = fastcolumns.Predicate{Lo: 1, Hi: 1}
			} else {
				w := int32(ph.sel * domain)
				preds[i] = fastcolumns.Predicate{Lo: 0, Hi: w}
			}
		}
		d, err := tbl.Explain("v", preds)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if s, g := shed.Load(), gaveUp.Load(); s > 0 || g > 0 {
			extra = fmt.Sprintf("  (shed %d, gave up %d)", s, g)
		}
		fmt.Printf("%-44s -> path %-5v (APS %.3f)  %8d rows in %v%s\n",
			ph.name, d.Path, d.Ratio, rows, elapsed.Round(time.Microsecond), extra)
	}

	// The operator's health picture: what the front door absorbed.
	st := srv.ServerStats()
	fmt.Printf("\nserver resilience counters:\n")
	fmt.Printf("  submitted          %6d\n", st.Submitted)
	fmt.Printf("  rejected overload  %6d\n", st.Rejected)
	fmt.Printf("  cancelled          %6d\n", st.Cancelled)
	fmt.Printf("  batches executed   %6d\n", st.Batches)
	fmt.Printf("  recovered panics   %6d\n", st.RecoveredPanics)
	fmt.Printf("  fallback retries   %6d (%d succeeded)\n", st.FallbackRetries, st.FallbackSuccesses)
	fmt.Printf("  failed batches     %6d\n", st.FailedBatches)

	// The same picture over the wire: what a dashboard scraping /metrics
	// would see (here just proving the endpoint serves real data).
	resp, err := http.Get(obsURL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /metrics -> %s, %d bytes of JSON\n", resp.Status, len(body))

	// And the in-process snapshot an embedded operator would read.
	snap := srv.Observe()
	fmt.Printf("\nobservability snapshot:\n")
	if h, ok := snap.Metrics.Histograms["scheduler.batch_width"]; ok {
		fmt.Printf("  batch width        p50 %d  p95 %d  (the q the APS model saw)\n",
			int64(h.P50), int64(h.P95))
	}
	if h, ok := snap.Metrics.Histograms["engine.batch_ns"]; ok {
		fmt.Printf("  batch latency      p50 %v  p99 %v over %d batches\n",
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond), h.Count)
	}
	fmt.Printf("  decision traces    %d retained\n", len(snap.Decisions))
	fmt.Printf("  drift: %d cells, global calibration %.2fx, max drift %.3f (threshold %.3f) stale=%v\n",
		len(snap.Drift.Cells), snap.Drift.GlobalRatio, snap.Drift.MaxDrift,
		snap.Drift.Threshold, snap.Drift.Stale)

	// The drift-loop controller's state, both in-process and over the
	// wire. In a healthy run drift stays fresh, so the counters show the
	// re-fitter watching (attempts 0, model still v1) rather than
	// swapping — it only acts when the model goes stale.
	rs, ok := eng.RefitStatus()
	fmt.Printf("\nrefit controller: enabled=%v attempts=%d swaps=%d rejected=%d model v%d\n",
		ok && rs.Enabled, rs.Attempts, rs.Swaps, rs.Rejected, rs.DesignVersion)
	resp, err = http.Get(obsURL + "/debug/refit")
	if err != nil {
		log.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /debug/refit -> %s, %d bytes of JSON\n", resp.Status, len(body))
}

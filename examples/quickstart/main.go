// Quickstart: build a table, add a secondary index and statistics, and
// watch the optimizer pick a different access path for a point lookup
// than for a wide analytical range — the core behaviour of FastColumns.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fastcolumns"
)

func main() {
	log.SetFlags(0)

	// An engine modeled on the paper's primary server. Use
	// fastcolumns.CalibrateHardware() to measure the host instead.
	eng := fastcolumns.New(fastcolumns.Config{})

	// A table of 4 million uniformly distributed 32-bit values.
	const n = 4_000_000
	const domain = 1 << 22
	rng := rand.New(rand.NewSource(1))
	data := make([]fastcolumns.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	tbl, err := eng.CreateTable("readings")
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.AddColumn("value", data); err != nil {
		log.Fatal(err)
	}
	// A secondary B+-tree (memory-tuned fanout) and an equi-depth
	// histogram for selectivity estimation.
	if err := tbl.CreateIndex("value"); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Analyze("value", 128); err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name   string
		lo, hi fastcolumns.Value
	}{
		{"point lookup", 12345, 12345},
		{"narrow range (~0.1%)", 100000, 100000 + domain/1000},
		{"analytical range (~25%)", 0, domain / 4},
	}
	for _, q := range queries {
		ids, decision, err := tbl.Select("value", q.lo, q.hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %5d rows via %-5v (APS ratio %.3f, decided in %v)\n",
			q.name, len(ids), decision.Path, decision.Ratio, decision.Elapsed)
	}

	// Appends land in a delta store and become visible after Merge, with
	// the index extended incrementally.
	if err := tbl.Append([]fastcolumns.Value{domain + 7}); err != nil {
		log.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		log.Fatal(err)
	}
	ids, _, err := tbl.Select("value", domain+7, domain+7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after append+merge: value %d found at rowIDs %v\n", domain+7, ids)
}

// Package fastcolumns is a main-memory analytical storage and execution
// engine with cost-based access path selection, reproducing "Access Path
// Selection in Main-Memory Optimized Data Systems: Should I Scan or
// Should I Probe?" (Kester, Athanassoulis, Idreos; SIGMOD 2017).
//
// The engine stores fixed-width integer attributes in columns or
// column-groups, optionally with order-preserving dictionary compression,
// zonemaps, column imprints, secondary B+-trees, and (for low-cardinality
// attributes) bitmap indexes. Batches of range-select queries are
// answered through the cheapest available access path — a shared
// sequential scan, a concurrent secondary-index scan, or a bitmap probe —
// chosen at run time by the APS cost model, which weighs query
// concurrency and total selectivity against the machine's memory
// hierarchy (not just a fixed selectivity threshold). A small DSL
// (Engine.Query) exposes selects and aggregates; tables persist to disk
// with Table.Save / Engine.LoadTable.
//
// Quick start:
//
//	eng := fastcolumns.New(fastcolumns.Config{})
//	tbl, _ := eng.CreateTable("events")
//	tbl.AddColumn("ts", data)
//	tbl.CreateIndex("ts")
//	tbl.Analyze("ts", 128)
//	res, _ := tbl.SelectBatch("ts", []fastcolumns.Predicate{{Lo: 10, Hi: 99}})
//	// res.Decision.Path says whether the optimizer scanned or probed.
package fastcolumns

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastcolumns/internal/adaptive"
	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/exec"
	"fastcolumns/internal/imprints"
	"fastcolumns/internal/index"
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/optimizer"
	"fastcolumns/internal/refit"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
)

// Value is the engine's fixed-width attribute type (32-bit integers, as
// in the paper's experiments).
type Value = storage.Value

// RowID is a tuple position in a dense column; select operators return
// collections of RowIDs in ascending order.
type RowID = storage.RowID

// Predicate is an inclusive range predicate (point queries have Lo == Hi).
type Predicate = scan.Predicate

// Hardware describes a machine profile for the cost model.
type Hardware = model.Hardware

// Path identifies the access path the optimizer chose.
type Path = model.Path

// Decision records one access-path selection: the APS ratio, the
// selectivity estimates behind it, and the (microsecond-scale) time the
// decision itself took.
type Decision = optimizer.Decision

// Design is the cost model's design-constant block (Table 1 plus the
// Appendix C fitting constants); Config.Design overrides the optimizer's
// starting point with one.
type Design = model.Design

// RobustPolicy configures the estimate-error-robust decision mode: see
// Config.Robust.
type RobustPolicy = optimizer.RobustPolicy

// Re-exported path constants.
const (
	PathScan   = model.PathScan
	PathIndex  = model.PathIndex
	PathBitmap = model.PathBitmap
)

// DefaultHardware returns the paper's primary server profile (HW1).
func DefaultHardware() Hardware { return model.HW1() }

// CalibrateHardware measures the host's memory bandwidth and latency
// (the Intel Memory Latency Checker step of Section 3) and returns a
// profile for Config.Hardware. It takes a few hundred milliseconds.
func CalibrateHardware() Hardware { return memsim.Calibrate(0) }

// Config tunes an Engine. The zero value is usable: HW1 hardware, all
// cores, fitted model constants.
type Config struct {
	// Hardware is the machine profile the optimizer models. Zero value
	// selects the paper's HW1; use CalibrateHardware for the host.
	Hardware Hardware
	// Workers sizes the engine's morsel worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Fanout sets the B+-tree branching factor (<= 0: the memory-tuned 21).
	Fanout int
	// TraceCap bounds the decision trace ring buffer (<= 0: 1024 entries).
	TraceCap int
	// BlockTuples is the shared-scan block size in tuples (<= 0:
	// scan.DefaultBlockTuples, 16Ki — 64 KiB blocks).
	BlockTuples int
	// ArenaRetain caps the rowID capacity (entries) of buffers the
	// result arena keeps across batches (<= 0: the default 4M).
	ArenaRetain int
	// Design overrides the optimizer's starting cost-model constants
	// (nil: the paper's fitted design). Useful for replaying a saved fit,
	// or for experiments that start from deliberately stale constants to
	// exercise the drift/refit loop.
	Design *Design
	// Robust enables the estimate-error-robust decision mode: batches
	// whose flip margin falls below Robust.MarginThreshold are hedged by
	// minimax regret or routed to the adaptive path. Zero value disables.
	Robust RobustPolicy
	// EnableRefit starts a background controller that watches the drift
	// accounting and, when the fitted constants go stale on this host,
	// re-fits them from live traces and hot-swaps the optimizer's design.
	EnableRefit bool
	// RefitInterval and RefitCooldown tune the controller's poll cadence
	// and post-attempt hysteresis (<= 0: 2s and 30s). RefitMinObs is the
	// harvested-observation floor below which no fit runs (<= 0: 16).
	RefitInterval time.Duration
	RefitCooldown time.Duration
	RefitMinObs   int
}

// Engine is a FastColumns instance: a set of tables plus the APS
// optimizer configured for one machine profile.
type Engine struct {
	hw          Hardware
	opt         *optimizer.Optimizer
	workers     int
	fanout      int
	blockTuples int
	observer    *obs.Observer
	pool        *rt.Pool
	arena       *rt.Arena
	refitc      *refit.Controller

	mu     sync.RWMutex
	tables map[string]*Table
}

// New creates an engine.
func New(cfg Config) *Engine {
	hw := cfg.Hardware
	if hw.ScanBandwidth == 0 {
		hw = model.HW1()
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = index.DefaultFanout
	}
	observer := obs.NewObserver(cfg.TraceCap)
	opt := optimizer.New(hw)
	if cfg.Design != nil {
		opt = optimizer.NewWithDesign(hw, *cfg.Design)
	}
	if cfg.Robust.Enabled() || cfg.Robust.EstimateError > 0 {
		opt.SetRobust(cfg.Robust)
	}
	e := &Engine{
		hw:          hw,
		opt:         opt,
		workers:     cfg.Workers,
		fanout:      fanout,
		blockTuples: cfg.BlockTuples,
		observer:    observer,
		pool:        rt.NewPool(cfg.Workers, observer.Metrics),
		arena:       rt.NewArena(cfg.ArenaRetain, observer.Metrics),
		tables:      make(map[string]*Table),
	}
	e.opt.SetMetrics(e.observer.Metrics)
	if cfg.EnableRefit {
		e.refitc = refit.New(e.opt, e.observer, refit.Options{
			Interval:        cfg.RefitInterval,
			Cooldown:        cfg.RefitCooldown,
			MinObservations: cfg.RefitMinObs,
		})
		e.refitc.Start()
	}
	return e
}

// Close shuts the engine down: the refit controller (if any) stops, then
// the worker pool's queued morsels drain and the workers exit. Close the
// engine after any Server built on it. Idempotent; queries issued after
// Close still answer correctly (morsel dispatch degrades to inline
// execution).
func (e *Engine) Close() {
	if e.refitc != nil {
		e.refitc.Close()
	}
	e.pool.Close()
}

// Observer exposes the engine's observability layer: the metrics
// registry, the APS decision trace, and the model-drift accounting.
// Every batch the engine executes is recorded here.
func (e *Engine) Observer() *obs.Observer { return e.observer }

// Observe snapshots the engine's observability state: all metrics (with
// histogram quantiles), the most recent APS decisions, and the
// model-drift report that says whether the fitted cost-model constants
// still describe this host.
func (e *Engine) Observe() obs.Snapshot { return e.observer.Snapshot() }

// Hardware returns the profile the optimizer currently models — after an
// online refit this can differ from the configured profile (the fit
// adjusts the pipelining factor).
func (e *Engine) Hardware() Hardware { return e.opt.HW() }

// RefitStatus returns the refit controller's state; ok is false when the
// engine was built without EnableRefit.
func (e *Engine) RefitStatus() (st obs.RefitStatus, ok bool) {
	return e.observer.RefitStatus()
}

// CreateTable registers a new empty table.
func (e *Engine) CreateTable(name string) (*Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("fastcolumns: table %q already exists", name)
	}
	t := &Table{
		engine: e,
		st:     storage.NewTable(name),
		rels:   make(map[string]*exec.Relation),
		hists:  make(map[string]*stats.Histogram),
	}
	e.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("fastcolumns: no table %q", name)
	}
	return t, nil
}

// Table is one relation: columnar (or hybrid) storage plus per-attribute
// access structures and statistics.
type Table struct {
	engine *Engine

	mu    sync.RWMutex
	st    *storage.Table
	rels  map[string]*exec.Relation
	hists map[string]*stats.Histogram
}

// Name returns the table name.
func (t *Table) Name() string { return t.st.Name() }

// Rows returns the read-store tuple count.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.st.Rows()
}

// AddColumn installs a contiguous attribute.
func (t *Table) AddColumn(name string, data []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.st.AddColumn(name, data); err != nil {
		return err
	}
	return t.buildRelation(name)
}

// AddColumnGroup installs a hybrid column-group layout over the named
// attributes. Scans over any member stream the whole group's tuples,
// which shifts access path selection towards the index (Figure 15).
func (t *Table) AddColumnGroup(names []string, cols [][]Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.st.AddGroup(names, cols); err != nil {
		return err
	}
	for _, name := range names {
		if err := t.buildRelation(name); err != nil {
			return err
		}
	}
	return nil
}

// buildRelation materializes the execution view of a just-added
// attribute. Caller holds t.mu for writing.
func (t *Table) buildRelation(attr string) error {
	col, err := t.st.Column(attr)
	if err != nil {
		return err
	}
	t.rels[attr] = &exec.Relation{Column: col}
	return nil
}

// relation returns the execution view of an attribute. Caller holds t.mu
// (read suffices; views are created eagerly when attributes are added).
func (t *Table) relation(attr string) (*exec.Relation, error) {
	rel, ok := t.rels[attr]
	if !ok {
		return nil, fmt.Errorf("fastcolumns: table %q has no attribute %q", t.st.Name(), attr)
	}
	return rel, nil
}

// CreateIndex bulk-loads a secondary B+-tree over the attribute.
func (t *Table) CreateIndex(attr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	rel.Index = index.Build(rel.Column, t.engine.fanout)
	return nil
}

// CreateBitmapIndex builds the value-per-bitmap secondary index over a
// low-cardinality attribute (256 distinct values or fewer). The optimizer
// then arbitrates among scan, B+-tree, and bitmap per batch.
func (t *Table) CreateBitmapIndex(attr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	bm, err := bitmap.Build(rel.Column)
	if err != nil {
		return err
	}
	rel.Bitmap = bm
	return nil
}

// BuildImprints attaches cache-line-granular data skipping to a
// contiguous attribute; it shines on clustered (naturally ordered) data.
func (t *Table) BuildImprints(attr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	imp, err := imprints.Build(rel.Column)
	if err != nil {
		return err
	}
	rel.Imprints = imp
	return nil
}

// Compress builds the order-preserving dictionary twin of a contiguous
// attribute; scans then run over 16-bit codes.
func (t *Table) Compress(attr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	cc, err := storage.Compress(rel.Column)
	if err != nil {
		return err
	}
	rel.Compressed = cc
	return nil
}

// BuildZonemap attaches data-skipping bounds with the given zone size.
func (t *Table) BuildZonemap(attr string, zoneSize int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	rel.Zonemap = storage.BuildZonemap(rel.Column, zoneSize)
	return nil
}

// Analyze builds the equi-depth histogram the optimizer estimates
// selectivity from.
func (t *Table) Analyze(attr string, buckets int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rel, err := t.relation(attr)
	if err != nil {
		return err
	}
	h, err := stats.BuildHistogram(rel.Column, buckets)
	if err != nil {
		return err
	}
	t.hists[attr] = h
	return nil
}

// HasIndex reports whether the attribute carries a secondary index.
func (t *Table) HasIndex(attr string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, ok := t.rels[attr]
	return ok && rel.Index != nil
}

// BatchResult is the outcome of answering a batch of select queries.
type BatchResult struct {
	// RowIDs holds one ascending result set per query, in batch order.
	RowIDs [][]RowID
	// Decision is the access path selection that produced the results.
	Decision Decision
	// Elapsed is the execution time (excluding optimization).
	Elapsed time.Duration

	pooled *rt.Results
}

// Release hands the result buffers back to the engine's arena for the
// next batch to reuse; RowIDs must not be used afterwards. Optional —
// results simply become garbage if never released — but the engine's
// steady-state zero-allocation path needs it. Callers that share result
// slices (the serve path aliases duplicate predicates' results across
// submitters) must not release.
func (r *BatchResult) Release() {
	r.pooled.Release()
	r.pooled = nil
	r.RowIDs = nil
}

// SelectBatch answers q concurrent range queries over one attribute,
// performing run-time access path selection for the batch as a whole.
func (t *Table) SelectBatch(attr string, preds []Predicate) (BatchResult, error) {
	return t.SelectBatchContext(context.Background(), attr, preds)
}

// SelectBatchContext is SelectBatch with a deadline/cancellation context.
// Cancellation is cooperative: it is honored before execution starts and
// between execution phases, not inside a running kernel.
//
//fclint:owns — the caller receives pooled RowIDs and the Release obligation.
func (t *Table) SelectBatchContext(ctx context.Context, attr string, preds []Predicate) (BatchResult, error) {
	if len(preds) == 0 {
		return BatchResult{}, fmt.Errorf("fastcolumns: empty batch")
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, err := t.relation(attr)
	if err != nil {
		return BatchResult{}, err
	}
	d := t.engine.opt.Decide(rel, t.hists[attr], preds)
	if d.RouteAdaptive {
		// The robust policy judged the batch's flip margin too thin to
		// commit to either static path: answer it on the Smooth-Scan
		// adaptive path, which starts probing and morphs into a scan if
		// the result outgrows the break-even budget — bounded regret
		// whichever way the estimates were wrong.
		return t.selectBatchAdaptive(ctx, attr, rel, d, preds)
	}
	opt := t.execOptions(rel)
	opt.Hints = cardinalityHints(d.Selectivities, rel.Column.Len())
	res, err := exec.Run(ctx, rel, d.Path, preds, opt)
	if err != nil {
		return BatchResult{}, err
	}
	t.observeBatch(attr, rel, d, res.Elapsed)
	return BatchResult{RowIDs: res.RowIDs, Decision: d, Elapsed: res.Elapsed, pooled: res.Pooled}, nil
}

// selectBatchAdaptive answers a batch query-by-query on the adaptive
// path. Caller holds t.mu for reading.
//
//fclint:owns — per-query adaptive results pass through to the caller.
func (t *Table) selectBatchAdaptive(ctx context.Context, attr string, rel *exec.Relation, d Decision, preds []Predicate) (BatchResult, error) {
	snap := t.engine.opt.Snapshot()
	budget := adaptive.BudgetFromModel(rel.Column.Len(), float64(rel.Column.TupleSize()), snap.HW, snap.Design)
	start := time.Now()
	rows := make([][]RowID, len(preds))
	for i, p := range preds {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
		res, err := adaptive.Select(rel, p, budget)
		if err != nil {
			return BatchResult{}, err
		}
		rows[i] = res.RowIDs
	}
	elapsed := time.Since(start)
	t.observeBatch(attr, rel, d, elapsed)
	return BatchResult{RowIDs: rows, Decision: d, Elapsed: elapsed}, nil
}

// cardinalityHints turns the optimizer's per-query selectivity
// estimates into expected result cardinalities, which size the arena's
// buffer checkouts so scan kernels stop re-growing mid-scan.
func cardinalityHints(sels []float64, n int) []int {
	if len(sels) == 0 {
		return nil
	}
	hints := make([]int, len(sels))
	for i, s := range sels {
		hints[i] = int(s*float64(n)) + 1
	}
	return hints
}

// observeBatch folds one executed batch into the engine's observability
// layer: a decision-trace entry, the drift accumulator (predicted cost of
// the chosen path vs measured wall time), and the batch latency
// histogram. Everything here is allocation-free on the warm path.
func (t *Table) observeBatch(attr string, rel *exec.Relation, d Decision, elapsed time.Duration) {
	o := t.engine.observer
	e := obs.TraceEntry{
		At:             time.Now(),
		Table:          t.st.Name(),
		Attr:           attr,
		Q:              len(d.Selectivities),
		N:              rel.Column.Len(),
		TupleSize:      float64(rel.Column.TupleSize()),
		Path:           d.Path.String(),
		Kernel:         d.ScanKernel,
		Forced:         d.Forced,
		Ratio:          d.Ratio,
		PredScanCost:   d.ScanCost,
		PredIndexCost:  d.IndexCost,
		PredChosenCost: d.ChosenCost,
		Elapsed:        elapsed,
	}
	e.SetSelectivities(d.Selectivities)
	if d.RouteAdaptive {
		// The batch ran on the adaptive path, not the one the static
		// model predicted for: trace it under its own name and keep it
		// out of the drift cells, whose measured-vs-predicted ratios are
		// only meaningful when prediction and execution name the same
		// path.
		e.Path = "adaptive"
		o.Trace.Append(e)
		o.Metrics.Counter("engine.adaptive_batches").Add(1)
		o.Metrics.Histogram("engine.batch_ns").Record(elapsed.Nanoseconds())
		return
	}
	o.Trace.Append(e)
	// Drift cells key on the kernel-aware path name (e.g. "scan(swar)"
	// over a compressed twin), so a stale packed fit flags separately.
	o.Drift.Record(d.DriftPath(), d.MeanSelectivity(), d.ChosenCost, elapsed.Seconds())
	o.Metrics.Histogram("engine.batch_ns").Record(elapsed.Nanoseconds())
}

// Count answers COUNT(*) for a batch of range queries without
// materializing rowIDs: the access path is still chosen by APS, but the
// tree and bitmap count inside their structures and the scan skips
// result writing — the COUNT(*) fast path.
func (t *Table) Count(attr string, preds []Predicate) ([]int, Decision, error) {
	return t.CountContext(context.Background(), attr, preds)
}

// CountContext is Count with a deadline/cancellation context.
func (t *Table) CountContext(ctx context.Context, attr string, preds []Predicate) ([]int, Decision, error) {
	if len(preds) == 0 {
		return nil, Decision{}, fmt.Errorf("fastcolumns: empty batch")
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, err := t.relation(attr)
	if err != nil {
		return nil, Decision{}, err
	}
	d := t.engine.opt.Decide(rel, t.hists[attr], preds)
	counts, err := exec.RunCount(ctx, rel, d.Path, preds, t.execOptions(rel))
	if err != nil {
		return nil, Decision{}, err
	}
	return counts, d, nil
}

// Select answers one range query (a batch of one).
//
//fclint:owns — single-query wrapper over SelectBatch; same ownership contract.
func (t *Table) Select(attr string, lo, hi Value) ([]RowID, Decision, error) {
	res, err := t.SelectBatch(attr, []Predicate{{Lo: lo, Hi: hi}})
	if err != nil {
		return nil, Decision{}, err
	}
	return res.RowIDs[0], res.Decision, nil
}

// Explain runs access path selection for a batch without executing it.
func (t *Table) Explain(attr string, preds []Predicate) (Decision, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, err := t.relation(attr)
	if err != nil {
		return Decision{}, err
	}
	return t.engine.opt.Decide(rel, t.hists[attr], preds), nil
}

// SelectVia bypasses the optimizer and answers the batch through the
// given access path (for experiments and baselines).
func (t *Table) SelectVia(path Path, attr string, preds []Predicate) (BatchResult, error) {
	return t.SelectViaContext(context.Background(), path, attr, preds)
}

// SelectViaContext is SelectVia with a deadline/cancellation context. It
// is also the server's safe-fallback entry: a batch that fails on the
// optimizer's chosen path is retried once through PathScan here.
//
//fclint:owns — the caller receives pooled RowIDs and the Release obligation.
func (t *Table) SelectViaContext(ctx context.Context, path Path, attr string, preds []Predicate) (BatchResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rel, err := t.relation(attr)
	if err != nil {
		return BatchResult{}, err
	}
	res, err := exec.Run(ctx, rel, path, preds, t.execOptions(rel))
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{
		RowIDs:   res.RowIDs,
		Decision: Decision{Path: path, Forced: true},
		Elapsed:  res.Elapsed,
		pooled:   res.Pooled,
	}, nil
}

func (t *Table) execOptions(rel *exec.Relation) exec.Options {
	return exec.Options{
		Workers:          t.engine.workers,
		BlockTuples:      t.engine.blockTuples,
		PreferCompressed: rel.Compressed != nil,
		UseZonemap:       rel.Zonemap != nil,
		UseImprints:      rel.Imprints != nil,
		Metrics:          t.engine.observer.Metrics,
		Pool:             t.engine.pool,
		Arena:            t.engine.arena,
	}
}

// Append buffers one tuple in the table's delta write store; it becomes
// visible to queries after Merge. Tuple values follow the sorted order of
// the attribute names (storage.Table.ColumnNames).
func (t *Table) Append(tuple []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Delta().Append(tuple)
}

// Pending returns the number of buffered (not yet merged) tuples.
func (t *Table) Pending() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.st.Delta().Pending()
}

// Merge folds the delta store into the read store, extends secondary
// indexes incrementally, and rebuilds the derived per-attribute
// structures (compressed twins, zonemaps, histograms).
func (t *Table) Merge() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRows := t.st.Rows()
	//fclint:ignore lockhold merge must mutate the table under the write lock; the only blocking callee is the fault-injection delay hook used by tests
	added, err := t.st.MergeDelta()
	if err != nil || added == 0 {
		return err
	}
	for attr, rel := range t.rels {
		col, err := t.st.Column(attr)
		if err != nil {
			return err
		}
		rel.Column = col
		if rel.Index != nil {
			for i := oldRows; i < oldRows+added; i++ {
				rel.Index.Insert(col.Get(i), RowID(i))
			}
		}
		if rel.Compressed != nil {
			cc, err := storage.Compress(col)
			if err != nil {
				// New values can exceed the 16-bit dictionary: drop the
				// compressed twin rather than serve stale data.
				rel.Compressed = nil
			} else {
				rel.Compressed = cc
			}
		}
		if rel.Zonemap != nil {
			rel.Zonemap = storage.BuildZonemap(col, rel.Zonemap.ZoneSize())
		}
		if rel.Bitmap != nil {
			bm, err := bitmap.Build(col)
			if err != nil {
				// The merge can widen the domain past bitmap range: drop
				// the bitmap rather than serve stale data.
				rel.Bitmap = nil
			} else {
				rel.Bitmap = bm
			}
		}
		if rel.Imprints != nil {
			imp, err := imprints.Build(col)
			if err != nil {
				rel.Imprints = nil
			} else {
				rel.Imprints = imp
			}
		}
		if _, ok := t.hists[attr]; ok {
			h, err := stats.BuildHistogram(col, t.hists[attr].Buckets())
			if err == nil {
				t.hists[attr] = h
			}
		}
	}
	return nil
}

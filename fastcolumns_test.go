package fastcolumns

import (
	"math/rand"
	"testing"
	"time"

	"fastcolumns/internal/workload"
)

func testEngine(t *testing.T, n int, domain int32) (*Engine, *Table, []Value) {
	t.Helper()
	eng := New(Config{})
	tbl, err := eng.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Uniform(1, n, domain)
	if err := tbl.AddColumn("v", data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Analyze("v", 128); err != nil {
		t.Fatal(err)
	}
	return eng, tbl, data
}

func refIDs(data []Value, p Predicate) []RowID {
	var out []RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEngineLifecycle(t *testing.T) {
	eng, tbl, _ := testEngine(t, 10000, 1000)
	if _, err := eng.CreateTable("t"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	got, err := eng.Table("t")
	if err != nil || got != tbl {
		t.Fatalf("Table lookup failed: %v", err)
	}
	if _, err := eng.Table("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	if tbl.Rows() != 10000 || tbl.Name() != "t" {
		t.Fatalf("table misdescribed: %d rows, %q", tbl.Rows(), tbl.Name())
	}
	if !tbl.HasIndex("v") || tbl.HasIndex("w") {
		t.Fatal("HasIndex wrong")
	}
}

func TestSelectCorrectAcrossPaths(t *testing.T) {
	_, tbl, data := testEngine(t, 50000, 10000)
	preds := []Predicate{
		{Lo: 100, Hi: 120},     // low selectivity: likely index
		{Lo: 0, Hi: 9000},      // high selectivity: scan
		{Lo: 20000, Hi: 30000}, // empty
	}
	for _, p := range preds {
		ids, d, err := tbl.Select("v", p.Lo, p.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(ids, refIDs(data, p)) {
			t.Fatalf("Select(%+v) via %v wrong (%d rows)", p, d.Path, len(ids))
		}
	}
}

func TestOptimizerPicksIndexForPointAndScanForWide(t *testing.T) {
	_, tbl, _ := testEngine(t, 2_000_000, 1<<20)
	dPoint, err := tbl.Explain("v", []Predicate{{Lo: 500, Hi: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if dPoint.Path != PathIndex {
		t.Fatalf("point get chose %v (ratio %v)", dPoint.Path, dPoint.Ratio)
	}
	dWide, err := tbl.Explain("v", []Predicate{{Lo: 0, Hi: 1 << 19}})
	if err != nil {
		t.Fatal(err)
	}
	if dWide.Path != PathScan {
		t.Fatalf("50%% query chose %v (ratio %v)", dWide.Path, dWide.Ratio)
	}
}

func TestSelectViaForcesPath(t *testing.T) {
	_, tbl, data := testEngine(t, 30000, 5000)
	p := Predicate{Lo: 1000, Hi: 1100}
	want := refIDs(data, p)
	for _, path := range []Path{PathScan, PathIndex} {
		res, err := tbl.SelectVia(path, "v", []Predicate{p})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision.Path != path || !res.Decision.Forced {
			t.Fatalf("SelectVia(%v) decision %+v", path, res.Decision)
		}
		if !equalIDs(res.RowIDs[0], want) {
			t.Fatalf("SelectVia(%v) wrong rows", path)
		}
	}
}

func TestBatchResultsMatchPerQuery(t *testing.T) {
	_, tbl, data := testEngine(t, 40000, 1<<16)
	preds := workload.Batch(9, 32, 0.01, 1<<16)
	res, err := tbl.SelectBatch("v", preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowIDs) != len(preds) {
		t.Fatalf("got %d result sets", len(res.RowIDs))
	}
	for qi, p := range preds {
		if !equalIDs(res.RowIDs[qi], refIDs(data, p)) {
			t.Fatalf("batch query %d wrong", qi)
		}
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	_, tbl, _ := testEngine(t, 100, 10)
	if _, err := tbl.SelectBatch("v", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestUnknownAttribute(t *testing.T) {
	_, tbl, _ := testEngine(t, 100, 10)
	if _, _, err := tbl.Select("zzz", 0, 1); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if err := tbl.CreateIndex("zzz"); err == nil {
		t.Fatal("index on unknown attribute accepted")
	}
}

func TestCompressedAndZonemapPathsStayCorrect(t *testing.T) {
	_, tbl, data := testEngine(t, 30000, 4000)
	if err := tbl.Compress("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildZonemap("v", 512); err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 500, Hi: 700}
	res, err := tbl.SelectVia(PathScan, "v", []Predicate{p})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(res.RowIDs[0], refIDs(data, p)) {
		t.Fatal("compressed scan wrong")
	}
}

func TestColumnGroupTable(t *testing.T) {
	eng := New(Config{})
	tbl, _ := eng.CreateTable("g")
	a := workload.Uniform(3, 5000, 1000)
	b := workload.Uniform(4, 5000, 1000)
	if err := tbl.AddColumnGroup([]string{"a", "b"}, [][]Value{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("b"); err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 100, Hi: 200}
	ids, _, err := tbl.Select("b", p.Lo, p.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids, refIDs(b, p)) {
		t.Fatal("column-group select wrong")
	}
}

func TestAppendMergeVisibility(t *testing.T) {
	_, tbl, data := testEngine(t, 10000, 1<<14)
	if err := tbl.Compress("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildZonemap("v", 256); err != nil {
		t.Fatal(err)
	}
	// Append tuples carrying a value not in the read store yet.
	novel := Value(1<<14 + 5)
	for i := 0; i < 3; i++ {
		if err := tbl.Append([]Value{novel}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Pending() != 3 {
		t.Fatalf("Pending = %d", tbl.Pending())
	}
	// Invisible before merge.
	ids, _, err := tbl.Select("v", novel, novel)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("unmerged appends visible: %v", ids)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 10003 {
		t.Fatalf("Rows after merge = %d", tbl.Rows())
	}
	// Visible via both paths after merge.
	for _, path := range []Path{PathScan, PathIndex} {
		res, err := tbl.SelectVia(path, "v", []Predicate{{Lo: novel, Hi: novel}})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.RowIDs[0]; len(got) != 3 || got[0] != 10000 || got[2] != 10002 {
			t.Fatalf("post-merge %v select = %v", path, got)
		}
	}
	// Old data still intact.
	p := Predicate{Lo: 100, Hi: 200}
	ids, _, _ = tbl.Select("v", p.Lo, p.Hi)
	if !equalIDs(ids, refIDs(data, p)) {
		t.Fatal("pre-merge data corrupted by merge")
	}
}

func TestServerBatchesAndAnswers(t *testing.T) {
	eng, _, data := testEngine(t, 30000, 1<<16)
	srv := eng.Serve(ServeOptions{Window: 5 * time.Millisecond})
	defer srv.Close()
	rng := rand.New(rand.NewSource(11))
	type sub struct {
		p  Predicate
		ch <-chan Reply
	}
	var subs []sub
	for i := 0; i < 20; i++ {
		lo := rng.Int31n(1 << 16)
		p := Predicate{Lo: lo, Hi: lo + 500}
		ch, err := srv.Submit("t", "v", p)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{p: p, ch: ch})
	}
	for _, s := range subs {
		r := <-s.ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !equalIDs(r.RowIDs, refIDs(data, s.p)) {
			t.Fatalf("server answer wrong for %+v", s.p)
		}
	}
}

func TestServerUnknownTable(t *testing.T) {
	eng, _, _ := testEngine(t, 100, 10)
	srv := eng.Serve(ServeOptions{})
	defer srv.Close()
	if _, err := srv.Submit("missing", "v", Predicate{}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestDefaultAndCalibratedHardware(t *testing.T) {
	hw := DefaultHardware()
	if err := hw.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Hardware: hw})
	if eng.Hardware().Name != hw.Name {
		t.Fatal("hardware not carried into engine")
	}
}

func TestBitmapIndexPath(t *testing.T) {
	eng := New(Config{})
	tbl, _ := eng.CreateTable("bm")
	data := workload.Uniform(7, 20000, 128) // low-cardinality attribute
	if err := tbl.AddColumn("status", data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateBitmapIndex("status"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Analyze("status", 64); err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 42, Hi: 42}
	res, err := tbl.SelectVia(PathBitmap, "status", []Predicate{p})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(res.RowIDs[0], refIDs(data, p)) {
		t.Fatal("bitmap select wrong")
	}
	// The optimizer should choose the bitmap for an equality query on a
	// low-cardinality attribute with no B+-tree.
	d, err := tbl.Explain("status", []Predicate{p})
	if err != nil {
		t.Fatal(err)
	}
	if d.Path != PathBitmap {
		t.Fatalf("equality query on 128-value domain chose %v (ratio %v)", d.Path, d.Ratio)
	}
	// Bitmap rejected on wide domains.
	wide := workload.Uniform(8, 1000, 1<<20)
	if err := tbl.AddColumn("wide", wide); err == nil {
		t.Fatal("row-count mismatch should fail") // 1000 != 20000 rows
	}
}

func TestImprintsSpeedScanOnClusteredData(t *testing.T) {
	eng := New(Config{})
	tbl, _ := eng.CreateTable("imp")
	data := workload.Sorted(9, 50000, 1<<20)
	if err := tbl.AddColumn("ts", data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildImprints("ts"); err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 1 << 18, Hi: 1<<18 + 5000}
	res, err := tbl.SelectVia(PathScan, "ts", []Predicate{p})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(res.RowIDs[0], refIDs(data, p)) {
		t.Fatal("imprint-accelerated scan wrong")
	}
}

func TestMergeRebuildsBitmapAndImprints(t *testing.T) {
	eng := New(Config{})
	tbl, _ := eng.CreateTable("mrg")
	data := workload.Uniform(10, 5000, 100)
	if err := tbl.AddColumn("v", data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateBitmapIndex("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildImprints("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append([]Value{55}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.SelectVia(PathBitmap, "v", []Predicate{{Lo: 55, Hi: 55}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.RowIDs[0] {
		if id == 5000 {
			found = true
		}
	}
	if !found {
		t.Fatal("merged row missing from rebuilt bitmap")
	}
}

func TestSaveAndLoadTable(t *testing.T) {
	eng, tbl, data := testEngine(t, 5000, 1000)
	dir := t.TempDir()
	if err := tbl.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Load into a fresh engine, rebuild structures, query.
	eng2 := New(Config{})
	loaded, err := eng2.LoadTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rows() != 5000 || loaded.Name() != "t" {
		t.Fatalf("loaded %q with %d rows", loaded.Name(), loaded.Rows())
	}
	if err := loaded.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Analyze("v", 64); err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 100, Hi: 150}
	ids, _, err := loaded.Select("v", p.Lo, p.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(ids, refIDs(data, p)) {
		t.Fatal("loaded table answers differently")
	}
	// Duplicate registration rejected.
	if _, err := eng.LoadTable(dir); err == nil {
		t.Fatal("loading over an existing table name accepted")
	}
}

func TestSelectAdaptive(t *testing.T) {
	_, tbl, data := testEngine(t, 100000, 1<<20)
	// Narrow query: finishes as index, matches reference.
	p := Predicate{Lo: 100, Hi: 100 + 1<<10}
	res, err := tbl.SelectAdaptive("v", p.Lo, p.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Morphed {
		t.Fatal("narrow query should not morph")
	}
	if !equalIDs(res.RowIDs, refIDs(data, p)) {
		t.Fatal("adaptive narrow result wrong")
	}
	// Wide query: morphs, still correct.
	wide := Predicate{Lo: 0, Hi: 1 << 19}
	res, err = tbl.SelectAdaptive("v", wide.Lo, wide.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Morphed || res.Wasted == 0 {
		t.Fatalf("wide query should morph with waste: %+v", res.Morphed)
	}
	if !equalIDs(res.RowIDs, refIDs(data, wide)) {
		t.Fatal("adaptive wide result wrong")
	}
	// No index: error.
	eng2 := New(Config{})
	t2, _ := eng2.CreateTable("noidx")
	if err := t2.AddColumn("v", data); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.SelectAdaptive("v", 0, 10); err == nil {
		t.Fatal("adaptive select without index accepted")
	}
}

func TestExplainRobustness(t *testing.T) {
	_, tbl, _ := testEngine(t, 2_000_000, 1<<20)
	// Deep in index territory: wide margin, big penalty.
	dPoint, rPoint, err := tbl.ExplainRobustness("v", []Predicate{{Lo: 5, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if dPoint.Path != PathIndex {
		t.Fatalf("point chose %v", dPoint.Path)
	}
	if rPoint.ErrorMargin < 5 || rPoint.WrongChoicePenalty < 2 {
		t.Fatalf("point robustness implausible: %+v", rPoint)
	}
	// Every margin >= 1, every penalty >= 1.
	for _, p := range []Predicate{{Lo: 0, Hi: 1 << 12}, {Lo: 0, Hi: 1 << 19}} {
		_, r, err := tbl.ExplainRobustness("v", []Predicate{p})
		if err != nil {
			t.Fatal(err)
		}
		if r.ErrorMargin < 1 || r.WrongChoicePenalty < 1 {
			t.Fatalf("robustness below 1: %+v", r)
		}
	}
}

func TestServerStats(t *testing.T) {
	eng, _, _ := testEngine(t, 20000, 1<<16)
	srv := eng.Serve(ServeOptions{Window: 2 * time.Millisecond})
	defer srv.Close()
	// Cold: zero value.
	if st := srv.Stats("t", "v"); st.Batches != 0 || st.Queries != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	var chans []<-chan Reply
	for i := 0; i < 12; i++ {
		ch, err := srv.Submit("t", "v", Predicate{Lo: int32(i), Hi: int32(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := srv.Stats("t", "v")
	if st.Queries != 12 {
		t.Fatalf("Queries = %d, want 12", st.Queries)
	}
	if st.Batches < 1 || st.Batches > 12 {
		t.Fatalf("Batches = %d", st.Batches)
	}
	if st.MaxBatch < 1 {
		t.Fatalf("MaxBatch = %d", st.MaxBatch)
	}
	var total int64
	for _, c := range st.PathCounts {
		total += c
	}
	if total != st.Batches {
		t.Fatalf("path tallies %v don't sum to batches %d", st.PathCounts, st.Batches)
	}
	// Snapshot isolation: mutating the returned map must not leak back.
	st.PathCounts["scan"] = 999
	if srv.Stats("t", "v").PathCounts["scan"] == 999 {
		t.Fatal("Stats leaked internal map")
	}
}

func TestServerSharesDuplicatePredicates(t *testing.T) {
	eng, _, data := testEngine(t, 20000, 1<<14)
	srv := eng.Serve(ServeOptions{Window: 5 * time.Millisecond})
	defer srv.Close()
	p := Predicate{Lo: 100, Hi: 300}
	want := refIDs(data, p)
	var chans []<-chan Reply
	for i := 0; i < 10; i++ {
		ch, err := srv.Submit("t", "v", p) // all identical
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	ch2, err := srv.Submit("t", "v", Predicate{Lo: 500, Hi: 600})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !equalIDs(r.RowIDs, want) {
			t.Fatal("deduped answer wrong")
		}
	}
	r := <-ch2
	if r.Err != nil || !equalIDs(r.RowIDs, refIDs(data, Predicate{Lo: 500, Hi: 600})) {
		t.Fatal("non-duplicate answer wrong")
	}
}

func TestTableCountFastPath(t *testing.T) {
	eng, tbl, data := testEngine(t, 40000, 1<<16)
	preds := []Predicate{{Lo: 0, Hi: 500}, {Lo: 1 << 15, Hi: 1<<15 + 100}, {Lo: 1 << 17, Hi: 1 << 18}}
	counts, d, err := tbl.Count("v", preds)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if counts[i] != len(refIDs(data, p)) {
			t.Fatalf("count[%d] = %d, want %d (path %v)", i, counts[i], len(refIDs(data, p)), d.Path)
		}
	}
	if _, _, err := tbl.Count("v", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// The DSL COUNT(*) without residuals routes through the fast path and
	// agrees with the materializing query.
	res, err := eng.Query("SELECT COUNT(*) FROM t WHERE v BETWEEN 0 AND 500")
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Count != int64(counts[0]) {
		t.Fatalf("DSL fast count %d, want %d", res.Agg.Count, counts[0])
	}
}

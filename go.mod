module fastcolumns

go 1.22

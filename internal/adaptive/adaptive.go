// Package adaptive implements a Smooth-Scan-style access path (the
// "delaying optimization decisions" family the paper's Section 6
// contrasts with up-front APS): the operator starts probing the
// secondary index and morphs into a sequential scan if the result
// outgrows the estimate that justified probing. It trades a bounded
// amount of wasted probe work for robustness against selectivity
// misestimation — whereas APS commits up front and relies on the
// estimate. The AblationAdaptive benchmark compares the two under good
// and bad estimates.
package adaptive

import (
	"errors"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// Outcome reports how an adaptive select ended.
type Outcome int

const (
	// FinishedAsIndex means the probe completed within budget.
	FinishedAsIndex Outcome = iota
	// MorphedToScan means the result outgrew the budget and the operator
	// restarted as a sequential scan.
	MorphedToScan
)

// String names the outcome.
func (o Outcome) String() string {
	if o == MorphedToScan {
		return "morphed-to-scan"
	}
	return "index"
}

// Result is the outcome of one adaptive select.
type Result struct {
	RowIDs  []storage.RowID
	Outcome Outcome
	// Wasted is the number of index entries streamed before morphing
	// (zero when the probe finished).
	Wasted  int
	Elapsed time.Duration
}

// Select answers one range predicate adaptively. budget is the maximum
// result cardinality the index path may produce before morphing; pass
// BudgetFromModel to derive it from the machine's break-even point.
func Select(rel *exec.Relation, p scan.Predicate, budget int) (Result, error) {
	if rel.Index == nil {
		return Result{}, errors.New("adaptive: relation has no secondary index")
	}
	if budget < 1 {
		budget = 1
	}
	start := time.Now()
	ids, complete := rel.Index.RangeRowIDsLimit(p.Lo, p.Hi, budget, nil)
	if complete {
		index.SortRowIDs(ids)
		return Result{RowIDs: ids, Outcome: FinishedAsIndex, Elapsed: time.Since(start)}, nil
	}
	// The estimate was wrong: restart as a scan. The partial index result
	// is discarded (the original Smooth Scan morphs in place; a restart
	// keeps the operator simple and its waste is capped by budget).
	wasted := len(ids)
	var out []storage.RowID
	if raw, err := rel.Column.Raw(); err == nil {
		out = scan.Parallel(raw, p, 0)
	} else {
		out = scan.ScanColumn(rel.Column, p, 0, nil)
	}
	return Result{
		RowIDs:  out,
		Outcome: MorphedToScan,
		Wasted:  wasted,
		Elapsed: time.Since(start),
	}, nil
}

// BudgetFromModel derives the morph budget from the cost model: the
// result cardinality at the machine's single-query break-even selectivity
// — beyond that many results, the scan would have been the right call, so
// keeping the probe alive only compounds the mistake.
func BudgetFromModel(n int, tupleSize float64, hw model.Hardware, dg model.Design) int {
	s, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: tupleSize}, hw, dg)
	if !ok {
		if s == 0 {
			return 1 // scan always wins: morph immediately
		}
		return n // index always wins: never morph
	}
	budget := int(s * float64(n))
	if budget < 1 {
		budget = 1
	}
	return budget
}

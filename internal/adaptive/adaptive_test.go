package adaptive

import (
	"math/rand"
	"testing"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

func relation(t *testing.T, n int, domain int32) (*exec.Relation, []storage.Value) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	col := storage.NewColumn("v", data)
	return &exec.Relation{Column: col, Index: index.Build(col, index.DefaultFanout)}, data
}

func refIDs(data []storage.Value, p scan.Predicate) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectFinishesAsIndexWithinBudget(t *testing.T) {
	rel, data := relation(t, 50000, 1<<20)
	p := scan.Predicate{Lo: 100, Hi: 100 + 1<<12} // ~0.4% selectivity
	res, err := Select(rel, p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != FinishedAsIndex || res.Wasted != 0 {
		t.Fatalf("outcome %v wasted %d", res.Outcome, res.Wasted)
	}
	if !equalIDs(res.RowIDs, refIDs(data, p)) {
		t.Fatal("index-path result wrong")
	}
}

func TestSelectMorphsOnBadEstimate(t *testing.T) {
	rel, data := relation(t, 50000, 1<<20)
	p := scan.Predicate{Lo: 0, Hi: 1 << 19} // ~50% selectivity
	budget := 200                           // as if the estimate said ~0.4%
	res, err := Select(rel, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != MorphedToScan {
		t.Fatalf("expected morph, got %v", res.Outcome)
	}
	if res.Wasted == 0 || res.Wasted > budget {
		t.Fatalf("wasted %d, want (0, %d]", res.Wasted, budget)
	}
	if !equalIDs(res.RowIDs, refIDs(data, p)) {
		t.Fatal("morphed result wrong")
	}
}

func TestSelectBudgetBoundary(t *testing.T) {
	// A result exactly at the budget must finish as index (no morph).
	rel, data := relation(t, 5000, 100)
	p := scan.Predicate{Lo: 7, Hi: 7}
	want := refIDs(data, p)
	res, err := Select(rel, p, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != FinishedAsIndex {
		t.Fatalf("exact-budget probe morphed (result %d, budget %d)", len(res.RowIDs), len(want))
	}
	if !equalIDs(res.RowIDs, want) {
		t.Fatal("result wrong")
	}
}

func TestSelectWithoutIndex(t *testing.T) {
	rel := &exec.Relation{Column: storage.NewColumn("v", []storage.Value{1})}
	if _, err := Select(rel, scan.Predicate{Lo: 0, Hi: 5}, 10); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestBudgetFromModel(t *testing.T) {
	n := 1_000_000
	b := BudgetFromModel(n, 4, model.HW1(), model.FittedDesign())
	if b < 100 || b > n/10 {
		t.Fatalf("budget %d implausible for N=%d", b, n)
	}
	// Tiny relation where the scan always wins: morph immediately.
	if b := BudgetFromModel(100, 4, model.HW1(), model.FittedDesign()); b != 1 {
		t.Fatalf("scan-always budget = %d, want 1", b)
	}
}

func TestRangeRowIDsLimit(t *testing.T) {
	rel, data := relation(t, 10000, 1000)
	p := scan.Predicate{Lo: 0, Hi: 499}
	want := refIDs(data, p)
	// Unlimited: complete.
	ids, complete := rel.Index.RangeRowIDsLimit(p.Lo, p.Hi, len(want)+10, nil)
	if !complete || len(ids) != len(want) {
		t.Fatalf("unlimited walk: complete=%v len=%d want %d", complete, len(ids), len(want))
	}
	// Limited: truncated at the budget.
	ids, complete = rel.Index.RangeRowIDsLimit(p.Lo, p.Hi, 50, nil)
	if complete || len(ids) != 50 {
		t.Fatalf("limited walk: complete=%v len=%d", complete, len(ids))
	}
	// Inverted range: trivially complete.
	if _, complete := rel.Index.RangeRowIDsLimit(10, 5, 1, nil); !complete {
		t.Fatal("inverted range should complete")
	}
}

// Package advisor is the offline physical-design use of the APS model
// the paper's Section 6 describes: "similar to how traditional physical
// design tools use optimizers during offline analysis, the APS model we
// present can be used by physical design tools to decide whether to
// create secondary indexes or not." Given an expected workload mix —
// scenarios of (concurrency, per-query selectivity) with relative
// frequencies — it compares the total expected cost of scan-only
// operation against operation with a secondary index (each scenario
// answered by whichever path APS picks) and recommends whether the index
// pays for itself.
package advisor

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"fastcolumns/internal/model"
)

// Scenario is one recurring workload shape.
type Scenario struct {
	// Q is the batch concurrency of this scenario.
	Q int
	// Selectivity is the per-query selectivity.
	Selectivity float64
	// Weight is the scenario's relative frequency (any positive scale).
	Weight float64
}

// Recommendation is the advisor's verdict for one attribute.
type Recommendation struct {
	// BuildIndex is true when the index-equipped configuration beats
	// scan-only by at least the Threshold factor.
	BuildIndex bool
	// ScanOnlyCost and WithIndexCost are the weighted expected costs in
	// model seconds per unit weight.
	ScanOnlyCost  float64
	WithIndexCost float64
	// Speedup is ScanOnlyCost / WithIndexCost.
	Speedup float64
	// IndexShare is the weight fraction of scenarios where APS would
	// actually use the index — an index nothing selects is pure overhead.
	IndexShare float64
}

// Config tunes the advisor.
type Config struct {
	// Threshold is the minimum expected speedup that justifies the
	// index's build and maintenance costs (default 1.1).
	Threshold float64
}

// Advise evaluates the workload mix for one attribute.
func Advise(d model.Dataset, hw model.Hardware, dg model.Design, mix []Scenario, cfg Config) (Recommendation, error) {
	if len(mix) == 0 {
		return Recommendation{}, errors.New("advisor: empty workload mix")
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 1.1
	}
	var rec Recommendation
	var totalWeight float64
	for i, sc := range mix {
		if sc.Q < 1 || sc.Weight <= 0 || sc.Selectivity < 0 || sc.Selectivity > 1 {
			return Recommendation{}, fmt.Errorf("advisor: invalid scenario %d: %+v", i, sc)
		}
		p := model.Params{
			Workload: model.Uniform(sc.Q, sc.Selectivity),
			Dataset:  d,
			Hardware: hw,
			Design:   dg,
		}
		scanCost := model.SharedScan(p)
		bestCost := scanCost
		if idxCost := model.ConcIndex(p); idxCost < bestCost {
			bestCost = idxCost
			rec.IndexShare += sc.Weight
		}
		rec.ScanOnlyCost += sc.Weight * scanCost
		rec.WithIndexCost += sc.Weight * bestCost
		totalWeight += sc.Weight
	}
	rec.ScanOnlyCost /= totalWeight
	rec.WithIndexCost /= totalWeight
	rec.IndexShare /= totalWeight
	if rec.WithIndexCost > 0 {
		rec.Speedup = rec.ScanOnlyCost / rec.WithIndexCost
	} else {
		rec.Speedup = math.Inf(1)
	}
	rec.BuildIndex = rec.Speedup >= threshold
	return rec, nil
}

// ParseMix parses a workload mix of the form
// "q:selectivity:weight[,q:selectivity:weight...]", the CLI syntax of
// cmd/advisor.
func ParseMix(s string) ([]Scenario, error) {
	var mix []Scenario
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("advisor: bad mix element %q (want q:selectivity:weight)", part)
		}
		q, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("advisor: bad q in %q: %w", part, err)
		}
		sel, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("advisor: bad selectivity in %q: %w", part, err)
		}
		weight, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("advisor: bad weight in %q: %w", part, err)
		}
		mix = append(mix, Scenario{Q: q, Selectivity: sel, Weight: weight})
	}
	return mix, nil
}

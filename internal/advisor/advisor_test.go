package advisor

import (
	"testing"

	"fastcolumns/internal/model"
)

func setup() (model.Dataset, model.Hardware, model.Design) {
	return model.Dataset{N: 1e8, TupleSize: 4}, model.HW1(), model.FittedDesign()
}

func TestAdviseSelectiveWorkloadBuildsIndex(t *testing.T) {
	d, hw, dg := setup()
	// Point lookups dominate: the index pays massively.
	mix := []Scenario{
		{Q: 1, Selectivity: 1e-7, Weight: 8},
		{Q: 4, Selectivity: 1e-6, Weight: 2},
	}
	rec, err := Advise(d, hw, dg, mix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.BuildIndex {
		t.Fatalf("lookup-heavy mix should build the index: %+v", rec)
	}
	if rec.Speedup < 5 {
		t.Fatalf("lookup-heavy speedup %v implausibly small", rec.Speedup)
	}
	if rec.IndexShare < 0.99 {
		t.Fatalf("index share %v, want ~1", rec.IndexShare)
	}
}

func TestAdviseAnalyticalWorkloadSkipsIndex(t *testing.T) {
	d, hw, dg := setup()
	// Wide analytical ranges at high concurrency: scans win everywhere.
	mix := []Scenario{
		{Q: 64, Selectivity: 0.1, Weight: 5},
		{Q: 256, Selectivity: 0.05, Weight: 5},
	}
	rec, err := Advise(d, hw, dg, mix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.BuildIndex {
		t.Fatalf("analytical mix should not build the index: %+v", rec)
	}
	if rec.IndexShare != 0 {
		t.Fatalf("index share %v, want 0", rec.IndexShare)
	}
	if rec.Speedup != 1 {
		t.Fatalf("speedup without index use = %v, want 1", rec.Speedup)
	}
}

func TestAdviseMixedWorkloadWeighting(t *testing.T) {
	d, hw, dg := setup()
	lookup := Scenario{Q: 1, Selectivity: 1e-7, Weight: 1}
	analytic := Scenario{Q: 64, Selectivity: 0.1, Weight: 1}
	// Mostly analytic: modest speedup. Mostly lookups: large speedup.
	mostlyAnalytic, err := Advise(d, hw, dg, []Scenario{lookup, {Q: 64, Selectivity: 0.1, Weight: 99}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mostlyLookup, err := Advise(d, hw, dg, []Scenario{{Q: 1, Selectivity: 1e-7, Weight: 99}, analytic}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mostlyLookup.Speedup <= mostlyAnalytic.Speedup {
		t.Fatalf("weighting ignored: lookup-heavy %v <= analytic-heavy %v",
			mostlyLookup.Speedup, mostlyAnalytic.Speedup)
	}
}

func TestAdviseThreshold(t *testing.T) {
	d, hw, dg := setup()
	// A mix with a barely-useful index: a high threshold rejects it.
	mix := []Scenario{
		{Q: 1, Selectivity: 1e-7, Weight: 1},
		{Q: 64, Selectivity: 0.1, Weight: 999},
	}
	lax, err := Advise(d, hw, dg, mix, Config{Threshold: 1.0000001})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Advise(d, hw, dg, mix, Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !lax.BuildIndex {
		t.Fatalf("any improvement should pass the lax threshold: %+v", lax)
	}
	if strict.BuildIndex {
		t.Fatalf("marginal improvement should fail the strict threshold: %+v", strict)
	}
}

func TestAdviseValidation(t *testing.T) {
	d, hw, dg := setup()
	if _, err := Advise(d, hw, dg, nil, Config{}); err == nil {
		t.Fatal("empty mix accepted")
	}
	bad := []Scenario{{Q: 0, Selectivity: 0.1, Weight: 1}}
	if _, err := Advise(d, hw, dg, bad, Config{}); err == nil {
		t.Fatal("q=0 accepted")
	}
	bad = []Scenario{{Q: 1, Selectivity: 2, Weight: 1}}
	if _, err := Advise(d, hw, dg, bad, Config{}); err == nil {
		t.Fatal("selectivity > 1 accepted")
	}
	bad = []Scenario{{Q: 1, Selectivity: 0.5, Weight: 0}}
	if _, err := Advise(d, hw, dg, bad, Config{}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("1:0.0001:50, 64:0.01:30,256:0.1:20")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("parsed %d scenarios", len(mix))
	}
	if mix[0].Q != 1 || mix[0].Selectivity != 0.0001 || mix[0].Weight != 50 {
		t.Fatalf("first scenario %+v", mix[0])
	}
	if mix[2].Q != 256 || mix[2].Selectivity != 0.1 {
		t.Fatalf("third scenario %+v", mix[2])
	}
	for _, bad := range []string{"", "1:2", "x:0.1:1", "1:y:1", "1:0.1:z", "1:0.1:1:9"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

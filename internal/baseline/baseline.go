// Package baseline implements the comparator engines of Figure 19:
//
//   - RowStoreScan: a Postgres-like row store scanning tuple-at-a-time
//     with branching predicates on one thread, dragging whole ~200-byte
//     rows through memory.
//   - RowStoreIndexSelect: the same row store with a disk-era B+-tree
//     (fanout 250); every match triggers a full-row fetch (tuple
//     reconstruction by random access).
//   - ColumnScan: a MonetDB-like engine — tight columnar loops, multiple
//     hardware threads, no scan sharing and no secondary indexes.
//
// These are deliberately simple engines: the point of Figure 19 is shape
// (fast scans changed the picture; FastColumns matches the columnar scan
// and additionally wins at low selectivity via APS), not feature parity.
package baseline

import (
	"fastcolumns/internal/index"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// DiskEraFanout is the branching factor of the row store's index.
const DiskEraFanout = 250

// RowWidth is the attribute count of the simulated row store (TPC-H
// lineitem has 16 attributes; 16 x 4-byte values + padding columns stand
// in for its ~200-byte rows).
const RowWidth = 16

// RowStore is the Postgres-like engine: one table of full rows plus an
// optional secondary index on one attribute.
type RowStore struct {
	group *storage.ColumnGroup
	attr  string
	tree  *index.Tree
}

// NewRowStore builds the row store with the predicated attribute plus
// enough synthetic neighbor attributes to reach RowWidth columns.
func NewRowStore(attr string, values []storage.Value, withIndex bool) (*RowStore, error) {
	names := make([]string, RowWidth)
	cols := make([][]storage.Value, RowWidth)
	names[0] = attr
	cols[0] = values
	for j := 1; j < RowWidth; j++ {
		names[j] = attr + "_pad" + string(rune('a'+j-1))
		pad := make([]storage.Value, len(values))
		for i := range pad {
			pad[i] = storage.Value(i ^ j)
		}
		cols[j] = pad
	}
	g, err := storage.NewColumnGroup(names, cols)
	if err != nil {
		return nil, err
	}
	rs := &RowStore{group: g, attr: attr}
	if withIndex {
		rs.tree = index.Build(g.Column(attr), DiskEraFanout)
	}
	return rs, nil
}

// Scan runs the tuple-at-a-time branching scan over full rows. The sink
// return defeats dead-code elimination: a row store touches the whole row
// to evaluate any attribute.
func (r *RowStore) Scan(p scan.Predicate) (ids []storage.RowID, sink storage.Value) {
	col := r.group.Column(r.attr)
	n := col.Len()
	for i := 0; i < n; i++ {
		// Touch the full row the way a slotted-page iterator materializes
		// the tuple before evaluating the predicate.
		rowSum := storage.Value(0)
		for _, name := range r.group.Names() {
			rowSum += r.group.Column(name).Get(i)
		}
		sink ^= rowSum
		if v := col.Get(i); v >= p.Lo && v <= p.Hi {
			ids = append(ids, storage.RowID(i))
		}
	}
	return ids, sink
}

// IndexSelect probes the secondary index then reconstructs every matching
// row by random access (the classic secondary-index penalty that kept the
// historical threshold so high). Returns nil ids when no index exists.
func (r *RowStore) IndexSelect(p scan.Predicate) (ids []storage.RowID, sink storage.Value) {
	if r.tree == nil {
		return nil, 0
	}
	ids = r.tree.Select(p.Lo, p.Hi, nil)
	for _, id := range ids {
		rowSum := storage.Value(0)
		for _, name := range r.group.Names() {
			rowSum += r.group.Column(name).Get(int(id))
		}
		sink ^= rowSum
	}
	return ids, sink
}

// HasIndex reports whether the row store carries a secondary index.
func (r *RowStore) HasIndex() bool { return r.tree != nil }

// ColumnScan is the MonetDB-like access path: a tight multi-core scan of
// just the predicated column, query-at-a-time (no sharing, no index).
func ColumnScan(values []storage.Value, p scan.Predicate, workers int) []storage.RowID {
	return scan.Parallel(values, p, workers)
}

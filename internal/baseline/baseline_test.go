package baseline

import (
	"math/rand"
	"testing"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

func values(seed int64, n int, domain int32) []storage.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]storage.Value, n)
	for i := range out {
		out[i] = rng.Int31n(domain)
	}
	return out
}

func ref(data []storage.Value, p scan.Predicate) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRowStoreScanCorrect(t *testing.T) {
	data := values(1, 20000, 5000)
	rs, err := NewRowStore("d", data, false)
	if err != nil {
		t.Fatal(err)
	}
	p := scan.Predicate{Lo: 100, Hi: 400}
	ids, _ := rs.Scan(p)
	if !equalIDs(ids, ref(data, p)) {
		t.Fatal("row-store scan disagrees with reference")
	}
	if rs.HasIndex() {
		t.Fatal("index built without being requested")
	}
}

func TestRowStoreIndexSelectCorrect(t *testing.T) {
	data := values(2, 20000, 5000)
	rs, err := NewRowStore("d", data, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HasIndex() {
		t.Fatal("index missing")
	}
	p := scan.Predicate{Lo: 4000, Hi: 4100}
	ids, _ := rs.IndexSelect(p)
	if !equalIDs(ids, ref(data, p)) {
		t.Fatal("row-store index select disagrees with reference")
	}
}

func TestRowStoreWithoutIndexReturnsNil(t *testing.T) {
	data := values(3, 100, 50)
	rs, _ := NewRowStore("d", data, false)
	if ids, _ := rs.IndexSelect(scan.Predicate{Lo: 0, Hi: 50}); ids != nil {
		t.Fatal("IndexSelect without an index should return nil")
	}
}

func TestColumnScanCorrect(t *testing.T) {
	data := values(4, 50000, 10000)
	p := scan.Predicate{Lo: 0, Hi: 500}
	if !equalIDs(ColumnScan(data, p, 4), ref(data, p)) {
		t.Fatal("column scan disagrees with reference")
	}
}

func TestRowStoreIsWide(t *testing.T) {
	// The whole point of the baseline: its rows are RowWidth attributes
	// wide so scans drag ~16x the bytes of a columnar scan.
	data := values(5, 100, 50)
	rs, _ := NewRowStore("d", data, false)
	if got := rs.group.Width(); got != RowWidth {
		t.Fatalf("row width %d, want %d", got, RowWidth)
	}
}

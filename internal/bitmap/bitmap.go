// Package bitmap implements the value-per-bitmap secondary index that
// Appendix E recommends considering for very small value domains (256
// distinct values or less): one N-bit bitmap per distinct value, a range
// select ORs the qualifying bitmaps and emits set positions — which are
// rowIDs already in ascending order, so no sort step is needed at all.
package bitmap

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"fastcolumns/internal/storage"
)

// MaxDomain is the largest distinct-value count worth a bitmap index;
// beyond it the index's storage (values x N bits) and range-OR costs
// beat B+-trees only in corner cases. The paper draws the same line.
const MaxDomain = 256

// Index is a bitmap secondary index over one column.
type Index struct {
	values  []storage.Value // sorted distinct values
	bitmaps [][]uint64      // bitmaps[i] marks rows holding values[i]
	n       int
	words   int
}

// Build scans the column once and materializes one bitmap per distinct
// value. It fails when the domain exceeds MaxDomain.
func Build(c *storage.Column) (*Index, error) {
	n := c.Len()
	distinct := make(map[storage.Value]struct{})
	for i := 0; i < n; i++ {
		distinct[c.Get(i)] = struct{}{}
		if len(distinct) > MaxDomain {
			return nil, fmt.Errorf("bitmap: domain exceeds %d distinct values", MaxDomain)
		}
	}
	values := make([]storage.Value, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	slot := make(map[storage.Value]int, len(values))
	for i, v := range values {
		slot[v] = i
	}
	words := (n + 63) / 64
	idx := &Index{values: values, n: n, words: words}
	idx.bitmaps = make([][]uint64, len(values))
	flat := make([]uint64, len(values)*words)
	for i := range idx.bitmaps {
		idx.bitmaps[i] = flat[i*words : (i+1)*words]
	}
	for i := 0; i < n; i++ {
		s := slot[c.Get(i)]
		idx.bitmaps[s][i/64] |= 1 << (uint(i) % 64)
	}
	return idx, nil
}

// Len returns the number of indexed rows.
func (x *Index) Len() int { return x.n }

// Cardinality returns the number of distinct values (bitmaps).
func (x *Index) Cardinality() int { return len(x.values) }

// SizeBytes returns the memory footprint of the bitmaps.
func (x *Index) SizeBytes() int { return len(x.values) * x.words * 8 }

// valueRange returns the slots of values inside [lo, hi].
func (x *Index) valueRange(lo, hi storage.Value) (int, int) {
	i := sort.Search(len(x.values), func(i int) bool { return x.values[i] >= lo })
	j := sort.Search(len(x.values), func(i int) bool { return x.values[i] > hi })
	return i, j
}

// Select returns the rowIDs with lo <= value <= hi, in ascending rowID
// order, appended to out. The range's bitmaps are ORed word-by-word and
// positions extracted with trailing-zero counts.
func (x *Index) Select(lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	i, j := x.valueRange(lo, hi)
	if i >= j {
		return out
	}
	maps := x.bitmaps[i:j]
	for w := 0; w < x.words; w++ {
		word := uint64(0)
		for _, m := range maps {
			word |= m[w]
		}
		base := uint32(w * 64)
		for word != 0 {
			out = append(out, storage.RowID(base+uint32(bits.TrailingZeros64(word))))
			word &= word - 1
		}
	}
	return out
}

// Count returns the number of qualifying rows without materializing them
// (a popcount over the ORed words).
func (x *Index) Count(lo, hi storage.Value) int {
	i, j := x.valueRange(lo, hi)
	if i >= j {
		return 0
	}
	maps := x.bitmaps[i:j]
	total := 0
	for w := 0; w < x.words; w++ {
		word := uint64(0)
		for _, m := range maps {
			word |= m[w]
		}
		total += bits.OnesCount64(word)
	}
	return total
}

// SharedSelect answers a batch of ranges, one result set per query in
// rowID order. Bitmap word streams are re-read per query; with very
// small domains the bitmaps are cache resident across the batch.
func (x *Index) SharedSelect(ranges [][2]storage.Value) [][]storage.RowID {
	out := make([][]storage.RowID, len(ranges))
	for qi, r := range ranges {
		out[qi] = x.Select(r[0], r[1], nil)
	}
	return out
}

// Insert is unsupported: bitmap indexes in the read store are rebuilt at
// delta-merge time (their whole point is a frozen, dense rowID space).
func (x *Index) Insert(storage.Value, storage.RowID) error {
	return errors.New("bitmap: append requires rebuild at merge time")
}

package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcolumns/internal/storage"
)

func lowCardColumn(seed int64, n int, domain int32) (*storage.Column, []storage.Value) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain) * 3 // gaps in the domain
	}
	return storage.NewColumn("v", data), data
}

func refIDs(data []storage.Value, lo, hi storage.Value) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if v >= lo && v <= hi {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildAndSelect(t *testing.T) {
	col, data := lowCardColumn(1, 20000, 100)
	x, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 20000 {
		t.Fatalf("Len = %d", x.Len())
	}
	if x.Cardinality() > 100 {
		t.Fatalf("Cardinality = %d", x.Cardinality())
	}
	for _, r := range [][2]storage.Value{
		{0, 297}, {30, 60}, {31, 32}, {400, 500}, {-5, -1}, {150, 150},
	} {
		got := x.Select(r[0], r[1], nil)
		want := refIDs(data, r[0], r[1])
		if !equalIDs(got, want) {
			t.Fatalf("Select(%v): %d rows, want %d", r, len(got), len(want))
		}
		if cnt := x.Count(r[0], r[1]); cnt != len(want) {
			t.Fatalf("Count(%v) = %d, want %d", r, cnt, len(want))
		}
	}
}

func TestSelectEmitsSortedRowIDs(t *testing.T) {
	col, _ := lowCardColumn(2, 5000, 50)
	x, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ids := x.Select(0, 150, nil)
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("bitmap result not in ascending rowID order")
		}
	}
}

func TestDomainLimit(t *testing.T) {
	data := make([]storage.Value, MaxDomain+1)
	for i := range data {
		data[i] = storage.Value(i)
	}
	if _, err := Build(storage.NewColumn("v", data)); err == nil {
		t.Fatal("oversized domain accepted")
	}
}

func TestSharedSelect(t *testing.T) {
	col, data := lowCardColumn(3, 8000, 64)
	x, err := Build(col)
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]storage.Value{{0, 30}, {90, 93}, {500, 600}}
	results := x.SharedSelect(ranges)
	for qi, r := range ranges {
		if !equalIDs(results[qi], refIDs(data, r[0], r[1])) {
			t.Fatalf("query %d disagrees", qi)
		}
	}
}

func TestInsertRejected(t *testing.T) {
	col, _ := lowCardColumn(4, 100, 10)
	x, _ := Build(col)
	if err := x.Insert(5, 100); err == nil {
		t.Fatal("bitmap insert should be rejected")
	}
}

func TestSizeBytes(t *testing.T) {
	col, _ := lowCardColumn(5, 6400, 10)
	x, _ := Build(col)
	want := x.Cardinality() * ((6400 + 63) / 64) * 8
	if got := x.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		col, data := lowCardColumn(seed, 700, 40)
		lo, hi := storage.Value(loRaw), storage.Value(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		x, err := Build(col)
		if err != nil {
			return false
		}
		return equalIDs(x.Select(lo, hi, nil), refIDs(data, lo, hi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWordBoundaries(t *testing.T) {
	// Rows at positions 63, 64, 127, 128 exercise the word edges.
	data := make([]storage.Value, 130)
	for _, pos := range []int{0, 63, 64, 127, 128, 129} {
		data[pos] = 7
	}
	x, err := Build(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	got := x.Select(7, 7, nil)
	want := []storage.RowID{0, 63, 64, 127, 128, 129}
	if !equalIDs(got, want) {
		t.Fatalf("boundary rows = %v, want %v", got, want)
	}
}

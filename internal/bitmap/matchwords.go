package bitmap

import (
	"math/bits"

	"fastcolumns/internal/storage"
)

// Match bitmaps: the SWAR scan kernels emit their results as plain
// []uint64 bitmaps (bit i = row base+i qualifies) and materialize rowIDs
// late, so the per-tuple work of the scan is branch-free word arithmetic
// and the per-match work — the only part that scales with selectivity —
// is the position extraction below. The helpers mirror Index.Select's
// trailing-zero walk but operate on caller-owned words, which lets the
// runtime arena pool them as a size class of their own.

// Words returns the word count a match bitmap over n rows needs.
func Words(n int) int { return (n + 63) / 64 }

// AppendWord appends the set positions of one bitmap word, offset by
// base, to out in ascending order.
func AppendWord(word uint64, base int, out []storage.RowID) []storage.RowID {
	for word != 0 {
		out = append(out, storage.RowID(base+bits.TrailingZeros64(word)))
		word &= word - 1
	}
	return out
}

// AppendRows materializes a match bitmap: the positions of the first
// nbits set bits of bm, offset by base, append to out in ascending
// rowID order. Bits at nbits and beyond in the final word are ignored,
// so kernels may leave garbage past the logical end of a pooled buffer.
func AppendRows(bm []uint64, nbits, base int, out []storage.RowID) []storage.RowID {
	full := nbits / 64
	for w := 0; w < full; w++ {
		if word := bm[w]; word != 0 {
			out = AppendWord(word, base+w*64, out)
		}
	}
	if rem := nbits % 64; rem != 0 {
		if word := bm[full] & (1<<uint(rem) - 1); word != 0 {
			out = AppendWord(word, base+full*64, out)
		}
	}
	return out
}

// CountRows returns the number of set bits among the first nbits of bm
// (a popcount, so counting costs no materialization).
func CountRows(bm []uint64, nbits int) int {
	total := 0
	full := nbits / 64
	for w := 0; w < full; w++ {
		total += bits.OnesCount64(bm[w])
	}
	if rem := nbits % 64; rem != 0 {
		total += bits.OnesCount64(bm[full] & (1<<uint(rem) - 1))
	}
	return total
}

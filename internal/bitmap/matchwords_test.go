package bitmap

import (
	"math/rand"
	"testing"

	"fastcolumns/internal/storage"
)

// refRows is the obvious materializer: walk every bit.
func refRows(bm []uint64, nbits, base int) []storage.RowID {
	var out []storage.RowID
	for i := 0; i < nbits; i++ {
		if bm[i/64]&(1<<uint(i%64)) != 0 {
			out = append(out, storage.RowID(base+i))
		}
	}
	return out
}

func TestWordsCount(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Errorf("Words(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestAppendWordMatchesReference: every set bit becomes base+bit, in
// ascending order, including the word extremes.
func TestAppendWordMatchesReference(t *testing.T) {
	words := []uint64{0, 1, 1 << 63, ^uint64(0), 0x8000000000000001, 0xdeadbeefcafebabe}
	for _, w := range words {
		got := AppendWord(w, 100, nil)
		want := refRows([]uint64{w}, 64, 100)
		if len(got) != len(want) {
			t.Fatalf("AppendWord(%#x): %d rows, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendWord(%#x)[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestAppendRowsMasksTail: bits at or past nbits must not materialize,
// whatever garbage the tail word holds past the boundary.
func TestAppendRowsMasksTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, nbits := range []int{0, 1, 5, 63, 64, 65, 100, 127, 128, 300} {
		bm := make([]uint64, Words(nbits))
		for i := range bm {
			bm[i] = rng.Uint64()
		}
		if n := len(bm); n > 0 {
			bm[n-1] |= ^uint64(0) << uint(nbits%64) // poison past-the-end bits
			if nbits%64 == 0 {
				bm[n-1] = rng.Uint64()
			}
		}
		got := AppendRows(bm, nbits, 7, nil)
		want := refRows(bm, nbits, 7)
		if len(got) != len(want) {
			t.Fatalf("nbits=%d: %d rows, want %d", nbits, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("nbits=%d: row[%d] = %d, want %d", nbits, i, got[i], want[i])
			}
		}
		if c := CountRows(bm, nbits); c != len(want) {
			t.Errorf("CountRows(nbits=%d) = %d, want %d", nbits, c, len(want))
		}
	}
}

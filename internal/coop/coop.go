// Package coop implements cooperative shared scans: a pass manager that
// tracks the in-flight shared pass over each column so late-arriving
// queries can attach mid-pass instead of waiting for the next batching
// window ("From Cooperative Scans to Predictive Buffer Management").
//
// One pass is a circular schedule over the column's blocks. Every
// admitted query — pass founders and mid-pass attachers alike — holds a
// remaining-block set, and block dispatch is relevance-driven: blocks
// are claimed from a priority structure keyed by live-query demand, so
// the block wanted by the most queries is served while its audience is
// largest, blocks nobody needs (zonemap-pruned for every query, or
// wanted only by since-cancelled queries) are never scanned, and an
// attacher's missed prefix is served by a wrap-around continuation once
// its demand is all that remains. The invariant the differential and
// fuzz suites pin: each query sees each non-pruned block exactly once —
// entries enter a block's need-set exactly once at admission and the
// whole set is removed exactly once when the block is claimed.
package coop

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/obs"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// FaultSiteAttach fires at the top of every mid-pass attach attempt, so
// chaos suites can fail, panic, or delay the attach path; error and
// panic faults degrade the query to next-window semantics.
const FaultSiteAttach = "coop.attach"

// DefaultMaxAttach bounds mid-pass attachers per pass: each attacher
// extends the pass with its wrap-around prefix, so an uncapped stream
// of attachers under heavy traffic could keep one pass alive (and its
// founders waiting) indefinitely.
const DefaultMaxAttach = 64

// Options configures a Manager.
type Options struct {
	// Arena recycles per-query result buffers; nil falls back to plain
	// allocation.
	Arena *rt.Arena
	// Metrics, when non-nil, receives the coop.* instruments.
	Metrics *obs.Registry
	// Workers is the number of goroutines scanning blocks per pass
	// (clamped to the pass's block count; <= 0 means 1).
	Workers int
	// MaxAttach caps mid-pass attachers per pass (<= 0: DefaultMaxAttach).
	MaxAttach int
	// BlockHook, when non-nil, runs after each block scan, before the
	// block is accounted done — the deterministic test seam for
	// attaching at exact pass offsets.
	BlockHook func(key string, block int)
}

// Manager tracks the in-flight cooperative pass per key (one key per
// table+attribute) and admits mid-pass attachers to it.
type Manager struct {
	arena     *rt.Arena
	workers   int
	maxAttach int
	blockHook func(string, int)

	passes         *obs.Counter
	attaches       *obs.Counter
	attachRejected *obs.Counter
	wrapBlocks     *obs.Counter
	demandSkipped  *obs.Counter
	cancelDropped  *obs.Counter
	attachSavedNs  *obs.Histogram

	mu   sync.Mutex
	live map[string]*pass
}

// NewManager builds a pass manager.
func NewManager(opt Options) *Manager {
	m := &Manager{
		arena:     opt.Arena,
		workers:   opt.Workers,
		maxAttach: opt.MaxAttach,
		blockHook: opt.BlockHook,
		live:      make(map[string]*pass),
	}
	if m.workers < 1 {
		m.workers = 1
	}
	if m.maxAttach <= 0 {
		m.maxAttach = DefaultMaxAttach
	}
	if opt.Metrics != nil {
		m.passes = opt.Metrics.Counter("coop.passes")
		m.attaches = opt.Metrics.Counter("coop.attach")
		m.attachRejected = opt.Metrics.Counter("coop.attach_rejected")
		m.wrapBlocks = opt.Metrics.Counter("coop.wrap_blocks")
		m.demandSkipped = opt.Metrics.Counter("coop.demand_skipped")
		m.cancelDropped = opt.Metrics.Counter("coop.cancel_dropped")
		m.attachSavedNs = opt.Metrics.Histogram("coop.attach_saved_ns")
	}
	return m
}

// Progress is the observable state of an in-flight pass — the inputs
// the attach-vs-wait cost term (model.PassState) needs.
type Progress struct {
	// Rows and Blocks describe the pass's source.
	Rows, Blocks int
	// Claimed counts distinct blocks claimed at least once — the pass
	// cursor, as a count (Claimed/Blocks is the model's FracDone).
	Claimed int
	// Live is the number of unfinished, uncancelled queries on the pass;
	// LiveSel is the sum of their selectivity estimates.
	Live    int
	LiveSel float64
	// Attached counts mid-pass attachers admitted so far.
	Attached int
}

// Progress reports the in-flight pass on key; ok is false when no
// attachable pass exists.
func (m *Manager) Progress(key string) (Progress, bool) {
	m.mu.Lock()
	p := m.live[key]
	m.mu.Unlock()
	if p == nil {
		return Progress{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Progress{}, false
	}
	return Progress{
		Rows:     p.src.Rows(),
		Blocks:   len(p.need),
		Claimed:  p.claimedN,
		Live:     p.live,
		LiveSel:  p.liveSel,
		Attached: p.attached,
	}, true
}

// passQuery is one query riding a pass: a founder (deliver == nil;
// results are assembled by Run) or a mid-pass attacher (deliver is
// called exactly once with its sorted rowIDs or an error).
type passQuery struct {
	pred    scan.Predicate
	ctx     context.Context
	sel     float64
	deliver func([]storage.RowID, error)

	// remaining, finished, dropped are guarded by pass.mu.
	remaining int
	finished  bool
	dropped   bool

	// mu guards the buffer across concurrent block scans (two workers
	// may scan different blocks for the same query) and against eager
	// release on cancellation.
	mu        sync.Mutex
	cancelled bool
	buf       *rt.Buf
}

// takeBuf detaches the query's buffer (marking the query cancelled for
// any in-flight scan that still holds it in a claim snapshot) and
// returns it; nil if already taken.
func (q *passQuery) takeBuf() *rt.Buf {
	q.mu.Lock()
	q.cancelled = true
	b := q.buf
	q.buf = nil
	q.mu.Unlock()
	return b
}

// completeOK sorts the query's accumulated rowIDs (blocks are scanned
// in demand order, so the per-block ascending runs concatenate out of
// order) and delivers them to an attacher; founders' buffers stay put
// for Run to assemble.
func (q *passQuery) completeOK() {
	q.mu.Lock()
	buf := q.buf
	if buf != nil {
		slices.Sort(buf.IDs)
	}
	q.mu.Unlock()
	if q.deliver != nil && buf != nil {
		q.deliver(buf.IDs, nil)
	}
}

// heapEntry is one (block, demand-at-push) candidate in the dispatch
// heap. Entries are never updated in place: every demand change pushes
// a fresh entry, and a popped entry is valid only while its recorded
// demand still matches the block's live demand (lazy invalidation).
type heapEntry struct{ block, demand int }

// heapAbove orders the dispatch heap: higher demand first (serve a
// block while its audience is largest), lower block index on ties (the
// sequential order the prefetcher likes).
func heapAbove(a, b heapEntry) bool {
	if a.demand != b.demand {
		return a.demand > b.demand
	}
	return a.block < b.block
}

// pass is one in-flight cooperative scan over a source.
type pass struct {
	m    *Manager
	key  string
	src  Source
	hook func(string, int)

	mu   sync.Mutex
	cond *sync.Cond
	// need[b] holds the queries still needing block b; demand[b] is
	// len(need[b]) maintained incrementally, and heap holds the lazily
	// invalidated dispatch candidates.
	need   [][]*passQuery
	demand []int
	heap   []heapEntry
	// claimed[b] marks blocks claimed at least once; a re-claim is a
	// wrap-around continuation serving attachers' missed prefixes.
	claimed  []bool
	claimedN int
	pending  int // query-block pairs awaiting claim
	inflight int // blocks being scanned right now
	queries  []*passQuery
	attached int
	live     int
	liveSel  float64
	wraps    int64
	failed   error
	closed   bool
}

func (p *pass) heapPush(e heapEntry) {
	p.heap = append(p.heap, e)
	i := len(p.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapAbove(p.heap[i], p.heap[parent]) {
			break
		}
		p.heap[i], p.heap[parent] = p.heap[parent], p.heap[i]
		i = parent
	}
}

func (p *pass) heapPop() (heapEntry, bool) {
	if len(p.heap) == 0 {
		return heapEntry{}, false
	}
	top := p.heap[0]
	last := len(p.heap) - 1
	p.heap[0] = p.heap[last]
	p.heap = p.heap[:last]
	i := 0
	for {
		l, r, best := 2*i+1, 2*i+2, i
		if l < len(p.heap) && heapAbove(p.heap[l], p.heap[best]) {
			best = l
		}
		if r < len(p.heap) && heapAbove(p.heap[r], p.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		p.heap[i], p.heap[best] = p.heap[best], p.heap[i]
		i = best
	}
	return top, true
}

// admitLocked inserts q's need entries for every block its predicate
// cannot prune and reports whether the query finished on the spot
// (everything pruned — the caller delivers the empty result). Caller
// holds p.mu, or the pass is not yet published.
func (p *pass) admitLocked(q *passQuery) (finished bool) {
	added := 0
	for b := range p.need {
		if p.src.Prune(b, q.pred) {
			continue
		}
		p.need[b] = append(p.need[b], q)
		p.demand[b]++
		p.heapPush(heapEntry{block: b, demand: p.demand[b]})
		added++
	}
	p.queries = append(p.queries, q)
	if added == 0 {
		q.finished = true
		return true
	}
	q.remaining = added
	p.pending += added
	p.live++
	p.liveSel += q.sel
	return false
}

// claimLocked pops the highest-demand block with live entries, takes
// its whole need-set, and marks it in flight. Stale heap entries (the
// block's demand changed since the push) are discarded. Caller holds
// p.mu.
func (p *pass) claimLocked() (int, []*passQuery, bool) {
	if p.failed != nil {
		return 0, nil, false
	}
	for {
		e, ok := p.heapPop()
		if !ok {
			return 0, nil, false
		}
		if e.demand != p.demand[e.block] || len(p.need[e.block]) == 0 {
			continue
		}
		b := e.block
		qs := p.need[b]
		p.need[b] = nil
		p.demand[b] = 0
		p.pending -= len(qs)
		p.inflight++
		if p.claimed[b] {
			p.wraps++
			cadd(p.m.wrapBlocks, 1)
		} else {
			p.claimed[b] = true
			p.claimedN++
		}
		return b, qs, true
	}
}

// reapLocked drops queries whose context died from the live set: their
// remaining need entries are removed (demand decremented, so blocks
// only they wanted will never be scheduled) and they are returned for
// delivery and eager buffer release outside the lock. Runs at every
// morsel boundary. Caller holds p.mu.
func (p *pass) reapLocked() []*passQuery {
	var drops []*passQuery
	for _, q := range p.queries {
		if q.finished || q.dropped || q.ctx == nil || q.ctx.Err() == nil {
			continue
		}
		q.dropped = true
		for b := range p.need {
			for i, nq := range p.need[b] {
				if nq != q {
					continue
				}
				p.need[b] = append(p.need[b][:i], p.need[b][i+1:]...)
				p.demand[b]--
				p.pending--
				if p.demand[b] > 0 {
					p.heapPush(heapEntry{block: b, demand: p.demand[b]})
				}
				break
			}
		}
		p.live--
		p.liveSel -= q.sel
		cadd(p.m.cancelDropped, 1)
		drops = append(drops, q)
	}
	return drops
}

// closeLocked seals the pass: counts the blocks demand-driven dispatch
// never had to scan, fails any query the pass cannot finish (only
// possible after an injected fault), and wakes parked workers so they
// exit. Caller holds p.mu.
func (p *pass) closeLocked() []*passQuery {
	p.closed = true
	skipped := 0
	for b := range p.claimed {
		if !p.claimed[b] {
			skipped++
		}
	}
	if skipped > 0 {
		cadd(p.m.demandSkipped, int64(skipped))
	}
	var fails []*passQuery
	if p.failed == nil && p.pending > 0 {
		p.failed = errors.New("coop: pass closed with unserved queries")
	}
	for _, q := range p.queries {
		if q.finished || q.dropped {
			continue
		}
		q.dropped = true
		p.live--
		p.liveSel -= q.sel
		fails = append(fails, q)
	}
	p.cond.Broadcast()
	return fails
}

// deliverDrops answers reaped queries with their context's error and
// hands their buffers straight back to the arena — a cancelled query
// must stop costing morsel work and memory immediately, not when the
// pass ends.
func (p *pass) deliverDrops(drops []*passQuery) {
	for _, q := range drops {
		err := context.Canceled
		if q.ctx != nil && q.ctx.Err() != nil {
			err = q.ctx.Err()
		}
		if q.deliver != nil {
			q.deliver(nil, err)
		}
		p.m.arena.PutBuf(q.takeBuf())
	}
}

// deliverFailed answers the queries a failed pass strands.
func (p *pass) deliverFailed(fails []*passQuery) {
	if len(fails) == 0 {
		return
	}
	err := p.failed
	if err == nil {
		err = errors.New("coop: pass failed")
	}
	for _, q := range fails {
		if q.deliver != nil {
			q.deliver(nil, err)
		}
		p.m.arena.PutBuf(q.takeBuf())
	}
}

// worker is one pass worker's loop: reap cancelled queries, claim the
// highest-demand block, scan it for every query in its need-set. When
// nothing is claimable it parks until a scan completes or an attacher
// arrives; the worker that finds the pass drained closes it.
func (p *pass) worker() {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		drops := p.reapLocked()
		b, qs, ok := p.claimLocked()
		if !ok {
			if p.inflight == 0 && (p.pending == 0 || p.failed != nil) {
				fails := p.closeLocked()
				p.mu.Unlock()
				p.deliverDrops(drops)
				p.deliverFailed(fails)
				return
			}
			if len(drops) > 0 {
				p.mu.Unlock()
				p.deliverDrops(drops)
				continue
			}
			p.cond.Wait()
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()
		p.deliverDrops(drops)
		p.runBlock(b, qs)
		// Blocks are the pass's preemption quantum: yield between them
		// so submitting goroutines get scheduled mid-pass and can
		// attach at the cursor even when scans saturate every core —
		// without this, a CPU-bound pass on a loaded box starves the
		// very arrivals cooperative scans exist to adopt.
		runtime.Gosched()
	}
}

// runBlock scans one claimed block for its whole need-set. The morsel
// fault site fires first (a fault fails the pass, never half-counts the
// block); queries cancelled after the claim snapshot skip their scan. A
// query's last block completes it: sort and deliver outside the lock.
func (p *pass) runBlock(b int, qs []*passQuery) {
	var injected error
	scanOK := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				injected = fmt.Errorf("coop: panic scanning block %d of %q: %v", b, p.key, r)
			}
		}()
		if err := faultinject.Fire(rt.FaultSiteMorsel); err != nil {
			injected = fmt.Errorf("coop: block %d of %q: %w", b, p.key, err)
			return
		}
		for _, q := range qs {
			q.mu.Lock()
			if !q.cancelled && q.buf != nil {
				q.buf.IDs = p.src.ScanBlock(b, q.pred, q.buf.IDs)
			}
			q.mu.Unlock()
		}
		if p.hook != nil {
			p.hook(p.key, b)
		}
		scanOK = true
	}()
	var done []*passQuery
	p.mu.Lock()
	p.inflight--
	if injected != nil && p.failed == nil {
		p.failed = injected
	}
	if scanOK && p.failed == nil {
		for _, q := range qs {
			q.remaining--
			if q.remaining == 0 && !q.finished && !q.dropped {
				q.finished = true
				p.live--
				p.liveSel -= q.sel
				done = append(done, q)
			}
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, q := range done {
		q.completeOK()
	}
}

// Run executes one cooperative pass for a batch of founder queries and
// blocks until the pass closes — including any wrap-around blocks that
// mid-pass attachers added, which is the founders' (bounded, MaxAttach-
// capped) price for the tail latency attachers save. Results come back
// as an arena result set, one sorted rowID slice per founder; sels and
// hints are optional per-founder selectivity estimates and result
// cardinality hints.
//
//fclint:owns — the caller receives the pooled result set and the Release obligation.
func (m *Manager) Run(ctx context.Context, key string, src Source, preds []scan.Predicate, sels []float64, hints []int) (*rt.Results, error) {
	if len(preds) == 0 {
		return nil, errors.New("coop: empty batch")
	}
	nb := src.Blocks()
	p := &pass{
		m: m, key: key, src: src, hook: m.blockHook,
		need:    make([][]*passQuery, nb),
		demand:  make([]int, nb),
		claimed: make([]bool, nb),
	}
	p.cond = sync.NewCond(&p.mu)
	founders := make([]*passQuery, len(preds))
	for i, pr := range preds {
		q := &passQuery{pred: pr, ctx: ctx}
		if i < len(sels) {
			q.sel = sels[i]
		}
		hint := 0
		if i < len(hints) {
			hint = hints[i]
		}
		q.buf = m.arena.GetBuf(hint)
		founders[i] = q
		p.admitLocked(q) // pass not yet published: no lock needed
	}
	cadd(m.passes, 1)
	// Publish for mid-pass attach. If another pass is already live on
	// this key the new one runs unpublished — correct, just closed to
	// attachers.
	published := false
	m.mu.Lock()
	if _, busy := m.live[key]; !busy {
		m.live[key] = p
		published = true
	}
	m.mu.Unlock()

	workers := min(m.workers, nb)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < workers-1; i++ {
		wg.Add(1)
		rt.Go(func() { defer wg.Done(); p.worker() })
	}
	p.worker()
	wg.Wait()

	if published {
		m.mu.Lock()
		if m.live[key] == p {
			delete(m.live, key)
		}
		m.mu.Unlock()
	}

	// All workers have exited: the pass state is quiescent and
	// happens-before this goroutine via the WaitGroup.
	if p.failed != nil {
		for _, q := range founders {
			m.arena.PutBuf(q.takeBuf())
		}
		return nil, p.failed
	}
	for _, q := range founders {
		if !q.dropped {
			continue
		}
		// The batch context died mid-pass (founders share it); dropped
		// founders' buffers went back at the reap, finished ones here.
		for _, f := range founders {
			m.arena.PutBuf(f.takeBuf())
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	res := m.arena.GetResults(len(founders))
	for i, q := range founders {
		res.Attach(i, q.takeBuf())
	}
	return res, nil
}

// Attach admits one late query to the in-flight pass on key, if there
// is one and pricing already said yes. The query picks up the pass at
// its cursor — its unclaimed blocks carry the founders' demand and are
// served next — and the blocks it missed are re-scheduled at demand 1,
// serving its prefix as a wrap-around continuation. deliver is called
// exactly once (sorted rowIDs, a context error at a reap, or the pass
// failure). savedNs is the model's predicted latency saving, recorded
// for observability. Returns false — next-window semantics — when no
// attachable pass exists, the pass is closing or full, or the attach
// fault site fired.
//
//fclint:owns — delivered rowIDs alias an arena buffer the submitter now owns.
func (m *Manager) Attach(ctx context.Context, key string, pred scan.Predicate, sel float64, hint int, savedNs int64, deliver func([]storage.RowID, error)) bool {
	if deliver == nil {
		return false
	}
	if err := attachFault(); err != nil {
		cadd(m.attachRejected, 1)
		return false
	}
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	m.mu.Lock()
	p := m.live[key]
	m.mu.Unlock()
	if p == nil {
		cadd(m.attachRejected, 1)
		return false
	}
	q := &passQuery{pred: pred, ctx: ctx, sel: sel, deliver: deliver, buf: m.arena.GetBuf(hint)}
	p.mu.Lock()
	if p.closed || p.failed != nil || p.attached >= m.maxAttach {
		p.mu.Unlock()
		m.arena.PutBuf(q.takeBuf())
		cadd(m.attachRejected, 1)
		return false
	}
	p.attached++
	finished := p.admitLocked(q)
	p.cond.Broadcast()
	p.mu.Unlock()
	cadd(m.attaches, 1)
	hrec(m.attachSavedNs, savedNs)
	if finished {
		// Every block pruned for this predicate: deliver the empty
		// result without waking anyone.
		q.completeOK()
	}
	return true
}

// attachFault gives the chaos suite its shot at the attach decision.
// Error and panic faults both degrade the attach to next-window
// semantics; a delay fault holds the attach at the decision point, then
// proceeds.
func attachFault() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("coop: injected attach panic: %v", r)
		}
	}()
	return faultinject.Fire(FaultSiteAttach)
}

// cadd/hrec are nil-tolerant instrument helpers: a manager built
// without a registry records nothing.
func cadd(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

func hrec(h *obs.Histogram, v int64) {
	if h != nil {
		h.Record(v)
	}
}

package coop

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/obs"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// countingSource wraps a Source and counts every (predicate, block) scan
// — the instrument behind the exactly-once assertions.
type countingSource struct {
	Source
	mu    sync.Mutex
	scans map[scan.Predicate]map[int]int
}

func newCountingSource(s Source) *countingSource {
	return &countingSource{Source: s, scans: make(map[scan.Predicate]map[int]int)}
}

func (c *countingSource) ScanBlock(b int, p scan.Predicate, out []storage.RowID) []storage.RowID {
	c.mu.Lock()
	if c.scans[p] == nil {
		c.scans[p] = make(map[int]int)
	}
	c.scans[p][b]++
	c.mu.Unlock()
	return c.Source.ScanBlock(b, p, out)
}

// assertExactlyOnce checks that pred was scanned over exactly the blocks
// in want, each exactly once.
func (c *countingSource) assertExactlyOnce(t *testing.T, pred scan.Predicate, want []int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	got := c.scans[pred]
	if len(got) != len(want) {
		t.Fatalf("pred %v scanned %d distinct blocks, want %d (%v)", pred, len(got), len(want), got)
	}
	for _, b := range want {
		if got[b] != 1 {
			t.Fatalf("pred %v scanned block %d %d times, want exactly once", pred, b, got[b])
		}
	}
}

func seqBlocks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func testData(n int, seed int64) []storage.Value {
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(rng.Intn(1000))
	}
	return data
}

func sameRowIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const tBlock = 64 // tuples per block in these tests

// runWithAttach executes one single-worker pass over data and, via the
// BlockHook, attaches each attacher the first time its trigger block is
// scanned. It returns founder results, attacher replies, and the
// counting source for exactly-once assertions.
type attachSpec struct {
	trigger  int // hook block that fires the attach
	onWrap   bool
	pred     scan.Predicate
	rowIDs   []storage.RowID
	err      error
	attached bool
}

func runWithAttach(t *testing.T, data []storage.Value, founders []scan.Predicate, attachers []*attachSpec) (*rt.Results, *countingSource, *Manager, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	src := newCountingSource(SliceSource{Data: data, BlockTuples: tBlock})
	var m *Manager
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	m = NewManager(Options{
		Metrics: reg,
		Workers: 1,
		BlockHook: func(key string, b int) {
			mu.Lock()
			wrap := seen[b]
			seen[b] = true
			mu.Unlock()
			for _, a := range attachers {
				if a.attached || a.trigger != b || a.onWrap != wrap {
					continue
				}
				a.attached = true
				aa := a
				wg.Add(1)
				ok := m.Attach(context.Background(), key, a.pred, 0.05, 0, 0,
					func(ids []storage.RowID, err error) {
						aa.rowIDs = append([]storage.RowID(nil), ids...)
						aa.err = err
						wg.Done()
					})
				if !ok {
					t.Errorf("attach at block %d (wrap=%v) rejected", b, wrap)
					wg.Done()
				}
			}
		},
	})
	res, err := m.Run(context.Background(), "t\x00a", src, founders, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wg.Wait()
	return res, src, m, reg
}

func TestFoundersMatchSequentialReference(t *testing.T) {
	data := testData(1000, 1)
	preds := []scan.Predicate{{Lo: 0, Hi: 99}, {Lo: 500, Hi: 999}, {Lo: 250, Hi: 260}}
	res, src, _, _ := runWithAttach(t, data, preds, nil)
	defer res.Release()
	want := scan.Shared(data, preds, tBlock)
	for i := range preds {
		if !sameRowIDs(res.RowIDs[i], want[i]) {
			t.Fatalf("founder %d: got %d rows, want %d", i, len(res.RowIDs[i]), len(want[i]))
		}
		src.assertExactlyOnce(t, preds[i], seqBlocks(16))
	}
}

func TestAttachAtFirstMiddleLastBlock(t *testing.T) {
	data := testData(1024, 2) // 16 blocks
	founders := []scan.Predicate{{Lo: 0, Hi: 499}}
	for _, trigger := range []int{0, 8, 15} {
		a := &attachSpec{trigger: trigger, pred: scan.Predicate{Lo: 100, Hi: 700}}
		res, src, _, _ := runWithAttach(t, data, founders, []*attachSpec{a})
		want := scan.Shared(data, []scan.Predicate{founders[0], a.pred}, tBlock)
		if !sameRowIDs(res.RowIDs[0], want[0]) {
			t.Fatalf("trigger %d: founder rows diverged", trigger)
		}
		if a.err != nil {
			t.Fatalf("trigger %d: attacher error %v", trigger, a.err)
		}
		if !sameRowIDs(a.rowIDs, want[1]) {
			t.Fatalf("trigger %d: attacher got %d rows, want %d", trigger, len(a.rowIDs), len(want[1]))
		}
		src.assertExactlyOnce(t, a.pred, seqBlocks(16))
		res.Release()
	}
}

func TestAttachDuringWrap(t *testing.T) {
	// First attacher at block 2 forces a wrap over blocks 0..2; second
	// attacher fires the first time a wrap block is scanned — attaching
	// to a pass already in its wrap-around continuation.
	data := testData(640, 3) // 10 blocks
	founders := []scan.Predicate{{Lo: 0, Hi: 399}}
	a1 := &attachSpec{trigger: 2, pred: scan.Predicate{Lo: 50, Hi: 450}}
	a2 := &attachSpec{trigger: 0, onWrap: true, pred: scan.Predicate{Lo: 200, Hi: 800}}
	res, src, _, reg := runWithAttach(t, data, founders, []*attachSpec{a1, a2})
	defer res.Release()
	want := scan.Shared(data, []scan.Predicate{founders[0], a1.pred, a2.pred}, tBlock)
	if !sameRowIDs(res.RowIDs[0], want[0]) {
		t.Fatal("founder rows diverged")
	}
	for i, a := range []*attachSpec{a1, a2} {
		if !a.attached {
			t.Fatalf("attacher %d never attached", i)
		}
		if a.err != nil || !sameRowIDs(a.rowIDs, want[i+1]) {
			t.Fatalf("attacher %d: err=%v got %d rows want %d", i, a.err, len(a.rowIDs), len(want[i+1]))
		}
		src.assertExactlyOnce(t, a.pred, seqBlocks(10))
	}
	if w := reg.Counter("coop.wrap_blocks").Load(); w == 0 {
		t.Fatal("expected wrap-around block claims to be counted")
	}
}

func TestSimultaneousMultiAttach(t *testing.T) {
	data := testData(1280, 4) // 20 blocks
	founders := []scan.Predicate{{Lo: 0, Hi: 299}, {Lo: 600, Hi: 999}}
	var as []*attachSpec
	for _, p := range []scan.Predicate{{Lo: 10, Hi: 500}, {Lo: 400, Hi: 420}, {Lo: 0, Hi: 999}} {
		as = append(as, &attachSpec{trigger: 7, pred: p})
	}
	res, src, _, reg := runWithAttach(t, data, founders, as)
	defer res.Release()
	all := append(append([]scan.Predicate(nil), founders...), as[0].pred, as[1].pred, as[2].pred)
	want := scan.Shared(data, all, tBlock)
	for i := range founders {
		if !sameRowIDs(res.RowIDs[i], want[i]) {
			t.Fatalf("founder %d diverged", i)
		}
	}
	for i, a := range as {
		if a.err != nil || !sameRowIDs(a.rowIDs, want[len(founders)+i]) {
			t.Fatalf("attacher %d: err=%v rows=%d want=%d", i, a.err, len(a.rowIDs), len(want[len(founders)+i]))
		}
		src.assertExactlyOnce(t, a.pred, seqBlocks(20))
	}
	if got := reg.Counter("coop.attach").Load(); got != 3 {
		t.Fatalf("coop.attach = %d, want 3", got)
	}
}

func TestCancelledAttacherDroppedAndBufferReleasedEagerly(t *testing.T) {
	// The attacher joins at block 1 and its context dies at block 3; the
	// pass must answer it with the context error at the next morsel
	// boundary and hand its pooled buffer back to the arena while the
	// pass is still running — pinned via the runtime.arena.returns
	// counter observed from a later block's hook. (The put-side counter,
	// not a checkout hit: under the race detector sync.Pool sheds puts
	// at random, so a Get-after-Put hit is not a reliable witness.)
	reg := obs.NewRegistry()
	arena := rt.NewArena(0, reg)
	data := testData(1280, 5) // 20 blocks
	src := newCountingSource(SliceSource{Data: data, BlockTuples: tBlock})
	ctx, cancel := context.WithCancel(context.Background())
	var m *Manager
	var (
		mu         sync.Mutex
		attached   bool
		cancelled  bool
		checked    bool
		released   bool
		putsBefore int64
		repErr     error
		delivered  = make(chan struct{})
	)
	m = NewManager(Options{
		Arena:   arena,
		Metrics: reg,
		Workers: 1,
		BlockHook: func(key string, b int) {
			mu.Lock()
			defer mu.Unlock()
			switch {
			case b == 1 && !attached:
				attached = true
				if !m.Attach(ctx, key, scan.Predicate{Lo: 0, Hi: 500}, 0.5, 1024, 0,
					func(_ []storage.RowID, err error) {
						repErr = err
						close(delivered)
					}) {
					t.Error("attach rejected")
				}
			case b == 3 && attached && !cancelled:
				cancelled = true
				putsBefore = reg.Counter("runtime.arena.returns").Load()
				cancel()
			case b >= 5 && cancelled && !checked:
				checked = true
				// The reaped attacher's buffer must already have been
				// handed back: PutBuf ran between the cancel and this
				// block, while the pass is still scanning.
				released = reg.Counter("runtime.arena.returns").Load() > putsBefore
			}
		},
	})
	founders := []scan.Predicate{{Lo: 0, Hi: 999}}
	res, err := m.Run(context.Background(), "t\x00a", src, founders, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer res.Release()
	<-delivered
	if !errors.Is(repErr, context.Canceled) {
		t.Fatalf("attacher reply error = %v, want context.Canceled", repErr)
	}
	if !checked {
		t.Fatal("pass ended before the eager-release check ran")
	}
	if !released {
		t.Fatal("cancelled attacher's buffer was not released back to the arena mid-pass")
	}
	if got := reg.Counter("coop.cancel_dropped").Load(); got != 1 {
		t.Fatalf("coop.cancel_dropped = %d, want 1", got)
	}
	// Founder untouched by the cancellation.
	want := scan.Shared(data, founders, tBlock)
	if !sameRowIDs(res.RowIDs[0], want[0]) {
		t.Fatal("founder rows diverged after mid-pass cancellation")
	}
}

func TestZonemapDemandSkip(t *testing.T) {
	// Sorted data with a zonemap: every founder wants only the low
	// prefix, so trailing blocks carry zero demand and must never be
	// scanned — counted as demand-skipped when the pass closes.
	n := 1280 // 20 blocks
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(i)
	}
	col := mustColumn(t, data)
	zm := storage.BuildZonemap(col, tBlock)
	reg := obs.NewRegistry()
	src := newCountingSource(SliceSource{Data: data, BlockTuples: tBlock, Zonemap: zm})
	m := NewManager(Options{Metrics: reg, Workers: 1})
	preds := []scan.Predicate{{Lo: 0, Hi: 100}, {Lo: 50, Hi: 200}}
	res, err := m.Run(context.Background(), "t\x00a", src, preds, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer res.Release()
	want := scan.Shared(data, preds, tBlock)
	for i := range preds {
		if !sameRowIDs(res.RowIDs[i], want[i]) {
			t.Fatalf("founder %d diverged", i)
		}
	}
	src.mu.Lock()
	for p, blocks := range src.scans {
		for b := range blocks {
			if lo := b * tBlock; storage.Value(lo) > p.Hi {
				t.Fatalf("pred %v scanned prunable block %d", p, b)
			}
		}
	}
	src.mu.Unlock()
	if got := reg.Counter("coop.demand_skipped").Load(); got == 0 {
		t.Fatal("expected demand-skipped blocks to be counted")
	}
}

func mustColumn(t *testing.T, data []storage.Value) *storage.Column {
	t.Helper()
	st := storage.NewTable("t")
	if err := st.AddColumn("a", data); err != nil {
		t.Fatal(err)
	}
	col, err := st.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestAttachFaultDegradesToNextWindow(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
		reg := obs.NewRegistry()
		m := NewManager(Options{Metrics: reg, Workers: 1})
		data := testData(640, 6)
		src := SliceSource{Data: data, BlockTuples: tBlock}
		deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{Site: FaultSiteAttach, Kind: kind, Every: 1}))
		var rejected bool
		hook := func(key string, b int) {
			if b != 1 || rejected {
				return
			}
			rejected = true
			if m.Attach(context.Background(), key, scan.Predicate{Lo: 0, Hi: 10}, 0.01, 0, 0,
				func([]storage.RowID, error) {}) {
				t.Errorf("kind %v: attach succeeded under fault", kind)
			}
		}
		m.blockHook = hook
		res, err := m.Run(context.Background(), "t\x00a", src, []scan.Predicate{{Lo: 0, Hi: 999}}, nil, nil)
		deactivate()
		if err != nil {
			t.Fatalf("kind %v: founder pass failed: %v", kind, err)
		}
		res.Release()
		if !rejected {
			t.Fatalf("kind %v: hook never fired", kind)
		}
		if got := reg.Counter("coop.attach_rejected").Load(); got != 1 {
			t.Fatalf("kind %v: coop.attach_rejected = %d, want 1", kind, got)
		}
		if got := reg.Counter("coop.attach").Load(); got != 0 {
			t.Fatalf("kind %v: coop.attach = %d, want 0", kind, got)
		}
	}
}

func TestAttachDelayFaultProceeds(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	data := testData(640, 7)
	src := SliceSource{Data: data, BlockTuples: tBlock}
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: FaultSiteAttach, Kind: faultinject.Delay, Every: 1, Delay: time.Millisecond,
	}))
	defer deactivate()
	done := make(chan error, 1)
	var once sync.Once
	m.blockHook = func(key string, b int) {
		once.Do(func() {
			if !m.Attach(context.Background(), key, scan.Predicate{Lo: 0, Hi: 500}, 0.5, 0, 0,
				func(_ []storage.RowID, err error) { done <- err }) {
				t.Error("delayed attach rejected")
				done <- nil
			}
		})
	}
	res, err := m.Run(context.Background(), "t\x00a", src, []scan.Predicate{{Lo: 0, Hi: 999}}, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer res.Release()
	if err := <-done; err != nil {
		t.Fatalf("delayed attacher reply error: %v", err)
	}
}

func TestMorselFaultFailsPassAndAnswersAttachers(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(Options{Metrics: reg, Workers: 1})
	data := testData(640, 8)
	src := SliceSource{Data: data, BlockTuples: tBlock}
	// Fire once, on the 5th block claim — after the hook has attached.
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: rt.FaultSiteMorsel, Kind: faultinject.Error, Every: 5, Count: 1,
	}))
	defer deactivate()
	attacherErr := make(chan error, 1)
	var once sync.Once
	m.blockHook = func(key string, b int) {
		once.Do(func() {
			if !m.Attach(context.Background(), key, scan.Predicate{Lo: 0, Hi: 500}, 0.5, 0, 0,
				func(_ []storage.RowID, err error) { attacherErr <- err }) {
				t.Error("attach rejected before fault")
				attacherErr <- nil
			}
		})
	}
	_, err := m.Run(context.Background(), "t\x00a", src, []scan.Predicate{{Lo: 0, Hi: 999}}, nil, nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Run error = %v, want injected fault", err)
	}
	if aerr := <-attacherErr; !errors.Is(aerr, faultinject.ErrInjected) {
		t.Fatalf("attacher error = %v, want injected fault", aerr)
	}
}

func TestConcurrentAttachersUnderParallelWorkers(t *testing.T) {
	// Multi-worker pass with attachers firing from separate goroutines —
	// the race-detector workout for the pass locking.
	reg := obs.NewRegistry()
	arena := rt.NewArena(0, reg)
	data := testData(1<<15, 9) // 512 blocks
	src := newCountingSource(SliceSource{Data: data, BlockTuples: tBlock})
	started := make(chan string, 1)
	var once sync.Once
	m := NewManager(Options{
		Arena:   arena,
		Metrics: reg,
		Workers: 4,
		BlockHook: func(key string, b int) {
			once.Do(func() { started <- key })
		},
	})
	founders := []scan.Predicate{{Lo: 0, Hi: 399}, {Lo: 600, Hi: 999}}
	attachPreds := []scan.Predicate{{Lo: 0, Hi: 999}, {Lo: 100, Hi: 101}, {Lo: 300, Hi: 700}, {Lo: 0, Hi: 0}}
	type reply struct {
		i   int
		ids []storage.RowID
		err error
	}
	replies := make(chan reply, len(attachPreds))
	var attachOK [4]bool
	var wg sync.WaitGroup
	wg.Add(1)
	rt.Go(func() {
		defer wg.Done()
		key := <-started
		for i, p := range attachPreds {
			i, p := i, p
			attachOK[i] = m.Attach(context.Background(), key, p, 0.1, 0, 0,
				func(ids []storage.RowID, err error) {
					replies <- reply{i: i, ids: append([]storage.RowID(nil), ids...), err: err}
				})
		}
	})
	res, err := m.Run(context.Background(), "t\x00a", src, founders, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer res.Release()
	wg.Wait()
	close(replies)
	want := scan.Shared(data, append(append([]scan.Predicate(nil), founders...), attachPreds...), tBlock)
	for i := range founders {
		if !sameRowIDs(res.RowIDs[i], want[i]) {
			t.Fatalf("founder %d diverged", i)
		}
	}
	got := make(map[int]reply)
	for r := range replies {
		got[r.i] = r
	}
	for i := range attachPreds {
		if !attachOK[i] {
			continue // pass may have closed before this attach: next-window semantics
		}
		r, ok := got[i]
		if !ok {
			t.Fatalf("attacher %d admitted but never answered", i)
		}
		if r.err != nil || !sameRowIDs(r.ids, want[len(founders)+i]) {
			t.Fatalf("attacher %d: err=%v rows=%d want=%d", i, r.err, len(r.ids), len(want[len(founders)+i]))
		}
		src.assertExactlyOnce(t, attachPreds[i], seqBlocks(512))
	}
}

func FuzzAttachOffsets(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0), uint16(999), uint16(100), uint16(800))
	f.Add(int64(2), uint8(7), uint16(50), uint16(51), uint16(0), uint16(999))
	f.Add(int64(3), uint8(15), uint16(900), uint16(999), uint16(400), uint16(500))
	f.Fuzz(func(t *testing.T, seed int64, trigger uint8, flo, fhi, alo, ahi uint16) {
		data := testData(1024, seed) // 16 blocks
		if fhi < flo {
			flo, fhi = fhi, flo
		}
		if ahi < alo {
			alo, ahi = ahi, alo
		}
		founder := scan.Predicate{Lo: storage.Value(flo % 1000), Hi: storage.Value(fhi % 1000)}
		apred := scan.Predicate{Lo: storage.Value(alo % 1000), Hi: storage.Value(ahi % 1000)}
		if founder.Hi < founder.Lo || apred.Hi < apred.Lo || founder == apred {
			t.Skip() // identical predicates would fold in the counting map
		}
		a := &attachSpec{trigger: int(trigger) % 16, pred: apred}
		res, src, _, _ := runWithAttach(t, data, []scan.Predicate{founder}, []*attachSpec{a})
		defer res.Release()
		want := scan.Shared(data, []scan.Predicate{founder, apred}, tBlock)
		if !sameRowIDs(res.RowIDs[0], want[0]) {
			t.Fatal("founder rows diverged")
		}
		if !a.attached {
			t.Fatalf("attacher never attached (trigger %d)", int(trigger)%16)
		}
		if a.err != nil || !sameRowIDs(a.rowIDs, want[1]) {
			t.Fatalf("attacher: err=%v rows=%d want=%d", a.err, len(a.rowIDs), len(want[1]))
		}
		src.assertExactlyOnce(t, apred, seqBlocks(16))
	})
}

package coop

import (
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// Source is one column's block-addressable view for a cooperative pass:
// a fixed block grid over the relation, a scan kernel per block, and an
// optional per-query prune check that lets the pass decrement a block's
// demand before it is ever scheduled.
type Source interface {
	// Rows returns the relation's tuple count.
	Rows() int
	// Blocks returns the number of blocks in the pass's circular schedule.
	Blocks() int
	// ScanBlock appends the rowIDs of block b's tuples matching p to out
	// and returns the extended slice. RowIDs are relation-absolute.
	ScanBlock(b int, p scan.Predicate, out []storage.RowID) []storage.RowID
	// Prune reports whether block b provably holds no match for p, so
	// the pass can skip scheduling it for that query entirely.
	Prune(b int, p scan.Predicate) bool
}

// SliceSource is the standard Source over a contiguous uncompressed
// column: fixed-size tuple blocks over a raw value slice, with zonemap
// bounds (when present) powering Prune. Zone and block boundaries need
// not align; a block prunes only when every overlapping zone does.
type SliceSource struct {
	Data        []storage.Value
	BlockTuples int
	Zonemap     *storage.Zonemap
}

func (s SliceSource) blockTuples() int {
	if s.BlockTuples > 0 {
		return s.BlockTuples
	}
	return scan.DefaultBlockTuples
}

// Rows returns the column's tuple count.
func (s SliceSource) Rows() int { return len(s.Data) }

// Blocks returns the number of BlockTuples-sized blocks covering Data.
func (s SliceSource) Blocks() int {
	bt := s.blockTuples()
	return (len(s.Data) + bt - 1) / bt
}

// bounds returns block b's tuple range [lo, hi).
func (s SliceSource) bounds(b int) (lo, hi int) {
	bt := s.blockTuples()
	lo = b * bt
	hi = min(lo+bt, len(s.Data))
	return lo, hi
}

// ScanBlock runs the unrolled predicated kernel over block b.
func (s SliceSource) ScanBlock(b int, p scan.Predicate, out []storage.RowID) []storage.RowID {
	lo, hi := s.bounds(b)
	return scan.BlockScan(s.Data[lo:hi], p, lo, out)
}

// Prune reports whether the zonemap proves block b empty for p.
func (s SliceSource) Prune(b int, p scan.Predicate) bool {
	if s.Zonemap == nil {
		return false
	}
	lo, hi := s.bounds(b)
	zs := s.Zonemap.ZoneSize()
	for zi := lo / zs; zi < s.Zonemap.Zones(); zi++ {
		zlo := zi * zs
		if zlo >= hi {
			break
		}
		if !s.Zonemap.Skippable(zi, p.Lo, p.Hi) {
			return false
		}
	}
	return true
}

package dsl

import "testing"

// FuzzParse checks the parser never panics and that accepted queries are
// structurally sane. The seed corpus runs on every `go test`; `go test
// -fuzz=FuzzParse ./internal/dsl` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT v FROM t WHERE v BETWEEN 10 AND 99",
		"SELECT COUNT(*) FROM t WHERE v = 42",
		"SELECT SUM(price) FROM sales WHERE day >= 700",
		"EXPLAIN SELECT v FROM t WHERE v < 100",
		"select avg(x) from t where x <= -5",
		"SELECT MIN(x) FROM t",
		"",
		"SELECT",
		"SELECT ((((",
		"SELECT v FROM t WHERE v BETWEEN 99 AND 1",
		"SELECT v FROM t WHERE v = 99999999999999999",
		"\x00\x01\x02",
		"SELECT v FROM t WHERE v = 1 ; DROP TABLE t",
		"SELECT v FROM t WHERE a BETWEEN 1 AND 2 AND b = 3",
		"SELECT v FROM t WHERE a = 1 AND",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if q.Table == "" {
			t.Fatalf("accepted query without table: %q -> %+v", input, q)
		}
		if len(q.Filters) == 0 {
			t.Fatalf("accepted query without filters: %q -> %+v", input, q)
		}
		for _, f := range q.Filters {
			if f.Attr == "" {
				t.Fatalf("accepted filter without attribute: %q -> %+v", input, q)
			}
			if f.Pred.Lo > f.Pred.Hi {
				t.Fatalf("accepted empty predicate: %q -> %+v", input, f.Pred)
			}
		}
	})
}

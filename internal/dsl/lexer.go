// Package dsl implements the small query language FastColumns exposes in
// place of a SQL front end (the paper: "all queries are described in a
// domain specific language which maps to the logical plan of the query").
// The language covers exactly the shapes the paper evaluates — selects
// and simple aggregates over one table with one range predicate:
//
//	SELECT v FROM t WHERE v BETWEEN 10 AND 99
//	SELECT COUNT(*) FROM t WHERE v = 42
//	SELECT SUM(price) FROM sales WHERE day >= 700
//	EXPLAIN SELECT v FROM t WHERE v < 100
package dsl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokStar
	tokLParen
	tokRParen
	tokComma
	tokOp // = < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Keywords are returned as tokIdent;
// the parser matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=' || c == '<' || c == '>':
			op := string(c)
			if (c == '<' || c == '>') && i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '-' || unicode.IsDigit(c):
			start := i
			i++
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			if input[start:i] == "-" {
				return nil, fmt.Errorf("dsl: bare '-' at position %d", start)
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) ||
				unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("dsl: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// isKeyword matches an identifier token against a keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

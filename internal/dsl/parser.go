package dsl

import (
	"fmt"
	"math"
	"strconv"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// AggKind identifies the optional aggregate of a query.
type AggKind int

const (
	// AggNone projects rowIDs (a plain select).
	AggNone AggKind = iota
	// AggCount is COUNT(*) or COUNT(attr).
	AggCount
	// AggSum, AggMin, AggMax, AggAvg aggregate one attribute.
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "select"
	}
}

// Filter is one WHERE conjunct.
type Filter struct {
	Attr string
	Pred scan.Predicate
}

// Query is the parsed logical plan: one table, an optional aggregate over
// one attribute, and a conjunction of range predicates.
type Query struct {
	// Explain requests the access-path decision without execution.
	Explain bool
	// Agg and AggAttr describe the projection: AggNone projects the
	// qualifying rowIDs; aggregates fold AggAttr's values.
	Agg     AggKind
	AggAttr string
	// Table is the FROM relation.
	Table string
	// Filters holds the WHERE conjuncts in source order. An absent WHERE
	// yields one full-range filter on the projected attribute.
	Filters []Filter
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return fmt.Errorf("dsl: expected %s at position %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	p.i++
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("dsl: expected identifier at position %d, got %q", t.pos, t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) expectNumber() (storage.Value, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("dsl: expected number at position %d, got %q", t.pos, t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("dsl: value %q out of 32-bit range", t.text)
	}
	p.i++
	return storage.Value(v), nil
}

// Parse turns one statement into a Query.
func Parse(input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	var q Query

	if p.cur().isKeyword("EXPLAIN") {
		q.Explain = true
		p.i++
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return Query{}, err
	}

	// Projection: attr | COUNT(*) | COUNT(attr) | SUM(attr) | ...
	aggs := map[string]AggKind{
		"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
	}
	matched := false
	for kw, kind := range aggs {
		if p.cur().isKeyword(kw) && p.toks[p.i+1].kind == tokLParen {
			p.i += 2
			switch {
			case p.cur().kind == tokStar && kind == AggCount:
				p.i++
			default:
				attr, err := p.expectIdent()
				if err != nil {
					return Query{}, err
				}
				q.AggAttr = attr
			}
			if p.cur().kind != tokRParen {
				return Query{}, fmt.Errorf("dsl: expected ')' at position %d", p.cur().pos)
			}
			p.i++
			q.Agg = kind
			matched = true
			break
		}
	}
	if !matched {
		attr, err := p.expectIdent()
		if err != nil {
			return Query{}, err
		}
		q.AggAttr = attr
	}
	if q.Agg != AggNone && q.Agg != AggCount && q.AggAttr == "" {
		return Query{}, fmt.Errorf("dsl: %s requires an attribute", q.Agg)
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return Query{}, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return Query{}, err
	}
	q.Table = table

	// Optional WHERE clause: a conjunction of predicates.
	if p.cur().isKeyword("WHERE") {
		p.i++
		for {
			attr, err := p.expectIdent()
			if err != nil {
				return Query{}, err
			}
			pred, err := p.parsePredicate()
			if err != nil {
				return Query{}, err
			}
			q.Filters = append(q.Filters, Filter{Attr: attr, Pred: pred})
			if !p.cur().isKeyword("AND") {
				break
			}
			p.i++
		}
	} else {
		// No filter: full-range predicate on the projected attribute.
		if q.AggAttr == "" {
			return Query{}, fmt.Errorf("dsl: COUNT(*) without WHERE needs no access path; add a predicate")
		}
		q.Filters = []Filter{{Attr: q.AggAttr,
			Pred: scan.Predicate{Lo: math.MinInt32, Hi: math.MaxInt32}}}
	}

	if p.cur().kind != tokEOF {
		return Query{}, fmt.Errorf("dsl: trailing input at position %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

// parsePredicate parses BETWEEN lo AND hi | = v | < v | <= v | > v | >= v.
func (p *parser) parsePredicate() (scan.Predicate, error) {
	t := p.cur()
	switch {
	case t.isKeyword("BETWEEN"):
		p.i++
		lo, err := p.expectNumber()
		if err != nil {
			return scan.Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return scan.Predicate{}, err
		}
		hi, err := p.expectNumber()
		if err != nil {
			return scan.Predicate{}, err
		}
		if lo > hi {
			return scan.Predicate{}, fmt.Errorf("dsl: BETWEEN %d AND %d is empty", lo, hi)
		}
		return scan.Predicate{Lo: lo, Hi: hi}, nil
	case t.kind == tokOp:
		op := p.next().text
		v, err := p.expectNumber()
		if err != nil {
			return scan.Predicate{}, err
		}
		switch op {
		case "=":
			return scan.Predicate{Lo: v, Hi: v}, nil
		case "<":
			if v == math.MinInt32 {
				return scan.Predicate{}, fmt.Errorf("dsl: < %d matches nothing", v)
			}
			return scan.Predicate{Lo: math.MinInt32, Hi: v - 1}, nil
		case "<=":
			return scan.Predicate{Lo: math.MinInt32, Hi: v}, nil
		case ">":
			if v == math.MaxInt32 {
				return scan.Predicate{}, fmt.Errorf("dsl: > %d matches nothing", v)
			}
			return scan.Predicate{Lo: v + 1, Hi: math.MaxInt32}, nil
		case ">=":
			return scan.Predicate{Lo: v, Hi: math.MaxInt32}, nil
		}
		return scan.Predicate{}, fmt.Errorf("dsl: unknown operator %q", op)
	}
	return scan.Predicate{}, fmt.Errorf("dsl: expected predicate at position %d, got %q", t.pos, t.text)
}

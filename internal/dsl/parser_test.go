package dsl

import (
	"math"
	"strings"
	"testing"
)

func TestParseBetween(t *testing.T) {
	q, err := Parse("SELECT v FROM t WHERE v BETWEEN 10 AND 99")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "t" || q.AggAttr != "v" || q.Agg != AggNone {
		t.Fatalf("parsed %+v", q)
	}
	if len(q.Filters) != 1 || q.Filters[0].Attr != "v" {
		t.Fatalf("filters %+v", q.Filters)
	}
	if q.Filters[0].Pred.Lo != 10 || q.Filters[0].Pred.Hi != 99 {
		t.Fatalf("pred %+v", q.Filters[0].Pred)
	}
	if q.Explain {
		t.Fatal("unexpected explain")
	}
}

func TestParseOperators(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int64
	}{
		{"SELECT v FROM t WHERE v = 5", 5, 5},
		{"SELECT v FROM t WHERE v < 100", math.MinInt32, 99},
		{"SELECT v FROM t WHERE v <= 100", math.MinInt32, 100},
		{"SELECT v FROM t WHERE v > 7", 8, math.MaxInt32},
		{"SELECT v FROM t WHERE v >= 7", 7, math.MaxInt32},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		pred := q.Filters[0].Pred
		if int64(pred.Lo) != c.lo || int64(pred.Hi) != c.hi {
			t.Fatalf("%s: pred [%d,%d], want [%d,%d]", c.in, pred.Lo, pred.Hi, c.lo, c.hi)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	cases := []struct {
		in   string
		agg  AggKind
		attr string
	}{
		{"SELECT COUNT(*) FROM t WHERE v = 1", AggCount, ""},
		{"SELECT count(v) FROM t WHERE v = 1", AggCount, "v"},
		{"SELECT SUM(price) FROM sales WHERE day >= 10", AggSum, "price"},
		{"SELECT MIN(x) FROM t WHERE x < 5", AggMin, "x"},
		{"SELECT MAX(x) FROM t WHERE x < 5", AggMax, "x"},
		{"SELECT AVG(x) FROM t WHERE x < 5", AggAvg, "x"},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if q.Agg != c.agg || q.AggAttr != c.attr {
			t.Fatalf("%s: agg=%v attr=%q", c.in, q.Agg, q.AggAttr)
		}
	}
}

func TestParseProjectionDiffersFromFilter(t *testing.T) {
	// SUM over one attribute filtered on another: tuple reconstruction.
	q, err := Parse("SELECT SUM(price) FROM sales WHERE day BETWEEN 1 AND 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Attr != "day" || q.AggAttr != "price" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse("EXPLAIN SELECT v FROM t WHERE v = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Fatal("explain not detected")
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("SELECT SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters %+v", q.Filters)
	}
	if q.Filters[0].Pred.Lo != math.MinInt32 || q.Filters[0].Pred.Hi != math.MaxInt32 {
		t.Fatalf("full-range pred expected, got %+v", q.Filters[0].Pred)
	}
	if q.Filters[0].Attr != "v" {
		t.Fatalf("filter attr %q", q.Filters[0].Attr)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select v from t where v between 1 and 2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q, err := Parse("SELECT v FROM t WHERE v BETWEEN -100 AND -10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Pred.Lo != -100 || q.Filters[0].Pred.Hi != -10 {
		t.Fatalf("pred %+v", q.Filters[0].Pred)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "expected SELECT"},
		{"SELECT", "expected identifier"},
		{"SELECT v FROM", "expected identifier"},
		{"SELECT v WHERE v = 1", "expected FROM"},
		{"SELECT v FROM t WHERE", "expected identifier"},
		{"SELECT v FROM t WHERE v", "expected predicate"},
		{"SELECT v FROM t WHERE v BETWEEN 9 AND 1", "empty"},
		{"SELECT v FROM t WHERE v = 99999999999", "out of 32-bit range"},
		{"SELECT v FROM t WHERE v = 1 garbage", "trailing input"},
		{"SELECT v FROM t WHERE v = 1; DROP", "unexpected character"},
		{"SELECT COUNT(*) FROM t", "needs no access path"},
		{"SELECT SUM() FROM t WHERE v = 1", "expected identifier"},
		{"SELECT v FROM t WHERE v BETWEEN 1 OR 2", "expected AND"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Fatalf("%q: expected error", c.in)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%q: error %q does not mention %q", c.in, err, c.wantSub)
		}
	}
}

func TestParseConjunction(t *testing.T) {
	q, err := Parse("SELECT SUM(price) FROM sales WHERE day BETWEEN 1 AND 30 AND discount = 5 AND quantity < 24")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 3 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if q.Filters[0].Attr != "day" || q.Filters[0].Pred.Lo != 1 || q.Filters[0].Pred.Hi != 30 {
		t.Fatalf("first filter %+v", q.Filters[0])
	}
	if q.Filters[1].Attr != "discount" || q.Filters[1].Pred.Lo != 5 || q.Filters[1].Pred.Hi != 5 {
		t.Fatalf("second filter %+v", q.Filters[1])
	}
	if q.Filters[2].Attr != "quantity" || q.Filters[2].Pred.Hi != 23 {
		t.Fatalf("third filter %+v", q.Filters[2])
	}
}

func TestParseConjunctionWithBetweenAmbiguity(t *testing.T) {
	// The AND inside BETWEEN must not terminate the conjunct.
	q, err := Parse("SELECT v FROM t WHERE a BETWEEN 1 AND 2 AND b BETWEEN 3 AND 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 || q.Filters[1].Attr != "b" || q.Filters[1].Pred.Lo != 3 {
		t.Fatalf("filters %+v", q.Filters)
	}
}

func TestParseConjunctionErrors(t *testing.T) {
	if _, err := Parse("SELECT v FROM t WHERE a = 1 AND"); err == nil {
		t.Fatal("dangling AND accepted")
	}
	if _, err := Parse("SELECT v FROM t WHERE a = 1 AND = 2"); err == nil {
		t.Fatal("missing attribute after AND accepted")
	}
}

func TestAggKindString(t *testing.T) {
	for kind, want := range map[AggKind]string{
		AggNone: "select", AggCount: "count", AggSum: "sum",
		AggMin: "min", AggMax: "max", AggAvg: "avg",
	} {
		if kind.String() != want {
			t.Fatalf("%d.String() = %q", kind, kind.String())
		}
	}
}

package exec

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/imprints"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

func lowCardRelation(t *testing.T, n int, domain int32, sorted bool) (*Relation, []storage.Value) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	if sorted {
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
	}
	col := storage.NewColumn("v", data)
	bm, err := bitmap.Build(col)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := imprints.Build(col)
	if err != nil {
		t.Fatal(err)
	}
	return &Relation{
		Column:   col,
		Index:    index.Build(col, index.DefaultFanout),
		Bitmap:   bm,
		Imprints: imp,
	}, data
}

func TestAllThreePathsAgree(t *testing.T) {
	rel, data := lowCardRelation(t, 30000, 200, false)
	preds := []scan.Predicate{
		{Lo: 10, Hi: 20},
		{Lo: 0, Hi: 199},
		{Lo: 150, Hi: 150},
		{Lo: 500, Hi: 600}, // empty
	}
	want := make([][]storage.RowID, len(preds))
	for i, p := range preds {
		want[i] = refSelect(data, p)
	}
	for _, path := range []model.Path{model.PathScan, model.PathIndex, model.PathBitmap} {
		res, err := Run(context.Background(), rel, path, preds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != path {
			t.Fatalf("Run(%v) labeled %v", path, res.Path)
		}
		for qi := range preds {
			if !equalIDs(res.RowIDs[qi], want[qi]) {
				t.Fatalf("%v query %d disagrees (%d vs %d rows)",
					path, qi, len(res.RowIDs[qi]), len(want[qi]))
			}
		}
	}
}

func TestImprintsScanPathAgrees(t *testing.T) {
	rel, data := lowCardRelation(t, 40000, 250, true)
	preds := []scan.Predicate{{Lo: 50, Hi: 60}, {Lo: 0, Hi: 249}}
	res, err := RunScan(context.Background(), rel, preds, Options{UseImprints: true})
	if err != nil {
		t.Fatal(err)
	}
	for qi, p := range preds {
		if !equalIDs(res.RowIDs[qi], refSelect(data, p)) {
			t.Fatalf("imprints scan query %d disagrees", qi)
		}
	}
}

func TestRunBitmapMissing(t *testing.T) {
	rel := &Relation{Column: storage.NewColumn("v", []storage.Value{1, 2})}
	if _, err := RunBitmap(context.Background(), rel, []scan.Predicate{{Lo: 0, Hi: 5}}, Options{}); err == nil {
		t.Fatal("RunBitmap without a bitmap should fail")
	}
}

func TestValidateCatchesBitmapMismatch(t *testing.T) {
	col := storage.NewColumn("v", []storage.Value{1, 2, 3})
	short, err := bitmap.Build(storage.NewColumn("v", []storage.Value{1}))
	if err != nil {
		t.Fatal(err)
	}
	rel := &Relation{Column: col, Bitmap: short}
	if rel.Validate() == nil {
		t.Fatal("bitmap size mismatch accepted")
	}
}

// Package exec implements the select operator of Section 2.1: given a
// column (or column-group member) and a batch of range predicates, it
// produces one rowID result set per query, in rowID order, through either
// access path — a shared sequential scan or a concurrent secondary-index
// scan — so the two are directly interchangeable for the next operator.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/imprints"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// ctxErr tolerates nil contexts so direct callers (benchmarks, tools) can
// pass context.Background() or nil interchangeably.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Relation bundles one attribute's physical presence: the base column
// view, and optionally a compressed twin, a zonemap, and a secondary
// index. The optimizer consults what exists; the runner uses what it is
// told to.
type Relation struct {
	Column     *storage.Column
	Compressed *storage.CompressedColumn
	Zonemap    *storage.Zonemap
	Index      *index.Tree
	// Bitmap is the Appendix E value-per-bitmap index, present only on
	// low-cardinality attributes.
	Bitmap *bitmap.Index
	// Imprints accelerates scans with cache-line data skipping.
	Imprints *imprints.Index
}

// Validate reports structural inconsistencies (mismatched sizes).
func (r *Relation) Validate() error {
	if r.Column == nil {
		return errors.New("exec: relation has no base column")
	}
	n := r.Column.Len()
	if r.Compressed != nil && r.Compressed.Len() != n {
		return fmt.Errorf("exec: compressed column has %d rows, base has %d", r.Compressed.Len(), n)
	}
	if r.Index != nil && r.Index.Len() != n {
		return fmt.Errorf("exec: index has %d entries, base has %d rows", r.Index.Len(), n)
	}
	if r.Bitmap != nil && r.Bitmap.Len() != n {
		return fmt.Errorf("exec: bitmap index has %d rows, base has %d", r.Bitmap.Len(), n)
	}
	if r.Imprints != nil && r.Imprints.Len() != n {
		return fmt.Errorf("exec: imprints cover %d rows, base has %d", r.Imprints.Len(), n)
	}
	return nil
}

// Options tunes the runner.
type Options struct {
	// Workers bounds the hardware threads used; <= 0 means GOMAXPROCS.
	Workers int
	// BlockTuples is the shared-scan block size; <= 0 selects the default.
	BlockTuples int
	// PreferCompressed scans the compressed column when present.
	PreferCompressed bool
	// UseZonemap lets scans skip zones when a zonemap is present.
	UseZonemap bool
	// UseImprints lets scans skip cache lines when imprints are present
	// (takes precedence over the coarser zonemap).
	UseImprints bool
	// Metrics, when non-nil, receives per-path execution observations:
	// batch and query counters plus a latency histogram per access path.
	// Instrument names are constants, so recording is allocation-free.
	Metrics *obs.Registry
	// Pool is the engine's morsel worker pool; nil selects the
	// process-wide default pool.
	Pool *rt.Pool
	// Arena recycles result buffers across batches; nil allocates
	// plainly (and Result.Release becomes a no-op for those buffers).
	Arena *rt.Arena
	// Hints is the expected result cardinality per query (the
	// optimizer's selectivity estimate times N), used to size arena
	// checkouts so the kernels stop re-growing buffers mid-scan. May be
	// nil or shorter than the batch.
	Hints []int
}

// pool resolves the dispatch pool: the engine's, or the process-wide
// default so direct callers (benchmarks, tools) still parallelize.
func (o Options) pool() *rt.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return rt.Default()
}

// record tallies one executed batch under a path's instruments. The
// names arrive as string constants from the call sites so the lookups
// never build a key at run time.
func (o Options) record(batches, queries, ns string, q int, elapsed time.Duration) {
	if o.Metrics == nil {
		return
	}
	o.Metrics.Counter(batches).Add(1)
	o.Metrics.Counter(queries).Add(int64(q))
	o.Metrics.Histogram(ns).Record(elapsed.Nanoseconds())
}

// Result is the outcome of running one batch through one access path.
type Result struct {
	Path    model.Path
	RowIDs  [][]storage.RowID // one per query, in rowID order
	Elapsed time.Duration
	// Pooled is set when RowIDs alias arena-owned buffers; Release hands
	// them back. Paths that allocate plainly leave it nil.
	Pooled *rt.Results
}

// Release returns arena-owned result buffers for reuse. The RowIDs must
// not be used afterwards. Optional: unreleased results are simply
// garbage collected. Callers that share or retain result slices (the
// serve path's duplicate-predicate aliasing) must not call it.
func (r *Result) Release() {
	r.Pooled.Release()
	r.Pooled = nil
	r.RowIDs = nil
}

// TotalRows returns the summed result cardinality across the batch.
func (r Result) TotalRows() int {
	t := 0
	for _, ids := range r.RowIDs {
		t += len(ids)
	}
	return t
}

// recordKernelBps records the scan kernel's achieved streaming rate
// (bytes of column data per second) under its own instrument, so the
// drift accounting's view of the fitted bandwidth constants can be
// cross-checked per kernel. Instrument names arrive as constants from
// RunScan's branches; recording is allocation-free.
func (o Options) recordKernelBps(name string, bytes int64, elapsed time.Duration) {
	if o.Metrics == nil || elapsed <= 0 {
		return
	}
	o.Metrics.Histogram(name).Record(bytes * int64(time.Second) / int64(elapsed))
}

// RunScan answers the batch with a shared sequential scan. The raw,
// strided and compressed (packed SWAR) paths run as morsels on the
// pool, so cancellation is observed between morsels (a cancelled batch
// stops mid-relation); the skipping kernels (imprints, zonemap) remain
// batch-granular.
//
//fclint:owns — Result carries the pooled buffers out; callers release via Result.Pooled.
func RunScan(ctx context.Context, rel *Relation, preds []scan.Predicate, opt Options) (Result, error) {
	if err := rel.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	if err := faultinject.Fire("exec.scan"); err != nil {
		return Result{}, err
	}
	start := time.Now()
	var rowIDs [][]storage.RowID
	var pooled *rt.Results
	kernelBps := "exec.scan.kernel.shared.bps"
	kernelBytes := int64(rel.Column.Len()) * int64(rel.Column.TupleSize())
	// A strided column-group member has no raw view (rawErr != nil); every
	// kernel that needs one falls through to the strided path.
	switch raw, rawErr := rel.Column.Raw(); {
	case opt.PreferCompressed && rel.Compressed != nil:
		res, err := scan.SharedCompressedPoolContext(ctx, opt.pool(), opt.Arena, rel.Compressed, preds, opt.BlockTuples, opt.Hints)
		if err != nil {
			return Result{}, err
		}
		rowIDs, pooled = res.RowIDs, res
		kernelBps = "exec.scan.kernel.swar.bps"
		kernelBytes = int64(rel.Compressed.Len()) * int64(rel.Compressed.TupleSize())
	case opt.UseImprints && rel.Imprints != nil && rawErr == nil:
		ranges := make([][2]storage.Value, len(preds))
		for i, p := range preds {
			ranges[i] = [2]storage.Value{p.Lo, p.Hi}
		}
		rowIDs = rel.Imprints.SharedSelect(raw, ranges)
		kernelBps = "exec.scan.kernel.imprints.bps"
	case opt.UseZonemap && rel.Zonemap != nil && rawErr == nil:
		rowIDs = scan.SharedWithZonemap(raw, rel.Zonemap, preds)
		kernelBps = "exec.scan.kernel.zonemap.bps"
	case rawErr == nil:
		res, err := scan.SharedPoolContext(ctx, opt.pool(), opt.Arena, raw, preds, opt.BlockTuples, opt.Hints)
		if err != nil {
			return Result{}, err
		}
		rowIDs, pooled = res.RowIDs, res
	default:
		// Column-group member: blocked strided shared scan as morsels.
		res, err := scan.SharedStridedPoolContext(ctx, opt.pool(), opt.Arena, rel.Column, preds, opt.BlockTuples, opt.Hints)
		if err != nil {
			return Result{}, err
		}
		rowIDs, pooled = res.RowIDs, res
		kernelBps = "exec.scan.kernel.strided.bps"
	}
	elapsed := time.Since(start)
	opt.record("exec.scan.batches", "exec.scan.queries", "exec.scan.ns", len(preds), elapsed)
	opt.recordKernelBps(kernelBps, kernelBytes, elapsed)
	return Result{Path: model.PathScan, RowIDs: rowIDs, Elapsed: elapsed, Pooled: pooled}, nil
}

// RunIndex answers the batch with a concurrent secondary-index scan,
// sorting each result into rowID order to stay scan-compatible.
//
//fclint:owns — Result carries the pooled buffers out; callers release via Result.Pooled.
func RunIndex(ctx context.Context, rel *Relation, preds []scan.Predicate, opt Options) (Result, error) {
	if err := rel.Validate(); err != nil {
		return Result{}, err
	}
	if rel.Index == nil {
		return Result{}, errors.New("exec: relation has no secondary index")
	}
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	if err := faultinject.Fire("exec.index"); err != nil {
		return Result{}, err
	}
	ranges := make([][2]storage.Value, len(preds))
	for i, p := range preds {
		ranges[i] = [2]storage.Value{p.Lo, p.Hi}
	}
	start := time.Now()
	res, err := rel.Index.SharedSelectContext(ctx, opt.pool(), opt.Arena, ranges, opt.Hints)
	if err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	opt.record("exec.index.batches", "exec.index.queries", "exec.index.ns", len(preds), elapsed)
	return Result{Path: model.PathIndex, RowIDs: res.RowIDs, Elapsed: elapsed, Pooled: res}, nil
}

// RunBitmap answers the batch with the bitmap index; results emerge in
// rowID order with no sort step.
func RunBitmap(ctx context.Context, rel *Relation, preds []scan.Predicate, opt Options) (Result, error) {
	if err := rel.Validate(); err != nil {
		return Result{}, err
	}
	if rel.Bitmap == nil {
		return Result{}, errors.New("exec: relation has no bitmap index")
	}
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	if err := faultinject.Fire("exec.bitmap"); err != nil {
		return Result{}, err
	}
	ranges := make([][2]storage.Value, len(preds))
	for i, p := range preds {
		ranges[i] = [2]storage.Value{p.Lo, p.Hi}
	}
	start := time.Now()
	rowIDs := rel.Bitmap.SharedSelect(ranges)
	elapsed := time.Since(start)
	opt.record("exec.bitmap.batches", "exec.bitmap.queries", "exec.bitmap.ns", len(preds), elapsed)
	return Result{Path: model.PathBitmap, RowIDs: rowIDs, Elapsed: elapsed}, nil
}

// Run dispatches to the chosen access path. The context carries the
// batch's deadline/cancellation; checks are cooperative (before the
// kernel, not inside it), so a cancelled batch stops before it starts
// but a running kernel completes.
func Run(ctx context.Context, rel *Relation, path model.Path, preds []scan.Predicate, opt Options) (Result, error) {
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	if err := faultinject.Fire("exec.run"); err != nil {
		return Result{}, err
	}
	switch path {
	case model.PathIndex:
		return RunIndex(ctx, rel, preds, opt)
	case model.PathBitmap:
		return RunBitmap(ctx, rel, preds, opt)
	default:
		return RunScan(ctx, rel, preds, opt)
	}
}

// RunCount answers COUNT(*) for the batch without materializing rowIDs:
// the tree and bitmap count in their own structures, the scan counts in
// a write-free pass. Returns one count per query. Cancellation is
// cooperative at per-query granularity. Executions record under the
// exec.count.* instruments, like the materializing paths.
func RunCount(ctx context.Context, rel *Relation, path model.Path, preds []scan.Predicate, opt Options) ([]int, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := faultinject.Fire("exec.count"); err != nil {
		return nil, err
	}
	start := time.Now()
	counts := make([]int, len(preds))
	switch path {
	case model.PathIndex:
		if rel.Index == nil {
			return nil, errors.New("exec: relation has no secondary index")
		}
		for i, p := range preds {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			counts[i] = rel.Index.RangeCount(p.Lo, p.Hi)
		}
	case model.PathBitmap:
		if rel.Bitmap == nil {
			return nil, errors.New("exec: relation has no bitmap index")
		}
		for i, p := range preds {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			counts[i] = rel.Bitmap.Count(p.Lo, p.Hi)
		}
	default:
		if data, rawErr := rel.Column.Raw(); rawErr == nil {
			for i, p := range preds {
				if err := ctxErr(ctx); err != nil {
					return nil, err
				}
				counts[i] = scan.Count(data, p)
			}
		} else {
			for i, p := range preds {
				if err := ctxErr(ctx); err != nil {
					return nil, err
				}
				n := rel.Column.Len()
				c := 0
				for r := 0; r < n; r++ {
					if p.Matches(rel.Column.Get(r)) {
						c++
					}
				}
				counts[i] = c
			}
		}
	}
	opt.record("exec.count.batches", "exec.count.queries", "exec.count.ns", len(preds), time.Since(start))
	return counts, nil
}

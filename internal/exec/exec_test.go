package exec

import (
	"context"
	"math/rand"
	"testing"

	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

func buildRelation(t *testing.T, seed int64, n int, domain int32) (*Relation, []storage.Value) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	col := storage.NewColumn("v", data)
	cc, err := storage.Compress(col)
	if err != nil {
		t.Fatal(err)
	}
	return &Relation{
		Column:     col,
		Compressed: cc,
		Zonemap:    storage.BuildZonemap(col, 512),
		Index:      index.Build(col, index.DefaultFanout),
	}, data
}

func refSelect(data []storage.Value, p scan.Predicate) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBothPathsProduceIdenticalResults(t *testing.T) {
	rel, data := buildRelation(t, 1, 40000, 8000)
	preds := []scan.Predicate{
		{Lo: 0, Hi: 100},
		{Lo: 4000, Hi: 4100},
		{Lo: 7999, Hi: 7999},
		{Lo: 9000, Hi: 9999}, // empty
		{Lo: 0, Hi: 7999},    // everything
	}
	variants := []Options{
		{},
		{Workers: 1},
		{PreferCompressed: true},
		{UseZonemap: true},
		{BlockTuples: 1024, Workers: 4},
	}
	for _, opt := range variants {
		scanRes, err := RunScan(context.Background(), rel, preds, opt)
		if err != nil {
			t.Fatal(err)
		}
		idxRes, err := RunIndex(context.Background(), rel, preds, opt)
		if err != nil {
			t.Fatal(err)
		}
		if scanRes.Path != model.PathScan || idxRes.Path != model.PathIndex {
			t.Fatalf("paths mislabeled: %v %v", scanRes.Path, idxRes.Path)
		}
		for qi, p := range preds {
			want := refSelect(data, p)
			if !equalIDs(scanRes.RowIDs[qi], want) {
				t.Fatalf("opt %+v scan query %d disagrees", opt, qi)
			}
			if !equalIDs(idxRes.RowIDs[qi], want) {
				t.Fatalf("opt %+v index query %d disagrees", opt, qi)
			}
		}
	}
}

func TestRunDispatch(t *testing.T) {
	rel, data := buildRelation(t, 2, 5000, 1000)
	preds := []scan.Predicate{{Lo: 10, Hi: 50}}
	for _, path := range []model.Path{model.PathScan, model.PathIndex} {
		res, err := Run(context.Background(), rel, path, preds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Path != path {
			t.Fatalf("Run(%v) labeled %v", path, res.Path)
		}
		if !equalIDs(res.RowIDs[0], refSelect(data, preds[0])) {
			t.Fatalf("Run(%v) wrong rows", path)
		}
	}
}

func TestStridedRelationScan(t *testing.T) {
	g, err := storage.NewColumnGroup(
		[]string{"a", "b"},
		[][]storage.Value{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := &Relation{Column: g.Column("b")}
	res, err := RunScan(context.Background(), rel, []scan.Predicate{{Lo: 20, Hi: 40}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(res.RowIDs[0], []storage.RowID{1, 2, 3}) {
		t.Fatalf("strided scan = %v", res.RowIDs[0])
	}
}

func TestIndexMissing(t *testing.T) {
	rel := &Relation{Column: storage.NewColumn("v", []storage.Value{1, 2, 3})}
	if _, err := RunIndex(context.Background(), rel, []scan.Predicate{{Lo: 0, Hi: 5}}, Options{}); err == nil {
		t.Fatal("RunIndex without an index should fail")
	}
}

func TestRelationValidate(t *testing.T) {
	if err := (&Relation{}).Validate(); err == nil {
		t.Fatal("empty relation accepted")
	}
	col := storage.NewColumn("v", []storage.Value{1, 2, 3})
	short := index.Build(storage.NewColumn("v", []storage.Value{1}), 8)
	if err := (&Relation{Column: col, Index: short}).Validate(); err == nil {
		t.Fatal("index size mismatch accepted")
	}
}

func TestTotalRows(t *testing.T) {
	r := Result{RowIDs: [][]storage.RowID{{1, 2}, nil, {3}}}
	if got := r.TotalRows(); got != 3 {
		t.Fatalf("TotalRows = %d", got)
	}
}

func TestRunCountMatchesMaterialized(t *testing.T) {
	rel, data := buildRelation(t, 3, 30000, 6000)
	preds := []scan.Predicate{
		{Lo: 0, Hi: 100}, {Lo: 3000, Hi: 3200}, {Lo: 9000, Hi: 9999}, {Lo: 0, Hi: 5999},
	}
	want := make([]int, len(preds))
	for i, p := range preds {
		want[i] = len(refSelect(data, p))
	}
	for _, path := range []model.Path{model.PathScan, model.PathIndex} {
		counts, err := RunCount(context.Background(), rel, path, preds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range preds {
			if counts[i] != want[i] {
				t.Fatalf("%v count[%d] = %d, want %d", path, i, counts[i], want[i])
			}
		}
	}
	// Strided column group.
	g, err := storage.NewColumnGroup([]string{"a", "b"},
		[][]storage.Value{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := RunCount(context.Background(), &Relation{Column: g.Column("b")}, model.PathScan,
		[]scan.Predicate{{Lo: 6, Hi: 7}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 {
		t.Fatalf("strided count = %d", counts[0])
	}
	// Missing structures error cleanly.
	bare := &Relation{Column: storage.NewColumn("v", data)}
	if _, err := RunCount(context.Background(), bare, model.PathIndex, preds, Options{}); err == nil {
		t.Fatal("count via missing index accepted")
	}
	if _, err := RunCount(context.Background(), bare, model.PathBitmap, preds, Options{}); err == nil {
		t.Fatal("count via missing bitmap accepted")
	}
}

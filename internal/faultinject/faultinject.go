// Package faultinject provides deterministic, seed-driven fault injection
// at named sites in the engine. Production code marks a site with
// Fire("pkg.site"); when no injector is active that call is a single
// atomic pointer load. Tests build an Injector from rules — panic, error,
// or delay at a site, firing every Nth hit, a bounded number of times, or
// with a seeded pseudo-random probability — and Activate it for the
// duration of the test. Determinism: for a fixed seed and a fixed order
// of Fire calls, the injected faults are identical run to run.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an injected fault does at its site.
type Kind int

const (
	// Error makes Fire return an error (Rule.Err, or ErrInjected).
	Error Kind = iota
	// Panic makes Fire panic with a PanicValue.
	Panic
	// Delay makes Fire sleep for Rule.Delay, then return nil.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the default error injected by Error rules; injected
// errors always wrap it, so tests can errors.Is against it.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is what injected panics carry, so recover sites can tell a
// drill from a real bug.
type PanicValue struct{ Site string }

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at site %q", p.Site)
}

// Rule arms one fault at one site.
type Rule struct {
	// Site names the injection point, e.g. "exec.run".
	Site string
	// Kind is what the fault does (Error, Panic, or Delay).
	Kind Kind
	// Every fires on every Nth hit of the site (1 = every hit). Ignored
	// when Prob > 0; zero behaves as 1.
	Every int
	// Prob fires with this probability per hit, driven by the injector's
	// seeded generator.
	Prob float64
	// Count caps the total number of fires; 0 means unlimited.
	Count int
	// Delay is the sleep for Delay rules.
	Delay time.Duration
	// Err overrides the injected error for Error rules; it is wrapped
	// together with ErrInjected.
	Err error
}

type ruleState struct {
	Rule
	hits  int
	fires int
}

// Injector is a set of armed rules plus per-site counters.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	hits  map[string]int64
	fires map[string]int64
}

// New builds an injector from rules; seed drives probabilistic rules.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]int64),
		fires: make(map[string]int64),
	}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Fire reports a hit on the site and applies the first matching rule that
// decides to fire: Error rules return their error, Delay rules sleep,
// Panic rules panic with a PanicValue. With no matching rule it returns
// nil immediately.
func (in *Injector) Fire(site string) error {
	in.mu.Lock()
	in.hits[site]++
	var armed *ruleState
	for _, r := range in.rules {
		if r.Site != site {
			continue
		}
		if r.Count > 0 && r.fires >= r.Count {
			continue
		}
		r.hits++
		fire := false
		if r.Prob > 0 {
			fire = in.rng.Float64() < r.Prob
		} else {
			every := r.Every
			if every <= 0 {
				every = 1
			}
			fire = r.hits%every == 0
		}
		if fire {
			r.fires++
			in.fires[site]++
			armed = r
			break
		}
	}
	in.mu.Unlock()
	if armed == nil {
		return nil
	}
	switch armed.Kind {
	case Delay:
		time.Sleep(armed.Delay)
		return nil
	case Panic:
		panic(PanicValue{Site: site})
	default:
		if armed.Err != nil {
			return fmt.Errorf("%w at site %q: %w", ErrInjected, site, armed.Err)
		}
		return fmt.Errorf("%w at site %q", ErrInjected, site)
	}
}

// Hits returns how many times the site was reached.
func (in *Injector) Hits(site string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fires returns how many faults actually fired at the site.
func (in *Injector) Fires(site string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[site]
}

// active is the process-wide injector; nil means injection is off and
// package-level Fire is a single atomic load.
var active atomic.Pointer[Injector]

// Activate installs the injector globally and returns the deactivation
// function. Tests should defer it.
func Activate(in *Injector) (deactivate func()) {
	active.Store(in)
	return func() { active.CompareAndSwap(in, nil) }
}

// Enabled reports whether an injector is active.
func Enabled() bool { return active.Load() != nil }

// Fire reports a hit on the site against the active injector, if any.
// Sites in production code call this form.
func Fire(site string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.Fire(site)
}

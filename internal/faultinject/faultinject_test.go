package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInactiveFireIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("injector active at test start")
	}
	if err := Fire("exec.run"); err != nil {
		t.Fatalf("inactive Fire returned %v", err)
	}
}

func TestEveryNthDeterministic(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: Error, Every: 3})
	var errs int
	for i := 0; i < 9; i++ {
		if err := in.Fire("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("Every=3 over 9 hits fired %d times, want 3", errs)
	}
	if in.Hits("s") != 9 || in.Fires("s") != 3 {
		t.Fatalf("hits=%d fires=%d, want 9/3", in.Hits("s"), in.Fires("s"))
	}
}

func TestCountCapsFires(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: Error, Every: 1, Count: 2})
	var errs int
	for i := 0; i < 5; i++ {
		if in.Fire("s") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("Count=2 fired %d times", errs)
	}
}

func TestSeededProbabilityReproducible(t *testing.T) {
	run := func() []bool {
		in := New(42, Rule{Site: "s", Kind: Error, Prob: 0.5})
		out := make([]bool, 20)
		for i := range out {
			out[i] = in.Fire("s") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; expected a mix", fired, len(a))
	}
}

func TestPanicKindPanicsWithPanicValue(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: Panic})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "s" {
			t.Fatalf("recovered %v, want PanicValue{s}", r)
		}
	}()
	in.Fire("s")
	t.Fatal("Panic rule did not panic")
}

func TestDelayKindSleeps(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: Delay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Delay rule returned after %v", d)
	}
}

func TestActivateDeactivate(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: Error})
	deactivate := Activate(in)
	if !Enabled() {
		t.Fatal("not enabled after Activate")
	}
	if Fire("s") == nil {
		t.Fatal("active injector did not fire")
	}
	if Fire("other") != nil {
		t.Fatal("unmatched site fired")
	}
	deactivate()
	if Enabled() {
		t.Fatal("still enabled after deactivate")
	}
	if Fire("s") != nil {
		t.Fatal("fired after deactivate")
	}
}

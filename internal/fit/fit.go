package fit

import (
	"errors"
	"math"

	"fastcolumns/internal/model"
)

// Observation is one measured data point: a workload configuration plus
// the latency each access path achieved on it. Figure 20's panels are
// collections of observations swept along q, selectivity, or N.
type Observation struct {
	Q           int
	Selectivity float64 // per-query selectivity s_i
	N           float64
	TupleSize   float64
	// ScanSec and IndexSec are the measured shared-scan and concurrent
	// index-scan latencies in seconds. NaN marks "not measured".
	ScanSec  float64
	IndexSec float64
	// PackedScanSec is the measured latency of the shared scan over the
	// word-packed compressed twin (the SWAR kernel path). NaN or zero
	// marks "not measured".
	PackedScanSec float64
}

// FitResult carries the fitted machine constants of Appendix C.
type FitResult struct {
	// Alpha is the scan result-writing overlap factor (Equation 22); the
	// paper finds 8 on its primary server.
	Alpha float64
	// Pipelining is the fitted fp of Equation 2.
	Pipelining float64
	// SortFitScale (f_s) and SortFitExp (beta) define the sorting
	// correction fc(N) of Equation 24; the paper reports beta = 0.38.
	SortFitScale float64
	SortFitExp   float64
	// ScanWidth is the fitted effective SWAR width of the packed scan
	// kernel (the scan-side W of the Appendix D treatment): how many
	// codes per operation the kernel actually delivers once flag
	// compaction and materialization overheads are paid. Zero when no
	// packed observations were available.
	ScanWidth float64
	// PackedAlpha is the packed kernel's fitted result-writing overlap
	// factor (its Equation 22 alpha). Zero when unfitted.
	PackedAlpha float64
	// ScanErr and IndexErr are the sums of normalized least-square errors
	// (the figure-title numbers in Figure 20); PackedErr is the same for
	// the packed-scan stage.
	ScanErr   float64
	IndexErr  float64
	PackedErr float64
}

// Design folds the fitted constants into a model design based on base.
func (r FitResult) Design(base model.Design) model.Design {
	base.Alpha = r.Alpha
	base.SortFitScale = r.SortFitScale
	base.SortFitExp = r.SortFitExp
	if r.ScanWidth > 0 {
		base.ScanSIMDWidth = r.ScanWidth
	}
	if r.PackedAlpha > 0 {
		base.PackedAlpha = r.PackedAlpha
	}
	return base
}

// normErr returns the normalized squared error sum_i ((pred-meas)/meas)^2
// over the observation list under the given predictor.
func normErr(obs []Observation, pred func(Observation) float64, meas func(Observation) float64) float64 {
	var e float64
	var n int
	for _, o := range obs {
		m := meas(o)
		if math.IsNaN(m) || m <= 0 {
			continue
		}
		d := (pred(o) - m) / m
		e += d * d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return e
}

func params(o Observation, h model.Hardware, dg model.Design) model.Params {
	return model.Params{
		Workload: model.Uniform(o.Q, o.Selectivity),
		Dataset:  model.Dataset{N: o.N, TupleSize: o.TupleSize},
		Hardware: h,
		Design:   dg,
	}
}

// packedParams is params with the tuple width of the word-packed
// compressed twin: the SWAR kernel streams 2-byte codes, not the base
// column's tuples, so its data-scan term sees the packed layout.
func packedParams(o Observation, h model.Hardware, dg model.Design) model.Params {
	p := params(o, h, dg)
	p.Dataset.TupleSize = model.PackedTupleBytes
	return p
}

// Fit runs the Appendix C verification procedure: Nelder-Mead over
// (alpha, fp) against the scan observations, then over (f_s, beta)
// against the index observations. hw supplies the advertised hardware
// characteristics which the fit augments with the constant factors.
func Fit(obs []Observation, hw model.Hardware, base model.Design) (FitResult, error) {
	var haveScan, haveIndex, havePacked bool
	for _, o := range obs {
		if !math.IsNaN(o.ScanSec) && o.ScanSec > 0 {
			haveScan = true
		}
		if !math.IsNaN(o.IndexSec) && o.IndexSec > 0 {
			haveIndex = true
		}
		if !math.IsNaN(o.PackedScanSec) && o.PackedScanSec > 0 {
			havePacked = true
		}
	}
	if !haveScan && !haveIndex {
		return FitResult{}, errors.New("fit: no usable observations")
	}

	res := FitResult{
		Alpha:        1,
		Pipelining:   hw.Pipelining,
		SortFitScale: 0,
		SortFitExp:   0,
	}

	if haveScan {
		// Fit (alpha, log fp) on the scan model. fp is optimized in log
		// space to keep it positive.
		obj := func(x []float64) float64 {
			alpha, lfp := x[0], x[1]
			if alpha <= 0 {
				return math.Inf(1)
			}
			h := hw
			h.Pipelining = math.Exp(lfp)
			dg := base
			dg.Alpha = alpha
			return normErr(obs,
				func(o Observation) float64 { return model.SharedScan(params(o, h, dg)) },
				func(o Observation) float64 { return o.ScanSec })
		}
		r, err := Minimize(obj, []float64{4, math.Log(hw.Pipelining)}, Options{MaxIter: 4000})
		if err != nil {
			return FitResult{}, err
		}
		res.Alpha = r.X[0]
		res.Pipelining = math.Exp(r.X[1])
		res.ScanErr = r.F
	}

	if havePacked {
		// Fit (packedAlpha, log W) on the packed-scan model with fp frozen
		// from the scan stage. W is optimized in log space to stay
		// positive and bounded to [1, 64]: a "width" below 1 means the
		// SWAR kernel lost to the scalar loop (fit noise), above 64 is
		// more codes per op than a 64-bit word holds.
		h := hw
		h.Pipelining = res.Pipelining
		obj := func(x []float64) float64 {
			pa, lw := x[0], x[1]
			w := math.Exp(lw)
			if pa <= 0 || w < 1 || w > 64 {
				return math.Inf(1)
			}
			dg := base
			dg.Alpha = res.Alpha
			dg.ScanSIMDWidth = w
			dg.PackedAlpha = pa
			return normErr(obs,
				func(o Observation) float64 { return model.SharedScanPacked(packedParams(o, h, dg)) },
				func(o Observation) float64 { return o.PackedScanSec })
		}
		r, err := Minimize(obj, []float64{res.Alpha, math.Log(model.PackedScanWidth)}, Options{MaxIter: 4000})
		if err != nil {
			return FitResult{}, err
		}
		res.PackedAlpha = r.X[0]
		res.ScanWidth = math.Exp(r.X[1])
		res.PackedErr = r.F
	}

	if haveIndex {
		// Fit (log f_s, beta) on the index model with the scan-side
		// constants already frozen.
		h := hw
		h.Pipelining = res.Pipelining
		obj := func(x []float64) float64 {
			lfs, beta := x[0], x[1]
			if beta <= 0.01 || beta >= 1 {
				return math.Inf(1)
			}
			dg := base
			dg.Alpha = res.Alpha
			dg.SortFitScale = math.Exp(lfs)
			dg.SortFitExp = beta
			return normErr(obs,
				func(o Observation) float64 { return model.ConcIndex(params(o, h, dg)) },
				func(o Observation) float64 { return o.IndexSec })
		}
		r, err := Minimize(obj, []float64{math.Log(6e-6), 0.38}, Options{MaxIter: 4000})
		if err != nil {
			return FitResult{}, err
		}
		res.SortFitScale = math.Exp(r.X[0])
		res.SortFitExp = r.X[1]
		res.IndexErr = r.F
	}
	return res, nil
}

// HoldoutError scores one (hardware, design) hypothesis against a
// held-out observation set: the sum of the normalized squared errors of
// every path the holdout actually measured (scan, index, packed scan).
// The refit controller compares the incumbent and a candidate fit on the
// same holdout and keeps whichever scores lower — an apples-to-apples
// residual comparison, since both hypotheses face observations neither
// was trained on. Returns NaN when the holdout has no usable
// measurement on any path.
func HoldoutError(obs []Observation, hw model.Hardware, dg model.Design) float64 {
	parts := [3]float64{
		normErr(obs,
			func(o Observation) float64 { return model.SharedScan(params(o, hw, dg)) },
			func(o Observation) float64 { return o.ScanSec }),
		normErr(obs,
			func(o Observation) float64 { return model.ConcIndex(params(o, hw, dg)) },
			func(o Observation) float64 { return o.IndexSec }),
		normErr(obs,
			func(o Observation) float64 { return model.SharedScanPacked(packedParams(o, hw, dg)) },
			func(o Observation) float64 { return o.PackedScanSec }),
	}
	total, any := 0.0, false
	for _, p := range parts {
		if !math.IsNaN(p) {
			total += p
			any = true
		}
	}
	if !any {
		return math.NaN()
	}
	return total
}

// Errors recomputes the normalized least-square errors of a fitted result
// against an observation set (e.g. a held-out sweep), mirroring the
// "S:…, I:…" annotations on Figure 20's panels.
func (r FitResult) Errors(obs []Observation, hw model.Hardware, base model.Design) (scanErr, indexErr float64) {
	h := hw
	h.Pipelining = r.Pipelining
	dg := r.Design(base)
	scanErr = normErr(obs,
		func(o Observation) float64 { return model.SharedScan(params(o, h, dg)) },
		func(o Observation) float64 { return o.ScanSec })
	indexErr = normErr(obs,
		func(o Observation) float64 { return model.ConcIndex(params(o, h, dg)) },
		func(o Observation) float64 { return o.IndexSec })
	return scanErr, indexErr
}

package fit

import (
	"math"
	"testing"

	"fastcolumns/internal/model"
)

// synthObservations generates observations from the model itself with
// known ground-truth constants, so the fit can be checked for parameter
// recovery — the same self-consistency check Appendix C performs before
// fitting real measurements.
func synthObservations(truth model.Design, fp float64) []Observation {
	hw := model.HW1()
	hw.Pipelining = fp
	var obs []Observation
	for _, q := range []int{1, 4, 16, 64, 128} {
		for _, s := range []float64{0, 0.001, 0.002, 0.01} {
			for _, n := range []float64{1e7, 1e8, 5e8} {
				p := model.Params{
					Workload: model.Uniform(q, s),
					Dataset:  model.Dataset{N: n, TupleSize: 4},
					Hardware: hw,
					Design:   truth,
				}
				obs = append(obs, Observation{
					Q: q, Selectivity: s, N: n, TupleSize: 4,
					ScanSec:  model.SharedScan(p),
					IndexSec: model.ConcIndex(p),
				})
			}
		}
	}
	return obs
}

func TestFitRecoversKnownConstants(t *testing.T) {
	truth := model.DefaultDesign()
	truth.Alpha = 8
	truth.SortFitScale = 6e-6
	truth.SortFitExp = 0.38
	trueFP := 0.004

	obs := synthObservations(truth, trueFP)
	r, err := Fit(obs, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Alpha-8)/8 > 0.05 {
		t.Fatalf("alpha = %v, want ~8", r.Alpha)
	}
	if math.Abs(r.Pipelining-trueFP)/trueFP > 0.1 {
		t.Fatalf("fp = %v, want ~%v", r.Pipelining, trueFP)
	}
	if math.Abs(r.SortFitExp-0.38) > 0.05 {
		t.Fatalf("beta = %v, want ~0.38", r.SortFitExp)
	}
	if r.ScanErr > 1e-4 || r.IndexErr > 1e-4 {
		t.Fatalf("residuals too large: scan %v index %v", r.ScanErr, r.IndexErr)
	}
}

func TestFitNoisyObservations(t *testing.T) {
	// With multiplicative noise the fit must still land near the truth
	// and report a small (but nonzero) residual.
	truth := model.DefaultDesign()
	truth.Alpha = 8
	truth.SortFitScale = 6e-6
	truth.SortFitExp = 0.38
	obs := synthObservations(truth, 0.002)
	for i := range obs {
		// Deterministic ±3% wobble.
		f := 1 + 0.03*math.Sin(float64(i)*1.7)
		obs[i].ScanSec *= f
		obs[i].IndexSec *= 2 - f
	}
	r, err := Fit(obs, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Alpha-8)/8 > 0.3 {
		t.Fatalf("alpha = %v drifted too far from 8 under 3%% noise", r.Alpha)
	}
	if r.ScanErr == 0 {
		t.Fatal("zero residual on noisy data is implausible")
	}
}

func TestFitScanOnly(t *testing.T) {
	truth := model.DefaultDesign()
	truth.Alpha = 5
	obs := synthObservations(truth, 0.002)
	for i := range obs {
		obs[i].IndexSec = math.NaN()
	}
	r, err := Fit(obs, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Alpha-5)/5 > 0.05 {
		t.Fatalf("alpha = %v, want ~5", r.Alpha)
	}
	if r.SortFitScale != 0 {
		t.Fatalf("index constants should stay unfitted, got fs=%v", r.SortFitScale)
	}
}

func TestFitNoObservations(t *testing.T) {
	obs := []Observation{{Q: 1, Selectivity: 0.1, N: 1e6, TupleSize: 4,
		ScanSec: math.NaN(), IndexSec: math.NaN()}}
	if _, err := Fit(obs, model.HW1(), model.DefaultDesign()); err == nil {
		t.Fatal("expected error with no usable observations")
	}
}

func TestErrorsOnHeldOutData(t *testing.T) {
	truth := model.DefaultDesign()
	truth.Alpha = 8
	truth.SortFitScale = 6e-6
	truth.SortFitExp = 0.38
	obs := synthObservations(truth, 0.002)
	// Interleave train/test so both halves span the full (q, s, N) range;
	// fp is only identifiable where the scan is CPU bound (high q).
	var train, test []Observation
	for i, o := range obs {
		if i%2 == 0 {
			train = append(train, o)
		} else {
			test = append(test, o)
		}
	}
	r, err := Fit(train, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	scanErr, indexErr := r.Errors(test, model.HW1(), model.DefaultDesign())
	if scanErr > 0.01 || indexErr > 0.01 {
		t.Fatalf("held-out errors too large: scan %v index %v", scanErr, indexErr)
	}
}

func TestFitResultDesign(t *testing.T) {
	r := FitResult{Alpha: 8, SortFitScale: 6e-6, SortFitExp: 0.38}
	dg := r.Design(model.DefaultDesign())
	if dg.Alpha != 8 || dg.SortFitScale != 6e-6 || dg.SortFitExp != 0.38 {
		t.Fatalf("Design did not carry the fitted constants: %+v", dg)
	}
	if dg.Fanout != model.DefaultDesign().Fanout {
		t.Fatal("Design must preserve the base structural parameters")
	}
}

package fit

import (
	"context"
	"sort"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/workload"
)

// MeasureObservations runs both access paths on the relation across a
// (concurrency x selectivity) sweep and returns wall-clock observations
// ready for Fit — the "small number of experiments" Appendix C says a new
// setup needs before the model captures machine performance. The context
// bounds the whole sweep: cancellation is honored between runs, so a
// deadline cuts a calibration short instead of hanging the caller.
func MeasureObservations(ctx context.Context, rel *exec.Relation, tupleSize float64, domain int32,
	qs []int, sels []float64, trials int) ([]Observation, error) {
	if trials < 1 {
		trials = 1
	}
	n := rel.Column.Len()
	var obs []Observation
	for _, q := range qs {
		for _, s := range sels {
			preds := workload.Batch(int64(q)*1000+int64(s*1e6), q, s, domain)
			scanSec, rows, err := medianRun(ctx, rel, model.PathScan, preds, trials, exec.Options{})
			if err != nil {
				return nil, err
			}
			indexSec, _, err := medianRun(ctx, rel, model.PathIndex, preds, trials, exec.Options{})
			if err != nil {
				return nil, err
			}
			// When the relation carries a compressed twin, also time the
			// packed SWAR scan so Fit can calibrate its Appendix D term.
			packedSec := 0.0
			if rel.Compressed != nil {
				packedSec, _, err = medianRun(ctx, rel, model.PathScan, preds, trials,
					exec.Options{PreferCompressed: true})
				if err != nil {
					return nil, err
				}
			}
			// Record the realized mean selectivity, not the nominal target:
			// the model is fitted against what actually qualified.
			realized := float64(rows) / float64(q) / float64(n)
			obs = append(obs, Observation{
				Q: q, Selectivity: realized, N: float64(n), TupleSize: tupleSize,
				ScanSec: scanSec, IndexSec: indexSec, PackedScanSec: packedSec,
			})
		}
	}
	return obs, nil
}

func medianRun(ctx context.Context, rel *exec.Relation, path model.Path, preds []scan.Predicate, trials int, opt exec.Options) (sec float64, totalRows int, err error) {
	times := make([]time.Duration, 0, trials)
	for t := 0; t < trials; t++ {
		res, err := exec.Run(ctx, rel, path, preds, opt)
		if err != nil {
			return 0, 0, err
		}
		totalRows = res.TotalRows()
		times = append(times, res.Elapsed)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2].Seconds(), totalRows, nil
}

// Package fit implements the model-verification machinery of Appendix C of
// the paper: a multidimensional unconstrained nonlinear minimizer
// (Nelder-Mead) and a harness that fits the cost model's machine-specific
// constants (alpha, beta, f_s, fp) to observed access-path latencies.
package fit

import (
	"errors"
	"math"
	"sort"
)

// Objective is a function to minimize over R^n.
type Objective func(x []float64) float64

// Options tunes the Nelder-Mead iteration. Zero values select defaults.
type Options struct {
	// MaxIter bounds the number of simplex transformations (default 2000).
	MaxIter int
	// TolF stops when the simplex function-value spread falls below it
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex collapses below this diameter
	// (default 1e-10).
	TolX float64
	// Scale sets the initial simplex edge length relative to each starting
	// coordinate (default 0.05; absolute 0.00025 for zero coordinates,
	// following the classic fminsearch construction).
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 2000
	}
	if o.TolF == 0 {
		o.TolF = 1e-10
	}
	if o.TolX == 0 {
		o.TolX = 1e-10
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	return o
}

// Result reports the minimizer outcome.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of simplex transformations performed.
	Iterations int
	// Converged is true when a tolerance (rather than MaxIter) stopped the
	// search.
	Converged bool
}

// standard Nelder-Mead coefficients.
const (
	reflectC  = 1.0
	expandC   = 2.0
	contractC = 0.5
	shrinkC   = 0.5
)

// Minimize runs the Nelder-Mead downhill-simplex method from x0.
func Minimize(f Objective, x0 []float64, opts Options) (Result, error) {
	if len(x0) == 0 {
		return Result{}, errors.New("fit: empty starting point")
	}
	o := opts.withDefaults()
	n := len(x0)

	// Build the initial simplex: x0 plus n perturbed vertices.
	simplex := make([][]float64, n+1)
	simplex[0] = append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		v := append([]float64(nil), x0...)
		if v[i] != 0 {
			v[i] *= 1 + o.Scale
		} else {
			v[i] = o.Scale * 0.005
		}
		simplex[i+1] = v
	}
	fv := make([]float64, n+1)
	for i, v := range simplex {
		fv[i] = f(v)
		if math.IsNaN(fv[i]) {
			fv[i] = math.Inf(1)
		}
	}

	order := func() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return fv[idx[a]] < fv[idx[b]] })
		ns := make([][]float64, n+1)
		nf := make([]float64, n+1)
		for i, j := range idx {
			ns[i], nf[i] = simplex[j], fv[j]
		}
		simplex, fv = ns, nf
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	res := Result{}
	for iter := 0; iter < o.MaxIter; iter++ {
		order()
		res.Iterations = iter

		// Convergence: function spread and simplex diameter.
		if math.Abs(fv[n]-fv[0]) <= o.TolF*(math.Abs(fv[0])+o.TolF) {
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					diam = math.Max(diam, math.Abs(simplex[i][j]-simplex[0][j]))
				}
			}
			if diam <= o.TolX*(1+norm(simplex[0])) {
				res.Converged = true
				break
			}
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		worst := simplex[n]
		reflected := combine(centroid, worst, 1+reflectC, -reflectC)
		fr := eval(reflected)

		switch {
		case fr < fv[0]:
			// Try expanding past the reflection.
			expanded := combine(centroid, worst, 1+reflectC*expandC, -reflectC*expandC)
			if fe := eval(expanded); fe < fr {
				simplex[n], fv[n] = expanded, fe
			} else {
				simplex[n], fv[n] = reflected, fr
			}
		case fr < fv[n-1]:
			simplex[n], fv[n] = reflected, fr
		default:
			// Contract towards the better of worst/reflected.
			var contracted []float64
			if fr < fv[n] {
				contracted = combine(centroid, reflected, 1-contractC, contractC)
			} else {
				contracted = combine(centroid, worst, 1-contractC, contractC)
			}
			if fc := eval(contracted); fc < math.Min(fr, fv[n]) {
				simplex[n], fv[n] = contracted, fc
			} else {
				// Shrink everything towards the best vertex.
				for i := 1; i <= n; i++ {
					simplex[i] = combine(simplex[0], simplex[i], 1-shrinkC, shrinkC)
					fv[i] = eval(simplex[i])
				}
			}
		}
	}
	order()
	res.X = append([]float64(nil), simplex[0]...)
	res.F = fv[0]
	return res, nil
}

// combine returns a*x + b*y elementwise.
func combine(x, y []float64, a, b float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + b*y[i]
	}
	return out
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

package fit

import (
	"math"
	"testing"
)

func TestMinimizeQuadratic(t *testing.T) {
	// f(x) = (x0-3)^2 + (x1+2)^2 + 1, minimum 1 at (3, -2).
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2) + 1
	}
	r, err := Minimize(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("did not converge in %d iterations", r.Iterations)
	}
	if math.Abs(r.X[0]-3) > 1e-4 || math.Abs(r.X[1]+2) > 1e-4 {
		t.Fatalf("minimum at %v, want (3,-2)", r.X)
	}
	if math.Abs(r.F-1) > 1e-6 {
		t.Fatalf("minimum value %v, want 1", r.F)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	// The classic banana function: narrow curved valley, minimum 0 at (1,1).
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r, err := Minimize(f, []float64{-1.2, 1}, Options{MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v (f=%v), want (1,1)", r.X, r.F)
	}
}

func TestMinimizeOneDimension(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 7) }
	r, err := Minimize(f, []float64{100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-7) > 1e-3 {
		t.Fatalf("minimum at %v, want 7", r.X[0])
	}
}

func TestMinimizeFromZeroStart(t *testing.T) {
	// Zero coordinates use the absolute initial step.
	f := func(x []float64) float64 { return (x[0] - 0.01) * (x[0] - 0.01) }
	r, err := Minimize(f, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-0.01) > 1e-5 {
		t.Fatalf("minimum at %v, want 0.01", r.X[0])
	}
}

func TestMinimizeHandlesNaNObjective(t *testing.T) {
	// NaN regions are treated as +Inf barriers, not poison.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	r, err := Minimize(f, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1e-3 {
		t.Fatalf("minimum at %v, want 2", r.X[0])
	}
}

func TestMinimizeEmptyStart(t *testing.T) {
	if _, err := Minimize(func([]float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Fatal("expected error for empty start")
	}
}

func TestMinimizeRespectsMaxIter(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 { calls++; return x[0] * x[0] }
	r, err := Minimize(f, []float64{1e9}, Options{MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations > 5 {
		t.Fatalf("iterations %d exceed MaxIter", r.Iterations)
	}
}

package fit

import (
	"math"
	"testing"

	"fastcolumns/internal/model"
)

// synthPackedObservations augments the synthetic sweep with packed-scan
// timings generated from known ground-truth packed constants.
func synthPackedObservations(truth model.Design, fp float64) []Observation {
	obs := synthObservations(truth, fp)
	hw := model.HW1()
	hw.Pipelining = fp
	for i := range obs {
		o := obs[i]
		p := model.Params{
			Workload: model.Uniform(o.Q, o.Selectivity),
			Dataset:  model.Dataset{N: o.N, TupleSize: model.PackedTupleBytes},
			Hardware: hw,
			Design:   truth,
		}
		obs[i].PackedScanSec = model.SharedScanPacked(p)
	}
	return obs
}

// TestFitRecoversPackedConstants: the third fit stage must recover a
// known (W, packedAlpha) pair from self-consistent observations, with
// the scan-side constants fitted first and frozen.
func TestFitRecoversPackedConstants(t *testing.T) {
	truth := model.DefaultDesign()
	truth.Alpha = 8
	truth.ScanSIMDWidth = 4
	truth.PackedAlpha = 3
	trueFP := 0.004

	obs := synthPackedObservations(truth, trueFP)
	r, err := Fit(obs, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ScanWidth-4)/4 > 0.1 {
		t.Fatalf("ScanWidth = %v, want ~4", r.ScanWidth)
	}
	if math.Abs(r.PackedAlpha-3)/3 > 0.1 {
		t.Fatalf("PackedAlpha = %v, want ~3", r.PackedAlpha)
	}
	if r.PackedErr > 1e-4 {
		t.Fatalf("packed residual too large: %v", r.PackedErr)
	}
	dg := r.Design(model.DefaultDesign())
	if dg.ScanSIMDWidth != r.ScanWidth || dg.PackedAlpha != r.PackedAlpha {
		t.Fatalf("Design did not fold the packed constants: %+v", dg)
	}
}

// TestFitWithoutPackedObservationsLeavesConstantsUnfitted: a sweep with
// no packed timings must not invent packed constants, and folding the
// result into a base design must preserve the base's own values.
func TestFitWithoutPackedObservationsLeavesConstantsUnfitted(t *testing.T) {
	truth := model.DefaultDesign()
	truth.Alpha = 8
	obs := synthObservations(truth, 0.002)
	r, err := Fit(obs, model.HW1(), model.DefaultDesign())
	if err != nil {
		t.Fatal(err)
	}
	if r.ScanWidth != 0 || r.PackedAlpha != 0 {
		t.Fatalf("packed constants invented from nothing: W=%v alpha=%v", r.ScanWidth, r.PackedAlpha)
	}
	base := model.FittedDesign()
	dg := r.Design(base)
	if dg.ScanSIMDWidth != base.ScanSIMDWidth || dg.PackedAlpha != base.PackedAlpha {
		t.Fatal("unfitted packed constants must not clobber the base design")
	}
}

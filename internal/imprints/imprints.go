// Package imprints implements column imprints (Sidirourgos & Kersten,
// SIGMOD 2013 — reference [76] of the paper's Appendix E): a secondary
// scan accelerator that keeps one 64-bit imprint per cache line of the
// column. Bit b of a line's imprint is set when some value in the line
// falls into histogram bin b; a range query builds the mask of bins its
// bounds overlap, skips every line whose imprint misses the mask, and
// scans only the surviving lines. Runs of identical imprints are
// run-length encoded, which is what makes imprints cheap on clustered
// data.
package imprints

import (
	"errors"
	"fmt"
	"sort"

	"fastcolumns/internal/storage"
)

// LineValues is the number of 4-byte values per 64-byte cache line.
const LineValues = 16

// Bins is the number of histogram bins (one per imprint bit).
const Bins = 64

type entry struct {
	imprint uint64
	count   uint32 // consecutive lines sharing this imprint
}

// Index is a column-imprints secondary structure over one column.
type Index struct {
	// bounds[b] is the upper bound (inclusive) of bin b; bin Bins-1 is
	// unbounded above.
	bounds  [Bins - 1]storage.Value
	entries []entry
	n       int
	lines   int
}

// Build samples the column for equi-depth bin bounds and imprints every
// cache line. The column must be contiguous (imprints describe physical
// lines).
func Build(c *storage.Column) (*Index, error) {
	data, err := c.Raw()
	if err != nil {
		return nil, fmt.Errorf("imprints: column must be contiguous: %w", err)
	}
	if len(data) == 0 {
		return nil, errors.New("imprints: empty column")
	}
	x := &Index{n: len(data)}
	x.computeBounds(data)

	x.lines = (len(data) + LineValues - 1) / LineValues
	for line := 0; line < x.lines; line++ {
		lo := line * LineValues
		hi := min(lo+LineValues, len(data))
		var imp uint64
		for _, v := range data[lo:hi] {
			imp |= 1 << x.bin(v)
		}
		if k := len(x.entries); k > 0 && x.entries[k-1].imprint == imp {
			x.entries[k-1].count++
		} else {
			x.entries = append(x.entries, entry{imprint: imp, count: 1})
		}
	}
	return x, nil
}

// computeBounds picks equi-depth bin bounds from a sample.
func (x *Index) computeBounds(data []storage.Value) {
	const sampleCap = 1 << 16
	sample := data
	if len(data) > sampleCap {
		step := len(data) / sampleCap
		s := make([]storage.Value, 0, sampleCap)
		for i := 0; i < len(data); i += step {
			s = append(s, data[i])
		}
		sample = s
	}
	sorted := append([]storage.Value(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for b := 0; b < Bins-1; b++ {
		x.bounds[b] = sorted[(b+1)*len(sorted)/Bins-1]
	}
}

// bin returns the bin index of a value.
func (x *Index) bin(v storage.Value) uint {
	i := sort.Search(Bins-1, func(i int) bool { return x.bounds[i] >= v })
	return uint(i)
}

// mask returns the imprint mask of bins overlapping [lo, hi].
func (x *Index) mask(lo, hi storage.Value) uint64 {
	bl, bh := x.bin(lo), x.bin(hi)
	if bh >= 63 {
		return ^uint64(0) << bl
	}
	return (^uint64(0) << bl) & (^uint64(0) >> (63 - bh))
}

// Len returns the indexed row count.
func (x *Index) Len() int { return x.n }

// Entries returns the RLE-compressed imprint count (its memory footprint
// is Entries() * 12 bytes, typically a small fraction of the column).
func (x *Index) Entries() int { return len(x.entries) }

// CheckedFraction returns the fraction of cache lines a query on
// [lo, hi] must actually scan — the data-skipping power on this data.
func (x *Index) CheckedFraction(lo, hi storage.Value) float64 {
	if lo > hi || x.lines == 0 {
		return 0
	}
	m := x.mask(lo, hi)
	checked := 0
	for _, e := range x.entries {
		if e.imprint&m != 0 {
			checked += int(e.count)
		}
	}
	return float64(checked) / float64(x.lines)
}

// Select scans only the lines whose imprints intersect the query mask,
// appending qualifying rowIDs to out in ascending order.
func (x *Index) Select(data []storage.Value, lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	if lo > hi {
		return out
	}
	m := x.mask(lo, hi)
	line := 0
	for _, e := range x.entries {
		if e.imprint&m == 0 {
			line += int(e.count)
			continue
		}
		for r := 0; r < int(e.count); r++ {
			start := (line + r) * LineValues
			end := min(start+LineValues, len(data))
			for i := start; i < end; i++ {
				if v := data[i]; v >= lo && v <= hi {
					out = append(out, storage.RowID(i))
				}
			}
		}
		line += int(e.count)
	}
	return out
}

// SharedSelect answers a batch: the imprint vector streams once per
// query, but on clustered data most entries short-circuit on the mask.
func (x *Index) SharedSelect(data []storage.Value, ranges [][2]storage.Value) [][]storage.RowID {
	out := make([][]storage.RowID, len(ranges))
	for qi, r := range ranges {
		out[qi] = x.Select(data, r[0], r[1], nil)
	}
	return out
}

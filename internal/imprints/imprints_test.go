package imprints

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastcolumns/internal/storage"
)

func uniform(seed int64, n int, domain int32) []storage.Value {
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	return data
}

func clustered(seed int64, n int, domain int32) []storage.Value {
	data := uniform(seed, n, domain)
	sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
	return data
}

func refIDs(data []storage.Value, lo, hi storage.Value) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if v >= lo && v <= hi {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectMatchesReference(t *testing.T) {
	for name, data := range map[string][]storage.Value{
		"uniform":   uniform(1, 30000, 1<<20),
		"clustered": clustered(2, 30000, 1<<20),
	} {
		x, err := Build(storage.NewColumn("v", data))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]storage.Value{
			{0, 1 << 14}, {1 << 19, 1<<19 + 1<<15}, {1 << 21, 1 << 22}, {500, 500},
		} {
			got := x.Select(data, r[0], r[1], nil)
			want := refIDs(data, r[0], r[1])
			if !equalIDs(got, want) {
				t.Fatalf("%s range %v: %d rows, want %d", name, r, len(got), len(want))
			}
		}
	}
}

func TestClusteredDataCompressesAndSkips(t *testing.T) {
	data := clustered(3, 64000, 1<<20)
	x, err := Build(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	lines := (len(data) + LineValues - 1) / LineValues
	// Sorted data: long runs of identical imprints, so RLE must compress
	// far below one entry per line.
	if x.Entries() > lines/4 {
		t.Fatalf("RLE ineffective on sorted data: %d entries for %d lines", x.Entries(), lines)
	}
	// A narrow query on sorted data checks a small fraction of lines.
	frac := x.CheckedFraction(1000, 3000)
	if frac > 0.10 {
		t.Fatalf("narrow query checks %.2f of a sorted column", frac)
	}
}

func TestUniformDataSkipsLittle(t *testing.T) {
	// On random data nearly every line holds values from many bins; wide
	// queries check almost everything (the structure's documented limit).
	data := uniform(4, 32000, 1<<20)
	x, err := Build(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	frac := x.CheckedFraction(0, 1<<19)
	if frac < 0.5 {
		t.Fatalf("random data should not skip a 50%% query: checked %.2f", frac)
	}
}

func TestCheckedFractionBounds(t *testing.T) {
	data := clustered(5, 10000, 1<<16)
	x, _ := Build(storage.NewColumn("v", data))
	if got := x.CheckedFraction(10, 5); got != 0 {
		t.Fatalf("inverted range checked %v", got)
	}
	if got := x.CheckedFraction(0, 1<<16); got < 0.99 {
		t.Fatalf("full range should check everything, got %v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(storage.NewColumn("v", nil)); err == nil {
		t.Fatal("empty column accepted")
	}
	g, _ := storage.NewColumnGroup([]string{"a", "b"}, [][]storage.Value{{1}, {2}})
	if _, err := Build(g.Column("a")); err == nil {
		t.Fatal("strided column accepted")
	}
}

func TestSharedSelect(t *testing.T) {
	data := clustered(6, 20000, 1<<18)
	x, _ := Build(storage.NewColumn("v", data))
	ranges := [][2]storage.Value{{0, 100}, {1 << 17, 1<<17 + 5000}, {1 << 19, 1 << 20}}
	results := x.SharedSelect(data, ranges)
	for qi, r := range ranges {
		if !equalIDs(results[qi], refIDs(data, r[0], r[1])) {
			t.Fatalf("query %d disagrees", qi)
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw int16, sortIt bool) bool {
		var data []storage.Value
		if sortIt {
			data = clustered(seed, 2000, 1<<14)
		} else {
			data = uniform(seed, 2000, 1<<14)
		}
		lo, hi := storage.Value(loRaw), storage.Value(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		x, err := Build(storage.NewColumn("v", data))
		if err != nil {
			return false
		}
		return equalIDs(x.Select(data, lo, hi, nil), refIDs(data, lo, hi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantColumn(t *testing.T) {
	data := make([]storage.Value, 1000)
	for i := range data {
		data[i] = 42
	}
	x, err := Build(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Select(data, 42, 42, nil); len(got) != 1000 {
		t.Fatalf("constant column select found %d rows", len(got))
	}
	if got := x.Select(data, 43, 100, nil); len(got) != 0 {
		t.Fatalf("out-of-domain select found %d rows", len(got))
	}
	if x.Entries() != 1 {
		t.Fatalf("constant column should RLE to one entry, got %d", x.Entries())
	}
}

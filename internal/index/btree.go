// Package index implements the main-memory optimized B+-tree secondary
// index of Section 2.3: a tree with hardware-tuned fanout whose leaves
// hold (value, rowID) pairs, supporting bulk loading from a column,
// incremental inserts (for delta merges), range probes that emit rowIDs,
// and shared multi-query probes across hardware threads.
package index

import (
	"fmt"
	"sort"

	"fastcolumns/internal/storage"
)

// DefaultFanout is the paper's memory-optimized branching factor (b=21,
// found experimentally on its primary server). Disk-era trees used ~250.
const DefaultFanout = 21

type node struct {
	id       int // stable identity for simulation traces
	keys     []storage.Value
	children []*node         // internal nodes only
	rowIDs   []storage.RowID // leaves only: rowIDs[i] belongs to keys[i]
	next     *node           // leaf chain
	leaf     bool
}

// Tree is a secondary B+-tree over one column. It stores a copy of the
// indexed attribute in its leaves together with the positions of the
// values in the base column, so a select can run entirely inside the
// index (Section 2.3, "Selects Using a Secondary Index").
type Tree struct {
	fanout    int
	root      *node
	firstLeaf *node
	height    int // number of levels including the leaf level
	count     int
	nextID    int // next node id for simulation traces
}

// New creates an empty tree with the given fanout (minimum 3;
// DefaultFanout if fanout <= 0).
func New(fanout int) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 3 {
		fanout = 3
	}
	leaf := &node{leaf: true}
	return &Tree{fanout: fanout, root: leaf, firstLeaf: leaf, height: 1, nextID: 1}
}

// Build bulk-loads a tree of the given fanout from a column view: every
// (value, rowID) pair, sorted by value (ties by rowID), packed into
// fanout-full leaves with the internal levels built bottom-up.
func Build(c *storage.Column, fanout int) *Tree {
	n := c.Len()
	keys := make([]storage.Value, n)
	ids := make([]storage.RowID, n)
	for i := 0; i < n; i++ {
		keys[i] = c.Get(i)
		ids[i] = storage.RowID(i)
	}
	sortPairs(keys, ids)
	return buildFromSorted(keys, ids, fanout)
}

// BuildFromSorted bulk-loads from pre-sorted (key, rowID) pairs. The keys
// must be ascending; ties must be ordered by rowID. Unsorted input is
// rejected with an error — a tree built over it would misbehave silently
// on every later probe, which is strictly worse than failing the load.
func BuildFromSorted(keys []storage.Value, ids []storage.RowID, fanout int) (*Tree, error) {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] || (keys[i] == keys[i-1] && ids[i] < ids[i-1]) {
			return nil, fmt.Errorf("index: BuildFromSorted input unsorted at %d", i)
		}
	}
	return buildFromSorted(keys, ids, fanout), nil
}

func buildFromSorted(keys []storage.Value, ids []storage.RowID, fanout int) *Tree {
	t := New(fanout)
	n := len(keys)
	if n == 0 {
		return t
	}
	// Pack leaves.
	var leaves []*node
	for lo := 0; lo < n; lo += t.fanout {
		hi := min(lo+t.fanout, n)
		leaf := &node{
			id:     t.newID(),
			leaf:   true,
			keys:   append([]storage.Value(nil), keys[lo:hi]...),
			rowIDs: append([]storage.RowID(nil), ids[lo:hi]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = leaf
		}
		leaves = append(leaves, leaf)
	}
	t.firstLeaf = leaves[0]
	t.count = n
	// Build internal levels bottom-up. An internal node's key i is the
	// smallest key reachable under child i+1 (the usual separator rule).
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var parents []*node
		for lo := 0; lo < len(level); lo += t.fanout {
			hi := min(lo+t.fanout, len(level))
			p := &node{id: t.newID(), children: append([]*node(nil), level[lo:hi]...)}
			for _, child := range p.children[1:] {
				p.keys = append(p.keys, smallestKey(child))
			}
			parents = append(parents, p)
		}
		level = parents
		t.height++
	}
	t.root = level[0]
	return t
}

// newID hands out the next stable node id.
func (t *Tree) newID() int {
	id := t.nextID
	t.nextID++
	return id
}

func smallestKey(n *node) storage.Value {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// sortPairs sorts keys ascending with ids permuted alongside, ties broken
// by id so equal-key runs emit rowIDs in ascending order.
func sortPairs(keys []storage.Value, ids []storage.RowID) {
	s := pairSlice{keys: keys, ids: ids}
	sort.Sort(s)
}

type pairSlice struct {
	keys []storage.Value
	ids  []storage.RowID
}

func (p pairSlice) Len() int { return len(p.keys) }
func (p pairSlice) Less(i, j int) bool {
	return p.keys[i] < p.keys[j] || (p.keys[i] == p.keys[j] && p.ids[i] < p.ids[j])
}
func (p pairSlice) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.ids[i], p.ids[j] = p.ids[j], p.ids[i]
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels, counting the leaf level.
func (t *Tree) Height() int { return t.height }

// Fanout returns the tree's branching factor b.
func (t *Tree) Fanout() int { return t.fanout }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	c := 0
	for l := t.firstLeaf; l != nil; l = l.next {
		c++
	}
	return c
}

// Insert adds one (key, rowID) entry, splitting nodes as needed. It is
// how delta merges extend the index without a rebuild.
func (t *Tree) Insert(key storage.Value, id storage.RowID) {
	sepKey, right := t.insert(t.root, key, id)
	if right != nil {
		t.root = &node{
			id:       t.newID(),
			keys:     []storage.Value{sepKey},
			children: []*node{t.root, right},
		}
		t.height++
	}
	t.count++
}

// insert descends, inserts, and returns a separator plus new right
// sibling when the child split.
func (t *Tree) insert(n *node, key storage.Value, id storage.RowID) (storage.Value, *node) {
	if n.leaf {
		// Position: after all equal keys with smaller ids.
		i := sort.Search(len(n.keys), func(i int) bool {
			return n.keys[i] > key || (n.keys[i] == key && n.rowIDs[i] >= id)
		})
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rowIDs = append(n.rowIDs, 0)
		copy(n.rowIDs[i+1:], n.rowIDs[i:])
		n.rowIDs[i] = id
		if len(n.keys) <= t.fanout {
			return 0, nil
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		right := &node{
			id:     t.newID(),
			leaf:   true,
			keys:   append([]storage.Value(nil), n.keys[mid:]...),
			rowIDs: append([]storage.RowID(nil), n.rowIDs[mid:]...),
			next:   n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.rowIDs = n.rowIDs[:mid:mid]
		n.next = right
		return right.keys[0], right
	}

	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	sepKey, right := t.insert(n.children[ci], key, id)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sepKey
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.fanout {
		return 0, nil
	}
	// Split the internal node: middle key moves up.
	midKey := len(n.keys) / 2
	up := n.keys[midKey]
	rightNode := &node{
		id:       t.newID(),
		keys:     append([]storage.Value(nil), n.keys[midKey+1:]...),
		children: append([]*node(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return up, rightNode
}

package index

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

func randomColumn(seed int64, n int, domain int32) *storage.Column {
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	return storage.NewColumn("v", data)
}

// refRange returns the rowIDs qualifying for [lo, hi], in rowID order.
func refRange(c *storage.Column, lo, hi storage.Value) []storage.RowID {
	var out []storage.RowID
	for i := 0; i < c.Len(); i++ {
		if v := c.Get(i); v >= lo && v <= hi {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func equalIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildAndSelect(t *testing.T) {
	c := randomColumn(1, 20000, 5000)
	tr := Build(c, 21)
	if tr.Len() != 20000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, r := range [][2]storage.Value{
		{100, 300}, {0, 4999}, {4999, 4999}, {6000, 7000}, {-5, -1}, {2500, 2500},
	} {
		got := tr.Select(r[0], r[1], nil)
		want := refRange(c, r[0], r[1])
		if !equalIDs(got, want) {
			t.Fatalf("Select(%d,%d): %d rows, want %d", r[0], r[1], len(got), len(want))
		}
	}
}

func TestSelectOutputSortedByRowID(t *testing.T) {
	c := randomColumn(2, 5000, 100) // heavy duplicates
	tr := Build(c, 8)
	out := tr.Select(10, 50, nil)
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("Select output not in rowID order at %d", i)
		}
	}
}

func TestRangeRowIDsInKeyOrder(t *testing.T) {
	c := randomColumn(3, 3000, 1000)
	tr := Build(c, 16)
	out := tr.RangeRowIDs(100, 900, nil)
	prev := storage.Value(math.MinInt32)
	for _, id := range out {
		v := c.Get(int(id))
		if v < prev {
			t.Fatalf("leaf walk out of key order: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestTreeHeightMatchesFanout(t *testing.T) {
	n := 10000
	for _, b := range []int{4, 21, 64, 250} {
		tr := Build(randomColumn(4, n, 1<<20), b)
		// Height is ~ 1 + ceil(log_b(leaves)); allow one level of slack for
		// packing effects.
		leaves := tr.Leaves()
		wantLeaves := (n + b - 1) / b
		if leaves != wantLeaves {
			t.Fatalf("b=%d: leaves=%d want %d", b, leaves, wantLeaves)
		}
		maxH := 2 + int(math.Ceil(math.Log(float64(leaves))/math.Log(float64(b))))
		if tr.Height() > maxH {
			t.Fatalf("b=%d: height %d exceeds expected %d", b, tr.Height(), maxH)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(21)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Select(0, 100, nil); len(got) != 0 {
		t.Fatalf("empty tree Select = %v", got)
	}
	if tr.RangeCount(0, 100) != 0 {
		t.Fatal("empty tree RangeCount != 0")
	}
}

func TestInsertMatchesBulkLoad(t *testing.T) {
	c := randomColumn(5, 4000, 500)
	bulk := Build(c, 11)
	inc := New(11)
	for i := 0; i < c.Len(); i++ {
		inc.Insert(c.Get(i), storage.RowID(i))
	}
	if inc.Len() != bulk.Len() {
		t.Fatalf("incremental Len=%d bulk Len=%d", inc.Len(), bulk.Len())
	}
	for _, r := range [][2]storage.Value{{0, 499}, {100, 120}, {250, 250}} {
		a := inc.Select(r[0], r[1], nil)
		b := bulk.Select(r[0], r[1], nil)
		if !equalIDs(a, b) {
			t.Fatalf("range %v: incremental %d rows, bulk %d rows", r, len(a), len(b))
		}
	}
}

func TestInsertIntoBulkLoadedTree(t *testing.T) {
	// The delta-merge path: extend a bulk-loaded index incrementally.
	c := randomColumn(6, 2000, 300)
	tr := Build(c, 21)
	extra := []storage.Value{50, 299, 0, 150}
	for i, v := range extra {
		tr.Insert(v, storage.RowID(2000+i))
	}
	if tr.Len() != 2004 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Select(150, 150, nil)
	want := refRange(c, 150, 150)
	want = append(want, 2003)
	if !equalIDs(got, want) {
		t.Fatalf("post-insert Select(150,150) = %v, want %v", got, want)
	}
}

func TestRangeCountAgreesWithSelect(t *testing.T) {
	c := randomColumn(7, 10000, 2000)
	tr := Build(c, 21)
	for _, r := range [][2]storage.Value{{0, 1999}, {500, 600}, {1999, 1999}, {5000, 5100}} {
		if got, want := tr.RangeCount(r[0], r[1]), len(tr.Select(r[0], r[1], nil)); got != want {
			t.Fatalf("RangeCount(%v) = %d, Select size = %d", r, got, want)
		}
	}
}

func TestRangeWithStats(t *testing.T) {
	c := randomColumn(8, 50000, 1<<20)
	tr := Build(c, 21)
	out, st := tr.RangeWithStats(0, 1<<18, nil)
	if st.EntriesRead != len(out) {
		t.Fatalf("EntriesRead=%d, result size %d", st.EntriesRead, len(out))
	}
	if st.LevelsVisited != tr.Height() {
		t.Fatalf("LevelsVisited=%d, height %d", st.LevelsVisited, tr.Height())
	}
	// ~1/4 of a uniformly random domain qualifies; leaves touched must be
	// about result/fanout.
	minLeaves := st.EntriesRead / tr.Fanout()
	if st.LeavesTouched < minLeaves {
		t.Fatalf("LeavesTouched=%d below minimum %d", st.LeavesTouched, minLeaves)
	}
	if st.LeavesTouched > minLeaves+2+st.EntriesRead/tr.Fanout() {
		t.Fatalf("LeavesTouched=%d implausibly high (entries %d)", st.LeavesTouched, st.EntriesRead)
	}
	want := refRange(c, 0, 1<<18)
	SortRowIDs(out)
	if !equalIDs(out, want) {
		t.Fatal("RangeWithStats result disagrees with reference")
	}
	// Empty range: no events.
	_, st = tr.RangeWithStats(10, 5, nil)
	if st.LevelsVisited != 0 || st.LeavesTouched != 0 {
		t.Fatalf("inverted range should count nothing: %+v", st)
	}
}

func TestSharedSelect(t *testing.T) {
	c := randomColumn(9, 30000, 10000)
	tr := Build(c, 21)
	ranges := [][2]storage.Value{
		{0, 100}, {5000, 5200}, {9999, 9999}, {20000, 30000}, {0, 9999},
	}
	for _, workers := range []int{0, 1, 3, 16} {
		results := tr.SharedSelect(ranges, workers)
		if len(results) != len(ranges) {
			t.Fatalf("got %d result sets", len(results))
		}
		for qi, r := range ranges {
			want := refRange(c, r[0], r[1])
			if !equalIDs(results[qi], want) {
				t.Fatalf("workers=%d query %d disagrees", workers, qi)
			}
		}
	}
}

// TestSharedSelectContextPooled pins the morsel probe path to the
// reference, with one pool and arena shared across rounds and results
// released between them — a double-owned buffer would corrupt a later
// round.
func TestSharedSelectContextPooled(t *testing.T) {
	c := randomColumn(11, 30000, 10000)
	tr := Build(c, 21)
	ranges := [][2]storage.Value{
		{0, 100}, {5000, 5200}, {9999, 9999}, {20000, 30000}, {0, 9999}, {7, 3},
	}
	pool := rt.NewPool(3, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	hints := []int{10, 10, 10, 0, 30000, 0}
	for round := 0; round < 5; round++ {
		res, err := tr.SharedSelectContext(context.Background(), pool, arena, ranges, hints)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.RowIDs) != len(ranges) {
			t.Fatalf("got %d result sets", len(res.RowIDs))
		}
		for qi, r := range ranges {
			if !equalIDs(res.RowIDs[qi], refRange(c, r[0], r[1])) {
				t.Fatalf("round %d query %d disagrees", round, qi)
			}
		}
		res.Release()
	}

	// Cancellation before dispatch answers nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.SharedSelectContext(ctx, pool, arena, ranges, nil); err == nil {
		t.Fatal("pre-cancelled context did not error")
	}
}

func TestBuildFromSortedValidates(t *testing.T) {
	if _, err := BuildFromSorted([]storage.Value{5, 3}, []storage.RowID{0, 1}, 8); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	// Equal keys with descending rowIDs violate the tie order.
	if _, err := BuildFromSorted([]storage.Value{4, 4}, []storage.RowID{2, 1}, 8); err == nil {
		t.Fatal("descending tie rowIDs accepted")
	}
}

func TestBuildFromSortedTiesByRowID(t *testing.T) {
	keys := []storage.Value{1, 1, 1, 2}
	ids := []storage.RowID{3, 7, 9, 1}
	tr, err := BuildFromSorted(keys, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.RangeRowIDs(1, 1, nil)
	if !equalIDs(got, []storage.RowID{3, 7, 9}) {
		t.Fatalf("duplicate-key walk = %v", got)
	}
}

func TestTreeQuickProperty(t *testing.T) {
	// Any random column, any range: the index agrees with the reference
	// filter, for both bulk-loaded and insert-built trees.
	f := func(seed int64, loRaw, hiRaw int16, fanoutSeed uint8) bool {
		fanout := 3 + int(fanoutSeed)%60
		c := randomColumn(seed, 1500, 1<<12)
		lo, hi := storage.Value(loRaw), storage.Value(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := refRange(c, lo, hi)
		bulk := Build(c, fanout)
		if !equalIDs(bulk.Select(lo, hi, nil), want) {
			return false
		}
		inc := New(fanout)
		for i := 0; i < c.Len(); i++ {
			inc.Insert(c.Get(i), storage.RowID(i))
		}
		return equalIDs(inc.Select(lo, hi, nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafChainCoversAllEntries(t *testing.T) {
	c := randomColumn(10, 7777, 1<<15)
	tr := Build(c, 13)
	var walked []storage.Value
	all := tr.RangeRowIDs(math.MinInt32, math.MaxInt32, nil)
	if len(all) != c.Len() {
		t.Fatalf("full walk visited %d entries, want %d", len(all), c.Len())
	}
	for _, id := range all {
		walked = append(walked, c.Get(int(id)))
	}
	if !sort.SliceIsSorted(walked, func(i, j int) bool { return walked[i] < walked[j] }) {
		t.Fatal("full leaf walk not in key order")
	}
}

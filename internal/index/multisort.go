package index

import (
	"container/heap"
	"sort"

	"fastcolumns/internal/storage"
)

// SortRowIDsMultiway sorts a result set into rowID order with a W-way
// merge sort — the scalar stand-in for the SIMD-register merge sort of
// Appendix D. The cost model's Equation 26 describes exactly this
// algorithm: sort N/W runs of W in-register (here: insertion sort), then
// W-way merge, giving (S_tot*N/W)*log(S_tot*N/W) merge steps plus
// S_tot*N*log(W) intra-register work.
//
// w < 2 falls back to the standard sort.
func SortRowIDsMultiway(ids []storage.RowID, w int) {
	if w < 2 || len(ids) <= w {
		SortRowIDs(ids)
		return
	}
	// Phase 1: sort runs of w "in register".
	for lo := 0; lo < len(ids); lo += w {
		hi := min(lo+w, len(ids))
		insertionSort(ids[lo:hi])
	}
	// Phase 2: repeatedly w-way merge runs until one remains.
	runLen := w
	buf := make([]storage.RowID, len(ids))
	src, dst := ids, buf
	for runLen < len(ids) {
		mergeWidth := runLen * w
		for lo := 0; lo < len(src); lo += mergeWidth {
			hi := min(lo+mergeWidth, len(src))
			mergeKWay(src[lo:hi], dst[lo:hi], runLen)
		}
		src, dst = dst, src
		runLen = mergeWidth
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

func insertionSort(a []storage.RowID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// runHeap is a min-heap of run cursors for the k-way merge.
type runHeap struct {
	src  []storage.RowID
	pos  []int // cursor per run
	ends []int // exclusive end per run
	idx  []int // heap of run indices
}

func (h *runHeap) Len() int { return len(h.idx) }
func (h *runHeap) Less(i, j int) bool {
	return h.src[h.pos[h.idx[i]]] < h.src[h.pos[h.idx[j]]]
}
func (h *runHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *runHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *runHeap) Pop() interface{} {
	last := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return last
}

// mergeKWay merges the sorted runs of length runLen inside src into dst.
func mergeKWay(src, dst []storage.RowID, runLen int) {
	runs := (len(src) + runLen - 1) / runLen
	if runs == 1 {
		copy(dst, src)
		return
	}
	h := &runHeap{src: src, pos: make([]int, runs), ends: make([]int, runs)}
	for r := 0; r < runs; r++ {
		h.pos[r] = r * runLen
		h.ends[r] = min((r+1)*runLen, len(src))
		if h.pos[r] < h.ends[r] {
			h.idx = append(h.idx, r)
		}
	}
	heap.Init(h)
	for out := 0; h.Len() > 0; out++ {
		r := h.idx[0]
		dst[out] = src[h.pos[r]]
		h.pos[r]++
		if h.pos[r] >= h.ends[r] {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
}

// sortedRowIDs reports whether ids is in ascending rowID order (test and
// verification helper).
func sortedRowIDs(ids []storage.RowID) bool {
	return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcolumns/internal/storage"
)

func TestMultiwaySortMatchesStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 15, 16, 17, 64, 1000, 4097} {
		for _, w := range []int{1, 2, 4, 8, 16} {
			a := make([]storage.RowID, n)
			for i := range a {
				a[i] = storage.RowID(rng.Uint32())
			}
			b := append([]storage.RowID(nil), a...)
			SortRowIDsMultiway(a, w)
			SortRowIDs(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d w=%d: mismatch at %d (%d vs %d)", n, w, i, a[i], b[i])
				}
			}
		}
	}
}

func TestMultiwaySortProperty(t *testing.T) {
	f := func(raw []uint32, wSeed uint8) bool {
		w := 2 + int(wSeed)%7
		ids := make([]storage.RowID, len(raw))
		for i, v := range raw {
			ids[i] = storage.RowID(v)
		}
		// Sorting must preserve the multiset: compare against a sorted copy.
		want := append([]storage.RowID(nil), ids...)
		SortRowIDs(want)
		SortRowIDsMultiway(ids, w)
		if !sortedRowIDs(ids) {
			return false
		}
		for i := range ids {
			if ids[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiwaySortDuplicates(t *testing.T) {
	ids := []storage.RowID{5, 5, 5, 1, 1, 9, 9, 9, 9, 0}
	SortRowIDsMultiway(ids, 4)
	want := []storage.RowID{0, 1, 1, 5, 5, 5, 9, 9, 9, 9}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("duplicates mishandled: %v", ids)
		}
	}
}

func TestMultiwaySortAlreadySorted(t *testing.T) {
	ids := make([]storage.RowID, 1000)
	for i := range ids {
		ids[i] = storage.RowID(i)
	}
	SortRowIDsMultiway(ids, 4)
	if !sortedRowIDs(ids) {
		t.Fatal("sorted input broken")
	}
}

package index

import (
	"context"
	"sort"
	"sync"

	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// RangeRowIDs appends the rowIDs of every entry with lo <= key <= hi to
// out, in key order (ties in rowID order) — the natural order a leaf walk
// produces. The caller sorts by rowID if the next operator needs a
// scan-compatible result (Section 2.3, "Sorting the Result Set").
func (t *Tree) RangeRowIDs(lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	if lo > hi || t.count == 0 {
		return out
	}
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return out
			}
			out = append(out, leaf.rowIDs[i])
		}
		leaf = leaf.next
		i = 0
	}
	return out
}

// RangeRowIDsLimit is RangeRowIDs with an early-abort budget: it stops
// after appending limit rowIDs and reports whether the walk completed.
// Adaptive access paths use it to probe optimistically and abandon the
// index when the result outgrows the estimate that justified probing.
func (t *Tree) RangeRowIDsLimit(lo, hi storage.Value, limit int, out []storage.RowID) ([]storage.RowID, bool) {
	if lo > hi || t.count == 0 {
		return out, true
	}
	taken := 0
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return out, true
			}
			if taken >= limit {
				return out, false
			}
			out = append(out, leaf.rowIDs[i])
			taken++
		}
		leaf = leaf.next
		i = 0
	}
	return out, true
}

// RangeCount returns the number of entries in [lo, hi] without
// materializing them (used by statistics and tests).
func (t *Tree) RangeCount(lo, hi storage.Value) int {
	if lo > hi || t.count == 0 {
		return 0
	}
	n := 0
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return n
			}
			n++
		}
		leaf = leaf.next
		i = 0
	}
	return n
}

// seek descends to the first leaf position whose key is >= lo. The
// descent takes the leftmost viable child on separator equality: a
// separator equal to lo means duplicates of lo may extend into the child
// to its left, and the leaf chain recovers if that child holds none.
func (t *Tree) seek(lo storage.Value) (*node, int) {
	n := t.root
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[ci]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if i == len(n.keys) {
		return n.next, 0
	}
	return n, i
}

// Select answers one select operator through the index: probe, then sort
// the result into rowID order so it is directly interchangeable with a
// scan's output.
func (t *Tree) Select(lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	start := len(out)
	out = t.RangeRowIDs(lo, hi, out)
	SortRowIDs(out[start:])
	return out
}

// SortRowIDs sorts a result set into rowID order — the SC term of the
// cost model.
func SortRowIDs(ids []storage.RowID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// ProbeStats counts the work one range probe performs; the simulated-time
// executor charges hardware costs per counted event.
type ProbeStats struct {
	// LevelsVisited is the number of tree levels the descent touched.
	LevelsVisited int
	// InternalKeysRead counts separator keys compared during the descent.
	InternalKeysRead int
	// LeavesTouched is the number of distinct leaf nodes visited.
	LeavesTouched int
	// EntriesRead is the number of (key, rowID) pairs streamed out of the
	// leaves (the qualifying result size).
	EntriesRead int
}

// RangeWithStats is RangeRowIDs instrumented with the event counts the
// memory-hierarchy simulator charges for.
func (t *Tree) RangeWithStats(lo, hi storage.Value, out []storage.RowID) ([]storage.RowID, ProbeStats) {
	var st ProbeStats
	if lo > hi || t.count == 0 {
		return out, st
	}
	n := t.root
	for !n.leaf {
		st.LevelsVisited++
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		// A linear intra-node search reads ci+1 separators on average; the
		// model charges b/2 sequential key reads per level.
		st.InternalKeysRead += ci + 1
		n = n.children[ci]
	}
	st.LevelsVisited++
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if i == len(n.keys) {
		n = n.next
		i = 0
	}
	for n != nil {
		st.LeavesTouched++
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return out, st
			}
			out = append(out, n.rowIDs[i])
			st.EntriesRead++
		}
		n = n.next
		i = 0
	}
	return out, st
}

// probeJob is one pooled shared-index-scan dispatch: one morsel per
// range query. It implements runtime.Job. Probe cost is proportional
// to a query's result cardinality, so a skewed batch makes the old
// static query partition straggle; with one morsel per query, idle
// workers steal the cheap probes away from whoever is walking the long
// leaf chain.
type probeJob struct {
	t      *Tree
	ranges [][2]storage.Value
	hints  []int
	arena  *rt.Arena
	cells  []*rt.Buf
}

var probeJobPool = sync.Pool{New: func() any { return new(probeJob) }}

// RunMorsel probes range qi and sorts its result into rowID order.
//
//fclint:owns — the job owns its cells until Finish attaches them to the pooled result set.
func (j *probeJob) RunMorsel(qi int) {
	hint := 0
	if qi < len(j.hints) {
		hint = j.hints[qi]
	}
	b := j.arena.GetBuf(hint)
	b.IDs = j.t.Select(j.ranges[qi][0], j.ranges[qi][1], b.IDs)
	j.cells[qi] = b
}

// SharedSelectContext answers a batch of q range queries over the
// index, the shared index scan of Figure 2(c)/3(b): each query is one
// morsel on the pool, each probing the tree independently, with
// natural sharing of the top levels left to the CPU caches. Results
// are per query, sorted by rowID, in buffers checked out of the arena
// (sized by hints — expected result rows per query). pool and arena
// may be nil; cancellation is observed between probes.
func (t *Tree) SharedSelectContext(ctx context.Context, pool *rt.Pool, arena *rt.Arena,
	ranges [][2]storage.Value, hints []int) (*rt.Results, error) {
	j := probeJobPool.Get().(*probeJob)
	j.t, j.ranges, j.hints, j.arena = t, ranges, hints, arena
	if cap(j.cells) < len(ranges) {
		j.cells = make([]*rt.Buf, len(ranges))
	} else {
		j.cells = j.cells[:len(ranges)]
		for i := range j.cells {
			j.cells[i] = nil
		}
	}
	err := pool.Dispatch(ctx, len(ranges), j)
	var res *rt.Results
	if err == nil {
		res = arena.GetResults(len(ranges))
		for qi, cell := range j.cells {
			if cell != nil {
				res.Attach(qi, cell)
				j.cells[qi] = nil
			}
		}
	} else {
		for qi, cell := range j.cells {
			if cell != nil {
				arena.PutBuf(cell)
				j.cells[qi] = nil
			}
		}
	}
	j.cells = j.cells[:0]
	j.t, j.ranges, j.hints, j.arena = nil, nil, nil, nil
	probeJobPool.Put(j)
	return res, err
}

// SharedSelect is the compatibility wrapper over SharedSelectContext:
// morsels dispatch on the process-wide default pool with plainly
// allocated buffers. workers is advisory: 1 selects the serial probe
// loop.
func (t *Tree) SharedSelect(ranges [][2]storage.Value, workers int) [][]storage.RowID {
	if len(ranges) == 0 {
		return make([][]storage.RowID, 0)
	}
	if workers == 1 || len(ranges) == 1 {
		results := make([][]storage.RowID, len(ranges))
		for qi, r := range ranges {
			results[qi] = t.Select(r[0], r[1], nil)
		}
		return results
	}
	res, err := t.sharedSelectPool(rt.Default(), ranges)
	if err != nil {
		// Only injected morsel faults can fail a background-context
		// dispatch; answer the batch serially rather than dropping it.
		results := make([][]storage.RowID, len(ranges))
		for qi, r := range ranges {
			results[qi] = t.Select(r[0], r[1], nil)
		}
		return results
	}
	//fclint:ignore arenaescape compat wrapper runs with a nil arena, so RowIDs are heap-backed, never pooled
	return res.RowIDs
}

// sharedSelectPool is SharedSelectContext without cancellation.
func (t *Tree) sharedSelectPool(pool *rt.Pool, ranges [][2]storage.Value) (*rt.Results, error) {
	return t.SharedSelectContext(context.Background(), pool, nil, ranges, nil)
}

package index

import (
	"runtime"
	"sort"
	"sync"

	"fastcolumns/internal/storage"
)

// RangeRowIDs appends the rowIDs of every entry with lo <= key <= hi to
// out, in key order (ties in rowID order) — the natural order a leaf walk
// produces. The caller sorts by rowID if the next operator needs a
// scan-compatible result (Section 2.3, "Sorting the Result Set").
func (t *Tree) RangeRowIDs(lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	if lo > hi || t.count == 0 {
		return out
	}
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return out
			}
			out = append(out, leaf.rowIDs[i])
		}
		leaf = leaf.next
		i = 0
	}
	return out
}

// RangeRowIDsLimit is RangeRowIDs with an early-abort budget: it stops
// after appending limit rowIDs and reports whether the walk completed.
// Adaptive access paths use it to probe optimistically and abandon the
// index when the result outgrows the estimate that justified probing.
func (t *Tree) RangeRowIDsLimit(lo, hi storage.Value, limit int, out []storage.RowID) ([]storage.RowID, bool) {
	if lo > hi || t.count == 0 {
		return out, true
	}
	taken := 0
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return out, true
			}
			if taken >= limit {
				return out, false
			}
			out = append(out, leaf.rowIDs[i])
			taken++
		}
		leaf = leaf.next
		i = 0
	}
	return out, true
}

// RangeCount returns the number of entries in [lo, hi] without
// materializing them (used by statistics and tests).
func (t *Tree) RangeCount(lo, hi storage.Value) int {
	if lo > hi || t.count == 0 {
		return 0
	}
	n := 0
	leaf, i := t.seek(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return n
			}
			n++
		}
		leaf = leaf.next
		i = 0
	}
	return n
}

// seek descends to the first leaf position whose key is >= lo. The
// descent takes the leftmost viable child on separator equality: a
// separator equal to lo means duplicates of lo may extend into the child
// to its left, and the leaf chain recovers if that child holds none.
func (t *Tree) seek(lo storage.Value) (*node, int) {
	n := t.root
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[ci]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if i == len(n.keys) {
		return n.next, 0
	}
	return n, i
}

// Select answers one select operator through the index: probe, then sort
// the result into rowID order so it is directly interchangeable with a
// scan's output.
func (t *Tree) Select(lo, hi storage.Value, out []storage.RowID) []storage.RowID {
	start := len(out)
	out = t.RangeRowIDs(lo, hi, out)
	SortRowIDs(out[start:])
	return out
}

// SortRowIDs sorts a result set into rowID order — the SC term of the
// cost model.
func SortRowIDs(ids []storage.RowID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// ProbeStats counts the work one range probe performs; the simulated-time
// executor charges hardware costs per counted event.
type ProbeStats struct {
	// LevelsVisited is the number of tree levels the descent touched.
	LevelsVisited int
	// InternalKeysRead counts separator keys compared during the descent.
	InternalKeysRead int
	// LeavesTouched is the number of distinct leaf nodes visited.
	LeavesTouched int
	// EntriesRead is the number of (key, rowID) pairs streamed out of the
	// leaves (the qualifying result size).
	EntriesRead int
}

// RangeWithStats is RangeRowIDs instrumented with the event counts the
// memory-hierarchy simulator charges for.
func (t *Tree) RangeWithStats(lo, hi storage.Value, out []storage.RowID) ([]storage.RowID, ProbeStats) {
	var st ProbeStats
	if lo > hi || t.count == 0 {
		return out, st
	}
	n := t.root
	for !n.leaf {
		st.LevelsVisited++
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		// A linear intra-node search reads ci+1 separators on average; the
		// model charges b/2 sequential key reads per level.
		st.InternalKeysRead += ci + 1
		n = n.children[ci]
	}
	st.LevelsVisited++
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if i == len(n.keys) {
		n = n.next
		i = 0
	}
	for n != nil {
		st.LeavesTouched++
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return out, st
			}
			out = append(out, n.rowIDs[i])
			st.EntriesRead++
		}
		n = n.next
		i = 0
	}
	return out, st
}

// SharedSelect answers a batch of q range queries over the index, the
// shared index scan of Figure 2(c)/3(b): queries are spread across
// workers (hardware threads), each probing the tree independently, with
// natural sharing of the top levels left to the CPU caches. Results are
// per query, sorted by rowID. workers <= 0 selects GOMAXPROCS.
func (t *Tree) SharedSelect(ranges [][2]storage.Value, workers int) [][]storage.RowID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([][]storage.RowID, len(ranges))
	if len(ranges) == 0 {
		return results
	}
	if workers > len(ranges) {
		workers = len(ranges)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qlo := len(ranges) * w / workers
		qhi := len(ranges) * (w + 1) / workers
		if qlo == qhi {
			continue
		}
		wg.Add(1)
		go func(qlo, qhi int) {
			defer wg.Done()
			for qi := qlo; qi < qhi; qi++ {
				results[qi] = t.Select(ranges[qi][0], ranges[qi][1], nil)
			}
		}(qlo, qhi)
	}
	wg.Wait()
	return results
}

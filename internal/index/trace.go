package index

import (
	"sort"

	"fastcolumns/internal/storage"
)

// TraceKind labels a trace event.
type TraceKind int

const (
	// TraceInternal is a visit to an internal node during the descent.
	TraceInternal TraceKind = iota
	// TraceLeaf is a visit to a leaf node during the range walk.
	TraceLeaf
)

// TraceEvent is one node visit during an instrumented probe. The
// simulated-time executor charges hardware costs per event: a random
// memory access per node (hit or miss decided by its cache simulator,
// keyed on NodeID), sequential key reads for KeysRead, and leaf-bandwidth
// streaming for Entries.
type TraceEvent struct {
	Kind TraceKind
	// NodeID is the stable identity of the visited node.
	NodeID int
	// Level is the depth of the node (0 = root) for internal events.
	Level int
	// KeysRead counts separator keys compared at an internal node.
	KeysRead int
	// Entries counts (value, rowID) pairs streamed from a leaf.
	Entries int
}

// Trace runs a range probe emitting one event per node visited and
// returns the number of qualifying entries. It performs the same descent
// and leaf walk as RangeRowIDs without materializing rowIDs.
func (t *Tree) Trace(lo, hi storage.Value, visit func(TraceEvent)) int {
	if lo > hi || t.count == 0 {
		return 0
	}
	n := t.root
	level := 0
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		visit(TraceEvent{Kind: TraceInternal, NodeID: n.id, Level: level, KeysRead: ci + 1})
		n = n.children[ci]
		level++
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if i == len(n.keys) {
		n = n.next
		i = 0
	}
	total := 0
	for n != nil {
		entries := 0
		done := false
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				done = true
				break
			}
			entries++
		}
		visit(TraceEvent{Kind: TraceLeaf, NodeID: n.id, Level: level, Entries: entries})
		total += entries
		if done {
			return total
		}
		n = n.next
		i = 0
	}
	return total
}

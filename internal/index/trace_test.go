package index

import (
	"testing"

	"fastcolumns/internal/storage"
)

func TestTraceCountsMatchProbe(t *testing.T) {
	c := randomColumn(21, 30000, 1<<16)
	tr := Build(c, 21)
	for _, r := range [][2]storage.Value{
		{0, 1 << 12}, {40000, 50000}, {1 << 17, 1 << 18}, {100, 100},
	} {
		var internals, leaves, keys, entries int
		got := tr.Trace(r[0], r[1], func(ev TraceEvent) {
			switch ev.Kind {
			case TraceInternal:
				internals++
				keys += ev.KeysRead
			case TraceLeaf:
				leaves++
				entries += ev.Entries
			}
		})
		want := tr.RangeCount(r[0], r[1])
		if got != want || entries != want {
			t.Fatalf("range %v: trace total=%d entries=%d, RangeCount=%d", r, got, entries, want)
		}
		if want > 0 {
			if internals != tr.Height()-1 {
				t.Fatalf("range %v: %d internal visits, height %d", r, internals, tr.Height())
			}
			if leaves < want/tr.Fanout() {
				t.Fatalf("range %v: only %d leaves for %d entries", r, leaves, want)
			}
			if keys < internals {
				t.Fatalf("range %v: keys read %d below one per internal node", r, keys)
			}
		}
	}
}

func TestTraceEmptyRange(t *testing.T) {
	c := randomColumn(22, 1000, 100)
	tr := Build(c, 8)
	calls := 0
	got := tr.Trace(50, 40, func(TraceEvent) { calls++ })
	if got != 0 || calls != 0 {
		t.Fatalf("inverted range traced %d entries across %d events", got, calls)
	}
	// Out-of-domain range still descends but finds nothing.
	got = tr.Trace(1000, 2000, func(TraceEvent) { calls++ })
	if got != 0 {
		t.Fatalf("out-of-domain range counted %d entries", got)
	}
	if calls == 0 {
		t.Fatal("out-of-domain probe should still visit the descent path")
	}
}

func TestTraceNodeIDsStable(t *testing.T) {
	c := randomColumn(23, 5000, 1000)
	tr := Build(c, 16)
	ids1 := map[int]bool{}
	tr.Trace(100, 200, func(ev TraceEvent) { ids1[ev.NodeID] = true })
	ids2 := map[int]bool{}
	tr.Trace(100, 200, func(ev TraceEvent) { ids2[ev.NodeID] = true })
	if len(ids1) != len(ids2) {
		t.Fatalf("repeat trace visited %d nodes, first visited %d", len(ids2), len(ids1))
	}
	for id := range ids1 {
		if !ids2[id] {
			t.Fatalf("node %d missing from repeat trace", id)
		}
	}
	// Distinct probes share the root.
	var root1, root2 int
	tr.Trace(0, 10, func(ev TraceEvent) {
		if ev.Kind == TraceInternal && ev.Level == 0 {
			root1 = ev.NodeID
		}
	})
	tr.Trace(900, 999, func(ev TraceEvent) {
		if ev.Kind == TraceInternal && ev.Level == 0 {
			root2 = ev.NodeID
		}
	})
	if root1 != root2 {
		t.Fatalf("root id differs between probes: %d vs %d", root1, root2)
	}
}

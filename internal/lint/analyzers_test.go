package lint

import (
	"path/filepath"
	"testing"
)

func TestNopanicFixture(t *testing.T) { runFixture(t, NewNopanic(), "nopanic") }

func TestCtxflowFixture(t *testing.T) { runFixture(t, NewCtxflow(), "ctxflow") }

func TestAtomicfieldFixture(t *testing.T) { runFixture(t, NewAtomicfield(), "atomicfield") }

func TestFloatcmpFixture(t *testing.T) {
	// The fixture package's import path is "floatcmp", so target that
	// instead of the default internal/model.
	runFixture(t, &Floatcmp{Target: []string{"floatcmp"}}, "floatcmp")
}

func TestErrdropFixture(t *testing.T) { runFixture(t, NewErrdrop(), "errdrop") }

func TestGospawnFixture(t *testing.T) { runFixture(t, NewGospawn(), "gospawn") }

func TestAtomicswapFixture(t *testing.T) { runFixture(t, NewAtomicswap(), "atomicswap") }

func TestPoolsafeFixture(t *testing.T) { runFixture(t, NewPoolsafe(), "poolsafe") }

func TestLockholdFixture(t *testing.T) { runFixture(t, NewLockhold(), "lockhold") }

func TestArenaescapeFixture(t *testing.T) { runFixture(t, NewArenaescape(), "arenaescape") }

// TestAtomicswapUnmarked proves the directive is the trigger: with no
// marked struct in scope the same accesses are nobody's business.
func TestAtomicswapUnmarked(t *testing.T) {
	l, pkg := loadFixture(t, "atomicfield") // mixes plain field access, no directive
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{NewAtomicswap()})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics without the directive, got %d: %v", len(diags), diags)
	}
}

// TestGospawnAllowlist proves the runtime-package allowance: the same
// spawning fixture is quiet when its path is allowed (as
// internal/runtime, the pool itself, is by default).
func TestGospawnAllowlist(t *testing.T) {
	l, pkg := loadFixture(t, "gospawn")
	a := &Gospawn{Allowed: []string{"gospawn"}}
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{a})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics for allowed package, got %d: %v", len(diags), diags)
	}
}

// TestFloatcmpOffTarget proves the analyzer is scoped: the same fixture
// produces nothing when its package is not targeted.
func TestFloatcmpOffTarget(t *testing.T) {
	l, pkg := loadFixture(t, "floatcmp")
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{NewFloatcmp()})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics off-target, got %d: %v", len(diags), diags)
	}
}

// TestNopanicAllowlist proves the fault-injection allowance: the same
// panicking fixture is quiet when its path is allowed.
func TestNopanicAllowlist(t *testing.T) {
	l, pkg := loadFixture(t, "nopanic")
	a := &Nopanic{Allowed: []string{"nopanic"}}
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{a})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics for allowed package, got %d: %v", len(diags), diags)
	}
}

// TestModuleClean is the live contract: the repo's own tree must stay
// free of findings. It is the same check `make lint` runs in CI, kept
// here too so plain `go test ./...` catches regressions.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module loader found only %d packages; the walker is likely broken", len(pkgs))
	}
	for _, d := range Run(l.Fset(), pkgs, Analyzers()) {
		t.Errorf("finding in tree: %s", d)
	}
}

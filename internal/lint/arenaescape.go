package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Arenaescape tracks views into pooled arena buffers — the IDs / W /
// RowIDs slices of internal/runtime's Buf, WordBuf, and Results wrappers
// — and flags the three ways such a view can outlive the batch that owns
// the backing memory:
//
//   - stored into a struct field reachable from outside the function
//     (a parameter, receiver, or global — locals merely become tainted),
//   - stored into a package-level variable,
//   - returned to the caller.
//
// Once the wrapper goes back to the arena, any surviving view silently
// aliases the next batch's data; this is the read-side twin of
// poolsafe's use-after-release. Functions that legitimately hand views
// to their caller (the query API returns pooled results the caller
// releases) carry the //fclint:owns directive, which permits return
// escapes and stores through parameters. internal/runtime itself is
// exempt — it implements the arena and necessarily stores views into
// its own wrappers.
//
// Taint is a forward may-analysis over local variables: a local bound to
// a slice or composite mentioning a view (or another tainted local) is
// tainted; scalar derivations (len, an indexed element) are not.
type Arenaescape struct {
	pkgs []*Package
}

// NewArenaescape returns the analyzer.
func NewArenaescape() *Arenaescape { return &Arenaescape{} }

func (*Arenaescape) Name() string { return "arenaescape" }
func (*Arenaescape) Doc() string {
	return "arena-backed slices must not escape to struct fields, package variables, or returns that outlive the batch"
}

func (a *Arenaescape) Package(pkg *Package, report Reporter) {
	a.pkgs = append(a.pkgs, pkg)
}

func (a *Arenaescape) Finish(report Reporter) {
	for _, pkg := range a.pkgs {
		if strings.HasSuffix(pkg.Path, "internal/runtime") {
			continue // the arena implementation owns its own views
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				owns := hasOwnsDirective(fd.Doc)
				forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
					a.checkFunc(pkg, body, owns, report)
				})
			}
		}
	}
}

func (a *Arenaescape) checkFunc(pkg *Package, body *ast.BlockStmt, owns bool, report Reporter) {
	info := pkg.Info
	g := NewCFG(body)
	reach := g.Reachable()

	// Candidate taint carriers: every local variable defined in the body.
	varIdx := make(map[types.Object]int)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false // literals get their own checkFunc pass
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && !v.IsField() {
				if _, seen := varIdx[v]; !seen {
					varIdx[v] = len(varIdx)
				}
			}
		}
		return true
	})

	st := &escapeState{info: info, varIdx: varIdx, owns: owns}
	if len(varIdx) > 0 {
		flow := &Flow{
			Dir: Forward, NumFacts: len(varIdx), MeetUnion: true,
			Transfer: func(b *BasicBlock, in BitSet) BitSet {
				out := in.Copy()
				for _, n := range b.Nodes {
					st.apply(n, out, nil)
				}
				return out
			},
		}
		in, _ := Solve(g, flow)
		for _, b := range g.Blocks {
			if !reach[b] {
				continue
			}
			w := in[b.Index].Copy()
			for _, n := range b.Nodes {
				st.apply(n, w, report)
			}
		}
	} else {
		// No locals at all: still check returns/stores node by node.
		w := NewBitSet(0)
		for _, b := range g.Blocks {
			if !reach[b] {
				continue
			}
			for _, n := range b.Nodes {
				st.apply(n, w, report)
			}
		}
	}
}

// escapeState evaluates taint and escapes for single nodes.
type escapeState struct {
	info   *types.Info
	varIdx map[types.Object]int
	owns   bool
}

// apply updates taint facts across node n; when report is non-nil it
// also emits escape diagnostics (the solver pass runs with report nil,
// the reporting pass replays transfer with diagnostics on).
func (st *escapeState) apply(n ast.Node, w BitSet, report Reporter) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0] // multi-value call: conservatively shared
			}
			if rhs == nil {
				continue
			}
			st.store(lhs, rhs, w, report)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						st.store(name, vs.Values[i], w, report)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		if report == nil || st.owns {
			return
		}
		for _, r := range s.Results {
			if st.tainted(r, w) {
				report(r.Pos(), "arena-backed slice is returned to the caller and outlives its batch; copy it, or mark the function //fclint:owns to transfer ownership")
			}
		}
	}
}

// store handles one lvalue ← rvalue pair: tainting locals, reporting
// stores that make a view outlive the batch.
func (st *escapeState) store(lhs, rhs ast.Expr, w BitSet, report Reporter) {
	hot := st.tainted(rhs, w)
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := st.info.Defs[id]
		if obj == nil {
			obj = st.info.Uses[id]
		}
		if i, local := st.varIdx[obj]; local {
			if hot {
				w.Set(i)
			} else {
				w.Clear(i)
			}
			return
		}
		// Not function-local: a package-level variable.
		if hot && report != nil && isPackageVar(obj) {
			report(lhs.Pos(), "arena-backed slice is stored in package variable %s and outlives its batch; copy it before publishing", id.Name)
		}
		return
	}
	if !hot {
		return
	}
	// A field, index, or dereference store: find the root. A local root
	// merely becomes tainted (the view hasn't left the function yet); a
	// parameter, receiver, global, or unresolvable root is caller-visible
	// memory — unless this function owns the transfer.
	root := rootObject(st.info, lhs)
	if i, local := st.varIdx[root]; local {
		w.Set(i)
		return
	}
	if report == nil || st.owns {
		return
	}
	if root != nil && isPackageVar(root) {
		report(lhs.Pos(), "arena-backed slice is stored under package variable %s and outlives its batch; copy it before publishing", root.Name())
		return
	}
	report(lhs.Pos(), "arena-backed slice is stored in caller-visible memory (%s) and outlives its batch; copy it, or mark the function //fclint:owns", types.ExprString(lhs))
}

// tainted reports whether evaluating e may yield (or contain) a live
// arena view: e mentions a view selector or a tainted local, and e's
// type can actually hold a slice (scalar derivations like len() or an
// indexed element are clean).
func (st *escapeState) tainted(e ast.Expr, w BitSet) bool {
	if !st.canHoldView(e) {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if st.isArenaView(x) {
				found = true
				return false
			}
			// A scalar field read (agg.Count, r.Kind) launders the taint
			// away: don't descend into the base.
			if !st.canHoldView(x) {
				return false
			}
		case *ast.IndexExpr:
			// An indexed element is a scalar copy, not a view — unless the
			// element type itself can hold a view ([][]uint32).
			if !st.canHoldView(x) {
				return false
			}
		case *ast.CallExpr:
			// A call producing a scalar (len, int64(...)) launders taint;
			// one producing a slice/struct conservatively may pass the
			// view through (FilterAt filters in place).
			if !st.canHoldView(x) {
				return false
			}
		case *ast.Ident:
			if i, ok := st.varIdx[st.info.Uses[x]]; ok && w.Has(i) {
				// A tainted local mentioned in slice-capable position.
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// canHoldView reports whether a value of e's type can carry a slice
// view: slices, structs, pointers, interfaces, maps, arrays — but not
// numbers, booleans, or strings (len(v), v[i] launder the taint away).
func (st *escapeState) canHoldView(e ast.Expr) bool {
	tv, ok := st.info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative
	}
	switch tv.Type.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Slice, *types.Struct, *types.Pointer, *types.Interface, *types.Map, *types.Array, *types.Chan:
		return true
	}
	return false
}

// isArenaView matches the selector shapes that expose pooled backing
// memory: .IDs on Buf, .W on WordBuf, .RowIDs on Results (and the
// query-layer Result mirror, which wraps the same arena slice).
func (st *escapeState) isArenaView(sel *ast.SelectorExpr) bool {
	var wrapper string
	switch sel.Sel.Name {
	case "IDs":
		wrapper = "Buf"
	case "W":
		wrapper = "WordBuf"
	case "RowIDs":
		wrapper = "Results"
	default:
		return false
	}
	tv, ok := st.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	tn := namedTypeName(t)
	if tn == nil {
		return false
	}
	if sel.Sel.Name == "RowIDs" {
		// exec.Result and fastcolumns.BatchResult re-expose Results.RowIDs
		// under the same field name.
		return tn.Name() == "Results" || tn.Name() == "Result" || tn.Name() == "BatchResult"
	}
	return tn.Name() == wrapper
}

// isPackageVar reports whether obj is a package-scoped variable.
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

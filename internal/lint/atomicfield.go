package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Atomicfield guards the stats-counter discipline: a struct field that is
// read or written through the sync/atomic functions anywhere must be
// accessed that way everywhere, across every package of the module. A
// mixed access is a data race the race detector only reports when the two
// sides actually collide under test load — exactly the kind of bug that
// survives CI and surfaces in production. (Fields typed as the atomic.*
// wrapper types are immune by construction and are ignored; this analyzer
// exists for the legacy pattern of atomic.AddInt64(&s.n, 1) against a
// plain integer field.)
type Atomicfield struct {
	atomicUses map[*types.Var][]token.Pos
	plainUses  map[*types.Var][]token.Pos
}

// NewAtomicfield returns the analyzer with empty cross-package state.
func NewAtomicfield() *Atomicfield {
	return &Atomicfield{
		atomicUses: make(map[*types.Var][]token.Pos),
		plainUses:  make(map[*types.Var][]token.Pos),
	}
}

func (*Atomicfield) Name() string { return "atomicfield" }
func (*Atomicfield) Doc() string {
	return "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere"
}

func (a *Atomicfield) Package(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		// First pass: record the &x.f operands of sync/atomic calls.
		atomicSels := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel, ok := addressedField(arg); ok {
					if fv := fieldVar(pkg.Info, sel); fv != nil {
						atomicSels[sel] = true
						a.atomicUses[fv] = append(a.atomicUses[fv], sel.Pos())
					}
				}
			}
			return true
		})
		// Second pass: every other selection of a plain-typed field is a
		// plain access.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSels[sel] {
				return true
			}
			fv := fieldVar(pkg.Info, sel)
			if fv == nil || isAtomicWrapperType(fv.Type()) {
				return true
			}
			a.plainUses[fv] = append(a.plainUses[fv], sel.Pos())
			return true
		})
	}
}

// Finish reports every plain access to a field that some package accessed
// atomically.
func (a *Atomicfield) Finish(report Reporter) {
	fields := make([]*types.Var, 0, len(a.atomicUses))
	for fv := range a.atomicUses {
		if len(a.plainUses[fv]) > 0 {
			fields = append(fields, fv)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, fv := range fields {
		poss := a.plainUses[fv]
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
		for _, pos := range poss {
			report(pos, "field %s is accessed via sync/atomic elsewhere; this plain access races with it", fv.Name())
		}
	}
}

// isAtomicFuncCall reports whether the call invokes a package-level
// function of sync/atomic (methods on the atomic.* wrapper types have a
// receiver and are excluded — they cannot be mixed with plain access).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField unwraps &x.f into the selector.
func addressedField(e ast.Expr) (*ast.SelectorExpr, bool) {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, false
	}
	sel, ok := u.X.(*ast.SelectorExpr)
	return sel, ok
}

// fieldVar resolves a selector to the struct field it selects, or nil
// when the selector is not a field selection.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isAtomicWrapperType reports whether t is one of the sync/atomic value
// types (atomic.Int64, atomic.Pointer[T], ...), whose method set is the
// only access path.
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

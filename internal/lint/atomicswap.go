package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicswapDirective is the doc-comment marker that puts a struct under
// this analyzer's protection. It is a directive comment (no space after
// //), so go/ast keeps it out of the rendered documentation.
const AtomicswapDirective = "//fclint:atomicswap"

// Atomicswap guards the hot-swap discipline introduced with the refit
// controller: a struct marked with the fclint:atomicswap directive holds
// state that is republished wholesale through an atomic pointer (the
// optimizer's Snapshot), and the only sound way to touch it is through
// the struct's own methods, which load one snapshot and read everything
// from it. A direct field access anywhere else — another package, or
// even a free function in the same package — can interleave with a
// concurrent swap and observe half-old, half-new state (e.g. a budget
// computed from the old hardware profile and the new design). The
// compiler cannot see this: the fields may be perfectly exported or the
// access may sit next door, so the invariant lives here, checked across
// every package of the module.
type Atomicswap struct {
	marked   map[*types.TypeName]bool
	accesses map[*types.TypeName][]swapAccess
}

type swapAccess struct {
	field string
	pos   token.Pos
}

// NewAtomicswap returns the analyzer with empty cross-package state.
func NewAtomicswap() *Atomicswap {
	return &Atomicswap{
		marked:   make(map[*types.TypeName]bool),
		accesses: make(map[*types.TypeName][]swapAccess),
	}
}

func (*Atomicswap) Name() string { return "atomicswap" }
func (*Atomicswap) Doc() string {
	return "fields of a struct marked " + AtomicswapDirective + " may be accessed only from its own methods; everyone else goes through the snapshot accessors"
}

func (a *Atomicswap) Package(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		// Pass 1: collect the marked struct types declared in this file.
		// Directive comments are excluded from CommentGroup.Text(), so the
		// raw list is scanned.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc, AtomicswapDirective) && !hasDirective(ts.Doc, AtomicswapDirective) {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					a.marked[tn] = true
				}
			}
		}
		// Pass 2: record every field selection on a named struct type that
		// happens outside that type's own methods. Whether the selected
		// type is marked may only become known when its defining package
		// loads, so the verdict is deferred to Finish.
		for _, decl := range f.Decls {
			var recvTN *types.TypeName
			if fd, ok := decl.(*ast.FuncDecl); ok {
				recvTN = receiverTypeName(pkg.Info, fd)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				tn := namedTypeName(s.Recv())
				if tn == nil || tn == recvTN {
					return true
				}
				a.accesses[tn] = append(a.accesses[tn], swapAccess{
					field: sel.Sel.Name, pos: sel.Sel.Pos(),
				})
				return true
			})
		}
	}
}

// Finish reports every recorded outside access to a marked struct.
func (a *Atomicswap) Finish(report Reporter) {
	names := make([]*types.TypeName, 0, len(a.marked))
	for tn := range a.marked {
		if len(a.accesses[tn]) > 0 {
			names = append(names, tn)
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Pos() < names[j].Pos() })
	for _, tn := range names {
		accs := a.accesses[tn]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, acc := range accs {
			report(acc.pos, "field %s of snapshot-protected type %s is accessed outside its methods; a concurrent hot-swap can tear this read — go through the type's accessor methods", acc.field, tn.Name())
		}
	}
}

// hasDirective reports whether the comment group carries the directive
// as a standalone comment line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// receiverTypeName resolves a method declaration to the named type of
// its receiver (through a pointer if any); nil for free functions.
func receiverTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedTypeName(tv.Type)
}

// namedTypeName unwraps pointers and returns the *types.TypeName of a
// named type, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

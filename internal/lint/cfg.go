package lint

import (
	"go/ast"
	"go/token"
)

// This file builds intra-procedural control-flow graphs from go/ast
// function bodies, using nothing beyond the standard library. The CFG is
// the substrate of the lifetime analyzers (poolsafe, lockhold,
// arenaescape): each basic block carries the statements and condition
// expressions it executes in order, and edges follow every construct that
// redirects control — if/else, for, range, switch, type switch, select,
// goto, labeled break/continue, fallthrough, return, and calls that never
// return (panic, os.Exit). Deferred calls are collected separately and
// modeled as running at the synthetic Exit block (see ExitCalls), which
// is where return edges and fall-off-the-end converge.

// BasicBlock is a straight-line run of statements: control enters at the
// first node and leaves at the last, with no branches in between.
type BasicBlock struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the statements and bare condition/tag expressions the
	// block executes, in order. Compound statements never appear whole:
	// an if statement contributes only its init and condition here, its
	// branches become successor blocks. Analyzers walking Nodes must
	// treat *ast.DeferStmt and *ast.FuncLit as opaque (the deferred call
	// runs at Exit; the literal's body is its own CFG).
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*BasicBlock
	Preds []*BasicBlock
	// PanicExit marks a block terminated by a call that unwinds or kills
	// the process (panic, os.Exit, log.Fatal*): its edge to Exit is not a
	// normal return, so obligation analyzers excuse it.
	PanicExit bool
	// Range is set on the header block of a range loop: the loop's
	// *ast.RangeStmt, kept out of Nodes so analyzers never descend into
	// the body from the header. Ranging over a channel is a blocking
	// receive; lockhold consults this.
	Range *ast.RangeStmt
}

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks holds every block; Blocks[0] is Entry.
	Blocks []*BasicBlock
	// Entry is where control enters; Exit is the synthetic block every
	// return (and the fall-off-the-end path) leads to. Exit has no Nodes
	// of its own — deferred calls conceptually run there, in ExitCalls
	// order.
	Entry, Exit *BasicBlock
	// Defers lists the defer statements in source order.
	Defers []*ast.DeferStmt
	// ExitCalls are the deferred call expressions in reverse registration
	// order — the order they run when the function leaves. A defer
	// registered on only some paths still appears here; analyzers accept
	// that imprecision (it is conservative for the release-matching
	// checks they use it for).
	ExitCalls []*ast.CallExpr
}

// Reachable reports whether b can be reached from the entry block.
// Dead-code blocks (statements after a return) stay in the graph but
// analyzers skip them when reporting.
func (g *CFG) Reachable() map[*BasicBlock]bool {
	seen := map[*BasicBlock]bool{g.Entry: true}
	work := []*BasicBlock{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// labelInfo tracks one label's targets: start for goto, brk/cont for
// labeled break and continue (set only when the label names a loop,
// switch, or select).
type labelInfo struct {
	start *BasicBlock
	brk   *BasicBlock
	cont  *BasicBlock
}

type cfgBuilder struct {
	g   *CFG
	cur *BasicBlock
	// breaks/conts are the innermost-last stacks of unlabeled
	// break/continue targets.
	breaks []*BasicBlock
	conts  []*BasicBlock
	labels map[string]*labelInfo
	// pendingLabel is the label naming the next loop/switch/select, so
	// its break/continue targets can be registered.
	pendingLabel string
}

// NewCFG builds the control-flow graph of one function body. body may be
// a *ast.FuncDecl's or *ast.FuncLit's Body.
func NewCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	for i := len(g.Defers) - 1; i >= 0; i-- {
		g.ExitCalls = append(g.ExitCalls, g.Defers[i].Call)
	}
	return g
}

func (b *cfgBuilder) newBlock() *BasicBlock {
	blk := &BasicBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *BasicBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminate ends the current block (its last edge already added) and
// starts a fresh unreachable block for any dead code that follows.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// label returns the info record for a label, creating it on first use
// (a forward goto references the label before its statement is seen).
func (b *cfgBuilder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement but a loop/switch/select consumes a pending label
	// without registering break/continue targets (goto-only label).
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		if li.start == nil {
			li.start = b.newBlock()
		}
		b.edge(b.cur, li.start)
		b.cur = li.start
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.pendingLabel = ""
		b.branch(s)

	case *ast.IfStmt:
		b.pendingLabel = ""
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.DeferStmt:
		b.pendingLabel = ""
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.pendingLabel = ""
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isNoReturnCall(s.X) {
			b.cur.PanicExit = true
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, go statements, inc/dec:
		// straight-line nodes.
		b.pendingLabel = ""
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *BasicBlock
		if s.Label != nil {
			target = b.label(s.Label.Name).brk
		} else if len(b.breaks) > 0 {
			target = b.breaks[len(b.breaks)-1]
		}
		if target != nil {
			b.edge(b.cur, target)
		}
		b.terminate()
	case token.CONTINUE:
		var target *BasicBlock
		if s.Label != nil {
			target = b.label(s.Label.Name).cont
		} else if len(b.conts) > 0 {
			target = b.conts[len(b.conts)-1]
		}
		if target != nil {
			b.edge(b.cur, target)
		}
		b.terminate()
	case token.GOTO:
		li := b.label(s.Label.Name)
		if li.start == nil {
			li.start = b.newBlock() // forward goto: label not yet seen
		}
		b.edge(b.cur, li.start)
		b.terminate()
	case token.FALLTHROUGH:
		// Handled by switchStmt, which links the clause to its successor
		// clause when the body ends in fallthrough. Nothing to do here.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	condBlk := b.cur
	join := b.newBlock()

	then := b.newBlock()
	b.edge(condBlk, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(condBlk, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(condBlk, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock()
	b.edge(b.cur, header)
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
	}
	join := b.newBlock()
	if s.Cond != nil {
		b.edge(header, join)
	}
	cont := header
	var post *BasicBlock
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	if lbl != "" {
		li := b.label(lbl)
		li.brk, li.cont = join, cont
	}
	b.breaks = append(b.breaks, join)
	b.conts = append(b.conts, cont)

	body := b.newBlock()
	b.edge(header, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, cont)
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, header)
	}

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	// The ranged expression is evaluated once, before the loop.
	b.cur.Nodes = append(b.cur.Nodes, s.X)
	header := b.newBlock()
	header.Range = s
	b.edge(b.cur, header)
	join := b.newBlock()
	b.edge(header, join)
	if lbl != "" {
		li := b.label(lbl)
		li.brk, li.cont = join, header
	}
	b.breaks = append(b.breaks, join)
	b.conts = append(b.conts, header)

	body := b.newBlock()
	b.edge(header, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, header)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	b.caseClauses(s.Body, lbl)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.stmt(s.Assign)
	b.caseClauses(s.Body, lbl)
}

// caseClauses builds the dispatch structure shared by expression and type
// switches: every clause is a successor of the head block, fallthrough
// chains a clause into the next, and break (or clause end) meets at join.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, lbl string) {
	head := b.cur
	join := b.newBlock()
	if lbl != "" {
		b.label(lbl).brk = join
	}
	b.breaks = append(b.breaks, join)

	entries := make([]*BasicBlock, len(body.List))
	hasDefault := false
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		entries[i] = b.newBlock()
		for _, e := range cc.List {
			entries[i].Nodes = append(entries[i].Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, entries[i])
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.cur = entries[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(entries) {
			b.edge(b.cur, entries[i+1])
			b.terminate()
		} else {
			b.edge(b.cur, join)
		}
	}

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	join := b.newBlock()
	if lbl != "" {
		b.label(lbl).brk = join
	}
	b.breaks = append(b.breaks, join)
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		entry := b.newBlock()
		if cc.Comm != nil {
			entry.Nodes = append(entry.Nodes, cc.Comm)
		}
		b.edge(head, entry)
		b.cur = entry
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement (possibly under a trailing label, which the spec allows).
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	for {
		if l, ok := last.(*ast.LabeledStmt); ok {
			last = l.Stmt
			continue
		}
		break
	}
	br, ok := last.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isNoReturnCall reports whether an expression statement's call never
// returns normally: the panic builtin, os.Exit, or log.Fatal*. These end
// the block with a PanicExit edge so obligation analyzers can excuse the
// path (defers still run for panic; the process dies for the others).
func isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pkg.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		if pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
			return true
		}
	}
	return false
}

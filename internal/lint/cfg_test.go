package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// The CFG tests run a tiny "step reachability" dataflow over parsed
// function bodies: calls to step(k) gen fact k, so the facts arriving
// at Exit under union meet are the steps on *some* path (may) and under
// intersection the steps on *every* path (must). That exercises the
// builder's edges end to end — a missing or misrouted edge shows up as
// a wrong fact set — without depending on type information.

// parseBody wraps a snippet in a function and builds its CFG.
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing snippet: %v", err)
	}
	return NewCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// stepsIn returns the k of every step(k) call inside a node.
func stepsIn(n ast.Node) []int {
	var out []int
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "step" || len(call.Args) != 1 {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if v, err := strconv.Atoi(lit.Value); err == nil {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// stepFlow solves the step-reachability problem in the given direction
// and meet.
func stepFlow(g *CFG, dir Direction, union bool, numFacts int) (in, out []BitSet) {
	return Solve(g, &Flow{
		Dir: dir, NumFacts: numFacts, MeetUnion: union,
		Transfer: func(b *BasicBlock, in BitSet) BitSet {
			o := in.Copy()
			for _, n := range b.Nodes {
				for _, k := range stepsIn(n) {
					o.Set(k)
				}
			}
			return o
		},
	})
}

// exitSteps returns the sorted facts at Exit of a forward solve.
func exitSteps(g *CFG, union bool, numFacts int) []int {
	in, _ := stepFlow(g, Forward, union, numFacts)
	var out []int
	for k := 0; k < numFacts; k++ {
		if in[g.Exit.Index].Has(k) {
			out = append(out, k)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// blockWithStep finds the block whose Nodes contain step(k).
func blockWithStep(t *testing.T, g *CFG, k int) *BasicBlock {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, s := range stepsIn(n) {
				if s == k {
					return b
				}
			}
		}
	}
	t.Fatalf("no block contains step(%d)", k)
	return nil
}

func hasBlock(list []*BasicBlock, b *BasicBlock) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func TestCFGGotoForward(t *testing.T) {
	g := parseBody(t, `
		step(1)
		if c {
			goto out
		}
		step(2)
	out:
		step(3)
	`)
	if got := exitSteps(g, true, 4); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("may facts at exit = %v, want [1 2 3]", got)
	}
	// The goto path skips step(2), so only 1 and 3 hold on every path.
	if got := exitSteps(g, false, 4); !equalInts(got, []int{1, 3}) {
		t.Errorf("must facts at exit = %v, want [1 3]", got)
	}
}

func TestCFGGotoLoop(t *testing.T) {
	// A backward goto forms a cycle: the solver must still terminate, and
	// the back edge must exist.
	g := parseBody(t, `
		step(1)
	again:
		step(2)
		if c {
			goto again
		}
		step(3)
	`)
	if got := exitSteps(g, false, 4); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("must facts at exit = %v, want [1 2 3]", got)
	}
	if preds := blockWithStep(t, g, 2).Preds; len(preds) < 2 {
		t.Errorf("label block should have the fallthrough and the goto back edge, got %d preds", len(preds))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// break outer must leave BOTH loops: step(3) is reachable only if the
	// break exits the (otherwise infinite) outer loop, and step(2) is
	// reachable only if the break wrongly targeted the inner loop.
	g := parseBody(t, `
	outer:
		for {
			step(1)
			for {
				break outer
			}
			step(2)
		}
		step(3)
	`)
	reach := g.Reachable()
	if reach[blockWithStep(t, g, 2)] {
		t.Error("step(2) after the inner loop should be unreachable: break outer must not target the inner join")
	}
	if !reach[blockWithStep(t, g, 3)] {
		t.Error("step(3) after the outer loop should be reachable through break outer")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	g := parseBody(t, `
	outer:
		for i := 0; i < 3; i++ {
			for {
				step(1)
				continue outer
			}
		}
		step(2)
	`)
	reach := g.Reachable()
	if !reach[blockWithStep(t, g, 2)] {
		t.Error("step(2) after the outer loop should be reachable")
	}
	// continue outer must jump to the outer loop's post block (the one
	// holding i++), not the inner header.
	b := blockWithStep(t, g, 1)
	if len(b.Succs) != 1 {
		t.Fatalf("continue block should have exactly one successor, got %d", len(b.Succs))
	}
	post := b.Succs[0]
	found := false
	for _, n := range post.Nodes {
		if _, ok := n.(*ast.IncDecStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("continue outer should target the outer post block (i++), got block %d with %d nodes", post.Index, len(post.Nodes))
	}
}

func TestCFGDeferOrder(t *testing.T) {
	g := parseBody(t, `
		defer step(1)
		defer step(2)
		if c {
			return
		}
		step(3)
	`)
	if len(g.Defers) != 2 {
		t.Fatalf("expected 2 defer statements, got %d", len(g.Defers))
	}
	// ExitCalls run in reverse registration order: last defer first.
	if len(g.ExitCalls) != 2 {
		t.Fatalf("expected 2 exit calls, got %d", len(g.ExitCalls))
	}
	if got := stepsIn(g.ExitCalls[0]); !equalInts(got, []int{2}) {
		t.Errorf("first exit call = step%v, want step(2): defers must run in reverse order", got)
	}
	if got := stepsIn(g.ExitCalls[1]); !equalInts(got, []int{1}) {
		t.Errorf("second exit call = step%v, want step(1)", got)
	}
}

func TestCFGConditionalDefer(t *testing.T) {
	// A defer registered on only some paths still appears in ExitCalls:
	// conservative, and documented as such.
	g := parseBody(t, `
		if c {
			defer step(1)
		}
		step(2)
	`)
	if len(g.ExitCalls) != 1 {
		t.Fatalf("expected the conditional defer in ExitCalls, got %d calls", len(g.ExitCalls))
	}
}

func TestCFGPanicExit(t *testing.T) {
	g := parseBody(t, `
		step(1)
		if c {
			panic("boom")
		}
		step(2)
	`)
	var panicBlk *BasicBlock
	for _, b := range g.Blocks {
		if b.PanicExit {
			if panicBlk != nil {
				t.Fatal("more than one PanicExit block")
			}
			panicBlk = b
		}
	}
	if panicBlk == nil {
		t.Fatal("no PanicExit block for panic call")
	}
	if !hasBlock(panicBlk.Succs, g.Exit) {
		t.Error("PanicExit block should edge to Exit")
	}
	// The panic path reaches Exit without step(2): must excludes it.
	if got := exitSteps(g, false, 3); !equalInts(got, []int{1}) {
		t.Errorf("must facts at exit = %v, want [1]", got)
	}
	if got := exitSteps(g, true, 3); !equalInts(got, []int{1, 2}) {
		t.Errorf("may facts at exit = %v, want [1 2]", got)
	}
}

func TestCFGDeadAfterPanic(t *testing.T) {
	g := parseBody(t, `
		panic("boom")
		step(1)
	`)
	if g.Reachable()[blockWithStep(t, g, 1)] {
		t.Error("code after an unconditional panic should be unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseBody(t, `
		switch x {
		case 1:
			step(1)
			fallthrough
		case 2:
			step(2)
		default:
			step(3)
		}
		step(4)
	`)
	// The fallthrough edge links case 1's body directly into case 2's.
	if !hasBlock(blockWithStep(t, g, 2).Preds, blockWithStep(t, g, 1)) {
		t.Error("fallthrough should edge case 1's body into case 2's clause")
	}
	if got := exitSteps(g, false, 5); !equalInts(got, []int{4}) {
		t.Errorf("must facts at exit = %v, want [4]", got)
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	// Without a default clause the head must edge straight to join: no
	// case might match.
	g := parseBody(t, `
		switch x {
		case 1:
			step(1)
		}
		step(2)
	`)
	if got := exitSteps(g, false, 3); !equalInts(got, []int{2}) {
		t.Errorf("must facts at exit = %v, want [2]", got)
	}
	if got := exitSteps(g, true, 3); !equalInts(got, []int{1, 2}) {
		t.Errorf("may facts at exit = %v, want [1 2]", got)
	}
}

func TestCFGSelect(t *testing.T) {
	g := parseBody(t, `
		select {
		case <-ch:
			step(1)
		case ch2 <- 1:
			step(2)
		}
		step(3)
	`)
	if got := exitSteps(g, true, 4); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("may facts at exit = %v, want [1 2 3]", got)
	}
	if got := exitSteps(g, false, 4); !equalInts(got, []int{3}) {
		t.Errorf("must facts at exit = %v, want [3]", got)
	}
}

func TestCFGRange(t *testing.T) {
	g := parseBody(t, `
		for range xs {
			step(1)
		}
		step(2)
	`)
	headers := 0
	for _, b := range g.Blocks {
		if b.Range != nil {
			headers++
		}
	}
	if headers != 1 {
		t.Errorf("expected exactly one range header block, got %d", headers)
	}
	if got := exitSteps(g, false, 3); !equalInts(got, []int{2}) {
		t.Errorf("must facts at exit = %v, want [2] (the range may iterate zero times)", got)
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow guards the cancellation plumbing PR 1 installed: every request
// context must flow Server → scheduler → exec unbroken. Two failure modes
// break the chain, and both are invisible to the compiler:
//
//  1. Minting a fresh root with context.Background()/context.TODO() deep
//     in library code, detaching everything below it from the caller's
//     deadline. Roots are allowed only in package main and in the
//     documented *Context wrapper layer — the `Query`/`QueryContext`
//     convention, where the context-less convenience entry is a shim whose
//     body hands context.Background() straight to its *Context twin, and
//     where *Context-named internals (batchContext, SubmitContext's
//     nil-default) are the audited places roots may be derived.
//  2. Passing a nil context to a callee that accepts one — the lazy way
//     to drop a deadline on the floor.
type Ctxflow struct{}

// NewCtxflow returns the analyzer.
func NewCtxflow() *Ctxflow { return &Ctxflow{} }

func (*Ctxflow) Name() string { return "ctxflow" }
func (*Ctxflow) Doc() string {
	return "contexts flow unbroken: no fresh context roots or nil contexts outside package main and the *Context wrapper shims"
}

func (a *Ctxflow) Package(pkg *Package, report Reporter) {
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := contextRootCall(pkg.Info, call); name != "" {
				if !rootAllowed(call, parents) {
					report(call.Pos(), "context.%s() in library code detaches the caller's deadline; thread the caller's ctx (or add a documented *Context wrapper shim)", name)
				}
				return true
			}
			a.checkNilContext(pkg, call, report)
			return true
		})
	}
}

func (*Ctxflow) Finish(Reporter) {}

// checkNilContext flags a literal nil passed where the callee expects a
// context.Context.
func (*Ctxflow) checkNilContext(pkg *Package, call *ast.CallExpr, report Reporter) {
	sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Params().Len() == 0 || len(call.Args) == 0 {
		return
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.IsNil() {
		report(call.Args[0].Pos(), "nil passed as context.Context to %s; pass the caller's ctx", calleeName(call))
	}
}

// contextRootCall returns "Background" or "TODO" when the call mints a
// fresh context root, "" otherwise.
func contextRootCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	switch fn.FullName() {
	case "context.Background":
		return "Background"
	case "context.TODO":
		return "TODO"
	}
	return ""
}

// rootAllowed reports whether a fresh context root at this position falls
// inside the documented wrapper layer: either the root is handed directly
// to a *Context-named callee (the shim idiom), or the enclosing function
// is itself *Context-named (the audited derivation points).
func rootAllowed(call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	if p, ok := parents[call].(*ast.CallExpr); ok {
		for _, arg := range p.Args {
			if arg == ast.Expr(call) && strings.HasSuffix(calleeName(p), "Context") {
				return true
			}
		}
	}
	for n := parents[call]; n != nil; n = parents[n] {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return strings.HasSuffix(fd.Name.Name, "Context")
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeName returns the called function's bare name, or "" when the
// callee is not a simple identifier or selector.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// parentMap records each node's syntactic parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

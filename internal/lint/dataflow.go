package lint

// This file is the generic worklist solver the lifetime analyzers share:
// a bit-vector fact domain (one bit per tracked obligation, lock
// acquisition, or tainted variable), forward or backward direction, and
// union (may) or intersection (must) meet. Transfer functions are
// monotone gen/kill over a block's nodes, so the fixpoint terminates: the
// lattice is the finite powerset of facts and every iteration only moves
// block out-sets up (union) or down (intersection).

// BitSet is a fixed-capacity bit vector over fact indices.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n facts.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Set adds fact i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear removes fact i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports whether fact i is present.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Empty reports whether no fact is present.
func (b BitSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy returns an independent copy.
func (b BitSet) Copy() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// Union folds o into b and reports whether b changed.
func (b BitSet) Union(o BitSet) bool {
	changed := false
	for i, w := range o {
		if n := b[i] | w; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect keeps only facts present in both and reports whether b
// changed.
func (b BitSet) Intersect(o BitSet) bool {
	changed := false
	for i, w := range o {
		if n := b[i] & w; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports set equality.
func (b BitSet) Equal(o BitSet) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// fill sets every fact below n (the lattice top for must-analyses).
func (b BitSet) fill(n int) {
	for i := 0; i < n; i++ {
		b.Set(i)
	}
}

// Direction selects which way facts propagate.
type Direction int

const (
	// Forward propagates entry-to-exit: a block's in-set is the meet of
	// its predecessors' out-sets.
	Forward Direction = iota
	// Backward propagates exit-to-entry: a block's in-set (at its end) is
	// the meet of its successors' start-sets.
	Backward
)

// Flow is one dataflow problem over a CFG.
type Flow struct {
	// Dir is the propagation direction.
	Dir Direction
	// NumFacts sizes the bit vectors.
	NumFacts int
	// MeetUnion selects the meet operator: true for union (may — a fact
	// holds if it holds on any path), false for intersection (must — on
	// all paths).
	MeetUnion bool
	// Boundary is the fact set at the Entry block (Forward) or Exit block
	// (Backward). Nil means empty.
	Boundary BitSet
	// Transfer computes a block's out-set from its in-set. It must be
	// monotone and must not retain or mutate in; it returns a fresh or
	// reused set that the solver copies.
	Transfer func(b *BasicBlock, in BitSet) BitSet
}

// Solve runs the worklist algorithm to fixpoint and returns each block's
// in- and out-sets, indexed by BasicBlock.Index. For must-analyses
// (MeetUnion false) unreachable blocks keep top; analyzers should only
// report from reachable blocks.
func Solve(g *CFG, f *Flow) (in, out []BitSet) {
	n := len(g.Blocks)
	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for i := range in {
		in[i] = NewBitSet(f.NumFacts)
		out[i] = NewBitSet(f.NumFacts)
		if !f.MeetUnion {
			in[i].fill(f.NumFacts)
			out[i].fill(f.NumFacts)
		}
	}
	boundary := g.Entry
	if f.Dir == Backward {
		boundary = g.Exit
	}
	in[boundary.Index] = NewBitSet(f.NumFacts)
	if f.Boundary != nil {
		in[boundary.Index].Union(f.Boundary)
	}

	// edgesIn lists the blocks whose out-sets feed a block's in-set.
	edgesIn := func(b *BasicBlock) []*BasicBlock {
		if f.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}

	work := make([]*BasicBlock, 0, n)
	inWork := make([]bool, n)
	push := func(b *BasicBlock) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if b != boundary {
			feeds := edgesIn(b)
			if len(feeds) > 0 {
				m := out[feeds[0].Index].Copy()
				for _, p := range feeds[1:] {
					if f.MeetUnion {
						m.Union(out[p.Index])
					} else {
						m.Intersect(out[p.Index])
					}
				}
				in[b.Index] = m
			}
		}
		newOut := f.Transfer(b, in[b.Index])
		if !newOut.Equal(out[b.Index]) {
			copy(out[b.Index], newOut)
			if f.Dir == Forward {
				for _, s := range b.Succs {
					push(s)
				}
			} else {
				for _, p := range b.Preds {
					push(p)
				}
			}
		}
	}
	return in, out
}

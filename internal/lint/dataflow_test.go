package lint

import "testing"

func TestBitSetOps(t *testing.T) {
	// Cross a word boundary on purpose: 70 facts span two uint64 words.
	b := NewBitSet(70)
	if !b.Empty() {
		t.Error("fresh set should be empty")
	}
	b.Set(0)
	b.Set(69)
	if !b.Has(0) || !b.Has(69) || b.Has(1) {
		t.Error("Set/Has across the word boundary misbehaves")
	}
	b.Clear(0)
	if b.Has(0) || !b.Has(69) {
		t.Error("Clear removed the wrong bit")
	}

	c := b.Copy()
	c.Set(3)
	if b.Has(3) {
		t.Error("Copy must be independent")
	}
	if !b.Equal(b.Copy()) || b.Equal(c) {
		t.Error("Equal misjudges")
	}

	u := NewBitSet(70)
	u.Set(5)
	if changed := u.Union(c); !changed || !u.Has(3) || !u.Has(5) || !u.Has(69) {
		t.Error("Union lost facts or misreported change")
	}
	if changed := u.Union(c); changed {
		t.Error("idempotent Union should report no change")
	}

	i := c.Copy()
	only69 := NewBitSet(70)
	only69.Set(69)
	if changed := i.Intersect(only69); !changed || i.Has(3) || !i.Has(69) {
		t.Error("Intersect kept the wrong facts")
	}
}

// TestSolveDiamond pins the meet operators on a diamond: a fact genned
// on one branch holds at the join under union (may) but not under
// intersection (must).
func TestSolveDiamond(t *testing.T) {
	g := parseBody(t, `
		if c {
			step(1)
		} else {
			step(2)
		}
		step(3)
	`)
	if got := exitSteps(g, true, 4); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("may facts at exit = %v, want [1 2 3]", got)
	}
	if got := exitSteps(g, false, 4); !equalInts(got, []int{3}) {
		t.Errorf("must facts at exit = %v, want [3]", got)
	}
}

// TestSolveBackward runs the same step problem against the control flow:
// facts genned late in the function propagate to the entry's out-set
// (for a backward problem, out[Entry] is the solution at the function's
// start — "what lies ahead").
func TestSolveBackward(t *testing.T) {
	g := parseBody(t, `
		if c {
			step(1)
		}
		step(2)
	`)
	_, out := stepFlow(g, Backward, true, 3)
	atEntry := out[g.Entry.Index]
	if !atEntry.Has(1) || !atEntry.Has(2) {
		t.Errorf("backward may at entry should see both steps ahead, got %v", atEntry)
	}
	_, out = stepFlow(g, Backward, false, 3)
	atEntry = out[g.Entry.Index]
	if atEntry.Has(1) {
		t.Error("backward must at entry should exclude step(1): the else path skips it")
	}
	if !atEntry.Has(2) {
		t.Error("backward must at entry should include step(2): every path ahead runs it")
	}
}

// TestSolveBoundary seeds the entry with a fact and checks it reaches
// the exit untouched by gen-less transfers.
func TestSolveBoundary(t *testing.T) {
	g := parseBody(t, `
		step(1)
	`)
	seed := NewBitSet(3)
	seed.Set(2)
	in, _ := Solve(g, &Flow{
		Dir: Forward, NumFacts: 3, MeetUnion: true, Boundary: seed,
		Transfer: func(b *BasicBlock, in BitSet) BitSet { return in.Copy() },
	})
	if !in[g.Exit.Index].Has(2) {
		t.Error("boundary fact should flow entry to exit")
	}
}

// TestSolveLoopTermination runs a must-analysis over a loop with a
// cycle in the CFG; the solver has to reach a fixpoint, and the loop
// body's fact must not hold at exit (zero iterations are possible).
func TestSolveLoopTermination(t *testing.T) {
	g := parseBody(t, `
		for i := 0; i < n; i++ {
			step(1)
		}
		step(2)
	`)
	if got := exitSteps(g, false, 3); !equalInts(got, []int{2}) {
		t.Errorf("must facts at exit = %v, want [2]", got)
	}
	if got := exitSteps(g, true, 3); !equalInts(got, []int{1, 2}) {
		t.Errorf("may facts at exit = %v, want [1 2]", got)
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// Errdrop forbids the silent form of error discarding in library code: a
// call used as a bare statement whose results include an error. The
// serve path's resilience story depends on failures propagating — a
// swallowed error at the storage or persist layer surfaces later as
// corrupt state with no trail. Deliberate discards stay possible but
// must be visible in the diff: write `_ = f()` (or `_, _ = ...`), which
// this analyzer accepts. Deferred teardown calls (`defer f.Close()`) and
// package main are exempt.
type Errdrop struct{}

// NewErrdrop returns the analyzer.
func NewErrdrop() *Errdrop { return &Errdrop{} }

func (*Errdrop) Name() string { return "errdrop" }
func (*Errdrop) Doc() string {
	return "library code may not silently drop error results; discard explicitly with a blank assignment"
}

func (a *Errdrop) Package(pkg *Package, report Reporter) {
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(pkg.Info, call) {
				report(call.Pos(), "%s returns an error that is silently dropped; handle it or discard with `_ =`", calleeName(call))
			}
			return true
		})
	}
}

func (*Errdrop) Finish(Reporter) {}

// returnsError reports whether the call's result list includes an error.
// Type conversions and builtins have no signature and are skipped.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

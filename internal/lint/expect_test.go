package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<name> as a standalone package whose
// import path is its directory name.
func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	l := NewLoader("", "")
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return l, pkg
}

// runFixture runs one analyzer over one fixture package and checks its
// diagnostics against the fixture's `// want "regexp"` comments: every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by a want.
func runFixture(t *testing.T, a Analyzer, name string) {
	t.Helper()
	l, pkg := loadFixture(t, name)
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{a})
	checkExpectations(t, l.Fset(), pkg, diags)
}

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pat, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", fset.Position(c.Pos()), rest, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

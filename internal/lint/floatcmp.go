package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp guards the cost model's float-precision contract. The APS
// ratio's decision boundary sits exactly at 1.0 and the crossover
// bisection converges to it through hundreds of float64 evaluations;
// direct ==/!= against such values either never fires or fires on noise.
// Inside the targeted packages (internal/model by default) every
// floating-point equality must go through the epsilon helpers (EqZero,
// ApproxEq), which make the tolerance explicit and reviewable.
type Floatcmp struct {
	// Target holds the import-path suffixes of packages under the
	// contract.
	Target []string
}

// NewFloatcmp returns the analyzer targeting the cost-model package.
func NewFloatcmp() *Floatcmp {
	return &Floatcmp{Target: []string{"internal/model"}}
}

func (*Floatcmp) Name() string { return "floatcmp" }
func (*Floatcmp) Doc() string {
	return "no ==/!= on floating-point values in the cost-model package; use the epsilon helpers"
}

func (a *Floatcmp) Package(pkg *Package, report Reporter) {
	if !pathAllowed(pkg.Path, a.Target) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pkg.Info.Types[bin.X], pkg.Info.Types[bin.Y]
			// Constant folding (two literals) cannot lose precision at
			// run time; everything else with a float operand can.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				report(bin.OpPos, "%s on floating-point values; use EqZero/ApproxEq so the tolerance is explicit", bin.Op)
			}
			return true
		})
	}
}

func (*Floatcmp) Finish(Reporter) {}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

package lint

import (
	"go/ast"
)

// Gospawn locks in internal/runtime as the module's only goroutine
// spawn site: library packages may not use raw go statements. The
// worker pool exists so the steady-state query path spawns nothing,
// shuts down with the engine, and stays observable (busy/steal
// gauges); a raw go statement bypasses all three and reintroduces the
// per-batch spawn cost the pool removed. Data-parallel work dispatches
// morsels on the pool; genuinely detached work (batch runners,
// cancellation watchers) goes through runtime.Go, which names the
// exemption explicitly. Package main keeps raw spawns (commands own
// their process), and test files are never loaded.
type Gospawn struct {
	// Allowed holds import-path suffixes whose packages may spawn.
	Allowed []string
}

// NewGospawn returns the analyzer with the repo's default allowance.
func NewGospawn() *Gospawn {
	return &Gospawn{Allowed: []string{"internal/runtime"}}
}

func (*Gospawn) Name() string { return "gospawn" }
func (*Gospawn) Doc() string {
	return "library packages must not use raw go statements; dispatch morsels on the internal/runtime pool or spawn via runtime.Go"
}

func (a *Gospawn) Package(pkg *Package, report Reporter) {
	if pkg.IsMain() || pathAllowed(pkg.Path, a.Allowed) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "raw go statement in library package %s: dispatch morsels on the internal/runtime pool or spawn via runtime.Go", pkg.Path)
			}
			return true
		})
	}
}

func (*Gospawn) Finish(Reporter) {}

package lint

import (
	"go/token"
	"strings"
)

// This file implements the //fclint:ignore inline suppression:
//
//	//fclint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a suppression is a debt record, and an empty reason is
// itself a diagnostic — as is naming an analyzer that doesn't exist or
// suppressing a finding that no longer fires (stale suppressions must
// not accumulate silently; TestSuppressionLedger enumerates the
// survivors).

// IgnoreDirective is the comment prefix of an inline suppression.
const IgnoreDirective = "//fclint:ignore"

// Suppression is one parsed //fclint:ignore directive.
type Suppression struct {
	// Pos locates the directive comment.
	Pos token.Position
	// Analyzer is the analyzer being silenced.
	Analyzer string
	// Reason is the mandatory justification (may be empty in a malformed
	// directive; Run reports that).
	Reason string
}

// Suppressions parses every //fclint:ignore directive in the packages,
// in file order.
func Suppressions(fset *token.FileSet, pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, IgnoreDirective)
					fields := strings.Fields(rest)
					s := Suppression{Pos: fset.Position(c.Pos())}
					if len(fields) > 0 {
						s.Analyzer = fields[0]
						s.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics matched by a suppression (same
// analyzer, same file, directive on the finding's line or the line
// above) and returns the filtered findings plus the hygiene diagnostics
// for malformed or stale directives. ranAnalyzers guards the staleness
// check: a suppression for an analyzer that didn't run this invocation
// can't be judged stale.
func applySuppressions(diags []Diagnostic, sups []Suppression, ranAnalyzers map[string]bool) []Diagnostic {
	used := make([]bool, len(sups))
	matches := func(d Diagnostic) bool {
		hit := false
		for i, s := range sups {
			if s.Analyzer != d.Analyzer || s.Reason == "" {
				continue
			}
			if s.Pos.Filename == d.Pos.Filename && (s.Pos.Line == d.Pos.Line || s.Pos.Line == d.Pos.Line-1) {
				used[i] = true
				hit = true
			}
		}
		return hit
	}
	var out []Diagnostic
	for _, d := range diags {
		if !matches(d) {
			out = append(out, d)
		}
	}
	for i, s := range sups {
		switch {
		case s.Analyzer == "" || s.Reason == "":
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Analyzer: "ignore",
				Message:  "fclint:ignore needs an analyzer and a reason: //fclint:ignore <analyzer> <why this finding is acceptable>",
			})
		case !knownAnalyzer(s.Analyzer):
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Analyzer: "ignore",
				Message:  "fclint:ignore names unknown analyzer " + s.Analyzer,
			})
		case !used[i] && ranAnalyzers[s.Analyzer]:
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Analyzer: "ignore",
				Message:  "stale fclint:ignore: no " + s.Analyzer + " finding on this or the next line — delete the suppression",
			})
		}
	}
	return out
}

// knownAnalyzer reports whether name is one of the registered analyzers.
func knownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name() == name {
			return true
		}
	}
	return false
}

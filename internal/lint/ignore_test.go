package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestIgnoreDirective drives the suppression mechanics end to end over
// the ignore fixture: a well-formed directive filters its finding, and
// the malformed variants (missing reason, unknown analyzer, stale)
// surface as hygiene diagnostics. Expectations live here instead of in
// want comments because a want comment cannot share a line with the
// directive under test.
func TestIgnoreDirective(t *testing.T) {
	l, pkg := loadFixture(t, "ignore")
	diags := Run(l.Fset(), []*Package{pkg}, []Analyzer{NewArenaescape()})

	wantSubstrings := []string{
		"returned to the caller",              // missingReason's finding survives: no reason, no suppression
		"needs an analyzer and a reason",      // the reasonless directive itself
		"names unknown analyzer nosuchcheck",  // the misnamed directive
		"stale fclint:ignore: no arenaescape", // the directive with nothing left to suppress
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("expected %d diagnostics, got %d: %v", len(wantSubstrings), len(diags), diags)
	}
	for _, sub := range wantSubstrings {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Message, sub) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("expected exactly one diagnostic containing %q, got %d in %v", sub, n, diags)
		}
	}
	// The well-formed suppression must have filtered its finding: only
	// one arenaescape diagnostic (missingReason's) survives.
	escapes := 0
	for _, d := range diags {
		if d.Analyzer == "arenaescape" {
			escapes++
		}
	}
	if escapes != 1 {
		t.Errorf("expected exactly 1 surviving arenaescape finding, got %d: %v", escapes, diags)
	}
}

// TestIgnoreStaleNeedsRun proves the staleness guard: a suppression for
// an analyzer that did not run this invocation cannot be judged stale,
// so only the unconditionally malformed directives are reported.
func TestIgnoreStaleNeedsRun(t *testing.T) {
	l, pkg := loadFixture(t, "ignore")
	diags := Run(l.Fset(), []*Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("expected 2 diagnostics (missing reason, unknown analyzer), got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "ignore" {
			t.Errorf("expected only hygiene diagnostics, got %s", d)
		}
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale check must not fire when the analyzer did not run: %s", d)
		}
	}
}

// TestSuppressionLedger enumerates every //fclint:ignore in the tree.
// A suppression is a debt record; this ledger keeps the debts visible.
// Adding one means consciously extending the want list below — with a
// reason in the directive, or Run would have flagged it anyway.
func TestSuppressionLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range Suppressions(l.Fset(), pkgs) {
		rel, err := filepath.Rel(root, s.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, filepath.ToSlash(rel)+" "+s.Analyzer)
		if s.Reason == "" {
			t.Errorf("%s: suppression without a reason", s.Pos)
		}
		if !knownAnalyzer(s.Analyzer) {
			t.Errorf("%s: suppression names unknown analyzer %q", s.Pos, s.Analyzer)
		}
	}
	sort.Strings(got)
	want := []string{
		"fastcolumns.go lockhold",
		"internal/index/probe.go arenaescape",
		"internal/scan/shared.go arenaescape",
		"internal/scan/shared.go arenaescape",
		"internal/scan/strided.go arenaescape",
	}
	if len(got) != len(want) {
		t.Fatalf("suppression ledger drifted:\n got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ledger entry %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// Package lint is the repo's own static-analysis suite: a stdlib-only
// (go/ast, go/parser, go/token, go/types) driver plus ten analyzers that
// turn this codebase's concurrency, lifetime, and cost-model conventions
// into machine-checked invariants. The serve path's resilience guarantees
// (errors-not-panics, context threading, atomic counters) and the cost
// model's float-precision contract (the APS crossover sits exactly at
// ratio 1.0) are only as strong as the code that follows them; fclint
// makes "follows them" a build failure instead of a review habit.
//
// Seven analyzers are per-node AST walks; the three lifetime analyzers
// (poolsafe, lockhold, arenaescape) run on an intra-procedural CFG +
// worklist-dataflow engine (cfg.go, dataflow.go) with one-level
// cross-package call summaries for blocking and releasing effects
// (summary.go) — see DESIGN.md §13.
//
// The analyzers:
//
//   - nopanic: library packages return errors; panic() is reserved for
//     package main and internal/faultinject.
//   - ctxflow: context.Background()/TODO() only in package main and the
//     documented *Context wrapper shims; a function holding a context
//     never substitutes a fresh one (or nil) when calling down.
//   - atomicfield: a struct field touched through sync/atomic anywhere
//     must be touched atomically everywhere, across all packages.
//   - floatcmp: no ==/!= on floating-point values in the cost-model
//     package; the epsilon helpers make tolerance explicit.
//   - errdrop: a call statement may not silently discard an error
//     result; discards must be written as explicit blank assignments.
//   - gospawn: no raw go statements in library packages; goroutines come
//     from the internal/runtime worker pool (morsel dispatch) or its Go
//     escape hatch, so the process has exactly one spawn site.
//   - atomicswap: fields of structs marked //fclint:atomicswap (state
//     republished wholesale through an atomic snapshot pointer, like the
//     optimizer's) are accessed only from the struct's own methods;
//     everyone else uses the snapshot accessors, so a concurrent
//     hot-swap can never tear a read.
//   - poolsafe: a value checked out of the result arena or a sync.Pool
//     is never used after Release/Put on any path, and is released (or
//     ownership-transferred) on every path to a normal return.
//   - lockhold: every Lock/RLock is matched by its Unlock on all paths,
//     and no write lock is held across a blocking operation (channel
//     ops, select, pool Dispatch, time.Sleep, network I/O).
//   - arenaescape: arena-backed slices (Buf.IDs, WordBuf.W,
//     Results.RowIDs and their query-layer mirrors) never escape to
//     struct fields, package variables, or un-annotated returns.
//
// Findings can be silenced inline with a justified suppression —
// //fclint:ignore <analyzer> <reason> — on the flagged line or the line
// above; an empty reason, an unknown analyzer, or a stale suppression is
// itself a finding (see ignore.go).
//
// Test files are exempt from every analyzer and are not loaded at all.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reporter records one finding at a position.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one invariant checker. Package is called once per loaded
// package; Finish runs after every package has been seen, which is where
// cross-package analyzers (atomicfield) emit their findings. Analyzers
// carry per-run state, so construct a fresh set for each run.
type Analyzer interface {
	Name() string
	Doc() string
	Package(pkg *Package, report Reporter)
	Finish(report Reporter)
}

// Analyzers returns a fresh instance of every repo analyzer with its
// default configuration.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewNopanic(),
		NewCtxflow(),
		NewAtomicfield(),
		NewFloatcmp(),
		NewErrdrop(),
		NewGospawn(),
		NewAtomicswap(),
		NewPoolsafe(),
		NewLockhold(),
		NewArenaescape(),
	}
}

// Run applies the analyzers to the packages and returns the findings in
// position order, after applying //fclint:ignore suppressions (malformed
// or stale suppressions surface as findings of the "ignore" analyzer).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name()] = true
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      fset.Position(pos),
				Analyzer: a.Name(),
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, pkg := range pkgs {
			a.Package(pkg, report)
		}
		a.Finish(report)
	}
	diags = applySuppressions(diags, Suppressions(fset, pkgs), ran)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

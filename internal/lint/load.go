package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the tree under analysis. Test
// files (_test.go) are deliberately not loaded: every analyzer's contract
// exempts test code, and excluding the files structurally keeps the
// loader free of test-only dependencies.
type Package struct {
	// Path is the import path ("fastcolumns/internal/model").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// IsMain reports whether this is a package main (a command): commands own
// their process, so several analyzers hold them to a looser contract.
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Loader loads and type-checks packages using only the standard library:
// imports inside the module resolve against the module tree, everything
// else (the standard library) through the go/importer source importer.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module directory. modulePath
// may be empty when loading standalone fixture directories.
func NewLoader(moduleDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Fset returns the file set all loaded positions resolve against.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-internal paths load from the
// module tree (with cycle detection), everything else defers to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.modulePath != "" &&
		(path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as the package with the given import path, memoizing by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadModule loads every package of the module rooted at dir (the
// directory holding go.mod), in deterministic import-path order, and
// returns them together with the loader (whose Fset resolves positions).
func LoadModule(dir string) (*Loader, []*Package, error) {
	modulePath, err := readModulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	l := NewLoader(dir, modulePath)
	var paths []string
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		// testdata trees, hidden and underscore directories are invisible
		// to the go tool; keep the same contract here.
		if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(ip, modulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(dir, filepath.FromSlash(rel)), ip)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs, nil
}

// goFiles lists the non-test .go file names of dir in sorted order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := buildIncluded(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIncluded reports whether a file's //go:build constraint (if any)
// holds for the default build of this host — GOOS/GOARCH tags true,
// everything else (race, custom tags) false. Files the compiler would
// exclude must not reach the type-checker: tagged alternates (such as
// internal/race's race/!race pair) redeclare the same names by design.
func buildIncluded(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return false, fmt.Errorf("lint: %s: %w", path, err)
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH
		}), nil
	}
	return true, sc.Err()
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestBuildConstraintRaceShim pins the loader's handling of the
// internal/race twin files: race.go (//go:build !race) and race_race.go
// (//go:build race) redeclare the same constant by design, so exactly
// one may reach the type-checker — the default-build one, since the
// loader evaluates non-GOOS/GOARCH tags as false.
func TestBuildConstraintRaceShim(t *testing.T) {
	raceDir := filepath.Join("..", "race")

	inc, err := buildIncluded(filepath.Join(raceDir, "race.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Error("race.go (//go:build !race) should be included in the default build")
	}
	inc, err = buildIncluded(filepath.Join(raceDir, "race_race.go"))
	if err != nil {
		t.Fatal(err)
	}
	if inc {
		t.Error("race_race.go (//go:build race) should be excluded from the default build")
	}

	names, err := goFiles(raceDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "race.go" {
		t.Fatalf("goFiles(internal/race) = %v, want [race.go]", names)
	}

	// The package must type-check cleanly — with both twins loaded the
	// checker would reject the redeclared Enabled.
	l := NewLoader("", "")
	pkg, err := l.LoadDir(raceDir, "race")
	if err != nil {
		t.Fatalf("type-checking internal/race: %v", err)
	}
	if pkg.Types.Scope().Lookup("Enabled") == nil {
		t.Error("internal/race should export Enabled")
	}
}

// TestBuildConstraintTags checks the tag evaluation rule directly:
// GOOS/GOARCH tags are true for this host, everything else false.
func TestBuildConstraintTags(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"hostos.go", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"nothostos.go", "//go:build !" + runtime.GOOS + "\n\npackage p\n", false},
		{"hostarch.go", "//go:build " + runtime.GOARCH + "\n\npackage p\n", true},
		{"customtag.go", "//go:build sometag\n\npackage p\n", false},
		{"negcustom.go", "//go:build !sometag\n\npackage p\n", true},
		{"none.go", "package p\n", true},
	}
	for _, c := range cases {
		got, err := buildIncluded(write(c.name, c.src))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: buildIncluded = %v, want %v", c.name, got, c.want)
		}
	}
}

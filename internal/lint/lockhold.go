package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockhold checks the two mutex disciplines the hot-swap and scheduling
// layers depend on:
//
//   - pairing: every sync.Mutex/RWMutex Lock (and RLock) is matched by
//     the corresponding Unlock on every path to a normal return — early
//     returns included, deferred unlocks honored (they run at Exit, so
//     they also cover panic paths);
//   - no blocking while exclusive: a write lock must not be held across
//     an operation that can park the goroutine — a channel send or
//     receive, a select without a default, ranging over a channel,
//     time.Sleep, WaitGroup waits, network I/O, or a call to a module
//     function whose summary says it may do any of those (pool Dispatch
//     blocks on its WaitGroup, for example). A parked writer stalls
//     every reader and writer behind it; the refit controller's swap
//     path is exactly the kind of code this protects.
//
// The blocking rule is deliberately scoped to exclusive locks: the
// engine's serve path holds an RLock across Dispatch by design (readers
// don't exclude each other), and sync.Cond.Wait is exempt because the
// condvar contract *requires* holding the mutex across it.
type Lockhold struct {
	pkgs []*Package
}

// NewLockhold returns the analyzer.
func NewLockhold() *Lockhold { return &Lockhold{} }

func (*Lockhold) Name() string { return "lockhold" }
func (*Lockhold) Doc() string {
	return "every Lock must be matched by Unlock on all paths, and no write lock may be held across a blocking operation"
}

// Package defers to Finish: the blocking effect of callees is a
// cross-package property.
func (a *Lockhold) Package(pkg *Package, report Reporter) {
	a.pkgs = append(a.pkgs, pkg)
}

func (a *Lockhold) Finish(report Reporter) {
	sums := BuildSummaries(a.pkgs)
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
					a.checkFunc(pkg, sums, body, report)
				})
			}
		}
	}
}

// lockOp classifies one mutex call site.
type lockOp struct {
	key    string // receiver expression, e.g. "c.mu" — the lock's identity
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
}

// lockSite is one acquisition whose matching release is tracked.
type lockSite struct {
	key    string
	method string // Lock or RLock
	pos    token.Pos
}

func (a *Lockhold) checkFunc(pkg *Package, sums *Summaries, body *ast.BlockStmt, report Reporter) {
	g := NewCFG(body)
	reach := g.Reachable()
	exempt := nonBlockingComms(body)

	// Collect acquisition sites and the set of exclusively-held keys.
	var sites []lockSite
	exclKeys := make(map[string]int) // key -> held-fact index
	var exclNames []string           // held-fact index -> key
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			forEachLockOp(pkg.Info, n, func(op lockOp) {
				switch op.method {
				case "Lock", "RLock":
					sites = append(sites, lockSite{key: op.key, method: op.method, pos: op.pos})
				}
				if op.method == "Lock" {
					if _, ok := exclKeys[op.key]; !ok {
						exclKeys[op.key] = len(exclKeys)
						exclNames = append(exclNames, op.key)
					}
				}
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	// Problem 1 — pairing (forward, may): fact i means "acquisition i may
	// still be unmatched here". An Unlock/RUnlock on the same lock
	// expression discharges every site of the matching kind, so a lock
	// re-acquired each loop iteration stays clean.
	pairFlow := &Flow{
		Dir: Forward, NumFacts: len(sites), MeetUnion: true,
		Transfer: func(b *BasicBlock, in BitSet) BitSet {
			out := in.Copy()
			for _, n := range b.Nodes {
				applyLockPairing(pkg.Info, n, sites, out)
			}
			if b.PanicExit {
				// The goroutine is going down; deferred unlocks (modeled at
				// Exit) are the only ones that matter past this point.
				for i := range sites {
					out.Clear(i)
				}
			}
			return out
		},
	}
	pairIn, _ := Solve(g, pairFlow)
	atExit := pairIn[g.Exit.Index].Copy()
	for _, call := range g.ExitCalls {
		applyLockPairing(pkg.Info, call, sites, atExit)
	}
	for i, s := range sites {
		if atExit.Has(i) {
			report(s.pos, "%s.%s() here is not matched by %s on every path to return",
				s.key, s.method, unlockName(s.method))
		}
	}

	// Problem 2 — blocking while exclusively held (forward, may): fact k
	// means "write lock k may be held here". Deferred unlocks do NOT clear
	// the fact mid-function — the lock really is held until return.
	if len(exclKeys) == 0 {
		return
	}
	heldFlow := &Flow{
		Dir: Forward, NumFacts: len(exclKeys), MeetUnion: true,
		Transfer: func(b *BasicBlock, in BitSet) BitSet {
			out := in.Copy()
			for _, n := range b.Nodes {
				applyHeld(pkg.Info, n, exclKeys, out)
			}
			return out
		},
	}
	heldIn, _ := Solve(g, heldFlow)
	heldName := func(w BitSet) (string, bool) {
		for i, key := range exclNames {
			if w.Has(i) {
				return key, true
			}
		}
		return "", false
	}
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		w := heldIn[b.Index].Copy()
		// Range-over-channel blocks at the loop header, which carries the
		// RangeStmt out-of-band (see BasicBlock.Range).
		if b.Range != nil {
			if key, held := heldName(w); held {
				if why, ok := blockingPrimitive(pkg.Info, b.Range); ok {
					report(b.Range.Pos(), "%s is held across %s; a parked writer stalls every contender — release the lock first", key, why)
				}
			}
		}
		for _, n := range b.Nodes {
			if key, held := heldName(w); held {
				if why, ok := nodeBlocks(pkg.Info, sums, n, exempt); ok {
					report(n.Pos(), "%s is held across %s; a parked writer stalls every contender — release the lock first", key, why)
				}
			}
			applyHeld(pkg.Info, n, exclKeys, w)
		}
	}
	// Deferred calls run with whatever is still held at Exit.
	w := heldIn[g.Exit.Index].Copy()
	for _, call := range g.ExitCalls {
		if key, held := heldName(w); held {
			if why, ok := nodeBlocks(pkg.Info, sums, call, exempt); ok {
				report(call.Pos(), "deferred call may block on %s while %s is still held", why, key)
			}
		}
		applyHeld(pkg.Info, call, exclKeys, w)
	}
}

// applyLockPairing updates the unmatched-acquisition set across a node.
func applyLockPairing(info *types.Info, n ast.Node, sites []lockSite, facts BitSet) {
	forEachLockOp(info, n, func(op lockOp) {
		switch op.method {
		case "Lock", "RLock":
			for i, s := range sites {
				if s.pos == op.pos {
					facts.Set(i)
				}
			}
		case "Unlock", "RUnlock":
			want := "Lock"
			if op.method == "RUnlock" {
				want = "RLock"
			}
			for i, s := range sites {
				if s.key == op.key && s.method == want {
					facts.Clear(i)
				}
			}
		}
	})
}

// applyHeld updates the exclusively-held set across a node.
func applyHeld(info *types.Info, n ast.Node, keys map[string]int, facts BitSet) {
	forEachLockOp(info, n, func(op lockOp) {
		i, ok := keys[op.key]
		if !ok {
			return
		}
		switch op.method {
		case "Lock":
			facts.Set(i)
		case "Unlock":
			facts.Clear(i)
		}
	})
}

// nodeBlocks reports whether executing a node may park the goroutine:
// a primitive blocking operation, or a call to a module function whose
// summary blocks. sync.Cond.Wait is exempt here (the condvar contract
// requires holding the mutex), as are sends/receives inside a select
// that has a default clause (they only fire when already ready).
func nodeBlocks(info *types.Info, sums *Summaries, n ast.Node, exempt map[ast.Node]bool) (string, bool) {
	var why string
	inspectOpaque(n, func(m ast.Node) {
		if why != "" || exempt[m] {
			return
		}
		if w, ok := blockingPrimitive(info, m); ok && w != "sync.Cond.Wait" {
			why = w
			return
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if eff := sums.Effects(CalleeFunc(info, call)); eff != nil && eff.Blocks {
				why = "call to " + CalleeFunc(info, call).Name() + " (" + eff.BlocksWhy + ")"
			}
		}
	})
	return why, why != ""
}

// forEachLockOp finds sync.Mutex / sync.RWMutex method calls in a node
// (function literals opaque, deferred calls registration-only) and
// reports each with the lock's identity: the receiver expression
// rendered to source ("c.mu"), which distinguishes locks by path rather
// than by root object alone.
func forEachLockOp(info *types.Info, n ast.Node, fn func(lockOp)) {
	inspectOpaque(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		op, ok := lockCall(info, call)
		if ok {
			fn(op)
		}
	})
}

// lockCall classifies a call as a mutex operation.
func lockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockOp{}, false
	}
	return lockOp{key: types.ExprString(sel.X), method: fn.Name(), pos: call.Pos()}, true
}

// unlockName maps an acquisition method to its release.
func unlockName(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Nopanic enforces the errors-not-panics contract of the serve path: the
// scheduler's panic-isolation layer (safeExec) exists to contain bugs,
// not to serve as a control-flow channel, so library packages must report
// failure through error returns. panic() stays legal in package main
// (commands own their process) and in the packages listed in Allowed —
// by default internal/faultinject, whose entire job is injecting panics,
// and internal/runtime, whose Dispatch re-raises a morsel's captured
// panic on the dispatching goroutine so recover discipline keeps
// working across the pool boundary.
type Nopanic struct {
	// Allowed holds import-path suffixes whose packages may panic.
	Allowed []string
}

// NewNopanic returns the analyzer with the repo's default allowance.
func NewNopanic() *Nopanic {
	return &Nopanic{Allowed: []string{"internal/faultinject", "internal/runtime"}}
}

func (*Nopanic) Name() string { return "nopanic" }
func (*Nopanic) Doc() string {
	return "library packages must return errors; panic() is reserved for package main and the fault-injection harness"
}

func (a *Nopanic) Package(pkg *Package, report Reporter) {
	if pkg.IsMain() || pathAllowed(pkg.Path, a.Allowed) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				report(call.Pos(), "panic in library package %s: return an error instead", pkg.Path)
			}
			return true
		})
	}
}

func (*Nopanic) Finish(Reporter) {}

// pathAllowed reports whether the import path matches one of the allowed
// suffixes ("internal/faultinject" matches both that exact path and any
// module-qualified form of it).
func pathAllowed(path string, allowed []string) bool {
	for _, s := range allowed {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

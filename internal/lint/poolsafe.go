package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolsafe machine-checks the arena/pool checkout discipline that the
// morsel runtime's zero-allocation contract rests on: a value checked
// out of internal/runtime's Arena (GetBuf/GetWords/GetResults) or any
// sync.Pool must
//
//   - never be used again, on any path, after it was released
//     (PutBuf/PutWords/Put/Release) — the backing memory may already
//     serve a concurrent batch, so a late use is silent cross-batch
//     corruption, the use-after-free bug class pooling reintroduces; and
//   - reach a release or an ownership transfer on every path to a normal
//     return — otherwise the pool leaks its buffer and the steady-state
//     zero-allocation contract quietly erodes.
//
// Ownership transfers are recognized structurally: the checked-out value
// itself (a bare identifier, not a field or slice view of it) returned,
// stored into a field/index/global, sent on a channel, captured by a
// function literal, or passed as an argument to another call — helpers
// that *release* a parameter (per the cross-package call summaries) kill
// the obligation as a release instead, so later uses stay poisoned.
// Paths that end in panic/os.Exit are excused (the process or batch is
// already lost; GC reclaims the buffer), and deferred releases run at
// the function's Exit block, where obligations are settled last.
type Poolsafe struct {
	pkgs []*Package
}

// NewPoolsafe returns the analyzer.
func NewPoolsafe() *Poolsafe { return &Poolsafe{} }

func (*Poolsafe) Name() string { return "poolsafe" }
func (*Poolsafe) Doc() string {
	return "arena/sync.Pool checkouts must not be used after release and must be released or ownership-transferred on every path"
}

// Package defers to Finish: release effects of helper functions are
// cross-package properties (the summaries need every package loaded).
func (a *Poolsafe) Package(pkg *Package, report Reporter) {
	a.pkgs = append(a.pkgs, pkg)
}

func (a *Poolsafe) Finish(report Reporter) {
	sums := BuildSummaries(a.pkgs)
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
					a.checkFunc(pkg, sums, body, report)
				})
			}
		}
	}
}

// forEachFuncBody invokes fn for a function body and for every function
// literal nested inside it, so each body is analyzed with its own CFG.
func forEachFuncBody(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			forEachFuncBody(lit.Body, fn)
			return false
		}
		return true
	})
}

// checkoutSite is one tracked checkout: the assignment binding a pooled
// value to a local variable.
type checkoutSite struct {
	obj  types.Object
	pos  token.Pos
	what string // "Arena.GetBuf", "sync.Pool.Get", ...
}

func (a *Poolsafe) checkFunc(pkg *Package, sums *Summaries, body *ast.BlockStmt, report Reporter) {
	g := NewCFG(body)
	reach := g.Reachable()

	// Collect checkout sites: local vars bound directly to a checkout
	// call, in any reachable block.
	var sites []checkoutSite
	varIdx := make(map[types.Object]int)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			forEachCheckoutBinding(pkg.Info, n, func(obj types.Object, call *ast.CallExpr, what string) {
				sites = append(sites, checkoutSite{obj: obj, pos: call.Pos(), what: what})
				if _, ok := varIdx[obj]; !ok {
					varIdx[obj] = len(varIdx)
				}
			})
		}
	}
	if len(sites) == 0 {
		return
	}
	tracked := func(obj types.Object) (int, bool) {
		if obj == nil {
			return 0, false
		}
		i, ok := varIdx[obj]
		return i, ok
	}

	// Problem 1 — outstanding obligations (forward, may): fact i means
	// "checkout site i has reached this point unreleased and
	// untransferred on some path".
	obFlow := &Flow{
		Dir: Forward, NumFacts: len(sites), MeetUnion: true,
		Transfer: func(b *BasicBlock, in BitSet) BitSet {
			out := in.Copy()
			for _, n := range b.Nodes {
				a.applyObligations(pkg.Info, sums, n, sites, out)
			}
			if b.PanicExit {
				for i := range sites {
					out.Clear(i)
				}
			}
			return out
		},
	}
	obIn, _ := Solve(g, obFlow)

	// Deferred calls run at Exit: settle what they release or transfer,
	// then report what is still outstanding.
	atExit := obIn[g.Exit.Index].Copy()
	for _, call := range g.ExitCalls {
		a.applyObligations(pkg.Info, sums, call, sites, atExit)
	}
	for i, s := range sites {
		if atExit.Has(i) {
			report(s.pos, "%s checked out from %s here may not be released on every path; release it, or transfer ownership (bare value to a field, return, channel, or call)",
				s.obj.Name(), s.what)
		}
	}

	// Problem 2 — released state (forward, may): fact j means "variable j
	// was released on some path". A use while the fact holds is a
	// use-after-release.
	relFlow := &Flow{
		Dir: Forward, NumFacts: len(varIdx), MeetUnion: true,
		Transfer: func(b *BasicBlock, in BitSet) BitSet {
			out := in.Copy()
			for _, n := range b.Nodes {
				a.applyReleased(pkg.Info, sums, n, tracked, out)
			}
			return out
		},
	}
	relIn, _ := Solve(g, relFlow)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		w := relIn[b.Index].Copy()
		for _, n := range b.Nodes {
			for _, id := range identUses(pkg.Info, n) {
				if i, ok := tracked(pkg.Info.Uses[id]); ok && w.Has(i) {
					report(id.Pos(), "%s is used after being released to its pool; the buffer may already serve another batch", id.Name)
				}
			}
			a.applyReleased(pkg.Info, sums, n, tracked, w)
		}
	}
	// Deferred calls at Exit see the function's final state.
	w := relIn[g.Exit.Index].Copy()
	for _, call := range g.ExitCalls {
		for _, id := range identUses(pkg.Info, call) {
			if i, ok := tracked(pkg.Info.Uses[id]); ok && w.Has(i) {
				report(id.Pos(), "deferred call uses %s after it was released to its pool", id.Name)
			}
		}
		a.applyReleased(pkg.Info, sums, call, tracked, w)
	}
}

// applyObligations updates the obligation set across one node: a new
// checkout re-arms its site, a release or transfer of the bound variable
// discharges every site bound to it.
func (a *Poolsafe) applyObligations(info *types.Info, sums *Summaries, n ast.Node, sites []checkoutSite, facts BitSet) {
	clearVar := func(obj types.Object) {
		for i, s := range sites {
			if s.obj == obj {
				facts.Clear(i)
			}
		}
	}
	// Releases first (a release is not a transfer; it must not double as
	// one), then transfers, then fresh checkouts arm their site.
	for _, obj := range releasedObjects(info, sums, n) {
		clearVar(obj)
	}
	// A nil comparison discharges the obligation: sync.Pool.Get returns
	// nil when empty, and the analysis is not path-sensitive about
	// nilness, so `if v := pool.Get(); v != nil { ... }` would otherwise
	// flag the empty-pool branch. Arena checkouts never return nil, so
	// real leaks don't hide behind this (documented in DESIGN.md §13).
	inspectOpaque(n, func(m ast.Node) {
		be, ok := m.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
				if other, ok := ast.Unparen(be.X).(*ast.Ident); ok && other != id {
					clearVar(info.Uses[other])
				}
				if other, ok := ast.Unparen(be.Y).(*ast.Ident); ok && other != id {
					clearVar(info.Uses[other])
				}
			}
		}
	})
	for _, obj := range transferredObjects(info, sums, n) {
		clearVar(obj)
	}
	forEachAssignedVar(info, n, func(obj types.Object) {
		clearVar(obj) // reassignment: the old value's obligation is gone
	})
	forEachCheckoutBinding(info, n, func(obj types.Object, call *ast.CallExpr, what string) {
		for i, s := range sites {
			if s.pos == call.Pos() {
				facts.Set(i)
			} else if s.obj == obj {
				facts.Clear(i)
			}
		}
	})
}

// applyReleased updates the released set across one node.
func (a *Poolsafe) applyReleased(info *types.Info, sums *Summaries, n ast.Node, tracked func(types.Object) (int, bool), facts BitSet) {
	for _, obj := range releasedObjects(info, sums, n) {
		if i, ok := tracked(obj); ok {
			facts.Set(i)
		}
	}
	forEachAssignedVar(info, n, func(obj types.Object) {
		if i, ok := tracked(obj); ok {
			facts.Clear(i)
		}
	})
}

// forEachCheckoutBinding finds `v := arena.GetBuf(...)`-shaped bindings
// in a node: an assignment or declaration whose right-hand side is a
// checkout call (possibly behind a type assertion, as in
// `pool.Get().(*job)`) bound to a plain local identifier.
func forEachCheckoutBinding(info *types.Info, n ast.Node, fn func(obj types.Object, call *ast.CallExpr, what string)) {
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, what, ok := checkoutCall(info, rhs)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, isVar := obj.(*types.Var); isVar && !v.IsField() {
			fn(obj, call, what)
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				bind(s.Lhs[i], s.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					bind(vs.Names[i], vs.Values[i])
				}
			}
		}
	}
}

// checkoutCall recognizes pooled-checkout calls: sync.Pool.Get, and the
// GetBuf/GetWords/GetResults methods of a type named Arena (the
// internal/runtime result arena; matching by name keeps fixtures
// self-contained). A wrapping type assertion or parens are looked
// through.
func checkoutCall(info *types.Info, e ast.Expr) (*ast.CallExpr, string, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil, "", false
	}
	recv := recvTypeName(fn)
	switch fn.Name() {
	case "Get":
		if recv == "Pool" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			return call, "sync.Pool.Get", true
		}
	case "GetBuf", "GetWords", "GetResults":
		if recv == "Arena" {
			return call, "Arena." + fn.Name(), true
		}
	}
	return nil, "", false
}

// releasedObjects returns the variables a node releases: direct release
// calls (Put/PutBuf/PutWords/Release) plus calls to module functions
// whose summary releases the corresponding argument. DeferStmt nodes
// release nothing at registration — their call runs at Exit.
func releasedObjects(info *types.Info, sums *Summaries, n ast.Node) []types.Object {
	var out []types.Object
	inspectOpaque(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if objs, ok := releaseTargets(info, call); ok {
			out = append(out, objs...)
			return
		}
		if eff := sums.Effects(CalleeFunc(info, call)); eff != nil {
			if eff.ReleasesRecv {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					out = append(out, rootObject(info, sel.X))
				}
			}
			for i, rel := range eff.ReleasesParam {
				if rel && i < len(call.Args) {
					out = append(out, rootObject(info, call.Args[i]))
				}
			}
		}
	})
	return out
}

// transferredObjects returns the variables whose ownership a node hands
// away: the bare value returned, stored into a field/index/global,
// sent on a channel, used as a call argument or composite-literal
// element, or captured by a function literal.
func transferredObjects(info *types.Info, sums *Summaries, n ast.Node) []types.Object {
	var out []types.Object
	add := func(e ast.Expr) {
		for _, id := range bareIdents(e) {
			if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			add(r)
		}
	case *ast.SendStmt:
		add(s.Value)
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			// Storing into anything but a plain local (a field, an index,
			// a dereference) moves the value where this function's paths
			// no longer govern it.
			if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain && i < len(s.Rhs) {
				add(s.Rhs[i])
			} else if i < len(s.Rhs) {
				// b := v (or b := v.(*Buf)) aliases the value; the alias
				// owns it now — bareIdents sees through the assertion but
				// not through field or index reads.
				add(s.Rhs[i])
			}
		}
	}
	// Call arguments transfer unless the callee is a release (release
	// already handled) — and function literals capture.
	inspectOpaque(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		if _, isRelease := releaseTargets(info, call); isRelease {
			return
		}
		for _, arg := range call.Args {
			add(arg)
		}
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						out = append(out, obj)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return out
}

// forEachAssignedVar reports plain local identifiers a node writes to.
func forEachAssignedVar(info *types.Info, n ast.Node, fn func(types.Object)) {
	s, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				fn(obj)
			}
		}
	}
}

// bareIdents returns the identifiers that appear in ownership-capable
// positions of an expression: the value itself (or its address), not a
// field, element, slice view, or comparison of it. `res`, `&res`, and a
// composite element `{res}` are bare; `res.IDs`, `res[i]`, and
// `res == nil` are mere reads.
func bareIdents(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name != "_" {
				out = append(out, x)
			}
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				walk(x.X)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
					continue
				}
				walk(el)
			}
		case *ast.TypeAssertExpr:
			walk(x.X)
		}
	}
	walk(e)
	return out
}

// identUses returns every identifier read by a node: all mentions except
// pure-write positions (a plain ident as an assignment's left-hand
// side). Function literals are opaque (their body runs later); a
// DeferStmt contributes its call's receiver and arguments, which are
// evaluated at registration time.
func identUses(info *types.Info, n ast.Node) []*ast.Ident {
	writes := map[*ast.Ident]bool{}
	if s, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				writes[id] = true
			}
		}
	}
	var out []*ast.Ident
	inspectOpaque(n, func(m ast.Node) {
		if id, ok := m.(*ast.Ident); ok && !writes[id] {
			if _, isVar := info.Uses[id].(*types.Var); isVar {
				out = append(out, id)
			}
		}
	})
	return out
}

// inspectOpaque walks a node treating *ast.FuncLit bodies as opaque,
// and *ast.DeferStmt / *ast.GoStmt as contributing only their
// registration-time expressions (receiver chain and arguments — the
// deferred call runs at Exit, the spawned call on another goroutine).
func inspectOpaque(n ast.Node, fn func(ast.Node)) {
	var walk func(n ast.Node)
	walkCallSetup := func(call *ast.CallExpr) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			walk(sel.X)
		}
		for _, a := range call.Args {
			walk(a)
		}
	}
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch d := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				walkCallSetup(d.Call)
				return false
			case *ast.GoStmt:
				walkCallSetup(d.Call)
				return false
			}
			if m != nil {
				fn(m)
			}
			return true
		})
	}
	walk(n)
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes per-function effect summaries that let the
// intra-procedural dataflow analyzers see one level across calls — the
// two effects the lifetime invariants depend on:
//
//   - blocks: calling the function may park the goroutine (channel
//     send/receive, select without default, ranging over a channel,
//     time.Sleep, WaitGroup/Cond waits, net I/O) — directly or through a
//     call to another module function that does. lockhold uses this to
//     flag mutexes held across pool dispatch and friends without
//     special-casing every wrapper.
//   - releases: the function hands one of its parameters (or its
//     receiver) back to a pool or arena (sync.Pool.Put, Arena.PutBuf /
//     PutWords, a Release method). poolsafe uses this so a helper that
//     releases on the caller's behalf both discharges the obligation and
//     poisons later uses.
//
// Summaries are propagated through module-internal calls to a bounded
// fixpoint; calls into the standard library use the primitive table
// only, and calls through interfaces or function values are assumed
// effect-free (a documented imprecision — see DESIGN.md §13).

// OwnsDirective marks a function that takes ownership of arena-backed
// values it receives or returns: poolsafe treats passing a tracked value
// to it as a transfer, and arenaescape allows arena views to escape
// through its results. The directive may carry a trailing note
// ("//fclint:owns — why"), which is encouraged.
const OwnsDirective = "//fclint:owns"

// hasOwnsDirective reports whether a doc comment carries the owns
// directive, with or without a trailing explanation.
func hasOwnsDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		t := c.Text
		if t == OwnsDirective || len(t) > len(OwnsDirective) && t[:len(OwnsDirective)+1] == OwnsDirective+" " {
			return true
		}
	}
	return false
}

// Effects is one function's summary.
type Effects struct {
	// Blocks reports that calling the function may park the goroutine.
	Blocks bool
	// BlocksWhy names the first blocking primitive or callee found, for
	// diagnostics ("channel receive", "call to Pool.Dispatch").
	BlocksWhy string
	// ReleasesRecv and ReleasesParam report which inputs the function
	// returns to a pool/arena (param indices follow the declared order).
	ReleasesRecv  bool
	ReleasesParam []bool
	// Owns is set by the fclint:owns directive.
	Owns bool
}

// Summaries maps every function declared in the analyzed packages to its
// effects.
type Summaries struct {
	fns map[*types.Func]*Effects
	// bodies lets the propagation passes rescan call sites.
	bodies map[*types.Func]*funcBody
}

type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Effects returns fn's summary, or nil for functions outside the
// analyzed set (stdlib, interface methods).
func (s *Summaries) Effects(fn *types.Func) *Effects {
	if s == nil || fn == nil {
		return nil
	}
	return s.fns[fn]
}

// BuildSummaries scans every function declared in pkgs for primitive
// effects, then propagates the blocking and releasing effects through
// module-internal calls to a bounded fixpoint.
func BuildSummaries(pkgs []*Package) *Summaries {
	s := &Summaries{
		fns:    make(map[*types.Func]*Effects),
		bodies: make(map[*types.Func]*funcBody),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				eff := &Effects{Owns: hasOwnsDirective(fd.Doc)}
				if sig, ok := fn.Type().(*types.Signature); ok {
					eff.ReleasesParam = make([]bool, sig.Params().Len())
				}
				s.fns[fn] = eff
				s.bodies[fn] = &funcBody{pkg: pkg, decl: fd}
				s.primitiveEffects(fn, eff)
			}
		}
	}
	// Propagate call effects to a bounded fixpoint. The bound is a
	// backstop against summary cycles through recursion; real call chains
	// in the module are far shallower.
	for iter := 0; iter < 20; iter++ {
		if !s.propagate() {
			break
		}
	}
	return s
}

// primitiveEffects records fn's direct effects: blocking primitives and
// releases of its own parameters/receiver. FuncLit bodies are skipped
// (they run on their own schedule) unless immediately invoked; DeferStmt
// bodies count (deferred calls run on this goroutine before return).
func (s *Summaries) primitiveEffects(fn *types.Func, eff *Effects) {
	fb := s.bodies[fn]
	pkg, fd := fb.pkg, fb.decl
	params := paramObjects(pkg.Info, fd)
	var recv types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}

	exempt := nonBlockingComms(fd.Body)
	inspectNoFuncLit(fd.Body, func(n ast.Node) {
		if why, ok := blockingPrimitive(pkg.Info, n); ok && !eff.Blocks && !exempt[n] {
			eff.Blocks, eff.BlocksWhy = true, why
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		released, ok := releaseTargets(pkg.Info, call)
		if !ok {
			return
		}
		for _, obj := range released {
			if obj == nil {
				continue
			}
			if obj == recv {
				eff.ReleasesRecv = true
			}
			for i, p := range params {
				if obj == p {
					eff.ReleasesParam[i] = true
				}
			}
		}
	})
}

// propagate folds callee summaries into callers once; reports change.
func (s *Summaries) propagate() bool {
	changed := false
	for fn, fb := range s.bodies {
		eff := s.fns[fn]
		pkg, fd := fb.pkg, fb.decl
		params := paramObjects(pkg.Info, fd)
		var recv types.Object
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			recv = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
		}
		inspectNoFuncLit(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := CalleeFunc(pkg.Info, call)
			ce := s.fns[callee]
			if ce == nil {
				return
			}
			if ce.Blocks && !eff.Blocks {
				eff.Blocks = true
				eff.BlocksWhy = "call to " + callee.Name() + " (" + ce.BlocksWhy + ")"
				changed = true
			}
			// A callee that releases its receiver or a parameter releases
			// whatever object our caller passed in that slot.
			mark := func(obj types.Object) {
				if obj == nil {
					return
				}
				if obj == recv && !eff.ReleasesRecv {
					eff.ReleasesRecv = true
					changed = true
				}
				for i, p := range params {
					if obj == p && !eff.ReleasesParam[i] {
						eff.ReleasesParam[i] = true
						changed = true
					}
				}
			}
			if ce.ReleasesRecv {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					mark(rootObject(pkg.Info, sel.X))
				}
			}
			for i, rel := range ce.ReleasesParam {
				if rel && i < len(call.Args) {
					mark(rootObject(pkg.Info, call.Args[i]))
				}
			}
		})
	}
	return changed
}

// paramObjects resolves a declaration's parameter idents to their
// objects, in declared order (unnamed params occupy their slot as nil).
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// inspectNoFuncLit walks n, skipping function-literal bodies: a literal
// runs on its own schedule (goroutine, callback), so its effects are not
// the enclosing function's — unless it is invoked on the spot.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		// A go statement's call runs on another goroutine: its effects
		// (blocking in particular) are not the spawner's. Argument
		// expressions are evaluated here, so walk those.
		if g, ok := n.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if m != nil {
						fn(m)
					}
					return true
				})
			}
			return false
		}
		// An immediately-invoked literal does run here: keep walking
		// through the CallExpr into the literal's body.
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				fn(n)
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if m != nil {
						fn(m)
					}
					return true
				})
				for _, a := range call.Args {
					ast.Inspect(a, func(m ast.Node) bool {
						if _, ok := m.(*ast.FuncLit); ok {
							return false
						}
						if m != nil {
							fn(m)
						}
						return true
					})
				}
				return false
			}
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// blockingPrimitive reports whether a node is a primitive blocking
// operation and names it. sync.Cond.Wait is deliberately not primitive
// for lockhold's purposes — the condvar contract requires holding the
// mutex across it — but it still marks a function as blocking for
// callers holding *other* locks; that distinction lives in lockhold, so
// here Wait counts.
func blockingPrimitive(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // default clause: non-blocking poll
			}
		}
		return "select", true
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		fn := CalleeFunc(info, n)
		if fn == nil || fn.Pkg() == nil {
			return "", false
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep", true
			}
		case "sync":
			if fn.Name() == "Wait" {
				recv := recvTypeName(fn)
				if recv == "WaitGroup" {
					return "sync.WaitGroup.Wait", true
				}
				if recv == "Cond" {
					return "sync.Cond.Wait", true
				}
			}
		case "net":
			switch fn.Name() {
			case "Read", "Write", "Accept", "Dial", "DialTimeout":
				return "net." + recvTypeName(fn) + "." + fn.Name(), true
			}
		}
	}
	return "", false
}

// nonBlockingComms collects every node inside the comm clauses of select
// statements that carry a default clause: those sends and receives only
// fire when they are already ready, so they are not blocking primitives
// (the select polls and falls through to default otherwise).
func nonBlockingComms(body ast.Node) map[ast.Node]bool {
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if m != nil {
					exempt[m] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// recvTypeName names a method's receiver type ("" for plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if tn := namedTypeName(sig.Recv().Type()); tn != nil {
		return tn.Name()
	}
	return ""
}

// CalleeFunc resolves a call expression to the *types.Func it invokes:
// plain functions, package-qualified functions, and methods. Calls
// through function values, interface methods without a concrete callee,
// and built-ins resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified: pkg.F
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// releaseTargets reports the objects a call returns to a pool or arena:
// the receiver of x.Release(), the argument of Pool.Put / Arena.PutBuf /
// Arena.PutWords. ok is false when the call is not a release at all.
func releaseTargets(info *types.Info, call *ast.CallExpr) (objs []types.Object, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil, false
	}
	switch fn.Name() {
	case "Release":
		// x.Release(): the receiver goes back.
		return []types.Object{rootObject(info, sel.X)}, true
	case "Put", "PutBuf", "PutWords":
		// pool.Put(x) and friends: the argument goes back. Require a
		// pool-ish receiver type so unrelated Put methods (a map wrapper,
		// a cache) don't register as releases.
		recv := recvTypeName(fn)
		if fn.Name() == "Put" && !(recv == "Pool" && fn.Pkg() != nil && fn.Pkg().Path() == "sync") {
			return nil, false
		}
		if fn.Name() != "Put" && recv != "Arena" {
			return nil, false
		}
		if len(call.Args) != 1 {
			return nil, false
		}
		return []types.Object{rootObject(info, call.Args[0])}, true
	}
	return nil, false
}

// rootObject resolves an expression to the variable at its root: b,
// (&b), b.field and b[i] all resolve to b's object. Returns nil for
// expressions not rooted in a single identifier.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

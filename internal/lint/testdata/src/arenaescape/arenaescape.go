// Package arenaescape is the fixture for the arenaescape analyzer:
// views into pooled arena buffers (the IDs / W / RowIDs slices of the
// Buf / WordBuf / Results wrappers) must not outlive the batch. The
// wrapper type names match internal/runtime's on purpose — the analyzer
// recognizes the view selectors by name.
package arenaescape

// Buf mirrors internal/runtime.Buf.
type Buf struct{ IDs []uint32 }

// WordBuf mirrors internal/runtime.WordBuf.
type WordBuf struct{ W []uint64 }

// Results mirrors internal/runtime.Results.
type Results struct{ RowIDs [][]uint32 }

type holder struct{ view []uint32 }

type pair struct{ a, b []uint32 }

var global [][]uint32

// --- true positives ---

// returnView hands the pooled backing memory to the caller without
// declaring the transfer.
func returnView(r *Results) [][]uint32 {
	return r.RowIDs // want "returned to the caller"
}

// stash parks a view in caller-visible memory: once the batch is
// released the field silently aliases the next batch's data.
func stash(h *holder, b *Buf) {
	h.view = b.IDs // want "caller-visible memory"
}

// publish stores a view in a package variable.
func publish(r *Results) {
	global = r.RowIDs // want "package variable global"
}

// launderAttempt threads the view through locals; taint follows the
// aliases to the return.
func launderAttempt(r *Results) [][]uint32 {
	tmp := r.RowIDs
	view := tmp
	return view // want "returned to the caller"
}

// wrap smuggles the view out inside a composite literal.
func wrap(b *Buf) pair {
	return pair{a: b.IDs} // want "returned to the caller"
}

// --- tricky true negatives ---

// returnOwned legitimately transfers the batch to its caller.
//
//fclint:owns — the caller releases the batch
func returnOwned(r *Results) [][]uint32 {
	return r.RowIDs
}

// copyOut escapes a copy, not the view.
func copyOut(b *Buf) []uint32 {
	out := make([]uint32, len(b.IDs))
	copy(out, b.IDs)
	return out
}

// summarize derives scalars from the view; len() and an indexed element
// launder the taint away.
func summarize(w *WordBuf) (int, uint64) {
	n := len(w.W)
	var first uint64
	if n > 0 {
		first = w.W[0]
	}
	return n, first
}

// localOnly keeps the view inside the function; only the derived count
// leaves.
func localOnly(r *Results) int {
	ids := r.RowIDs
	total := 0
	for i := 0; i < len(ids); i++ {
		total += len(ids[i])
	}
	return total
}

// localHolder taints a local struct without letting the view out: a
// store under a local root is not an escape.
func localHolder(b *Buf) int {
	var c holder
	c.view = b.IDs
	return len(c.view)
}

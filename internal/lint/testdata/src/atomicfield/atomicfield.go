// Package atomicfix is the atomicfield analyzer fixture: a field touched
// through sync/atomic anywhere must be touched atomically everywhere;
// mutex-guarded fields and the atomic.* wrapper types must stay quiet.
package atomicfix

import (
	"sync"
	"sync/atomic"
)

// Counter mixes atomic and plain access to hits — the race the analyzer
// exists to catch before the race detector has to.
type Counter struct {
	hits int64
	name string
}

// Inc is the atomic side.
func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

// Peek is the racy plain side.
func (c *Counter) Peek() int64 {
	return c.hits // want "accessed via sync/atomic elsewhere"
}

// Reset is a racy plain write.
func (c *Counter) Reset() {
	c.hits = 0 // want "accessed via sync/atomic elsewhere"
}

// Name touches an unrelated field of the same struct: quiet.
func (c *Counter) Name() string { return c.name }

// Guarded is consistently mutex-protected: no atomic access anywhere, so
// plain access is fine.
type Guarded struct {
	mu sync.Mutex
	n  int64
}

// Inc holds the lock.
func (g *Guarded) Inc() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Wrapped uses the atomic value types, whose method set is the only
// access path: immune by construction, never flagged.
type Wrapped struct {
	n atomic.Int64
}

// Inc and Get are both safe.
func (w *Wrapped) Inc() { w.n.Add(1) }

// Get loads the wrapped counter.
func (w *Wrapped) Get() int64 { return w.n.Load() }

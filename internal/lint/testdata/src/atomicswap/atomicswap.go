// Package atomicswap is the atomicswap analyzer fixture: fields of a
// struct marked fclint:atomicswap may be touched only from the struct's
// own methods; free functions and other types' methods must go through
// the accessors, or a concurrent snapshot hot-swap can tear their reads.
package atomicswap

import "sync/atomic"

// Snap is the swappable state the box republishes wholesale. It is not
// itself marked: value copies obtained through the accessor are safe.
type Snap struct {
	Design  float64
	Version uint64
}

// Box owns the snapshot pointer; every read and write of its fields must
// stay inside its methods.
//
//fclint:atomicswap
type Box struct {
	snap atomic.Pointer[Snap]
	hits int64
}

// Install publishes the first snapshot.
func (b *Box) Install(s *Snap) { b.snap.Store(s) }

// Design is the accessor: field reads inside methods are allowed.
func (b *Box) Design() float64 { return b.snap.Load().Design }

// Touch may combine fields freely from inside.
func (b *Box) Touch() {
	b.hits++
}

// Leak reads the protected pointer from a free function in the very same
// package: flagged — the compiler would have allowed it.
func Leak(b *Box) *Snap {
	return b.snap.Load() // want "snapshot-protected"
}

// Poke writes through it from outside: flagged.
func Poke(b *Box, s *Snap) {
	b.snap.Store(s) // want "snapshot-protected"
}

// Wrapper holds a box; its methods are NOT the box's methods.
type Wrapper struct {
	b *Box
}

// Sneak reaches through two selectors; the inner one is the violation.
func (w *Wrapper) Sneak() float64 {
	return w.b.snap.Load().Design // want "snapshot-protected"
}

// Safe goes through the accessor: quiet.
func (w *Wrapper) Safe() float64 { return w.b.Design() }

// Plain is unmarked: direct field access anywhere is nobody's business.
type Plain struct{ n int }

// Use touches Plain from a free function: quiet.
func Use(p *Plain) int { return p.n }

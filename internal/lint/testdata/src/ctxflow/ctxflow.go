// Package ctxflowfix is the ctxflow analyzer fixture: fresh context
// roots and nil contexts in library code must be flagged; the documented
// *Context wrapper-shim idiom must stay quiet.
package ctxflowfix

import "context"

func runner(ctx context.Context) error { return ctx.Err() }

// Bad mints a fresh root mid-stack, detaching the caller's deadline.
func Bad() error {
	return runner(context.Background()) // want "detaches the caller's deadline"
}

// BadTODO is the same bug spelled TODO.
func BadTODO() error {
	return runner(context.TODO()) // want "detaches the caller's deadline"
}

// BadDrop holds a context but hands its callee a fresh root anyway.
func BadDrop(ctx context.Context) error {
	_ = ctx
	return runner(context.Background()) // want "detaches the caller's deadline"
}

// BadNil drops the deadline the lazy way.
func BadNil(ctx context.Context) error {
	_ = ctx
	return runner(nil) // want "nil passed as context.Context"
}

// Run is the context-less convenience entry: a shim that hands a fresh
// root straight to its *Context twin. This is the allowed idiom.
func Run() error {
	return RunContext(context.Background())
}

// RunContext is the real entry; deriving a root here (the nil-default)
// is inside the audited wrapper layer and allowed.
func RunContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return runner(ctx)
}

// Threaded passes its context straight through: quiet.
func Threaded(ctx context.Context) error {
	return runner(ctx)
}

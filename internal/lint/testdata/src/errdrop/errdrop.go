// Package errdropfix is the errdrop analyzer fixture: bare call
// statements that discard an error result must be flagged; handled
// errors, explicit blank assignments, deferred teardown, and error-free
// calls must stay quiet.
package errdropfix

import "errors"

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func fine() int { return 1 }

// Bad drops errors silently.
func Bad() {
	fallible() // want "silently dropped"
	pair()     // want "silently dropped"
}

// Good handles, visibly discards, or has nothing to drop.
func Good() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible()
	_, _ = pair()
	fine()
	defer fallible()
	return nil
}

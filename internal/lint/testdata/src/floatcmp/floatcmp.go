// Package floatcmpfix is the floatcmp analyzer fixture: direct ==/!= on
// floating-point values must be flagged; ordered comparisons, integer
// equality, and epsilon-style code must stay quiet.
package floatcmpfix

const eps = 1e-12

// Bad compares two float64 values exactly.
func Bad(a, b float64) bool {
	return a == b // want "floating-point"
}

// BadZero is the sentinel-zero pattern that bites near the APS crossover.
func BadZero(x float64) bool {
	return x != 0 // want "floating-point"
}

// Bad32 shows float32 is covered too.
func Bad32(a float32) bool {
	return a == 1.5 // want "floating-point"
}

// Good is the epsilon idiom the contract requires.
func Good(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Ints shows integer equality stays legal.
func Ints(a, b int) bool { return a == b }

// Ordered shows <, <=, >, >= on floats stay legal.
func Ordered(a, b float64) bool { return a < b || a >= 2*b }

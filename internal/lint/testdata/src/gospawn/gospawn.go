// Package gospawnfix is the gospawn analyzer fixture: raw go statements
// in library code must be flagged whatever they spawn; everything that
// merely mentions goroutine-adjacent machinery (closures, defers,
// channel sends) must stay quiet.
package gospawnfix

import "sync"

type server struct{ wg sync.WaitGroup }

func (s *server) run() {}

// BadFuncLit spawns an anonymous function — the pattern the pool exists
// to replace.
func BadFuncLit(work func()) {
	go work() // want "raw go statement in library package"
}

// BadClosure spawns a closure over local state.
func BadClosure(n int) {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func() { // want "raw go statement in library package"
			results[i] = i * i
		}()
	}
}

// BadMethod spawns a method value.
func (s *server) BadMethod() {
	s.wg.Add(1)
	go s.run() // want "raw go statement in library package"
}

// Good runs the same work synchronously: no spawn, no finding.
func Good(work func()) {
	work()
}

// GoodDefer proves deferred calls and closures alone are not flagged.
func GoodDefer(mu *sync.Mutex) func() {
	mu.Lock()
	defer mu.Unlock()
	return func() {}
}

// Package ignore is the fixture for the //fclint:ignore suppression
// mechanics: a well-formed directive silences the finding on its line
// (or the line below), and the malformed variants — missing reason,
// unknown analyzer, nothing left to suppress — are diagnostics
// themselves. The expectations live in TestIgnoreDirective rather than
// in want comments: a want comment cannot share a line with the
// directive under test (both would be one comment token).
package ignore

// Results mirrors internal/runtime.Results so arenaescape has a real
// finding to suppress.
type Results struct{ RowIDs [][]uint32 }

// suppressed escapes a view, but the directive above the return accepts
// the finding with a reason: the finding must be filtered out.
func suppressed(r *Results) [][]uint32 {
	//fclint:ignore arenaescape fixture caller copies the slice immediately
	return r.RowIDs
}

// missingReason omits the mandatory justification: the directive does
// not suppress (the return below still fires) and is flagged itself.
func missingReason(r *Results) [][]uint32 {
	//fclint:ignore arenaescape
	return r.RowIDs
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer() {
	//fclint:ignore nosuchcheck reasons do not save an unknown analyzer
}

// stale suppresses a finding that no longer fires.
func stale(r *Results) int {
	//fclint:ignore arenaescape nothing on the next line escapes anymore
	return len(r.RowIDs)
}

// Package lockhold is the fixture for the lockhold analyzer: Lock /
// Unlock pairing on every path, and no blocking operation while an
// exclusive lock is held.
package lockhold

import (
	"errors"
	"sync"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

var errSomething = errors.New("fixture failure")

// blockingHelper parks on a channel receive; the call summaries must
// carry the blocking effect into callers.
func blockingHelper(ch chan int) int { return <-ch }

// --- true positives ---

// missingUnlock leaks the mutex on the early-return path.
func (g *guarded) missingUnlock(fail bool) error {
	g.mu.Lock() // want "not matched by Unlock on every path"
	if fail {
		return errSomething
	}
	g.mu.Unlock()
	return nil
}

// rlockLeak leaks the read lock on the early-return path.
func (g *guarded) rlockLeak(fail bool) int {
	g.rw.RLock() // want "not matched by RUnlock on every path"
	if fail {
		return -1
	}
	v := g.n
	g.rw.RUnlock()
	return v
}

// sendWhileHeld parks on a channel send with the write lock held: every
// contender stalls behind the parked writer.
func (g *guarded) sendWhileHeld(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want "held across channel send"
}

// helperWhileHeld blocks through a summarized callee while holding the
// write lock.
func (g *guarded) helperWhileHeld(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return blockingHelper(ch) // want "held across call to blockingHelper"
}

// --- tricky true negatives ---

// deferUnlock covers every path, early returns and panics included,
// because the deferred unlock runs at Exit.
func (g *guarded) deferUnlock(fail bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fail {
		return errSomething
	}
	g.n++
	return nil
}

// relockLoop re-acquires the lock each iteration; the back edge must
// not carry one iteration's acquisition into the next as unmatched.
func (g *guarded) relockLoop(n int) {
	for i := 0; i < n; i++ {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// branchUnlock releases on both branches even though no single block
// both locks and unlocks.
func (g *guarded) branchUnlock(fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
		return
	}
	g.n++
	g.mu.Unlock()
}

// gotoCleanup funnels every path through a labeled unlock.
func (g *guarded) gotoCleanup(n int) int {
	g.mu.Lock()
	if n < 0 {
		goto done
	}
	g.n += n
done:
	g.mu.Unlock()
	return g.n
}

// panicWhileHeld only skips the unlock on a panicking path, which is
// excused (the goroutine is going down).
func (g *guarded) panicWhileHeld(bad bool) {
	g.mu.Lock()
	if bad {
		panic("invariant violated")
	}
	g.mu.Unlock()
}

// readSend holds only the read lock across the send: readers don't
// exclude each other, so the blocking rule does not apply.
func (g *guarded) readSend(ch chan int) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	ch <- 1
}

// unlockThenSend releases the write lock before parking.
func (g *guarded) unlockThenSend(ch chan int) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	ch <- g.n
}

// pollWhileHeld holds the lock across a select with a default clause:
// the send only fires when already ready, so nothing parks.
func (g *guarded) pollWhileHeld(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

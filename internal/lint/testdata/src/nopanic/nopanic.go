// Package nopanicfix is the nopanic analyzer fixture: library code that
// panics instead of returning errors must be flagged; error-returning
// code must stay quiet.
package nopanicfix

import "errors"

// Bad panics on invalid input — the pattern the analyzer exists to stop.
func Bad(i int) int {
	if i < 0 {
		panic("negative input") // want "panic in library package"
	}
	return i
}

// BadFmt panics through a helper expression.
func BadFmt(name string) {
	panic(errors.New("no such column " + name)) // want "panic in library package"
}

// Good reports the same failure as an error.
func Good(i int) (int, error) {
	if i < 0 {
		return 0, errors.New("negative input")
	}
	return i, nil
}

// recoverOK shows that recover (the containment side) is not flagged.
func recoverOK(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
	}()
	f()
	return nil
}

// Package poolsafe is the fixture for the poolsafe analyzer: checkout
// and release discipline over a local Arena mirror and sync.Pool. The
// Arena/Buf names match internal/runtime's checkout surface on purpose —
// the analyzer recognizes them by name so fixtures stay self-contained.
package poolsafe

import (
	"errors"
	"sync"
)

// Buf mirrors internal/runtime.Buf.
type Buf struct{ IDs []uint32 }

// Arena mirrors internal/runtime.Arena's checkout surface.
type Arena struct{ pool sync.Pool }

func (a *Arena) GetBuf(n int) *Buf { return &Buf{IDs: make([]uint32, 0, n)} }

func (a *Arena) PutBuf(b *Buf) {}

var errEarly = errors.New("early failure")

// releaseHelper releases its parameter; the cross-function call
// summaries must carry this effect into callers.
func releaseHelper(a *Arena, b *Buf) {
	a.PutBuf(b)
}

// --- true positives ---

// useAfterPut reads the buffer after handing it back: the memory may
// already serve another batch.
func useAfterPut(a *Arena) uint32 {
	b := a.GetBuf(8)
	a.PutBuf(b)
	return b.IDs[0] // want "used after being released"
}

// doubleRelease returns the same buffer twice; the second Put is a use
// of an already-released value.
func doubleRelease(a *Arena) {
	b := a.GetBuf(8)
	a.PutBuf(b)
	a.PutBuf(b) // want "used after being released"
}

// leakOnError forgets the buffer on the early-return path.
func leakOnError(a *Arena, fail bool) error {
	b := a.GetBuf(8) // want "may not be released on every path"
	if fail {
		return errEarly
	}
	a.PutBuf(b)
	return nil
}

// useAfterHelperRelease releases through a helper: the summary's
// releases-param effect must poison later uses exactly like a direct
// Put would.
func useAfterHelperRelease(a *Arena) uint32 {
	b := a.GetBuf(8)
	releaseHelper(a, b)
	return b.IDs[0] // want "used after being released"
}

// --- tricky true negatives ---

// deferRelease settles the obligation at the function's Exit block; the
// uses in between precede the deferred release.
func deferRelease(a *Arena) {
	b := a.GetBuf(8)
	defer a.PutBuf(b)
	b.IDs = append(b.IDs, 1)
}

// releaseBothBranches releases on every path even though no single
// block both checks out and releases.
func releaseBothBranches(a *Arena, big bool) {
	b := a.GetBuf(8)
	if big {
		a.PutBuf(b)
	} else {
		a.PutBuf(b)
	}
}

// releaseViaHelper discharges the obligation through the summarized
// helper and never touches the buffer again.
func releaseViaHelper(a *Arena) {
	b := a.GetBuf(8)
	releaseHelper(a, b)
}

// checkoutForCaller transfers ownership by returning the bare value;
// the caller inherits the release obligation.
func checkoutForCaller(a *Arena) *Buf {
	b := a.GetBuf(8)
	return b
}

// loopCheckout re-checks-out each iteration; the back edge must not
// smear one iteration's released state onto the next checkout.
func loopCheckout(a *Arena) {
	for i := 0; i < 4; i++ {
		b := a.GetBuf(8)
		b.IDs = append(b.IDs, uint32(i))
		a.PutBuf(b)
	}
}

// panicPath loses the buffer only on a panicking path, which is excused
// (the batch is already lost; GC reclaims it).
func panicPath(a *Arena, bad bool) {
	b := a.GetBuf(8)
	if bad {
		panic("invariant violated")
	}
	a.PutBuf(b)
}

// poolGetNilGuard is the sync.Pool idiom: Get may return nil, and the
// nil comparison discharges the obligation on the empty-pool branch.
func poolGetNilGuard(p *sync.Pool) *Buf {
	if v := p.Get(); v != nil {
		b := v.(*Buf)
		return b
	}
	return &Buf{}
}

// getPutAssert checks out through a type assertion and releases through
// sync.Pool.Put.
func getPutAssert(p *sync.Pool) {
	j := p.Get().(*Buf)
	p.Put(j)
}

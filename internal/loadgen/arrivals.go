package loadgen

import (
	"math/rand"
	"time"
)

// Dist selects the open-loop interarrival process.
type Dist int

const (
	// Deterministic spaces arrivals exactly 1/rate apart — the classic
	// constant-rate load profile, lowest-variance view of the knee.
	Deterministic Dist = iota
	// Poisson draws exponential interarrival gaps (a memoryless arrival
	// process, the standard open-system model for independent clients).
	Poisson
)

// String names the distribution for reports and JSON documents.
func (d Dist) String() string {
	switch d {
	case Poisson:
		return "poisson"
	default:
		return "deterministic"
	}
}

// rampFloor bounds how far the ramp suppresses the instantaneous rate at
// the very start of a run: the first gaps are drawn at no less than this
// fraction of the target rate, so the schedule never starts with a
// near-infinite gap.
const rampFloor = 0.05

// Arrivals generates the intended arrival schedule of an open-loop run:
// a deterministic sequence of offsets from the run's start, driven only
// by the seed — no clock involved, so the schedule is reproducible and
// unit-testable without sleeping. The open-loop driver timestamps each
// operation at its intended offset (not at the moment the submission
// finally happened), which is what keeps the latency measurement free of
// coordinated omission: a stalled server makes latencies grow, it does
// not make the generator stop asking.
type Arrivals struct {
	dist Dist
	rate float64
	ramp time.Duration
	rng  *rand.Rand
	next time.Duration
}

// NewArrivals builds the schedule generator. rate is the target arrival
// rate in operations per second (must be > 0); ramp, when positive,
// scales the instantaneous rate linearly from rampFloor·rate up to rate
// over the first ramp of the run, so a cold server warms before the full
// offered load lands.
func NewArrivals(dist Dist, rate float64, ramp time.Duration, seed int64) *Arrivals {
	if rate <= 0 {
		rate = 1
	}
	return &Arrivals{
		dist: dist,
		rate: rate,
		ramp: ramp,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Next returns the intended offset (from the run start) of the next
// operation. Offsets are strictly increasing. It does not allocate.
func (a *Arrivals) Next() time.Duration {
	r := a.rate
	if a.ramp > 0 && a.next < a.ramp {
		frac := float64(a.next) / float64(a.ramp)
		if frac < rampFloor {
			frac = rampFloor
		}
		r = a.rate * frac
	}
	var gapSec float64
	switch a.dist {
	case Poisson:
		gapSec = a.rng.ExpFloat64() / r
	default:
		gapSec = 1 / r
	}
	gap := time.Duration(gapSec * float64(time.Second))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	a.next += gap
	return a.next
}

// Rate returns the target arrival rate the generator was built with.
func (a *Arrivals) Rate() float64 { return a.rate }

package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestArrivalsDeterministicRate pins the constant-rate schedule: gaps of
// exactly 1/rate, offsets accumulating without drift — no wall clock
// involved anywhere.
func TestArrivalsDeterministicRate(t *testing.T) {
	a := NewArrivals(Deterministic, 1000, 0, 1)
	prev := time.Duration(0)
	for i := 1; i <= 1000; i++ {
		off := a.Next()
		gap := off - prev
		if gap != time.Millisecond {
			t.Fatalf("gap %d = %v, want 1ms", i, gap)
		}
		prev = off
	}
	if prev != time.Second {
		t.Fatalf("offset after 1000 arrivals at 1000/s = %v, want 1s", prev)
	}
}

// TestArrivalsPoissonStatistics checks the exponential interarrival
// process: mean gap 1/rate, coefficient of variation ~1, fully
// reproducible per seed.
func TestArrivalsPoissonStatistics(t *testing.T) {
	const rate, n = 1000.0, 20000
	a := NewArrivals(Poisson, rate, 0, 42)
	gaps := make([]float64, n)
	prev := time.Duration(0)
	for i := range gaps {
		off := a.Next()
		gaps[i] = (off - prev).Seconds()
		prev = off
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean gap %.6f s, want within 10%% of %.6f s", mean, 1/rate)
	}
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/(n-1)) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("coefficient of variation %.3f, want ~1 (exponential gaps)", cv)
	}

	// Determinism: the same seed regenerates the identical schedule.
	b := NewArrivals(Poisson, rate, 0, 42)
	c := NewArrivals(Poisson, rate, 0, 43)
	same, diff := true, false
	prevB, prevC := time.Duration(0), time.Duration(0)
	for i := 0; i < 100; i++ {
		ob, oc := b.Next(), c.Next()
		if gaps[i] != (ob - prevB).Seconds() {
			same = false
		}
		if ob != oc {
			diff = true
		}
		prevB, prevC = ob, oc
	}
	_ = prevC
	if !same {
		t.Fatal("same seed produced a different arrival schedule")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsRampSlowsEarlyArrivals pins the warm-up behaviour: during
// the ramp the instantaneous rate is scaled down, so the first half of
// the ramp window holds fewer arrivals than an equal window at full
// rate.
func TestArrivalsRampSlowsEarlyArrivals(t *testing.T) {
	const rate = 1000.0
	ramp := 400 * time.Millisecond
	a := NewArrivals(Deterministic, rate, ramp, 7)
	early, full := 0, 0
	for {
		off := a.Next()
		if off > 600*time.Millisecond {
			break
		}
		if off <= 200*time.Millisecond {
			early++
		}
		if off > 400*time.Millisecond {
			full++
		}
	}
	if early == 0 {
		t.Fatal("no arrivals at all during the ramp")
	}
	// Full-rate 200ms window carries ~200 arrivals; the first half of
	// the ramp (rate scaled to <=50%) must carry well under that.
	if early >= full {
		t.Fatalf("ramp did not slow early arrivals: %d in first 200ms vs %d in a full-rate 200ms window", early, full)
	}
	if full < 150 {
		t.Fatalf("post-ramp window carried %d arrivals, want ~200", full)
	}
}

// TestArrivalsRateAccounting pins the end-to-end rate the schedule
// offers: arrivals within a duration ~= rate*duration, for both
// distributions.
func TestArrivalsRateAccounting(t *testing.T) {
	for _, dist := range []Dist{Deterministic, Poisson} {
		a := NewArrivals(dist, 500, 0, 11)
		n := 0
		for {
			if a.Next() > 2*time.Second {
				break
			}
			n++
		}
		want := 1000.0
		if math.Abs(float64(n)-want) > want*0.05 {
			t.Fatalf("%v: %d arrivals in 2s at 500/s, want ~1000", dist, n)
		}
	}
}

// TestArrivalsZeroAlloc guards the schedule generator's per-arrival
// path: Next must not allocate (it runs once per offered op).
func TestArrivalsZeroAlloc(t *testing.T) {
	a := NewArrivals(Poisson, 1000, time.Second, 3)
	if n := testing.AllocsPerRun(1000, func() { a.Next() }); n != 0 {
		t.Fatalf("Arrivals.Next allocates %.1f per call, want 0", n)
	}
}

package loadgen

import (
	"context"
	"time"
)

// Clock abstracts time for the load drivers. The open-loop arrival
// dispatcher schedules against it and every latency sample is taken from
// it, so tests inject a deterministic clock and the drivers' scheduling
// logic runs without wall-clock sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// SleepUntil blocks until t (immediately if t has passed) or until
	// ctx is done; it reports false when ctx won.
	SleepUntil(ctx context.Context, t time.Time) bool
}

// wallClock is the production Clock: real time, timer-based sleeps that
// abort promptly on context death.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) SleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// WallClock returns the real-time clock the drivers default to.
func WallClock() Clock { return wallClock{} }

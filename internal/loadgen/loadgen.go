// Package loadgen is the traffic generator for the Figure 11 server: a
// closed-loop driver (N workers × duration, optional think time — load
// self-limits as latency grows) and an open-loop driver (fixed arrival
// rate, Poisson or deterministic, unbounded virtual clients — offered
// load does NOT back off when the server slows, which is what exposes
// queueing collapse past saturation). Both submit through the serve
// path's SubmitContext with per-query deadlines, so admission control,
// cancellation, and `ErrOverloaded` shedding are exercised exactly the
// way real many-client traffic exercises them, and the batch size q the
// APS model sees is created by the workload, not hand-built.
//
// Coordinated omission: the open-loop driver timestamps every operation
// at its *intended* arrival time (from the deterministic Arrivals
// schedule), not at the moment the submission happened. A stalled server
// therefore shows up as growing latency on every op scheduled behind the
// stall — the generator never silently stops offering load.
//
// Accounting is conservative by construction and checked by tests:
// every offered operation lands in exactly one of {accepted, shed,
// submit-error}, and every accepted operation receives exactly one reply
// counted in exactly one of {replied, reply-error, cancelled}.
package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fastcolumns/internal/obs"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/scheduler"
)

// Submitter is the serve-path surface the drivers exercise.
// *fastcolumns.Server satisfies it.
type Submitter interface {
	SubmitContext(ctx context.Context, table, attr string, pred scan.Predicate) (<-chan scheduler.Reply, error)
}

// Options configures what the drivers submit and where they record.
type Options struct {
	// Table and Attr name the attribute stream every query predicates on.
	Table, Attr string
	// Domain is the value domain predicates are drawn over.
	Domain int32
	// Mix is the weighted query mix (build with NewMix or a constructor).
	Mix Mix
	// Timeout is the per-query deadline, measured from the operation's
	// intended arrival time (0: no deadline).
	Timeout time.Duration
	// Metrics, when non-nil, mirrors the run into load.* instruments:
	// the per-mix latency histogram, in-flight gauge, and outcome
	// counters accumulate there across runs, while each Result carries
	// its own per-run distribution.
	Metrics *obs.Registry
	// Clock drives scheduling and latency timestamps (nil: wall clock).
	Clock Clock
	// Seed makes the predicate stream and arrival schedule reproducible.
	Seed int64
}

// ClosedLoop configures the closed-loop driver: a fixed population of
// workers, each submitting, waiting for the reply, thinking, repeating.
type ClosedLoop struct {
	// Workers is the concurrent client population.
	Workers int
	// Duration bounds the run (workers stop starting new ops after it).
	Duration time.Duration
	// Think is the per-worker pause between an op's reply and the next
	// submission (0: none).
	Think time.Duration
	// Ops, when positive, additionally caps the total operations started
	// across all workers — deterministic run length for tests and smokes.
	Ops int
}

// OpenLoop configures the open-loop driver: arrivals fire on the
// Arrivals schedule regardless of how many earlier ops are still
// outstanding (each op is an independent virtual client).
type OpenLoop struct {
	// Rate is the offered arrival rate in ops/second.
	Rate float64
	// Duration bounds the schedule; in-flight ops drain afterwards.
	Duration time.Duration
	// Dist selects Poisson or Deterministic interarrivals.
	Dist Dist
	// Ramp linearly ramps the rate from ~0 to Rate over this window.
	Ramp time.Duration
	// MinOps, when positive, extends the schedule past Duration until it
	// has intended at least this many arrivals (MinOps/Rate seconds).
	// Low-rate rungs of a capacity-relative sweep would otherwise
	// collect so few samples that their tail quantiles are the noise of
	// one or two order statistics.
	MinOps int64
	// Inline runs each op synchronously on the dispatcher instead of on
	// its own goroutine. Only sensible when the submitter replies
	// immediately (deterministic unit tests, dry runs); a real server
	// would stall the schedule and reintroduce coordinated omission.
	Inline bool
}

// Counts is the conservation ledger of one run.
type Counts struct {
	// Offered = Accepted + Shed + SubmitErrors.
	Offered int64 `json:"offered"`
	// Accepted = Replied + ReplyErrors + Cancelled.
	Accepted int64 `json:"accepted"`
	// Shed counts submissions refused with ErrOverloaded.
	Shed int64 `json:"shed"`
	// SubmitErrors counts submissions refused for any other reason
	// (including a context already dead at submission).
	SubmitErrors int64 `json:"submit_errors"`
	// Replied counts successful replies (these carry latency samples).
	Replied int64 `json:"replied"`
	// ReplyErrors counts replies carrying a non-context error.
	ReplyErrors int64 `json:"reply_errors"`
	// Cancelled counts replies carrying the query context's error.
	Cancelled int64 `json:"cancelled"`
}

// Conserved reports whether the ledger balances: every offered op
// accounted for once, every accepted op replied to exactly once.
func (c Counts) Conserved() bool {
	return c.Offered == c.Accepted+c.Shed+c.SubmitErrors &&
		c.Accepted == c.Replied+c.ReplyErrors+c.Cancelled
}

// Result is one run's measurement.
type Result struct {
	// Mode is "closed" or "open"; MixName names the query mix.
	Mode    string `json:"mode"`
	MixName string `json:"mix"`
	Counts
	// TargetRate is the configured open-loop rate (0 for closed loop).
	TargetRate float64 `json:"target_rate"`
	// Elapsed is the wall (or injected-clock) span of the run.
	Elapsed time.Duration `json:"elapsed_ns"`
	// OfferedRate is Offered/Elapsed; AchievedRate is Replied/Elapsed;
	// ShedRate is Shed/Offered (0 when nothing was offered).
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	ShedRate     float64 `json:"shed_rate"`
	// Latency is the per-run distribution of successful replies,
	// measured from intended arrival time (open loop) or submission
	// time (closed loop).
	Latency obs.HistogramSnapshot `json:"latency"`
	// P50/P99/P999 are the quantiles of Latency as durations.
	P50, P99, P999 time.Duration
}

// driver is the shared per-run machinery of both loops.
type driver struct {
	sub     Submitter
	clock   Clock
	table   string
	attr    string
	timeout time.Duration

	offered, accepted, shed, submitErr atomic.Int64
	replied, replyErr, cancelled       atomic.Int64

	// lat is the run-local latency distribution; the reg* instruments
	// (nil without a registry) mirror into the shared load.* namespace.
	lat         obs.Histogram
	regLat      *obs.Histogram
	regInflight *obs.Gauge
	regOffered  *obs.Counter
	regShed     *obs.Counter
	regReplied  *obs.Counter
	regErrors   *obs.Counter
	regCancel   *obs.Counter
}

func newDriver(sub Submitter, opt Options) *driver {
	d := &driver{
		sub:     sub,
		clock:   opt.Clock,
		table:   opt.Table,
		attr:    opt.Attr,
		timeout: opt.Timeout,
	}
	if d.clock == nil {
		d.clock = WallClock()
	}
	if opt.Metrics != nil {
		d.regLat = opt.Metrics.Histogram("load.latency." + opt.Mix.Name)
		d.regInflight = opt.Metrics.Gauge("load.in_flight")
		d.regOffered = opt.Metrics.Counter("load.offered")
		d.regShed = opt.Metrics.Counter("load.shed")
		d.regReplied = opt.Metrics.Counter("load.replied")
		d.regErrors = opt.Metrics.Counter("load.errors")
		d.regCancel = opt.Metrics.Counter("load.cancelled")
	}
	return d
}

// outcome classifies one finished operation for record.
type outcome int

const (
	outReplied outcome = iota
	outReplyErr
	outCancelled
	outShed
	outSubmitErr
)

// record books one finished op. This is the per-op recording path the
// zero-allocation guard pins: counter adds and histogram records only.
func (d *driver) record(out outcome, latNs int64) {
	switch out {
	case outReplied:
		d.replied.Add(1)
		d.lat.Record(latNs)
		if d.regLat != nil {
			d.regLat.Record(latNs)
			d.regReplied.Add(1)
		}
	case outReplyErr:
		d.replyErr.Add(1)
		if d.regErrors != nil {
			d.regErrors.Add(1)
		}
	case outCancelled:
		d.cancelled.Add(1)
		if d.regCancel != nil {
			d.regCancel.Add(1)
		}
	case outShed:
		d.shed.Add(1)
		if d.regShed != nil {
			d.regShed.Add(1)
		}
	case outSubmitErr:
		d.submitErr.Add(1)
		if d.regErrors != nil {
			d.regErrors.Add(1)
		}
	}
}

// do runs one operation: submit, wait for the single reply, classify.
// intended is the op's scheduled arrival time — latency and the per-op
// deadline are both measured from it.
func (d *driver) do(ctx context.Context, pred scan.Predicate, intended time.Time) {
	d.offered.Add(1)
	if d.regOffered != nil {
		d.regOffered.Add(1)
	}
	opCtx := ctx
	cancel := func() {}
	if d.timeout > 0 {
		opCtx, cancel = context.WithDeadline(ctx, intended.Add(d.timeout))
	}
	if d.regInflight != nil {
		d.regInflight.Add(1)
		defer d.regInflight.Add(-1)
	}
	ch, err := d.sub.SubmitContext(opCtx, d.table, d.attr, pred)
	if err != nil {
		cancel()
		if errors.Is(err, scheduler.ErrOverloaded) {
			d.record(outShed, 0)
		} else {
			d.record(outSubmitErr, 0)
		}
		return
	}
	d.accepted.Add(1)
	rep := <-ch
	cancel()
	switch {
	case rep.Err == nil:
		d.record(outReplied, d.clock.Now().Sub(intended).Nanoseconds())
	case errors.Is(rep.Err, context.Canceled), errors.Is(rep.Err, context.DeadlineExceeded):
		d.record(outCancelled, 0)
	default:
		d.record(outReplyErr, 0)
	}
}

// result finalizes the run into a Result.
func (d *driver) result(mode, mix string, targetRate float64, elapsed time.Duration, metrics *obs.Registry) Result {
	r := Result{
		Mode:    mode,
		MixName: mix,
		Counts: Counts{
			Offered:      d.offered.Load(),
			Accepted:     d.accepted.Load(),
			Shed:         d.shed.Load(),
			SubmitErrors: d.submitErr.Load(),
			Replied:      d.replied.Load(),
			ReplyErrors:  d.replyErr.Load(),
			Cancelled:    d.cancelled.Load(),
		},
		TargetRate: targetRate,
		Elapsed:    elapsed,
		Latency:    d.lat.Snapshot(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.OfferedRate = float64(r.Offered) / sec
		r.AchievedRate = float64(r.Replied) / sec
	}
	if r.Offered > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Offered)
	}
	r.P50 = time.Duration(r.Latency.P50)
	r.P99 = time.Duration(r.Latency.P99)
	r.P999 = time.Duration(r.Latency.P999)
	if metrics != nil {
		metrics.Gauge("load.offered_rate").Set(int64(r.OfferedRate))
		metrics.Gauge("load.achieved_rate").Set(int64(r.AchievedRate))
		metrics.Gauge("load.shed_rate_ppm").Set(int64(r.ShedRate * 1e6))
	}
	return r
}

// RunClosed drives the closed loop: cfg.Workers clients submit, wait,
// think, repeat, until cfg.Duration elapses (or cfg.Ops operations have
// started, or ctx dies). Latency is measured from each submission —
// a closed loop's offered load self-limits when the server slows, which
// is exactly why the open loop exists for saturation measurements.
func RunClosed(ctx context.Context, sub Submitter, opt Options, cfg ClosedLoop) Result {
	d := newDriver(sub, opt)
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	start := d.clock.Now()
	end := start.Add(cfg.Duration)
	var started atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		rng := rand.New(rand.NewSource(opt.Seed + int64(w)*0x9E3779B9))
		mix := opt.Mix
		rt.Go(func() {
			defer wg.Done()
			for ctx.Err() == nil {
				now := d.clock.Now()
				if !now.Before(end) {
					return
				}
				if cfg.Ops > 0 && started.Add(1) > int64(cfg.Ops) {
					return
				}
				d.do(ctx, mix.Pick(rng, opt.Domain), now)
				if cfg.Think > 0 && !d.clock.SleepUntil(ctx, d.clock.Now().Add(cfg.Think)) {
					return
				}
			}
		})
	}
	wg.Wait()
	return d.result("closed", opt.Mix.Name, 0, d.clock.Now().Sub(start), opt.Metrics)
}

// RunOpen drives the open loop: arrivals fire on the Arrivals schedule
// at cfg.Rate for cfg.Duration, each on its own virtual client, and the
// run drains every in-flight op before returning. Latency is measured
// from each op's intended arrival time (coordinated omission avoided).
func RunOpen(ctx context.Context, sub Submitter, opt Options, cfg OpenLoop) Result {
	d := newDriver(sub, opt)
	arr := NewArrivals(cfg.Dist, cfg.Rate, cfg.Ramp, opt.Seed)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5DEECE66D))
	dur := cfg.Duration
	if cfg.MinOps > 0 && cfg.Rate > 0 {
		if need := time.Duration(float64(cfg.MinOps) / cfg.Rate * float64(time.Second)); need > dur {
			dur = need
		}
	}
	start := d.clock.Now()
	var wg sync.WaitGroup
	for {
		off := arr.Next()
		if off > dur {
			break
		}
		intended := start.Add(off)
		if !d.clock.SleepUntil(ctx, intended) {
			break
		}
		pred := opt.Mix.Pick(rng, opt.Domain)
		if cfg.Inline {
			d.do(ctx, pred, intended)
			continue
		}
		wg.Add(1)
		rt.Go(func() {
			defer wg.Done()
			d.do(ctx, pred, intended)
		})
	}
	wg.Wait()
	return d.result("open", opt.Mix.Name, cfg.Rate, d.clock.Now().Sub(start), opt.Metrics)
}

package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/scheduler"
	"fastcolumns/internal/storage"
)

// fakeClock is a deterministic virtual clock: SleepUntil jumps time
// forward instantly, so driver scheduling logic runs with no wall-clock
// sleeps at all.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) SleepUntil(ctx context.Context, t time.Time) bool {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
	return ctx.Err() == nil
}

// fakeSubmitter scripts the serve path: each submission is answered by
// the next behaviour in sequence (wrapping), with the reply already
// buffered so ops never block.
type fakeSubmitter struct {
	seq  []rune // 'k' ok, 'o' overloaded, 'e' submit error, 'E' reply error, 'c' cancelled reply
	hits atomic.Int64
}

func (f *fakeSubmitter) SubmitContext(ctx context.Context, table, attr string, pred scan.Predicate) (<-chan scheduler.Reply, error) {
	i := f.hits.Add(1) - 1
	b := 'k'
	if len(f.seq) > 0 {
		b = f.seq[int(i)%len(f.seq)]
	}
	switch b {
	case 'o':
		return nil, fmt.Errorf("%w: scripted", scheduler.ErrOverloaded)
	case 'e':
		return nil, errors.New("scripted submit failure")
	}
	ch := make(chan scheduler.Reply, 1)
	switch b {
	case 'E':
		ch <- scheduler.Reply{Err: errors.New("scripted batch failure")}
	case 'c':
		ch <- scheduler.Reply{Err: context.DeadlineExceeded}
	default:
		ch <- scheduler.Reply{RowIDs: []storage.RowID{1}}
	}
	return ch, nil
}

func testOptions(clock Clock) Options {
	return Options{
		Table:  "t",
		Attr:   "a",
		Domain: 1 << 20,
		Mix:    PointMix(),
		Clock:  clock,
		Seed:   1,
	}
}

// TestOpenLoopDeterministicSchedule runs the open loop entirely on the
// fake clock: a 1s run at 1000/s offers exactly 1000 ops, every one
// accounted for, with the virtual elapsed time equal to the schedule.
func TestOpenLoopDeterministicSchedule(t *testing.T) {
	clock := newFakeClock()
	sub := &fakeSubmitter{}
	res := RunOpen(context.Background(), sub, testOptions(clock), OpenLoop{
		Rate: 1000, Duration: time.Second, Dist: Deterministic, Inline: true,
	})
	if res.Offered != 1000 {
		t.Fatalf("offered %d ops, want exactly 1000", res.Offered)
	}
	if !res.Conserved() {
		t.Fatalf("ledger does not balance: %+v", res.Counts)
	}
	if res.Replied != 1000 {
		t.Fatalf("replied %d, want 1000", res.Replied)
	}
	if res.Elapsed != time.Second {
		t.Fatalf("virtual elapsed %v, want 1s", res.Elapsed)
	}
	if res.OfferedRate < 999 || res.OfferedRate > 1001 {
		t.Fatalf("offered rate %.1f, want ~1000", res.OfferedRate)
	}
	// The instant submitter answers at the intended instant: latency 0.
	if res.P50 != 0 || res.Latency.Count != 1000 {
		t.Fatalf("latency p50=%v count=%d, want 0 and 1000", res.P50, res.Latency.Count)
	}
}

// TestOpenLoopMinOpsExtendsSchedule pins the MinOps contract on the
// fake clock: a rung whose Duration would intend too few arrivals runs
// long enough to intend exactly MinOps, and a rung already past the
// floor is left alone.
func TestOpenLoopMinOpsExtendsSchedule(t *testing.T) {
	// 100/s for 1s intends 100 ops; MinOps 400 stretches the rung to 4s.
	res := RunOpen(context.Background(), &fakeSubmitter{}, testOptions(newFakeClock()), OpenLoop{
		Rate: 100, Duration: time.Second, Dist: Deterministic, Inline: true, MinOps: 400,
	})
	if res.Offered != 400 {
		t.Fatalf("offered %d ops, want MinOps floor of 400", res.Offered)
	}
	if res.Elapsed != 4*time.Second {
		t.Fatalf("virtual elapsed %v, want 4s", res.Elapsed)
	}
	// 1000/s for 1s already intends 1000 >= 400: Duration governs.
	res = RunOpen(context.Background(), &fakeSubmitter{}, testOptions(newFakeClock()), OpenLoop{
		Rate: 1000, Duration: time.Second, Dist: Deterministic, Inline: true, MinOps: 400,
	})
	if res.Offered != 1000 || res.Elapsed != time.Second {
		t.Fatalf("offered %d in %v, want 1000 in 1s (MinOps must not shorten a rung)", res.Offered, res.Elapsed)
	}
}

// TestOpenLoopShedAccounting scripts a submitter that sheds every third
// submission: the ledger must classify exactly, and shed ops must not
// produce latency samples.
func TestOpenLoopShedAccounting(t *testing.T) {
	clock := newFakeClock()
	sub := &fakeSubmitter{seq: []rune{'k', 'k', 'o'}}
	res := RunOpen(context.Background(), sub, testOptions(clock), OpenLoop{
		Rate: 300, Duration: time.Second, Dist: Deterministic, Inline: true,
	})
	if res.Offered != 300 {
		t.Fatalf("offered %d, want 300", res.Offered)
	}
	if res.Shed != 100 || res.Replied != 200 {
		t.Fatalf("shed/replied = %d/%d, want 100/200", res.Shed, res.Replied)
	}
	if !res.Conserved() {
		t.Fatalf("ledger does not balance: %+v", res.Counts)
	}
	if res.Latency.Count != 200 {
		t.Fatalf("latency samples %d, want 200 (shed ops record none)", res.Latency.Count)
	}
	if got := res.ShedRate; got < 0.33 || got > 0.34 {
		t.Fatalf("shed rate %.3f, want ~1/3", got)
	}
}

// TestOpenLoopMixedOutcomes covers every outcome class at once.
func TestOpenLoopMixedOutcomes(t *testing.T) {
	clock := newFakeClock()
	sub := &fakeSubmitter{seq: []rune{'k', 'o', 'E', 'c', 'e'}}
	res := RunOpen(context.Background(), sub, testOptions(clock), OpenLoop{
		Rate: 500, Duration: time.Second, Dist: Deterministic, Inline: true,
	})
	if res.Offered != 500 {
		t.Fatalf("offered %d, want 500", res.Offered)
	}
	want := Counts{Offered: 500, Accepted: 300, Shed: 100, SubmitErrors: 100,
		Replied: 100, ReplyErrors: 100, Cancelled: 100}
	if res.Counts != want {
		t.Fatalf("counts = %+v, want %+v", res.Counts, want)
	}
	if !res.Conserved() {
		t.Fatal("ledger does not balance")
	}
}

// TestClosedLoopThinkTimePacing runs a single closed-loop worker on the
// fake clock: with 10ms think time over a virtual second it performs
// exactly 100 ops, timestamped at submission.
func TestClosedLoopThinkTimePacing(t *testing.T) {
	clock := newFakeClock()
	sub := &fakeSubmitter{}
	res := RunClosed(context.Background(), sub, testOptions(clock), ClosedLoop{
		Workers: 1, Duration: time.Second, Think: 10 * time.Millisecond,
	})
	if res.Offered != 100 {
		t.Fatalf("offered %d ops, want exactly 100 (1s / 10ms think)", res.Offered)
	}
	if !res.Conserved() || res.Replied != 100 {
		t.Fatalf("ledger: %+v", res.Counts)
	}
}

// TestClosedLoopOpsCap pins the deterministic run-length cap.
func TestClosedLoopOpsCap(t *testing.T) {
	clock := newFakeClock()
	sub := &fakeSubmitter{}
	res := RunClosed(context.Background(), sub, testOptions(clock), ClosedLoop{
		Workers: 4, Duration: time.Hour, Think: time.Millisecond, Ops: 37,
	})
	if res.Offered != 37 {
		t.Fatalf("offered %d ops, want exactly 37 (Ops cap)", res.Offered)
	}
	if !res.Conserved() {
		t.Fatalf("ledger: %+v", res.Counts)
	}
}

// TestOpenLoopSpawnedClients exercises the real (non-inline) dispatch on
// the wall clock briefly: every spawned virtual client drains before the
// run returns.
func TestOpenLoopSpawnedClients(t *testing.T) {
	sub := &fakeSubmitter{seq: []rune{'k', 'k', 'k', 'o'}}
	res := RunOpen(context.Background(), sub, testOptions(nil), OpenLoop{
		Rate: 2000, Duration: 100 * time.Millisecond, Dist: Poisson,
	})
	if res.Offered == 0 {
		t.Fatal("no ops offered")
	}
	if !res.Conserved() {
		t.Fatalf("ledger does not balance after drain: %+v", res.Counts)
	}
}

// TestOpenLoopContextCancelStopsSchedule pins external cancellation: the
// dispatcher stops promptly and the ledger still balances.
func TestOpenLoopContextCancelStopsSchedule(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sub := &fakeSubmitter{}
	res := RunOpen(ctx, sub, testOptions(newFakeClock()), OpenLoop{
		Rate: 1000, Duration: time.Second, Dist: Deterministic, Inline: true,
	})
	if res.Offered != 0 {
		t.Fatalf("cancelled run still offered %d ops", res.Offered)
	}
	if !res.Conserved() {
		t.Fatalf("ledger: %+v", res.Counts)
	}
}

// TestSweepAndKnee drives a scripted saturation curve: rungs below a
// capacity answer everything, rungs above shed the excess. Knee must
// land on the last clean rung.
func TestSweepAndKnee(t *testing.T) {
	clock := newFakeClock()
	// capSub sheds every op beyond ~400 accepted per rung second.
	results := make([]Result, 0, 4)
	for _, rate := range []float64{100, 300, 800, 1600} {
		shedEvery := 0 // 0: never
		if rate > 400 {
			shedEvery = int(rate / (rate - 400))
		}
		var seq []rune
		if shedEvery > 0 {
			for i := 0; i < shedEvery; i++ {
				seq = append(seq, 'k')
			}
			seq[0] = 'o'
		}
		sub := &fakeSubmitter{seq: seq}
		results = append(results, RunOpen(context.Background(), sub, testOptions(clock), OpenLoop{
			Rate: rate, Duration: time.Second, Dist: Deterministic, Inline: true,
		}))
	}
	if k := Knee(results); k != 1 {
		t.Fatalf("knee index %d, want 1 (300/s was the last clean rung)", k)
	}
	curve := BuildCurve(testOptions(clock), OpenLoop{Dist: Deterministic}, 400, results)
	if curve.KneeIndex != 1 || len(curve.Points) != 4 {
		t.Fatalf("curve knee=%d points=%d, want 1 and 4", curve.KneeIndex, len(curve.Points))
	}
	if curve.Points[3].ShedRate <= curve.Points[2].ShedRate {
		t.Fatalf("shed rate not increasing past the knee: %v then %v",
			curve.Points[2].ShedRate, curve.Points[3].ShedRate)
	}
}

package loadgen

import (
	"math/rand"
	"sort"
	"testing"

	"fastcolumns/internal/obs"
)

// quantileBounds asserts a log2-bucketed estimate against the true
// quantile: the bucket scheme guarantees the estimate lies inside the
// true value's power-of-two bucket, so the ratio is bounded by ~2x.
func quantileBounds(t *testing.T, name string, est, truth int64) {
	t.Helper()
	if truth == 0 {
		if est != 0 {
			t.Fatalf("%s: estimate %d for true quantile 0", name, est)
		}
		return
	}
	ratio := float64(est) / float64(truth)
	if ratio < 0.45 || ratio > 2.2 {
		t.Fatalf("%s: estimate %d vs true %d (ratio %.2f, want within [0.45, 2.2])",
			name, est, truth, ratio)
	}
}

// trueQuantile returns the exact p-quantile of the sample.
func trueQuantile(sorted []int64, p float64) int64 {
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestLoadLatencyQuantileBounds records known synthetic latency
// distributions through the driver's recording path and checks the
// load.* histogram's p50/p99/p999 against the exact quantiles.
func TestLoadLatencyQuantileBounds(t *testing.T) {
	cases := []struct {
		name string
		gen  func() []int64
	}{
		{"constant_1ms", func() []int64 {
			vals := make([]int64, 10000)
			for i := range vals {
				vals[i] = 1_000_000
			}
			return vals
		}},
		{"uniform_1us_100us", func() []int64 {
			rng := rand.New(rand.NewSource(5))
			vals := make([]int64, 20000)
			for i := range vals {
				vals[i] = 1_000 + rng.Int63n(99_000)
			}
			return vals
		}},
		{"bimodal_10us_100ms", func() []int64 {
			// 99.8% fast ops at 10us, 0.2% stalls at 100ms: the p999
			// must land in the slow mode — this is the shape where mean
			// and p50 lie and only the tail quantile tells the truth.
			vals := make([]int64, 0, 10000)
			for i := 0; i < 9980; i++ {
				vals = append(vals, 10_000)
			}
			for i := 0; i < 20; i++ {
				vals = append(vals, 100_000_000)
			}
			return vals
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			opt := testOptions(newFakeClock())
			opt.Metrics = reg
			d := newDriver(&fakeSubmitter{}, opt)
			vals := tc.gen()
			for _, v := range vals {
				d.record(outReplied, v)
			}
			sorted := append([]int64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

			// Both the per-run histogram and the registry's load.*
			// instrument must agree — they record the same stream.
			for _, snap := range []obs.HistogramSnapshot{
				d.lat.Snapshot(),
				reg.Histogram("load.latency." + opt.Mix.Name).Snapshot(),
			} {
				if snap.Count != int64(len(vals)) {
					t.Fatalf("recorded %d values, snapshot count %d", len(vals), snap.Count)
				}
				quantileBounds(t, "p50", snap.P50, trueQuantile(sorted, 0.50))
				quantileBounds(t, "p99", snap.P99, trueQuantile(sorted, 0.99))
				quantileBounds(t, "p999", snap.P999, trueQuantile(sorted, 0.999))
			}
		})
	}
}

// TestBimodalTailDetected pins the property the saturation gate depends
// on: when a small fraction of ops stall, p999 reports the stall mode
// while p50 stays in the fast mode.
func TestBimodalTailDetected(t *testing.T) {
	d := newDriver(&fakeSubmitter{}, testOptions(newFakeClock()))
	for i := 0; i < 9980; i++ {
		d.record(outReplied, 10_000)
	}
	for i := 0; i < 20; i++ {
		d.record(outReplied, 100_000_000)
	}
	snap := d.lat.Snapshot()
	if snap.P50 > 20_000 {
		t.Fatalf("p50 %d left the fast mode", snap.P50)
	}
	if snap.P999 < 50_000_000 {
		t.Fatalf("p999 %d did not reach the stall mode (want >= 50ms)", snap.P999)
	}
}

// TestRecordPathZeroAlloc guards the per-op recording path: counters and
// histogram records only, no allocation — with and without a registry
// mirroring the load.* instruments.
func TestRecordPathZeroAlloc(t *testing.T) {
	for _, withRegistry := range []bool{false, true} {
		opt := testOptions(newFakeClock())
		if withRegistry {
			opt.Metrics = obs.NewRegistry()
		}
		d := newDriver(&fakeSubmitter{}, opt)
		for _, out := range []outcome{outReplied, outReplyErr, outCancelled, outShed, outSubmitErr} {
			out := out
			if n := testing.AllocsPerRun(1000, func() { d.record(out, 12345) }); n != 0 {
				t.Fatalf("record(registry=%v, outcome=%d) allocates %.1f per op, want 0",
					withRegistry, out, n)
			}
		}
	}
}

// TestMixPickZeroAlloc guards the per-op predicate generator.
func TestMixPickZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, mix := range []Mix{PointMix(), RangeMix("5%", 0.05), MixedMix()} {
		mix := mix
		if n := testing.AllocsPerRun(1000, func() { mix.Pick(rng, 1<<20) }); n != 0 {
			t.Fatalf("%s.Pick allocates %.1f per op, want 0", mix.Name, n)
		}
	}
}

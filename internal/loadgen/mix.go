package loadgen

import (
	"math/rand"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/workload"
)

// MixEntry is one component of a query mix: a per-query selectivity
// (0 encodes a point get, as in internal/workload) drawn with the given
// relative weight.
type MixEntry struct {
	// Weight is the relative probability of drawing this entry.
	Weight float64 `json:"weight"`
	// Selectivity is the per-query selectivity; 0 encodes a point get.
	Selectivity float64 `json:"selectivity"`
}

// Mix is a weighted query mix over a uniform value domain. Build one
// with NewMix (or the predefined constructors) so the cumulative weight
// table exists; the zero value draws nothing.
type Mix struct {
	Name    string     `json:"name"`
	Entries []MixEntry `json:"entries"`

	cum   []float64
	total float64
}

// NewMix builds a mix from weighted entries. Non-positive weights are
// treated as zero.
func NewMix(name string, entries ...MixEntry) Mix {
	m := Mix{Name: name, Entries: entries, cum: make([]float64, len(entries))}
	for i, e := range entries {
		w := e.Weight
		if w < 0 {
			w = 0
		}
		m.total += w
		m.cum[i] = m.total
	}
	return m
}

// PointMix is the point-get workload: every query selects one value.
func PointMix() Mix { return NewMix("point", MixEntry{Weight: 1, Selectivity: 0}) }

// RangeMix is a single-selectivity range workload.
func RangeMix(name string, sel float64) Mix {
	return NewMix(name, MixEntry{Weight: 1, Selectivity: sel})
}

// MixedMix is the mixed-selectivity workload the paper's Figure 18 grid
// spans: half point gets, a moderate share of 0.5% ranges, and a tail of
// 5% analytical ranges — the blend where access path selection actually
// has to switch paths query by query.
func MixedMix() Mix {
	return NewMix("mixed",
		MixEntry{Weight: 0.5, Selectivity: 0},
		MixEntry{Weight: 0.3, Selectivity: 0.005},
		MixEntry{Weight: 0.2, Selectivity: 0.05},
	)
}

// Pick draws one predicate from the mix over [0, domain). It does not
// allocate; rng is the caller's (per-worker) generator, so concurrent
// workers stay race-free and deterministic per seed.
func (m *Mix) Pick(rng *rand.Rand, domain int32) scan.Predicate {
	if len(m.Entries) == 1 || m.total <= 0 {
		sel := 0.0
		if len(m.Entries) > 0 {
			sel = m.Entries[0].Selectivity
		}
		return workload.RangeFor(rng, sel, domain)
	}
	x := rng.Float64() * m.total
	for i, c := range m.cum {
		if x < c {
			return workload.RangeFor(rng, m.Entries[i].Selectivity, domain)
		}
	}
	return workload.RangeFor(rng, m.Entries[len(m.Entries)-1].Selectivity, domain)
}

package loadgen

import (
	"context"
	"time"
)

// CurvePoint is one rung of a latency-vs-offered-load curve — the JSON
// row both cmd/load and the bench schema-v5 `load` section emit.
type CurvePoint struct {
	TargetRate   float64 `json:"target_rate"`
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	ShedRate     float64 `json:"shed_rate"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	P999Ns       int64   `json:"p999_ns"`
	Offered      int64   `json:"offered"`
	Accepted     int64   `json:"accepted"`
	Shed         int64   `json:"shed"`
	Replied      int64   `json:"replied"`
	ReplyErrors  int64   `json:"reply_errors"`
	Cancelled    int64   `json:"cancelled"`
}

// Point projects a Result onto its curve row.
func (r Result) Point() CurvePoint {
	return CurvePoint{
		TargetRate:   r.TargetRate,
		OfferedRate:  r.OfferedRate,
		AchievedRate: r.AchievedRate,
		ShedRate:     r.ShedRate,
		P50Ns:        r.Latency.P50,
		P99Ns:        r.Latency.P99,
		P999Ns:       r.Latency.P999,
		Offered:      r.Offered,
		Accepted:     r.Accepted,
		Shed:         r.Shed,
		Replied:      r.Replied,
		ReplyErrors:  r.ReplyErrors,
		Cancelled:    r.Cancelled,
	}
}

// Curve is one mix's sweep across a ladder of offered rates.
type Curve struct {
	Mix  string `json:"mix"`
	Dist string `json:"dist"`
	// CapacityRate is the closed-loop throughput ceiling the ladder was
	// scaled against (0 when the ladder was given as absolute rates).
	CapacityRate float64 `json:"capacity_rate"`
	// KneeIndex is the last below-knee rung (see Knee); -1 when even the
	// first rung was saturated.
	KneeIndex int          `json:"knee_index"`
	Points    []CurvePoint `json:"points"`
}

// Below-knee criteria: a rung still below saturation sheds less than
// kneeShed of its offered ops and achieves at least kneeAchieved of
// its target rate — the rate the schedule intended, not the rate the
// run managed to offer. A congested server drags both the offered and
// achieved rates down together (spawn lag, drain time), so comparing
// achieved against offered would certify a rung that fell behind the
// schedule as healthy.
const (
	kneeShed     = 0.01
	kneeAchieved = 0.9
)

// Knee locates the saturation knee of an in-order sweep: the index of
// the last leading rung that still met the below-knee criteria. Rungs
// after the knee are the overload regime (shedding engaged or achieved
// rate detached from the intended rate). Returns -1 when the first
// rung was already saturated.
func Knee(results []Result) int {
	k := -1
	for i, r := range results {
		target := r.TargetRate
		if target <= 0 {
			target = r.OfferedRate
		}
		if r.ShedRate < kneeShed && r.AchievedRate >= kneeAchieved*target {
			k = i
			continue
		}
		break
	}
	return k
}

// Sweep runs one open-loop rung per rate, in order, and returns the
// per-rung results. The same seed is reused across rungs so every rung
// offers the same query stream, isolating the rate as the only variable.
func Sweep(ctx context.Context, sub Submitter, opt Options, cfg OpenLoop, rates []float64) []Result {
	out := make([]Result, 0, len(rates))
	for _, rate := range rates {
		if ctx.Err() != nil {
			break
		}
		c := cfg
		c.Rate = rate
		out = append(out, RunOpen(ctx, sub, opt, c))
	}
	return out
}

// BuildCurve assembles the sweep's JSON view.
func BuildCurve(opt Options, cfg OpenLoop, capacity float64, results []Result) Curve {
	c := Curve{
		Mix:          opt.Mix.Name,
		Dist:         cfg.Dist.String(),
		CapacityRate: capacity,
		KneeIndex:    Knee(results),
		Points:       make([]CurvePoint, 0, len(results)),
	}
	for _, r := range results {
		c.Points = append(c.Points, r.Point())
	}
	return c
}

// ProbeCapacity measures the serve path's closed-loop throughput
// ceiling: workers clients with zero think time for dur, returning the
// achieved (successfully replied) rate. Sweeps scale their rate ladders
// against this so the same ladder finds the knee on any host.
func ProbeCapacity(ctx context.Context, sub Submitter, opt Options, workers int, dur time.Duration) float64 {
	res := RunClosed(ctx, sub, opt, ClosedLoop{Workers: workers, Duration: dur})
	return res.AchievedRate
}

// Package memsim simulates the memory hierarchy the cost model abstracts:
// a set-associative last-level cache in front of a latency/bandwidth
// memory model, plus a simulated clock. It substitutes for the paper's
// four physical machines — executors in package simexec walk real data
// structures and charge each event here, so hardware variation
// (Figures 7 and 16, Table 2) can be reproduced without the hardware.
package memsim

// Cache is a set-associative cache with LRU replacement, indexed by
// abstract line addresses. It only tracks tags; no data is stored.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	tags     [][]uint64 // tags[set][way]; 0 means empty
	stamps   [][]uint64 // LRU timestamps
	tick     uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache of the given capacity, line size and
// associativity. Capacity is rounded down to a whole number of sets.
func NewCache(capacityBytes int64, lineBytes, ways int) *Cache {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	if ways <= 0 {
		ways = 16
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	sets := int(capacityBytes) / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: lineBits,
		tags:     make([][]uint64, sets),
		stamps:   make([][]uint64, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.stamps[i] = make([]uint64, ways)
	}
	return c
}

// Access touches the line containing addr and reports whether it hit.
// Address 0 is reserved (the empty tag); callers should use nonzero
// address spaces.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	line := (addr >> c.lineBits) | 1<<63 // force nonzero tags
	set := int(line % uint64(c.sets))
	tags, stamps := c.tags[set], c.stamps[set]
	victim := 0
	for w := 0; w < c.ways; w++ {
		if tags[w] == line {
			stamps[w] = c.tick
			c.hits++
			return true
		}
		if stamps[w] < stamps[victim] {
			victim = w
		}
	}
	tags[victim] = line
	stamps[victim] = c.tick
	c.misses++
	return false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset clears the cache contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = 0
			c.stamps[i][w] = 0
		}
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}

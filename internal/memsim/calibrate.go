package memsim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"fastcolumns/internal/model"
	rt "fastcolumns/internal/runtime"
)

// Calibrate measures the host's memory characteristics the way the paper
// uses Intel's Memory Latency Checker at system initialization
// (Section 3): a streaming pass estimates scan bandwidth and a dependent
// pointer chase estimates random-access latency. The returned profile
// plugs straight into the cost model; cache access time and the
// pipelining factor are taken from the paper's defaults since they are
// fitted constants anyway.
//
// sizeBytes controls the working set (it should exceed the LLC; 128 MB by
// default when <= 0). The measurement takes a few hundred milliseconds.
func Calibrate(sizeBytes int) model.Hardware {
	if sizeBytes <= 0 {
		sizeBytes = 128 << 20
	}
	bw := measureBandwidth(sizeBytes)
	lat := measureLatency(sizeBytes / 2)
	base := model.HW1()
	hw := model.Hardware{
		Name:            "host-calibrated",
		CacheAccess:     base.CacheAccess,
		MemAccess:       lat,
		ScanBandwidth:   bw,
		ResultBandwidth: bw / 2,
		LeafBandwidth:   bw / 2,
		ClockPeriod:     base.ClockPeriod,
		Pipelining:      base.Pipelining,
	}
	hw.Pipelining = measureEvalRate(hw.ClockPeriod)
	return hw
}

// measureEvalRate measures the host's effective predicate-evaluation
// throughput — the fp of Equation 2 — by timing a CPU-bound shared-scan
// kernel: many range predicates over a cache-resident block, spread
// across all cores the way the engine's shared scan spreads queries.
// fp absorbs SIMD width, superscalar issue and core count, so it must be
// measured the way the engine actually evaluates predicates.
func measureEvalRate(clockPeriod float64) float64 {
	const tuples = 1 << 16 // 256 KB of int32: cache resident
	const queries = 64
	data := make([]int32, tuples)
	rng := rand.New(rand.NewSource(2))
	for i := range data {
		data[i] = rng.Int31()
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	sink := make([]int64, workers*8) // padded to avoid false sharing
	start := time.Now()
	const passes = 16
	for w := 0; w < workers; w++ {
		qlo := queries * w / workers
		qhi := queries * (w + 1) / workers
		if qlo == qhi {
			continue
		}
		wg.Add(1)
		rt.Go(func() {
			defer wg.Done()
			var count int64
			for p := 0; p < passes; p++ {
				for qi := qlo; qi < qhi; qi++ {
					lo := int32(qi) << 20
					hi := lo + 1<<24
					for _, v := range data {
						if v >= lo && v <= hi {
							count++
						}
					}
				}
			}
			sink[w*8] = count
		})
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		return model.HW1().Pipelining
	}
	// Wall seconds per (query x tuple) pair, expressed as fp via
	// PE = 2 * fp * p * N per query: fp = wall / (2 * p * q * N * passes).
	return el / (2 * clockPeriod * queries * tuples * passes)
}

// measureBandwidth streams a large uint64 array and returns bytes/sec.
func measureBandwidth(sizeBytes int) float64 {
	n := sizeBytes / 8
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i)
	}
	var sink uint64
	start := time.Now()
	const passes = 3
	for p := 0; p < passes; p++ {
		for _, v := range data {
			sink += v
		}
	}
	el := time.Since(start).Seconds()
	_ = sink
	if el <= 0 {
		return model.HW1().ScanBandwidth
	}
	return float64(passes) * float64(sizeBytes) / el
}

// measureLatency chases a random permutation cycle (each load depends on
// the previous) and returns seconds per dependent access.
func measureLatency(sizeBytes int) float64 {
	n := sizeBytes / 8
	if n < 1024 {
		n = 1024
	}
	perm := rand.New(rand.NewSource(1)).Perm(n)
	next := make([]uint64, n)
	// Build one big cycle: next[perm[i]] = perm[i+1].
	for i := 0; i < n; i++ {
		next[perm[i]] = uint64(perm[(i+1)%n])
	}
	const hops = 1 << 20
	idx := uint64(perm[0])
	start := time.Now()
	for i := 0; i < hops; i++ {
		idx = next[idx]
	}
	el := time.Since(start).Seconds()
	if idx == ^uint64(0) { // keep the chase alive
		return 0
	}
	if el <= 0 {
		return model.HW1().MemAccess
	}
	return el / hops
}

// SaveProfile writes a hardware profile to path as JSON so calibration
// (a few hundred milliseconds of microbenchmarks) runs once per machine,
// the way the paper collects hardware specs "once per machine during
// initial setup".
func SaveProfile(path string, hw model.Hardware) error {
	raw, err := json.MarshalIndent(hw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// LoadProfile reads a profile written by SaveProfile and validates it.
func LoadProfile(path string) (model.Hardware, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return model.Hardware{}, err
	}
	var hw model.Hardware
	if err := json.Unmarshal(raw, &hw); err != nil {
		return model.Hardware{}, fmt.Errorf("memsim: bad profile file: %w", err)
	}
	if err := hw.Validate(); err != nil {
		return model.Hardware{}, fmt.Errorf("memsim: invalid profile: %w", err)
	}
	return hw, nil
}

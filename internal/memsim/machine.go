package memsim

import "fastcolumns/internal/model"

// DefaultLLCBytes mirrors the paper's primary server (16 MB of L3).
const DefaultLLCBytes = 16 << 20

// DefaultL1Bytes is the per-core L1 data cache of the paper's primary
// server (32 KB, 8-way) — the budget the shared scan's block sizing and
// the Hierarchy's first level are calibrated against.
const DefaultL1Bytes = 32 << 10

// SharedBlockBytes is the byte budget of one shared-scan block. A block
// must stay cache resident while all q predicates of the batch visit it
// (Figure 2(b)); two L1's worth has enough slack to survive the result
// writes without thrashing while staying far below the LLC. The scan
// kernels derive their block sizes (tuples per block, codes per block)
// from this single constant, so compressed and uncompressed shared
// scans — and the morsel runtime's range sizing on top of them — agree
// on the cache-residency assumption.
const SharedBlockBytes = 2 * DefaultL1Bytes

// DefaultLineBytes is the usual 64-byte cache line.
const DefaultLineBytes = 64

// Machine is a simulated execution environment: a hardware profile, an
// LLC, and a clock. Executors charge events; the clock advances by the
// profile's latencies and bandwidths.
type Machine struct {
	HW  model.Hardware
	LLC *Cache
	now float64
}

// NewMachine builds a machine for the hardware profile with a default
// 16 MB, 16-way LLC.
func NewMachine(hw model.Hardware) *Machine {
	return &Machine{HW: hw, LLC: NewCache(DefaultLLCBytes, DefaultLineBytes, 16)}
}

// NewMachineWithLLC builds a machine with an explicit LLC geometry.
func NewMachineWithLLC(hw model.Hardware, llcBytes int64, lineBytes, ways int) *Machine {
	return &Machine{HW: hw, LLC: NewCache(llcBytes, lineBytes, ways)}
}

// Now returns the simulated time in seconds.
func (m *Machine) Now() float64 { return m.now }

// Reset rewinds the clock and clears the cache.
func (m *Machine) Reset() {
	m.now = 0
	m.LLC.Reset()
}

// Advance adds raw seconds (for overlap math computed by the caller).
func (m *Machine) Advance(sec float64) { m.now += sec }

// SeqRead charges streaming the given bytes at bandwidth bw.
func (m *Machine) SeqRead(bytes, bw float64) { m.now += bytes / bw }

// Write charges writing the given bytes at the result bandwidth.
func (m *Machine) Write(bytes float64) { m.now += bytes / m.HW.ResultBandwidth }

// Random charges one dependent memory access at addr: a cache access on
// hit, a full memory access on miss.
func (m *Machine) Random(addr uint64) {
	if m.LLC.Access(addr) {
		m.now += m.HW.CacheAccess
	} else {
		m.now += m.HW.MemAccess
	}
}

// CacheReads charges n L1-resident reads (intra-node key comparisons).
func (m *Machine) CacheReads(n int) { m.now += float64(n) * m.HW.CacheAccess }

// CPU charges n pipelined instructions at the effective issue rate.
func (m *Machine) CPU(n float64) { m.now += n * m.HW.Pipelining * m.HW.ClockPeriod }

// Hierarchy is a two-level cache front (L1 + LLC) for machines where the
// single-LLC approximation is too coarse: L1 hits cost the profile's
// cache access, LLC hits cost an intermediate latency, and misses pay the
// full memory access. The paper's model only distinguishes CA and CM, so
// the simulated executors default to the single-LLC Machine; Hierarchy
// exists to study how sensitive results are to that simplification.
type Hierarchy struct {
	HW  model.Hardware
	L1  *Cache
	LLC *Cache
	// LLCLatency is the seconds charged for an L1 miss that hits the LLC
	// (defaults to a third of the memory access).
	LLCLatency float64
	now        float64
}

// NewHierarchy builds a 32 KB 8-way L1 in front of the default LLC.
func NewHierarchy(hw model.Hardware) *Hierarchy {
	return &Hierarchy{
		HW:         hw,
		L1:         NewCache(DefaultL1Bytes, DefaultLineBytes, 8),
		LLC:        NewCache(DefaultLLCBytes, DefaultLineBytes, 16),
		LLCLatency: hw.MemAccess / 3,
	}
}

// Now returns the simulated time in seconds.
func (h *Hierarchy) Now() float64 { return h.now }

// Reset rewinds the clock and clears both levels.
func (h *Hierarchy) Reset() {
	h.now = 0
	h.L1.Reset()
	h.LLC.Reset()
}

// Random charges one dependent access through the hierarchy. An L1 miss
// still installs the line in both levels (inclusive caches).
func (h *Hierarchy) Random(addr uint64) {
	if h.L1.Access(addr) {
		h.now += h.HW.CacheAccess
		h.LLC.Access(addr) // keep inclusion without charging again
		return
	}
	if h.LLC.Access(addr) {
		h.now += h.LLCLatency
		return
	}
	h.now += h.HW.MemAccess
}

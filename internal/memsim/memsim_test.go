package memsim

import (
	"os"
	"testing"

	"fastcolumns/internal/model"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1<<20, 64, 8)
	if c.Access(4096) {
		t.Fatal("cold access hit")
	}
	if !c.Access(4096) {
		t.Fatal("warm access missed")
	}
	if !c.Access(4096 + 32) {
		t.Fatal("same-line access missed")
	}
	if c.Access(4096 + 64) {
		t.Fatal("next-line access hit cold")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, single-set cache: third distinct line evicts the LRU one.
	c := NewCache(128, 64, 2)
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a; b becomes LRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a should have survived")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// A working set within capacity keeps hitting; one far above keeps
	// missing.
	c := NewCache(64<<10, 64, 16)
	small := 256 // lines: 16 KB, fits
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < small; i++ {
			c.Access(uint64(i * 64))
		}
	}
	hits, misses := c.Stats()
	if hits < uint64(2*small) {
		t.Fatalf("resident set should hit on repeat passes: hits=%d misses=%d", hits, misses)
	}
	c.Reset()
	big := 1 << 14 // 1 MB of lines through a 64 KB cache
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < big; i++ {
			c.Access(uint64(i * 64))
		}
	}
	hits, misses = c.Stats()
	if hits > misses/4 {
		t.Fatalf("thrashing set should mostly miss: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1<<16, 64, 4)
	c.Access(64)
	c.Reset()
	if c.Access(64) {
		t.Fatal("hit after reset")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("counters not reset: %d/%d", hits, misses)
	}
}

func TestMachineCharges(t *testing.T) {
	hw := model.HW1()
	m := NewMachine(hw)
	m.SeqRead(40e9, hw.ScanBandwidth) // exactly one second of streaming
	if got := m.Now(); got < 0.999 || got > 1.001 {
		t.Fatalf("SeqRead charged %v, want ~1s", got)
	}
	m.Reset()
	m.Random(1 << 20) // cold: full memory access
	if got := m.Now(); got != hw.MemAccess {
		t.Fatalf("cold Random charged %v, want %v", got, hw.MemAccess)
	}
	m.Random(1 << 20) // warm: cache access
	if got := m.Now(); got != hw.MemAccess+hw.CacheAccess {
		t.Fatalf("warm Random charged %v", got)
	}
	m.Reset()
	m.CacheReads(10)
	if got := m.Now(); got != 10*hw.CacheAccess {
		t.Fatalf("CacheReads charged %v", got)
	}
	m.Reset()
	m.CPU(1000)
	if got := m.Now(); got != 1000*hw.Pipelining*hw.ClockPeriod {
		t.Fatalf("CPU charged %v", got)
	}
	m.Reset()
	m.Write(20e9) // one second at BWR
	if got := m.Now(); got < 0.999 || got > 1.001 {
		t.Fatalf("Write charged %v, want ~1s", got)
	}
}

func TestMachineAdvanceAndCustomLLC(t *testing.T) {
	m := NewMachineWithLLC(model.HW2(), 1<<16, 64, 4)
	m.Advance(0.5)
	if m.Now() != 0.5 {
		t.Fatalf("Advance = %v", m.Now())
	}
	if m.LLC == nil {
		t.Fatal("no LLC")
	}
}

func TestCalibrateReturnsPlausibleHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes hundreds of milliseconds")
	}
	hw := Calibrate(32 << 20)
	if err := hw.Validate(); err != nil {
		t.Fatalf("calibrated profile invalid: %v", err)
	}
	// Any machine this century: 100 MB/s..1 TB/s and 10ns..10µs.
	if hw.ScanBandwidth < 1e8 || hw.ScanBandwidth > 1e12 {
		t.Fatalf("implausible bandwidth %v", hw.ScanBandwidth)
	}
	if hw.MemAccess < 1e-8 || hw.MemAccess > 1e-5 {
		t.Fatalf("implausible latency %v", hw.MemAccess)
	}
}

func TestProfileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/hw.json"
	hw := model.HW2()
	if err := SaveProfile(path, hw); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != hw {
		t.Fatalf("round trip changed the profile: %+v vs %+v", got, hw)
	}
	// Corrupt file rejected.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatal("corrupt profile accepted")
	}
	// Structurally valid but physically invalid profile rejected.
	bad := hw
	bad.ScanBandwidth = -1
	if err := SaveProfile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := LoadProfile(dir + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(model.HW1())
	// Cold: full memory latency.
	h.Random(1 << 30)
	cold := h.Now()
	if cold != h.HW.MemAccess {
		t.Fatalf("cold access charged %v", cold)
	}
	near := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d < 1e-12
	}
	// Immediately warm in L1.
	h.Random(1 << 30)
	if got := h.Now() - cold; !near(got, h.HW.CacheAccess) {
		t.Fatalf("L1 hit charged %v", got)
	}
	// Evict from L1 (stream 1024 distinct lines through a 512-line L1)
	// but stay in the LLC: intermediate latency.
	for i := 0; i < 1024; i++ {
		h.Random(uint64(1<<20 + i*64))
	}
	before := h.Now()
	h.Random(1 << 30)
	got := h.Now() - before
	if !near(got, h.LLCLatency) {
		t.Fatalf("LLC hit charged %v, want %v", got, h.LLCLatency)
	}
	h.Reset()
	if h.Now() != 0 {
		t.Fatal("reset did not rewind")
	}
	h.Random(1 << 30)
	if h.Now() != h.HW.MemAccess {
		t.Fatal("reset did not clear the caches")
	}
}

package model

// Alternative access paths (Appendix E). The paper's analysis covers the
// shared scan and the B+-tree; for very small domains it points at bitmap
// indexes as the third contender. This file extends the cost model with a
// bitmap term and a three-way chooser so the optimizer can arbitrate all
// materialized paths.

// ConcBitmap estimates the cost of answering the batch with a
// value-per-bitmap index of the given domain cardinality. Each query ORs
// the bitmaps of the domain values its range covers (≈ s_i * card bitmaps
// of N/8 bytes, streamed at scan bandwidth), then extracts the set
// positions — which emerge already in rowID order, so unlike the B+-tree
// there is no sorting term — and writes s_i*N results.
func ConcBitmap(p Params, cardinality float64) float64 {
	if cardinality < 1 {
		cardinality = 1
	}
	d, h, dg := p.Dataset, p.Hardware, p.Design
	bitmapBytes := d.N / 8
	var total float64
	for _, s := range p.Workload.Selectivities {
		covered := s * cardinality
		if covered < 1 {
			covered = 1 // at least one bitmap is read
		}
		// Stream the covered bitmaps and OR them word by word.
		total += covered * bitmapBytes / h.ScanBandwidth
		total += covered * (d.N / 64) * h.Pipelining * h.ClockPeriod
	}
	stot := p.Workload.TotalSelectivity()
	// Position extraction is a dependent bit-twiddle per set bit — charge
	// a cache access per result, like the model does for sort comparisons.
	// Without this term a bitmap covering half its domain would look free
	// while actually emitting S_tot*N positions one at a time.
	total += stot * d.N * h.CacheAccess
	total += dg.alphaOrOne() * stot * ResultWriteTime(d, h, dg)
	return total
}

// PathBitmap extends the Path enum with the bitmap index.
const PathBitmap Path = 2

// ChooseAmong picks the cheapest of the available access paths for the
// batch: the shared scan (optionally credited with zonemap/imprint
// skipping), the concurrent B+-tree scan, and the bitmap index.
// hasIndex/bitmapCard gate which contenders exist (bitmapCard <= 0 means
// no bitmap index).
func ChooseAmong(p Params, scanSkipFraction float64, hasIndex bool, bitmapCard float64) (Path, float64) {
	return ChooseWithScanCost(p, SharedScanWithSkipping(p, scanSkipFraction), hasIndex, bitmapCard)
}

// ChooseWithScanCost arbitrates with a precomputed scan-side cost, so a
// caller that costs the scan with a specialized kernel model — the
// packed SWAR scan over a compressed twin — reuses the same three-way
// arbitration against the index and bitmap contenders.
func ChooseWithScanCost(p Params, scanCost float64, hasIndex bool, bitmapCard float64) (Path, float64) {
	best, bestCost := PathScan, scanCost
	if hasIndex {
		if c := ConcIndex(p); c < bestCost {
			best, bestCost = PathIndex, c
		}
	}
	if bitmapCard > 0 {
		if c := ConcBitmap(p, bitmapCard); c < bestCost {
			best, bestCost = PathBitmap, c
		}
	}
	return best, bestCost
}

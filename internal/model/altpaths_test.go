package model

import "testing"

func TestConcBitmapScalesWithCardinalityAndSelectivity(t *testing.T) {
	p := testParams(4, 0.01)
	lo := ConcBitmap(p, 16)
	hi := ConcBitmap(p, 256)
	if hi <= lo {
		t.Fatalf("more bitmaps must cost more to OR: %v vs %v", hi, lo)
	}
	narrow := ConcBitmap(testParams(4, 0.001), 256)
	wide := ConcBitmap(testParams(4, 0.1), 256)
	if wide <= narrow {
		t.Fatalf("wider ranges must cost more: %v vs %v", wide, narrow)
	}
}

func TestConcBitmapBeatsTreeAtLowCardinalityPoints(t *testing.T) {
	// Equality query on a 100-value domain: the bitmap reads one N/8-byte
	// bitmap and never sorts; the tree pays leaf traversal plus the sort
	// of ~N/100 rowIDs. The bitmap should win.
	p := testParams(1, 0.01) // one value of a 100-value domain
	bm := ConcBitmap(p, 100)
	tree := ConcIndex(p)
	if bm >= tree {
		t.Fatalf("bitmap %v should beat tree %v for a low-cardinality point", bm, tree)
	}
}

func TestChooseAmongRespectsAvailability(t *testing.T) {
	p := testParams(1, 0.0001) // index territory
	path, _ := ChooseAmong(p, 0, false, 0)
	if path != PathScan {
		t.Fatalf("with only a scan available, chose %v", path)
	}
	path, _ = ChooseAmong(p, 0, true, 0)
	if path != PathIndex {
		t.Fatalf("low selectivity with a tree should probe, chose %v", path)
	}
}

func TestChooseAmongPicksCheapest(t *testing.T) {
	// Sweep: each contender must win somewhere.
	wins := map[Path]bool{}
	for _, s := range []float64{1e-6, 1e-4, 0.01, 0.3} {
		for _, card := range []float64{0, 100} {
			p := testParams(2, s)
			path, cost := ChooseAmong(p, 0, true, card)
			if cost <= 0 {
				t.Fatalf("non-positive cost %v", cost)
			}
			wins[path] = true
		}
	}
	for _, want := range []Path{PathScan, PathIndex, PathBitmap} {
		if !wins[want] {
			t.Fatalf("path %v never won across the sweep: %v", want, wins)
		}
	}
}

func TestChooseAmongSkippingFavorsScan(t *testing.T) {
	p := testParams(4, 0.0002) // index territory without skipping
	noSkip, _ := ChooseAmong(p, 0, true, 0)
	if noSkip != PathIndex {
		t.Fatalf("expected index without skipping, got %v", noSkip)
	}
	skip, _ := ChooseAmong(p, 0.999, true, 0)
	if skip != PathScan {
		t.Fatalf("99.9%% skipping should hand the win to the scan, got %v", skip)
	}
}

func TestPathBitmapString(t *testing.T) {
	if PathBitmap.String() != "bitmap" {
		t.Fatalf("PathBitmap = %q", PathBitmap.String())
	}
}

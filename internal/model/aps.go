package model

import "math"

// Path identifies an access path choice.
type Path int

const (
	// PathScan is a (shared) sequential scan of the base column.
	PathScan Path = iota
	// PathIndex is a (concurrent) secondary B+-tree index scan.
	PathIndex
)

// String returns "scan", "index", or "bitmap".
func (p Path) String() string {
	switch p {
	case PathIndex:
		return "index"
	case PathBitmap:
		return "bitmap"
	default:
		return "scan"
	}
}

// APS returns the access-path-selection ratio ConcIndex/SharedScan
// (Equation 15). Values >= 1 favor the scan; values < 1 favor the index.
func APS(p Params) float64 {
	ss := SharedScan(p)
	if EqZero(ss) {
		return math.Inf(1)
	}
	return ConcIndex(p) / ss
}

// Choose runs access path selection for the batch: the scan when APS >= 1,
// the secondary index otherwise. This is the optimizer's decision rule
// from Section 2.4.
func Choose(p Params) Path {
	if APS(p) < 1 {
		return PathIndex
	}
	return PathScan
}

// APSClosedForm evaluates the expanded ratio of Equation 21 (the unfitted
// printed form) or Equation 25 (when the design carries the fitting
// constants), written in terms of the raw Table 1 parameters. It must
// agree with APS up to floating-point error; the tests check that. It
// exists because the paper analyzes this algebraic form directly
// (Section 2.4 and Appendix B).
func APSClosedForm(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	d, h, dg := p.Dataset, p.Hardware, p.Design

	alpha := dg.alphaOrOne()
	fc := dg.sortCorrection(d.N)

	// Denominator: max(ts, 2*fp*p*q*BWS) + alpha*Stot*rw*BWS/BWR.
	den := math.Max(d.TupleSize, 2*h.Pipelining*h.ClockPeriod*q*h.ScanBandwidth) +
		alpha*stot*dg.ResultWidth*h.ScanBandwidth/h.ResultBandwidth

	// First numerator part: tree traversal, q times.
	levels := 1 + math.Ceil(math.Log(d.N)/math.Log(dg.Fanout))
	tree := q * levels / d.N *
		(h.ScanBandwidth*h.MemAccess +
			dg.Fanout*h.ScanBandwidth*h.CacheAccess/2 +
			dg.Fanout*h.ScanBandwidth*h.Pipelining*h.ClockPeriod/2)

	// Second part: leaves, leaf data and result writing, scaled by Stot.
	data := stot * (h.ScanBandwidth*h.MemAccess/dg.Fanout +
		(dg.AttrWidth+dg.OffsetWidth)*h.ScanBandwidth/h.LeafBandwidth +
		dg.ResultWidth*h.ScanBandwidth/h.ResultBandwidth)

	// Third part: the sorting factor.
	sort := fc * SortFactor(stot, d, dg) / d.N * h.ScanBandwidth * h.CacheAccess

	return (tree + data + sort) / den
}

// Speedup reports how much faster the better path is than the worse one
// for this batch: max(APS, 1/APS). A wrong decision costs this factor.
func Speedup(p Params) float64 {
	r := APS(p)
	if r < 1 {
		return 1 / r
	}
	return r
}

package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAPSMatchesClosedForm(t *testing.T) {
	// Equation 15 (ratio of Equations 5 and 13) and Equation 21/25 (the
	// expanded algebraic form) are the same quantity; check they agree to
	// floating-point precision across a broad random sweep, for both the
	// unfitted and fitted designs.
	rng := rand.New(rand.NewSource(1))
	designs := []Design{DefaultDesign(), FittedDesign()}
	hws := []Hardware{HW1(), HW2()}
	for i := 0; i < 500; i++ {
		q := 1 + rng.Intn(512)
		s := math.Pow(10, -6+6*rng.Float64()) // 1e-6 .. 1
		if s > 1 {
			s = 1
		}
		n := math.Pow(10, 4+8*rng.Float64())
		ts := []float64{2, 4, 8, 40, 128}[rng.Intn(5)]
		p := Params{
			Workload: Uniform(q, s),
			Dataset:  Dataset{N: n, TupleSize: ts},
			Hardware: hws[rng.Intn(2)],
			Design:   designs[rng.Intn(2)],
		}
		a, b := APS(p), APSClosedForm(p)
		if !approxEqual(a, b, 1e-9) {
			t.Fatalf("APS=%v closed=%v for q=%d s=%v N=%v ts=%v", a, b, q, s, n, ts)
		}
	}
}

func TestChooseFollowsRatio(t *testing.T) {
	lo := testParams(1, 0.0001) // far below the q=1 crossover: index
	hi := testParams(1, 0.2)    // far above: scan
	if got := Choose(lo); got != PathIndex {
		t.Fatalf("Choose(low selectivity) = %v, want index (APS=%v)", got, APS(lo))
	}
	if got := Choose(hi); got != PathScan {
		t.Fatalf("Choose(high selectivity) = %v, want scan (APS=%v)", got, APS(hi))
	}
}

func TestChooseConsistentWithAPS(t *testing.T) {
	f := func(qSeed uint8, sSeed, nSeed float64) bool {
		q := 1 + int(qSeed)%300
		s := math.Mod(math.Abs(sSeed), 1)
		n := 1e4 + math.Mod(math.Abs(nSeed), 1e10)
		p := Params{Workload: Uniform(q, s), Dataset: Dataset{N: n, TupleSize: 4},
			Hardware: HW1(), Design: DefaultDesign()}
		if APS(p) < 1 {
			return Choose(p) == PathIndex
		}
		return Choose(p) == PathScan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAtLeastOne(t *testing.T) {
	for _, q := range []int{1, 16, 256} {
		for _, s := range []float64{1e-5, 1e-3, 0.1, 1} {
			if sp := Speedup(testParams(q, s)); sp < 1 {
				t.Fatalf("Speedup(q=%d,s=%v) = %v < 1", q, s, sp)
			}
		}
	}
}

func TestPathString(t *testing.T) {
	if PathScan.String() != "scan" || PathIndex.String() != "index" {
		t.Fatalf("unexpected Path strings: %q %q", PathScan, PathIndex)
	}
}

func TestAPSGrowsWithSelectivity(t *testing.T) {
	// Observation 2.1/2.2: for fixed q the ratio must increase with
	// selectivity — more qualifying tuples mean more leaf traversal and
	// sorting for the index but only more result writing for the scan.
	for _, q := range []int{1, 8, 64, 512} {
		prev := -1.0
		for _, s := range logspace(1e-6, 1, 60) {
			r := APS(testParams(q, s))
			if r < prev {
				t.Fatalf("APS not monotone in s at q=%d s=%v: %v < %v", q, s, r, prev)
			}
			prev = r
		}
	}
}

func TestAPSGrowsWithConcurrencyAtFixedPerQuerySelectivity(t *testing.T) {
	// Figure 4's sloped divide: at a per-query selectivity near the q=1
	// crossover, adding concurrency pushes the decision towards the scan.
	s := 0.002
	r1 := APS(testParams(1, s))
	r64 := APS(testParams(64, s))
	if r64 <= r1 {
		t.Fatalf("APS(q=64)=%v should exceed APS(q=1)=%v at s=%v", r64, r1, s)
	}
}

func TestColumnGroupsFavorIndex(t *testing.T) {
	// Observation 2.3: larger tuples (column-groups) lower the APS ratio,
	// making the index useful in more cases.
	narrow := testParams(4, 0.01)
	wide := narrow
	wide.Dataset.TupleSize = 40
	if APS(wide) >= APS(narrow) {
		t.Fatalf("APS(ts=40)=%v should be below APS(ts=4)=%v", APS(wide), APS(narrow))
	}
}

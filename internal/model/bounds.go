package model

import "math"

// This file implements Appendix A: entropy bounds on the total sorting
// cost SC = sum_i s_i*N*log2(s_i*N) for a batch with total selectivity
// S_tot split across q queries.

// ExactSortComparisons returns the exact comparison count
// sum_i s_i*N*log2(s_i*N) for the given workload, skipping result sets
// with fewer than two entries (nothing to sort).
func ExactSortComparisons(w Workload, d Dataset) float64 {
	var t float64
	for _, s := range w.Selectivities {
		k := s * d.N
		if k >= 2 {
			t += k * math.Log2(k)
		}
	}
	return t
}

// MaxSortComparisons returns MaxSC (Equation 20): S_tot*N*log2(S_tot*N),
// attained when one query holds the entire selectivity and the rest are
// empty (the zero-entropy extreme).
func MaxSortComparisons(stot float64, d Dataset) float64 {
	k := stot * d.N
	if k < 2 {
		return 0
	}
	return k * math.Log2(k)
}

// MinSortComparisons returns MinSC (Equation 19):
// S_tot*N*(log2(1/q) + log2(S_tot*N)), attained when all q selectivities
// are equal (the maximum-entropy extreme). It is clamped at zero: for
// very small per-query results the formula goes negative while the true
// comparison count cannot.
func MinSortComparisons(stot float64, q int, d Dataset) float64 {
	k := stot * d.N
	if k < 2 || q < 1 {
		return 0
	}
	v := k * (math.Log2(1/float64(q)) + math.Log2(k))
	if v < 0 {
		return 0
	}
	return v
}

// SortEntropy returns the entropy term E(s_1..s_q) =
// sum_i (s_i/S_tot)*log2(s_i/S_tot) of Equation 17. It is always in
// [log2(1/q), 0]: zero when one query dominates, log2(1/q) when the
// selectivities are all equal.
func SortEntropy(w Workload) float64 {
	stot := w.TotalSelectivity()
	if EqZero(stot) {
		return 0
	}
	var e float64
	for _, s := range w.Selectivities {
		if EqZero(s) {
			continue
		}
		f := s / stot
		e += f * math.Log2(f)
	}
	return e
}

package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomWorkload builds a workload of q queries whose selectivities sum to
// stot, with a random (Dirichlet-ish) split.
func randomWorkload(rng *rand.Rand, q int, stot float64) Workload {
	weights := make([]float64, q)
	var sum float64
	for i := range weights {
		weights[i] = -math.Log(1 - rng.Float64()) // Exp(1)
		sum += weights[i]
	}
	sel := make([]float64, q)
	for i := range sel {
		sel[i] = stot * weights[i] / sum
	}
	return Workload{Selectivities: sel}
}

func TestSortComparisonBoundsProperty(t *testing.T) {
	// Appendix A: for any split of S_tot across q queries,
	// MinSC <= exact <= MaxSC.
	d := Dataset{N: 1e8, TupleSize: 4}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		q := 1 + rng.Intn(64)
		stot := math.Pow(10, -4+4.3*rng.Float64()) // up to ~2.0
		w := randomWorkload(rng, q, stot)
		exact := ExactSortComparisons(w, d)
		lo := MinSortComparisons(stot, q, d)
		hi := MaxSortComparisons(stot, d)
		if exact > hi*(1+1e-9) {
			t.Fatalf("exact %v exceeds MaxSC %v (q=%d stot=%v)", exact, hi, q, stot)
		}
		if exact < lo*(1-1e-9)-1 {
			t.Fatalf("exact %v below MinSC %v (q=%d stot=%v)", exact, lo, q, stot)
		}
	}
}

func TestMaxAttainedBySingleQuery(t *testing.T) {
	// The zero-entropy extreme: all selectivity in one query.
	d := Dataset{N: 1e7, TupleSize: 4}
	stot := 0.12
	w := Workload{Selectivities: []float64{stot, 0, 0, 0, 0}}
	exact := ExactSortComparisons(w, d)
	if !approxEqual(exact, MaxSortComparisons(stot, d), 1e-12) {
		t.Fatalf("single-query workload: exact %v != MaxSC %v", exact, MaxSortComparisons(stot, d))
	}
}

func TestMinAttainedByEqualSplit(t *testing.T) {
	// The maximum-entropy extreme: equal selectivities.
	d := Dataset{N: 1e7, TupleSize: 4}
	q, stot := 16, 0.08
	exact := ExactSortComparisons(Uniform(q, stot/float64(q)), d)
	if !approxEqual(exact, MinSortComparisons(stot, q, d), 1e-9) {
		t.Fatalf("equal-split workload: exact %v != MinSC %v", exact, MinSortComparisons(stot, q, d))
	}
}

func TestSortEntropyRange(t *testing.T) {
	f := func(seed int64, qSeed uint8, sSeed float64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 1 + int(qSeed)%32
		stot := 1e-4 + math.Mod(math.Abs(sSeed), 2)
		w := randomWorkload(rng, q, stot)
		e := SortEntropy(w)
		return e <= 1e-12 && e >= math.Log2(1/float64(q))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortEntropyExtremes(t *testing.T) {
	single := Workload{Selectivities: []float64{0.3, 0, 0}}
	if e := SortEntropy(single); !approxEqual(e, 0, 1e-12) && e != 0 {
		t.Fatalf("entropy of single-query split = %v, want 0", e)
	}
	q := 8
	equal := Uniform(q, 0.01)
	if e := SortEntropy(equal); !approxEqual(e, math.Log2(1/float64(q)), 1e-9) {
		t.Fatalf("entropy of equal split = %v, want %v", e, math.Log2(1/float64(q)))
	}
}

func TestBoundsDegenerateCases(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	if MaxSortComparisons(0, d) != 0 {
		t.Fatal("MaxSC(0) != 0")
	}
	if MinSortComparisons(0, 4, d) != 0 {
		t.Fatal("MinSC(0) != 0")
	}
	if MinSortComparisons(1e-9, 1024, d) < 0 {
		t.Fatal("MinSC went negative")
	}
	if SortEntropy(Workload{Selectivities: []float64{0, 0}}) != 0 {
		t.Fatal("entropy of empty result sets != 0")
	}
}

package model

import "math"

// This file extends the Section 5 shared-scan model with the
// cooperative-scan attach-vs-wait term: a query arriving while a shared
// pass is in flight can either attach at the pass cursor (share the
// remainder with the live queries, then have its missed prefix served
// by a wrap-around continuation) or wait for the next batching window
// and share a fresh full pass with whatever has queued up. Both sides
// are priced with the paper's own Equation 5 pieces, so the choice
// inherits the fitted hardware profile — and the robust variant
// inherits the estimate-error machinery of the RobustPolicy ablation.

// PassState is the observable state of an in-flight cooperative pass
// plus the scheduler context the wait side needs (internal/coop's
// Progress maps onto the first four fields).
type PassState struct {
	// FracDone is the fraction of the pass's blocks already claimed
	// (cursor c over the circular schedule), in [0, 1].
	FracDone float64
	// Live is the number of unfinished queries riding the pass; LiveSel
	// is the sum of their selectivity estimates.
	Live    int
	LiveSel float64
	// Pending is the number of queries already queued for the next
	// batching window on this column.
	Pending int
	// Window is the scheduler's batching window in seconds — the
	// expected extra queueing delay the waiting query pays before the
	// next pass even starts.
	Window float64
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// scaled returns a copy of d covering frac of its tuples, floored at
// one tuple so the Equation 1/2/3 terms stay well-defined.
func scaled(d Dataset, frac float64) Dataset {
	n := d.N * frac
	if n < 1 {
		n = 1
	}
	return Dataset{N: n, TupleSize: d.TupleSize}
}

// AttachCost prices attaching p.Workload's queries at cursor c: the
// remainder of the pass is a shared scan over (1-c)·N tuples evaluated
// by the live queries plus the attachers, and each attacher's missed
// prefix is then served by a wrap-around continuation — costed as a
// single-query scan over c·N per attaching query, the conservative
// no-other-sharers view of the wrap.
func AttachCost(p Params, st PassState) float64 {
	c := clamp01(st.FracDone)
	live := st.Live
	if live < 0 {
		live = 0
	}
	liveSel := clamp01(st.LiveSel / math.Max(float64(live), 1))
	joint := Workload{Selectivities: append(Uniform(live, liveSel).Selectivities,
		p.Workload.Selectivities...)}
	remainder := SharedScan(Params{
		Workload: joint,
		Dataset:  scaled(p.Dataset, 1-c),
		Hardware: p.Hardware,
		Design:   p.Design,
	})
	var wrap float64
	if c > 0 {
		prefix := scaled(p.Dataset, c)
		for _, s := range p.Workload.Selectivities {
			wrap += SingleQueryScan(s, prefix, p.Hardware, p.Design)
		}
	}
	return remainder + wrap
}

// WaitCost prices the next-window alternative: sit out the remaining
// batching window, then share a full fresh pass with the Pending
// queries already queued (each assumed to match the arriving queries'
// mean selectivity — the scheduler knows how many are queued, not what
// they select).
func WaitCost(p Params, st PassState) float64 {
	q := p.Workload.Q()
	mean := clamp01(p.Workload.TotalSelectivity() / math.Max(float64(q), 1))
	pending := st.Pending
	if pending < 0 {
		pending = 0
	}
	next := SharedScan(Params{
		Workload: Uniform(pending+q, mean),
		Dataset:  p.Dataset,
		Hardware: p.Hardware,
		Design:   p.Design,
	})
	return math.Max(st.Window, 0) + next
}

// ShouldAttach reports whether attaching at the cursor beats waiting
// for the next window, and returns both costs so callers can record the
// predicted saving.
func ShouldAttach(p Params, st PassState) (attach bool, attachCost, waitCost float64) {
	attachCost = AttachCost(p, st)
	waitCost = WaitCost(p, st)
	return attachCost <= waitCost, attachCost, waitCost
}

// ShouldAttachRobust is the RobustPolicy variant: the attacher's own
// selectivity estimate and the pass's live-selectivity estimate are
// both perturbed by 1/errBound, 1, and errBound, and the attach is
// taken only if it wins under every perturbation — mirroring how robust
// APS hedges the scan-vs-probe choice. errBound <= 1 degenerates to
// ShouldAttach.
func ShouldAttachRobust(p Params, st PassState, errBound float64) (attach bool, attachCost, waitCost float64) {
	attach, attachCost, waitCost = ShouldAttach(p, st)
	if errBound <= 1 || !attach {
		return attach, attachCost, waitCost
	}
	for _, f := range []float64{1 / errBound, errBound} {
		pf := p
		pf.Workload = p.Workload.WithEstimateError(f)
		stf := st
		stf.LiveSel = math.Min(st.LiveSel*f, float64(max(st.Live, 0)))
		if ok, _, _ := ShouldAttach(pf, stf); !ok {
			return false, attachCost, waitCost
		}
	}
	return true, attachCost, waitCost
}

package model

import "testing"

func coopParams(sel float64) Params {
	return Params{
		Workload: Workload{Selectivities: []float64{sel}},
		Dataset:  Dataset{N: 1e8, TupleSize: 4},
		Hardware: HW1(),
		Design:   DefaultDesign(),
	}
}

func TestAttachWinsEarlyCursorLargeWindow(t *testing.T) {
	// Pass barely started, few co-riders, fat batching window: the wrap
	// prefix is tiny and waiting costs a whole window plus a full pass.
	p := coopParams(0.001)
	st := PassState{FracDone: 0.05, Live: 4, LiveSel: 0.004, Pending: 0, Window: 2e-3}
	attach, ac, wc := ShouldAttach(p, st)
	if !attach {
		t.Fatalf("expected attach to win: attach=%v wait=%v", ac, wc)
	}
	if ac <= 0 || wc <= 0 {
		t.Fatalf("costs must be positive: attach=%v wait=%v", ac, wc)
	}
}

func TestWaitWinsLateCursorCrowdedPass(t *testing.T) {
	// Pass nearly done and crowded: attaching shares almost nothing,
	// pays a near-full single-query wrap, and rides a pass whose q·PE
	// term is bloated by many live queries. Next window is almost free.
	p := coopParams(0.001)
	st := PassState{FracDone: 0.95, Live: 256, LiveSel: 2.0, Pending: 0, Window: 0}
	attach, ac, wc := ShouldAttach(p, st)
	if attach {
		t.Fatalf("expected wait to win: attach=%v wait=%v", ac, wc)
	}
}

func TestAttachCostGrowsWithLiveSet(t *testing.T) {
	// A more crowded pass makes the shared remainder's q·PE term fatter:
	// at a fixed cursor, attaching to a busier pass must not be cheaper.
	p := coopParams(0.01)
	prev := -1.0
	for _, live := range []int{0, 4, 32, 128} {
		st := PassState{FracDone: 0.5, Live: live, LiveSel: 0.01 * float64(live)}
		cost := AttachCost(p, st)
		if cost < prev {
			t.Fatalf("AttachCost decreased at live=%d: %v < %v", live, cost, prev)
		}
		prev = cost
	}
}

func TestWaitCostGrowsWithWindowAndPending(t *testing.T) {
	p := coopParams(0.01)
	base := WaitCost(p, PassState{})
	if w := WaitCost(p, PassState{Window: 1e-3}); w <= base {
		t.Fatalf("window should add to wait cost: %v <= %v", w, base)
	}
	if w := WaitCost(p, PassState{Pending: 64}); w <= base {
		t.Fatalf("pending queries should add to wait cost: %v <= %v", w, base)
	}
}

func TestShouldAttachRobustIsConservative(t *testing.T) {
	p := coopParams(0.001)
	// Sweep cursor positions; wherever robust says attach, plain must
	// agree — robust only ever vetoes.
	for _, c := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		st := PassState{FracDone: c, Live: 32, LiveSel: 0.5, Window: 5e-4}
		plain, _, _ := ShouldAttach(p, st)
		robust, _, _ := ShouldAttachRobust(p, st, 8)
		if robust && !plain {
			t.Fatalf("robust attached where plain refused at c=%v", c)
		}
	}
}

func TestShouldAttachRobustDegenerateBound(t *testing.T) {
	p := coopParams(0.001)
	st := PassState{FracDone: 0.1, Live: 4, LiveSel: 0.01, Window: 1e-3}
	plain, pac, pwc := ShouldAttach(p, st)
	robust, rac, rwc := ShouldAttachRobust(p, st, 1)
	if plain != robust || pac != rac || pwc != rwc {
		t.Fatalf("errBound<=1 must degenerate to ShouldAttach")
	}
}

package model

import "math"

// This file implements the cost equations of Section 2 of the paper.
// Everything is in seconds. Equation numbers refer to the paper.

// DataScanTime returns T_DS (Equation 1): the time to stream N tuples of
// ts bytes each at scan bandwidth.
func DataScanTime(d Dataset, h Hardware) float64 {
	return d.N * d.TupleSize / h.ScanBandwidth
}

// PredicateEval returns PE (Equation 2): the CPU cost of evaluating one
// query's range predicate (a lower and an upper bound, hence the factor 2)
// over all N tuples.
func PredicateEval(d Dataset, h Hardware) float64 {
	return 2 * h.Pipelining * h.ClockPeriod * d.N
}

// ResultWriteTime returns T_DR (Equation 3): the time to write a full
// column of N rowIDs of rw bytes at result bandwidth. Actual result writes
// are s_i * T_DR.
func ResultWriteTime(d Dataset, h Hardware, dg Design) float64 {
	return d.N * dg.ResultWidth / h.ResultBandwidth
}

// TreeTraversal returns T_T (Equation 6): the root-to-leaf descent cost of
// a B+-tree of fanout b over N tuples. Each level costs one random memory
// access plus, on average, b/2 sequential key reads and b/2 pipelined
// comparisons.
func TreeTraversal(d Dataset, h Hardware, dg Design) float64 {
	levels := 1 + math.Ceil(math.Log(d.N)/math.Log(dg.Fanout))
	perLevel := h.MemAccess +
		dg.Fanout*h.CacheAccess/2 +
		dg.Fanout*h.Pipelining*h.ClockPeriod/2
	return levels * perLevel
}

// LeafTraversal returns T_L (Equation 7): the cost of visiting every leaf
// of the tree, one LLC miss per leaf (leaves live at arbitrary addresses).
// A query touching selectivity s pays s * T_L.
func LeafTraversal(d Dataset, h Hardware, dg Design) float64 {
	return d.N * h.MemAccess / dg.Fanout
}

// LeafDataTraversal returns T_DI (Equation 8): the cost of streaming the
// (value, rowID) pairs held in the leaves at leaf bandwidth. A query
// touching selectivity s pays s * T_DI.
func LeafDataTraversal(d Dataset, h Hardware, dg Design) float64 {
	return d.N * (dg.AttrWidth + dg.OffsetWidth) / h.LeafBandwidth
}

// SortCost returns SC_i (Equation 9): the cost of sorting one query's
// result of s*N rowIDs back into rowID order, one cache access per
// comparison. Zero when the result holds fewer than two entries.
func SortCost(s float64, d Dataset, h Hardware) float64 {
	k := s * d.N
	if k < 2 {
		return 0
	}
	return k * math.Log2(k) * h.CacheAccess
}

// SortFactor returns SF (Equation 14): the worst-case number of
// comparisons for sorting all q result sets, S_tot*N*log2(S_tot*N),
// derived from the entropy bound of Appendix A. When the design sets
// SIMDSortWidth = W > 1 it returns the Appendix D variant (Equation 26):
// S_tot*N/W * log2(S_tot*N/W) + S_tot*N*log2(W).
func SortFactor(stot float64, d Dataset, dg Design) float64 {
	k := stot * d.N
	if k < 2 {
		return 0
	}
	if w := dg.SIMDSortWidth; w > 1 {
		inner := k / w
		var t float64
		if inner > 1 {
			t = inner * math.Log2(inner)
		}
		return t + k*math.Log2(w)
	}
	return k * math.Log2(k)
}

// SingleQueryScan returns Equation 4: the cost of one query answered by a
// sequential scan — data movement overlapped with predicate evaluation,
// plus the result write.
func SingleQueryScan(s float64, d Dataset, h Hardware, dg Design) float64 {
	return math.Max(DataScanTime(d, h), PredicateEval(d, h)) +
		dg.alphaOrOne()*s*ResultWriteTime(d, h, dg)
}

// SharedScan returns Equation 5 (or its fitted form, Equation 22, when the
// design carries alpha): the cost of q queries sharing one scan. Data is
// read once; predicate evaluation multiplies by q; each query writes its
// own result, so writes scale with S_tot.
func SharedScan(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	return math.Max(DataScanTime(p.Dataset, p.Hardware), q*PredicateEval(p.Dataset, p.Hardware)) +
		p.Design.alphaOrOne()*stot*ResultWriteTime(p.Dataset, p.Hardware, p.Design)
}

// PredicateEvalPacked returns the packed-kernel PE term: the SWAR
// kernel evaluates ScanSIMDWidth codes per word operation, so the
// Equation 2 cost divides by W — the scan-side analogue of Appendix D's
// Equation 26, with W refitted to the kernel actually shipped.
func PredicateEvalPacked(d Dataset, h Hardware, dg Design) float64 {
	return PredicateEval(d, h) / dg.scanWidthOrOne()
}

// SharedScanPacked returns the Equation 5 cost of q queries sharing one
// scan over the word-packed compressed layout: the caller's Dataset
// carries the compressed tuple size (PackedTupleBytes), predicate
// evaluation earns the W-way SWAR discount, and result writing pays the
// packed alpha — the late-materialization path overlaps differently
// than the predicated store-per-tuple kernel, so its overlap constant
// is fitted separately.
func SharedScanPacked(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	return math.Max(DataScanTime(p.Dataset, p.Hardware),
		q*PredicateEvalPacked(p.Dataset, p.Hardware, p.Design)) +
		p.Design.packedAlphaOrAlpha()*stot*ResultWriteTime(p.Dataset, p.Hardware, p.Design)
}

// SingleIndexProbe returns Equation 10: one query through the secondary
// index — tree descent, leaf and leaf-data traversal proportional to s,
// result write, and the per-query sort back into rowID order.
func SingleIndexProbe(s float64, d Dataset, h Hardware, dg Design) float64 {
	return TreeTraversal(d, h, dg) +
		s*(LeafTraversal(d, h, dg)+LeafDataTraversal(d, h, dg)) +
		s*ResultWriteTime(d, h, dg) +
		dg.sortCorrection(d.N)*SortCost(s, d, h)
}

// ConcIndex returns Equation 13 (or its fitted form, Equation 23): the
// worst-case cost of q queries sharing a concurrent secondary-index scan.
// The tree is descended q times; leaves, leaf data and result writes scale
// with S_tot; sorting uses the worst-case factor SF of Equation 14.
func ConcIndex(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	d, h, dg := p.Dataset, p.Hardware, p.Design
	return q*TreeTraversal(d, h, dg) +
		stot*(LeafTraversal(d, h, dg)+LeafDataTraversal(d, h, dg)) +
		stot*ResultWriteTime(d, h, dg) +
		dg.sortCorrection(d.N)*SortFactor(stot, d, dg)*h.CacheAccess
}

// ConcIndexOptimistic is the best-case counterpart of ConcIndex. The
// paper notes its concurrent analysis is worst case: "concurrent accesses
// often lead to natural sharing in the cache as different queries
// traverse overlapping parts of the tree", and Appendix A's MinSC bounds
// the sorting cost from below. Here the first descent pays full memory
// misses while the remaining q-1 ride the cache, and sorting uses MinSC.
// Together with ConcIndex this brackets where the measured cost can land.
func ConcIndexOptimistic(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	d, h, dg := p.Dataset, p.Hardware, p.Design
	levels := 1 + math.Ceil(math.Log(d.N)/math.Log(dg.Fanout))
	// A fully cached descent: node access and key reads both at CA.
	cached := levels * (h.CacheAccess +
		dg.Fanout*h.CacheAccess/2 +
		dg.Fanout*h.Pipelining*h.ClockPeriod/2)
	tt := TreeTraversal(d, h, dg) + (q-1)*cached
	return tt +
		stot*(LeafTraversal(d, h, dg)+LeafDataTraversal(d, h, dg)) +
		stot*ResultWriteTime(d, h, dg) +
		dg.sortCorrection(d.N)*MinSortComparisons(stot, p.Workload.Q(), d)*h.CacheAccess
}

// ConcIndexExact is Equation 11: like ConcIndex but with the exact
// per-query sorting cost sum instead of the worst-case entropy bound.
func ConcIndexExact(p Params) float64 {
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	d, h, dg := p.Dataset, p.Hardware, p.Design
	var sort float64
	for _, s := range p.Workload.Selectivities {
		sort += SortCost(s, d, h)
	}
	return q*TreeTraversal(d, h, dg) +
		stot*(LeafTraversal(d, h, dg)+LeafDataTraversal(d, h, dg)) +
		stot*ResultWriteTime(d, h, dg) +
		dg.sortCorrection(d.N)*sort
}

package model

import (
	"math"
	"testing"
)

func approxEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func testParams(q int, s float64) Params {
	return Params{
		Workload: Uniform(q, s),
		Dataset:  Dataset{N: 1e8, TupleSize: 4},
		Hardware: HW1(),
		Design:   DefaultDesign(),
	}
}

func TestDataScanTime(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	got := DataScanTime(d, HW1())
	want := 1e8 * 4 / 40e9 // 10ms on HW1
	if !approxEqual(got, want, 1e-12) {
		t.Fatalf("DataScanTime = %v, want %v", got, want)
	}
	// Doubling the tuple size doubles the scan time.
	d.TupleSize = 8
	if got2 := DataScanTime(d, HW1()); !approxEqual(got2, 2*want, 1e-12) {
		t.Fatalf("DataScanTime(ts=8) = %v, want %v", got2, 2*want)
	}
}

func TestPredicateEvalScalesWithN(t *testing.T) {
	h := HW1()
	a := PredicateEval(Dataset{N: 1e6, TupleSize: 4}, h)
	b := PredicateEval(Dataset{N: 2e6, TupleSize: 4}, h)
	if !approxEqual(b, 2*a, 1e-12) {
		t.Fatalf("PE not linear in N: %v vs %v", a, b)
	}
	want := 2 * h.Pipelining * h.ClockPeriod * 1e6
	if !approxEqual(a, want, 1e-12) {
		t.Fatalf("PE = %v, want %v", a, want)
	}
}

func TestResultWriteTime(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	got := ResultWriteTime(d, HW1(), DefaultDesign())
	want := 1e8 * 4 / 20e9 // 20ms on HW1
	if !approxEqual(got, want, 1e-12) {
		t.Fatalf("ResultWriteTime = %v, want %v", got, want)
	}
}

func TestTreeTraversalHeight(t *testing.T) {
	h := HW1()
	dg := DefaultDesign()
	// N = b^3 exactly: height term is 1 + ceil(log_b N) = 4.
	b := dg.Fanout
	d := Dataset{N: b * b * b, TupleSize: 4}
	perLevel := h.MemAccess + b*h.CacheAccess/2 + b*h.Pipelining*h.ClockPeriod/2
	got := TreeTraversal(d, h, dg)
	if !approxEqual(got, 4*perLevel, 1e-9) {
		t.Fatalf("TreeTraversal = %v, want %v", got, 4*perLevel)
	}
	// Tree descent must grow logarithmically: going from N to N*b adds one level.
	d2 := Dataset{N: d.N * b, TupleSize: 4}
	if got2 := TreeTraversal(d2, h, dg); !approxEqual(got2-got, perLevel, 1e-6) {
		t.Fatalf("adding a level cost %v, want %v", got2-got, perLevel)
	}
}

func TestLeafTraversal(t *testing.T) {
	d := Dataset{N: 2.1e7, TupleSize: 4}
	h := HW1()
	dg := DefaultDesign()
	// N/b leaves, one LLC miss each.
	want := 2.1e7 / 21 * 180e-9
	if got := LeafTraversal(d, h, dg); !approxEqual(got, want, 1e-12) {
		t.Fatalf("LeafTraversal = %v, want %v", got, want)
	}
}

func TestLeafDataTraversal(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	want := 1e8 * 8 / 20e9 // (aw+ow)=8 bytes per entry at BWI
	if got := LeafDataTraversal(d, HW1(), DefaultDesign()); !approxEqual(got, want, 1e-12) {
		t.Fatalf("LeafDataTraversal = %v, want %v", got, want)
	}
}

func TestSortCostSmallResults(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	if got := SortCost(0, d, HW1()); got != 0 {
		t.Fatalf("SortCost(0) = %v, want 0", got)
	}
	// One qualifying tuple: nothing to sort.
	if got := SortCost(1/1e8, d, HW1()); got != 0 {
		t.Fatalf("SortCost(1 tuple) = %v, want 0", got)
	}
	k := 1e6
	want := k * math.Log2(k) * 2e-9
	if got := SortCost(k/1e8, d, HW1()); !approxEqual(got, want, 1e-9) {
		t.Fatalf("SortCost = %v, want %v", got, want)
	}
}

func TestSortFactorSIMDReducesCost(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	scalar := DefaultDesign()
	simd := DefaultDesign()
	simd.SIMDSortWidth = 4
	for _, stot := range []float64{1e-4, 1e-2, 0.5, 2} {
		a := SortFactor(stot, d, scalar)
		b := SortFactor(stot, d, simd)
		if b >= a {
			t.Fatalf("SIMD sort factor %v not below scalar %v at stot=%v", b, a, stot)
		}
		if b <= 0 {
			t.Fatalf("SIMD sort factor %v must stay positive at stot=%v", b, stot)
		}
	}
}

func TestSharedScanReducesToSingleQuery(t *testing.T) {
	p := testParams(1, 0.01)
	got := SharedScan(p)
	want := SingleQueryScan(0.01, p.Dataset, p.Hardware, p.Design)
	if !approxEqual(got, want, 1e-12) {
		t.Fatalf("SharedScan(q=1) = %v, want SingleQueryScan = %v", got, want)
	}
}

func TestSharedScanSharesDataMovement(t *testing.T) {
	// While memory bound, q queries sharing one scan must cost far less
	// than q independent scans: data moves once.
	q := 8
	s := 0.001
	p := testParams(q, s)
	shared := SharedScan(p)
	independent := float64(q) * SingleQueryScan(s, p.Dataset, p.Hardware, p.Design)
	if shared >= independent {
		t.Fatalf("shared scan %v not cheaper than %d independent scans %v", shared, q, independent)
	}
	if independent/shared < 4 {
		t.Fatalf("sharing 8 low-selectivity queries should save ~8x data movement, got %.2fx", independent/shared)
	}
}

func TestSharedScanBecomesCPUBound(t *testing.T) {
	// Equation 5: once q*PE > T_DS the scan cost grows with concurrency.
	p1 := testParams(1, 0)
	d, h := p1.Dataset, p1.Hardware
	qStar := DataScanTime(d, h) / PredicateEval(d, h)
	q := int(qStar*4) + 2
	pHigh := testParams(q, 0)
	if SharedScan(pHigh) <= SharedScan(p1)*1.5 {
		t.Fatalf("scan at q=%d (%.4fs) should be CPU bound vs q=1 (%.4fs)",
			q, SharedScan(pHigh), SharedScan(p1))
	}
}

func TestConcIndexReducesToSingleProbe(t *testing.T) {
	// With one query, the worst-case sorting bound equals the exact
	// per-query cost, so ConcIndex == SingleIndexProbe.
	p := testParams(1, 0.003)
	got := ConcIndex(p)
	want := SingleIndexProbe(0.003, p.Dataset, p.Hardware, p.Design)
	if !approxEqual(got, want, 1e-9) {
		t.Fatalf("ConcIndex(q=1) = %v, want SingleIndexProbe = %v", got, want)
	}
}

func TestConcIndexExactNeverAboveWorstCase(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	h := HW1()
	dg := DefaultDesign()
	workloads := []Workload{
		Uniform(4, 0.002),
		{Selectivities: []float64{0.01, 0, 0, 0}},
		{Selectivities: []float64{0.004, 0.001, 0.002, 0.003}},
		{Selectivities: []float64{0.5, 0.25, 0.125}},
	}
	for _, w := range workloads {
		p := Params{Workload: w, Dataset: d, Hardware: h, Design: dg}
		exact, worst := ConcIndexExact(p), ConcIndex(p)
		if exact > worst*(1+1e-9) {
			t.Fatalf("exact cost %v exceeds worst-case bound %v for %v", exact, worst, w.Selectivities)
		}
	}
}

func TestFittedDesignChangesCosts(t *testing.T) {
	p := testParams(16, 0.01)
	fitted := p
	fitted.Design = FittedDesign()
	// Alpha = 8 inflates scan result writing.
	if SharedScan(fitted) <= SharedScan(p) {
		t.Fatalf("fitted scan %v should cost more than unfitted %v (alpha=8)",
			SharedScan(fitted), SharedScan(p))
	}
	// fc(N) < 1 at N=1e8 discounts the worst-case sort term.
	if ConcIndex(fitted) >= ConcIndex(p) {
		t.Fatalf("fitted index %v should cost less than unfitted %v (fc<1)",
			ConcIndex(fitted), ConcIndex(p))
	}
}

func TestCostsArePositiveAndFinite(t *testing.T) {
	for _, q := range []int{1, 7, 100, 512} {
		for _, s := range []float64{0, 1e-7, 0.005, 0.3, 1} {
			p := testParams(q, s)
			for name, v := range map[string]float64{
				"SharedScan": SharedScan(p),
				"ConcIndex":  ConcIndex(p),
				"Exact":      ConcIndexExact(p),
			} {
				if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("%s(q=%d, s=%v) = %v", name, q, s, v)
				}
			}
		}
	}
}

func TestConcIndexOptimisticBracketsExact(t *testing.T) {
	// Optimistic <= exact <= worst-case, for equal-split batches (where
	// the exact sort cost equals MinSC, the other terms still order the
	// three because tree traversals dominate at high q).
	for _, q := range []int{1, 8, 64, 512} {
		for _, s := range []float64{0.0001, 0.001, 0.01} {
			p := testParams(q, s)
			opt := ConcIndexOptimistic(p)
			exact := ConcIndexExact(p)
			worst := ConcIndex(p)
			if opt > exact*(1+1e-9) {
				t.Fatalf("q=%d s=%v: optimistic %v above exact %v", q, s, opt, exact)
			}
			if exact > worst*(1+1e-9) {
				t.Fatalf("q=%d s=%v: exact %v above worst %v", q, s, exact, worst)
			}
		}
	}
}

func TestConcIndexOptimisticSharesTraversals(t *testing.T) {
	// At high concurrency and tiny selectivity the optimistic cost grows
	// far slower with q than the worst case: descents ride the cache.
	p1 := testParams(1, 1e-6)
	p256 := testParams(256, 1e-6)
	worstGrowth := ConcIndex(p256) / ConcIndex(p1)
	optGrowth := ConcIndexOptimistic(p256) / ConcIndexOptimistic(p1)
	if optGrowth >= worstGrowth {
		t.Fatalf("optimistic growth %v should undercut worst-case growth %v", optGrowth, worstGrowth)
	}
}

package model

import "math"

// This file finds the break-even ("crossover") selectivity at which
// APS(q, S_tot) = 1: below it the secondary index wins, above it the
// shared scan wins. The paper's Figures 1 and 13-17 and Table 2 are all
// crossover curves of this kind.

// Crossover returns the per-query selectivity s* at which a batch of q
// equal-selectivity queries switches from index to scan, found by
// bisection on APS = 1. The second result is false when no crossover
// exists in (0, 1]: either the scan always wins (the returned selectivity
// is 0) or the index always wins (the returned selectivity is 1).
//
// APS(q, S_tot) is monotonically increasing in S_tot for fixed q — every
// S_tot term in the numerator (leaves, leaf data, sorting) grows at least
// linearly while the denominator grows linearly with a large constant
// offset — so bisection is exact here; the tests verify monotonicity.
func Crossover(q int, d Dataset, h Hardware, dg Design) (sel float64, ok bool) {
	f := func(s float64) float64 {
		p := Params{Workload: Uniform(q, s), Dataset: d, Hardware: h, Design: dg}
		return APS(p) - 1
	}
	lo, hi := 1e-12, 1.0
	flo, fhi := f(lo), f(hi)
	if flo >= 0 {
		return 0, false // scan wins even at vanishing selectivity
	}
	if fhi <= 0 {
		return 1, false // index wins even at full selectivity
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: s spans many decades
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return math.Sqrt(lo * hi), true
}

// CrossoverTotal is Crossover expressed as total batch selectivity
// S_tot = q * s*.
func CrossoverTotal(q int, d Dataset, h Hardware, dg Design) (float64, bool) {
	s, ok := Crossover(q, d, h, dg)
	return float64(q) * s, ok
}

// CrossoverCurve returns the crossover selectivity for each concurrency
// level in qs, the shape plotted in Figures 1 and 13.
func CrossoverCurve(qs []int, d Dataset, h Hardware, dg Design) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		s, _ := Crossover(q, d, h, dg)
		out[i] = s
	}
	return out
}

// ScanAlwaysWins reports whether, at concurrency q, the shared scan is
// preferred at every selectivity in (0,1] — the "far right" regime of
// Figure 1 where concurrency is so high that the q tree traversals and
// predicate evaluation dominate any index advantage.
func ScanAlwaysWins(q int, d Dataset, h Hardware, dg Design) bool {
	s, ok := Crossover(q, d, h, dg)
	return !ok && EqZero(s)
}

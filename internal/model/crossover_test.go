package model

import (
	"math"
	"testing"
)

func TestCrossoverExistsOnHW1(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(1, d, HW1(), FittedDesign())
	if !ok {
		t.Fatalf("no crossover found at q=1 (s=%v)", s)
	}
	// Figure 12 measures ~0.59% on the primary server; the fitted model
	// must land in the same low-single-percent regime.
	if s < 0.0005 || s > 0.05 {
		t.Fatalf("q=1 crossover %.4f%% outside the plausible [0.05%%, 5%%] band", s*100)
	}
}

func TestCrossoverDecreasesWithConcurrency(t *testing.T) {
	// Figure 13 / Observation 4.1: the crossover selectivity falls as
	// concurrency rises, then plateaus — never rises.
	d := Dataset{N: 1e8, TupleSize: 4}
	for _, dg := range []Design{DefaultDesign(), FittedDesign()} {
		prev := math.Inf(1)
		for _, q := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
			s, ok := Crossover(q, d, HW1(), dg)
			if !ok {
				t.Fatalf("no crossover at q=%d", q)
			}
			if s > prev*(1+1e-9) {
				t.Fatalf("crossover rose with concurrency at q=%d: %v > %v", q, s, prev)
			}
			prev = s
		}
	}
}

func TestCrossoverPlateaus(t *testing.T) {
	// Once the scan is CPU bound, extra concurrency hurts scan and index
	// alike and the crossover flattens (the plateau in Figure 13).
	d := Dataset{N: 1e8, TupleSize: 4}
	s256, _ := Crossover(256, d, HW1(), FittedDesign())
	s512, _ := Crossover(512, d, HW1(), FittedDesign())
	if s256 <= 0 || s512 <= 0 {
		t.Fatal("crossover vanished at high q; both paths should stay useful")
	}
	if s256/s512 > 1.5 {
		t.Fatalf("crossover still falling steeply at q=256→512: %v → %v", s256, s512)
	}
}

func TestColumnGroupsRaiseCrossover(t *testing.T) {
	// Figure 15 / Observation 4.3: wider tuples make the index useful over
	// a wider selectivity range, at every concurrency level.
	for _, q := range []int{1, 8, 64} {
		narrow, _ := Crossover(q, Dataset{N: 1e8, TupleSize: 4}, HW1(), DefaultDesign())
		wide, _ := Crossover(q, Dataset{N: 1e8, TupleSize: 40}, HW1(), DefaultDesign())
		if wide <= narrow {
			t.Fatalf("q=%d: column-group crossover %v not above single-column %v", q, wide, narrow)
		}
	}
}

func TestCompressionLowersCrossover(t *testing.T) {
	// Figure 17 / Observation 4.5: 2-byte compressed scans shift the
	// balance slightly towards scans; both paths remain useful.
	raw, _ := Crossover(8, Dataset{N: 1e8, TupleSize: 4}, HW1(), DefaultDesign())
	comp, okc := Crossover(8, Dataset{N: 1e8, TupleSize: 2}, HW1(), DefaultDesign())
	if !okc {
		t.Fatal("compression removed the crossover entirely")
	}
	if comp >= raw {
		t.Fatalf("compressed crossover %v not below uncompressed %v", comp, raw)
	}
	if comp < raw/10 {
		t.Fatalf("compression shifted the crossover too much: %v vs %v", comp, raw)
	}
}

func TestDataSizeSweepRisesThenFalls(t *testing.T) {
	// Figure 14 / Observation 4.2: the crossover vs data size reaches a
	// maximum and then gradually drops (sorting overhead grows as
	// N log N while scanning grows as N).
	dg := FittedDesign()
	var xs []float64
	for _, n := range []float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e11, 1e13, 1e15} {
		s, _ := Crossover(8, Dataset{N: n, TupleSize: 4}, HW1(), dg)
		xs = append(xs, s)
	}
	peak := 0
	for i, v := range xs {
		if v > xs[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == len(xs)-1 {
		t.Fatalf("no interior maximum in data-size sweep: %v", xs)
	}
	if xs[len(xs)-1] >= xs[peak]/2 {
		t.Fatalf("crossover should drop well below its peak at huge N: %v", xs)
	}
}

func TestSmallDataScanAlwaysWins(t *testing.T) {
	// Figures 9/10: below ~1e5 tuples at q=8+, the scan wins at every
	// selectivity — q tree traversals already cost more than streaming
	// the whole (tiny) column.
	if !ScanAlwaysWins(64, Dataset{N: 1e4, TupleSize: 4}, HW1(), FittedDesign()) {
		t.Fatal("scan should always win on 1e4 tuples at q=64")
	}
	if ScanAlwaysWins(1, Dataset{N: 1e9, TupleSize: 4}, HW1(), FittedDesign()) {
		t.Fatal("index must stay useful on 1e9 tuples at q=1")
	}
}

func TestCrossoverTotalScalesWithQ(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	s, _ := Crossover(16, d, HW1(), DefaultDesign())
	tot, _ := CrossoverTotal(16, d, HW1(), DefaultDesign())
	if !approxEqual(tot, 16*s, 1e-12) {
		t.Fatalf("CrossoverTotal = %v, want %v", tot, 16*s)
	}
}

func TestCrossoverCurveShape(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	qs := []int{1, 4, 16, 64, 256}
	curve := CrossoverCurve(qs, d, HW1(), FittedDesign())
	if len(curve) != len(qs) {
		t.Fatalf("curve length %d, want %d", len(curve), len(qs))
	}
	if curve[0] <= curve[len(curve)-1] {
		t.Fatalf("curve should slope down: %v", curve)
	}
}

func TestCrossoverIsBreakEven(t *testing.T) {
	// At the solved crossover the two paths must cost the same to within
	// the bisection tolerance; slightly below the index wins, slightly
	// above the scan wins.
	d := Dataset{N: 1e8, TupleSize: 4}
	for _, q := range []int{1, 32, 256} {
		s, ok := Crossover(q, d, HW1(), FittedDesign())
		if !ok {
			t.Fatalf("no crossover at q=%d", q)
		}
		at := APS(Params{Workload: Uniform(q, s), Dataset: d, Hardware: HW1(), Design: FittedDesign()})
		if !approxEqual(at, 1, 1e-6) {
			t.Fatalf("APS at crossover = %v, want 1", at)
		}
		below := APS(Params{Workload: Uniform(q, s/2), Dataset: d, Hardware: HW1(), Design: FittedDesign()})
		above := APS(Params{Workload: Uniform(q, math.Min(1, s*2)), Dataset: d, Hardware: HW1(), Design: FittedDesign()})
		if below >= 1 || above <= 1 {
			t.Fatalf("q=%d: APS(s/2)=%v APS(2s)=%v around crossover %v", q, below, above, s)
		}
	}
}

func TestHistoricalEpochsMatchTable2(t *testing.T) {
	// Table 2: the model-computed crossover per epoch must fall within a
	// small factor of the paper's value and preserve the historical trend
	// (disk-era crossovers falling with bandwidth; memory systems shifting
	// the balance back towards the index relative to the 2010 disk
	// column-store).
	epochs := HistoricalEpochs()
	got := make(map[string]float64, len(epochs))
	for _, e := range epochs {
		s, ok := Crossover(1, e.Dataset, e.Hardware, e.Design)
		if !ok {
			t.Fatalf("epoch %s: no crossover", e.Year)
		}
		got[e.Year] = s
		ratio := s / e.PaperCrossover
		if ratio < 0.15 || ratio > 6.5 {
			t.Fatalf("epoch %s: model crossover %.4f%% vs paper %.2f%% (off by %.1fx)",
				e.Year, s*100, e.PaperCrossover*100, math.Max(ratio, 1/ratio))
		}
	}
	if !(got["1980"] > got["1990"] && got["1990"] > got["2000"] && got["2000"] > got["2010"]) {
		t.Fatalf("disk-era crossover not monotonically falling: %v", got)
	}
	if got["2016"] <= got["2010"] {
		t.Fatalf("main-memory 2016 (%v) should favor the index more than the 2010 disk column-store (%v)",
			got["2016"], got["2010"])
	}
}

func TestSIMDSortFavorsIndex(t *testing.T) {
	// Figure 21 / Appendix D: W=4 SIMD-aware sorting moves the crossover
	// to higher selectivity.
	scalar := DefaultDesign()
	simd := DefaultDesign()
	simd.SIMDSortWidth = 4
	d := Dataset{N: 1e8, TupleSize: 4}
	for _, q := range []int{1, 16, 128} {
		a, _ := Crossover(q, d, HW1(), scalar)
		b, _ := Crossover(q, d, HW1(), simd)
		if b <= a {
			t.Fatalf("q=%d: SIMD-sort crossover %v not above scalar %v", q, b, a)
		}
	}
}

// Package model implements the analytical access-path cost model from
// "Access Path Selection in Main-Memory Optimized Data Systems: Should I
// Scan or Should I Probe?" (Kester, Athanassoulis, Idreos; SIGMOD 2017).
//
// The model estimates, in seconds, the cost of answering a batch of q
// concurrent select queries over one column (or column-group) using either
//
//   - a shared sequential scan (Equation 5 in the paper), or
//   - a concurrent secondary B+-tree index scan (Equation 13),
//
// and defines the access-path-selection ratio APS = ConcIndex/SharedScan
// (Equations 15/16/21). APS >= 1 means the scan should be used; APS < 1
// means the secondary index wins. Unlike the traditional fixed selectivity
// threshold, the break-even point depends on query concurrency q and the
// total selectivity S_tot of the batch.
//
// All equations are implemented exactly as printed, including the fitted
// variant with the result-writing factor alpha and the sublinear sorting
// correction fc(N) (Appendix C, Equation 25), the entropy bounds on the
// sorting cost (Appendix A), and the SIMD-aware sorting cost (Appendix D,
// Equation 26).
package model

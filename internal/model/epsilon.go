package model

import "math"

// This file holds the package's floating-point equality helpers. The
// fclint floatcmp analyzer forbids direct ==/!= on floats anywhere in
// this package: the APS decision boundary sits exactly at ratio 1.0 and
// the crossover bisection converges to it through long float64
// computations, so exact equality either never fires or fires on noise.
// These helpers make every tolerance explicit and reviewable.

// Eps is the absolute tolerance for treating a model quantity as zero.
// Model sentinels (an unset fitting constant, a no-crossover marker) are
// exact zeros, while genuine selectivities bottom out at 1e-12 (the
// bisection's lower bracket), so anything at or below Eps is a sentinel.
const Eps = 1e-12

// EqZero reports whether x is zero up to Eps.
func EqZero(x float64) bool { return math.Abs(x) <= Eps }

// ApproxEq reports whether a and b are equal up to Eps, absolutely for
// small magnitudes and relatively for large ones. Infinities are equal
// only to infinities of the same sign; NaN equals nothing.
func ApproxEq(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1))
	}
	d := math.Abs(a - b)
	return d <= Eps || d <= Eps*math.Max(math.Abs(a), math.Abs(b))
}

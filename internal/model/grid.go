package model

import "math"

// This file generates the APS heatmap grids behind Figures 4-10 and 21.
// Each grid cell holds the APS ratio at one (x, y) point; the figures'
// contour lines are level sets of that surface.

// Grid is a 2-D sweep of the APS ratio.
type Grid struct {
	// XLabel / YLabel name the swept parameters ("q", "selectivity", "N").
	XLabel, YLabel string
	// Xs and Ys hold the axis sample points.
	Xs, Ys []float64
	// Ratio[i][j] is APS at (Xs[j], Ys[i]).
	Ratio [][]float64
}

// logspace returns n points geometrically spaced over [lo, hi].
func logspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= step
	}
	out[n-1] = hi
	return out
}

// ConcurrencyGrid sweeps APS over query concurrency (x) and per-query
// selectivity (y) for a fixed dataset: the layout of Figures 4-7 and 21.
func ConcurrencyGrid(d Dataset, h Hardware, dg Design, maxQ int, selLo, selHi float64, nx, ny int) Grid {
	g := Grid{
		XLabel: "q",
		YLabel: "selectivity",
		Xs:     logspace(1, float64(maxQ), nx),
		Ys:     logspace(selLo, selHi, ny),
	}
	g.Ratio = make([][]float64, ny)
	for i, s := range g.Ys {
		row := make([]float64, nx)
		for j, qf := range g.Xs {
			q := int(math.Round(qf))
			if q < 1 {
				q = 1
			}
			row[j] = APS(Params{Workload: Uniform(q, s), Dataset: d, Hardware: h, Design: dg})
		}
		g.Ratio[i] = row
	}
	return g
}

// DataSizeGrid sweeps APS over relation size (x) and per-query selectivity
// (y) for a fixed concurrency level: the layout of Figures 8-10.
func DataSizeGrid(q int, ts float64, h Hardware, dg Design, nLo, nHi, selLo, selHi float64, nx, ny int) Grid {
	g := Grid{
		XLabel: "N",
		YLabel: "selectivity",
		Xs:     logspace(nLo, nHi, nx),
		Ys:     logspace(selLo, selHi, ny),
	}
	g.Ratio = make([][]float64, ny)
	for i, s := range g.Ys {
		row := make([]float64, nx)
		for j, n := range g.Xs {
			d := Dataset{N: n, TupleSize: ts}
			row[j] = APS(Params{Workload: Uniform(q, s), Dataset: d, Hardware: h, Design: dg})
		}
		g.Ratio[i] = row
	}
	return g
}

// ContourCrossings returns, for each x column of the grid, the y value at
// which the ratio first crosses the given level (linear interpolation in
// log-y), or NaN if it never does. Tracing level 1.0 recovers the
// break-even line drawn solid in the paper's figures.
func (g Grid) ContourCrossings(level float64) []float64 {
	out := make([]float64, len(g.Xs))
	for j := range g.Xs {
		out[j] = math.NaN()
		for i := 1; i < len(g.Ys); i++ {
			a, b := g.Ratio[i-1][j], g.Ratio[i][j]
			if (a-level)*(b-level) <= 0 && !ApproxEq(a, b) {
				t := (level - a) / (b - a)
				ly := math.Log(g.Ys[i-1]) + t*(math.Log(g.Ys[i])-math.Log(g.Ys[i-1]))
				out[j] = math.Exp(ly)
				break
			}
		}
	}
	return out
}

package model

import (
	"math"
	"testing"
)

func TestConcurrencyGridShape(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	g := ConcurrencyGrid(d, HW1(), DefaultDesign(), 512, 1e-5, 0.1, 24, 30)
	if g.XLabel != "q" || g.YLabel != "selectivity" {
		t.Fatalf("unexpected labels %q %q", g.XLabel, g.YLabel)
	}
	if len(g.Xs) != 24 || len(g.Ys) != 30 || len(g.Ratio) != 30 {
		t.Fatalf("grid dims wrong: %d x %d (%d rows)", len(g.Xs), len(g.Ys), len(g.Ratio))
	}
	if g.Xs[0] != 1 || g.Xs[len(g.Xs)-1] != 512 {
		t.Fatalf("x axis should span [1,512], got [%v,%v]", g.Xs[0], g.Xs[len(g.Xs)-1])
	}
	// Every cell finite and positive; each column monotone in selectivity.
	for j := range g.Xs {
		prev := -1.0
		for i := range g.Ys {
			v := g.Ratio[i][j]
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ratio[%d][%d] = %v", i, j, v)
			}
			if v < prev {
				t.Fatalf("column %d not monotone in selectivity", j)
			}
			prev = v
		}
	}
}

func TestDataSizeGridShape(t *testing.T) {
	g := DataSizeGrid(8, 4, HW1(), FittedDesign(), 1e4, 1e15, 1e-5, 0.1, 20, 20)
	if g.XLabel != "N" {
		t.Fatalf("unexpected x label %q", g.XLabel)
	}
	if len(g.Xs) != 20 || len(g.Ratio) != 20 {
		t.Fatalf("grid dims wrong")
	}
}

func TestContourMatchesCrossoverSolver(t *testing.T) {
	// The level-1 contour of the concurrency grid is the Figure 4 solid
	// line; it must agree with the bisection solver at each grid column.
	d := Dataset{N: 1e8, TupleSize: 4}
	dg := DefaultDesign()
	g := ConcurrencyGrid(d, HW1(), dg, 256, 1e-7, 0.5, 9, 400)
	line := g.ContourCrossings(1)
	for j, qf := range g.Xs {
		q := int(math.Round(qf))
		want, ok := Crossover(q, d, HW1(), dg)
		if !ok {
			continue
		}
		if math.IsNaN(line[j]) {
			t.Fatalf("contour missing at q=%d (solver says %v)", q, want)
		}
		if !approxEqual(line[j], want, 0.05) {
			t.Fatalf("contour at q=%d = %v, solver says %v", q, line[j], want)
		}
	}
}

func TestContourAbsentWhenNoCrossing(t *testing.T) {
	// A grid confined to selectivities far above the crossover has no
	// level-1 crossing anywhere.
	d := Dataset{N: 1e8, TupleSize: 4}
	g := ConcurrencyGrid(d, HW1(), DefaultDesign(), 16, 0.3, 1, 4, 10)
	for _, v := range g.ContourCrossings(1) {
		if !math.IsNaN(v) {
			t.Fatalf("unexpected contour crossing %v in scan-only region", v)
		}
	}
}

func TestLogspace(t *testing.T) {
	xs := logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range xs {
		if !approxEqual(xs[i], want[i], 1e-9) {
			t.Fatalf("logspace = %v, want %v", xs, want)
		}
	}
	if got := logspace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("logspace n=1 = %v", got)
	}
}

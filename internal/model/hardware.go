package model

// Hardware profiles used throughout the paper's analysis and evaluation.
//
// The pipelining factor fp absorbs SIMD lanes, superscalar issue and
// multi-core overlap in predicate evaluation; the paper fits it per
// machine. The default below makes the q*PE term overtake the data
// movement term at a few dozen concurrent queries on HW1, matching the
// regime shown in Figures 4 and 13.

const (
	gb = 1e9  // bytes per GB/s step
	mb = 1e6  // bytes per MB/s step
	ns = 1e-9 // seconds per nanosecond
	ms = 1e-3 // seconds per millisecond
)

// defaultPipelining is fp for the in-memory profiles: a 2 GHz core
// evaluating ~8 SIMD lanes with ~2 comparisons per cycle across the
// sharing threads amortizes each bound check to a few picoseconds.
const defaultPipelining = 0.002

// HW1 returns the paper's primary experimental server profile
// (Section 2.5): CM=180ns, CA=2ns, BWS=40GB/s, BWI=BWR=20GB/s, 2.0 GHz.
func HW1() Hardware {
	return Hardware{
		Name:            "HW1-primary",
		CacheAccess:     2 * ns,
		MemAccess:       180 * ns,
		ScanBandwidth:   40 * gb,
		ResultBandwidth: 20 * gb,
		LeafBandwidth:   20 * gb,
		ClockPeriod:     1.0 / 2.0e9,
		Pipelining:      defaultPipelining,
	}
}

// HW2 returns the paper's alternate configuration (Section 2.5):
// CM=100ns with BWS=160GB/s and BWI=BWR=80GB/s.
func HW2() Hardware {
	return Hardware{
		Name:            "HW2-alternate",
		CacheAccess:     2 * ns,
		MemAccess:       100 * ns,
		ScanBandwidth:   160 * gb,
		ResultBandwidth: 80 * gb,
		LeafBandwidth:   80 * gb,
		ClockPeriod:     1.0 / 2.0e9,
		Pipelining:      defaultPipelining,
	}
}

// EC2Profiles returns the four machines of Figure 16: the primary server
// plus the three Amazon EC2 dedicated instances, using the latency,
// bandwidth and clock figures printed under the bars.
func EC2Profiles() []Hardware {
	mk := func(name string, lat, bw, ghz float64) Hardware {
		return Hardware{
			Name:            name,
			CacheAccess:     2 * ns,
			MemAccess:       lat * ns,
			ScanBandwidth:   bw * gb,
			ResultBandwidth: bw / 2 * gb,
			LeafBandwidth:   bw / 2 * gb,
			ClockPeriod:     1.0 / (ghz * 1e9),
			Pipelining:      defaultPipelining,
		}
	}
	return []Hardware{
		mk("Primary", 180, 40, 2.0),
		mk("Alt-cpu(c4.8xlarge)", 90, 24, 2.9),
		mk("Alt-mem(r3.8xlarge)", 120, 80, 2.5),
		mk("Alt-gen(m4.4xlarge)", 100, 40, 2.4),
	}
}

// Epoch is one column of Table 2: a hardware generation plus the dataset
// and index design representative of its era.
type Epoch struct {
	Year     string
	Hardware Hardware
	Dataset  Dataset
	Design   Design
	// PaperCrossover is the crossover selectivity Table 2 reports for this
	// epoch, as a fraction (e.g. 0.124 for 12.4%).
	PaperCrossover float64
}

// HistoricalEpochs returns the seven columns of Table 2: four disk-based
// generations (1980-2010), the 2016 main-memory system, and the two
// projected future configurations F1 (high bandwidth) and F2 (low
// latency). Disk epochs map CM to the seek latency and the bandwidths to
// the disk transfer rate; CA stays a (then slower) memory access since
// sorting happens in memory in every era.
func HistoricalEpochs() []Epoch {
	disk := func(year string, seekMS, bwMBs, n, tupleSize float64, cross float64) Epoch {
		return Epoch{
			Year: year,
			Hardware: Hardware{
				Name:            "disk-" + year,
				CacheAccess:     200 * ns,
				MemAccess:       seekMS * ms,
				ScanBandwidth:   bwMBs * mb,
				ResultBandwidth: bwMBs * mb,
				LeafBandwidth:   bwMBs * mb,
				ClockPeriod:     1.0 / 0.1e9, // CPUs were never the disk era bottleneck
				Pipelining:      defaultPipelining,
			},
			Dataset:        Dataset{N: n, TupleSize: tupleSize},
			Design:         Design{ResultWidth: 4, Fanout: 250, AttrWidth: 4, OffsetWidth: 4},
			PaperCrossover: cross,
		}
	}
	mem := func(year string, latNS, bwGBs, ghz float64, cross float64) Epoch {
		return Epoch{
			Year: year,
			Hardware: Hardware{
				Name:            "mem-" + year,
				CacheAccess:     2 * ns,
				MemAccess:       latNS * ns,
				ScanBandwidth:   bwGBs * gb,
				ResultBandwidth: bwGBs / 2 * gb,
				LeafBandwidth:   bwGBs / 2 * gb,
				ClockPeriod:     1.0 / (ghz * 1e9),
				Pipelining:      defaultPipelining,
			},
			Dataset:        Dataset{N: 1e9, TupleSize: 4},
			Design:         Design{ResultWidth: 4, Fanout: 21, AttrWidth: 4, OffsetWidth: 4},
			PaperCrossover: cross,
		}
	}
	return []Epoch{
		disk("1980", 10, 40, 1e6, 200, 0.124),
		disk("1990", 8, 100, 1e7, 200, 0.062),
		disk("2000", 2, 500, 1e8, 200, 0.050),
		disk("2010", 2, 500, 1e9, 4, 0.001), // disk-based column-store: 4-byte tuples
		mem("2016", 180, 40, 2.0, 0.006),
		mem("F1", 100, 160, 4.0, 0.003),
		mem("F2", 20, 80, 4.0, 0.005),
	}
}

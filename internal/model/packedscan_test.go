package model

import "testing"

// packedParams is testParams over the 2-byte packed code layout with the
// packed design constants set.
func packedTestParams(q int, s, w, pa float64) Params {
	p := testParams(q, s)
	p.Dataset.TupleSize = PackedTupleBytes
	p.Design.ScanSIMDWidth = w
	p.Design.PackedAlpha = pa
	return p
}

// TestPredicateEvalPackedDividesByWidth: the packed kernel's predicate
// term is the scalar term divided by the effective SWAR width; width 0
// or 1 degrades to the scalar term.
func TestPredicateEvalPackedDividesByWidth(t *testing.T) {
	p := packedTestParams(8, 0.01, 4, 2)
	scalar := PredicateEval(p.Dataset, p.Hardware)
	packed := PredicateEvalPacked(p.Dataset, p.Hardware, p.Design)
	if !approxEqual(packed, scalar/4, 1e-12) {
		t.Fatalf("PredicateEvalPacked(W=4) = %v, want %v", packed, scalar/4)
	}
	p.Design.ScanSIMDWidth = 0
	if got := PredicateEvalPacked(p.Dataset, p.Hardware, p.Design); !approxEqual(got, scalar, 1e-12) {
		t.Fatalf("PredicateEvalPacked(W=0) = %v, want scalar %v", got, scalar)
	}
}

// TestSharedScanPackedCheaperThanScalarSharedScan: at equal tuple size
// and alpha, W-way predicate evaluation can only lower the predicted
// cost — the max() with the bandwidth floor keeps it from going below
// the data-scan time.
func TestSharedScanPackedCheaperThanScalarSharedScan(t *testing.T) {
	for _, q := range []int{1, 8, 64, 512} {
		for _, s := range []float64{1e-5, 1e-3, 0.1} {
			p := packedTestParams(q, s, 4, 0)
			packed := SharedScanPacked(p)
			scalar := SharedScan(p)
			if packed > scalar+1e-15 {
				t.Fatalf("q=%d s=%g: SharedScanPacked = %v > SharedScan = %v", q, s, packed, scalar)
			}
			ds := DataScanTime(p.Dataset, p.Hardware)
			if packed < ds {
				t.Fatalf("q=%d s=%g: SharedScanPacked = %v below the bandwidth floor %v", q, s, packed, ds)
			}
		}
	}
}

// TestSharedScanPackedAlphaFallback: a zero PackedAlpha inherits the
// shared-scan Alpha, so an unfitted design still prices result writing.
func TestSharedScanPackedAlphaFallback(t *testing.T) {
	p := packedTestParams(16, 0.05, 4, 0)
	p.Design.Alpha = 8
	viaFallback := SharedScanPacked(p)
	p.Design.PackedAlpha = 8
	viaExplicit := SharedScanPacked(p)
	if !approxEqual(viaFallback, viaExplicit, 1e-12) {
		t.Fatalf("PackedAlpha fallback: %v != explicit %v", viaFallback, viaExplicit)
	}
	// And a larger packed alpha strictly raises the cost at nonzero S_tot.
	p.Design.PackedAlpha = 16
	if higher := SharedScanPacked(p); higher <= viaExplicit {
		t.Fatalf("PackedAlpha=16 gives %v, want > %v", higher, viaExplicit)
	}
}

// TestValidateRejectsNegativePackedConstants: the new design knobs join
// the existing non-negativity validation.
func TestValidateRejectsNegativePackedConstants(t *testing.T) {
	d := DefaultDesign()
	d.ScanSIMDWidth = -1
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted ScanSIMDWidth < 0")
	}
	d = DefaultDesign()
	d.PackedAlpha = -0.5
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted PackedAlpha < 0")
	}
}

// TestFittedDesignCarriesPackedConstants: the stock fitted design must
// give the optimizer usable packed-scan constants (nonzero width within
// a 64-bit word, nonzero overlap factor) so relations with a compressed
// twin are costed by the kernel exec actually runs.
func TestFittedDesignCarriesPackedConstants(t *testing.T) {
	d := FittedDesign()
	if d.ScanSIMDWidth < 1 || d.ScanSIMDWidth > 64 {
		t.Fatalf("FittedDesign().ScanSIMDWidth = %v, want within [1, 64]", d.ScanSIMDWidth)
	}
	if d.PackedAlpha <= 0 {
		t.Fatalf("FittedDesign().PackedAlpha = %v, want > 0", d.PackedAlpha)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("FittedDesign invalid: %v", err)
	}
}

package model

import (
	"errors"
	"fmt"
	"math"
)

// Workload describes the batch of concurrent queries being costed
// (the q and s_i rows of Table 1 in the paper).
type Workload struct {
	// Selectivities holds the individual selectivity s_i of each of the q
	// queries in the batch, each in [0, 1]. len(Selectivities) == q.
	Selectivities []float64
}

// Uniform returns a workload of q queries that all have selectivity s.
// This is the minimum-entropy configuration of Appendix A, for which the
// sorting cost is lowest; MaxSC (used by the worst-case model) assumes the
// opposite extreme.
func Uniform(q int, s float64) Workload {
	sel := make([]float64, q)
	for i := range sel {
		sel[i] = s
	}
	return Workload{Selectivities: sel}
}

// Q returns the number of concurrent queries in the batch.
func (w Workload) Q() int { return len(w.Selectivities) }

// WithEstimateError returns the workload as a misestimating optimizer
// would see it: every selectivity scaled by factor and clamped to [0, 1].
// factor > 1 models overestimation, factor < 1 underestimation (the
// dangerous direction for index choices: a 4x underestimate is factor
// 0.25). factor <= 0 or exactly 1 returns the workload unchanged. This is
// the controlled-error knob of the estimate-robustness ablation
// ("Analyzing Query Optimizer Performance in the Presence and Absence of
// Cardinality Estimates"): the optimizer costs the perturbed workload
// while execution answers the true predicates.
func (w Workload) WithEstimateError(factor float64) Workload {
	if factor <= 0 || ApproxEq(factor, 1) {
		return w
	}
	sel := make([]float64, len(w.Selectivities))
	for i, s := range w.Selectivities {
		v := s * factor
		if v > 1 {
			v = 1
		}
		sel[i] = v
	}
	return Workload{Selectivities: sel}
}

// TotalSelectivity returns S_tot, the sum of the individual selectivities.
// It can exceed 1; three queries of 40% selectivity have S_tot = 1.2.
func (w Workload) TotalSelectivity() float64 {
	var t float64
	for _, s := range w.Selectivities {
		t += s
	}
	return t
}

// Validate reports an error if the workload is empty or a selectivity is
// outside [0, 1].
func (w Workload) Validate() error {
	if len(w.Selectivities) == 0 {
		return errors.New("model: workload has no queries")
	}
	for i, s := range w.Selectivities {
		if s < 0 || s > 1 || math.IsNaN(s) {
			return fmt.Errorf("model: query %d has invalid selectivity %v", i, s)
		}
	}
	return nil
}

// Dataset describes the relation being accessed (the N and ts rows of
// Table 1).
type Dataset struct {
	// N is the number of tuples in the column.
	N float64
	// TupleSize is ts, the width in bytes of each tuple the scan must read:
	// 4 for a plain uint32 column, 2 under dictionary compression, k*4 for a
	// k-column group, ~200 for a disk-era row store.
	TupleSize float64
}

// Validate reports an error if the dataset is degenerate.
func (d Dataset) Validate() error {
	if d.N < 1 {
		return fmt.Errorf("model: dataset has N=%v tuples", d.N)
	}
	if d.TupleSize <= 0 {
		return fmt.Errorf("model: dataset has tuple size %v", d.TupleSize)
	}
	return nil
}

// Hardware captures the machine characteristics the model depends on
// (the CA..fp rows of Table 1). Latencies are in seconds, bandwidths in
// bytes per second.
type Hardware struct {
	Name string

	// CacheAccess is CA, the latency of an L1 cache access.
	CacheAccess float64
	// MemAccess is CM, the latency of a last-level-cache miss (a main-memory
	// access on memory-resident systems; a disk access on disk-era ones).
	MemAccess float64
	// ScanBandwidth is BWS, the sequential read bandwidth seen by scans.
	ScanBandwidth float64
	// ResultBandwidth is BWR, the bandwidth available for writing results.
	ResultBandwidth float64
	// LeafBandwidth is BWI, the bandwidth for traversing index leaves.
	LeafBandwidth float64
	// ClockPeriod is p, the inverse of the CPU frequency, in seconds.
	ClockPeriod float64
	// Pipelining is fp, the constant factor accounting for instruction
	// pipelining, SIMD lanes and multi-core overlap in predicate
	// evaluation. Smaller is faster.
	Pipelining float64
}

// Validate reports an error if any hardware rate is non-positive.
func (h Hardware) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"CA", h.CacheAccess}, {"CM", h.MemAccess},
		{"BWS", h.ScanBandwidth}, {"BWR", h.ResultBandwidth},
		{"BWI", h.LeafBandwidth}, {"p", h.ClockPeriod},
	}
	for _, c := range checks {
		if c.v <= 0 || math.IsNaN(c.v) {
			return fmt.Errorf("model: hardware %q has invalid %s=%v", h.Name, c.name, c.v)
		}
	}
	if h.Pipelining < 0 {
		return fmt.Errorf("model: hardware %q has negative fp=%v", h.Name, h.Pipelining)
	}
	return nil
}

// Design captures the scan and index design parameters (the rw, b, aw, ow
// rows of Table 1) plus the Appendix C fitting constants.
type Design struct {
	// ResultWidth is rw, bytes per output rowID.
	ResultWidth float64
	// Fanout is b, the B+-tree branching factor.
	Fanout float64
	// AttrWidth is aw, bytes of the indexed attribute held in the leaves.
	AttrWidth float64
	// OffsetWidth is ow, bytes of each rowID held in the leaves.
	OffsetWidth float64

	// Alpha is the fitted result-writing overlap factor of Equation 22.
	// The paper's fit finds alpha = 8 on its primary server. Zero means
	// "unfitted": use the printed Equations 5/13 with alpha = 1, fc = 1.
	Alpha float64
	// SortFitScale (f_s) and SortFitExp (beta) define the sublinear sorting
	// correction fc(N) = f_s * N^(beta-1)/beta of Equation 24.
	SortFitScale float64
	SortFitExp   float64

	// SIMDSortWidth is W in Appendix D Equation 26. Zero disables the
	// SIMD-aware sorting term and uses the scalar Equation 14.
	SIMDSortWidth float64

	// ScanSIMDWidth is the scan-side W of the Appendix D treatment: the
	// number of codes the packed SWAR kernel evaluates per operation,
	// dividing the predicate-evaluation term of SharedScanPacked the way
	// Equation 26 divides the sort term. Nominally PackedScanWidth (four
	// 16-bit lanes per 64-bit word); the Appendix C harness refits the
	// effective value, which lands below the nominal lane count because
	// flag compaction and materialization are not free. Zero or one
	// disables the discount.
	ScanSIMDWidth float64
	// PackedAlpha is the fitted result-writing overlap factor of the
	// packed kernel's late materialization (its Equation 22 alpha): the
	// bitmap extraction writes only matches, so its overlap constant is
	// fitted separately from the predicated kernel's. Zero falls back to
	// Alpha.
	PackedAlpha float64
}

// PackedScanWidth is the nominal lane count of the packed SWAR scan
// kernel: four 16-bit codes per 64-bit word.
const PackedScanWidth = 4

// PackedTupleBytes is ts under dictionary compression (16-bit codes).
const PackedTupleBytes = 2

// DefaultDesign returns the paper's design point: 4-byte values and rowIDs
// and the memory-optimized fanout b=21, with the unfitted (printed) model.
func DefaultDesign() Design {
	return Design{ResultWidth: 4, Fanout: 21, AttrWidth: 4, OffsetWidth: 4}
}

// FittedDesign returns DefaultDesign augmented with the Appendix C fitting
// constants the paper reports for its primary server (alpha = 8,
// beta = 0.38, f_s = 6e-6), plus the packed-scan constants re-measured
// with the internal/fit harness after the SWAR kernels landed (see
// DESIGN.md §11 and the committed BENCH document): the effective scan
// width fits at 3.6, below the nominal four lanes, because flag
// compaction and late materialization are not free; the packed result-
// write factor fits at the ~0 boundary (bitmap-first materialization
// hides result writing under the bandwidth floor), and the stock design
// keeps the conservative floor of 1 — each result written once, never
// free — rather than the degenerate measured value.
func FittedDesign() Design {
	d := DefaultDesign()
	d.Alpha = 8
	d.SortFitScale = 6e-6
	d.SortFitExp = 0.38
	d.ScanSIMDWidth = 3.6
	d.PackedAlpha = 1
	return d
}

// Validate reports an error if a design parameter is out of range.
func (d Design) Validate() error {
	if d.ResultWidth <= 0 {
		return fmt.Errorf("model: invalid result width %v", d.ResultWidth)
	}
	if d.Fanout < 2 {
		return fmt.Errorf("model: invalid fanout %v", d.Fanout)
	}
	if d.AttrWidth <= 0 || d.OffsetWidth <= 0 {
		return fmt.Errorf("model: invalid leaf entry widths aw=%v ow=%v", d.AttrWidth, d.OffsetWidth)
	}
	if d.Alpha < 0 || d.SortFitScale < 0 {
		return fmt.Errorf("model: invalid fitting constants alpha=%v fs=%v", d.Alpha, d.SortFitScale)
	}
	if d.ScanSIMDWidth < 0 || d.PackedAlpha < 0 {
		return fmt.Errorf("model: invalid packed-scan constants W=%v packed alpha=%v", d.ScanSIMDWidth, d.PackedAlpha)
	}
	return nil
}

// alphaOrOne returns the fitted alpha, or 1 when the design is unfitted.
func (d Design) alphaOrOne() float64 {
	if EqZero(d.Alpha) {
		return 1
	}
	return d.Alpha
}

// scanWidthOrOne returns the fitted scan-side W, or 1 when the design
// predates the packed kernels (no discount).
func (d Design) scanWidthOrOne() float64 {
	if d.ScanSIMDWidth > 1 {
		return d.ScanSIMDWidth
	}
	return 1
}

// packedAlphaOrAlpha returns the packed kernel's fitted alpha, falling
// back to the shared-scan alpha when the packed fit has not run.
func (d Design) packedAlphaOrAlpha() float64 {
	if EqZero(d.PackedAlpha) {
		return d.alphaOrOne()
	}
	return d.PackedAlpha
}

// sortCorrection returns fc(N) of Equation 24, or 1 when unfitted.
//
// Equation 24 as printed reads fc = f_s * N^(beta-1)/beta, but evaluated
// literally that decays towards zero for large N, contradicting the
// paper's own description of fc as "sublinear but more expensive than
// logarithmic with respect to N". We read it as the power-law integral
// f_s * N^beta / beta, which matches that description and reproduces the
// reported behaviour (a correction well below 1 that discounts the
// pessimistic worst-case sorting bound, growing slowly with N).
func (d Design) sortCorrection(n float64) float64 {
	if EqZero(d.SortFitScale) || EqZero(d.SortFitExp) {
		return 1
	}
	return d.SortFitScale * math.Pow(n, d.SortFitExp) / d.SortFitExp
}

// Params bundles everything the model needs for one costing decision.
type Params struct {
	Workload Workload
	Dataset  Dataset
	Hardware Hardware
	Design   Design
}

// Validate reports the first invalid component, if any.
func (p Params) Validate() error {
	if err := p.Workload.Validate(); err != nil {
		return err
	}
	if err := p.Dataset.Validate(); err != nil {
		return err
	}
	if err := p.Hardware.Validate(); err != nil {
		return err
	}
	return p.Design.Validate()
}

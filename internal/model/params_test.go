package model

import (
	"math"
	"strings"
	"testing"
)

func TestWorkloadValidate(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		ok   bool
	}{
		{"empty", Workload{}, false},
		{"negative", Workload{Selectivities: []float64{-0.1}}, false},
		{"above one", Workload{Selectivities: []float64{1.1}}, false},
		{"nan", Workload{Selectivities: []float64{math.NaN()}}, false},
		{"ok", Uniform(3, 0.4), true},
		{"zero ok", Workload{Selectivities: []float64{0}}, true},
		{"full ok", Workload{Selectivities: []float64{1}}, true},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestTotalSelectivityExceedsOne(t *testing.T) {
	// Three queries of 40% each: S_tot = 1.2 (the paper's own example).
	w := Uniform(3, 0.4)
	if got := w.TotalSelectivity(); !approxEqual(got, 1.2, 1e-12) {
		t.Fatalf("TotalSelectivity = %v, want 1.2", got)
	}
	if w.Q() != 3 {
		t.Fatalf("Q = %d, want 3", w.Q())
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := (Dataset{N: 0, TupleSize: 4}).Validate(); err == nil {
		t.Fatal("N=0 should fail")
	}
	if err := (Dataset{N: 100, TupleSize: 0}).Validate(); err == nil {
		t.Fatal("ts=0 should fail")
	}
	if err := (Dataset{N: 100, TupleSize: 4}).Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestHardwareValidate(t *testing.T) {
	h := HW1()
	if err := h.Validate(); err != nil {
		t.Fatalf("HW1 invalid: %v", err)
	}
	h.ScanBandwidth = 0
	err := h.Validate()
	if err == nil || !strings.Contains(err.Error(), "BWS") {
		t.Fatalf("zero bandwidth not caught: %v", err)
	}
	h2 := HW2()
	h2.Pipelining = -1
	if h2.Validate() == nil {
		t.Fatal("negative fp not caught")
	}
}

func TestDesignValidate(t *testing.T) {
	if err := DefaultDesign().Validate(); err != nil {
		t.Fatalf("default design invalid: %v", err)
	}
	if err := FittedDesign().Validate(); err != nil {
		t.Fatalf("fitted design invalid: %v", err)
	}
	bad := DefaultDesign()
	bad.Fanout = 1
	if bad.Validate() == nil {
		t.Fatal("fanout 1 not caught")
	}
}

func TestParamsValidate(t *testing.T) {
	p := testParams(4, 0.01)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	p.Workload = Workload{}
	if p.Validate() == nil {
		t.Fatal("empty workload not caught")
	}
}

func TestEC2ProfilesAllValid(t *testing.T) {
	profiles := EC2Profiles()
	if len(profiles) != 4 {
		t.Fatalf("want 4 Figure 16 machines, got %d", len(profiles))
	}
	for _, h := range profiles {
		if err := h.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", h.Name, err)
		}
	}
}

func TestHistoricalEpochsValid(t *testing.T) {
	epochs := HistoricalEpochs()
	if len(epochs) != 7 {
		t.Fatalf("Table 2 has 7 columns, got %d", len(epochs))
	}
	for _, e := range epochs {
		if err := e.Hardware.Validate(); err != nil {
			t.Errorf("epoch %s hardware invalid: %v", e.Year, err)
		}
		if err := e.Dataset.Validate(); err != nil {
			t.Errorf("epoch %s dataset invalid: %v", e.Year, err)
		}
		if err := e.Design.Validate(); err != nil {
			t.Errorf("epoch %s design invalid: %v", e.Year, err)
		}
		if e.PaperCrossover <= 0 || e.PaperCrossover > 0.2 {
			t.Errorf("epoch %s paper crossover %v out of range", e.Year, e.PaperCrossover)
		}
	}
}

func TestSortCorrectionBehaviour(t *testing.T) {
	// fc(N) must be well below 1 at experiment scale (it discounts the
	// pessimistic worst-case sort bound) and grow sublinearly with N.
	dg := FittedDesign()
	f8 := dg.sortCorrection(1e8)
	f9 := dg.sortCorrection(1e9)
	if f8 <= 0 || f8 >= 1 {
		t.Fatalf("fc(1e8) = %v, want in (0,1)", f8)
	}
	if f9 <= f8 {
		t.Fatalf("fc must grow with N: fc(1e9)=%v <= fc(1e8)=%v", f9, f8)
	}
	if f9/f8 >= 10 {
		t.Fatalf("fc must be sublinear: fc(1e9)/fc(1e8) = %v", f9/f8)
	}
	if got := DefaultDesign().sortCorrection(1e8); got != 1 {
		t.Fatalf("unfitted design fc = %v, want 1", got)
	}
}

package model

import "math"

// This file quantifies the Section 3 "Error Propagation" discussion: the
// only estimated input to the APS decision is selectivity (concurrency
// and hardware are exact), so the decision's robustness is the factor by
// which the selectivity estimate may be wrong before the choice flips.

// ErrorMargin returns the multiplicative selectivity-error factor m >= 1
// such that scaling every estimated selectivity by m (if the scan was
// chosen) or by 1/m (if the index was chosen) first flips the decision.
// A large margin means the decision is robust to estimation error; a
// margin near 1 means the batch sits at the break-even point, where
// either choice costs about the same anyway (Figure 4's contour bands).
// Returns +Inf when no scaling within [1e-9, 1e9] flips the decision.
func ErrorMargin(p Params) float64 {
	base := Choose(p)
	flipped := func(m float64) bool {
		scaled := p
		sel := make([]float64, len(p.Workload.Selectivities))
		for i, s := range p.Workload.Selectivities {
			v := s * m
			if v > 1 {
				v = 1
			}
			sel[i] = v
		}
		scaled.Workload = Workload{Selectivities: sel}
		return Choose(scaled) != base
	}
	// Index chosen: underestimation is the danger, scale up; scan chosen:
	// overestimation is the danger, scale down.
	dir := 2.0
	if base == PathScan {
		dir = 0.5
	}
	m := 1.0
	for i := 0; i < 64; i++ {
		m *= dir
		if m > 1e9 || m < 1e-9 {
			return math.Inf(1)
		}
		if flipped(m) {
			// Refine with bisection between the last safe and first
			// flipped factor.
			lo, hi := m/dir, m
			for j := 0; j < 40; j++ {
				mid := math.Sqrt(lo * hi)
				if flipped(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			margin := math.Sqrt(lo * hi)
			if margin < 1 {
				margin = 1 / margin
			}
			return margin
		}
	}
	return math.Inf(1)
}

// WrongChoicePenalty returns the slowdown suffered if the optimizer had
// picked the other path for this batch: cost(other)/cost(chosen). Near
// the break-even point it approaches 1 (mistakes are cheap there —
// exactly why estimation error is tolerable near the boundary).
func WrongChoicePenalty(p Params) float64 {
	scanCost := SharedScan(p)
	idxCost := ConcIndex(p)
	if Choose(p) == PathScan {
		return idxCost / scanCost
	}
	return scanCost / idxCost
}

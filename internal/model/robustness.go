package model

import "math"

// This file quantifies the Section 3 "Error Propagation" discussion: the
// only estimated input to the APS decision is selectivity (concurrency
// and hardware are exact), so the decision's robustness is the factor by
// which the selectivity estimate may be wrong before the choice flips.

// ErrorMargin returns the multiplicative selectivity-error factor m >= 1
// such that scaling every estimated selectivity by m (if the scan was
// chosen) or by 1/m (if the index was chosen) first flips the decision.
// A large margin means the decision is robust to estimation error; a
// margin near 1 means the batch sits at the break-even point, where
// either choice costs about the same anyway (Figure 4's contour bands).
// Returns +Inf when no scaling within [1e-9, 1e9] flips the decision.
func ErrorMargin(p Params) float64 {
	base := Choose(p)
	flipped := func(m float64) bool {
		scaled := p
		sel := make([]float64, len(p.Workload.Selectivities))
		for i, s := range p.Workload.Selectivities {
			v := s * m
			if v > 1 {
				v = 1
			}
			sel[i] = v
		}
		scaled.Workload = Workload{Selectivities: sel}
		return Choose(scaled) != base
	}
	// Index chosen: underestimation is the danger, scale up; scan chosen:
	// overestimation is the danger, scale down.
	dir := 2.0
	if base == PathScan {
		dir = 0.5
	}
	m := 1.0
	for i := 0; i < 64; i++ {
		m *= dir
		if m > 1e9 || m < 1e-9 {
			return math.Inf(1)
		}
		if flipped(m) {
			// Refine with bisection between the last safe and first
			// flipped factor.
			lo, hi := m/dir, m
			for j := 0; j < 40; j++ {
				mid := math.Sqrt(lo * hi)
				if flipped(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			margin := math.Sqrt(lo * hi)
			if margin < 1 {
				margin = 1 / margin
			}
			return margin
		}
	}
	return math.Inf(1)
}

// WrongChoicePenalty returns the slowdown suffered if the optimizer had
// picked the other path for this batch: cost(other)/cost(chosen). Near
// the break-even point it approaches 1 (mistakes are cheap there —
// exactly why estimation error is tolerable near the boundary).
func WrongChoicePenalty(p Params) float64 {
	scanCost := SharedScan(p)
	idxCost := ConcIndex(p)
	if Choose(p) == PathScan {
		return idxCost / scanCost
	}
	return scanCost / idxCost
}

// MinimaxRegret picks between scan and index when the selectivity
// estimates themselves are suspect: the true selectivities may be off by
// up to a multiplicative factor errFactor in either direction. Instead of
// trusting the point estimate (which ErrorMargin just said is too close
// to the flip to trust), each path is judged by its worst-case regret —
// the extra seconds paid over the best path — across the scenarios where
// the estimate is right, uniformly errFactor too low, or errFactor too
// high. The scan's regret is bounded (its cost barely depends on
// selectivity), while the index's regret explodes when the estimate was
// low, which is exactly the asymmetry the robust decision should weigh.
// Returns the regret-minimizing path and its worst-case regret in
// seconds. errFactor <= 1 degenerates to the plain point decision.
func MinimaxRegret(p Params, errFactor float64) (Path, float64) {
	if errFactor <= 1 {
		return Choose(p), 0
	}
	worstScan, worstIndex := 0.0, 0.0
	for _, m := range [3]float64{1 / errFactor, 1, errFactor} {
		sc := p
		sc.Workload = p.Workload.WithEstimateError(m)
		scanCost := SharedScan(sc)
		idxCost := ConcIndex(sc)
		best := math.Min(scanCost, idxCost)
		if r := scanCost - best; r > worstScan {
			worstScan = r
		}
		if r := idxCost - best; r > worstIndex {
			worstIndex = r
		}
	}
	if worstIndex < worstScan {
		return PathIndex, worstIndex
	}
	return PathScan, worstScan
}

package model

import (
	"math"
	"testing"
)

func TestErrorMarginLargeAwayFromBoundary(t *testing.T) {
	// A point get is deep in index territory: the estimate must be off by
	// orders of magnitude to flip the decision.
	p := testParams(1, 1e-7)
	m := ErrorMargin(p)
	if m < 100 {
		t.Fatalf("point-get margin = %v, want a large factor", m)
	}
	// A 30% query is deep in scan territory.
	p2 := testParams(1, 0.3)
	if m2 := ErrorMargin(p2); m2 < 10 {
		t.Fatalf("wide-query margin = %v, want a large factor", m2)
	}
}

func TestErrorMarginTightAtBoundary(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(4, d, HW1(), DefaultDesign())
	if !ok {
		t.Fatal("no crossover")
	}
	// Just off the break-even point: a small estimation error flips it.
	p := Params{Workload: Uniform(4, s*1.05), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	m := ErrorMargin(p)
	if m > 1.3 {
		t.Fatalf("boundary margin = %v, want close to 1", m)
	}
	if m < 1 {
		t.Fatalf("margin below 1: %v", m)
	}
}

func TestWrongChoicePenalty(t *testing.T) {
	// Penalties are >= 1 and shrink towards 1 near the boundary.
	deep := WrongChoicePenalty(testParams(1, 1e-6))
	if deep < 2 {
		t.Fatalf("deep-territory penalty = %v, want substantial", deep)
	}
	d := Dataset{N: 1e8, TupleSize: 4}
	s, _ := Crossover(4, d, HW1(), DefaultDesign())
	near := WrongChoicePenalty(Params{
		Workload: Uniform(4, s*1.01), Dataset: d, Hardware: HW1(), Design: DefaultDesign()})
	if near < 1 || near > 1.2 {
		t.Fatalf("boundary penalty = %v, want ~1", near)
	}
	if near >= deep {
		t.Fatal("penalty should grow away from the boundary")
	}
}

func TestErrorMarginConsistentWithPenalty(t *testing.T) {
	// The two views agree qualitatively: tight margins imply cheap
	// mistakes (the paper's error-propagation argument).
	d := Dataset{N: 1e8, TupleSize: 4}
	s, _ := Crossover(8, d, HW1(), DefaultDesign())
	boundary := Params{Workload: Uniform(8, s), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	deep := testParams(8, 1e-6)
	if ErrorMargin(boundary) > ErrorMargin(deep) {
		t.Fatal("boundary margin should be tighter than deep-territory margin")
	}
	if WrongChoicePenalty(boundary) > WrongChoicePenalty(deep) {
		t.Fatal("boundary penalty should be smaller than deep-territory penalty")
	}
}

func TestErrorMarginHandlesExtremes(t *testing.T) {
	// Full-selectivity scan decisions may be unflippable: margin is +Inf.
	p := testParams(600, 1)
	m := ErrorMargin(p)
	if m < 1 && !math.IsInf(m, 1) {
		t.Fatalf("margin = %v", m)
	}
}

package model

import (
	"math"
	"testing"
)

func TestErrorMarginLargeAwayFromBoundary(t *testing.T) {
	// A point get is deep in index territory: the estimate must be off by
	// orders of magnitude to flip the decision.
	p := testParams(1, 1e-7)
	m := ErrorMargin(p)
	if m < 100 {
		t.Fatalf("point-get margin = %v, want a large factor", m)
	}
	// A 30% query is deep in scan territory.
	p2 := testParams(1, 0.3)
	if m2 := ErrorMargin(p2); m2 < 10 {
		t.Fatalf("wide-query margin = %v, want a large factor", m2)
	}
}

func TestErrorMarginTightAtBoundary(t *testing.T) {
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(4, d, HW1(), DefaultDesign())
	if !ok {
		t.Fatal("no crossover")
	}
	// Just off the break-even point: a small estimation error flips it.
	p := Params{Workload: Uniform(4, s*1.05), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	m := ErrorMargin(p)
	if m > 1.3 {
		t.Fatalf("boundary margin = %v, want close to 1", m)
	}
	if m < 1 {
		t.Fatalf("margin below 1: %v", m)
	}
}

func TestWrongChoicePenalty(t *testing.T) {
	// Penalties are >= 1 and shrink towards 1 near the boundary.
	deep := WrongChoicePenalty(testParams(1, 1e-6))
	if deep < 2 {
		t.Fatalf("deep-territory penalty = %v, want substantial", deep)
	}
	d := Dataset{N: 1e8, TupleSize: 4}
	s, _ := Crossover(4, d, HW1(), DefaultDesign())
	near := WrongChoicePenalty(Params{
		Workload: Uniform(4, s*1.01), Dataset: d, Hardware: HW1(), Design: DefaultDesign()})
	if near < 1 || near > 1.2 {
		t.Fatalf("boundary penalty = %v, want ~1", near)
	}
	if near >= deep {
		t.Fatal("penalty should grow away from the boundary")
	}
}

func TestErrorMarginConsistentWithPenalty(t *testing.T) {
	// The two views agree qualitatively: tight margins imply cheap
	// mistakes (the paper's error-propagation argument).
	d := Dataset{N: 1e8, TupleSize: 4}
	s, _ := Crossover(8, d, HW1(), DefaultDesign())
	boundary := Params{Workload: Uniform(8, s), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	deep := testParams(8, 1e-6)
	if ErrorMargin(boundary) > ErrorMargin(deep) {
		t.Fatal("boundary margin should be tighter than deep-territory margin")
	}
	if WrongChoicePenalty(boundary) > WrongChoicePenalty(deep) {
		t.Fatal("boundary penalty should be smaller than deep-territory penalty")
	}
}

func TestErrorMarginHandlesExtremes(t *testing.T) {
	// Full-selectivity scan decisions may be unflippable: margin is +Inf.
	p := testParams(600, 1)
	m := ErrorMargin(p)
	if m < 1 && !math.IsInf(m, 1) {
		t.Fatalf("margin = %v", m)
	}
}

func TestErrorMarginUnflippableIsInf(t *testing.T) {
	// An estimate nine-plus orders of magnitude from the break-even point
	// exhausts the [1e-9, 1e9] search range before flipping: the margin
	// must report +Inf, not a garbage finite factor. (Histograms really do
	// produce such estimates for point gets on huge domains.)
	p := testParams(1, 1e-14)
	if Choose(p) != PathIndex {
		t.Fatal("fixture is supposed to pick the index")
	}
	if m := ErrorMargin(p); !math.IsInf(m, 1) {
		t.Fatalf("1e-14 point-get margin = %v, want +Inf", m)
	}
}

func TestErrorMarginZeroSelectivityBatch(t *testing.T) {
	// Zero-selectivity estimates are a fixed point of multiplicative
	// scaling (0 * m == 0): no error factor changes the workload, so the
	// decision can never flip and the margin must be +Inf rather than
	// looping or returning a bogus finite factor.
	p := testParams(8, 0)
	if m := ErrorMargin(p); !math.IsInf(m, 1) {
		t.Fatalf("zero-selectivity margin = %v, want +Inf", m)
	}
}

func TestWrongChoicePenaltyZeroSelectivity(t *testing.T) {
	// With all-zero selectivities both costs are finite (data scan vs
	// tree traversals) and the penalty is well-defined and >= 1.
	p := testParams(8, 0)
	got := WrongChoicePenalty(p)
	if math.IsNaN(got) || got < 1 {
		t.Fatalf("zero-selectivity penalty = %v, want finite >= 1", got)
	}
}

func TestWrongChoicePenaltyNearBreakEven(t *testing.T) {
	// Exactly at the crossover the two paths cost the same: the penalty
	// collapses to ~1 (mistakes are free at the boundary).
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(4, d, HW1(), DefaultDesign())
	if !ok {
		t.Fatal("no crossover")
	}
	p := Params{Workload: Uniform(4, s), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	if got := WrongChoicePenalty(p); got < 1-1e-6 || got > 1.05 {
		t.Fatalf("break-even penalty = %v, want ~1", got)
	}
}

func TestWithEstimateError(t *testing.T) {
	w := Workload{Selectivities: []float64{0.1, 0.4, 0}}
	over := w.WithEstimateError(4)
	want := []float64{0.4, 1, 0} // 0.4*4 clamps to 1, zero stays zero
	for i, s := range over.Selectivities {
		if !ApproxEq(s, want[i]) {
			t.Fatalf("overestimate sel[%d] = %v, want %v", i, s, want[i])
		}
	}
	under := w.WithEstimateError(0.25)
	if !ApproxEq(under.Selectivities[0], 0.025) {
		t.Fatalf("underestimate sel[0] = %v, want 0.025", under.Selectivities[0])
	}
	// The identity and disabled knobs return the workload unchanged.
	if got := w.WithEstimateError(1); &got.Selectivities[0] != &w.Selectivities[0] {
		t.Fatal("factor 1 should not copy the workload")
	}
	if got := w.WithEstimateError(0); &got.Selectivities[0] != &w.Selectivities[0] {
		t.Fatal("factor 0 should disable the knob")
	}
}

func TestMinimaxRegretPrefersScanUnderUncertainty(t *testing.T) {
	// The point estimate sits just on the index side of the 4-query
	// break-even, but a 4x underestimate would make the index
	// catastrophic while the scan's cost barely moves. The minimax rule
	// must hedge to the scan even though the point decision says index.
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(4, d, HW1(), DefaultDesign())
	if !ok {
		t.Fatal("no crossover")
	}
	p := Params{Workload: Uniform(4, s*0.8), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	if Choose(p) != PathIndex {
		t.Fatal("fixture is supposed to sit on the index side of the boundary")
	}
	path, regret := MinimaxRegret(p, 4)
	if path != PathScan {
		t.Fatalf("minimax chose %v, want scan hedge", path)
	}
	if regret < 0 {
		t.Fatalf("negative worst-case regret %v", regret)
	}
}

func TestMinimaxRegretKeepsConfidentChoices(t *testing.T) {
	// Deep in either territory the plain decision survives the hedge.
	deep := testParams(1, 1e-7) // point get: index by a mile
	if path, _ := MinimaxRegret(deep, 4); path != PathIndex {
		t.Fatalf("deep-index minimax chose %v", path)
	}
	wide := testParams(64, 0.2) // wide batch: scan by a mile
	if path, _ := MinimaxRegret(wide, 4); path != PathScan {
		t.Fatalf("deep-scan minimax chose %v", path)
	}
	// errFactor <= 1 degenerates to the point decision with zero regret.
	path, regret := MinimaxRegret(deep, 1)
	if path != Choose(deep) || !EqZero(regret) {
		t.Fatalf("degenerate minimax = (%v, %v)", path, regret)
	}
}

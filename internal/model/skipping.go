package model

import "math"

// This file models lightweight data skipping (Appendix E): zonemaps let a
// scan avoid streaming zones no query in the batch needs, which the model
// captures "by simply reducing the number of values in the relation by
// the expected number of zones skipped". Skipping helps only the scan
// side — the index never read the cold zones anyway — and its benefit
// decays with concurrency because a zone must be unneeded by *every*
// query in the batch to be skipped.

// SharedScanWithSkipping returns the Equation 5 cost with the data
// movement and predicate evaluation reduced by the skipped fraction of
// the relation. Result writing still depends on the qualifying tuples
// (they all live in unskipped zones).
func SharedScanWithSkipping(p Params, skipFraction float64) float64 {
	skip := math.Min(math.Max(skipFraction, 0), 1)
	q := float64(p.Workload.Q())
	stot := p.Workload.TotalSelectivity()
	eff := p.Dataset
	eff.N = p.Dataset.N * (1 - skip)
	return math.Max(DataScanTime(eff, p.Hardware), q*PredicateEval(eff, p.Hardware)) +
		p.Design.alphaOrOne()*stot*ResultWriteTime(p.Dataset, p.Hardware, p.Design)
}

// APSWithSkipping is the access path selection ratio when the scan can
// skip the given fraction of zones: ConcIndex over the skip-aware shared
// scan. With skipFraction 0 it equals APS.
func APSWithSkipping(p Params, skipFraction float64) float64 {
	ss := SharedScanWithSkipping(p, skipFraction)
	if EqZero(ss) {
		return math.Inf(1)
	}
	return ConcIndex(p) / ss
}

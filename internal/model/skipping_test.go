package model

import "testing"

func TestSkippingZeroMatchesSharedScan(t *testing.T) {
	p := testParams(8, 0.003)
	if got, want := SharedScanWithSkipping(p, 0), SharedScan(p); !approxEqual(got, want, 1e-12) {
		t.Fatalf("skip=0 scan cost %v != SharedScan %v", got, want)
	}
	if got, want := APSWithSkipping(p, 0), APS(p); !approxEqual(got, want, 1e-12) {
		t.Fatalf("skip=0 ratio %v != APS %v", got, want)
	}
}

func TestSkippingReducesScanCostMonotonically(t *testing.T) {
	p := testParams(4, 0.001)
	prev := SharedScanWithSkipping(p, 0)
	for _, skip := range []float64{0.2, 0.5, 0.9, 0.99} {
		cur := SharedScanWithSkipping(p, skip)
		if cur >= prev {
			t.Fatalf("scan cost not falling with skip=%v: %v >= %v", skip, cur, prev)
		}
		prev = cur
	}
}

func TestSkippingFlipsDecisionTowardsScan(t *testing.T) {
	// A selectivity just below the crossover probes the index on random
	// data, but on clustered data where the zonemap skips ~99% of zones
	// the scan wins.
	d := Dataset{N: 1e8, TupleSize: 4}
	s, ok := Crossover(4, d, HW1(), DefaultDesign())
	if !ok {
		t.Fatal("no crossover")
	}
	p := Params{Workload: Uniform(4, s/2), Dataset: d, Hardware: HW1(), Design: DefaultDesign()}
	if APS(p) >= 1 {
		t.Fatalf("below-crossover batch should favor the index (APS=%v)", APS(p))
	}
	if APSWithSkipping(p, 0.99) < 1 {
		t.Fatalf("99%% skipping should flip the decision to scan (ratio %v)",
			APSWithSkipping(p, 0.99))
	}
}

func TestSkippingResultWritesUnaffected(t *testing.T) {
	// Even a fully-skipping scan still pays for writing the results: the
	// cost floor is alpha * Stot * T_DR.
	p := testParams(2, 0.4)
	floor := p.Design.alphaOrOne() * p.Workload.TotalSelectivity() *
		ResultWriteTime(p.Dataset, p.Hardware, p.Design)
	got := SharedScanWithSkipping(p, 1)
	if got < floor {
		t.Fatalf("full-skip scan %v fell below the write floor %v", got, floor)
	}
}

func TestSkippingClampsFraction(t *testing.T) {
	p := testParams(2, 0.01)
	if a, b := SharedScanWithSkipping(p, -3), SharedScanWithSkipping(p, 0); !approxEqual(a, b, 1e-12) {
		t.Fatalf("negative skip not clamped: %v vs %v", a, b)
	}
	if a, b := SharedScanWithSkipping(p, 7), SharedScanWithSkipping(p, 1); !approxEqual(a, b, 1e-12) {
		t.Fatalf("skip>1 not clamped: %v vs %v", a, b)
	}
}

package obs

import (
	"testing"
	"time"

	"fastcolumns/internal/race"
)

// TestRecordingSitesZeroAlloc pins the hot-path cost contract of the
// observability layer: once instruments and cells exist, every recording
// operation — counter add, gauge move, histogram record, trace append,
// drift record, and the registry's read-path lookup — allocates nothing.
// A regression here silently taxes every batch the server executes.
func TestRecordingSitesZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	tr := NewDecisionTrace(64)
	dr := NewDrift(0)

	sel := []float64{0.01, 0.002, 0.4}
	mkEntry := func() TraceEntry {
		e := TraceEntry{
			At: time.Unix(1, 0), Table: "t", Attr: "v",
			Q: len(sel), Path: "scan", Ratio: 1.2,
			PredScanCost: 1e-3, PredIndexCost: 2e-3, PredChosenCost: 1e-3,
			Elapsed: time.Millisecond,
		}
		e.SetSelectivities(sel)
		return e
	}
	// Warm: create the drift cell and fill the ring once.
	dr.Record("scan", 0.01, 1e-3, 2e-3)
	tr.Append(mkEntry())

	sites := []struct {
		name string
		op   func()
	}{
		{"counter add", func() { c.Add(1) }},
		{"gauge add", func() { g.Add(1) }},
		{"histogram record", func() { h.Record(12345) }},
		{"trace append", func() { tr.Append(mkEntry()) }},
		{"drift record", func() { dr.Record("scan", 0.01, 1e-3, 2e-3) }},
		{"registry counter lookup + add", func() { reg.Counter("c").Add(1) }},
		{"registry histogram lookup + record", func() { reg.Histogram("h").Record(99) }},
	}
	for _, site := range sites {
		if n := testing.AllocsPerRun(200, site.op); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", site.name, n)
		}
	}
}

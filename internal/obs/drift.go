package obs

import (
	"math"
	"sort"
	"sync"
)

// Model-drift accounting. The Appendix C fit calibrates the cost model's
// constants (alpha, fp, f_s, beta) to one host; once fitted, predicted
// batch costs should track measured runtimes up to a single host-wide
// scale factor (the model predicts on an idealized machine, so an
// overall constant offset is expected and harmless — it cancels out of
// the APS *ratio* the decision rule uses). What is NOT harmless is the
// scale factor differing across workload regions: that means the model's
// *shape* is wrong — e.g. a stale alpha mis-weighs result writing, which
// only shows at high selectivity — and the scan/probe break-even point
// the optimizer computes has moved away from the real one.
//
// Drift therefore accumulates measured/predicted ratios per
// (path, selectivity-band) cell and reports, for each cell, how far its
// ratio deviates from the global one in log space. A freshly fitted
// design keeps all cells near the global factor; a stale or mis-fitted
// one pulls selectivity bands apart, and MaxDrift crossing the threshold
// is the signal to re-run internal/fit on this host.

// selBands partitions mean per-query selectivity into log-spaced bands;
// band i covers [selBands[i-1], selBands[i]) with band 0 starting at 0.
var selBands = [...]float64{1e-4, 1e-3, 1e-2, 1e-1}

// NumSelBands is the number of selectivity bands (the last band is
// everything at or above 10% mean selectivity).
const NumSelBands = len(selBands) + 1

// BandOf returns the selectivity band index for a mean per-query
// selectivity.
func BandOf(meanSel float64) int {
	for i, hi := range selBands {
		if meanSel < hi {
			return i
		}
	}
	return len(selBands)
}

// BandBounds returns the [lo, hi) selectivity range of a band (the last
// band's hi is 1).
func BandBounds(band int) (lo, hi float64) {
	if band <= 0 {
		return 0, selBands[0]
	}
	if band >= len(selBands) {
		return selBands[len(selBands)-1], 1
	}
	return selBands[band-1], selBands[band]
}

// DefaultDriftThreshold is the staleness trigger: a cell whose
// measured/predicted ratio deviates from the global ratio by more than
// ln(2) — a factor of two in either direction — indicates the fitted
// constants no longer describe this host in that workload region.
const DefaultDriftThreshold = 0.693

// DefaultDriftMinSamples is how many batches a cell needs before it
// participates in the staleness verdict; single observations are too
// noisy to re-calibrate over.
const DefaultDriftMinSamples = 3

// cellKey identifies one (path, selectivity-band) accumulation cell.
type cellKey struct {
	path string
	band int
}

// driftCell accumulates one cell's evidence.
type driftCell struct {
	count    int64
	sumPred  float64 // predicted seconds
	sumMeas  float64 // measured seconds
	sumRatio float64 // sum of measured/predicted (per-batch ratios)
}

// Drift is the online accumulator. Record is cheap (one map probe and
// three float adds under a mutex, allocation-free once a cell exists).
type Drift struct {
	mu        sync.Mutex
	cells     map[cellKey]*driftCell
	threshold float64
}

// NewDrift returns an accumulator with the given staleness threshold
// (<= 0 selects DefaultDriftThreshold).
func NewDrift(threshold float64) *Drift {
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	return &Drift{cells: make(map[cellKey]*driftCell), threshold: threshold}
}

// Record folds one executed batch into its cell. path is the chosen
// access path's name, meanSel the batch's mean per-query selectivity
// estimate, predicted the model's cost for the chosen path in seconds,
// and measured the batch's wall time in seconds. Batches without a
// usable prediction (forced paths, zero estimates) are skipped.
func (d *Drift) Record(path string, meanSel, predicted, measured float64) {
	if predicted <= 0 || measured <= 0 || math.IsNaN(predicted) || math.IsNaN(measured) {
		return
	}
	key := cellKey{path: path, band: BandOf(meanSel)}
	d.mu.Lock()
	c, ok := d.cells[key]
	if !ok {
		c = &driftCell{}
		d.cells[key] = c
	}
	c.count++
	c.sumPred += predicted
	c.sumMeas += measured
	c.sumRatio += measured / predicted
	d.mu.Unlock()
}

// Reset discards all accumulated evidence. The refit controller calls it
// after hot-swapping a new design: the retained ratios were measured
// against the old constants, and judging the fresh fit by them would
// either hide new drift or re-trigger a refit immediately.
func (d *Drift) Reset() {
	d.mu.Lock()
	d.cells = make(map[cellKey]*driftCell)
	d.mu.Unlock()
}

// DriftCell is one (path, selectivity-band) row of the report.
type DriftCell struct {
	// Path is the access path the cell's batches executed through.
	Path string `json:"path"`
	// Band indexes the selectivity band; BandLo/BandHi are its bounds.
	Band   int     `json:"band"`
	BandLo float64 `json:"band_lo"`
	BandHi float64 `json:"band_hi"`
	// Count is how many batches landed in the cell.
	Count int64 `json:"count"`
	// PredictedSeconds and MeasuredSeconds are the cell's totals.
	PredictedSeconds float64 `json:"predicted_seconds"`
	MeasuredSeconds  float64 `json:"measured_seconds"`
	// Ratio is the cell's measured/predicted calibration factor.
	Ratio float64 `json:"ratio"`
	// Drift is |ln(Ratio / global Ratio)|: how far this cell's factor
	// deviates from the host-wide one. 0 means the model's shape holds
	// here; ln(2) means off by 2x relative to the rest of the host.
	Drift float64 `json:"drift"`
}

// DriftReport is the operator-facing staleness verdict.
type DriftReport struct {
	// Cells holds every populated cell, sorted by (path, band).
	Cells []DriftCell `json:"cells"`
	// GlobalRatio is the host-wide measured/predicted factor — the
	// constant calibration offset the ratio-based decision rule tolerates.
	GlobalRatio float64 `json:"global_ratio"`
	// MaxDrift is the largest per-cell drift among cells with at least
	// MinSamples batches; Threshold is the staleness trigger.
	MaxDrift  float64 `json:"max_drift"`
	Threshold float64 `json:"threshold"`
	// MinSamples is the evidence floor a cell needs to drive the verdict.
	MinSamples int64 `json:"min_samples"`
	// Stale reports MaxDrift > Threshold: the fitted constants have gone
	// stale on this host and a re-calibration via internal/fit is due.
	Stale bool `json:"stale"`
}

// Report computes the current drift picture.
func (d *Drift) Report() DriftReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := DriftReport{
		Threshold:  d.threshold,
		MinSamples: DefaultDriftMinSamples,
	}
	// The global calibration factor comes only from cells with enough
	// evidence; otherwise one stray batch in a thin cell would drag the
	// reference away from every well-sampled cell. With no cell at the
	// floor yet, fall back to everything observed so far.
	var totPred, totMeas float64
	for _, c := range d.cells {
		if c.count >= rep.MinSamples {
			totPred += c.sumPred
			totMeas += c.sumMeas
		}
	}
	if totPred <= 0 {
		for _, c := range d.cells {
			totPred += c.sumPred
			totMeas += c.sumMeas
		}
	}
	if totPred > 0 {
		rep.GlobalRatio = totMeas / totPred
	}
	for key, c := range d.cells {
		lo, hi := BandBounds(key.band)
		cell := DriftCell{
			Path:             key.path,
			Band:             key.band,
			BandLo:           lo,
			BandHi:           hi,
			Count:            c.count,
			PredictedSeconds: c.sumPred,
			MeasuredSeconds:  c.sumMeas,
		}
		if c.sumPred > 0 {
			cell.Ratio = c.sumMeas / c.sumPred
		}
		if cell.Ratio > 0 && rep.GlobalRatio > 0 {
			cell.Drift = math.Abs(math.Log(cell.Ratio / rep.GlobalRatio))
		}
		if c.count >= rep.MinSamples && cell.Drift > rep.MaxDrift {
			rep.MaxDrift = cell.Drift
		}
		rep.Cells = append(rep.Cells, cell)
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		if rep.Cells[i].Path != rep.Cells[j].Path {
			return rep.Cells[i].Path < rep.Cells[j].Path
		}
		return rep.Cells[i].Band < rep.Cells[j].Band
	})
	rep.Stale = rep.MaxDrift > rep.Threshold
	return rep
}

package obs

import (
	"math"
	"testing"
)

func TestBandOf(t *testing.T) {
	cases := []struct {
		sel  float64
		band int
	}{
		{0, 0}, {5e-5, 0}, {1e-4, 1}, {5e-4, 1}, {1e-3, 2},
		{5e-3, 2}, {0.05, 3}, {0.5, 4}, {1, 4},
	}
	for _, c := range cases {
		if got := BandOf(c.sel); got != c.band {
			t.Errorf("BandOf(%v) = %d, want %d", c.sel, got, c.band)
		}
	}
	for b := 0; b < NumSelBands; b++ {
		lo, hi := BandBounds(b)
		if lo >= hi {
			t.Errorf("band %d bounds inverted: [%v, %v)", b, lo, hi)
		}
		if BandOf(lo) != b {
			t.Errorf("BandOf(band %d's lo %v) = %d", b, lo, BandOf(lo))
		}
	}
}

// TestDriftUniformFactorIsNotDrift: a model that is wrong by the same
// constant factor everywhere is merely uncalibrated in absolute terms —
// the APS ratio cancels the factor, so the decision boundary is intact
// and no drift may be reported.
func TestDriftUniformFactorIsNotDrift(t *testing.T) {
	d := NewDrift(0)
	for i, sel := range []float64{1e-5, 5e-4, 5e-3, 0.05, 0.5} {
		for j := 0; j < 5; j++ {
			pred := float64(1+i) * 1e-3
			d.Record("scan", sel, pred, pred*3.7) // same 3.7x everywhere
		}
	}
	rep := d.Report()
	if len(rep.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(rep.Cells))
	}
	if math.Abs(rep.GlobalRatio-3.7) > 1e-9 {
		t.Fatalf("global ratio = %v, want 3.7", rep.GlobalRatio)
	}
	if rep.MaxDrift > 1e-9 {
		t.Fatalf("uniform factor reported drift %v", rep.MaxDrift)
	}
	if rep.Stale {
		t.Fatal("uniform factor flagged stale")
	}
}

// TestDriftShapeErrorIsDrift: a selectivity-dependent error — the
// signature of stale fitted constants — must push MaxDrift past the
// threshold and flag staleness.
func TestDriftShapeErrorIsDrift(t *testing.T) {
	d := NewDrift(0)
	// Low-selectivity cells run at 2x predicted; the high-selectivity
	// cell at 8x — a 4x spread in shape, far beyond the 2x threshold.
	for j := 0; j < 5; j++ {
		d.Record("scan", 1e-5, 1e-3, 2e-3)
		d.Record("scan", 5e-3, 1e-3, 2e-3)
		d.Record("scan", 0.5, 1e-3, 8e-3)
	}
	rep := d.Report()
	if !rep.Stale {
		t.Fatalf("shape error not flagged stale: %+v", rep)
	}
	if rep.MaxDrift <= rep.Threshold {
		t.Fatalf("MaxDrift = %v, want > threshold %v", rep.MaxDrift, rep.Threshold)
	}
}

// TestDriftMinSamples: cells below the evidence floor contribute their
// row but not the verdict.
func TestDriftMinSamples(t *testing.T) {
	d := NewDrift(0)
	for j := 0; j < 10; j++ {
		d.Record("scan", 1e-5, 1e-3, 2e-3)
	}
	// One wild outlier batch, below DefaultDriftMinSamples.
	d.Record("scan", 0.5, 1e-3, 1e-1)
	rep := d.Report()
	if rep.Stale {
		t.Fatalf("single outlier batch flagged the host stale: %+v", rep)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (outlier cell still reported)", len(rep.Cells))
	}
}

func TestDriftSkipsUnusableObservations(t *testing.T) {
	d := NewDrift(0)
	d.Record("scan", 0.1, 0, 1e-3)          // no prediction (forced path)
	d.Record("scan", 0.1, -1, 1e-3)         // negative prediction
	d.Record("scan", 0.1, 1e-3, 0)          // no measurement
	d.Record("scan", 0.1, math.NaN(), 1e-3) // NaN prediction
	d.Record("scan", 0.1, 1e-3, math.NaN()) // NaN measurement
	if rep := d.Report(); len(rep.Cells) != 0 {
		t.Fatalf("unusable observations created cells: %+v", rep.Cells)
	}
}

func TestDriftCellsSortedAndKeyedByPath(t *testing.T) {
	d := NewDrift(0)
	d.Record("index", 0.5, 1e-3, 2e-3)
	d.Record("scan", 1e-5, 1e-3, 2e-3)
	d.Record("index", 1e-5, 1e-3, 2e-3)
	rep := d.Report()
	if len(rep.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(rep.Cells))
	}
	for i := 1; i < len(rep.Cells); i++ {
		a, b := rep.Cells[i-1], rep.Cells[i]
		if a.Path > b.Path || (a.Path == b.Path && a.Band >= b.Band) {
			t.Fatalf("cells not sorted by (path, band): %+v", rep.Cells)
		}
	}
}

package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler returns a stdlib-only debug endpoint over the observer:
//
//	GET /metrics          — full JSON snapshot (metrics + drift report +
//	                        refit controller state when one is attached)
//	GET /debug/decisions  — recent decision trace entries, oldest first;
//	                        ?n=K limits to the last K entries
//	GET /debug/refit      — the refit controller's state alone (404 when
//	                        no controller is attached)
//
// Mount it on any mux or serve it on its own listener; handlers only
// read snapshots, so they never contend with the hot path beyond the
// registry's read locks.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var refit *RefitStatus
		if st, ok := o.RefitStatus(); ok {
			refit = &st
		}
		writeJSON(w, struct {
			Metrics RegistrySnapshot `json:"metrics"`
			Drift   DriftReport      `json:"drift"`
			Refit   *RefitStatus     `json:"refit,omitempty"`
		}{o.Metrics.Snapshot(), o.Drift.Report(), refit})
	})
	mux.HandleFunc("/debug/refit", func(w http.ResponseWriter, r *http.Request) {
		st, ok := o.RefitStatus()
		if !ok {
			http.Error(w, "no refit controller attached", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, struct {
			Total     int64        `json:"total"`
			Decisions []TraceEntry `json:"decisions"`
		}{o.Trace.Total(), o.Trace.Snapshot(n)})
	})
	return mux
}

// writeJSON marshals v and writes it with the JSON content type. The
// payload is marshaled before any byte is written so an encoding error
// can still produce a clean 500.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The client vanishing mid-write is its problem, not ours.
	_, _ = w.Write(data)
}

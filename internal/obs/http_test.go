package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func observedObserver() *Observer {
	o := NewObserver(8)
	o.Metrics.Counter("engine.batches").Add(3)
	o.Metrics.Histogram("engine.batch_ns").Record(1500)
	for i := 0; i < 5; i++ {
		e := TraceEntry{
			At: time.Unix(int64(i), 0), Table: "t", Attr: "v",
			Q: i + 1, Path: "scan", Ratio: 2,
			PredScanCost: 1e-3, PredChosenCost: 1e-3,
			Elapsed: 2 * time.Millisecond,
		}
		e.SetSelectivities([]float64{0.01})
		o.Trace.Append(e)
		o.Drift.Record("scan", 0.01, 1e-3, 2e-3)
	}
	return o
}

func TestMetricsEndpoint(t *testing.T) {
	h := observedObserver().Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got struct {
		Metrics RegistrySnapshot `json:"metrics"`
		Drift   DriftReport      `json:"drift"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.Metrics.Counters["engine.batches"] != 3 {
		t.Fatalf("counters = %v", got.Metrics.Counters)
	}
	if got.Metrics.Histograms["engine.batch_ns"].Count != 1 {
		t.Fatalf("histograms = %v", got.Metrics.Histograms)
	}
	if len(got.Drift.Cells) == 0 {
		t.Fatal("drift report empty over populated observer")
	}
}

func TestDecisionsEndpoint(t *testing.T) {
	h := observedObserver().Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var got struct {
		Total     int64        `json:"total"`
		Decisions []TraceEntry `json:"decisions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.Total != 5 || len(got.Decisions) != 2 {
		t.Fatalf("total=%d len=%d, want 5/2", got.Total, len(got.Decisions))
	}
	if got.Decisions[1].Seq != 4 {
		t.Fatalf("last decision seq = %d, want 4", got.Decisions[1].Seq)
	}
}

func TestDecisionsEndpointRejectsBadN(t *testing.T) {
	h := observedObserver().Handler()
	for _, q := range []string{"?n=-1", "?n=abc"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions"+q, nil))
		if rec.Code != 400 {
			t.Fatalf("%s: status = %d, want 400", q, rec.Code)
		}
	}
}

// Package obs is the engine's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges, and log-bucketed latency
// histograms with mergeable snapshots), a bounded ring buffer of access
// path decisions, and model-drift accounting that compares the cost
// model's predictions against measured batch runtimes per (path,
// selectivity-band) cell.
//
// The paper's central claim is that access path selection must be
// re-evaluated per batch because the scan/probe break-even point moves
// with concurrency (Section 3); this package makes those per-batch
// decisions visible to an operator — what q and selectivity mix the
// model is seeing, which path it picked and why, and whether the fitted
// constants (Appendix C) still describe this host or a re-calibration
// through internal/fit is due.
//
// Recording is designed for the hot path: counter adds and histogram
// records are single atomic operations, trace appends copy one fixed-
// size struct under a mutex, and none of them allocate once warm (the
// allocation-regression tests pin this down).
package obs

import (
	"sync/atomic"
	"time"
)

// RefitStatus is the refit controller's externally visible state: how
// many online re-fit attempts ran, how they ended, and why the last
// rejection happened. The controller (internal/refit) publishes a fresh
// copy after every attempt via Observer.SetRefitStatus; /metrics and
// /debug/refit surface it. Counters here mirror the fit.refit.* registry
// instruments but add the string-valued fields a numeric registry cannot
// carry (outcome, rejection reason).
type RefitStatus struct {
	// Enabled reports whether a controller is running at all.
	Enabled bool `json:"enabled"`
	// Attempts counts refit cycles that ran the fitter; Swaps counts the
	// candidates accepted and hot-swapped; Rejected counts candidates
	// discarded by holdout validation; Failures counts fitter errors and
	// recovered panics (the chaos site fires here).
	Attempts int64 `json:"attempts"`
	Swaps    int64 `json:"swaps"`
	Rejected int64 `json:"rejected"`
	Failures int64 `json:"failures"`
	// LastAt is when the most recent attempt finished; LastDuration how
	// long it took.
	LastAt       time.Time     `json:"last_at"`
	LastDuration time.Duration `json:"last_duration_ns"`
	// LastOutcome is "swapped", "rejected", "failed", or "" before any
	// attempt. LastRejectReason and LastError detail the latest rejection
	// or failure (sticky until superseded).
	LastOutcome      string `json:"last_outcome"`
	LastRejectReason string `json:"last_reject_reason,omitempty"`
	LastError        string `json:"last_error,omitempty"`
	// DesignVersion is the optimizer snapshot version after the last
	// attempt — it increments exactly when a hot-swap landed.
	DesignVersion uint64 `json:"design_version"`
}

// Observer bundles the observability surfaces the engine threads
// through its serve path. One Observer is shared by an Engine and every
// Server over it.
type Observer struct {
	// Metrics is the named counter/gauge/histogram registry.
	Metrics *Registry
	// Trace is the bounded ring of recent access path decisions.
	Trace *DecisionTrace
	// Drift accumulates predicted-vs-measured cost ratios per
	// (path, selectivity-band) cell.
	Drift *Drift

	refit atomic.Pointer[RefitStatus]
}

// SetRefitStatus publishes the refit controller's latest state; nil
// pointer stores are not allowed (publish a zero RefitStatus instead).
func (o *Observer) SetRefitStatus(st RefitStatus) {
	o.refit.Store(&st)
}

// RefitStatus returns the latest published controller state; ok is false
// when no controller ever published (refit disabled on this engine).
func (o *Observer) RefitStatus() (st RefitStatus, ok bool) {
	p := o.refit.Load()
	if p == nil {
		return RefitStatus{}, false
	}
	return *p, true
}

// NewObserver builds an observer whose decision trace keeps the last
// traceCap batches (traceCap <= 0 selects the default of 1024).
func NewObserver(traceCap int) *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   NewDecisionTrace(traceCap),
		Drift:   NewDrift(DefaultDriftThreshold),
	}
}

// Snapshot is a point-in-time copy of everything the observer holds;
// it is safe to serialize or inspect while recording continues.
type Snapshot struct {
	Metrics   RegistrySnapshot `json:"metrics"`
	Decisions []TraceEntry     `json:"decisions"`
	Drift     DriftReport      `json:"drift"`
	// Refit is the refit controller's state; nil when no controller is
	// attached to this engine.
	Refit *RefitStatus `json:"refit,omitempty"`
}

// Snapshot captures the current state of all surfaces.
func (o *Observer) Snapshot() Snapshot {
	s := Snapshot{
		Metrics:   o.Metrics.Snapshot(),
		Decisions: o.Trace.Snapshot(0),
		Drift:     o.Drift.Report(),
	}
	if st, ok := o.RefitStatus(); ok {
		s.Refit = &st
	}
	return s
}

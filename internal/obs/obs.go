// Package obs is the engine's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges, and log-bucketed latency
// histograms with mergeable snapshots), a bounded ring buffer of access
// path decisions, and model-drift accounting that compares the cost
// model's predictions against measured batch runtimes per (path,
// selectivity-band) cell.
//
// The paper's central claim is that access path selection must be
// re-evaluated per batch because the scan/probe break-even point moves
// with concurrency (Section 3); this package makes those per-batch
// decisions visible to an operator — what q and selectivity mix the
// model is seeing, which path it picked and why, and whether the fitted
// constants (Appendix C) still describe this host or a re-calibration
// through internal/fit is due.
//
// Recording is designed for the hot path: counter adds and histogram
// records are single atomic operations, trace appends copy one fixed-
// size struct under a mutex, and none of them allocate once warm (the
// allocation-regression tests pin this down).
package obs

// Observer bundles the three observability surfaces the engine threads
// through its serve path. One Observer is shared by an Engine and every
// Server over it.
type Observer struct {
	// Metrics is the named counter/gauge/histogram registry.
	Metrics *Registry
	// Trace is the bounded ring of recent access path decisions.
	Trace *DecisionTrace
	// Drift accumulates predicted-vs-measured cost ratios per
	// (path, selectivity-band) cell.
	Drift *Drift
}

// NewObserver builds an observer whose decision trace keeps the last
// traceCap batches (traceCap <= 0 selects the default of 1024).
func NewObserver(traceCap int) *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   NewDecisionTrace(traceCap),
		Drift:   NewDrift(DefaultDriftThreshold),
	}
}

// Snapshot is a point-in-time copy of everything the observer holds;
// it is safe to serialize or inspect while recording continues.
type Snapshot struct {
	Metrics   RegistrySnapshot `json:"metrics"`
	Decisions []TraceEntry     `json:"decisions"`
	Drift     DriftReport      `json:"drift"`
}

// Snapshot captures the current state of all three surfaces.
func (o *Observer) Snapshot() Snapshot {
	return Snapshot{
		Metrics:   o.Metrics.Snapshot(),
		Decisions: o.Trace.Snapshot(0),
		Drift:     o.Drift.Report(),
	}
}

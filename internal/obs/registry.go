package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (queue depths, in-flight
// batches); unlike a Counter it moves in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket 0 holds values <= 0,
// bucket k (1..64) holds values in [2^(k-1), 2^k - 1]. With nanosecond
// recordings this spans 1 ns to ~584 years, so nothing saturates.
const histBuckets = 65

// Histogram is a log-bucketed distribution with lock-free recording:
// one atomic add per observation. It is sized for latency-in-nanoseconds
// but records any non-negative int64.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a recorded value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Record adds one observation. It is safe for concurrent use and does
// not allocate.
func (h *Histogram) Record(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Snapshot copies the histogram's state and derives the quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.finalize()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram. Snapshots from
// different histograms (shards, processes) merge by bucket addition.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// P50, P95, P99 and P999 are the estimated quantiles in recorded
	// units, derived from the buckets at snapshot (and re-derived on
	// merge). P999 is the tail the load harness's SLO curves report;
	// with log2 buckets its relative error is bounded like the others'.
	P50  int64 `json:"p50"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	// Buckets holds the log2 bucket counts; bucket 0 is values <= 0,
	// bucket k counts values in [2^(k-1), 2^k - 1].
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Quantile estimates the p-quantile (p in [0,1]) by locating the bucket
// where the cumulative count crosses p and interpolating linearly inside
// its value range. Empty histograms report 0.
func (s *HistogramSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	var cum float64
	for k, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if k == 0 {
				return 0
			}
			lo := int64(1) << (k - 1)
			hi := lo << 1 // exclusive
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return s.Sum / s.Count
}

// Merge folds another snapshot into this one and re-derives quantiles.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.finalize()
}

// Mean returns the average recorded value (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// finalize derives the exported quantile fields from the buckets.
func (s *HistogramSnapshot) finalize() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// Registry is a named collection of counters, gauges, and histograms.
// Creation takes a short lock; the returned instruments record through
// atomics only, so callers on the hot path either cache the pointer or
// re-resolve it (a read-locked map lookup, allocation-free).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// RegistrySnapshot is a point-in-time copy of every instrument. Two
// snapshots (from sharded registries, or the same registry at different
// times on different hosts) merge additively.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge folds another snapshot into this one: counters, gauges and
// histogram buckets add (gauges from disjoint shards are summed, e.g.
// in-flight batches across servers).
func (s *RegistrySnapshot) Merge(o RegistrySnapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Names returns the sorted instrument names of one kind ("counter",
// "gauge", or "histogram") — handy for stable test and debug output.
func (s *RegistrySnapshot) Names(kind string) []string {
	var names []string
	switch kind {
	case "counter":
		for n := range s.Counters {
			names = append(names, n)
		}
	case "gauge":
		for n := range s.Gauges {
			names = append(names, n)
		}
	case "histogram":
		for n := range s.Histograms {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries")
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if r.Counter("queries") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 values uniform in [1, 100]: p50 ~ 50, p99 ~ 99 — log buckets
	// give order-of-magnitude resolution, so check loose bounds.
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %d, want 5050", s.Sum)
	}
	if s.P50 < 32 || s.P50 > 64 {
		t.Errorf("p50 = %d, want within [32, 64]", s.P50)
	}
	if s.P99 < 64 || s.P99 > 128 {
		t.Errorf("p99 = %d, want within [64, 128]", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d p999=%d", s.P50, s.P95, s.P99, s.P999)
	}
	if m := s.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", m)
	}
}

// TestHistogramP999TailSensitivity pins the quantile the load harness's
// SLO curves report: a 0.1%-wide stall mode invisible to p99 must move
// p999 into its bucket, and merge must re-derive it.
func TestHistogramP999TailSensitivity(t *testing.T) {
	var h Histogram
	for i := 0; i < 9980; i++ {
		h.Record(1_000)
	}
	for i := 0; i < 20; i++ {
		h.Record(1_000_000)
	}
	s := h.Snapshot()
	if s.P99 > 2_000 {
		t.Fatalf("p99 = %d, want in the fast mode (stall fraction is below 1%%)", s.P99)
	}
	if s.P999 < 500_000 {
		t.Fatalf("p999 = %d, want in the stall mode (>= 500000)", s.P999)
	}
	var other Histogram
	other.Record(1_000)
	o := other.Snapshot()
	o.Merge(s)
	if o.P999 < 500_000 {
		t.Fatalf("merged p999 = %d, not re-derived", o.P999)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-7)
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[0] != 2 {
		t.Fatalf("non-positive values must land in bucket 0: count=%d b0=%d", s.Count, s.Buckets[0])
	}
	if s.P50 != 0 {
		t.Fatalf("p50 of all-zero histogram = %d, want 0", s.P50)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("c").Add(10)
	r2.Counter("c").Add(5)
	r2.Counter("only2").Add(1)
	r1.Gauge("g").Set(2)
	r2.Gauge("g").Set(3)
	for v := int64(1); v <= 50; v++ {
		r1.Histogram("h").Record(v)
		r2.Histogram("h").Record(v + 50)
	}
	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	if s.Counters["c"] != 15 || s.Counters["only2"] != 1 {
		t.Fatalf("merged counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 5 {
		t.Fatalf("merged gauge = %d, want 5 (shard sum)", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 100 || h.Sum != 5050 {
		t.Fatalf("merged histogram count=%d sum=%d, want 100/5050", h.Count, h.Sum)
	}
	// Merging must equal recording everything into one histogram.
	var whole Histogram
	for v := int64(1); v <= 100; v++ {
		whole.Record(v)
	}
	if w := whole.Snapshot(); w.P50 != h.P50 || w.P99 != h.P99 {
		t.Fatalf("merged quantiles (%d, %d) differ from whole (%d, %d)", h.P50, h.P99, w.P50, w.P99)
	}
}

func TestMergeIntoZeroValueSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h").Record(8)
	var s RegistrySnapshot
	s.Merge(r.Snapshot())
	if s.Counters["c"] != 2 || s.Histograms["h"].Count != 1 {
		t.Fatalf("merge into zero value lost data: %+v", s)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Add(1)
				r.Histogram("lat").Record(int64(i + 1))
				r.Gauge(fmt.Sprintf("g%d", g%3)).Add(1)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != 8000 {
		t.Fatalf("shared counter = %d, want 8000", s.Counters["shared"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["lat"].Count)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	s := r.Snapshot()
	names := s.Names("counter")
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, want [a b]", names)
	}
}

package obs

import (
	"sync"
	"time"
)

// TraceSelCap is how many per-query selectivity estimates a trace entry
// holds inline. Entries are fixed-size so appends never allocate; for
// batches wider than this the first TraceSelCap estimates are kept and
// the min/max/total summary still describes the whole batch.
const TraceSelCap = 8

// TraceEntry records one executed batch: what the optimizer saw, what it
// predicted, what it chose, and what execution actually cost. This is
// the per-batch record Section 3's "continuous data collection" implies
// but the paper never surfaces.
type TraceEntry struct {
	// Seq is the entry's monotonically increasing sequence number; gaps
	// in a snapshot mean the ring wrapped between reads.
	Seq int64 `json:"seq"`
	// At is when the batch finished executing.
	At time.Time `json:"at"`
	// Table and Attr name the (table, attribute) stream.
	Table string `json:"table"`
	Attr  string `json:"attr"`
	// Q is the batch width — the concurrency the APS model exploited.
	Q int `json:"q"`
	// N and TupleSize are the relation's tuple count and width in bytes as
	// the model saw them — together with Q and the selectivity summary they
	// make the entry replayable as a fit.Observation, which is how the
	// refit controller harvests live training data from this ring.
	N         int     `json:"n"`
	TupleSize float64 `json:"tuple_size"`
	// Path is the chosen access path ("scan", "index", "bitmap").
	Path string `json:"path"`
	// Kernel names the scan kernel the model costed ("shared" or "swar");
	// empty for non-scan paths on old entries.
	Kernel string `json:"kernel,omitempty"`
	// Forced is true when only one path existed.
	Forced bool `json:"forced"`
	// Ratio is the APS value (ConcIndex/SharedScan); >= 1 selects the scan.
	Ratio float64 `json:"ratio"`
	// PredScanCost, PredIndexCost and PredChosenCost are the model's
	// predicted wall times in seconds (0 when the path did not exist).
	PredScanCost   float64 `json:"pred_scan_cost"`
	PredIndexCost  float64 `json:"pred_index_cost"`
	PredChosenCost float64 `json:"pred_chosen_cost"`
	// Elapsed is the measured execution wall time of the batch.
	Elapsed time.Duration `json:"elapsed_ns"`
	// SelCount is how many of Sel are valid (min(Q, TraceSelCap)); SelMin,
	// SelMax and SelTotal summarize all Q estimates.
	SelCount int                  `json:"sel_count"`
	Sel      [TraceSelCap]float64 `json:"sel"`
	SelMin   float64              `json:"sel_min"`
	SelMax   float64              `json:"sel_max"`
	SelTotal float64              `json:"sel_total"`
}

// SetSelectivities fills the entry's selectivity fields from the
// per-query estimates without allocating.
func (e *TraceEntry) SetSelectivities(sel []float64) {
	e.SelCount = 0
	e.SelMin, e.SelMax, e.SelTotal = 0, 0, 0
	for i, s := range sel {
		if i == 0 {
			e.SelMin, e.SelMax = s, s
		}
		if s < e.SelMin {
			e.SelMin = s
		}
		if s > e.SelMax {
			e.SelMax = s
		}
		e.SelTotal += s
		if i < TraceSelCap {
			e.Sel[i] = s
			e.SelCount = i + 1
		}
	}
}

// DecisionTrace is a bounded ring buffer of TraceEntry. Appends are
// constant-time struct copies under a short mutex (allocation-free);
// when full, the oldest entry is overwritten.
type DecisionTrace struct {
	mu   sync.Mutex
	buf  []TraceEntry
	next int64 // total appends; buf slot is next % len(buf)
}

// DefaultTraceCap is the ring size NewDecisionTrace uses for cap <= 0:
// at ~200 bytes per entry the ring stays around 200 KiB.
const DefaultTraceCap = 1024

// NewDecisionTrace returns a ring keeping the last cap entries.
func NewDecisionTrace(cap int) *DecisionTrace {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &DecisionTrace{buf: make([]TraceEntry, cap)}
}

// Append records one batch. The entry's Seq is assigned here.
func (t *DecisionTrace) Append(e TraceEntry) {
	t.mu.Lock()
	e.Seq = t.next
	t.buf[t.next%int64(len(t.buf))] = e
	t.next++
	t.mu.Unlock()
}

// Len returns how many entries are currently retained.
func (t *DecisionTrace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < int64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Total returns how many entries were ever appended.
func (t *DecisionTrace) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Snapshot returns up to max retained entries, oldest first (max <= 0
// returns all retained entries).
func (t *DecisionTrace) Snapshot(max int) []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	retained := int64(len(t.buf))
	if n < retained {
		retained = n
	}
	if max > 0 && int64(max) < retained {
		retained = int64(max)
	}
	out := make([]TraceEntry, retained)
	for i := int64(0); i < retained; i++ {
		seq := n - retained + i
		out[i] = t.buf[seq%int64(len(t.buf))]
	}
	return out
}

package obs

import (
	"testing"
	"time"
)

func entry(attr string, q int) TraceEntry {
	e := TraceEntry{
		At:    time.Unix(0, 0),
		Table: "t",
		Attr:  attr,
		Q:     q,
		Path:  "scan",
		Ratio: 1.5,
	}
	return e
}

func TestTraceAppendAndSnapshot(t *testing.T) {
	tr := NewDecisionTrace(4)
	for i := 0; i < 3; i++ {
		tr.Append(entry("a", i+1))
	}
	if tr.Len() != 3 || tr.Total() != 3 {
		t.Fatalf("len=%d total=%d, want 3/3", tr.Len(), tr.Total())
	}
	got := tr.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i) || e.Q != i+1 {
			t.Fatalf("entry %d = seq %d q %d, want oldest-first order", i, e.Seq, e.Q)
		}
	}
}

func TestTraceWrapsKeepingNewest(t *testing.T) {
	tr := NewDecisionTrace(4)
	for i := 0; i < 10; i++ {
		tr.Append(entry("a", i))
	}
	if tr.Len() != 4 || tr.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4/10", tr.Len(), tr.Total())
	}
	got := tr.Snapshot(0)
	for i, e := range got {
		if want := int64(6 + i); e.Seq != want {
			t.Fatalf("entry %d seq = %d, want %d (newest 4 retained)", i, e.Seq, want)
		}
	}
	if limited := tr.Snapshot(2); len(limited) != 2 || limited[1].Seq != 9 {
		t.Fatalf("Snapshot(2) = %+v, want the last 2 entries", limited)
	}
}

func TestTraceDefaultCap(t *testing.T) {
	tr := NewDecisionTrace(0)
	for i := 0; i < DefaultTraceCap+10; i++ {
		tr.Append(entry("a", i))
	}
	if tr.Len() != DefaultTraceCap {
		t.Fatalf("len = %d, want %d", tr.Len(), DefaultTraceCap)
	}
}

func TestSetSelectivities(t *testing.T) {
	var e TraceEntry
	e.SetSelectivities([]float64{0.5, 0.1, 0.9})
	if e.SelCount != 3 {
		t.Fatalf("SelCount = %d, want 3", e.SelCount)
	}
	if e.SelMin != 0.1 || e.SelMax != 0.9 {
		t.Fatalf("min/max = %v/%v, want 0.1/0.9", e.SelMin, e.SelMax)
	}
	if e.SelTotal < 1.49 || e.SelTotal > 1.51 {
		t.Fatalf("total = %v, want 1.5", e.SelTotal)
	}
	// Wider than the inline cap: summary covers all, inline holds the
	// first TraceSelCap.
	wide := make([]float64, TraceSelCap+4)
	for i := range wide {
		wide[i] = float64(i)
	}
	e.SetSelectivities(wide)
	if e.SelCount != TraceSelCap {
		t.Fatalf("SelCount = %d, want %d", e.SelCount, TraceSelCap)
	}
	if e.SelMax != float64(len(wide)-1) {
		t.Fatalf("SelMax = %v, want %v (summary must span the whole batch)", e.SelMax, float64(len(wide)-1))
	}
	// Empty batch resets everything.
	e.SetSelectivities(nil)
	if e.SelCount != 0 || e.SelMax != 0 || e.SelTotal != 0 {
		t.Fatalf("empty SetSelectivities left residue: %+v", e)
	}
}

// Package ops implements the operators downstream of the select: tuple
// reconstruction (fetching other attributes by rowID) and aggregation.
//
// Tuple reconstruction is why the select operator sorts index results
// into rowID order at all (Section 2.3): fetching a second column with
// ascending rowIDs walks memory (nearly) sequentially, while an unsorted
// rowID list forces a random access per tuple — the ablation benchmark
// BenchmarkAblationFetchOrder quantifies the gap.
package ops

import (
	"errors"
	"math"

	"fastcolumns/internal/storage"
)

// Fetch materializes column values at the given rowIDs, in rowID-list
// order (tuple reconstruction). out is reused when large enough.
func Fetch(c *storage.Column, ids []storage.RowID, out []storage.Value) []storage.Value {
	if cap(out) < len(ids) {
		out = make([]storage.Value, len(ids))
	}
	out = out[:len(ids)]
	for i, id := range ids {
		out[i] = c.Get(int(id))
	}
	return out
}

// FetchRows materializes whole tuples across several columns: row i of
// the result holds cols[j].Get(ids[i]) at position j.
func FetchRows(cols []*storage.Column, ids []storage.RowID) [][]storage.Value {
	rows := make([][]storage.Value, len(ids))
	flat := make([]storage.Value, len(ids)*len(cols))
	for i, id := range ids {
		row := flat[i*len(cols) : (i+1)*len(cols)]
		for j, c := range cols {
			row[j] = c.Get(int(id))
		}
		rows[i] = row
	}
	return rows
}

// Aggregate is a running aggregate over int32 values with int64 sums.
type Aggregate struct {
	Count int64
	Sum   int64
	Min   storage.Value
	Max   storage.Value
}

// NewAggregate returns an empty aggregate.
func NewAggregate() Aggregate {
	return Aggregate{Min: math.MaxInt32, Max: math.MinInt32}
}

// Add folds one value in.
func (a *Aggregate) Add(v storage.Value) {
	a.Count++
	a.Sum += int64(v)
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

// Avg returns the mean, or an error on an empty aggregate.
func (a Aggregate) Avg() (float64, error) {
	if a.Count == 0 {
		return 0, errors.New("ops: average of empty aggregate")
	}
	return float64(a.Sum) / float64(a.Count), nil
}

// AggregateAt folds the column values at the given rowIDs.
func AggregateAt(c *storage.Column, ids []storage.RowID) Aggregate {
	agg := NewAggregate()
	for _, id := range ids {
		agg.Add(c.Get(int(id)))
	}
	return agg
}

// SumProductAt returns sum(a[i]*b[i]) over the rowIDs — the revenue
// aggregation shape of TPC-H Q6 (extendedprice * discount).
func SumProductAt(a, b *storage.Column, ids []storage.RowID) int64 {
	var total int64
	for _, id := range ids {
		total += int64(a.Get(int(id))) * int64(b.Get(int(id)))
	}
	return total
}

// GroupCount counts qualifying tuples per group key: result[k] is the
// number of rowIDs whose key column holds k. Useful for low-cardinality
// group-bys after a select.
func GroupCount(key *storage.Column, ids []storage.RowID) map[storage.Value]int64 {
	out := make(map[storage.Value]int64)
	for _, id := range ids {
		out[key.Get(int(id))]++
	}
	return out
}

// FilterAt applies a residual range predicate to already-selected rowIDs:
// the conjunctive-select pattern where the most selective predicate
// drives the access path and the rest are evaluated per survivor.
func FilterAt(c *storage.Column, lo, hi storage.Value, ids []storage.RowID) []storage.RowID {
	out := ids[:0]
	for _, id := range ids {
		if v := c.Get(int(id)); v >= lo && v <= hi {
			out = append(out, id)
		}
	}
	return out
}

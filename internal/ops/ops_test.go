package ops

import (
	"math/rand"
	"testing"

	"fastcolumns/internal/storage"
)

func column(vals ...storage.Value) *storage.Column {
	return storage.NewColumn("c", vals)
}

func TestFetch(t *testing.T) {
	c := column(10, 20, 30, 40, 50)
	got := Fetch(c, []storage.RowID{4, 0, 2}, nil)
	want := []storage.Value{50, 10, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fetch = %v, want %v", got, want)
		}
	}
	// Buffer reuse.
	buf := make([]storage.Value, 0, 10)
	got2 := Fetch(c, []storage.RowID{1}, buf)
	if len(got2) != 1 || got2[0] != 20 {
		t.Fatalf("Fetch with buffer = %v", got2)
	}
	if got3 := Fetch(c, nil, nil); len(got3) != 0 {
		t.Fatalf("Fetch of nothing = %v", got3)
	}
}

func TestFetchRows(t *testing.T) {
	a := column(1, 2, 3)
	b := column(10, 20, 30)
	rows := FetchRows([]*storage.Column{a, b}, []storage.RowID{2, 0})
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != 3 || rows[0][1] != 30 || rows[1][0] != 1 || rows[1][1] != 10 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFetchFromColumnGroup(t *testing.T) {
	// Tuple reconstruction out of a hybrid layout uses the strided view.
	g, err := storage.NewColumnGroup([]string{"x", "y"},
		[][]storage.Value{{1, 2, 3}, {7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	got := Fetch(g.Column("y"), []storage.RowID{0, 2}, nil)
	if got[0] != 7 || got[1] != 9 {
		t.Fatalf("group fetch = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	agg := NewAggregate()
	for _, v := range []storage.Value{5, -3, 10, 0} {
		agg.Add(v)
	}
	if agg.Count != 4 || agg.Sum != 12 || agg.Min != -3 || agg.Max != 10 {
		t.Fatalf("aggregate = %+v", agg)
	}
	avg, err := agg.Avg()
	if err != nil || avg != 3 {
		t.Fatalf("Avg = %v, %v", avg, err)
	}
}

func TestAvgEmpty(t *testing.T) {
	if _, err := NewAggregate().Avg(); err == nil {
		t.Fatal("empty average accepted")
	}
}

func TestAggregateAt(t *testing.T) {
	c := column(2, 4, 6, 8)
	agg := AggregateAt(c, []storage.RowID{1, 3})
	if agg.Sum != 12 || agg.Count != 2 || agg.Min != 4 || agg.Max != 8 {
		t.Fatalf("AggregateAt = %+v", agg)
	}
}

func TestSumProductAt(t *testing.T) {
	price := column(100, 200, 300)
	disc := column(1, 2, 3)
	got := SumProductAt(price, disc, []storage.RowID{0, 2})
	if got != 100*1+300*3 {
		t.Fatalf("SumProductAt = %d", got)
	}
	// Overflow safety: int64 accumulation of large int32 products.
	big := column(1<<30, 1<<30)
	if got := SumProductAt(big, big, []storage.RowID{0, 1}); got != 2*(1<<60) {
		t.Fatalf("big SumProductAt = %d", got)
	}
}

func TestGroupCount(t *testing.T) {
	key := column(1, 2, 1, 3, 1, 2)
	got := GroupCount(key, []storage.RowID{0, 1, 2, 3, 4, 5})
	if got[1] != 3 || got[2] != 2 || got[3] != 1 {
		t.Fatalf("GroupCount = %v", got)
	}
	if len(GroupCount(key, nil)) != 0 {
		t.Fatal("GroupCount of nothing should be empty")
	}
}

func TestFetchOrderInsensitiveResults(t *testing.T) {
	// Fetching with sorted vs unsorted rowIDs touches memory differently
	// but must aggregate identically.
	rng := rand.New(rand.NewSource(1))
	vals := make([]storage.Value, 10000)
	for i := range vals {
		vals[i] = rng.Int31n(1000)
	}
	c := storage.NewColumn("v", vals)
	ids := make([]storage.RowID, 3000)
	for i := range ids {
		ids[i] = storage.RowID(rng.Intn(len(vals)))
	}
	sortedAgg := AggregateAt(c, ids)
	shuffled := append([]storage.RowID(nil), ids...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	shuffledAgg := AggregateAt(c, shuffled)
	if sortedAgg != shuffledAgg {
		t.Fatalf("aggregate depends on fetch order: %+v vs %+v", sortedAgg, shuffledAgg)
	}
}

func TestFilterAt(t *testing.T) {
	c := column(5, 10, 15, 20, 25)
	ids := []storage.RowID{0, 1, 2, 3, 4}
	got := FilterAt(c, 10, 20, ids)
	want := []storage.RowID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("FilterAt = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterAt = %v, want %v", got, want)
		}
	}
	// In-place: the result aliases the input prefix.
	if &got[0] != &ids[0] {
		t.Fatal("FilterAt should filter in place")
	}
	if out := FilterAt(c, 100, 200, []storage.RowID{0, 4}); len(out) != 0 {
		t.Fatalf("no-match FilterAt = %v", out)
	}
}

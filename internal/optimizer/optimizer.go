// Package optimizer implements the cost-based access path selection
// module of Section 3 (Figure 11): given the batch the scheduler
// assembled, per-query selectivity estimates from the statistics, the
// data's physical shape from the storage engine, and the hardware profile
// captured at initialization, it evaluates the APS ratio and picks the
// access path. It also implements the traditional fixed-selectivity-
// threshold optimizer the paper compares against.
package optimizer

import (
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
)

// Optimizer is the APS module: hardware and design are captured once at
// initialization; everything else arrives per batch.
type Optimizer struct {
	HW     model.Hardware
	Design model.Design
}

// New returns an optimizer for the given machine profile using the
// paper's fitted design constants.
func New(hw model.Hardware) *Optimizer {
	return &Optimizer{HW: hw, Design: model.FittedDesign()}
}

// NewWithDesign returns an optimizer with explicit design constants —
// typically the output of fitting the model to the running machine
// (Appendix C).
func NewWithDesign(hw model.Hardware, dg model.Design) *Optimizer {
	return &Optimizer{HW: hw, Design: dg}
}

// Decision records one access path selection and what informed it.
type Decision struct {
	Path model.Path
	// Ratio is the APS value (ConcIndex/SharedScan); >= 1 selects the scan.
	Ratio float64
	// Selectivities holds the per-query estimates used.
	Selectivities []float64
	// Forced is true when only one path existed (e.g. no secondary index).
	Forced bool
	// Elapsed is the optimization time itself — the paper stresses this
	// stays in the microsecond range even for sub-second queries.
	Elapsed time.Duration
}

// Choose runs access path selection from raw model inputs: the relation
// size, tuple width in bytes, and per-query selectivity estimates.
func (o *Optimizer) Choose(n int, tupleSize float64, sel []float64) Decision {
	start := time.Now()
	p := model.Params{
		Workload: model.Workload{Selectivities: sel},
		Dataset:  model.Dataset{N: float64(n), TupleSize: tupleSize},
		Hardware: o.HW,
		Design:   o.Design,
	}
	ratio := model.APS(p)
	path := model.PathScan
	if ratio < 1 {
		path = model.PathIndex
	}
	return Decision{Path: path, Ratio: ratio, Selectivities: sel, Elapsed: time.Since(start)}
}

// Decide performs the full run-time decision for a batch over a relation:
// selectivities are estimated per query from the histogram, N and ts come
// from the column, a zonemap (if present) credits the scan with the
// zones the whole batch can skip (Appendix E), and relations without a
// secondary index force a scan.
func (o *Optimizer) Decide(rel *exec.Relation, h *stats.Histogram, preds []scan.Predicate) Decision {
	start := time.Now()
	sel := make([]float64, len(preds))
	if h != nil {
		for i, p := range preds {
			sel[i] = h.EstimateRange(p.Lo, p.Hi)
		}
	}
	if rel.Index == nil && rel.Bitmap == nil {
		return Decision{Path: model.PathScan, Ratio: 0, Selectivities: sel,
			Forced: true, Elapsed: time.Since(start)}
	}
	p := model.Params{
		Workload: model.Workload{Selectivities: sel},
		Dataset:  model.Dataset{N: float64(rel.Column.Len()), TupleSize: float64(rel.Column.TupleSize())},
		Hardware: o.HW,
		Design:   o.Design,
	}
	// Credit the scan with whatever data skipping the relation supports:
	// imprints at cache-line granularity, else zonemaps (Appendix E).
	var skip float64
	switch {
	case rel.Imprints != nil:
		// Conservatively use the widest query's checked fraction.
		checked := 0.0
		for _, pr := range preds {
			if f := rel.Imprints.CheckedFraction(pr.Lo, pr.Hi); f > checked {
				checked = f
			}
		}
		skip = 1 - checked
	case rel.Zonemap != nil:
		ranges := make([][2]int32, len(preds))
		for i, pr := range preds {
			ranges[i] = [2]int32{pr.Lo, pr.Hi}
		}
		skip = rel.Zonemap.SkipFraction(ranges)
	}
	var card float64
	if rel.Bitmap != nil {
		card = float64(rel.Bitmap.Cardinality())
	}
	path, _ := model.ChooseAmong(p, skip, rel.Index != nil, card)
	return Decision{
		Path:          path,
		Ratio:         model.APSWithSkipping(p, skip),
		Selectivities: sel,
		Elapsed:       time.Since(start),
	}
}

// Traditional is the pre-2017 optimizer: a selectivity threshold fixed
// when the system is tuned, applied per query with no concurrency input
// ("once the system is tuned it is a fixed point used for all queries").
type Traditional struct {
	// Threshold is the per-query selectivity above which it scans.
	Threshold float64
}

// NewTraditional tunes the fixed threshold for the machine the
// traditional way: the single-query break-even point.
func NewTraditional(n int, tupleSize float64, hw model.Hardware, dg model.Design) Traditional {
	s, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: tupleSize}, hw, dg)
	if !ok {
		if s == 0 {
			return Traditional{Threshold: 0} // scan always
		}
		return Traditional{Threshold: 1} // index always
	}
	return Traditional{Threshold: s}
}

// Decide applies the fixed threshold to the batch's mean per-query
// selectivity, ignoring concurrency entirely.
func (t Traditional) Decide(sel []float64) model.Path {
	if len(sel) == 0 {
		return model.PathScan
	}
	var mean float64
	for _, s := range sel {
		mean += s
	}
	mean /= float64(len(sel))
	if mean < t.Threshold {
		return model.PathIndex
	}
	return model.PathScan
}

// SinglePath is the degenerate policy modern systems without secondary
// indexes use: always the same access path (Figure 18's "Index Scan" and
// "Share Scan" bars).
type SinglePath struct{ Path model.Path }

// Decide returns the fixed path.
func (s SinglePath) Decide([]float64) model.Path { return s.Path }

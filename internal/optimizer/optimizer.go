// Package optimizer implements the cost-based access path selection
// module of Section 3 (Figure 11): given the batch the scheduler
// assembled, per-query selectivity estimates from the statistics, the
// data's physical shape from the storage engine, and the hardware profile
// captured at initialization, it evaluates the APS ratio and picks the
// access path. It also implements the traditional fixed-selectivity-
// threshold optimizer the paper compares against.
package optimizer

import (
	"math"
	"sync/atomic"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
)

// Snapshot is the optimizer's swappable state: everything a decision
// depends on that an online re-fit may replace. Readers obtain a
// consistent copy through Optimizer.Snapshot (or the HW/Design
// convenience accessors) — never by caching field references across a
// potential swap.
type Snapshot struct {
	HW     model.Hardware
	Design model.Design
	// Robust is the estimate-error policy applied by Decide/Choose.
	Robust RobustPolicy
	// Version counts swaps: 1 at construction, +1 per SwapDesign or
	// SetRobust. Observability surfaces it so a hot-swap is visible.
	Version uint64
}

// RobustPolicy configures the estimate-error-robust decision mode: when a
// batch's flip margin (model.ErrorMargin) is thinner than MarginThreshold,
// the point estimate is not trusted and the batch is either routed to the
// adaptive Smooth-Scan path or decided by minimax regret over an assumed
// error bound. The zero value disables robust mode entirely.
type RobustPolicy struct {
	// MarginThreshold is the ErrorMargin below which the point decision is
	// distrusted. Margins are >= 1, so a threshold <= 1 never triggers and
	// disables robust mode.
	MarginThreshold float64
	// ErrorBound is the multiplicative selectivity-error factor assumed by
	// the minimax-regret hedge (e.g. 4 means "estimates may be 4x off in
	// either direction"). Values <= 1 fall back to the point decision.
	ErrorBound float64
	// RouteAdaptive routes thin-margin batches to the adaptive path
	// (Decision.RouteAdaptive) instead of picking the minimax choice.
	RouteAdaptive bool
	// EstimateError injects controlled selectivity misestimation: the
	// model costs every batch as if each selectivity were scaled by this
	// factor (clamped to [0,1]) while execution answers the true
	// predicates. 0 or 1 disables the knob. This is the ablation control
	// for the estimate-robustness experiments, not a production setting.
	EstimateError float64
}

// Enabled reports whether the policy can ever change a decision.
func (p RobustPolicy) Enabled() bool { return p.MarginThreshold > 1 }

// Optimizer is the APS module: hardware and design are captured in an
// atomically swappable snapshot at initialization; everything else
// arrives per batch. The indirection is what lets the refit controller
// hot-swap a freshly fitted Design while batches keep deciding — readers
// always see either the old or the new snapshot, never a torn mix.
//
//fclint:atomicswap
type Optimizer struct {
	snap atomic.Pointer[Snapshot]

	m *optMetrics
}

// Snapshot returns a consistent copy of the optimizer's current state.
// Multi-field readers (budget derivation, robustness explanations) must
// use this rather than separate HW()/Design() calls, so a concurrent swap
// cannot hand them mismatched halves.
func (o *Optimizer) Snapshot() Snapshot { return *o.snap.Load() }

// HW returns the current hardware profile.
func (o *Optimizer) HW() model.Hardware { return o.snap.Load().HW }

// Design returns the current design constants.
func (o *Optimizer) Design() model.Design { return o.snap.Load().Design }

// Robust returns the current robust-decision policy.
func (o *Optimizer) Robust() RobustPolicy { return o.snap.Load().Robust }

// Version returns the snapshot version (1 at construction, +1 per swap).
func (o *Optimizer) Version() uint64 { return o.snap.Load().Version }

// install publishes the first snapshot; constructors delegate here so
// every store to the atomic pointer lives in a method of Optimizer.
func (o *Optimizer) install(s *Snapshot) {
	s.Version = 1
	o.snap.Store(s)
}

// SwapDesign atomically replaces the design constants, preserving the
// hardware profile and robust policy, and returns the design it
// displaced. In-flight decisions that already loaded the old snapshot
// finish on it; the next decision sees the new constants. This is the
// refit controller's publication point.
func (o *Optimizer) SwapDesign(dg model.Design) model.Design {
	for {
		cur := o.snap.Load()
		next := *cur
		next.Design = dg
		next.Version = cur.Version + 1
		if o.snap.CompareAndSwap(cur, &next) {
			return cur.Design
		}
	}
}

// SwapModel atomically replaces hardware profile and design constants
// together, preserving the robust policy. A refit adjusts both (the fit's
// pipelining factor lives in the hardware profile, the rest in the
// design), and publishing them as one snapshot is what keeps concurrent
// readers from costing with a new design against an old fp.
func (o *Optimizer) SwapModel(hw model.Hardware, dg model.Design) {
	for {
		cur := o.snap.Load()
		next := *cur
		next.HW = hw
		next.Design = dg
		next.Version = cur.Version + 1
		if o.snap.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// SetRobust atomically replaces the robust-decision policy, preserving
// hardware and design.
func (o *Optimizer) SetRobust(p RobustPolicy) {
	for {
		cur := o.snap.Load()
		next := *cur
		next.Robust = p
		next.Version = cur.Version + 1
		if o.snap.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// optMetrics holds the optimizer's pre-resolved instruments so the
// per-decision recording is two allocation-free atomic operations.
type optMetrics struct {
	decideNs *obs.Histogram
	chose    [3]*obs.Counter // indexed by model.Path
}

// SetMetrics wires decision observability into the optimizer: every
// Decide records its own latency (the paper stresses decisions stay in
// the microsecond range — this histogram proves it in production) and
// tallies the chosen path. nil detaches.
func (o *Optimizer) SetMetrics(r *obs.Registry) {
	if r == nil {
		o.m = nil
		return
	}
	o.m = &optMetrics{
		decideNs: r.Histogram("optimizer.decide_ns"),
		chose: [3]*obs.Counter{
			model.PathScan:   r.Counter("optimizer.chose.scan"),
			model.PathIndex:  r.Counter("optimizer.chose.index"),
			model.PathBitmap: r.Counter("optimizer.chose.bitmap"),
		},
	}
}

// observe records one finished decision.
func (o *Optimizer) observe(d Decision) {
	if o.m == nil {
		return
	}
	o.m.decideNs.Record(d.Elapsed.Nanoseconds())
	if d.Path >= 0 && int(d.Path) < len(o.m.chose) {
		o.m.chose[d.Path].Add(1)
	}
}

// New returns an optimizer for the given machine profile using the
// paper's fitted design constants.
func New(hw model.Hardware) *Optimizer {
	return NewWithDesign(hw, model.FittedDesign())
}

// NewWithDesign returns an optimizer with explicit design constants —
// typically the output of fitting the model to the running machine
// (Appendix C).
func NewWithDesign(hw model.Hardware, dg model.Design) *Optimizer {
	o := &Optimizer{}
	o.install(&Snapshot{HW: hw, Design: dg})
	return o
}

// Scan kernel names recorded in decisions: the packed SWAR kernel over
// the compressed twin, and the plain shared scan. They key the drift
// accounting, so a stale packed fit is flagged separately from a stale
// shared-scan fit.
const (
	KernelShared = "shared"
	KernelSWAR   = "swar"
)

// Decision records one access path selection and what informed it.
type Decision struct {
	Path model.Path
	// Ratio is the APS value (ConcIndex/SharedScan); >= 1 selects the scan.
	Ratio float64
	// Selectivities holds the per-query estimates used.
	Selectivities []float64
	// Forced is true when only one path existed (e.g. no secondary index).
	Forced bool
	// ScanKernel names the scan kernel the cost model assumed:
	// KernelSWAR when the relation carries a compressed twin (exec
	// prefers the packed path), KernelShared otherwise.
	ScanKernel string
	// ScanCost and IndexCost are the model's predicted wall times in
	// seconds for the shared scan (skip-aware when the relation supports
	// skipping) and the concurrent index scan; IndexCost is 0 when no
	// index exists. ChosenCost is the predicted time of the chosen path —
	// it can differ from both when a bitmap index wins. The drift
	// accounting in internal/obs compares these against measured
	// runtimes to tell when the Appendix C constants have gone stale.
	ScanCost   float64
	IndexCost  float64
	ChosenCost float64
	// Elapsed is the optimization time itself — the paper stresses this
	// stays in the microsecond range even for sub-second queries.
	Elapsed time.Duration

	// Margin is the flip margin (model.ErrorMargin) computed when robust
	// mode is enabled: the selectivity-error factor that would change the
	// decision. 0 when robust mode is off or the batch was forced.
	Margin float64
	// Hedged is true when the minimax-regret rule overrode the point
	// decision because Margin fell below the policy threshold.
	Hedged bool
	// RouteAdaptive is true when the policy asks the executor to answer
	// this thin-margin batch on the adaptive Smooth-Scan path instead of
	// committing to either static path.
	RouteAdaptive bool
}

// DriftPath returns the drift-accounting key for the decision: the
// chosen path's name, specialized by scan kernel so the packed fit's
// constants accumulate their own (path, selectivity-band) cells. The
// returned strings are constants — recording stays allocation-free.
func (d Decision) DriftPath() string {
	if d.Path == model.PathScan && d.ScanKernel == KernelSWAR {
		return "scan(swar)"
	}
	return d.Path.String()
}

// MeanSelectivity returns the batch's mean per-query selectivity
// estimate (0 for an empty batch) — the drift accounting's band key.
func (d Decision) MeanSelectivity() float64 {
	if len(d.Selectivities) == 0 {
		return 0
	}
	var t float64
	for _, s := range d.Selectivities {
		t += s
	}
	return t / float64(len(d.Selectivities))
}

// ratioOf is the APS value from the two predicted costs, guarding the
// zero-cost denominator the way model.APS does.
func ratioOf(indexCost, scanCost float64) float64 {
	if model.EqZero(scanCost) {
		return math.Inf(1)
	}
	return indexCost / scanCost
}

// applyRobust implements the thin-margin policy on a provisional
// decision: compute how far the batch sits from the flip boundary, and
// when it is closer than the policy tolerates, either hand the batch to
// the adaptive path or replace the point choice with the minimax-regret
// hedge. Batches with only one real path (forced, bitmap-answered, or no
// index cost) are left alone — there is nothing to hedge between.
func applyRobust(rb RobustPolicy, p model.Params, d *Decision) {
	if !rb.Enabled() || d.Forced || d.Path == model.PathBitmap || model.EqZero(d.IndexCost) {
		return
	}
	d.Margin = model.ErrorMargin(p)
	if math.IsInf(d.Margin, 1) || d.Margin >= rb.MarginThreshold {
		return
	}
	if rb.RouteAdaptive {
		d.RouteAdaptive = true
		return
	}
	path, _ := model.MinimaxRegret(p, rb.ErrorBound)
	if path == d.Path {
		return
	}
	d.Hedged = true
	d.Path = path
	d.ChosenCost = d.ScanCost
	if path == model.PathIndex {
		d.ChosenCost = d.IndexCost
	}
}

// Choose runs access path selection from raw model inputs: the relation
// size, tuple width in bytes, and per-query selectivity estimates.
func (o *Optimizer) Choose(n int, tupleSize float64, sel []float64) Decision {
	start := time.Now()
	s := o.snap.Load()
	p := model.Params{
		Workload: model.Workload{Selectivities: sel}.WithEstimateError(s.Robust.EstimateError),
		Dataset:  model.Dataset{N: float64(n), TupleSize: tupleSize},
		Hardware: s.HW,
		Design:   s.Design,
	}
	scanCost := model.SharedScan(p)
	indexCost := model.ConcIndex(p)
	ratio := ratioOf(indexCost, scanCost)
	path, chosen := model.PathScan, scanCost
	if ratio < 1 {
		path, chosen = model.PathIndex, indexCost
	}
	d := Decision{
		Path: path, Ratio: ratio, Selectivities: p.Workload.Selectivities, ScanKernel: KernelShared,
		ScanCost: scanCost, IndexCost: indexCost, ChosenCost: chosen,
	}
	applyRobust(s.Robust, p, &d)
	d.Elapsed = time.Since(start)
	o.observe(d)
	return d
}

// scanSide costs the scan access path as the executor will actually run
// it: relations with a compressed twin take the packed SWAR kernel
// (2-byte codes, W-way predicate evaluation — exec's PreferCompressed
// branch), everything else the plain shared scan credited with whatever
// data skipping the relation supports.
func scanSide(rel *exec.Relation, p model.Params, skip float64) (cost float64, kernel string) {
	if rel.Compressed != nil {
		pp := p
		pp.Dataset.TupleSize = float64(rel.Compressed.TupleSize())
		return model.SharedScanPacked(pp), KernelSWAR
	}
	return model.SharedScanWithSkipping(p, skip), KernelShared
}

// Decide performs the full run-time decision for a batch over a relation:
// selectivities are estimated per query from the histogram, N and ts come
// from the column, a zonemap (if present) credits the scan with the
// zones the whole batch can skip (Appendix E), and relations without a
// secondary index force a scan.
func (o *Optimizer) Decide(rel *exec.Relation, h *stats.Histogram, preds []scan.Predicate) Decision {
	start := time.Now()
	snap := o.snap.Load()
	sel := make([]float64, len(preds))
	if h != nil {
		for i, p := range preds {
			sel[i] = h.EstimateRange(p.Lo, p.Hi)
		}
	}
	p := model.Params{
		Workload: model.Workload{Selectivities: sel}.WithEstimateError(snap.Robust.EstimateError),
		Dataset:  model.Dataset{N: float64(rel.Column.Len()), TupleSize: float64(rel.Column.TupleSize())},
		Hardware: snap.HW,
		Design:   snap.Design,
	}
	sel = p.Workload.Selectivities
	if rel.Index == nil && rel.Bitmap == nil {
		// Only the scan exists; still predict its cost so the drift
		// accounting covers forced batches too.
		scanCost, kernel := scanSide(rel, p, 0)
		d := Decision{Path: model.PathScan, Ratio: 0, Selectivities: sel,
			Forced: true, ScanKernel: kernel,
			ScanCost: scanCost, ChosenCost: scanCost,
			Elapsed: time.Since(start)}
		o.observe(d)
		return d
	}
	// Credit the scan with whatever data skipping the relation supports:
	// imprints at cache-line granularity, else zonemaps (Appendix E).
	var skip float64
	switch {
	case rel.Imprints != nil:
		// Conservatively use the widest query's checked fraction.
		checked := 0.0
		for _, pr := range preds {
			if f := rel.Imprints.CheckedFraction(pr.Lo, pr.Hi); f > checked {
				checked = f
			}
		}
		skip = 1 - checked
	case rel.Zonemap != nil:
		ranges := make([][2]int32, len(preds))
		for i, pr := range preds {
			ranges[i] = [2]int32{pr.Lo, pr.Hi}
		}
		skip = rel.Zonemap.SkipFraction(ranges)
	}
	var card float64
	if rel.Bitmap != nil {
		card = float64(rel.Bitmap.Cardinality())
	}
	scanCost, kernel := scanSide(rel, p, skip)
	path, chosen := model.ChooseWithScanCost(p, scanCost, rel.Index != nil, card)
	ic := model.ConcIndex(p)
	var indexCost float64
	if rel.Index != nil {
		indexCost = ic
	}
	d := Decision{
		Path:          path,
		Ratio:         ratioOf(ic, scanCost),
		Selectivities: sel,
		ScanKernel:    kernel,
		ScanCost:      scanCost,
		IndexCost:     indexCost,
		ChosenCost:    chosen,
	}
	applyRobust(snap.Robust, p, &d)
	d.Elapsed = time.Since(start)
	o.observe(d)
	return d
}

// Traditional is the pre-2017 optimizer: a selectivity threshold fixed
// when the system is tuned, applied per query with no concurrency input
// ("once the system is tuned it is a fixed point used for all queries").
type Traditional struct {
	// Threshold is the per-query selectivity above which it scans.
	Threshold float64
}

// NewTraditional tunes the fixed threshold for the machine the
// traditional way: the single-query break-even point.
func NewTraditional(n int, tupleSize float64, hw model.Hardware, dg model.Design) Traditional {
	s, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: tupleSize}, hw, dg)
	if !ok {
		if s == 0 {
			return Traditional{Threshold: 0} // scan always
		}
		return Traditional{Threshold: 1} // index always
	}
	return Traditional{Threshold: s}
}

// Decide applies the fixed threshold to the batch's mean per-query
// selectivity, ignoring concurrency entirely.
func (t Traditional) Decide(sel []float64) model.Path {
	if len(sel) == 0 {
		return model.PathScan
	}
	var mean float64
	for _, s := range sel {
		mean += s
	}
	mean /= float64(len(sel))
	if mean < t.Threshold {
		return model.PathIndex
	}
	return model.PathScan
}

// SinglePath is the degenerate policy modern systems without secondary
// indexes use: always the same access path (Figure 18's "Index Scan" and
// "Share Scan" bars).
type SinglePath struct{ Path model.Path }

// Decide returns the fixed path.
func (s SinglePath) Decide([]float64) model.Path { return s.Path }

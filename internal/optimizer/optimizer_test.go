package optimizer

import (
	"math/rand"
	"testing"
	"time"

	"fastcolumns/internal/exec"
	"fastcolumns/internal/index"
	"fastcolumns/internal/model"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/stats"
	"fastcolumns/internal/storage"
)

func testRelation(t *testing.T, n int, domain int32, withIndex bool) (*exec.Relation, *stats.Histogram) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	col := storage.NewColumn("v", data)
	rel := &exec.Relation{Column: col}
	if withIndex {
		rel.Index = index.Build(col, index.DefaultFanout)
	}
	h, err := stats.BuildHistogram(col, 64)
	if err != nil {
		t.Fatal(err)
	}
	return rel, h
}

func TestChooseFollowsModel(t *testing.T) {
	o := New(model.HW1())
	n := 100_000_000
	// Far below any crossover: index. Far above: scan.
	lo := o.Choose(n, 4, []float64{0.00001})
	if lo.Path != model.PathIndex || lo.Ratio >= 1 {
		t.Fatalf("low selectivity chose %v (ratio %v)", lo.Path, lo.Ratio)
	}
	hi := o.Choose(n, 4, []float64{0.3})
	if hi.Path != model.PathScan || hi.Ratio < 1 {
		t.Fatalf("high selectivity chose %v (ratio %v)", hi.Path, hi.Ratio)
	}
}

func TestConcurrencyFlipsDecision(t *testing.T) {
	// The paper's headline: the same per-query selectivity can favor the
	// index alone and the scan in a wide batch.
	o := New(model.HW1())
	n := 100_000_000
	s, ok := model.Crossover(1, model.Dataset{N: float64(n), TupleSize: 4}, o.HW(), o.Design())
	if !ok {
		t.Fatal("no single-query crossover")
	}
	probe := s / 2
	single := o.Choose(n, 4, []float64{probe})
	if single.Path != model.PathIndex {
		t.Fatalf("q=1 at s=%v should probe (ratio %v)", probe, single.Ratio)
	}
	batch := make([]float64, 256)
	for i := range batch {
		batch[i] = probe
	}
	wide := o.Choose(n, 4, batch)
	if wide.Path != model.PathScan {
		t.Fatalf("q=256 at s=%v should scan (ratio %v)", probe, wide.Ratio)
	}
}

func TestDecideUsesHistogramEstimates(t *testing.T) {
	rel, h := testRelation(t, 200000, 1<<20, true)
	o := New(model.HW1())
	// A ~30% range: the scan must win at this size.
	d := o.Decide(rel, h, []scan.Predicate{{Lo: 0, Hi: 300000}})
	if d.Path != model.PathScan {
		t.Fatalf("30%% query chose %v (ratio %v, est %v)", d.Path, d.Ratio, d.Selectivities)
	}
	if d.Selectivities[0] < 0.2 || d.Selectivities[0] > 0.4 {
		t.Fatalf("selectivity estimate %v implausible for a 30%% range", d.Selectivities[0])
	}
	if d.Forced {
		t.Fatal("decision should not be forced with an index present")
	}
}

func TestDecideForcedWithoutIndex(t *testing.T) {
	rel, h := testRelation(t, 10000, 1000, false)
	o := New(model.HW1())
	d := o.Decide(rel, h, []scan.Predicate{{Lo: 0, Hi: 0}})
	if d.Path != model.PathScan || !d.Forced {
		t.Fatalf("missing index must force a scan: %+v", d)
	}
}

func TestDecisionIsFast(t *testing.T) {
	// Section 3: APS evaluation must stay microseconds even for large
	// batches, or optimization time becomes the bottleneck.
	o := New(model.HW1())
	sel := make([]float64, 640)
	for i := range sel {
		sel[i] = 0.001
	}
	start := time.Now()
	const trials = 1000
	for i := 0; i < trials; i++ {
		o.Choose(100_000_000, 4, sel)
	}
	per := time.Since(start) / trials
	if per > 200*time.Microsecond {
		t.Fatalf("decision took %v per batch; the paper requires microseconds", per)
	}
}

func TestTraditionalIgnoresConcurrency(t *testing.T) {
	n := 100_000_000
	tr := NewTraditional(n, 4, model.HW1(), model.FittedDesign())
	if tr.Threshold <= 0 || tr.Threshold >= 1 {
		t.Fatalf("threshold %v not tuned", tr.Threshold)
	}
	below := tr.Threshold / 2
	one := []float64{below}
	many := make([]float64, 512)
	for i := range many {
		many[i] = below
	}
	if tr.Decide(one) != model.PathIndex || tr.Decide(many) != model.PathIndex {
		t.Fatal("traditional optimizer must make the same choice at any concurrency")
	}
	// The APS optimizer disagrees at high concurrency — this is the gap
	// Figure 18 exposes.
	o := New(model.HW1())
	if o.Choose(n, 4, many).Path != model.PathScan {
		t.Skip("model crossover moved; gap scenario not at this point")
	}
}

func TestTraditionalEmptyBatch(t *testing.T) {
	tr := Traditional{Threshold: 0.01}
	if tr.Decide(nil) != model.PathScan {
		t.Fatal("empty batch should default to scan")
	}
}

func TestSinglePathPolicies(t *testing.T) {
	if (SinglePath{Path: model.PathIndex}).Decide([]float64{0.9}) != model.PathIndex {
		t.Fatal("single-path index policy deviated")
	}
	if (SinglePath{Path: model.PathScan}).Decide([]float64{0.0001}) != model.PathScan {
		t.Fatal("single-path scan policy deviated")
	}
}

func TestColumnGroupShiftsDecision(t *testing.T) {
	// Observation 2.3 at the optimizer level: the same estimate that scans
	// on a narrow column can probe on a wide column-group.
	o := New(model.HW1())
	n := 100_000_000
	sNarrow, _ := model.Crossover(4, model.Dataset{N: float64(n), TupleSize: 4}, o.HW(), o.Design())
	sWide, _ := model.Crossover(4, model.Dataset{N: float64(n), TupleSize: 40}, o.HW(), o.Design())
	if sWide <= sNarrow {
		t.Fatalf("wide crossover %v not above narrow %v", sWide, sNarrow)
	}
	mid := (sNarrow + sWide) / 2
	sel := []float64{mid, mid, mid, mid}
	if o.Choose(n, 4, sel).Path != model.PathScan {
		t.Fatal("narrow layout should scan at the midpoint")
	}
	if o.Choose(n, 40, sel).Path != model.PathIndex {
		t.Fatal("wide layout should probe at the midpoint")
	}
}

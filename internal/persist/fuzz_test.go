package persist

import (
	"bytes"
	"testing"

	"fastcolumns/internal/storage"
)

// FuzzReadColumn feeds arbitrary bytes to the column reader: it must
// reject garbage with an error, never panic or over-allocate, and accept
// exactly what WriteColumn produced.
func FuzzReadColumn(f *testing.F) {
	var good bytes.Buffer
	_ = WriteColumn(&good, []storage.Value{1, -2, 3, 1 << 30})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FCOL"))
	f.Add([]byte("FCOLxxxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		values, err := ReadColumn(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must round-trip byte-identically.
		var out bytes.Buffer
		if err := WriteColumn(&out, values); err != nil {
			t.Fatalf("rewrite of accepted column failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted column does not round-trip")
		}
	})
}

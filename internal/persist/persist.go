// Package persist stores columns and tables on disk so read stores
// survive restarts: a little-endian binary column format with a CRC32
// footer, plus a JSON table manifest describing the attribute layout
// (pure columns vs column-groups). Access structures (indexes, zonemaps,
// histograms) are rebuilt after load — they derive from the data and
// rebuilding at memory speed is cheaper than validating staleness.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fastcolumns/internal/storage"
)

// magic identifies a FastColumns column file.
var magic = [4]byte{'F', 'C', 'O', 'L'}

// formatVersion is bumped on incompatible layout changes.
const formatVersion uint16 = 1

// WriteColumn serializes values to w: header, little-endian payload,
// CRC32 (Castagnoli) footer over the payload.
func WriteColumn(w io.Writer, values []storage.Value) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, formatVersion); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(values))); err != nil {
		return err
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	payload := io.MultiWriter(bw, crc)
	buf := make([]byte, 4)
	for _, v := range values {
		binary.LittleEndian.PutUint32(buf, uint32(v))
		if _, err := payload.Write(buf); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadColumn deserializes a column written by WriteColumn, verifying the
// magic, version, and checksum.
func ReadColumn(r io.Reader) ([]storage.Value, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("persist: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("persist: not a FastColumns column file")
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d", version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxCount = 1 << 33 // 8G tuples: a sanity bound against corrupt headers
	if count > maxCount {
		return nil, fmt.Errorf("persist: implausible tuple count %d", count)
	}
	values := make([]storage.Value, count)
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	buf := make([]byte, 4)
	for i := range values {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("persist: truncated payload at tuple %d: %w", i, err)
		}
		_, _ = crc.Write(buf) // hash.Hash.Write never returns an error
		values[i] = storage.Value(binary.LittleEndian.Uint32(buf))
	}
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("persist: missing checksum: %w", err)
	}
	if got := crc.Sum32(); got != want {
		return nil, fmt.Errorf("persist: checksum mismatch (%08x != %08x)", got, want)
	}
	return values, nil
}

// SaveColumnFile writes values to path atomically (write temp + rename).
func SaveColumnFile(path string, values []storage.Value) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteColumn(f, values); err != nil {
		_ = f.Close()      // best-effort cleanup; the write error wins
		_ = os.Remove(tmp) // best-effort cleanup of the temp file
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the temp file
		return err
	}
	return os.Rename(tmp, path)
}

// LoadColumnFile reads a column file.
func LoadColumnFile(path string) ([]storage.Value, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadColumn(f)
}

// Manifest describes a persisted table.
type Manifest struct {
	Name    string     `json:"name"`
	Rows    int        `json:"rows"`
	Columns []string   `json:"columns"` // contiguous attributes
	Groups  [][]string `json:"groups"`  // column-group layouts
}

// SaveTable persists a storage table into dir: one .col file per
// attribute (group members are stored as plain columns and re-interleaved
// on load) plus manifest.json.
func SaveTable(dir string, t *storage.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := Manifest{Name: t.Name(), Rows: t.Rows()}
	man.Columns = t.ColumnNames() // refined below: group members recorded separately
	grouped := map[string]bool{}
	for _, g := range t.Groups() {
		names := g.Names()
		man.Groups = append(man.Groups, names)
		for _, n := range names {
			grouped[n] = true
		}
	}
	var plain []string
	for _, n := range man.Columns {
		if !grouped[n] {
			plain = append(plain, n)
		}
	}
	man.Columns = plain

	for _, name := range t.ColumnNames() {
		col, err := t.Column(name)
		if err != nil {
			return err
		}
		values := make([]storage.Value, col.Len())
		for i := range values {
			values[i] = col.Get(i)
		}
		if err := SaveColumnFile(filepath.Join(dir, name+".col"), values); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644)
}

// LoadTable reconstructs a storage table from dir.
func LoadTable(dir string) (*storage.Table, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("persist: bad manifest: %w", err)
	}
	t := storage.NewTable(man.Name)
	for _, name := range man.Columns {
		values, err := LoadColumnFile(filepath.Join(dir, name+".col"))
		if err != nil {
			return nil, err
		}
		if err := t.AddColumn(name, values); err != nil {
			return nil, err
		}
	}
	for _, names := range man.Groups {
		cols := make([][]storage.Value, len(names))
		for j, name := range names {
			values, err := LoadColumnFile(filepath.Join(dir, name+".col"))
			if err != nil {
				return nil, err
			}
			cols[j] = values
		}
		if err := t.AddGroup(names, cols); err != nil {
			return nil, err
		}
	}
	if t.Rows() != man.Rows {
		return nil, fmt.Errorf("persist: manifest says %d rows, files hold %d", man.Rows, t.Rows())
	}
	return t, nil
}

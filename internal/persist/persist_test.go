package persist

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fastcolumns/internal/storage"
)

func randomValues(seed int64, n int) []storage.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]storage.Value, n)
	for i := range out {
		out[i] = rng.Int31() - 1<<30 // negatives too
	}
	return out
}

func TestColumnRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1024, 100000} {
		values := randomValues(int64(n), n)
		var buf bytes.Buffer
		if err := WriteColumn(&buf, values); err != nil {
			t.Fatal(err)
		}
		got, err := ReadColumn(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(values) {
			t.Fatalf("n=%d: got %d values", n, len(got))
		}
		for i := range values {
			if got[i] != values[i] {
				t.Fatalf("n=%d: value %d mismatch", n, i)
			}
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	values := randomValues(1, 1000)
	var buf bytes.Buffer
	if err := WriteColumn(&buf, values); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := ReadColumn(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncate: must fail cleanly.
	if _, err := ReadColumn(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Wrong magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := ReadColumn(bytes.NewReader(bad2)); err == nil {
		t.Fatal("wrong magic accepted")
	}
	// Implausible count in an otherwise-valid header.
	bad3 := append([]byte(nil), good[:6]...)
	bad3 = append(bad3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := ReadColumn(bytes.NewReader(bad3)); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestColumnFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.col")
	values := randomValues(2, 5000)
	if err := SaveColumnFile(path, values); err != nil {
		t.Fatal(err)
	}
	got, err := LoadColumnFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// No temp file left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestTableRoundTripWithGroups(t *testing.T) {
	tbl := storage.NewTable("orders")
	a := randomValues(3, 2000)
	b := randomValues(4, 2000)
	c := randomValues(5, 2000)
	if err := tbl.AddColumn("a", a); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddGroup([]string{"b", "c"}, [][]storage.Value{b, c}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveTable(dir, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "orders" || got.Rows() != 2000 {
		t.Fatalf("loaded %q with %d rows", got.Name(), got.Rows())
	}
	for name, want := range map[string][]storage.Value{"a": a, "b": b, "c": c} {
		col, err := got.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if col.Get(i) != want[i] {
				t.Fatalf("column %s row %d mismatch", name, i)
			}
		}
	}
	// The group layout survived: b is strided in the loaded table.
	colB, _ := got.Column("b")
	if colB.Contiguous() {
		t.Fatal("group member loaded as a plain column")
	}
}

func TestLoadTableErrors(t *testing.T) {
	if _, err := LoadTable(t.TempDir()); err == nil {
		t.Fatal("missing manifest accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
	if _, err := LoadTable(dir); err == nil {
		t.Fatal("bad manifest accepted")
	}
	// Manifest naming a missing column file.
	os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"name":"t","rows":1,"columns":["ghost"]}`), 0o644)
	if _, err := LoadTable(dir); err == nil {
		t.Fatal("missing column file accepted")
	}
}

func TestManifestRowMismatch(t *testing.T) {
	tbl := storage.NewTable("t")
	if err := tbl.AddColumn("v", randomValues(6, 10)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveTable(dir, tbl); err != nil {
		t.Fatal(err)
	}
	// Tamper with the manifest row count.
	raw, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
	tampered := bytes.Replace(raw, []byte(`"rows": 10`), []byte(`"rows": 99`), 1)
	os.WriteFile(filepath.Join(dir, "manifest.json"), tampered, 0o644)
	if _, err := LoadTable(dir); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

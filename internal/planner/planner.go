// Package planner orders conjunctive select predicates: the classic
// cost-based select-ordering decision the paper's Section 6 notes is
// complementary to access path selection. The most selective predicate
// drives the access path (where APS arbitrates scan vs index vs bitmap);
// the remaining predicates run as residual filters over the driver's
// survivors, cheapest first.
package planner

import (
	"errors"
	"sort"

	"fastcolumns/internal/scan"
)

// Filter is one conjunct: a range predicate over a named attribute.
type Filter struct {
	Attr string
	Pred scan.Predicate
}

// Plan is an ordered conjunctive select.
type Plan struct {
	// Driver is the filter that runs through an access path.
	Driver Filter
	// DriverSelectivity is the driver's estimated selectivity.
	DriverSelectivity float64
	// Residuals are the remaining filters in ascending estimated
	// selectivity (reject early).
	Residuals []Filter
}

// Estimator returns the estimated selectivity of a filter in [0, 1].
// Attributes without statistics should return 1 (no information: assume
// the filter rejects nothing and never let it drive).
type Estimator func(Filter) float64

// Order builds the plan: the filter with the lowest estimated
// selectivity drives, the rest become residuals, cheapest first.
func Order(filters []Filter, estimate Estimator) (Plan, error) {
	if len(filters) == 0 {
		return Plan{}, errors.New("planner: no filters")
	}
	type ranked struct {
		f Filter
		s float64
	}
	rs := make([]ranked, len(filters))
	for i, f := range filters {
		s := estimate(f)
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		rs[i] = ranked{f: f, s: s}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].s < rs[j].s })
	p := Plan{Driver: rs[0].f, DriverSelectivity: rs[0].s}
	for _, r := range rs[1:] {
		p.Residuals = append(p.Residuals, r.f)
	}
	return p, nil
}

// CombinedSelectivity estimates the conjunction's selectivity under the
// usual independence assumption — what a cardinality estimator would
// hand the next operator.
func CombinedSelectivity(filters []Filter, estimate Estimator) float64 {
	s := 1.0
	for _, f := range filters {
		fs := estimate(f)
		if fs < 0 {
			fs = 0
		}
		if fs > 1 {
			fs = 1
		}
		s *= fs
	}
	return s
}

package planner

import (
	"math"
	"testing"

	"fastcolumns/internal/scan"
)

func est(m map[string]float64) Estimator {
	return func(f Filter) float64 {
		if s, ok := m[f.Attr]; ok {
			return s
		}
		return 1
	}
}

func TestOrderPicksMostSelectiveDriver(t *testing.T) {
	filters := []Filter{
		{Attr: "a", Pred: scan.Predicate{Lo: 0, Hi: 10}},
		{Attr: "b", Pred: scan.Predicate{Lo: 5, Hi: 5}},
		{Attr: "c", Pred: scan.Predicate{Lo: 0, Hi: 100}},
	}
	p, err := Order(filters, est(map[string]float64{"a": 0.3, "b": 0.001, "c": 0.8}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Driver.Attr != "b" {
		t.Fatalf("driver = %s, want b", p.Driver.Attr)
	}
	if p.DriverSelectivity != 0.001 {
		t.Fatalf("driver selectivity = %v", p.DriverSelectivity)
	}
	if len(p.Residuals) != 2 || p.Residuals[0].Attr != "a" || p.Residuals[1].Attr != "c" {
		t.Fatalf("residual order = %v", p.Residuals)
	}
}

func TestOrderStableOnTies(t *testing.T) {
	filters := []Filter{{Attr: "x"}, {Attr: "y"}}
	p, err := Order(filters, est(map[string]float64{"x": 0.5, "y": 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Driver.Attr != "x" {
		t.Fatalf("tie should keep input order, driver = %s", p.Driver.Attr)
	}
}

func TestOrderUnknownAttributesNeverDrive(t *testing.T) {
	filters := []Filter{
		{Attr: "nostats"},
		{Attr: "known"},
	}
	p, err := Order(filters, est(map[string]float64{"known": 0.9}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Driver.Attr != "known" {
		t.Fatalf("stat-less filter drove the plan: %s", p.Driver.Attr)
	}
}

func TestOrderEmpty(t *testing.T) {
	if _, err := Order(nil, est(nil)); err == nil {
		t.Fatal("empty conjunction accepted")
	}
}

func TestOrderClampsEstimates(t *testing.T) {
	p, err := Order([]Filter{{Attr: "a"}}, est(map[string]float64{"a": -3}))
	if err != nil {
		t.Fatal(err)
	}
	if p.DriverSelectivity != 0 {
		t.Fatalf("negative estimate not clamped: %v", p.DriverSelectivity)
	}
}

func TestCombinedSelectivity(t *testing.T) {
	filters := []Filter{{Attr: "a"}, {Attr: "b"}}
	got := CombinedSelectivity(filters, est(map[string]float64{"a": 0.1, "b": 0.5}))
	if math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("combined = %v, want 0.05", got)
	}
	if got := CombinedSelectivity(nil, est(nil)); got != 1 {
		t.Fatalf("empty conjunction selectivity = %v", got)
	}
}

//go:build !race

// Package race reports whether the race detector instruments this build.
// Allocation-regression tests consult it: instrumented builds allocate
// shadow state on operations that are allocation-free in production, so
// testing.AllocsPerRun guards only hold without -race.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false

// Package refit closes the drift loop: a background controller watches
// the drift accounting in internal/obs, and when the fitted cost-model
// constants go stale on this host — a (path, selectivity-band) cell's
// measured/predicted ratio deviating from the global one past the
// threshold — it re-runs the Appendix C Nelder–Mead fit (internal/fit)
// over live observations harvested from the decision-trace ring and
// hot-swaps the optimizer's design via its atomic snapshot. Serving
// never pauses: in-flight decisions finish on the snapshot they loaded,
// the next decision sees the new constants.
//
// The loop is hardened against itself. Candidate fits are validated on a
// deterministic holdout of the harvested observations and rejected when
// their residuals are no better than the incumbent's — a fit over noisy
// or unrepresentative traces must not replace constants that still work.
// Attempts are rate-limited by a cooldown after any verdict and by
// exponential backoff across consecutive failures, and the whole attempt
// runs under a recover with a fault-injection site ("fit.refit"), so a
// panicking or wedged fitter degrades to the last good design instead of
// taking down the engine.
package refit

import (
	"fmt"
	"math"
	"sync"
	"time"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/optimizer"
	rt "fastcolumns/internal/runtime"
)

// Outcome is the verdict of one controller poll cycle.
type Outcome string

const (
	// OutcomeIdle: the drift report is healthy; nothing to do.
	OutcomeIdle Outcome = "idle"
	// OutcomeCooldown: drift is stale but a recent attempt's cooldown or
	// backoff window has not expired yet.
	OutcomeCooldown Outcome = "cooldown"
	// OutcomeSkipped: drift is stale but the trace ring does not yet hold
	// enough usable observations to fit from.
	OutcomeSkipped Outcome = "skipped"
	// OutcomeSwapped: a candidate fit beat the incumbent on the holdout
	// and was hot-swapped into the optimizer.
	OutcomeSwapped Outcome = "swapped"
	// OutcomeRejected: the candidate's holdout residuals were no better
	// than the incumbent's; the last good design stays.
	OutcomeRejected Outcome = "rejected"
	// OutcomeFailed: the fitter errored or panicked; the last good design
	// stays and the next attempt waits out the backoff.
	OutcomeFailed Outcome = "failed"
)

// Options tunes the controller. The zero value is production-ready.
type Options struct {
	// Interval is the drift-report poll cadence (default 2s).
	Interval time.Duration
	// Cooldown is the minimum gap after a swap or a rejection before the
	// controller attempts again (default 30s): hysteresis, so one noisy
	// stale verdict cannot thrash the design back and forth.
	Cooldown time.Duration
	// Backoff is the initial retry delay after a failed attempt, doubling
	// per consecutive failure (default Interval); after MaxRetries
	// consecutive failures the controller falls back to Cooldown.
	Backoff time.Duration
	// MaxRetries bounds consecutive failure retries (default 3).
	MaxRetries int
	// MinObservations is how many usable harvested observations a fit
	// needs before it runs (default 16).
	MinObservations int
	// HoldoutEvery diverts every k-th harvested observation into the
	// validation holdout instead of the training set (default 4).
	HoldoutEvery int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = o.Interval
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.MinObservations <= 0 {
		o.MinObservations = 16
	}
	if o.HoldoutEvery <= 1 {
		o.HoldoutEvery = 4
	}
	return o
}

// Controller watches one optimizer/observer pair. Build with New, start
// the background loop with Start (or drive it synchronously with Tick in
// tests), stop with Close.
type Controller struct {
	opt *optimizer.Optimizer
	ob  *obs.Observer
	o   Options

	count    *obs.Counter
	rejected *obs.Counter
	failures *obs.Counter
	duration *obs.Histogram
	lastUnix *obs.Gauge

	mu        sync.Mutex
	st        obs.RefitStatus
	retries   int
	notBefore time.Time
	inFlight  bool

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a controller over the optimizer whose snapshot it will swap
// and the observer whose drift report, trace ring, and metrics registry
// it reads and writes.
func New(opt *optimizer.Optimizer, ob *obs.Observer, o Options) *Controller {
	c := &Controller{
		opt:      opt,
		ob:       ob,
		o:        o.withDefaults(),
		count:    ob.Metrics.Counter("fit.refit.count"),
		rejected: ob.Metrics.Counter("fit.refit.rejected"),
		failures: ob.Metrics.Counter("fit.refit.failures"),
		duration: ob.Metrics.Histogram("fit.refit.duration"),
		lastUnix: ob.Metrics.Gauge("fit.refit.last_unix_ns"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.st.Enabled = true
	c.st.DesignVersion = opt.Version()
	ob.SetRefitStatus(c.st)
	return c
}

// Status returns the controller's current externally visible state.
func (c *Controller) Status() obs.RefitStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Start launches the background poll loop. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		rt.Go(func() {
			defer close(c.done)
			ticker := time.NewTicker(c.o.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-c.stop:
					return
				case now := <-ticker.C:
					c.Tick(now)
				}
			}
		})
	})
}

// Close stops the background loop and waits for it to exit. A Close
// during a wedged attempt returns only when the attempt does — callers
// that cannot wait should not have armed a Delay fault at fit.refit.
func (c *Controller) Close() {
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait for
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// Tick runs one poll cycle synchronously: consult the drift report, and
// when it says the constants are stale (and no cooldown window is open),
// attempt a validated re-fit. It returns what happened; tests drive the
// controller through here for determinism.
func (c *Controller) Tick(now time.Time) Outcome {
	// The mutex guards only the bookkeeping. The attempt itself — fault
	// hooks that can sleep, a full fit over the harvested trace — runs
	// with the lock released, so Status() and Close() stay responsive
	// during a slow re-fit; inFlight keeps concurrent Ticks from running
	// overlapping attempts (the overlapping caller sees OutcomeIdle).
	c.mu.Lock()
	if c.inFlight {
		c.mu.Unlock()
		return OutcomeIdle
	}
	if now.Before(c.notBefore) {
		c.mu.Unlock()
		return OutcomeCooldown
	}
	if !c.ob.Drift.Report().Stale {
		c.mu.Unlock()
		return OutcomeIdle
	}
	c.inFlight = true
	c.mu.Unlock()

	start := time.Now()
	out, rejectReason, err := c.attempt()
	elapsed := time.Since(start)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.inFlight = false

	switch out {
	case OutcomeSkipped:
		// Not enough data is not a failure: try again next interval, when
		// the ring has accumulated more batches.
		c.notBefore = now.Add(c.o.Interval)
		return out
	case OutcomeFailed:
		c.retries++
		if c.retries <= c.o.MaxRetries {
			c.notBefore = now.Add(c.o.Backoff << (c.retries - 1))
		} else {
			c.notBefore = now.Add(c.o.Cooldown)
			c.retries = 0
		}
		c.failures.Add(1)
	default: // swapped or rejected
		c.retries = 0
		c.notBefore = now.Add(c.o.Cooldown)
		if out == OutcomeRejected {
			c.rejected.Add(1)
		}
	}

	c.count.Add(1)
	c.duration.Record(elapsed.Nanoseconds())
	c.lastUnix.Set(start.UnixNano())

	c.st.Attempts++
	c.st.LastAt = start
	c.st.LastDuration = elapsed
	c.st.LastOutcome = string(out)
	c.st.DesignVersion = c.opt.Version()
	switch out {
	case OutcomeSwapped:
		c.st.Swaps++
	case OutcomeRejected:
		c.st.Rejected++
		c.st.LastRejectReason = rejectReason
	case OutcomeFailed:
		c.st.Failures++
		if err != nil {
			c.st.LastError = err.Error()
		}
	}
	c.ob.SetRefitStatus(c.st)
	return out
}

// attempt runs one harvest → fit → validate → swap cycle. A panic
// anywhere inside (the fit.refit chaos site, or a genuine fitter bug)
// is converted into OutcomeFailed: the last good design keeps serving.
func (c *Controller) attempt() (out Outcome, rejectReason string, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = OutcomeFailed, fmt.Errorf("refit: recovered panic: %v", r)
		}
	}()
	if err := faultinject.Fire("fit.refit"); err != nil {
		return OutcomeFailed, "", err
	}

	all := Harvest(c.ob.Trace.Snapshot(0))
	if len(all) < c.o.MinObservations {
		return OutcomeSkipped, "", nil
	}
	train, holdout := split(all, c.o.HoldoutEvery)

	snap := c.opt.Snapshot()
	res, err := fit.Fit(train, snap.HW, snap.Design)
	if err != nil {
		return OutcomeFailed, "", err
	}
	candHW, candDg := candidate(res, train, snap.HW, snap.Design)

	curErr := fit.HoldoutError(holdout, snap.HW, snap.Design)
	candErr := fit.HoldoutError(holdout, candHW, candDg)
	if math.IsNaN(candErr) || (!math.IsNaN(curErr) && candErr >= curErr) {
		return OutcomeRejected,
			fmt.Sprintf("holdout residuals did not improve: candidate %.4g vs incumbent %.4g over %d observations",
				candErr, curErr, len(holdout)), nil
	}

	c.opt.SwapModel(candHW, candDg)
	// The drift evidence was measured against the old constants; keeping
	// it would judge the fresh fit by its predecessor's mistakes.
	c.ob.Drift.Reset()
	return OutcomeSwapped, "", nil
}

// split deals every k-th observation into the holdout, the rest into the
// training set. Deterministic, so a re-run over the same trace makes the
// same validation decision. A degenerate split (either side empty) falls
// back to validating on the training data — weaker, but still a
// residual check.
func split(all []fit.Observation, k int) (train, holdout []fit.Observation) {
	for i, o := range all {
		if i%k == k-1 {
			holdout = append(holdout, o)
		} else {
			train = append(train, o)
		}
	}
	if len(train) == 0 || len(holdout) == 0 {
		return all, all
	}
	return train, holdout
}

// candidate folds a fit result into a (hardware, design) hypothesis,
// preserving every stage the harvest had no evidence for: FitResult
// zeroes the constants of stages it did not run (e.g. no index
// observations leaves SortFitScale at 0, silently disabling the sorting
// correction), so each stage's constants are taken from the result only
// when the training set actually measured that path.
func candidate(res fit.FitResult, train []fit.Observation, hw model.Hardware, base model.Design) (model.Hardware, model.Design) {
	var haveScan, haveIndex, havePacked bool
	for _, o := range train {
		if !math.IsNaN(o.ScanSec) && o.ScanSec > 0 {
			haveScan = true
		}
		if !math.IsNaN(o.IndexSec) && o.IndexSec > 0 {
			haveIndex = true
		}
		if !math.IsNaN(o.PackedScanSec) && o.PackedScanSec > 0 {
			havePacked = true
		}
	}
	dg := base
	if haveScan {
		dg.Alpha = res.Alpha
		hw.Pipelining = res.Pipelining
	}
	if haveIndex {
		dg.SortFitScale = res.SortFitScale
		dg.SortFitExp = res.SortFitExp
	}
	if havePacked {
		if res.ScanWidth > 0 {
			dg.ScanSIMDWidth = res.ScanWidth
		}
		if res.PackedAlpha > 0 {
			dg.PackedAlpha = res.PackedAlpha
		}
	}
	return hw, dg
}

// Harvest converts decision-trace entries into fit observations: each
// executed batch contributes its measured wall time on the path it ran,
// with the other paths' latencies marked unmeasured (NaN). Bitmap
// batches are dropped (the fitter has no bitmap stage), as are entries
// without a usable shape (empty batch, zero relation, no measured
// elapsed time — e.g. entries recorded before this field existed).
// Forced scans are kept: a measurement is a measurement, however the
// path was chosen.
func Harvest(entries []obs.TraceEntry) []fit.Observation {
	nan := math.NaN()
	out := make([]fit.Observation, 0, len(entries))
	for _, e := range entries {
		if e.Q <= 0 || e.N <= 0 || e.TupleSize <= 0 || e.Elapsed <= 0 {
			continue
		}
		o := fit.Observation{
			Q:           e.Q,
			Selectivity: e.SelTotal / float64(e.Q),
			N:           float64(e.N),
			TupleSize:   e.TupleSize,
			ScanSec:     nan, IndexSec: nan, PackedScanSec: nan,
		}
		sec := e.Elapsed.Seconds()
		switch {
		case e.Path == model.PathIndex.String():
			o.IndexSec = sec
		case e.Path == model.PathScan.String() && e.Kernel == optimizer.KernelSWAR:
			o.PackedScanSec = sec
		case e.Path == model.PathScan.String():
			o.ScanSec = sec
		default:
			continue
		}
		out = append(out, o)
	}
	return out
}

package refit

import (
	"math"
	"strings"
	"testing"
	"time"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/fit"
	"fastcolumns/internal/model"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/optimizer"
)

// scanEntry fabricates one trace entry for a shared-scan batch whose
// measured time is the given design's own prediction — i.e. a host on
// which that design is exactly right.
func scanEntry(q int, sel float64, n int, hw model.Hardware, dg model.Design) obs.TraceEntry {
	p := model.Params{
		Workload: model.Uniform(q, sel),
		Dataset:  model.Dataset{N: float64(n), TupleSize: 4},
		Hardware: hw,
		Design:   dg,
	}
	e := obs.TraceEntry{
		Table: "t", Attr: "a",
		Q: q, N: n, TupleSize: 4,
		Path: model.PathScan.String(), Kernel: optimizer.KernelShared,
		Elapsed: time.Duration(model.SharedScan(p) * float64(time.Second)),
	}
	e.SetSelectivities(p.Workload.Selectivities)
	return e
}

// primeStaleDrift records diverging per-cell ratios so Report().Stale
// flips: one band runs at the global pace, another 8x over it.
func primeStaleDrift(d *obs.Drift) {
	for i := 0; i < 4; i++ {
		d.Record("scan", 1e-5, 1.0, 1.0)
		d.Record("scan", 0.5, 1.0, 8.0)
	}
}

// fillTrace appends a sweep of scan batches measured under trueHW/trueDg.
func fillTrace(t *obs.DecisionTrace, trueHW model.Hardware, trueDg model.Design) {
	for _, q := range []int{1, 4, 16, 64} {
		for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
			t.Append(scanEntry(q, sel, 1_000_000, trueHW, trueDg))
		}
	}
}

func TestHarvest(t *testing.T) {
	hw, dg := model.HW1(), model.FittedDesign()
	entries := []obs.TraceEntry{
		scanEntry(4, 0.1, 1000, hw, dg),
		{Q: 2, N: 1000, TupleSize: 4, Path: model.PathIndex.String(),
			Elapsed: time.Millisecond, SelTotal: 0.02},
		{Q: 2, N: 1000, TupleSize: 4, Path: model.PathScan.String(),
			Kernel: optimizer.KernelSWAR, Elapsed: time.Millisecond, SelTotal: 0.02},
		{Q: 2, N: 1000, TupleSize: 4, Path: model.PathBitmap.String(),
			Elapsed: time.Millisecond}, // no fitter stage: dropped
		{Q: 0, N: 1000, TupleSize: 4, Path: "scan", Elapsed: time.Millisecond}, // empty batch
		{Q: 2, N: 1000, TupleSize: 4, Path: "scan"},                            // no measurement
	}
	got := Harvest(entries)
	if len(got) != 3 {
		t.Fatalf("harvested %d observations, want 3: %+v", len(got), got)
	}
	if math.IsNaN(got[0].ScanSec) || !math.IsNaN(got[0].IndexSec) || !math.IsNaN(got[0].PackedScanSec) {
		t.Fatalf("scan entry mapped wrong: %+v", got[0])
	}
	if math.IsNaN(got[1].IndexSec) || !math.IsNaN(got[1].ScanSec) {
		t.Fatalf("index entry mapped wrong: %+v", got[1])
	}
	if math.IsNaN(got[2].PackedScanSec) || !math.IsNaN(got[2].ScanSec) {
		t.Fatalf("swar entry mapped wrong: %+v", got[2])
	}
	if !model.ApproxEq(got[1].Selectivity, 0.01) {
		t.Fatalf("selectivity = mean of batch, got %v", got[1].Selectivity)
	}
}

func TestSplitDeterministicAndDegenerate(t *testing.T) {
	all := make([]fit.Observation, 10)
	for i := range all {
		all[i].Q = i
	}
	train, holdout := split(all, 4)
	if len(train) != 8 || len(holdout) != 2 {
		t.Fatalf("split sizes %d/%d, want 8/2", len(train), len(holdout))
	}
	if holdout[0].Q != 3 || holdout[1].Q != 7 {
		t.Fatalf("holdout picked %d,%d, want every 4th (3,7)", holdout[0].Q, holdout[1].Q)
	}
	// Too small to split: validate on the training data itself.
	train, holdout = split(all[:2], 4)
	if len(train) != 2 || len(holdout) != 2 {
		t.Fatalf("degenerate split %d/%d, want 2/2", len(train), len(holdout))
	}
}

func TestTickIdleWithoutDrift(t *testing.T) {
	ob := obs.NewObserver(64)
	c := New(optimizer.New(model.HW1()), ob, Options{})
	if out := c.Tick(time.Now()); out != OutcomeIdle {
		t.Fatalf("tick on healthy drift = %v, want idle", out)
	}
	if st := c.Status(); !st.Enabled || st.Attempts != 0 {
		t.Fatalf("idle tick mutated status: %+v", st)
	}
}

func TestTickSkipsOnThinTrace(t *testing.T) {
	ob := obs.NewObserver(64)
	c := New(optimizer.New(model.HW1()), ob, Options{MinObservations: 16})
	primeStaleDrift(ob.Drift)
	ob.Trace.Append(scanEntry(4, 0.1, 1000, model.HW1(), model.FittedDesign()))
	if out := c.Tick(time.Now()); out != OutcomeSkipped {
		t.Fatalf("tick with 1 observation = %v, want skipped", out)
	}
}

func TestRefitSwapsOnStaleDrift(t *testing.T) {
	// The host behaves like the paper's fitted constants, but the
	// optimizer was started with a deliberately wrong alpha: live traces
	// carry the truth, so the re-fit must recover it and hot-swap.
	trueHW, trueDg := model.HW1(), model.FittedDesign()
	staleDg := trueDg
	staleDg.Alpha = 0.5
	opt := optimizer.NewWithDesign(trueHW, staleDg)
	ob := obs.NewObserver(64)
	primeStaleDrift(ob.Drift)
	fillTrace(ob.Trace, trueHW, trueDg)

	c := New(opt, ob, Options{Cooldown: time.Hour})
	v0 := opt.Version()
	out := c.Tick(time.Now())
	if out != OutcomeSwapped {
		t.Fatalf("tick = %v, want swapped (status %+v)", out, c.Status())
	}
	if opt.Version() != v0+1 {
		t.Fatalf("version %d, want %d", opt.Version(), v0+1)
	}
	got := opt.Design()
	if math.Abs(got.Alpha-trueDg.Alpha) > math.Abs(staleDg.Alpha-trueDg.Alpha) {
		t.Fatalf("refit did not move alpha towards truth: got %v (stale %v, true %v)",
			got.Alpha, staleDg.Alpha, trueDg.Alpha)
	}
	// Stages the harvest had no evidence for keep their constants.
	if !model.ApproxEq(got.SortFitScale, staleDg.SortFitScale) || !model.ApproxEq(got.SortFitExp, staleDg.SortFitExp) {
		t.Fatalf("index-stage constants changed without index observations: %+v", got)
	}
	// The old evidence was judged against the old constants: reset.
	if rep := ob.Drift.Report(); len(rep.Cells) != 0 {
		t.Fatalf("drift not reset after swap: %d cells", len(rep.Cells))
	}
	st := c.Status()
	if st.Swaps != 1 || st.Attempts != 1 || st.LastOutcome != string(OutcomeSwapped) {
		t.Fatalf("status after swap: %+v", st)
	}
	if ob.Metrics.Counter("fit.refit.count").Load() != 1 {
		t.Fatal("fit.refit.count not incremented")
	}
	// Hysteresis: stale again within the cooldown stays on the new design.
	primeStaleDrift(ob.Drift)
	if out := c.Tick(time.Now()); out != OutcomeCooldown {
		t.Fatalf("tick within cooldown = %v, want cooldown", out)
	}
}

func TestRefitRejectsWorseCandidate(t *testing.T) {
	// Train positions follow a foreign design while every holdout
	// position (the deterministic every-4th slot) follows the incumbent
	// exactly: the candidate learns the foreign constants and must lose
	// the holdout comparison, leaving the last good design in place.
	hw := model.HW1()
	incumbent := model.FittedDesign()
	foreign := incumbent
	foreign.Alpha = 40
	opt := optimizer.NewWithDesign(hw, incumbent)
	ob := obs.NewObserver(64)
	primeStaleDrift(ob.Drift)
	i := 0
	for _, q := range []int{1, 4, 16, 64} {
		for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
			dg := foreign
			if i%4 == 3 {
				dg = incumbent
			}
			ob.Trace.Append(scanEntry(q, sel, 1_000_000, hw, dg))
			i++
		}
	}
	c := New(opt, ob, Options{})
	if out := c.Tick(time.Now()); out != OutcomeRejected {
		t.Fatalf("tick = %v, want rejected (status %+v)", out, c.Status())
	}
	if got := opt.Design(); !model.ApproxEq(got.Alpha, incumbent.Alpha) {
		t.Fatalf("rejected candidate still swapped: alpha %v", got.Alpha)
	}
	st := c.Status()
	if st.Rejected != 1 || st.LastOutcome != string(OutcomeRejected) {
		t.Fatalf("status after rejection: %+v", st)
	}
	if !strings.Contains(st.LastRejectReason, "holdout") {
		t.Fatalf("rejection reason missing: %q", st.LastRejectReason)
	}
	if ob.Metrics.Counter("fit.refit.rejected").Load() != 1 {
		t.Fatal("fit.refit.rejected not incremented")
	}
	// Rejection preserves the drift evidence (nothing was recalibrated)…
	if rep := ob.Drift.Report(); !rep.Stale {
		t.Fatal("drift evidence discarded on rejection")
	}
	// …but hysteresis still prevents immediate re-attempts.
	if out := c.Tick(time.Now()); out != OutcomeCooldown {
		t.Fatal("no cooldown after rejection")
	}
}

func TestChaosPanicDegradesToLastGoodDesign(t *testing.T) {
	opt := optimizer.New(model.HW1())
	ob := obs.NewObserver(64)
	primeStaleDrift(ob.Drift)
	fillTrace(ob.Trace, model.HW1(), model.FittedDesign())
	before := opt.Design()

	defer faultinject.Activate(faultinject.New(1,
		faultinject.Rule{Site: "fit.refit", Kind: faultinject.Panic, Count: 1}))()

	c := New(opt, ob, Options{Backoff: time.Hour})
	if out := c.Tick(time.Now()); out != OutcomeFailed {
		t.Fatalf("tick under injected panic = %v, want failed", out)
	}
	if got := opt.Design(); !model.ApproxEq(got.Alpha, before.Alpha) {
		t.Fatal("failed refit changed the design")
	}
	st := c.Status()
	if st.Failures != 1 || st.LastOutcome != string(OutcomeFailed) || st.LastError == "" {
		t.Fatalf("status after panic: %+v", st)
	}
	if ob.Metrics.Counter("fit.refit.failures").Load() != 1 {
		t.Fatal("fit.refit.failures not incremented")
	}
	// Backoff gates the retry even though the rule is exhausted.
	if out := c.Tick(time.Now()); out != OutcomeCooldown {
		t.Fatal("no backoff after failure")
	}
}

func TestChaosErrorRetriesWithBackoff(t *testing.T) {
	opt := optimizer.New(model.HW1())
	ob := obs.NewObserver(64)
	primeStaleDrift(ob.Drift)
	fillTrace(ob.Trace, model.HW1(), model.FittedDesign())

	defer faultinject.Activate(faultinject.New(1,
		faultinject.Rule{Site: "fit.refit", Kind: faultinject.Error}))()

	backoff := 10 * time.Minute
	c := New(opt, ob, Options{Backoff: backoff, MaxRetries: 2, Cooldown: 5 * time.Hour})
	now := time.Now()
	if out := c.Tick(now); out != OutcomeFailed {
		t.Fatal("first attempt should fail")
	}
	// Retry windows double: backoff, then 2*backoff, then the cooldown.
	now = now.Add(backoff + time.Second)
	if out := c.Tick(now); out != OutcomeFailed {
		t.Fatal("second attempt should run after the first backoff")
	}
	now = now.Add(backoff + time.Second) // only 1x: still inside 2x window
	if out := c.Tick(now); out != OutcomeCooldown {
		t.Fatal("third attempt should wait out the doubled backoff")
	}
	now = now.Add(backoff)
	if out := c.Tick(now); out != OutcomeFailed {
		t.Fatal("third attempt should run after the doubled backoff")
	}
	// MaxRetries exhausted: the controller falls back to the long cooldown.
	now = now.Add(4 * backoff)
	if out := c.Tick(now); out != OutcomeCooldown {
		t.Fatal("exhausted retries should rest for the full cooldown")
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	ob := obs.NewObserver(64)
	c := New(optimizer.New(model.HW1()), ob, Options{Interval: time.Millisecond})
	c.Start()
	c.Close()
	c.Close() // idempotent
	// Never-started controllers close cleanly too.
	c2 := New(optimizer.New(model.HW1()), ob, Options{})
	c2.Close()
}

// TestRefitStatusResponsiveDuringSlowAttempt guards the Tick lock
// discipline: the attempt — fault hooks that can sleep, a full fit over
// the harvested trace — must run with c.mu released, so Status() (and a
// concurrent Tick, which bows out as idle) return immediately while a
// slow re-fit is in flight. Holding the lock across the attempt would
// park this test for the full injected delay.
func TestRefitStatusResponsiveDuringSlowAttempt(t *testing.T) {
	// Same setup as TestRefitSwapsOnStaleDrift — a wrong incumbent alpha
	// and truthful traces — so the slow attempt ends in a swap.
	trueHW, trueDg := model.HW1(), model.FittedDesign()
	staleDg := trueDg
	staleDg.Alpha = 0.5
	opt := optimizer.NewWithDesign(trueHW, staleDg)
	ob := obs.NewObserver(64)
	primeStaleDrift(ob.Drift)
	fillTrace(ob.Trace, trueHW, trueDg)

	defer faultinject.Activate(faultinject.New(1,
		faultinject.Rule{Site: "fit.refit", Kind: faultinject.Delay, Delay: time.Second, Count: 1}))()

	c := New(opt, ob, Options{Cooldown: time.Hour})
	tickDone := make(chan Outcome, 1)
	go func() { tickDone <- c.Tick(time.Now()) }()
	// Give the goroutine time to enter the injected one-second delay.
	time.Sleep(200 * time.Millisecond)

	// An overlapping Tick must not start a second attempt (or block on
	// the first): the in-flight guard turns it away as idle.
	if out := c.Tick(time.Now()); out != OutcomeIdle {
		t.Fatalf("overlapping tick = %v, want idle", out)
	}

	statusDone := make(chan obs.RefitStatus, 1)
	go func() { statusDone <- c.Status() }()
	select {
	case <-statusDone:
		// Status returned while the attempt was still sleeping: the lock
		// was free.
	case out := <-tickDone:
		t.Fatalf("attempt (outcome %v) finished before Status returned: Status was blocked on the attempt's lock", out)
	}

	if out := <-tickDone; out != OutcomeSwapped {
		t.Fatalf("delayed attempt = %v, want swapped", out)
	}
	st := c.Status()
	if st.Attempts != 1 || st.Swaps != 1 {
		t.Fatalf("bookkeeping after delayed attempt: %+v", st)
	}
}

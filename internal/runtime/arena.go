package runtime

import (
	"sync"

	"fastcolumns/internal/obs"
	"fastcolumns/internal/storage"
)

// DefaultArenaRetain is the largest rowID capacity (in entries) a
// buffer may keep when returned to the arena; bigger backing arrays
// are dropped for the garbage collector so one pathological batch
// cannot pin its peak footprint forever. 4M rowIDs is 32 MB — roughly
// one full-selectivity result over the benchmark relation.
const DefaultArenaRetain = 4 << 20

// Buf is a recyclable rowID buffer. It is a pointer-stable wrapper so
// round-tripping through the sync.Pool never allocates (putting a bare
// slice would box it on every Put). Callers append to IDs and hand the
// Buf back via Arena.PutBuf — or simply drop it, which is safe and
// merely costs the arena a miss later.
type Buf struct {
	IDs []storage.RowID
}

// Buffer pools are segregated into power-of-two size classes: class c
// holds buffers whose capacity is at least arenaMinCap<<c. Checkouts
// draw from the class that covers the hint and returns round a
// buffer's capacity *down*, so a pooled buffer can always serve its
// class without growing. Without classes, one mixed pool lets a small
// per-morsel cell buffer answer a large assembly checkout, which then
// re-grows it — with a skewed batch (one 20% query among 0.1% ones)
// that keeps a slow trickle of allocations going for hundreds of
// batches before every buffer has grown to the peak demand.
const (
	arenaMinCap  = 64
	arenaClasses = 26
)

// classFor returns the smallest class whose promised capacity
// (arenaMinCap<<c) covers n, clamped to the last class.
func classFor(n int) int {
	c := 0
	for size := arenaMinCap; size < n && c < arenaClasses-1; size <<= 1 {
		c++
	}
	return c
}

// classDown returns the largest class whose promised capacity a buffer
// of capacity n can serve, or -1 when n is below the smallest class.
func classDown(n int) int {
	if n < arenaMinCap {
		return -1
	}
	c := 0
	for size := arenaMinCap; size<<1 <= n && c < arenaClasses-1; size <<= 1 {
		c++
	}
	return c
}

// Arena recycles the query path's result buffers: per-query rowID
// slices (Buf, pooled per size class) and per-batch result sets
// (Results). A nil *Arena is valid and falls back to plain allocation,
// so cold paths and tests need no setup.
type Arena struct {
	maxRetain int
	bufs      [arenaClasses]sync.Pool
	words     [arenaClasses]sync.Pool
	sets      sync.Pool

	hits    *obs.Counter
	misses  *obs.Counter
	returns *obs.Counter
}

// NewArena returns an arena that retains buffers up to maxRetain
// rowIDs of capacity (DefaultArenaRetain when <= 0). reg may be nil;
// when set, the arena exports runtime.arena.hits / runtime.arena.misses
// counters (a miss is a checkout that had to grow or allocate) and
// runtime.arena.returns (rowID buffers accepted back by PutBuf — the
// put-side signal; under the race detector sync.Pool sheds puts at
// random, so tests that must observe a release watch this counter, not
// a subsequent checkout hit).
func NewArena(maxRetain int, reg *obs.Registry) *Arena {
	if maxRetain <= 0 {
		maxRetain = DefaultArenaRetain
	}
	a := &Arena{maxRetain: maxRetain}
	if reg != nil {
		a.hits = reg.Counter("runtime.arena.hits")
		a.misses = reg.Counter("runtime.arena.misses")
		a.returns = reg.Counter("runtime.arena.returns")
	}
	return a
}

// GetBuf checks out a buffer with len 0 and capacity at least capHint.
// The hint is sized from the optimizer's selectivity estimate so the
// scan kernels stop re-growing mid-scan; it is a hint, not a bound —
// the kernels still grow the slice if the estimate was low. A miss
// allocates the full class capacity, so the buffer serves its whole
// class when it comes back around.
func (a *Arena) GetBuf(capHint int) *Buf {
	if a == nil {
		return &Buf{IDs: make([]storage.RowID, 0, capHint)}
	}
	class := classFor(capHint)
	if v := a.bufs[class].Get(); v != nil {
		b := v.(*Buf)
		if cap(b.IDs) >= capHint { // always true below the clamped last class
			cadd(a.hits, 1)
			b.IDs = b.IDs[:0]
			return b
		}
		cadd(a.misses, 1)
		b.IDs = make([]storage.RowID, 0, capHint)
		return b
	}
	cadd(a.misses, 1)
	size := arenaMinCap << class
	if size < capHint {
		size = capHint
	}
	return &Buf{IDs: make([]storage.RowID, 0, size)}
}

// PutBuf returns a buffer to its size class. Buffers over the retain
// cap are dropped entirely so one pathological batch cannot pin its
// peak footprint. nil receivers and nil buffers are no-ops.
func (a *Arena) PutBuf(b *Buf) {
	if a == nil || b == nil {
		return
	}
	if cap(b.IDs) > a.maxRetain {
		b.IDs = nil
		return
	}
	class := classDown(cap(b.IDs))
	if class < 0 {
		return
	}
	cadd(a.returns, 1)
	a.bufs[class].Put(b)
}

// WordBuf is a recyclable bitmap-word buffer: the SWAR scan kernels
// check one out per morsel to hold a block's match bitmap before late
// rowID materialization. Like Buf it is a pointer-stable wrapper so the
// sync.Pool round trip never allocates.
type WordBuf struct {
	W []uint64
}

// GetWords checks out a word buffer with capacity at least capHint
// (length 0; callers reslice). Word buffers share the arena's size-class
// discipline — and its hit/miss counters — with the rowID buffers, but
// pool separately so a bitmap checkout never steals a rowID backing
// array of the same class.
func (a *Arena) GetWords(capHint int) *WordBuf {
	if a == nil {
		return &WordBuf{W: make([]uint64, 0, capHint)}
	}
	class := classFor(capHint)
	if v := a.words[class].Get(); v != nil {
		b := v.(*WordBuf)
		if cap(b.W) >= capHint { // always true below the clamped last class
			cadd(a.hits, 1)
			b.W = b.W[:0]
			return b
		}
		cadd(a.misses, 1)
		b.W = make([]uint64, 0, capHint)
		return b
	}
	cadd(a.misses, 1)
	size := arenaMinCap << class
	if size < capHint {
		size = capHint
	}
	return &WordBuf{W: make([]uint64, 0, size)}
}

// PutWords returns a word buffer to its size class, mirroring PutBuf's
// retain cap (counted in words).
func (a *Arena) PutWords(b *WordBuf) {
	if a == nil || b == nil {
		return
	}
	if cap(b.W) > a.maxRetain {
		b.W = nil
		return
	}
	class := classDown(cap(b.W))
	if class < 0 {
		return
	}
	a.words[class].Put(b)
}

// Results is one batch's checked-out result set: RowIDs[i] aliases the
// arena buffer holding query i's matches. Ownership transfers to the
// caller at checkout; calling Release hands every buffer (and the
// Results itself) back to the arena. Releasing is optional — results
// that escape to user code are simply collected by the GC — but the
// steady-state zero-allocation contract only holds for released
// batches.
type Results struct {
	RowIDs [][]storage.RowID

	bufs  []*Buf
	arena *Arena
}

// GetResults checks out a result set for q queries with all slots
// empty.
func (a *Arena) GetResults(q int) *Results {
	var r *Results
	if a != nil {
		if v := a.sets.Get(); v != nil {
			r = v.(*Results)
		}
	}
	if r == nil {
		r = &Results{}
	}
	r.arena = a
	if cap(r.RowIDs) < q {
		r.RowIDs = make([][]storage.RowID, q)
		r.bufs = make([]*Buf, q)
	} else {
		r.RowIDs = r.RowIDs[:q]
		r.bufs = r.bufs[:q]
		for i := range r.RowIDs {
			r.RowIDs[i] = nil
			r.bufs[i] = nil
		}
	}
	return r
}

// Attach installs b as query i's result buffer; RowIDs[i] aliases its
// current contents. The Results takes ownership of b.
func (r *Results) Attach(i int, b *Buf) {
	r.bufs[i] = b
	r.RowIDs[i] = b.IDs
}

// Release returns every attached buffer and the Results itself to the
// arena. The RowIDs slices must not be used afterwards — their backing
// arrays will be handed to future batches. Safe on nil and after a
// previous Release (it empties itself).
func (r *Results) Release() {
	if r == nil {
		return
	}
	a := r.arena
	for i := range r.bufs {
		if r.bufs[i] != nil {
			a.PutBuf(r.bufs[i])
			r.bufs[i] = nil
		}
		r.RowIDs[i] = nil
	}
	if a != nil {
		r.RowIDs = r.RowIDs[:0]
		r.bufs = r.bufs[:0]
		r.arena = nil
		a.sets.Put(r)
	}
}

package runtime

import (
	"testing"

	"fastcolumns/internal/obs"
	"fastcolumns/internal/race"
	"fastcolumns/internal/storage"
)

func TestArenaRoundTripReusesCapacity(t *testing.T) {
	if race.Enabled {
		t.Skip("the race runtime randomizes sync.Pool reuse; reuse guarantees hold without -race")
	}
	reg := obs.NewRegistry()
	a := NewArena(0, reg)
	b := a.GetBuf(1024)
	if cap(b.IDs) < 1024 || len(b.IDs) != 0 {
		t.Fatalf("GetBuf(1024): len=%d cap=%d", len(b.IDs), cap(b.IDs))
	}
	b.IDs = append(b.IDs, 1, 2, 3)
	a.PutBuf(b)
	// A same-class checkout gets the buffer back, reset and still big
	// enough.
	b2 := a.GetBuf(1000)
	if b2 != b {
		t.Fatal("same-class checkout did not recycle the pooled buffer")
	}
	if cap(b2.IDs) < 1000 || len(b2.IDs) != 0 {
		t.Fatalf("recycled buffer: len=%d cap=%d", len(b2.IDs), cap(b2.IDs))
	}
	if reg.Counter("runtime.arena.hits").Load() == 0 {
		t.Fatal("reuse did not count as an arena hit")
	}
}

// TestArenaSizeClassesServeWithoutGrowing pins the class invariant: a
// pooled buffer is classified by the capacity it can serve, so a small
// buffer can never answer a large checkout and force a re-grow.
func TestArenaSizeClassesServeWithoutGrowing(t *testing.T) {
	if race.Enabled {
		t.Skip("the race runtime randomizes sync.Pool reuse; reuse guarantees hold without -race")
	}
	a := NewArena(0, nil)
	small := a.GetBuf(100)
	a.PutBuf(small)
	big := a.GetBuf(100_000)
	if big == small {
		t.Fatal("a small pooled buffer answered a large checkout")
	}
	if cap(big.IDs) < 100_000 {
		t.Fatalf("large checkout undersized: cap=%d", cap(big.IDs))
	}
	// A buffer grown past its class re-files under the larger class.
	small2 := a.GetBuf(100)
	small2.IDs = append(small2.IDs[:0], make([]storage.RowID, 5000)...)
	a.PutBuf(small2)
	mid := a.GetBuf(3000)
	if cap(mid.IDs) < 3000 {
		t.Fatalf("grown buffer not reusable at its new class: cap=%d", cap(mid.IDs))
	}
}

func TestArenaClassMath(t *testing.T) {
	for _, tc := range []struct{ n, up, down int }{
		{0, 0, -1},
		{1, 0, -1},
		{arenaMinCap, 0, 0},
		{arenaMinCap + 1, 1, 0},
		{2 * arenaMinCap, 1, 1},
		{1024, 4, 4},
		{1025, 5, 4},
		{1 << 40, arenaClasses - 1, arenaClasses - 1},
	} {
		if got := classFor(tc.n); got != tc.up {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.up)
		}
		if got := classDown(tc.n); got != tc.down {
			t.Errorf("classDown(%d) = %d, want %d", tc.n, got, tc.down)
		}
	}
	// The round-trip invariant behind the zero-alloc contract: any
	// capacity a class hands out files back into at least that class.
	for c := 0; c < arenaClasses; c++ {
		if got := classDown(arenaMinCap << c); got < c {
			t.Errorf("classDown(classCap(%d)) = %d, want >= %d", c, got, c)
		}
	}
}

func TestArenaDropsOversizedBuffers(t *testing.T) {
	a := NewArena(100, nil)
	b := a.GetBuf(1000) // over the retain cap
	a.PutBuf(b)
	if b.IDs != nil {
		t.Fatalf("oversized backing array retained: cap=%d, retain cap 100", cap(b.IDs))
	}
}

func TestNilArenaAllocatesPlainly(t *testing.T) {
	var a *Arena
	b := a.GetBuf(64)
	if b == nil || cap(b.IDs) < 64 {
		t.Fatal("nil arena GetBuf failed")
	}
	a.PutBuf(b) // no-op, must not crash
	r := a.GetResults(3)
	if len(r.RowIDs) != 3 || len(r.bufs) != 3 {
		t.Fatal("nil arena GetResults wrong shape")
	}
	r.Attach(1, b)
	r.Release() // no-op recycling, must not crash
}

func TestResultsAttachAndRelease(t *testing.T) {
	a := NewArena(0, nil)
	r := a.GetResults(2)
	b0, b1 := a.GetBuf(8), a.GetBuf(8)
	b0.IDs = append(b0.IDs, 10, 20)
	b1.IDs = append(b1.IDs, 30)
	r.Attach(0, b0)
	r.Attach(1, b1)
	if len(r.RowIDs[0]) != 2 || r.RowIDs[0][1] != storage.RowID(20) {
		t.Fatalf("RowIDs[0] = %v", r.RowIDs[0])
	}
	r.Release()
	r.Release() // idempotent on the emptied set
	var nilR *Results
	nilR.Release() // nil-safe

	// The released buffers must come back around.
	again := a.GetBuf(4)
	if again != b0 && again != b1 {
		t.Log("released buffer not immediately recycled (sync.Pool may drop); tolerated")
	}
	r2 := a.GetResults(5)
	if len(r2.RowIDs) != 5 {
		t.Fatalf("GetResults(5) shape: %d", len(r2.RowIDs))
	}
	for i, ids := range r2.RowIDs {
		if ids != nil {
			t.Fatalf("recycled Results slot %d not cleared", i)
		}
	}
}

// TestArenaCheckoutZeroAlloc pins the steady-state contract: a warm
// checkout/attach/release cycle allocates nothing.
func TestArenaCheckoutZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	a := NewArena(0, nil)
	cycle := func() {
		r := a.GetResults(4)
		for i := 0; i < 4; i++ {
			b := a.GetBuf(256)
			b.IDs = append(b.IDs, storage.RowID(i))
			r.Attach(i, b)
		}
		r.Release()
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Errorf("arena cycle allocates %.1f per run, want 0", n)
	}
}

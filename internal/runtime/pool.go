package runtime

import (
	"context"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/obs"
)

// FaultSiteMorsel fires once per executed morsel, inside the worker,
// so chaos suites can inject errors, panics and delays into the middle
// of a dispatched batch.
const FaultSiteMorsel = "runtime.morsel"

// Job is one dispatched unit of data-parallel work, pre-split into n
// independent morsels. RunMorsel(i) is called exactly once for each
// i in [0, n) that the dispatch reaches, concurrently from pool
// workers and from the dispatching goroutine itself. Morsels must not
// block on other morsels of the same job and must not call Dispatch.
type Job interface {
	RunMorsel(i int)
}

// task is one (job, morsel index) pair sitting in a worker deque.
type task struct {
	j   *job
	idx int
}

// job is the pooled per-dispatch control block. The WaitGroup counts
// unfinished morsels; flag words record the first failure of each kind
// (visible to the dispatcher through wg.Wait's happens-before edge).
type job struct {
	runner    Job
	ctx       context.Context
	wg        sync.WaitGroup
	cancelled atomic.Bool
	panicked  atomic.Bool
	panicVal  any
	failed    atomic.Bool
	err       error
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// deque is one worker's work queue: the owner pushes and pops at the
// back (LIFO keeps its morsels cache-warm), thieves steal from the
// front (FIFO takes the oldest, largest-remaining work first). A plain
// mutex-guarded slice: morsels are thousands of tuples each, so queue
// operations are nowhere near the contention point.
type deque struct {
	mu   sync.Mutex
	buf  []task
	head int
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

// popBack removes the most recently pushed task (owner side).
func (d *deque) popBack() (task, bool) {
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return task{}, false
	}
	l := len(d.buf) - 1
	t := d.buf[l]
	d.buf[l] = task{}
	d.buf = d.buf[:l]
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.mu.Unlock()
	return t, true
}

// stealFront removes the oldest task (thief side).
func (d *deque) stealFront() (task, bool) {
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return task{}, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = task{}
	d.head++
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.mu.Unlock()
	return t, true
}

// stealFor removes the oldest task belonging to j, so a dispatcher can
// help drain its own job without executing unrelated (possibly
// blocking) work it does not own.
func (d *deque) stealFor(j *job) (task, bool) {
	d.mu.Lock()
	for i := d.head; i < len(d.buf); i++ {
		if d.buf[i].j != j {
			continue
		}
		t := d.buf[i]
		copy(d.buf[i:], d.buf[i+1:])
		l := len(d.buf) - 1
		d.buf[l] = task{}
		d.buf = d.buf[:l]
		if d.head == len(d.buf) {
			d.buf = d.buf[:0]
			d.head = 0
		}
		d.mu.Unlock()
		return t, true
	}
	d.mu.Unlock()
	return task{}, false
}

// Pool is a persistent set of workers executing dispatched morsels.
// One pool serves a whole engine: it is created with the engine,
// shared by every access path, and shut down by Engine.Close. The
// zero-value-adjacent nil *Pool is valid and runs every dispatch
// inline on the caller.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	deques []*deque
	join   sync.WaitGroup
	next   atomic.Uint32

	workersG   *obs.Gauge
	busyG      *obs.Gauge
	steals     *obs.Counter
	dispatches *obs.Counter
	morsels    *obs.Counter
}

// NewPool starts a pool with the given worker count (GOMAXPROCS when
// workers <= 0). reg may be nil; when set, the pool exports
// runtime.pool.* gauges and counters.
func NewPool(workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	p := &Pool{deques: make([]*deque, workers)}
	p.cond = sync.NewCond(&p.mu)
	if reg != nil {
		p.workersG = reg.Gauge("runtime.pool.workers")
		p.busyG = reg.Gauge("runtime.pool.busy")
		p.steals = reg.Counter("runtime.pool.steals")
		p.dispatches = reg.Counter("runtime.pool.dispatches")
		p.morsels = reg.Counter("runtime.pool.morsels")
	}
	gset(p.workersG, int64(workers))
	for i := range p.deques {
		p.deques[i] = new(deque)
	}
	p.join.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool's worker count (1 for a nil pool, which
// executes inline on its single calling goroutine).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return len(p.deques)
}

// Close drains every queued morsel, stops the workers and waits for
// them to exit. Dispatch remains safe after Close: it degrades to
// inline execution on the caller. Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.join.Wait()
	gset(p.workersG, 0)
}

// worker is the long-lived loop of worker w: drain own deque LIFO,
// then steal FIFO from the others, then park until a dispatch arrives
// or the pool closes.
func (p *Pool) worker(w int) {
	defer p.join.Done()
	own := p.deques[w]
	for {
		if t, ok := own.popBack(); ok {
			p.exec(t, false)
			continue
		}
		if t, ok := p.stealAny(w); ok {
			p.exec(t, true)
			continue
		}
		p.mu.Lock()
		// Rescan under the pool lock: a pusher publishes tasks before
		// taking this lock to broadcast, so a task that raced the scans
		// above is visible here — no missed wakeups.
		if t, ok := p.scanLocked(); ok {
			p.mu.Unlock()
			p.exec(t, true)
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
		p.mu.Unlock()
	}
}

// stealAny scans the other workers' deques starting after w.
func (p *Pool) stealAny(w int) (task, bool) {
	n := len(p.deques)
	for i := 1; i < n; i++ {
		if t, ok := p.deques[(w+i)%n].stealFront(); ok {
			return t, true
		}
	}
	return task{}, false
}

// scanLocked checks every deque once; called with p.mu held.
func (p *Pool) scanLocked() (task, bool) {
	for _, d := range p.deques {
		if t, ok := d.stealFront(); ok {
			return t, true
		}
	}
	return task{}, false
}

// exec runs one morsel: skip if the job's context was cancelled, give
// the fault injector its shot, recover panics into the job so the
// dispatcher can re-raise them on its own goroutine.
func (p *Pool) exec(t task, stolen bool) {
	if p != nil {
		gadd(p.busyG, 1)
		cadd(p.morsels, 1)
		if stolen {
			cadd(p.steals, 1)
		}
	}
	j := t.j
	runMorsel(j, t.idx)
	if p != nil {
		gadd(p.busyG, -1)
	}
	j.wg.Done()
}

// runMorsel executes morsel idx of j with cancellation, fault
// injection and panic capture. Shared by pool workers, dispatcher
// help, and the inline path.
func runMorsel(j *job, idx int) {
	if j.cancelled.Load() || j.panicked.Load() {
		return
	}
	if j.ctx != nil && j.ctx.Err() != nil {
		j.cancelled.Store(true)
		return
	}
	// The recover must be armed before the injector fires: an injected
	// panic is exactly as escaping-capable as a kernel panic.
	defer func() {
		if r := recover(); r != nil {
			if j.panicked.CompareAndSwap(false, true) {
				j.panicVal = r
			}
		}
	}()
	if err := faultinject.Fire(FaultSiteMorsel); err != nil {
		if j.failed.CompareAndSwap(false, true) {
			j.err = fmt.Errorf("morsel %d: %w", idx, err)
		}
		return
	}
	j.runner.RunMorsel(idx)
}

// Dispatch splits r into n morsels, spreads them over the pool's
// deques and helps execute them from the calling goroutine; it returns
// when all n are done or skipped. Cancellation is observed between
// morsels: once ctx is done, remaining morsels are skipped and ctx's
// error returned. A panic inside a morsel is re-raised on the calling
// goroutine after the job drains, so the caller's recover discipline
// (scheduler safeExec, server selectRecovered) keeps working. A nil or
// closed pool executes the morsels inline on the caller — correct,
// just not parallel.
//
// The dispatcher participates in the work ("caller helps"): it drains
// its own job's morsels while waiting, so Dispatch cannot deadlock
// even when every worker is busy with other jobs.
func (p *Pool) Dispatch(ctx context.Context, n int, r Job) error {
	if n <= 0 {
		return nil
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	j := jobPool.Get().(*job)
	j.runner, j.ctx = r, ctx
	j.cancelled.Store(false)
	j.panicked.Store(false)
	j.failed.Store(false)
	j.panicVal, j.err = nil, nil

	if p == nil {
		for i := 0; i < n; i++ {
			runMorsel(j, i)
		}
	} else {
		cadd(p.dispatches, 1)
		j.wg.Add(n)
		start := int(p.next.Add(1))
		w := len(p.deques)
		for i := 0; i < n; i++ {
			p.deques[(start+i)%w].push(task{j: j, idx: i})
		}
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
		// Help: drain this job's own morsels from the deques. Whatever
		// a worker already claimed completes on that worker; wg.Wait
		// covers the gap.
		for {
			t, ok := task{}, false
			for i := 0; i < w && !ok; i++ {
				t, ok = p.deques[(start+i)%w].stealFor(j)
			}
			if !ok {
				break
			}
			cadd(p.morsels, 1)
			runMorsel(j, t.idx)
			j.wg.Done()
		}
		j.wg.Wait()
	}

	pv, panicked := j.panicVal, j.panicked.Load()
	err := j.err
	cancelled := j.cancelled.Load()
	j.runner, j.ctx, j.panicVal, j.err = nil, nil, nil, nil
	jobPool.Put(j)

	if panicked {
		panic(pv)
	}
	if cancelled {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return context.Canceled
	}
	return err
}

// Go runs fn on its own goroutine. It is the module's escape hatch for
// detached or potentially blocking work that must not occupy a pool
// worker (scheduler batch runners, cancellation watchers, calibration
// loops); the gospawn lint analyzer forbids raw go statements
// everywhere else.
func Go(fn func()) {
	go fn()
}

var (
	defaultMu   sync.Mutex
	defaultPool *Pool
)

// Default returns a lazily created process-wide pool sized to
// GOMAXPROCS, used by the compatibility wrappers (scan.SharedParallel
// and friends) when no engine-owned pool is in scope. It is never
// closed; engines create and close their own pools.
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = NewPool(0, nil)
	}
	return defaultPool
}

// cadd/gadd/gset are nil-tolerant instrument helpers: a pool built
// without a registry records nothing.
func cadd(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

func gadd(g *obs.Gauge, n int64) {
	if g != nil {
		g.Add(n)
	}
}

func gset(g *obs.Gauge, n int64) {
	if g != nil {
		g.Set(n)
	}
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastcolumns/internal/faultinject"
	"fastcolumns/internal/obs"
	"fastcolumns/internal/race"
)

// countJob marks each morsel it runs; runs[i] counts executions of
// morsel i so tests can assert exactly-once delivery.
type countJob struct {
	runs []atomic.Int32
}

func (j *countJob) RunMorsel(i int) { j.runs[i].Add(1) }

func TestDispatchRunsEveryMorselExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers, nil)
		for trial := 0; trial < 10; trial++ {
			j := &countJob{runs: make([]atomic.Int32, 257)}
			if err := p.Dispatch(context.Background(), len(j.runs), j); err != nil {
				t.Fatalf("workers=%d: Dispatch: %v", workers, err)
			}
			for i := range j.runs {
				if n := j.runs[i].Load(); n != 1 {
					t.Fatalf("workers=%d: morsel %d ran %d times, want 1", workers, i, n)
				}
			}
		}
		p.Close()
	}
}

func TestDispatchNilPoolRunsInline(t *testing.T) {
	var p *Pool
	j := &countJob{runs: make([]atomic.Int32, 16)}
	if err := p.Dispatch(context.Background(), len(j.runs), j); err != nil {
		t.Fatalf("Dispatch on nil pool: %v", err)
	}
	for i := range j.runs {
		if j.runs[i].Load() != 1 {
			t.Fatalf("morsel %d did not run inline", i)
		}
	}
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
}

func TestDispatchAfterCloseRunsInline(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	p.Close() // idempotent
	j := &countJob{runs: make([]atomic.Int32, 32)}
	if err := p.Dispatch(context.Background(), len(j.runs), j); err != nil {
		t.Fatalf("Dispatch after Close: %v", err)
	}
	for i := range j.runs {
		if j.runs[i].Load() != 1 {
			t.Fatalf("morsel %d lost after Close", i)
		}
	}
}

// gateJob forces work stealing: morsel 0 blocks until every other
// morsel has finished, so whatever executor holds it must have its
// remaining queued tasks drained by the other workers (or the caller).
type gateJob struct {
	others sync.WaitGroup
	ran    atomic.Int32
}

func (j *gateJob) RunMorsel(i int) {
	if i == 0 {
		j.others.Wait()
	} else {
		j.others.Done()
	}
	j.ran.Add(1)
}

func TestDispatchStealsFromBlockedWorker(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, reg)
	defer p.Close()
	const n = 64
	j := &gateJob{}
	j.others.Add(n - 1)
	if err := p.Dispatch(context.Background(), n, j); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if got := j.ran.Load(); got != n {
		t.Fatalf("ran %d morsels, want %d", got, n)
	}
	if got := reg.Counter("runtime.pool.morsels").Load(); got != n {
		t.Fatalf("runtime.pool.morsels = %d, want %d", got, n)
	}
	if reg.Counter("runtime.pool.dispatches").Load() != 1 {
		t.Fatalf("runtime.pool.dispatches != 1")
	}
	if reg.Gauge("runtime.pool.workers").Load() != 2 {
		t.Fatalf("runtime.pool.workers gauge not set")
	}
}

// cancelJob cancels its own context from morsel index `at`; with the
// inline (nil-pool) path morsels run in order, so everything after
// `at` must be skipped.
type cancelJob struct {
	cancel context.CancelFunc
	at     int
	ran    atomic.Int32
}

func (j *cancelJob) RunMorsel(i int) {
	j.ran.Add(1)
	if i == j.at {
		j.cancel()
	}
}

func TestDispatchObservesCancellationBetweenMorsels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &cancelJob{cancel: cancel, at: 2}
	var p *Pool
	err := p.Dispatch(ctx, 100, j)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Dispatch err = %v, want context.Canceled", err)
	}
	if got := j.ran.Load(); got != 3 {
		t.Fatalf("ran %d morsels before cancellation took effect, want 3", got)
	}
}

func TestDispatchPreCancelledContextRunsNothing(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &countJob{runs: make([]atomic.Int32, 8)}
	if err := p.Dispatch(ctx, len(j.runs), j); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range j.runs {
		if j.runs[i].Load() != 0 {
			t.Fatalf("morsel %d ran under a pre-cancelled context", i)
		}
	}
}

type panicJob struct{ at int }

func (j *panicJob) RunMorsel(i int) {
	if i == j.at {
		panic(fmt.Sprintf("morsel %d boom", i))
	}
}

func TestDispatchRelaysPanicToCaller(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = p.Dispatch(context.Background(), 16, &panicJob{at: 5})
	}()
	if recovered != "morsel 5 boom" {
		t.Fatalf("recovered %v, want the morsel's panic value", recovered)
	}
	// The pool must survive a panicking job.
	j := &countJob{runs: make([]atomic.Int32, 8)}
	if err := p.Dispatch(context.Background(), len(j.runs), j); err != nil {
		t.Fatalf("Dispatch after panic: %v", err)
	}
	for i := range j.runs {
		if j.runs[i].Load() != 1 {
			t.Fatalf("pool unusable after a panicking job")
		}
	}
}

func TestDispatchSurfacesInjectedMorselFault(t *testing.T) {
	boom := errors.New("injected")
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: FaultSiteMorsel, Kind: faultinject.Error, Every: 3, Err: boom,
	}))
	defer deactivate()
	p := NewPool(2, nil)
	defer p.Close()
	j := &countJob{runs: make([]atomic.Int32, 64)}
	err := p.Dispatch(context.Background(), len(j.runs), j)
	if !errors.Is(err, boom) {
		t.Fatalf("Dispatch err = %v, want the injected fault", err)
	}
}

// TestDispatchRelaysInjectedMorselPanic pins a regression: an injected
// panic fires before the morsel body runs, so the panic capture must be
// armed before the injector — otherwise the panic escapes the worker
// goroutine and kills the process instead of relaying to the caller.
func TestDispatchRelaysInjectedMorselPanic(t *testing.T) {
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: FaultSiteMorsel, Kind: faultinject.Panic, Count: 1,
	}))
	defer deactivate()
	p := NewPool(2, nil)
	defer p.Close()
	j := &countJob{runs: make([]atomic.Int32, 64)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("injected morsel panic was not re-raised on the caller")
			}
		}()
		_ = p.Dispatch(context.Background(), len(j.runs), j)
	}()
	// The pool survives: the next dispatch runs clean.
	j2 := &countJob{runs: make([]atomic.Int32, 16)}
	if err := p.Dispatch(context.Background(), len(j2.runs), j2); err != nil {
		t.Fatalf("dispatch after injected panic: %v", err)
	}
}

func TestPoolCloseStopsWorkers(t *testing.T) {
	base := stdruntime.NumGoroutine()
	p := NewPool(4, nil)
	j := &countJob{runs: make([]atomic.Int32, 128)}
	if err := p.Dispatch(context.Background(), len(j.runs), j); err != nil {
		t.Fatal(err)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for stdruntime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := stdruntime.NumGoroutine(); n > base {
		t.Fatalf("%d goroutines after Close, want <= %d", n, base)
	}
}

func TestGoRunsFunction(t *testing.T) {
	done := make(chan struct{})
	Go(func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Go did not run the function")
	}
}

func TestDefaultPoolIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned distinct pools")
	}
}

// TestDispatchZeroAlloc pins the tentpole contract: dispatching a warm
// job over a warm pool allocates nothing on the caller.
func TestDispatchZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	p := NewPool(2, nil)
	defer p.Close()
	ctx := context.Background()
	j := &countJob{runs: make([]atomic.Int32, 32)}
	for i := 0; i < 8; i++ { // warm deques and the job pool
		_ = p.Dispatch(ctx, len(j.runs), j)
	}
	n := testing.AllocsPerRun(100, func() {
		_ = p.Dispatch(ctx, len(j.runs), j)
	})
	if n != 0 {
		t.Errorf("Dispatch allocates %.1f per call, want 0", n)
	}
}

// Package runtime is the engine's parallel runtime: a persistent
// work-stealing worker pool that executes (block-range × query-subset)
// morsels, and a sync.Pool-backed arena recycling result buffers, so
// the steady-state query path spawns no goroutines and allocates
// nothing.
//
// Before this package, every batch spawned fresh goroutines and carved
// the q queries into static len(preds)*w/workers slices: one
// high-selectivity predicate straggled while the other workers sat
// idle, and every batch grew its result slices from nil. The morsel
// model (Leis et al., "Morsel-Driven Parallelism") fixes both: work is
// cut into many small units dispatched dynamically, so whichever worker
// finishes early steals the straggler's remaining morsels, and buffers
// are checked out of a pool already grown to a prior batch's size.
//
// This package is also the module's only sanctioned spawn site: the
// fclint gospawn analyzer rejects raw go statements in every other
// library package. Code that genuinely needs a detached goroutine
// (batch runners, cancellation watchers) uses Go; data-parallel work
// uses Pool.Dispatch.
package runtime

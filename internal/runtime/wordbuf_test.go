package runtime

import (
	"testing"

	"fastcolumns/internal/race"
)

// TestWordBufRoundTripReusesCapacity mirrors the RowID-buffer contract
// for the bitmap-word pool: a same-class checkout after PutWords must
// recycle the buffer, reset to length zero with capacity intact.
func TestWordBufRoundTripReusesCapacity(t *testing.T) {
	if race.Enabled {
		t.Skip("the race runtime randomizes sync.Pool reuse; reuse guarantees hold without -race")
	}
	a := NewArena(0, nil)
	b := a.GetWords(512)
	if cap(b.W) < 512 || len(b.W) != 0 {
		t.Fatalf("GetWords(512): len=%d cap=%d", len(b.W), cap(b.W))
	}
	b.W = append(b.W, 1, 2, 3)
	a.PutWords(b)
	b2 := a.GetWords(500)
	if b2 != b {
		t.Fatal("same-class checkout did not recycle the pooled word buffer")
	}
	if cap(b2.W) < 500 || len(b2.W) != 0 {
		t.Fatalf("recycled word buffer: len=%d cap=%d", len(b2.W), cap(b2.W))
	}
}

// TestWordBufDropsOversized: retention is bounded by the same maxRetain
// knob as the rowID pool (counted in words, not bytes).
func TestWordBufDropsOversized(t *testing.T) {
	a := NewArena(100, nil)
	b := a.GetWords(1000)
	a.PutWords(b)
	if b.W != nil {
		t.Fatalf("oversized word backing array retained: cap=%d, retain cap 100", cap(b.W))
	}
}

// TestNilArenaWordsAllocatePlainly: a nil arena degrades to plain
// allocation, and PutWords is a safe no-op.
func TestNilArenaWordsAllocatePlainly(t *testing.T) {
	var a *Arena
	b := a.GetWords(64)
	if b == nil || cap(b.W) < 64 {
		t.Fatal("nil arena GetWords failed")
	}
	a.PutWords(b)
}

// TestWordBufCheckoutZeroAlloc pins the steady-state contract the
// packed morsel path relies on: once warm, GetWords/PutWords allocate
// nothing.
func TestWordBufCheckoutZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	a := NewArena(0, nil)
	a.PutWords(a.GetWords(1024)) // warm the class
	if n := testing.AllocsPerRun(100, func() {
		b := a.GetWords(1024)
		a.PutWords(b)
	}); n != 0 {
		t.Errorf("warm GetWords/PutWords allocates %.1f per cycle, want 0", n)
	}
}

package scan

import (
	"testing"

	"fastcolumns/internal/race"
	"fastcolumns/internal/storage"
)

// TestScanKernelsZeroAlloc pins the steady-state allocation contract of
// the scan hot path: with a warm result buffer of sufficient capacity,
// the predicated kernels and the count fast path allocate nothing per
// call. The shared-scan cost model assumes the kernel is bandwidth-bound;
// a stray allocation per block would put the garbage collector on that
// path and quietly break the model's premise.
func TestScanKernelsZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	data := make([]storage.Value, 4096)
	for i := range data {
		data[i] = storage.Value(i % 997)
	}
	p := Predicate{Lo: 100, Hi: 500}
	// Warm buffer with predication slack for a full-selectivity result.
	buf := make([]storage.RowID, 0, len(data)+1)

	sites := []struct {
		name string
		op   func()
	}{
		{"Scan", func() { buf = Scan(data, p, buf[:0]) }},
		{"ScanUnrolled", func() { buf = ScanUnrolled(data, p, buf[:0]) }},
		{"ScanBranching", func() { buf = ScanBranching(data, p, buf[:0]) }},
		{"Count", func() { _ = Count(data, p) }},
	}
	for _, site := range sites {
		if n := testing.AllocsPerRun(100, site.op); n != 0 {
			t.Errorf("%s allocates %.1f per call with a warm buffer, want 0", site.name, n)
		}
	}
}

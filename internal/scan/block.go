package scan

import "fastcolumns/internal/storage"

// BlockScan is the block-granular morsel kernel exported for the
// cooperative pass manager (internal/coop): the 8-way unrolled
// predicated scan over one cache-resident block, emitting
// relation-absolute rowIDs offset by base. It appends to out and
// returns the extended slice — the same contract the shared-scan morsel
// executor gets from the unexported kernel it wraps.
func BlockScan(data []storage.Value, p Predicate, base int, out []storage.RowID) []storage.RowID {
	return scanUnrolledBase(data, p, base, out)
}

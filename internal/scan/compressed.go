package scan

import "fastcolumns/internal/storage"

// Compressed scans dictionary-encoded data directly: the predicate's
// bounds are translated to codes once (two dictionary probes) and the
// comparison runs over the 16-bit codes, halving the bytes streamed
// (Figure 17). Returns rowIDs in order; an empty result when no domain
// value falls in the range.
func Compressed(c *storage.CompressedColumn, p Predicate, out []storage.RowID) []storage.RowID {
	clo, chi, ok := c.Dict().EncodeRange(p.Lo, p.Hi)
	if !ok {
		return out
	}
	return scanCodes(c.Codes(), clo, chi, 0, out)
}

// SharedCompressed is the shared scan over compressed data: per-query
// code bounds are resolved up front, then each cache-resident block of
// codes is evaluated for every query.
func SharedCompressed(c *storage.CompressedColumn, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples * 2 // 16-bit codes: same bytes per block
	}
	type bounds struct {
		lo, hi storage.Code
		ok     bool
	}
	bs := make([]bounds, len(preds))
	for i, p := range preds {
		bs[i].lo, bs[i].hi, bs[i].ok = c.Dict().EncodeRange(p.Lo, p.Hi)
	}
	results := make([][]storage.RowID, len(preds))
	codes := c.Codes()
	for lo := 0; lo < len(codes); lo += blockTuples {
		hi := min(lo+blockTuples, len(codes))
		block := codes[lo:hi]
		for qi, b := range bs {
			if !b.ok {
				continue
			}
			results[qi] = scanCodes(block, b.lo, b.hi, lo, results[qi])
		}
	}
	return results
}

// scanCodes is the predicated kernel over 16-bit codes.
func scanCodes(codes []storage.Code, lo, hi storage.Code, base int, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(codes))
	n := len(out)
	buf := out[:cap(out)]
	for i, cv := range codes {
		buf[n] = storage.RowID(base + i)
		if cv >= lo && cv <= hi {
			n++
		}
	}
	return buf[:n]
}

package scan

import (
	"fastcolumns/internal/memsim"
	"fastcolumns/internal/storage"
)

// CodeBlockTuples is the shared-scan block size over 16-bit codes,
// derived from the same memsim cache budget as DefaultBlockTuples: the
// compressed scan streams the same bytes per block (twice the tuples),
// so compressed and uncompressed shared scans make the same cache-
// residency assumption. Kept a multiple of 64 so default-sized blocks
// align with the SWAR kernels' bitmap words.
const CodeBlockTuples = memsim.SharedBlockBytes / 2

// codeBounds is one query's predicate translated to the code domain;
// ok is false when no dictionary value falls inside the range.
type codeBounds struct {
	lo, hi storage.Code
	ok     bool
}

// resolveBounds translates each predicate through the dictionary (two
// probes per query), reusing dst's capacity.
func resolveBounds(c *storage.CompressedColumn, preds []Predicate, dst []codeBounds) []codeBounds {
	if cap(dst) < len(preds) {
		dst = make([]codeBounds, len(preds))
	} else {
		dst = dst[:len(preds)]
	}
	for i, p := range preds {
		dst[i].lo, dst[i].hi, dst[i].ok = c.Dict().EncodeRange(p.Lo, p.Hi)
	}
	return dst
}

// Compressed scans dictionary-encoded data directly: the predicate's
// bounds are translated to codes once (two dictionary probes) and the
// comparison runs over the word-packed codes four lanes at a time,
// halving the bytes streamed (Figure 17) on top of the SWAR kernel's
// branch-free evaluation. Returns rowIDs in order; an empty result when
// no domain value falls in the range.
func Compressed(c *storage.CompressedColumn, p Predicate, out []storage.RowID) []storage.RowID {
	clo, chi, ok := c.Dict().EncodeRange(p.Lo, p.Hi)
	if !ok {
		return out
	}
	return appendPackedMatches(c.PackedCodes(), c.Codes(), 0, c.Len(), clo, chi, out)
}

// SharedCompressed is the shared scan over compressed data: per-query
// code bounds are resolved up front, then each cache-resident block of
// codes is evaluated for every query by the SWAR word kernel.
func SharedCompressed(c *storage.CompressedColumn, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = CodeBlockTuples
	}
	bs := resolveBounds(c, preds, nil)
	results := make([][]storage.RowID, len(preds))
	packed, codes := c.PackedCodes(), c.Codes()
	for lo := 0; lo < len(codes); lo += blockTuples {
		hi := min(lo+blockTuples, len(codes))
		for qi, b := range bs {
			if !b.ok {
				continue
			}
			results[qi] = appendPackedMatches(packed, codes, lo, hi, b.lo, b.hi, results[qi])
		}
	}
	return results
}

// SharedCompressedScalar is the pre-SWAR shared compressed scan — the
// predicated one-code-per-iteration kernel — kept as the ablation
// baseline the benchmark regression gate compares the packed kernels
// against.
func SharedCompressedScalar(c *storage.CompressedColumn, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = CodeBlockTuples
	}
	bs := resolveBounds(c, preds, nil)
	results := make([][]storage.RowID, len(preds))
	codes := c.Codes()
	for lo := 0; lo < len(codes); lo += blockTuples {
		hi := min(lo+blockTuples, len(codes))
		block := codes[lo:hi]
		for qi, b := range bs {
			if !b.ok {
				continue
			}
			results[qi] = scanCodes(block, b.lo, b.hi, lo, results[qi])
		}
	}
	return results
}

// scanCodes is the predicated scalar kernel over 16-bit codes.
func scanCodes(codes []storage.Code, lo, hi storage.Code, base int, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(codes))
	n := len(out)
	buf := out[:cap(out)]
	for i, cv := range codes {
		buf[n] = storage.RowID(base + i)
		if cv >= lo && cv <= hi {
			n++
		}
	}
	return buf[:n]
}

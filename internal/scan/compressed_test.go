package scan

import (
	"testing"

	"fastcolumns/internal/storage"
)

func compressed(t *testing.T, data []storage.Value) *storage.CompressedColumn {
	t.Helper()
	cc, err := storage.Compress(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func TestCompressedMatchesPlainScan(t *testing.T) {
	data := randomData(11, 30000, 5000)
	cc := compressed(t, data)
	for _, p := range []Predicate{
		{Lo: 100, Hi: 400},
		{Lo: 0, Hi: 5000},
		{Lo: 4999, Hi: 4999},
		{Lo: 6000, Hi: 7000}, // outside domain
	} {
		got := Compressed(cc, p, nil)
		want := reference(data, p)
		if !sameRowIDs(got, want) {
			t.Fatalf("compressed scan disagrees for %+v: %d vs %d rows", p, len(got), len(want))
		}
	}
}

func TestCompressedBoundsBetweenValues(t *testing.T) {
	// Bounds that are not themselves in the dictionary must still select
	// the right tuples.
	data := []storage.Value{10, 20, 30, 40, 50}
	cc := compressed(t, data)
	got := Compressed(cc, Predicate{Lo: 15, Hi: 45}, nil)
	if !sameRowIDs(got, []storage.RowID{1, 2, 3}) {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if got := Compressed(cc, Predicate{Lo: 21, Hi: 29}, nil); len(got) != 0 {
		t.Fatalf("gap range returned %v", got)
	}
}

func TestSharedCompressedMatchesShared(t *testing.T) {
	data := randomData(12, 40000, 3000)
	cc := compressed(t, data)
	preds := randomPreds(13, 8, 3000, 500)
	preds = append(preds, Predicate{Lo: 9000, Hi: 9999}) // no hits
	results := SharedCompressed(cc, preds, 0)
	if len(results) != len(preds) {
		t.Fatalf("got %d result sets", len(results))
	}
	for qi, p := range preds {
		want := reference(data, p)
		if !sameRowIDs(results[qi], want) {
			t.Fatalf("query %d: %d vs %d rows", qi, len(results[qi]), len(want))
		}
	}
}

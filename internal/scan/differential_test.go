package scan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fastcolumns/internal/storage"
)

// Differential property suite: every scan kernel in this package — naive,
// predicated, unrolled, shared, parallel, strided, compressed, and
// zonemap-assisted — must select exactly the same rowID set for the same
// data and predicate. The reference implementation is the obviously
// correct branch-per-tuple filter; everything else is an optimization of
// it, and any divergence is a bug by definition (nil and empty results
// are the same answer: no qualifying tuples).

// refFilter is the specification: one branch per tuple, append on match.
func refFilter(data []storage.Value, p Predicate) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func sameIDs(t *testing.T, kernel string, got, want []storage.RowID) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d rowIDs, want %d", kernel, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: rowID[%d] = %d, want %d", kernel, i, got[i], want[i])
			return
		}
	}
}

// diffCase is one (data, predicates) instance of the property.
type diffCase struct {
	name  string
	data  []storage.Value
	preds []Predicate
}

// corpusPreds covers the predicate edge cases for a value domain
// [0, domain): points that hit and miss, inverted (Lo > Hi) ranges that
// must select nothing, the full int32 domain that must select everything,
// and narrow/wide/boundary ranges.
func corpusPreds(domain storage.Value) []Predicate {
	if domain <= 0 {
		domain = 1
	}
	return []Predicate{
		{Lo: 0, Hi: domain - 1},                // whole domain
		{Lo: math.MinInt32, Hi: math.MaxInt32}, // full int32 range
		{Lo: domain / 4, Hi: domain / 2},       // interior range
		{Lo: domain / 3, Hi: domain / 3},       // point, likely present
		{Lo: domain + 100, Hi: domain + 100},   // point, absent
		{Lo: domain / 2, Hi: domain / 4},       // inverted: empty
		{Lo: 10, Hi: 5},                        // inverted small
		{Lo: -1000, Hi: -1},                    // below the domain
		{Lo: domain, Hi: 2 * domain},           // above the domain
		{Lo: 0, Hi: 0},                         // boundary point
		{Lo: domain - 1, Hi: math.MaxInt32},    // upper boundary onward
	}
}

// corpus builds the fixed differential corpus: empty, single-tuple, and
// larger blocks in uniform, constant, sorted, and adversarial patterns,
// all over a small domain so the compressed twin stays buildable and
// point predicates actually hit.
func corpus() []diffCase {
	rng := rand.New(rand.NewSource(42))
	const domain = 4096
	mk := func(n int, gen func(i int) storage.Value) []storage.Value {
		d := make([]storage.Value, n)
		for i := range d {
			d[i] = gen(i)
		}
		return d
	}
	uniform := func(i int) storage.Value { return storage.Value(rng.Intn(domain)) }
	shapes := []diffCase{
		{name: "empty", data: nil},
		{name: "one_hit", data: []storage.Value{domain / 3}},
		{name: "one_miss", data: []storage.Value{domain - 1}},
		{name: "small_uniform", data: mk(5, uniform)},
		{name: "block_uniform", data: mk(100, uniform)},
		{name: "multi_block_uniform", data: mk(1000, uniform)},
		{name: "large_uniform", data: mk(16384, uniform)},
		{name: "all_equal", data: mk(777, func(int) storage.Value { return domain / 2 })},
		{name: "sorted", data: mk(1000, func(i int) storage.Value { return storage.Value(i % domain) })},
		{name: "reverse_sorted", data: mk(1000, func(i int) storage.Value { return storage.Value(domain - 1 - i%domain) })},
		{name: "clustered", data: mk(2048, func(i int) storage.Value { return storage.Value((i / 256) * 512) })},
		{name: "unroll_tail_7", data: mk(7, uniform)},   // below the 8-lane unroll
		{name: "unroll_edge_8", data: mk(8, uniform)},   // exactly one unrolled group
		{name: "unroll_tail_17", data: mk(17, uniform)}, // groups plus a tail
	}
	for i := range shapes {
		shapes[i].preds = corpusPreds(domain)
	}
	return shapes
}

// TestDifferentialScanKernels runs every kernel against the reference on
// the full corpus, per predicate and — for the shared kernels — per
// whole batch, with deliberately awkward block sizes and worker counts.
func TestDifferentialScanKernels(t *testing.T) {
	for _, tc := range corpus() {
		t.Run(tc.name, func(t *testing.T) {
			col := storage.NewColumn("v", tc.data)
			want := make([][]storage.RowID, len(tc.preds))
			for i, p := range tc.preds {
				want[i] = refFilter(tc.data, p)
			}

			// Single-predicate kernels.
			for i, p := range tc.preds {
				name := fmt.Sprintf("pred%d", i)
				sameIDs(t, name+"/Scan", Scan(tc.data, p, nil), want[i])
				sameIDs(t, name+"/ScanBranching", ScanBranching(tc.data, p, nil), want[i])
				sameIDs(t, name+"/ScanUnrolled", ScanUnrolled(tc.data, p, nil), want[i])
				sameIDs(t, name+"/ScanColumn", ScanColumn(col, p, 0, nil), want[i])
				sameIDs(t, name+"/Parallel_w1", Parallel(tc.data, p, 1), want[i])
				sameIDs(t, name+"/Parallel_w3", Parallel(tc.data, p, 3), want[i])
			}

			// Shared batch kernels, at block sizes that do and do not
			// divide the data evenly (7 forces ragged final blocks).
			for _, block := range []int{0, 7, 64} {
				tag := fmt.Sprintf("block%d", block)
				got := Shared(tc.data, tc.preds, block)
				for i := range tc.preds {
					sameIDs(t, fmt.Sprintf("Shared/%s/pred%d", tag, i), got[i], want[i])
				}
				for _, workers := range []int{1, 3} {
					gp := SharedParallel(tc.data, tc.preds, block, workers)
					for i := range tc.preds {
						sameIDs(t, fmt.Sprintf("SharedParallel/%s/w%d/pred%d", tag, workers, i), gp[i], want[i])
					}
				}
			}

			// Compressed twin (buildable: small domain, non-empty column).
			if cc, err := storage.Compress(col); err == nil {
				for _, block := range []int{0, 7} {
					got := SharedCompressed(cc, tc.preds, block)
					for i := range tc.preds {
						sameIDs(t, fmt.Sprintf("SharedCompressed/block%d/pred%d", block, i), got[i], want[i])
					}
				}
				for i, p := range tc.preds {
					sameIDs(t, fmt.Sprintf("Compressed/pred%d", i), Compressed(cc, p, nil), want[i])
				}
			}

			// Zonemap-assisted skipping at zone sizes that exercise both
			// skipped and checked zones.
			for _, zs := range []int{8, 100} {
				z := storage.BuildZonemap(col, zs)
				if z == nil {
					continue
				}
				got := SharedWithZonemap(tc.data, z, tc.preds)
				for i := range tc.preds {
					sameIDs(t, fmt.Sprintf("SharedWithZonemap/zs%d/pred%d", zs, i), got[i], want[i])
					sameIDs(t, fmt.Sprintf("WithZonemap/zs%d/pred%d", zs, i),
						WithZonemap(tc.data, z, tc.preds[i], nil), want[i])
				}
			}
		})
	}
}

// TestDifferentialStridedKernels pins the column-group (hybrid layout)
// scan to the same property: a strided member must select exactly what a
// contiguous copy of the attribute selects.
func TestDifferentialStridedKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 100, 1000} {
		a := make([]storage.Value, n)
		b := make([]storage.Value, n)
		for i := 0; i < n; i++ {
			a[i] = storage.Value(rng.Intn(512))
			b[i] = storage.Value(rng.Intn(512))
		}
		g, err := storage.NewColumnGroup([]string{"a", "b"}, [][]storage.Value{a, b})
		if err != nil {
			t.Fatalf("group(n=%d): %v", n, err)
		}
		col := g.Column("b")
		preds := corpusPreds(512)
		want := make([][]storage.RowID, len(preds))
		for i, p := range preds {
			want[i] = refFilter(b, p)
		}
		for i, p := range preds {
			sameIDs(t, fmt.Sprintf("n%d/ScanColumn_strided/pred%d", n, i),
				ScanColumn(col, p, 0, nil), want[i])
		}
		for _, block := range []int{0, 7} {
			for _, workers := range []int{1, 3} {
				got := SharedStrided(col, preds, block, workers)
				for i := range preds {
					sameIDs(t, fmt.Sprintf("n%d/SharedStrided/block%d/w%d/pred%d", n, block, workers, i),
						got[i], want[i])
				}
			}
		}
	}
}

// TestDifferentialRandomized hammers the property with randomized data
// and predicates under a fixed seed, so a failure reproduces exactly.
func TestDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20170514)) // the paper's SIGMOD year+day
	for round := 0; round < 40; round++ {
		n := rng.Intn(3000)
		domain := 1 + rng.Intn(8192)
		data := make([]storage.Value, n)
		for i := range data {
			data[i] = storage.Value(rng.Intn(domain))
		}
		q := 1 + rng.Intn(12)
		preds := make([]Predicate, q)
		for i := range preds {
			lo := storage.Value(rng.Intn(domain*2)) - storage.Value(domain/2)
			hi := lo + storage.Value(rng.Intn(domain))
			if rng.Intn(8) == 0 {
				lo, hi = hi+1, lo // occasionally inverted
			}
			preds[i] = Predicate{Lo: lo, Hi: hi}
		}
		want := make([][]storage.RowID, q)
		for i, p := range preds {
			want[i] = refFilter(data, p)
		}
		col := storage.NewColumn("v", data)
		block := []int{0, 7, 64, 1024}[rng.Intn(4)]
		workers := 1 + rng.Intn(4)

		for i, p := range preds {
			tag := fmt.Sprintf("round%d/pred%d", round, i)
			sameIDs(t, tag+"/Scan", Scan(data, p, nil), want[i])
			sameIDs(t, tag+"/ScanUnrolled", ScanUnrolled(data, p, nil), want[i])
			sameIDs(t, tag+"/Parallel", Parallel(data, p, workers), want[i])
		}
		got := SharedParallel(data, preds, block, workers)
		for i := range preds {
			sameIDs(t, fmt.Sprintf("round%d/SharedParallel/pred%d", round, i), got[i], want[i])
		}
		if cc, err := storage.Compress(col); err == nil {
			gc := SharedCompressed(cc, preds, block)
			gs := SharedCompressedScalar(cc, preds, block)
			for i := range preds {
				sameIDs(t, fmt.Sprintf("round%d/SharedCompressed/pred%d", round, i), gc[i], want[i])
				sameIDs(t, fmt.Sprintf("round%d/SharedCompressedScalar/pred%d", round, i), gs[i], want[i])
			}
		}
		z := storage.BuildZonemap(col, 1+rng.Intn(200))
		if z != nil {
			gz := SharedWithZonemap(data, z, preds)
			for i := range preds {
				sameIDs(t, fmt.Sprintf("round%d/SharedWithZonemap/pred%d", round, i), gz[i], want[i])
			}
		}
	}
}

package scan

import (
	"context"
	"sync"
	"sync/atomic"

	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/faultinject"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// FaultSiteMaterialize fires at the packed morsel's bitmap-to-rowID
// materialization boundary, once per (block, query) bitmap, inside the
// worker. An Error-kind rule fails the batch (the first error wins and
// surfaces from the dispatching call); a Panic-kind rule exercises the
// pool's panic relay through the materialization path.
const FaultSiteMaterialize = "scan.materialize"

// morselsPerWorker controls morsel granularity: the relation is cut
// into about 8 block-ranges per worker, so the work-stealing pool has
// enough units to rebalance a straggling high-selectivity predicate
// without paying per-block dispatch overhead. Each morsel still walks
// its range block-by-block (DefaultBlockTuples), so cache residency of
// the shared scan is untouched — morsel size only sets the stealing
// granularity and the cancellation latency.
const morselsPerWorker = 8

// sharedJob is one pooled shared-scan dispatch: the (block-range ×
// query-subset) morsel grid over one batch. Cell (r, qi) accumulates
// query qi's matches over block-range r; ranges concatenate in order
// during assembly, so per-query results stay in rowID order. It
// implements runtime.Job.
type sharedJob struct {
	data   []storage.Value // raw path (col == nil, packed == nil)
	col    *storage.Column // strided path
	packed []uint64        // SWAR path over word-packed codes
	codes  []storage.Code  // scalar head/tail companion of packed
	cb     []codeBounds    // per-query code bounds (packed path)
	preds  []Predicate
	hints  []int
	arena  *rt.Arena

	n, q        int
	blockTuples int
	rangeTuples int
	nr, nc      int // block-range count × query-chunk count
	chunk       int // queries per chunk
	cells       []*rt.Buf

	// failed/err carry the first morsel-level error (an injected
	// materialization fault) across the dispatch barrier: the CAS winner
	// writes err, the dispatcher reads it after Dispatch's WaitGroup.
	failed atomic.Bool
	err    error
}

// fail records a morsel's error; the first one wins.
func (j *sharedJob) fail(err error) {
	if j.failed.CompareAndSwap(false, true) {
		j.err = err
	}
}

var sharedJobPool = sync.Pool{New: func() any { return new(sharedJob) }}

// getSharedJob checks out a job and sizes its morsel grid for the
// pool's worker count.
func getSharedJob(pool *rt.Pool, arena *rt.Arena, data []storage.Value, col *storage.Column,
	preds []Predicate, blockTuples int, hints []int) *sharedJob {
	j := sharedJobPool.Get().(*sharedJob)
	j.data, j.col, j.preds, j.hints, j.arena = data, col, preds, hints, arena
	if col != nil {
		j.n = col.Len()
	} else {
		j.n = len(data)
	}
	j.q = len(preds)
	j.blockTuples = blockTuples
	if j.blockTuples <= 0 {
		j.blockTuples = DefaultBlockTuples
	}
	j.sizeGrid(pool)
	return j
}

// getPackedJob checks out a job for the SWAR scan over a compressed
// column: code bounds resolve once (two dictionary probes per query, on
// the dispatching goroutine), then the morsels evaluate packed words.
// The code-domain block size defaults to CodeBlockTuples — the same
// memsim byte budget as the raw path, in 2-byte tuples.
func getPackedJob(pool *rt.Pool, arena *rt.Arena, c *storage.CompressedColumn,
	preds []Predicate, blockTuples int, hints []int) *sharedJob {
	j := sharedJobPool.Get().(*sharedJob)
	j.packed, j.codes = c.PackedCodes(), c.Codes()
	j.preds, j.hints, j.arena = preds, hints, arena
	j.cb = resolveBounds(c, preds, j.cb)
	j.n = c.Len()
	j.q = len(preds)
	j.blockTuples = blockTuples
	if j.blockTuples <= 0 {
		j.blockTuples = CodeBlockTuples
	}
	j.sizeGrid(pool)
	return j
}

// sizeGrid sizes the (block-range × query-chunk) morsel grid for the
// pool's worker count.
func (j *sharedJob) sizeGrid(pool *rt.Pool) {
	workers := pool.Workers()
	blocks := (j.n + j.blockTuples - 1) / j.blockTuples
	if blocks == 0 {
		j.nr, j.nc, j.chunk = 0, 1, j.q
		j.cells = j.cells[:0]
		return
	}
	mb := blocks / (morselsPerWorker * workers)
	if mb < 1 {
		mb = 1
	}
	j.rangeTuples = mb * j.blockTuples
	j.nr = (j.n + j.rangeTuples - 1) / j.rangeTuples
	// With too few block-ranges to keep the workers busy (small
	// relation, many queries), split the query batch as well.
	j.nc, j.chunk = 1, j.q
	if j.q > 1 && j.nr < 2*workers {
		want := (2*workers + j.nr - 1) / j.nr
		if want > j.q {
			want = j.q
		}
		j.chunk = (j.q + want - 1) / want
		j.nc = (j.q + j.chunk - 1) / j.chunk
	}

	need := j.nr * j.q
	if cap(j.cells) < need {
		j.cells = make([]*rt.Buf, need)
	} else {
		j.cells = j.cells[:need]
		for i := range j.cells {
			j.cells[i] = nil
		}
	}
}

// putSharedJob releases untransferred cells and recycles the job.
func putSharedJob(j *sharedJob) {
	for i, c := range j.cells {
		if c != nil {
			j.arena.PutBuf(c)
			j.cells[i] = nil
		}
	}
	j.cells = j.cells[:0]
	j.data, j.col, j.preds, j.hints, j.arena = nil, nil, nil, nil, nil
	j.packed, j.codes = nil, nil
	j.cb = j.cb[:0]
	j.failed.Store(false)
	j.err = nil
	sharedJobPool.Put(j)
}

// cellHint sizes a block-range's cell: the optimizer's expected result
// cardinality for the query split evenly across ranges, plus one block
// of predication slack. The slack term is load-bearing for the arena's
// zero-allocation contract: the predicated kernels write the whole
// block unconditionally at the cursor (growFor demands len+block+1),
// so without it the first block always grows the cell past its
// checkout size class and the class pools never see a hit.
func (j *sharedJob) cellHint(qi int) int {
	slack := j.blockTuples + 1
	if qi < len(j.hints) {
		if h := j.hints[qi]; h > 0 {
			return h/j.nr + slack
		}
	}
	return slack
}

// packedCellHint sizes a packed morsel's cell: the SWAR kernels append
// only matches (no predication slack needed), so the hint is the
// per-range share of the expected cardinality padded by one bitmap
// word's worth of rows.
func (j *sharedJob) packedCellHint(qi int) int {
	if qi < len(j.hints) {
		if h := j.hints[qi]; h > 0 {
			return h/j.nr + swarWordCodes
		}
	}
	return swarWordCodes
}

// RunMorsel evaluates morsel i: query chunk (i mod nc) over block-range
// (i div nc), block by block so every predicate of the chunk visits a
// cache-resident block before it is evicted. Distinct morsels write
// disjoint cells, so no locking is needed; the dispatch WaitGroup
// publishes the writes to the assembling goroutine.
func (j *sharedJob) RunMorsel(i int) {
	if j.packed != nil {
		j.runPackedMorsel(i)
		return
	}
	r, c := i/j.nc, i%j.nc
	qlo := c * j.chunk
	qhi := min(qlo+j.chunk, j.q)
	lo0 := r * j.rangeTuples
	hi0 := min(lo0+j.rangeTuples, j.n)
	for lo := lo0; lo < hi0; lo += j.blockTuples {
		hi := min(lo+j.blockTuples, hi0)
		for qi := qlo; qi < qhi; qi++ {
			cell := j.cells[r*j.q+qi]
			if cell == nil {
				cell = j.arena.GetBuf(j.cellHint(qi))
				j.cells[r*j.q+qi] = cell
			}
			if j.col != nil {
				cell.IDs = scanStridedRange(j.col, j.preds[qi], lo, hi, cell.IDs)
			} else {
				cell.IDs = scanUnrolledBase(j.data[lo:hi], j.preds[qi], lo, cell.IDs)
			}
		}
	}
}

// runPackedMorsel is the SWAR morsel: per cache-resident block of
// packed codes, each query of the chunk evaluates the whole block into
// an arena-pooled match bitmap (branch-free, four codes per word) and
// then materializes the set positions into its cell. An injected
// materialization fault fails the batch via the job's first-error slot.
func (j *sharedJob) runPackedMorsel(i int) {
	r, c := i/j.nc, i%j.nc
	qlo := c * j.chunk
	qhi := min(qlo+j.chunk, j.q)
	lo0 := r * j.rangeTuples
	hi0 := min(lo0+j.rangeTuples, j.n)
	wb := j.arena.GetWords(bitmap.Words(j.blockTuples))
	bm := wb.W[:cap(wb.W)]
	for lo := lo0; lo < hi0; lo += j.blockTuples {
		hi := min(lo+j.blockTuples, hi0)
		for qi := qlo; qi < qhi; qi++ {
			b := j.cb[qi]
			if !b.ok {
				continue
			}
			swarRangeBitmap(j.packed, j.codes, lo, hi, b.lo, b.hi, bm)
			if err := faultinject.Fire(FaultSiteMaterialize); err != nil {
				j.fail(err)
				j.arena.PutWords(wb)
				return
			}
			cell := j.cells[r*j.q+qi]
			if cell == nil {
				cell = j.arena.GetBuf(j.packedCellHint(qi))
				j.cells[r*j.q+qi] = cell
			}
			cell.IDs = bitmap.AppendRows(bm, hi-lo, lo, cell.IDs)
		}
	}
	j.arena.PutWords(wb)
}

// SharedPoolContext is the morsel-driven shared scan: the batch is cut
// into (block-range × query-subset) morsels dispatched on the pool,
// result buffers come from the arena (sized by hints — expected result
// rows per query, normally the optimizer's selectivity estimate times
// N), and cancellation is observed between morsels rather than between
// batches. pool and arena may be nil (inline execution, plain
// allocation); hints may be nil or shorter than preds. The returned
// Results' buffers belong to the caller; Release them to keep the
// steady-state path allocation-free.
func SharedPoolContext(ctx context.Context, pool *rt.Pool, arena *rt.Arena,
	data []storage.Value, preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	j := getSharedJob(pool, arena, data, nil, preds, blockTuples, hints)
	return runSharedJob(ctx, pool, j)
}

// SharedPool is SharedPoolContext without cancellation.
func SharedPool(pool *rt.Pool, arena *rt.Arena, data []storage.Value,
	preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	return SharedPoolContext(context.Background(), pool, arena, data, preds, blockTuples, hints)
}

// SharedStridedPoolContext is the morsel-driven strided shared scan
// over a column-group member. Columns with a raw view take the
// contiguous kernel instead.
func SharedStridedPoolContext(ctx context.Context, pool *rt.Pool, arena *rt.Arena,
	c *storage.Column, preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	if raw, err := c.Raw(); err == nil {
		return SharedPoolContext(ctx, pool, arena, raw, preds, blockTuples, hints)
	}
	j := getSharedJob(pool, arena, nil, c, preds, blockTuples, hints)
	return runSharedJob(ctx, pool, j)
}

// SharedStridedPool is SharedStridedPoolContext without cancellation.
func SharedStridedPool(pool *rt.Pool, arena *rt.Arena, c *storage.Column,
	preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	return SharedStridedPoolContext(context.Background(), pool, arena, c, preds, blockTuples, hints)
}

// SharedCompressedPoolContext is the morsel-driven shared scan over the
// word-packed compressed column: per-query code bounds resolve once,
// (block-range × query-subset) morsels evaluate each cache-resident
// block branch-free with the SWAR word kernels into pooled match
// bitmaps, and rowIDs materialize late into arena cells. This is the
// engine's compressed scan path; blockTuples counts 16-bit codes and
// defaults to CodeBlockTuples.
func SharedCompressedPoolContext(ctx context.Context, pool *rt.Pool, arena *rt.Arena,
	c *storage.CompressedColumn, preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	j := getPackedJob(pool, arena, c, preds, blockTuples, hints)
	return runSharedJob(ctx, pool, j)
}

// SharedCompressedPool is SharedCompressedPoolContext without
// cancellation.
func SharedCompressedPool(pool *rt.Pool, arena *rt.Arena, c *storage.CompressedColumn,
	preds []Predicate, blockTuples int, hints []int) (*rt.Results, error) {
	return SharedCompressedPoolContext(context.Background(), pool, arena, c, preds, blockTuples, hints)
}

// runSharedJob dispatches the job's morsels and assembles per-query
// results: block-ranges concatenate in order, so rowID order is
// preserved. With nr == 1 the single range's cells transfer directly
// into the result set with no copy.
func runSharedJob(ctx context.Context, pool *rt.Pool, j *sharedJob) (*rt.Results, error) {
	if err := pool.Dispatch(ctx, j.nr*j.nc, j); err != nil {
		putSharedJob(j)
		return nil, err
	}
	if j.failed.Load() {
		err := j.err
		putSharedJob(j)
		return nil, err
	}
	arena := j.arena
	res := arena.GetResults(j.q)
	for qi := 0; qi < j.q; qi++ {
		if j.nr == 1 {
			if cell := j.cells[qi]; cell != nil {
				res.Attach(qi, cell)
				j.cells[qi] = nil
			}
			continue
		}
		total := 0
		for r := 0; r < j.nr; r++ {
			if c := j.cells[r*j.q+qi]; c != nil {
				total += len(c.IDs)
			}
		}
		out := arena.GetBuf(total)
		for r := 0; r < j.nr; r++ {
			if c := j.cells[r*j.q+qi]; c != nil {
				out.IDs = append(out.IDs, c.IDs...)
			}
		}
		res.Attach(qi, out)
	}
	putSharedJob(j)
	return res, nil
}

package scan

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fastcolumns/internal/race"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// TestDifferentialPooledSharedScan pins the morsel engine to the naive
// reference over the whole corpus, with one pool and one arena shared
// across every case and batches released between cases — so a cell
// transferred to a result while also returned to the arena (a double
// ownership bug) would corrupt a later case and fail the comparison.
func TestDifferentialPooledSharedScan(t *testing.T) {
	pool := rt.NewPool(3, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	for _, c := range corpus() {
		want := make([][]storage.RowID, len(c.preds))
		for i, p := range c.preds {
			want[i] = refFilter(c.data, p)
		}
		for _, block := range []int{0, 7, 64} {
			res, err := SharedPool(pool, arena, c.data, c.preds, block, nil)
			if err != nil {
				t.Fatalf("%s/block%d: %v", c.name, block, err)
			}
			for i := range c.preds {
				sameIDs(t, fmt.Sprintf("%s/SharedPool/block%d/pred%d", c.name, block, i),
					res.RowIDs[i], want[i])
			}
			res.Release()
		}
	}
}

// TestDifferentialPooledResultsSurviveLaterBatches is the aliasing
// guard: results of a live (unreleased) batch must not change when the
// arena serves later batches. If a buffer were handed out twice, the
// second batch would overwrite the first's rowIDs.
func TestDifferentialPooledResultsSurviveLaterBatches(t *testing.T) {
	pool := rt.NewPool(2, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	data := make([]storage.Value, 50_000)
	for i := range data {
		data[i] = storage.Value(i % 1024)
	}
	preds := []Predicate{{Lo: 0, Hi: 99}, {Lo: 500, Hi: 1023}, {Lo: 7, Hi: 7}}

	live, err := SharedPool(pool, arena, data, preds, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]storage.RowID, len(live.RowIDs))
	for i, ids := range live.RowIDs {
		snapshot[i] = append([]storage.RowID(nil), ids...)
	}
	// Hammer the arena with different batches, releasing each.
	other := []Predicate{{Lo: 0, Hi: 1023}, {Lo: 200, Hi: 300}}
	for round := 0; round < 10; round++ {
		res, err := SharedPool(pool, arena, data, other, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	for i := range live.RowIDs {
		sameIDs(t, fmt.Sprintf("live_batch/pred%d", i), live.RowIDs[i], snapshot[i])
	}
	live.Release()
}

// TestDifferentialSharedStatic pins the ablation baseline (the
// pre-morsel static query partition) to the reference too: a benchmark
// baseline that drifted from correctness would make the morsel
// comparison meaningless.
func TestDifferentialSharedStatic(t *testing.T) {
	for _, c := range corpus() {
		for _, workers := range []int{1, 2, 8} {
			got := SharedStatic(c.data, c.preds, 0, workers)
			for i, p := range c.preds {
				sameIDs(t, fmt.Sprintf("%s/SharedStatic/w%d/pred%d", c.name, workers, i),
					got[i], refFilter(c.data, p))
			}
		}
	}
}

// TestDifferentialPooledStrided pins the strided morsel path against
// the reference on a column-group member (no raw view).
func TestDifferentialPooledStrided(t *testing.T) {
	pool := rt.NewPool(2, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	for _, n := range []int{0, 1, 100, 3000} {
		a := make([]storage.Value, n)
		b := make([]storage.Value, n)
		for i := 0; i < n; i++ {
			a[i] = storage.Value(i % 97)
			b[i] = storage.Value((i * 31) % 512)
		}
		g, err := storage.NewColumnGroup([]string{"a", "b"}, [][]storage.Value{a, b})
		if err != nil {
			t.Fatalf("group(n=%d): %v", n, err)
		}
		col := g.Column("b")
		preds := corpusPreds(512)
		for _, block := range []int{0, 7} {
			res, err := SharedStridedPool(pool, arena, col, preds, block, nil)
			if err != nil {
				t.Fatalf("n%d/block%d: %v", n, block, err)
			}
			for i, p := range preds {
				sameIDs(t, fmt.Sprintf("n%d/SharedStridedPool/block%d/pred%d", n, block, i),
					res.RowIDs[i], refFilter(b, p))
			}
			res.Release()
		}
	}
}

func TestSharedPoolCancellation(t *testing.T) {
	pool := rt.NewPool(2, nil)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := make([]storage.Value, 100_000)
	_, err := SharedPoolContext(ctx, pool, nil, data, []Predicate{{Lo: 0, Hi: 1}}, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSharedPoolZeroAlloc pins the tentpole's allocation contract: the
// steady-state batch path — job checkout, morsel dispatch over the
// pool, arena buffer checkout sized by honest hints, assembly, release
// — allocates nothing per batch.
func TestSharedPoolZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	pool := rt.NewPool(2, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	const n = 64 * 1024
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(i % 1000)
	}
	preds := []Predicate{
		{Lo: 0, Hi: 199}, {Lo: 100, Hi: 149}, {Lo: 500, Hi: 999}, {Lo: 42, Hi: 42},
	}
	hints := make([]int, len(preds))
	for i, p := range preds {
		hints[i] = refCount(data, p)
	}
	ctx := context.Background()
	batch := func() {
		res, err := SharedPoolContext(ctx, pool, arena, data, preds, 0, hints)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	for i := 0; i < 8; i++ { // warm the pool deques, job pool and arena
		batch()
	}
	if allocs := testing.AllocsPerRun(100, batch); allocs != 0 {
		t.Errorf("pooled shared-scan batch allocates %.1f per run, want 0", allocs)
	}
}

// refCount is the naive counting reference used to build honest hints.
func refCount(data []storage.Value, p Predicate) int {
	c := 0
	for _, v := range data {
		if v >= p.Lo && v <= p.Hi {
			c++
		}
	}
	return c
}

// Package scan implements the fast sequential scan access path of
// Section 2.2: tight-loop predicated selection over dense arrays, an
// 8-way unrolled kernel standing in for SIMD, shared scans that evaluate
// many queries per cache-resident block, multi-core partitioned
// execution, scans directly over dictionary-compressed data, and
// zonemap-driven data skipping.
package scan

import "fastcolumns/internal/storage"

// Predicate is an inclusive range predicate lo <= v <= hi — the paper's
// select operator takes exactly this shape (point queries have lo == hi).
type Predicate struct {
	Lo, Hi storage.Value
}

// Matches reports whether v qualifies.
func (p Predicate) Matches(v storage.Value) bool { return v >= p.Lo && v <= p.Hi }

// Scan selects the rowIDs of qualifying tuples from a contiguous array
// using predication: the output position is written unconditionally and
// the cursor advances by the comparison outcome, avoiding the
// hard-to-predict branch of the naive loop (Section 2.2, "Result
// Writing"). The result is appended to out (which may be nil) and
// returned in rowID order.
func Scan(data []storage.Value, p Predicate, out []storage.RowID) []storage.RowID {
	// Grow once: predication needs writable slack at the write cursor.
	out = growFor(out, len(data))
	n := len(out)
	buf := out[:cap(out)]
	for i, v := range data {
		buf[n] = storage.RowID(i)
		if v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return buf[:n]
}

// ScanBranching is the naive branch-per-tuple scan, kept as the ablation
// baseline for the predication benchmark.
func ScanBranching(data []storage.Value, p Predicate, out []storage.RowID) []storage.RowID {
	for i, v := range data {
		if v >= p.Lo && v <= p.Hi {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

// ScanUnrolled is the vectorized stand-in: an 8-lane unrolled predicated
// kernel. Go exposes no stable SIMD intrinsics, so lane-parallelism is
// expressed as straight-line code the compiler can schedule; the scan
// stays bandwidth-bound, which is the property the cost model relies on.
func ScanUnrolled(data []storage.Value, p Predicate, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(data))
	n := len(out)
	buf := out[:cap(out)]
	lo, hi := p.Lo, p.Hi
	i := 0
	for ; i+8 <= len(data); i += 8 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		v4, v5, v6, v7 := data[i+4], data[i+5], data[i+6], data[i+7]
		buf[n] = storage.RowID(i)
		if v0 >= lo && v0 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 1)
		if v1 >= lo && v1 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 2)
		if v2 >= lo && v2 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 3)
		if v3 >= lo && v3 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 4)
		if v4 >= lo && v4 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 5)
		if v5 >= lo && v5 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 6)
		if v6 >= lo && v6 <= hi {
			n++
		}
		buf[n] = storage.RowID(i + 7)
		if v7 >= lo && v7 <= hi {
			n++
		}
	}
	for ; i < len(data); i++ {
		buf[n] = storage.RowID(i)
		if v := data[i]; v >= lo && v <= hi {
			n++
		}
	}
	return buf[:n]
}

// scanUnrolledBase is ScanUnrolled with rowIDs offset by base — the
// morsel kernel: each (block-range × query) cell scans its blocks with
// the unrolled predicated loop while emitting relation-absolute rowIDs.
func scanUnrolledBase(data []storage.Value, p Predicate, base int, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(data))
	n := len(out)
	buf := out[:cap(out)]
	lo, hi := p.Lo, p.Hi
	i := 0
	for ; i+8 <= len(data); i += 8 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		v4, v5, v6, v7 := data[i+4], data[i+5], data[i+6], data[i+7]
		buf[n] = storage.RowID(base + i)
		if v0 >= lo && v0 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 1)
		if v1 >= lo && v1 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 2)
		if v2 >= lo && v2 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 3)
		if v3 >= lo && v3 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 4)
		if v4 >= lo && v4 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 5)
		if v5 >= lo && v5 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 6)
		if v6 >= lo && v6 <= hi {
			n++
		}
		buf[n] = storage.RowID(base + i + 7)
		if v7 >= lo && v7 <= hi {
			n++
		}
	}
	for ; i < len(data); i++ {
		buf[n] = storage.RowID(base + i)
		if v := data[i]; v >= lo && v <= hi {
			n++
		}
	}
	return buf[:n]
}

// ScanColumn scans any column view, dispatching to the tight contiguous
// kernel or the strided column-group path. base offsets the produced
// rowIDs (used by partitioned execution).
func ScanColumn(c *storage.Column, p Predicate, base int, out []storage.RowID) []storage.RowID {
	raw, err := c.Raw()
	if err != nil {
		// Strided column-group member: no raw view exists.
		return scanStrided(c, p, base, out)
	}
	start := len(out)
	out = ScanUnrolled(raw, p, out)
	if base != 0 {
		for i := start; i < len(out); i++ {
			out[i] += storage.RowID(base)
		}
	}
	return out
}

// scanStrided walks a column-group member. Every qualifying check drags
// the full tuple's cache lines through the hierarchy — the strided-access
// penalty Figure 15 measures.
func scanStrided(c *storage.Column, p Predicate, base int, out []storage.RowID) []storage.RowID {
	n := c.Len()
	out = growFor(out, n)
	w := len(out)
	buf := out[:cap(out)]
	for i := 0; i < n; i++ {
		buf[w] = storage.RowID(base + i)
		if v := c.Get(i); v >= p.Lo && v <= p.Hi {
			w++
		}
	}
	return buf[:w]
}

// growFor ensures out has capacity for worst-case growth by n entries
// plus one predication slack slot.
func growFor(out []storage.RowID, n int) []storage.RowID {
	need := len(out) + n + 1
	if cap(out) >= need {
		return out
	}
	// Grow geometrically so block-at-a-time appenders stay amortized O(1).
	newCap := max(need, 2*cap(out))
	grown := make([]storage.RowID, len(out), newCap)
	copy(grown, out)
	return grown
}

// Count returns the number of qualifying tuples without materializing
// rowIDs — the COUNT(*) fast path, which skips result writing entirely
// (the only selectivity-dependent term of the scan's cost).
func Count(data []storage.Value, p Predicate) int {
	n := 0
	for _, v := range data {
		if v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return n
}

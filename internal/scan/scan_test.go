package scan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcolumns/internal/storage"
)

func randomData(seed int64, n int, domain int32) []storage.Value {
	rng := rand.New(rand.NewSource(seed))
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = rng.Int31n(domain)
	}
	return data
}

// reference is the trivially correct selection.
func reference(data []storage.Value, p Predicate) []storage.RowID {
	var out []storage.RowID
	for i, v := range data {
		if p.Matches(v) {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

func sameRowIDs(a, b []storage.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanKernelsAgree(t *testing.T) {
	data := randomData(1, 10007, 1000) // odd size exercises the unroll tail
	preds := []Predicate{
		{Lo: 100, Hi: 200},
		{Lo: 0, Hi: 999},     // everything
		{Lo: 2000, Hi: 3000}, // nothing
		{Lo: 500, Hi: 500},   // point
		{Lo: -10, Hi: 50},
	}
	for _, p := range preds {
		want := reference(data, p)
		for name, got := range map[string][]storage.RowID{
			"Scan":        Scan(data, p, nil),
			"Branching":   ScanBranching(data, p, nil),
			"Unrolled":    ScanUnrolled(data, p, nil),
			"Parallel(4)": Parallel(data, p, 4),
			"Parallel(1)": Parallel(data, p, 1),
		} {
			if !sameRowIDs(got, want) {
				t.Fatalf("%s disagrees with reference for %+v: got %d rows, want %d",
					name, p, len(got), len(want))
			}
		}
	}
}

func TestScanAppendsToExistingBuffer(t *testing.T) {
	data := []storage.Value{1, 5, 3}
	out := []storage.RowID{99}
	got := Scan(data, Predicate{Lo: 3, Hi: 5}, out)
	want := []storage.RowID{99, 1, 2}
	if !sameRowIDs(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestScanEmptyInput(t *testing.T) {
	if got := Scan(nil, Predicate{Lo: 0, Hi: 10}, nil); len(got) != 0 {
		t.Fatalf("scan of empty input returned %v", got)
	}
	if got := ScanUnrolled(nil, Predicate{Lo: 0, Hi: 10}, nil); len(got) != 0 {
		t.Fatalf("unrolled scan of empty input returned %v", got)
	}
}

func TestScanColumnStrided(t *testing.T) {
	g, err := storage.NewColumnGroup(
		[]string{"a", "b"},
		[][]storage.Value{{1, 2, 3, 4}, {10, 20, 30, 40}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := ScanColumn(g.Column("b"), Predicate{Lo: 20, Hi: 30}, 0, nil)
	if !sameRowIDs(got, []storage.RowID{1, 2}) {
		t.Fatalf("strided scan = %v", got)
	}
	// With a base offset (partitioned execution).
	got = ScanColumn(g.Column("b"), Predicate{Lo: 20, Hi: 30}, 100, nil)
	if !sameRowIDs(got, []storage.RowID{101, 102}) {
		t.Fatalf("strided scan with base = %v", got)
	}
}

func TestScanColumnContiguousWithBase(t *testing.T) {
	c := storage.NewColumn("v", []storage.Value{5, 6, 7})
	got := ScanColumn(c, Predicate{Lo: 6, Hi: 7}, 1000, nil)
	if !sameRowIDs(got, []storage.RowID{1001, 1002}) {
		t.Fatalf("contiguous scan with base = %v", got)
	}
}

func TestScanQuickAgainstReference(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw int16, sizeSeed uint16) bool {
		n := 1 + int(sizeSeed)%4096
		data := randomData(seed, n, 1<<14)
		lo, hi := storage.Value(loRaw), storage.Value(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := Predicate{Lo: lo, Hi: hi}
		want := reference(data, p)
		return sameRowIDs(Scan(data, p, nil), want) &&
			sameRowIDs(ScanUnrolled(data, p, nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateMatches(t *testing.T) {
	p := Predicate{Lo: 2, Hi: 4}
	for v, want := range map[storage.Value]bool{1: false, 2: true, 3: true, 4: true, 5: false} {
		if p.Matches(v) != want {
			t.Fatalf("Matches(%d) = %v", v, !want)
		}
	}
}

func TestSharedStridedMatchesReference(t *testing.T) {
	n := 30000
	cols := make([][]storage.Value, 4)
	for j := range cols {
		cols[j] = randomData(int64(20+j), n, 1<<16)
	}
	g, err := storage.NewColumnGroup([]string{"a", "b", "c", "d"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	target := g.Column("c")
	preds := randomPreds(21, 7, 1<<16, 3000)
	for _, workers := range []int{1, 4, 16} {
		results := SharedStrided(target, preds, 1024, workers)
		for qi, p := range preds {
			want := reference(cols[2], p)
			if !sameRowIDs(results[qi], want) {
				t.Fatalf("workers=%d query %d disagrees (%d vs %d rows)",
					workers, qi, len(results[qi]), len(want))
			}
		}
	}
	// Contiguous columns fall through to the flat shared scan.
	flat := storage.NewColumn("x", cols[0])
	results := SharedStrided(flat, preds, 0, 4)
	for qi, p := range preds {
		if !sameRowIDs(results[qi], reference(cols[0], p)) {
			t.Fatalf("contiguous fallthrough query %d disagrees", qi)
		}
	}
}

package scan

import (
	"runtime"
	"sync"

	"fastcolumns/internal/storage"
)

// DefaultBlockTuples is the shared-scan block size in tuples: 16Ki 4-byte
// values are 64 KiB, comfortably cache resident while all q predicates
// visit the block (Figure 2(b)).
const DefaultBlockTuples = 16384

// Shared evaluates q predicates in one pass over the data: each block is
// brought up the memory hierarchy once and every query filters it before
// eviction. Results are per query, in rowID order.
func Shared(data []storage.Value, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	results := make([][]storage.RowID, len(preds))
	for lo := 0; lo < len(data); lo += blockTuples {
		hi := min(lo+blockTuples, len(data))
		block := data[lo:hi]
		for qi, p := range preds {
			results[qi] = scanWithBase(block, p, lo, results[qi])
		}
	}
	return results
}

// scanWithBase is the predicated kernel with rowIDs offset by base.
func scanWithBase(data []storage.Value, p Predicate, base int, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(data))
	n := len(out)
	buf := out[:cap(out)]
	for i, v := range data {
		buf[n] = storage.RowID(base + i)
		if v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return buf[:n]
}

// SharedParallel runs a shared scan with the q queries of each block
// spread across workers, the way FastColumns assigns each select operator
// its own hardware thread (Section 2.2). Blocks are processed in order;
// per-query results stay in rowID order. workers <= 0 selects GOMAXPROCS.
func SharedParallel(data []storage.Value, preds []Predicate, blockTuples, workers int) [][]storage.RowID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(preds) == 1 {
		return Shared(data, preds, blockTuples)
	}
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	results := make([][]storage.RowID, len(preds))
	var wg sync.WaitGroup
	// Partition queries across workers; each worker streams all blocks for
	// its query subset so a block is still shared within the subset.
	for w := 0; w < workers; w++ {
		qlo := len(preds) * w / workers
		qhi := len(preds) * (w + 1) / workers
		if qlo == qhi {
			continue
		}
		wg.Add(1)
		go func(qlo, qhi int) {
			defer wg.Done()
			for lo := 0; lo < len(data); lo += blockTuples {
				hi := min(lo+blockTuples, len(data))
				block := data[lo:hi]
				for qi := qlo; qi < qhi; qi++ {
					results[qi] = scanWithBase(block, preds[qi], lo, results[qi])
				}
			}
		}(qlo, qhi)
	}
	wg.Wait()
	return results
}

// Parallel scans one predicate with the relation partitioned across
// workers — the multi-core single-query scan. Partitions concatenate in
// order, so the result is already in rowID order.
func Parallel(data []storage.Value, p Predicate, workers int) []storage.RowID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(data) < 2*DefaultBlockTuples {
		return ScanUnrolled(data, p, nil)
	}
	parts := make([][]storage.RowID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(data) * w / workers
		hi := len(data) * (w + 1) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := ScanUnrolled(data[lo:hi], p, nil)
			for i := range part {
				part[i] += storage.RowID(lo)
			}
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make([]storage.RowID, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

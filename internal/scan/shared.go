package scan

import (
	"sync"

	"fastcolumns/internal/memsim"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// DefaultBlockTuples is the shared-scan block size in tuples, derived
// from the calibrated cache budget in internal/memsim: 16Ki 4-byte
// values are 64 KiB, comfortably cache resident while all q predicates
// visit the block (Figure 2(b)). The compressed twin's CodeBlockTuples
// derives from the same byte budget.
const DefaultBlockTuples = memsim.SharedBlockBytes / 4

// Shared evaluates q predicates in one pass over the data: each block is
// brought up the memory hierarchy once and every query filters it before
// eviction. Results are per query, in rowID order.
func Shared(data []storage.Value, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	results := make([][]storage.RowID, len(preds))
	for lo := 0; lo < len(data); lo += blockTuples {
		hi := min(lo+blockTuples, len(data))
		block := data[lo:hi]
		for qi, p := range preds {
			results[qi] = scanWithBase(block, p, lo, results[qi])
		}
	}
	return results
}

// scanWithBase is the predicated kernel with rowIDs offset by base.
func scanWithBase(data []storage.Value, p Predicate, base int, out []storage.RowID) []storage.RowID {
	out = growFor(out, len(data))
	n := len(out)
	buf := out[:cap(out)]
	for i, v := range data {
		buf[n] = storage.RowID(base + i)
		if v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return buf[:n]
}

// SharedParallel runs the parallel shared scan. It is the compatibility
// entry point over the morsel runtime (SharedPoolContext): morsels
// dispatch on the process-wide default pool and buffers are plainly
// allocated, so callers keep the familiar [][]RowID contract. Engine
// code paths use SharedPoolContext directly with the engine's own pool,
// arena and cardinality hints. workers is advisory: 1 (or a
// single-query batch) selects the serial scan, anything else the pool.
func SharedParallel(data []storage.Value, preds []Predicate, blockTuples, workers int) [][]storage.RowID {
	if workers == 1 || len(preds) == 1 {
		return Shared(data, preds, blockTuples)
	}
	res, err := SharedPool(rt.Default(), nil, data, preds, blockTuples, nil)
	if err != nil {
		// Only injected morsel faults can fail a background-context
		// dispatch; answer the batch serially rather than dropping it.
		return Shared(data, preds, blockTuples)
	}
	//fclint:ignore arenaescape compat wrapper passes a nil arena to SharedPool, so RowIDs are heap-backed, never pooled
	return res.RowIDs
}

// SharedStatic is the pre-morsel parallel shared scan kept as the
// ablation baseline: the q queries are statically partitioned into
// len(preds)*w/workers slices, one goroutine each, so a skewed batch
// (one high-selectivity predicate among cheap ones) straggles on a
// single worker while the others sit idle — exactly the behaviour the
// skewed-batch benchmark measures against the morsel scheduler. Spawns
// fresh goroutines per call (via runtime.Go), which is part of the
// baseline's honest cost. workers <= 0 selects the pool's default
// width.
func SharedStatic(data []storage.Value, preds []Predicate, blockTuples, workers int) [][]storage.RowID {
	if workers <= 0 {
		workers = rt.Default().Workers()
	}
	if workers == 1 || len(preds) == 1 {
		return Shared(data, preds, blockTuples)
	}
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	results := make([][]storage.RowID, len(preds))
	var wg sync.WaitGroup
	// Partition queries across workers; each worker streams all blocks for
	// its query subset so a block is still shared within the subset.
	for w := 0; w < workers; w++ {
		qlo := len(preds) * w / workers
		qhi := len(preds) * (w + 1) / workers
		if qlo == qhi {
			continue
		}
		wg.Add(1)
		rt.Go(func() {
			defer wg.Done()
			for lo := 0; lo < len(data); lo += blockTuples {
				hi := min(lo+blockTuples, len(data))
				block := data[lo:hi]
				for qi := qlo; qi < qhi; qi++ {
					results[qi] = scanWithBase(block, preds[qi], lo, results[qi])
				}
			}
		})
	}
	wg.Wait()
	return results
}

// Parallel scans one predicate with the relation partitioned across
// workers — the multi-core single-query scan, now morsel-dispatched on
// the default pool (block-range morsels subsume the old static data
// partition, and concatenate in order, so the result stays in rowID
// order).
func Parallel(data []storage.Value, p Predicate, workers int) []storage.RowID {
	if workers == 1 || len(data) < 2*DefaultBlockTuples {
		return ScanUnrolled(data, p, nil)
	}
	res, err := SharedPool(rt.Default(), nil, data, []Predicate{p}, 0, nil)
	if err != nil {
		return ScanUnrolled(data, p, nil)
	}
	//fclint:ignore arenaescape compat wrapper passes a nil arena to SharedPool, so RowIDs are heap-backed, never pooled
	return res.RowIDs[0]
}

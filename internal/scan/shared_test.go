package scan

import (
	"math/rand"
	"testing"
)

func randomPreds(seed int64, q int, domain int32, width int32) []Predicate {
	rng := rand.New(rand.NewSource(seed))
	preds := make([]Predicate, q)
	for i := range preds {
		lo := rng.Int31n(domain)
		preds[i] = Predicate{Lo: lo, Hi: lo + rng.Int31n(width)}
	}
	return preds
}

func TestSharedMatchesIndependentScans(t *testing.T) {
	data := randomData(2, 50000, 1<<16)
	preds := randomPreds(3, 9, 1<<16, 4000)
	for _, block := range []int{0, 100, 4096, 1 << 20} {
		results := Shared(data, preds, block)
		if len(results) != len(preds) {
			t.Fatalf("got %d result sets, want %d", len(results), len(preds))
		}
		for qi, p := range preds {
			want := reference(data, p)
			if !sameRowIDs(results[qi], want) {
				t.Fatalf("block=%d query %d: shared scan disagrees (%d vs %d rows)",
					block, qi, len(results[qi]), len(want))
			}
		}
	}
}

func TestSharedParallelMatchesShared(t *testing.T) {
	data := randomData(4, 80000, 1<<16)
	preds := randomPreds(5, 16, 1<<16, 2000)
	for _, workers := range []int{1, 2, 3, 8, 32} {
		results := SharedParallel(data, preds, 0, workers)
		for qi, p := range preds {
			want := reference(data, p)
			if !sameRowIDs(results[qi], want) {
				t.Fatalf("workers=%d query %d disagrees", workers, qi)
			}
		}
	}
}

func TestSharedParallelMoreWorkersThanQueries(t *testing.T) {
	data := randomData(6, 10000, 1000)
	preds := randomPreds(7, 2, 1000, 100)
	results := SharedParallel(data, preds, 0, 16)
	for qi, p := range preds {
		if !sameRowIDs(results[qi], reference(data, p)) {
			t.Fatalf("query %d disagrees", qi)
		}
	}
}

func TestParallelSmallInputFallsBack(t *testing.T) {
	data := randomData(8, 100, 50)
	p := Predicate{Lo: 10, Hi: 30}
	if !sameRowIDs(Parallel(data, p, 8), reference(data, p)) {
		t.Fatal("small-input parallel scan disagrees")
	}
}

func TestParallelResultsInRowIDOrder(t *testing.T) {
	data := randomData(9, 1<<18, 1<<10)
	p := Predicate{Lo: 0, Hi: 512}
	got := Parallel(data, p, 7)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("rowIDs out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
}

func TestSharedEmptyBatch(t *testing.T) {
	data := randomData(10, 100, 10)
	if got := Shared(data, nil, 0); len(got) != 0 {
		t.Fatalf("empty batch produced %d result sets", len(got))
	}
}

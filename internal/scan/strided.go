package scan

import (
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// SharedStrided answers a batch of predicates over a column-group member:
// the group's rows are walked in blocks and every query evaluates each
// block before moving on (the same sharing discipline as Shared, paying
// the strided-access penalty once per block instead of once per query).
// The compatibility wrapper over SharedStridedPoolContext: morsels
// dispatch on the default pool. workers is advisory: 1 (or a
// single-query batch) selects the serial walk.
func SharedStrided(c *storage.Column, preds []Predicate, blockTuples, workers int) [][]storage.RowID {
	if raw, err := c.Raw(); err == nil {
		return SharedParallel(raw, preds, blockTuples, workers)
	}
	if workers == 1 || len(preds) == 1 {
		return sharedStridedSerial(c, preds, blockTuples)
	}
	res, err := SharedStridedPool(rt.Default(), nil, c, preds, blockTuples, nil)
	if err != nil {
		return sharedStridedSerial(c, preds, blockTuples)
	}
	//fclint:ignore arenaescape compat wrapper passes a nil arena to SharedStridedPool, so RowIDs are heap-backed, never pooled
	return res.RowIDs
}

// sharedStridedSerial is the single-goroutine strided shared scan.
func sharedStridedSerial(c *storage.Column, preds []Predicate, blockTuples int) [][]storage.RowID {
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	n := c.Len()
	results := make([][]storage.RowID, len(preds))
	for lo := 0; lo < n; lo += blockTuples {
		hi := min(lo+blockTuples, n)
		for qi, p := range preds {
			results[qi] = scanStridedRange(c, p, lo, hi, results[qi])
		}
	}
	return results
}

// scanStridedRange runs the predicated kernel over rows [lo, hi) of a
// strided view.
func scanStridedRange(c *storage.Column, p Predicate, lo, hi int, out []storage.RowID) []storage.RowID {
	out = growFor(out, hi-lo)
	n := len(out)
	buf := out[:cap(out)]
	for i := lo; i < hi; i++ {
		buf[n] = storage.RowID(i)
		if v := c.Get(i); v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return buf[:n]
}

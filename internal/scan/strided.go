package scan

import (
	"runtime"
	"sync"

	"fastcolumns/internal/storage"
)

// SharedStrided answers a batch of predicates over a column-group member:
// the group's rows are walked in blocks and every query evaluates each
// block before moving on (the same sharing discipline as Shared, paying
// the strided-access penalty once per block instead of once per query).
// Queries spread across workers. workers <= 0 selects GOMAXPROCS.
func SharedStrided(c *storage.Column, preds []Predicate, blockTuples, workers int) [][]storage.RowID {
	if raw, err := c.Raw(); err == nil {
		return SharedParallel(raw, preds, blockTuples, workers)
	}
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := c.Len()
	results := make([][]storage.RowID, len(preds))
	if workers == 1 || len(preds) == 1 {
		for lo := 0; lo < n; lo += blockTuples {
			hi := min(lo+blockTuples, n)
			for qi, p := range preds {
				results[qi] = scanStridedRange(c, p, lo, hi, results[qi])
			}
		}
		return results
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qlo := len(preds) * w / workers
		qhi := len(preds) * (w + 1) / workers
		if qlo == qhi {
			continue
		}
		wg.Add(1)
		go func(qlo, qhi int) {
			defer wg.Done()
			for lo := 0; lo < n; lo += blockTuples {
				hi := min(lo+blockTuples, n)
				for qi := qlo; qi < qhi; qi++ {
					results[qi] = scanStridedRange(c, preds[qi], lo, hi, results[qi])
				}
			}
		}(qlo, qhi)
	}
	wg.Wait()
	return results
}

// scanStridedRange runs the predicated kernel over rows [lo, hi) of a
// strided view.
func scanStridedRange(c *storage.Column, p Predicate, lo, hi int, out []storage.RowID) []storage.RowID {
	out = growFor(out, hi-lo)
	n := len(out)
	buf := out[:cap(out)]
	for i := lo; i < hi; i++ {
		buf[n] = storage.RowID(i)
		if v := c.Get(i); v >= p.Lo && v <= p.Hi {
			n++
		}
	}
	return buf[:n]
}

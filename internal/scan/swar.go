package scan

import (
	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/storage"
)

// SWAR (SIMD-within-a-register) range evaluation over the word-packed
// code layout (storage.PackedCodes): four 16-bit codes per uint64, all
// four compared against a query's code bounds with plain 64-bit
// arithmetic — no branches, no per-tuple stores. The scan's per-tuple
// work becomes a handful of word operations; matches surface as bitmap
// words whose set positions are materialized into rowIDs only at the
// end (internal/bitmap), so the cost that scales with selectivity is
// separated from the cost that scales with N. This is the BitWeaving-
// style trick the paper's Appendix D assumes when it credits the scan
// with W-way parallelism.

const (
	// swarH masks the MSB of each 16-bit lane.
	swarH = uint64(0x8000800080008000)
	// swarOnes replicates a 16-bit value into all four lanes.
	swarOnes = uint64(0x0001000100010001)
	// swarWordCodes is the number of codes covered by one match-bitmap
	// word: 64 bits = 16 packed words x 4 lanes.
	swarWordCodes = 64
)

// bcast16 broadcasts a code into all four lanes.
func bcast16(c storage.Code) uint64 { return uint64(c) * swarOnes }

// swarLT16 compares the four 16-bit lanes of x and y (unsigned) and
// returns the lanes' MSBs set where x < y. The subtract/borrow trick:
// t = (x|H) - (y&^H) subtracts the low 15 bits with no cross-lane
// borrow (each minuend lane is >= 2^15, each subtrahend lane < 2^15),
// leaving t's lane MSB = NOT borrow, i.e. clear iff xlow < ylow. The
// full 16-bit comparison then resolves by MSB: x < y when x's MSB is
// clear and y's is set, or when the MSBs agree and the low bits borrow.
func swarLT16(x, y uint64) uint64 {
	t := (x | swarH) - (y &^ swarH)
	return ((^x & y) | (^(x ^ y) &^ t)) & swarH
}

// swarRangeFlags evaluates lo <= lane <= hi on the four lanes of w and
// compacts the four match flags into bits 0..3 (bit k = lane k = code
// 4*word+k, so flag order matches row order). lov and hiv are the
// broadcast bounds.
func swarRangeFlags(w, lov, hiv uint64) uint64 {
	m := swarH &^ (swarLT16(w, lov) | swarLT16(hiv, w))
	return (m>>15 | m>>30 | m>>45 | m>>60) & 0xF
}

// swarMatchWord evaluates the 64 codes held in packed[w0:w0+16] and
// returns their match-bitmap word (bit j = code 64*(w0/16)+j... i.e.
// bit j corresponds to the j-th code of the span).
func swarMatchWord(packed []uint64, w0 int, lov, hiv uint64) uint64 {
	var m uint64
	words := packed[w0 : w0+16 : w0+16]
	for k, w := range words {
		m |= swarRangeFlags(w, lov, hiv) << (uint(k) * 4)
	}
	return m
}

// appendPackedMatches appends the rowIDs of codes i in [lo, hi) with
// clo <= codes[i] <= chi, in ascending order. 64-code aligned spans run
// through the SWAR word kernel with the bitmap word kept in a register
// and materialized immediately (a zero word — the common case at low
// selectivity — costs one well-predicted branch); the ragged head and
// tail fall back to the scalar comparison, since the packed tail word
// has no sentinel lanes to hide behind.
func appendPackedMatches(packed []uint64, codes []storage.Code, lo, hi int,
	clo, chi storage.Code, out []storage.RowID) []storage.RowID {
	i := lo
	// Scalar head up to the next bitmap-word boundary.
	head := (lo + swarWordCodes - 1) &^ (swarWordCodes - 1)
	if head > hi {
		head = hi
	}
	for ; i < head; i++ {
		if c := codes[i]; c >= clo && c <= chi {
			out = append(out, storage.RowID(i))
		}
	}
	lov, hiv := bcast16(clo), bcast16(chi)
	for ; i+swarWordCodes <= hi; i += swarWordCodes {
		if m := swarMatchWord(packed, i>>2, lov, hiv); m != 0 {
			out = bitmap.AppendWord(m, i, out)
		}
	}
	// Whole packed words left of the scalar tail.
	for ; i+storage.CodesPerWord <= hi; i += storage.CodesPerWord {
		if f := swarRangeFlags(packed[i>>2], lov, hiv); f != 0 {
			out = bitmap.AppendWord(f, i, out)
		}
	}
	for ; i < hi; i++ {
		if c := codes[i]; c >= clo && c <= chi {
			out = append(out, storage.RowID(i))
		}
	}
	return out
}

// swarRangeBitmap fills bm with the match bitmap of codes [lo, hi):
// bit i-lo is set iff clo <= codes[i] <= chi. bm must hold
// bitmap.Words(hi-lo) words; it is fully (re)written, so pooled buffers
// need no clearing by the caller. Block starts aligned to 64 codes take
// the register-accumulating fast path; arbitrary starts (ragged blocks
// in tests, tail blocks) place each packed word's four flags at bit
// offset i-lo, spilling into the next bitmap word when they straddle.
func swarRangeBitmap(packed []uint64, codes []storage.Code, lo, hi int,
	clo, chi storage.Code, bm []uint64) {
	nbits := hi - lo
	nwords := bitmap.Words(nbits)
	bm = bm[:nwords]
	for w := range bm {
		bm[w] = 0
	}
	i := lo
	lov, hiv := bcast16(clo), bcast16(chi)
	if lo&(swarWordCodes-1) == 0 {
		w := 0
		for ; i+swarWordCodes <= hi; i, w = i+swarWordCodes, w+1 {
			bm[w] = swarMatchWord(packed, i>>2, lov, hiv)
		}
	}
	// Scalar to packed-word alignment (only when lo itself is unaligned).
	for ; i < hi && i&(storage.CodesPerWord-1) != 0; i++ {
		if c := codes[i]; c >= clo && c <= chi {
			bm[(i-lo)>>6] |= 1 << (uint(i-lo) & 63)
		}
	}
	// Packed words at arbitrary bit offsets; four flags can straddle two
	// bitmap words (shifts >= 64 vanish in Go, so the spill guard keys on
	// the offset, not the shifted value).
	for ; i+storage.CodesPerWord <= hi; i += storage.CodesPerWord {
		if f := swarRangeFlags(packed[i>>2], lov, hiv); f != 0 {
			o := uint(i - lo)
			bm[o>>6] |= f << (o & 63)
			if o&63 > 60 {
				bm[o>>6+1] |= f >> (64 - o&63)
			}
		}
	}
	for ; i < hi; i++ {
		if c := codes[i]; c >= clo && c <= chi {
			bm[(i-lo)>>6] |= 1 << (uint(i-lo) & 63)
		}
	}
}

package scan

import (
	"fmt"
	"testing"

	"fastcolumns/internal/bitmap"
	"fastcolumns/internal/race"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/storage"
)

// refWordFlags is the scalar specification of swarRangeFlags: extract
// each 16-bit lane and compare it the obvious way.
func refWordFlags(w uint64, lo, hi uint16) uint64 {
	var f uint64
	for k := 0; k < storage.CodesPerWord; k++ {
		c := uint16(w >> (16 * uint(k)))
		if c >= lo && c <= hi {
			f |= 1 << uint(k)
		}
	}
	return f
}

// swarBoundaryCodes are the values where the borrow trick's lane MSB
// bookkeeping could go wrong: the lane extremes, the sign-bit fence at
// 0x8000, and their neighbors.
var swarBoundaryCodes = []uint16{0, 1, 0x7ffe, 0x7fff, 0x8000, 0x8001, 0xfffe, 0xffff}

// TestSWARRangeFlagsBoundaries sweeps every 4-lane combination of the
// boundary codes against every (lo, hi) bound pair drawn from the same
// set — including inverted bounds, which must match nothing.
func TestSWARRangeFlagsBoundaries(t *testing.T) {
	n := len(swarBoundaryCodes)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					w := uint64(swarBoundaryCodes[a]) |
						uint64(swarBoundaryCodes[b])<<16 |
						uint64(swarBoundaryCodes[c])<<32 |
						uint64(swarBoundaryCodes[d])<<48
					for _, lo := range swarBoundaryCodes {
						for _, hi := range swarBoundaryCodes {
							got := swarRangeFlags(w, bcast16(lo), bcast16(hi))
							want := refWordFlags(w, lo, hi)
							if got != want {
								t.Fatalf("swarRangeFlags(%#016x, lo=%#x, hi=%#x) = %#x, want %#x",
									w, lo, hi, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// FuzzSWARWord cross-checks the SWAR word evaluation against the scalar
// loop on arbitrary words and bounds.
func FuzzSWARWord(f *testing.F) {
	f.Add(uint64(0), uint16(0), uint16(0xffff))
	f.Add(^uint64(0), uint16(0x8000), uint16(0x8000))
	f.Add(uint64(0x7fff8000ffff0001), uint16(1), uint16(0x7fff))
	f.Add(uint64(0x0001000100010001), uint16(2), uint16(1)) // inverted bounds
	f.Fuzz(func(t *testing.T, w uint64, lo, hi uint16) {
		got := swarRangeFlags(w, bcast16(lo), bcast16(hi))
		want := refWordFlags(w, lo, hi)
		if got != want {
			t.Fatalf("swarRangeFlags(%#016x, lo=%#x, hi=%#x) = %#x, want %#x",
				w, lo, hi, got, want)
		}
	})
}

// TestSWARRangeBitmapRaggedSpans pins swarRangeBitmap at every (lo, hi)
// alignment class — aligned starts take the register fast path, ragged
// starts exercise the straddle spill — against the scalar reference,
// through the bitmap materializer.
func TestSWARRangeBitmapRaggedSpans(t *testing.T) {
	const n = 520
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(i % 97)
	}
	cc, err := storage.Compress(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 10, Hi: 60}
	clo, chi, ok := cc.Dict().EncodeRange(p.Lo, p.Hi)
	if !ok {
		t.Fatal("predicate resolved to an empty code range")
	}
	bm := make([]uint64, bitmap.Words(n))
	var out []storage.RowID
	for _, lo := range []int{0, 1, 3, 61, 63, 64, 67, 128, 200} {
		for _, hi := range []int{lo, lo + 1, lo + 3, lo + 63, lo + 64, lo + 65, n} {
			if hi > n || hi < lo {
				continue
			}
			swarRangeBitmap(cc.PackedCodes(), cc.Codes(), lo, hi, clo, chi, bm)
			out = bitmap.AppendRows(bm, hi-lo, lo, out[:0])
			want := refFilter(data[lo:hi], p)
			for i := range want {
				want[i] += storage.RowID(lo)
			}
			sameIDs(t, fmt.Sprintf("span[%d:%d]", lo, hi), out, want)
			if got, w := bitmap.CountRows(bm, hi-lo), len(want); got != w {
				t.Errorf("CountRows(span[%d:%d]) = %d, want %d", lo, hi, got, w)
			}
		}
	}
}

// TestDifferentialPackedKernels extends the differential property to the
// packed-scan variants the benchmark compares: the scalar ablation
// baseline and the pooled SWAR morsel path must both agree with the
// naive reference on the whole corpus, at block sizes that are and are
// not multiples of the 64-code bitmap word.
func TestDifferentialPackedKernels(t *testing.T) {
	pool := rt.NewPool(3, nil)
	defer pool.Close()
	arena := rt.NewArena(0, nil)
	for _, tc := range corpus() {
		col := storage.NewColumn("v", tc.data)
		cc, err := storage.Compress(col)
		if err != nil {
			continue // empty column: no compressed twin to test
		}
		want := make([][]storage.RowID, len(tc.preds))
		for i, p := range tc.preds {
			want[i] = refFilter(tc.data, p)
		}
		for _, block := range []int{0, 7, 64} {
			gs := SharedCompressedScalar(cc, tc.preds, block)
			for i := range tc.preds {
				sameIDs(t, fmt.Sprintf("%s/SharedCompressedScalar/block%d/pred%d", tc.name, block, i),
					gs[i], want[i])
			}
			res, err := SharedCompressedPool(pool, arena, cc, tc.preds, block, nil)
			if err != nil {
				t.Fatalf("%s/SharedCompressedPool/block%d: %v", tc.name, block, err)
			}
			for i := range tc.preds {
				sameIDs(t, fmt.Sprintf("%s/SharedCompressedPool/block%d/pred%d", tc.name, block, i),
					res.RowIDs[i], want[i])
			}
			res.Release()
		}
	}
}

// TestSWARKernelsZeroAlloc pins the steady-state allocation contract of
// the packed hot path: with warm buffers, the SWAR scan, the bitmap
// kernel, and rowID materialization allocate nothing per call. The
// packed cost model charges alpha only for result writing; a hidden
// allocation per block would add a GC term it doesn't know about.
func TestSWARKernelsZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run without -race")
	}
	data := make([]storage.Value, 4096)
	for i := range data {
		data[i] = storage.Value(i % 997)
	}
	cc, err := storage.Compress(storage.NewColumn("v", data))
	if err != nil {
		t.Fatal(err)
	}
	p := Predicate{Lo: 100, Hi: 500}
	clo, chi, ok := cc.Dict().EncodeRange(p.Lo, p.Hi)
	if !ok {
		t.Fatal("predicate resolved to an empty code range")
	}
	packed, codes := cc.PackedCodes(), cc.Codes()
	buf := make([]storage.RowID, 0, len(data)+1)
	bm := make([]uint64, bitmap.Words(len(data)))

	sites := []struct {
		name string
		op   func()
	}{
		{"Compressed", func() { buf = Compressed(cc, p, buf[:0]) }},
		{"appendPackedMatches", func() { buf = appendPackedMatches(packed, codes, 0, len(codes), clo, chi, buf[:0]) }},
		{"swarRangeBitmap", func() { swarRangeBitmap(packed, codes, 0, len(codes), clo, chi, bm) }},
		{"bitmap.AppendRows", func() { buf = bitmap.AppendRows(bm, len(data), 0, buf[:0]) }},
	}
	for _, site := range sites {
		if n := testing.AllocsPerRun(100, site.op); n != 0 {
			t.Errorf("%s allocates %.1f per call with warm buffers, want 0", site.name, n)
		}
	}
}

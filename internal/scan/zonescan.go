package scan

import "fastcolumns/internal/storage"

// WithZonemap scans a contiguous column skipping zones the zonemap proves
// empty for the predicate. On clustered data this approaches index-like
// behaviour; on random data it degrades to a plain scan.
func WithZonemap(data []storage.Value, z *storage.Zonemap, p Predicate, out []storage.RowID) []storage.RowID {
	for zi := 0; zi < z.Zones(); zi++ {
		if z.Skippable(zi, p.Lo, p.Hi) {
			continue
		}
		lo, hi := z.ZoneBounds(zi)
		out = scanWithBase(data[lo:hi], p, lo, out)
	}
	return out
}

// SharedWithZonemap is the shared variant: a zone is skipped only when no
// query in the batch needs it, so skipping decays as concurrency rises
// (the zonemap drawback Section 2.1 calls out).
func SharedWithZonemap(data []storage.Value, z *storage.Zonemap, preds []Predicate) [][]storage.RowID {
	ranges := make([][2]storage.Value, len(preds))
	for i, p := range preds {
		ranges[i] = [2]storage.Value{p.Lo, p.Hi}
	}
	results := make([][]storage.RowID, len(preds))
	for zi := 0; zi < z.Zones(); zi++ {
		if z.SkippableForAll(zi, ranges) {
			continue
		}
		lo, hi := z.ZoneBounds(zi)
		block := data[lo:hi]
		for qi, p := range preds {
			if z.Skippable(zi, p.Lo, p.Hi) {
				continue // per-query skip inside a shared pass is still free
			}
			results[qi] = scanWithBase(block, p, lo, results[qi])
		}
	}
	return results
}

package scan

import (
	"testing"

	"fastcolumns/internal/storage"
)

func TestZonemapScanMatchesPlain(t *testing.T) {
	// Clustered (sorted) data: heavy skipping, same answer.
	n := 20000
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(i)
	}
	z := storage.BuildZonemap(storage.NewColumn("v", data), 256)
	for _, p := range []Predicate{
		{Lo: 5000, Hi: 5100},
		{Lo: 0, Hi: 19999},
		{Lo: -100, Hi: -1},
		{Lo: 19999, Hi: 19999},
	} {
		got := WithZonemap(data, z, p, nil)
		if !sameRowIDs(got, reference(data, p)) {
			t.Fatalf("zonemap scan disagrees for %+v", p)
		}
	}
}

func TestZonemapScanRandomData(t *testing.T) {
	data := randomData(14, 30000, 1<<20)
	z := storage.BuildZonemap(storage.NewColumn("v", data), 512)
	p := Predicate{Lo: 1000, Hi: 50000}
	if !sameRowIDs(WithZonemap(data, z, p, nil), reference(data, p)) {
		t.Fatal("zonemap scan on random data disagrees")
	}
}

func TestSharedWithZonemapMatchesShared(t *testing.T) {
	n := 50000
	data := make([]storage.Value, n)
	for i := range data {
		data[i] = storage.Value(i)
	}
	z := storage.BuildZonemap(storage.NewColumn("v", data), 512)
	preds := []Predicate{
		{Lo: 100, Hi: 300},
		{Lo: 40000, Hi: 41000},
		{Lo: 100000, Hi: 100010}, // empty
		{Lo: 0, Hi: 49999},       // everything
	}
	results := SharedWithZonemap(data, z, preds)
	for qi, p := range preds {
		if !sameRowIDs(results[qi], reference(data, p)) {
			t.Fatalf("query %d disagrees", qi)
		}
	}
}

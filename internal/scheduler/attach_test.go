package scheduler

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

func TestAttachHookAdoptsQuery(t *testing.T) {
	exec := newCountingExec()
	var mu sync.Mutex
	var delivers []func(Reply)
	s := New(exec.exec, Options{
		Window: time.Hour, // next window would never come
		Attach: func(_ context.Context, attr string, _ scan.Predicate, deliver func(Reply)) bool {
			if attr != "a" {
				return false
			}
			mu.Lock()
			delivers = append(delivers, deliver)
			mu.Unlock()
			return true
		},
	})
	defer s.Close()

	ch, err := s.Submit("a", scan.Predicate{Lo: 1, Hi: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	mu.Lock()
	if len(delivers) != 1 {
		mu.Unlock()
		t.Fatalf("attach hook saw %d offers, want 1", len(delivers))
	}
	d := delivers[0]
	mu.Unlock()
	d(Reply{RowIDs: []storage.RowID{7}})
	rep := <-ch
	if rep.Err != nil || len(rep.RowIDs) != 1 || rep.RowIDs[0] != 7 {
		t.Fatalf("attached reply = %+v", rep)
	}
	st := s.Stats()
	if st.Attached != 1 || st.Submitted != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v, want Attached=1 Submitted=1 Batches=0", st)
	}
	if sizes := exec.batchSizes("a"); len(sizes) != 0 {
		t.Fatalf("adopted query still executed in a batch: %v", sizes)
	}
}

func TestAttachHookDeclineFallsThroughToBatch(t *testing.T) {
	exec := newCountingExec()
	s := New(exec.exec, Options{
		Window: time.Millisecond,
		Attach: func(context.Context, string, scan.Predicate, func(Reply)) bool { return false },
	})
	defer s.Close()
	ch, err := s.Submit("a", scan.Predicate{Lo: 1, Hi: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep := <-ch
	if rep.Err != nil {
		t.Fatalf("reply err = %v", rep.Err)
	}
	st := s.Stats()
	if st.Attached != 0 || st.Submitted != 1 || st.Batches != 1 {
		t.Fatalf("stats = %+v, want Attached=0 Submitted=1 Batches=1", st)
	}
}

func TestAttachedQueryCancelCountsOnce(t *testing.T) {
	// The pass reaps the cancelled attacher and delivers its context
	// error; the cancellation watcher races it. Exactly one Cancelled
	// count must survive.
	var deliver func(Reply)
	var mu sync.Mutex
	s := New(newCountingExec().exec, Options{
		Window: time.Hour,
		Attach: func(_ context.Context, _ string, _ scan.Predicate, d func(Reply)) bool {
			mu.Lock()
			deliver = d
			mu.Unlock()
			return true
		},
	})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := s.SubmitContext(ctx, "a", scan.Predicate{Lo: 1, Hi: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancel()
	rep := <-ch
	if !errors.Is(rep.Err, context.Canceled) {
		t.Fatalf("reply err = %v, want context.Canceled", rep.Err)
	}
	// The pass-side delivery arrives after the watcher already won; it
	// must not double-count.
	mu.Lock()
	d := deliver
	mu.Unlock()
	d(Reply{Err: context.Canceled})
	deadline := time.Now().Add(time.Second)
	for {
		if st := s.Stats(); st.Cancelled == 1 {
			if st.Attached != 1 || st.Submitted != 1 {
				t.Fatalf("stats = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAttachSkippedAfterClose(t *testing.T) {
	offered := false
	s := New(newCountingExec().exec, Options{
		Attach: func(context.Context, string, scan.Predicate, func(Reply)) bool {
			offered = true
			return true
		},
	})
	s.Close()
	if _, err := s.Submit("a", scan.Predicate{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if offered {
		t.Fatal("attach hook offered a query after Close")
	}
}

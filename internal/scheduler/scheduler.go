// Package scheduler implements the batching component of Figure 11: it
// continuously collects incoming select queries, groups the ones
// predicated on the same attribute, and hands each group to the optimizer
// and execution engine as one batch. Query concurrency — the q the APS
// model needs — is precisely the size of these groups.
package scheduler

import (
	"errors"
	"sync"
	"time"

	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// Query is one select operator request.
type Query struct {
	// Attr names the predicated attribute; queries batch per attribute.
	Attr string
	// Pred is the range predicate.
	Pred scan.Predicate
	// reply receives the query's result exactly once.
	reply chan Reply
}

// Reply is the outcome delivered to the query's submitter.
type Reply struct {
	RowIDs []storage.RowID
	Err    error
}

// ExecFunc executes one batch of queries predicated on the same
// attribute, returning one result set per query in batch order.
type ExecFunc func(attr string, preds []scan.Predicate) ([][]storage.RowID, error)

// Scheduler collects queries and flushes per-attribute batches when the
// batching window elapses or a batch reaches MaxBatch.
type Scheduler struct {
	exec     ExecFunc
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending map[string][]*Query
	timers  map[string]*time.Timer
	closed  bool
	wg      sync.WaitGroup
}

// Options configures a scheduler.
type Options struct {
	// Window is how long the first query of a batch may wait for company;
	// the default 1ms trades a negligible latency hit for sharing.
	Window time.Duration
	// MaxBatch flushes a batch early once it holds this many queries
	// (default 512 — beyond that, result-writing thrash erases the
	// sharing benefit; see Lesson 5).
	MaxBatch int
}

// New creates a scheduler that executes batches with exec.
func New(exec ExecFunc, opt Options) *Scheduler {
	if opt.Window <= 0 {
		opt.Window = time.Millisecond
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 512
	}
	return &Scheduler{
		exec:     exec,
		window:   opt.Window,
		maxBatch: opt.MaxBatch,
		pending:  make(map[string][]*Query),
		timers:   make(map[string]*time.Timer),
	}
}

// Submit enqueues a query and returns a channel that will receive its
// reply. The channel is buffered; the caller need not be ready.
func (s *Scheduler) Submit(attr string, pred scan.Predicate) (<-chan Reply, error) {
	q := &Query{Attr: attr, Pred: pred, reply: make(chan Reply, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("scheduler: closed")
	}
	s.pending[attr] = append(s.pending[attr], q)
	n := len(s.pending[attr])
	switch {
	case n >= s.maxBatch:
		batch := s.takeLocked(attr)
		s.mu.Unlock()
		s.run(attr, batch)
	case n == 1:
		// First query on the attribute arms the window timer.
		s.timers[attr] = time.AfterFunc(s.window, func() { s.Flush(attr) })
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
	return q.reply, nil
}

// Flush executes whatever is pending on the attribute right now.
func (s *Scheduler) Flush(attr string) {
	s.mu.Lock()
	batch := s.takeLocked(attr)
	s.mu.Unlock()
	if len(batch) > 0 {
		s.run(attr, batch)
	}
}

// Pending returns the number of queries waiting on the attribute — the
// outstanding-query statistic the optimizer reads.
func (s *Scheduler) Pending(attr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending[attr])
}

// takeLocked removes and returns the attribute's batch. Caller holds mu.
func (s *Scheduler) takeLocked(attr string) []*Query {
	batch := s.pending[attr]
	delete(s.pending, attr)
	if t := s.timers[attr]; t != nil {
		t.Stop()
		delete(s.timers, attr)
	}
	return batch
}

// run executes a batch and delivers replies.
func (s *Scheduler) run(attr string, batch []*Query) {
	s.wg.Add(1)
	defer s.wg.Done()
	preds := make([]scan.Predicate, len(batch))
	for i, q := range batch {
		preds[i] = q.Pred
	}
	results, err := s.exec(attr, preds)
	for i, q := range batch {
		if err != nil {
			q.reply <- Reply{Err: err}
			continue
		}
		q.reply <- Reply{RowIDs: results[i]}
	}
}

// Close flushes every pending batch and stops accepting submissions.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	attrs := make([]string, 0, len(s.pending))
	for a := range s.pending {
		attrs = append(attrs, a)
	}
	s.mu.Unlock()
	for _, a := range attrs {
		s.Flush(a)
	}
	s.wg.Wait()
}

// Package scheduler implements the batching component of Figure 11: it
// continuously collects incoming select queries, groups the ones
// predicated on the same attribute, and hands each group to the optimizer
// and execution engine as one batch. Query concurrency — the q the APS
// model needs — is precisely the size of these groups.
//
// The scheduler is also the serve path's resilience layer: every query
// carries a context (cancelled queries are dropped from their batch
// before execution, shrinking the q the cost model sees, and their
// submitters are answered promptly), admission is bounded (a per-attribute
// pending cap and a global in-flight-batch cap fail fast with
// ErrOverloaded instead of queueing unboundedly), and a panic inside one
// batch's execution is recovered into per-query errors without touching
// sibling attributes.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fastcolumns/internal/obs"
	rt "fastcolumns/internal/runtime"
	"fastcolumns/internal/scan"
	"fastcolumns/internal/storage"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("scheduler: closed")

// ErrOverloaded is returned by Submit when admission control rejects the
// query — either the attribute's pending queue is full or too many
// batches are already executing. Callers should shed or retry with
// backoff; nothing was enqueued.
var ErrOverloaded = errors.New("scheduler: overloaded")

// ErrBatchPanic wraps a panic recovered during one batch's execution; it
// is delivered as the Reply error of every query in that batch.
var ErrBatchPanic = errors.New("scheduler: batch execution panicked")

// Query is one select operator request.
type Query struct {
	// Attr names the predicated attribute; queries batch per attribute.
	Attr string
	// Pred is the range predicate.
	Pred scan.Predicate

	ctx   context.Context
	reply chan Reply
	// done guards exactly-once reply delivery: the batch runner and the
	// cancellation watcher race to claim it.
	done atomic.Bool
	// settled closes once the reply has been delivered, releasing the
	// cancellation watcher.
	settled chan struct{}
}

// finish delivers the reply if no one else has; reports whether this
// caller won the claim.
func (q *Query) finish(rep Reply) bool {
	if !q.done.CompareAndSwap(false, true) {
		return false
	}
	q.reply <- rep
	close(q.settled)
	return true
}

// Reply is the outcome delivered to the query's submitter.
type Reply struct {
	RowIDs []storage.RowID
	Err    error
}

// ExecFunc executes one batch of queries predicated on the same
// attribute, returning one result set per query in batch order. The
// context carries the batch's deadline (see batchContext); executors
// should stop early when it is done.
type ExecFunc func(ctx context.Context, attr string, preds []scan.Predicate) ([][]storage.RowID, error)

// Scheduler collects queries and flushes per-attribute batches when the
// batching window elapses or a batch reaches MaxBatch.
type Scheduler struct {
	exec        ExecFunc
	attachHook  func(ctx context.Context, attr string, pred scan.Predicate, deliver func(Reply)) bool
	window      time.Duration
	maxBatch    int
	maxPending  int
	maxInFlight int64

	inFlight  atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	batches   atomic.Int64
	panics    atomic.Int64
	errored   atomic.Int64
	attached  atomic.Int64

	// Pre-resolved observability instruments (nil without a registry):
	// the batch-width histogram is the live record of the concurrency q
	// the APS model actually saw, the latency histogram the executor's
	// end-to-end batch time, and the gauge mirrors inFlight.
	batchWidth  *obs.Histogram
	batchNs     *obs.Histogram
	inFlightG   *obs.Gauge
	dropped     *obs.Counter
	batchErrors *obs.Counter

	mu      sync.Mutex
	pending map[string][]*Query
	timers  map[string]*time.Timer
	closed  bool
	wg      sync.WaitGroup
}

// Options configures a scheduler.
type Options struct {
	// Window is how long the first query of a batch may wait for company;
	// the default 1ms trades a negligible latency hit for sharing.
	Window time.Duration
	// MaxBatch flushes a batch early once it holds this many queries
	// (default 512 — beyond that, result-writing thrash erases the
	// sharing benefit; see Lesson 5).
	MaxBatch int
	// MaxPending bounds each attribute's pending queue; submissions
	// beyond it fail fast with ErrOverloaded (default 4096).
	MaxPending int
	// MaxInFlight bounds concurrently executing batches across all
	// attributes; submissions while saturated fail fast with
	// ErrOverloaded (default 64).
	MaxInFlight int
	// Metrics, when non-nil, receives scheduler observations: batch width
	// (the concurrency q the APS model saw), executor latency, in-flight
	// batches, dropped-at-execution queries, and batch errors. Instruments
	// are resolved once here, so recording stays allocation-free.
	Metrics *obs.Registry
	// Attach, when non-nil, is offered every submission before it is
	// enqueued for the next batching window. Returning true means the
	// query was adopted by an in-flight cooperative pass and deliver
	// will be called exactly once with its reply; returning false falls
	// back to normal next-window batching. The hook must not block on
	// scheduler state (it runs on the submitter, outside the scheduler
	// lock) and deliver may be called from any goroutine.
	Attach func(ctx context.Context, attr string, pred scan.Predicate, deliver func(Reply)) bool
}

// Stats is a snapshot of the scheduler's resilience counters.
type Stats struct {
	// Submitted counts accepted queries.
	Submitted int64
	// Rejected counts submissions refused by admission control.
	Rejected int64
	// Cancelled counts queries answered with their context's error —
	// whether cancelled while pending, dropped from a batch at execution
	// time, or abandoned mid-execution.
	Cancelled int64
	// Batches counts executed (non-empty) batches.
	Batches int64
	// Panics counts batch executions that panicked and were recovered.
	Panics int64
	// Errored counts batches whose execution reported an error
	// (including recovered panics and short result sets).
	Errored int64
	// Attached counts queries adopted mid-pass by the Attach hook
	// instead of waiting for a batching window. Attached queries are
	// included in Submitted.
	Attached int64
	// InFlight is the number of batches executing right now.
	InFlight int64
}

// New creates a scheduler that executes batches with exec.
func New(exec ExecFunc, opt Options) *Scheduler {
	if opt.Window <= 0 {
		opt.Window = time.Millisecond
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 512
	}
	if opt.MaxPending <= 0 {
		opt.MaxPending = 4096
	}
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 64
	}
	s := &Scheduler{
		exec:        exec,
		attachHook:  opt.Attach,
		window:      opt.Window,
		maxBatch:    opt.MaxBatch,
		maxPending:  opt.MaxPending,
		maxInFlight: int64(opt.MaxInFlight),
		pending:     make(map[string][]*Query),
		timers:      make(map[string]*time.Timer),
	}
	if opt.Metrics != nil {
		s.batchWidth = opt.Metrics.Histogram("scheduler.batch_width")
		s.batchNs = opt.Metrics.Histogram("scheduler.exec_ns")
		s.inFlightG = opt.Metrics.Gauge("scheduler.in_flight")
		s.dropped = opt.Metrics.Counter("scheduler.dropped")
		s.batchErrors = opt.Metrics.Counter("scheduler.batch_errors")
	}
	return s
}

// Submit enqueues a query with no deadline; see SubmitContext.
func (s *Scheduler) Submit(attr string, pred scan.Predicate) (<-chan Reply, error) {
	return s.SubmitContext(context.Background(), attr, pred)
}

// SubmitContext enqueues a query and returns a channel that will receive
// its reply exactly once. The channel is buffered; the caller need not be
// ready. If ctx is cancelled before the batch executes, the query is
// answered promptly with ctx.Err() and dropped from its batch; if it is
// cancelled during execution, the submitter is still answered promptly
// while the batch finishes on behalf of its other members.
func (s *Scheduler) SubmitContext(ctx context.Context, attr string, pred scan.Predicate) (<-chan Reply, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := &Query{
		Attr:    attr,
		Pred:    pred,
		ctx:     ctx,
		reply:   make(chan Reply, 1),
		settled: make(chan struct{}),
	}
	if s.attachHook != nil {
		if ch, ok := s.tryAttach(ctx, q); ok {
			return ch, nil
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.inFlight.Load() >= s.maxInFlight {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d batches in flight", ErrOverloaded, s.maxInFlight)
	}
	if len(s.pending[attr]) >= s.maxPending {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d queries pending on %q", ErrOverloaded, s.maxPending, attr)
	}
	s.pending[attr] = append(s.pending[attr], q)
	// Counted under the lock, before the batch can possibly dispatch:
	// no observer may ever see a query inside an executing batch that
	// Submitted does not yet account for.
	s.submitted.Add(1)
	switch n := len(s.pending[attr]); {
	case n >= s.maxBatch:
		s.dispatchLocked(attr, s.takeLocked(attr))
	case n == 1:
		// First query on the attribute arms the window timer.
		s.timers[attr] = time.AfterFunc(s.window, func() { s.Flush(attr) })
	}
	s.mu.Unlock()
	if ctx.Done() != nil {
		rt.Go(func() { s.watchCancel(q) })
	}
	return q.reply, nil
}

// tryAttach offers the query to the Attach hook — an in-flight
// cooperative pass adopting it skips the batching window entirely. The
// query is counted as Submitted *before* the hook runs (the counting
// invariant above applies to passes too: no observer may see an
// attached query that Submitted does not account for) and the count is
// rolled back if the hook declines and the query falls through to
// normal batching, which re-counts it under the lock.
func (s *Scheduler) tryAttach(ctx context.Context, q *Query) (<-chan Reply, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false // fall through; the normal path reports ErrClosed
	}
	s.submitted.Add(1)
	s.mu.Unlock()
	adopted := s.attachHook(ctx, q.Attr, q.Pred, func(rep Reply) {
		if !q.finish(rep) {
			return
		}
		if rep.Err != nil && (errors.Is(rep.Err, context.Canceled) || errors.Is(rep.Err, context.DeadlineExceeded)) {
			s.cancelled.Add(1)
		}
	})
	if !adopted {
		s.submitted.Add(-1)
		return nil, false
	}
	s.attached.Add(1)
	if ctx.Done() != nil {
		rt.Go(func() { s.watchCancel(q) })
	}
	return q.reply, true
}

// watchCancel answers the submitter the moment its context dies, even if
// the query's batch is still pending or executing. A query answered
// while still pending is also removed from its queue: its MaxPending
// admission slot frees immediately and the batch width q the APS model
// will see shrinks right away — a caller whose context died between
// admission and execution must not occupy capacity until the window
// timer happens to fire (windows can be long; the slot must not be).
func (s *Scheduler) watchCancel(q *Query) {
	select {
	case <-q.ctx.Done():
		if q.finish(Reply{Err: q.ctx.Err()}) {
			s.cancelled.Add(1)
			s.removePending(q)
		}
	case <-q.settled:
	}
}

// removePending unlinks an already-answered query from its attribute's
// pending queue, if it is still there (a query whose batch was already
// taken is gone from the map; run() skips it via the done flag). When
// the queue empties, the attribute's window timer is disarmed so it does
// not fire a pointless empty flush.
func (s *Scheduler) removePending(q *Query) {
	s.mu.Lock()
	defer s.mu.Unlock()
	queue := s.pending[q.Attr]
	for i, p := range queue {
		if p != q {
			continue
		}
		queue = append(queue[:i], queue[i+1:]...)
		if len(queue) == 0 {
			delete(s.pending, q.Attr)
			if t := s.timers[q.Attr]; t != nil {
				t.Stop()
				delete(s.timers, q.Attr)
			}
		} else {
			s.pending[q.Attr] = queue
		}
		return
	}
}

// Flush executes whatever is pending on the attribute right now.
func (s *Scheduler) Flush(attr string) {
	s.mu.Lock()
	s.dispatchLocked(attr, s.takeLocked(attr))
	s.mu.Unlock()
}

// Pending returns the number of queries waiting on the attribute — the
// outstanding-query statistic the optimizer reads.
func (s *Scheduler) Pending(attr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending[attr])
}

// Stats snapshots the resilience counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted: s.submitted.Load(),
		Rejected:  s.rejected.Load(),
		Cancelled: s.cancelled.Load(),
		Batches:   s.batches.Load(),
		Panics:    s.panics.Load(),
		Errored:   s.errored.Load(),
		Attached:  s.attached.Load(),
		InFlight:  s.inFlight.Load(),
	}
}

// takeLocked removes and returns the attribute's batch. Caller holds mu.
func (s *Scheduler) takeLocked(attr string) []*Query {
	batch := s.pending[attr]
	delete(s.pending, attr)
	if t := s.timers[attr]; t != nil {
		t.Stop()
		delete(s.timers, attr)
	}
	return batch
}

// dispatchLocked hands a batch to a worker goroutine. Running on a worker
// — never on the submitting caller — keeps Submit latency flat even when
// a full batch triggers immediate execution. Caller holds mu; taking wg
// under the lock orders the Add before Close's Wait.
func (s *Scheduler) dispatchLocked(attr string, batch []*Query) {
	if len(batch) == 0 {
		return
	}
	s.wg.Add(1)
	s.inFlight.Add(1)
	rt.Go(func() { s.run(attr, batch) })
}

// run executes a batch and delivers replies. Cancelled queries are
// dropped first — shrinking the concurrency q the APS model sees — and a
// panicking executor is converted into per-query errors so one poisoned
// batch cannot take down the process or sibling attributes.
func (s *Scheduler) run(attr string, batch []*Query) {
	defer s.wg.Done()
	defer s.inFlight.Add(-1)
	if s.inFlightG != nil {
		s.inFlightG.Add(1)
		defer s.inFlightG.Add(-1)
	}
	live := make([]*Query, 0, len(batch))
	for _, q := range batch {
		if q.done.Load() {
			continue // cancellation watcher already answered it
		}
		if err := q.ctx.Err(); err != nil {
			if q.finish(Reply{Err: err}) {
				s.cancelled.Add(1)
			}
			if s.dropped != nil {
				s.dropped.Add(1)
			}
			continue
		}
		live = append(live, q)
	}
	if len(live) == 0 {
		return
	}
	s.batches.Add(1)
	if s.batchWidth != nil {
		s.batchWidth.Record(int64(len(live)))
	}
	preds := make([]scan.Predicate, len(live))
	for i, q := range live {
		preds[i] = q.Pred
	}
	ctx, cancel := batchContext(live)
	start := time.Now()
	results, err := s.safeExec(ctx, attr, preds)
	if s.batchNs != nil {
		s.batchNs.Record(time.Since(start).Nanoseconds())
	}
	cancel()
	if err == nil && len(results) != len(preds) {
		err = fmt.Errorf("scheduler: executor returned %d result sets for a %d-query batch on %q",
			len(results), len(preds), attr)
	}
	if err != nil {
		s.errored.Add(1)
		if s.batchErrors != nil {
			s.batchErrors.Add(1)
		}
	}
	for i, q := range live {
		if err != nil {
			q.finish(Reply{Err: err})
			continue
		}
		q.finish(Reply{RowIDs: results[i]})
	}
}

// batchContext derives the context a batch executes under. A batch acts
// on behalf of every member, so it may only be deadline-bounded by a time
// no member outlives: the latest member deadline when all members have
// one, unbounded otherwise. A single-query batch simply runs under that
// query's context.
func batchContext(live []*Query) (context.Context, context.CancelFunc) {
	if len(live) == 1 {
		return live[0].ctx, func() {}
	}
	latest := time.Time{}
	for _, q := range live {
		d, ok := q.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// safeExec runs the executor with panic isolation.
func (s *Scheduler) safeExec(ctx context.Context, attr string, preds []scan.Predicate) (results [][]storage.RowID, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			results = nil
			err = fmt.Errorf("%w on %q: %v", ErrBatchPanic, attr, r)
		}
	}()
	return s.exec(ctx, attr, preds)
}

// Close flushes every pending batch and stops accepting submissions.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	attrs := make([]string, 0, len(s.pending))
	for a := range s.pending {
		attrs = append(attrs, a)
	}
	s.mu.Unlock()
	for _, a := range attrs {
		s.Flush(a)
	}
	s.wg.Wait()
}
